// Package par implements the shared-memory parallel system setup of paper
// Section 5.1 / Figure 4: the k-range of Algorithm 1 is split into
// contiguous partitions, D workers (the OpenMP-thread analog) compute
// their template interactions into private partial matrices, and the
// results are merged into the shared system matrix P as each partition
// completes.
//
// Two scheduling modes are provided. Static mode is the paper's Algorithm
// 1 verbatim: exactly D equal partitions. The default dynamic mode keeps
// the same contiguous-partition structure but splits the k-range into
// ChunksPerWorker*D chunks claimed from a shared queue — the standard
// OpenMP "schedule(dynamic)" refinement that absorbs the residual cost
// variance between template pairs. The ablation benchmark
// (BenchmarkAblationDivision) quantifies the difference.
package par

import (
	"runtime"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Options configures the shared-memory fill.
type Options struct {
	// Workers is the number of parallel computing nodes D. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Static selects the paper's exact equal division into D partitions
	// instead of dynamic chunking.
	Static bool
	// ChunksPerWorker sets the dynamic-mode chunk count multiplier
	// (default 16).
	ChunksPerWorker int
	// Pool, when non-nil, runs the chunks on a shared persistent
	// work-stealing pool (the batch engine's worker set) instead of
	// spawning Workers goroutines for this call alone. The pool's size
	// then determines the parallelism; Workers still controls the chunk
	// count.
	Pool *sched.Pool
}

// Fill runs the parallelized system setup and returns the symmetrized,
// unscaled system matrix P.
func Fill(set *basis.Set, in *assembly.Integrator, opt Options) *linalg.Dense {
	d := opt.Workers
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	cpw := opt.ChunksPerWorker
	if cpw <= 0 {
		cpw = 16
	}
	n := set.N()
	P := linalg.NewDense(n, n)
	K := assembly.NumPairs(set.M())

	nparts := d
	var bounds []int64
	if opt.Static {
		// The paper's Algorithm 1: one equal partition per node.
		bounds = assembly.PartitionK(K, nparts)
	} else {
		nparts = d * cpw
		bounds = assembly.PartitionKCost(set, in, nparts)
	}

	var ex sched.Executor = opt.Pool
	if opt.Pool == nil {
		ex = sched.Local(d)
	}
	// Adjacent partitions can share one column of P (paper Figure 5);
	// FillRanges serializes the merges.
	assembly.FillRanges(set, in, bounds, ex, func(part *assembly.Partial) {
		part.MergeInto(P)
	})
	assembly.Symmetrize(P)
	return P
}
