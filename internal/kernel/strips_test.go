package kernel

import (
	"math"
	"testing"

	"parbem/internal/quad"
)

func TestGalerkinPair1DAgainstQuadrature(t *testing.T) {
	cases := []struct{ t1, t2, s1, s2, X, Z float64 }{
		{0, 1, 0, 1, 0.5, 0.3},
		{0, 2, 1, 3, 1.0, 0.0},
		{-1, 1, 2, 4, 0.2, 0.7},
		{0, 1, 0, 1, 2.0, 0.0},
	}
	for _, c := range cases {
		got := GalerkinPair1D(StdOps, c.t1, c.t2, c.s1, c.s2, c.X, c.Z)
		want := quad.Integrate2D(func(v, vp float64) float64 {
			d := v - vp
			return 1 / math.Sqrt(c.X*c.X+d*d+c.Z*c.Z)
		}, c.t1, c.t2, c.s1, c.s2, 32, 32)
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-8 {
			t.Errorf("GalerkinPair1D(%+v) = %g want %g (rel %g)", c, got, want, rel)
		}
	}
}

func TestGalerkinStripAgainstQuadrature(t *testing.T) {
	cases := []struct{ tv1, tv2, sv1, sv2, su1, su2, u, Z float64 }{
		{0, 1, 0, 1, 0, 1, 0.5, 0.4},  // directly above source
		{0, 1, 1, 2, -1, 0.5, 2.0, 0}, // coplanar, u outside source
		{0, 2, 0.5, 1, 0, 3, 1.7, 0},  // coplanar, u inside source range
		{-1, 0, 1, 2, 0, 1, -0.3, 1},  // offset plane
	}
	for _, c := range cases {
		got := GalerkinStrip(StdOps, c.tv1, c.tv2, c.sv1, c.sv2, c.su1, c.su2, c.u, c.Z)
		// Reference: 1-D quadrature over v of the independently verified
		// RectPotential closed form, with the integration split at the
		// source's v bounds where the integrand kinks (the naive 3-D
		// brute quadrature is inaccurate when the target line crosses
		// the source rectangle).
		f := func(v float64) float64 {
			return RectPotential(StdOps, c.su1, c.su2, c.sv1, c.sv2, c.u, v, c.Z)
		}
		splits := []float64{c.tv1}
		for _, brk := range []float64{c.sv1, c.sv2} {
			if brk > c.tv1 && brk < c.tv2 {
				splits = append(splits, brk)
			}
		}
		splits = append(splits, c.tv2)
		var want float64
		for i := 0; i+1 < len(splits); i++ {
			want += quad.Integrate1D(f, splits[i], splits[i+1], 32)
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-6 {
			t.Errorf("GalerkinStrip(%+v) = %g want %g (rel %g)", c, got, want, rel)
		}
	}
}

func TestSegPotential(t *testing.T) {
	ref := func(v1, v2, pv, d2 float64) float64 {
		return quad.Integrate1D(func(v float64) float64 {
			d := pv - v
			return 1 / math.Sqrt(d*d+d2)
		}, v1, v2, 32)
	}
	cases := []struct{ v1, v2, pv, d2 float64 }{
		{0, 1, 2, 0.5},  // beyond upper end
		{0, 1, -1, 0.5}, // before lower end
		{0, 1, 0.5, 1},  // above the middle
		{0, 1, 3, 0},    // collinear beyond (d2 = 0)
		{0, 1, -2, 0},   // collinear before (d2 = 0)
	}
	for _, c := range cases {
		got := SegPotential(StdOps, c.v1, c.v2, c.pv, c.d2)
		want := ref(c.v1, c.v2, c.pv, c.d2)
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-10 {
			t.Errorf("SegPotential(%+v) = %g want %g", c, got, want)
		}
	}
	// Exactly on the open segment: divergent.
	if got := SegPotential(StdOps, 0, 1, 0.5, 0); !math.IsInf(got, 1) {
		t.Errorf("on-segment SegPotential = %g, want +Inf", got)
	}
	// Collinear symmetric identity: potential at pv beyond v2 equals
	// potential at mirrored point before v1.
	a := SegPotential(StdOps, 0, 1, 1.75, 0)
	b := SegPotential(StdOps, 0, 1, -0.75, 0)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("collinear mirror symmetry broken: %g vs %g", a, b)
	}
}

func TestF2YDerivativeProperty(t *testing.T) {
	// Numerically check that d^2 F2Y / dY^2 = 1/r.
	h := 1e-5
	for _, p := range [][3]float64{{1, 0.5, 0.3}, {0.2, -1, 0.7}, {2, 2, 0}} {
		X, Y, Z := p[0], p[1], p[2]
		d2 := (F2Y(StdOps, X, Y+h, Z) - 2*F2Y(StdOps, X, Y, Z) + F2Y(StdOps, X, Y-h, Z)) / (h * h)
		want := 1 / math.Sqrt(X*X+Y*Y+Z*Z)
		if rel := math.Abs(d2-want) / want; rel > 1e-4 {
			t.Errorf("F2Y'' at %v = %g want %g", p, d2, want)
		}
	}
}
