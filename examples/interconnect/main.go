// Interconnect reproduces the Table 2 experiment on the synthetic
// transistor-interconnect structure: the instantiable-basis solver with
// and without integration acceleration versus a FASTCAP-style multipole
// baseline, with accuracy judged against a refined piecewise-constant
// reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parbem"
)

func main() {
	refEdge := flag.Float64("refedge", 0.3e-6, "reference panel edge (m)")
	fcEdge := flag.Float64("fcedge", 0.4e-6, "FastCap-like panel edge (m)")
	flag.Parse()

	st := parbem.NewInterconnect().Build()
	fmt.Printf("structure: %s (%d conductors, %d faces)\n\n",
		st.Name, st.NumConductors(), st.TotalFaces())

	// Refined reference (the paper refines FASTCAP until converged).
	t0 := time.Now()
	ref, err := parbem.ExtractReference(st, *refEdge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: %d panels, %v\n\n", ref.NumPanels, time.Since(t0).Round(time.Millisecond))

	// FASTCAP-analog baseline.
	t0 = time.Now()
	fc, err := parbem.ExtractFastCapLike(st, *fcEdge, parbem.FastCapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fcTime := time.Since(t0)

	// Instantiable basis, standard math.
	cfgStd := parbem.Options{Backend: parbem.Serial}
	t0 = time.Now()
	std, err := parbem.Extract(st, cfgStd)
	if err != nil {
		log.Fatal(err)
	}
	stdTime := time.Since(t0)

	// Instantiable basis with tabulated elementary functions (the
	// acceleration the paper selects in Section 4.3).
	t0 = time.Now()
	fastRes, err := parbem.Extract(st, parbem.Options{
		Backend: parbem.Serial,
		Kernel:  parbem.FastKernelConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fastTime := time.Since(t0)

	fmt.Println("method                          total time    setup time     memory       error")
	row := func(name string, total, setup time.Duration, mem int, errRel float64) {
		fmt.Printf("%-30s %12v %12v %9.1f KB    %5.2f%%\n",
			name, total.Round(time.Millisecond), setup.Round(time.Millisecond),
			float64(mem)/1024, 100*errRel)
	}
	fcMem := ref.NumPanels * 8 * 40 // sparse near-field + tree estimate
	row("FASTCAP-analog (multipole)", fcTime, fcTime, fcMem, parbem.CapError(fc.C, ref.C))
	row("instantiable, no accel", stdTime, std.Timing.Setup, std.MatrixBytes, parbem.CapError(std.C, ref.C))
	row("instantiable, with accel", fastTime, fastRes.Timing.Setup, fastRes.MatrixBytes, parbem.CapError(fastRes.C, ref.C))

	impr := 100 * (1 - float64(fastRes.Timing.Setup)/float64(std.Timing.Setup))
	fmt.Printf("\nsetup-time improvement from acceleration: %.0f%%\n", impr)
	fmt.Printf("speedup vs FASTCAP-analog: %.1fx (N = %d basis functions vs %d panels)\n",
		float64(fcTime)/float64(fastTime), fastRes.N, ref.NumPanels)
}
