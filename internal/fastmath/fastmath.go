// Package fastmath implements the "tabulation of expensive subroutines"
// acceleration of paper Section 4.2.3: the elementary functions log and
// atan, which dominate the cost of the closed-form Galerkin expressions,
// are replaced by table lookups.
//
// The logarithm exploits the IEEE-754 representation (after [5] in the
// paper): x = 2^e * m with m in [1, 2), so
//
//	log2(x) = e + log2(m)
//
// and only log2(m) must be tabulated, indexed directly by the leading
// MantissaBits bits of the significand with zero-order hold. The paper
// reports that 14 mantissa bits keep the resulting 4-D expression error
// below 1%; the same default is used here.
package fastmath

import "math"

// MantissaBits is the number of leading significand bits used to index the
// log table (the paper's choice).
const MantissaBits = 14

// AtanBits sets the atan table resolution: 2^AtanBits entries over [0, 1].
const AtanBits = 14

const (
	logTableSize  = 1 << MantissaBits
	atanTableSize = 1 << AtanBits
	ln2           = math.Ln2
)

var (
	logTable  [logTableSize]float64 // ln(1 + (i+0.5)/N) for midpoint ZOH
	atanTable [atanTableSize + 1]float64
)

func init() {
	for i := 0; i < logTableSize; i++ {
		m := 1 + (float64(i)+0.5)/logTableSize
		logTable[i] = math.Log(m)
	}
	for i := 0; i <= atanTableSize; i++ {
		atanTable[i] = math.Atan((float64(i) + 0.5) / atanTableSize)
	}
}

// Log returns an approximation of the natural logarithm of x with relative
// error bounded by about 2^-(MantissaBits+1) on the mantissa term. Inputs
// <= 0, NaN and Inf fall back to math.Log semantics.
func Log(x float64) float64 {
	if !(x > 0) || math.IsInf(x, 1) {
		return math.Log(x)
	}
	bits := math.Float64bits(x)
	exp := int((bits>>52)&0x7FF) - 1023
	if exp == -1023 {
		// Subnormal: renormalize through math.Log (rare, off the hot path).
		return math.Log(x)
	}
	idx := (bits >> (52 - MantissaBits)) & (logTableSize - 1)
	return float64(exp)*ln2 + logTable[idx]
}

// Atan returns an approximation of atan(x) with absolute error bounded by
// about 2^-(AtanBits+1) radians, using the reflection
// atan(x) = pi/2 - atan(1/x) for |x| > 1.
func Atan(x float64) float64 {
	if math.IsNaN(x) {
		return x
	}
	neg := x < 0
	if neg {
		x = -x
	}
	var v float64
	if x <= 1 {
		v = atanTable[int(x*atanTableSize)]
	} else {
		inv := 1 / x
		v = math.Pi/2 - atanTable[int(inv*atanTableSize)]
	}
	if neg {
		return -v
	}
	return v
}

// Atan2 is the branch-continuous two-argument arctangent built on the
// tabulated Atan, with the same quadrant conventions as math.Atan2.
func Atan2(y, x float64) float64 {
	switch {
	case math.IsNaN(y) || math.IsNaN(x):
		return math.NaN()
	case x == 0 && y == 0:
		return 0
	case x == 0:
		if y > 0 {
			return math.Pi / 2
		}
		return -math.Pi / 2
	case y == 0:
		if x > 0 {
			return 0
		}
		return math.Pi
	}
	a := Atan(y / x)
	if x > 0 {
		return a
	}
	if y > 0 {
		return a + math.Pi
	}
	return a - math.Pi
}

// TableBytes returns the total memory footprint of the lookup tables, for
// the memory column of Table 1.
func TableBytes() int {
	return 8 * (logTableSize + atanTableSize + 1)
}
