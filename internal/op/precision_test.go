package op

import (
	"testing"

	"parbem/internal/costmodel"
)

// TestPrecisionParseString pins the flag round trip.
func TestPrecisionParseString(t *testing.T) {
	for _, p := range []Precision{PrecisionAuto, PrecisionFP64, PrecisionMixed} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePrecision("fp16"); err == nil {
		t.Error("ParsePrecision accepted fp16")
	}
	if p, err := ParsePrecision(""); err != nil || p != PrecisionAuto {
		t.Errorf("empty precision = %v, %v; want auto", p, err)
	}
}

// TestPipelineMixedMatchesFP64 runs the same extraction in both
// precisions on each accelerated backend: the refined mixed solve must
// reproduce the fp64 capacitance matrix to well within the consistency
// budget (the refinement loop converges on true fp64 residuals, so the
// remaining difference is bounded by the Krylov tolerance, not by fp32).
func TestPipelineMixedMatchesFP64(t *testing.T) {
	spec := busSpec(t, 4, 4, 1e-6)
	for _, backend := range []Backend{BackendFMM, BackendPFFT} {
		ref, err := New(spec, Options{Backend: backend, Tol: 1e-6, Precision: PrecisionFP64})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Precision() != PrecisionFP64 {
			t.Fatalf("%v: forced fp64 resolved to %v", backend, ref.Precision())
		}
		rres, err := ref.Extract()
		if err != nil {
			t.Fatal(err)
		}
		mix, err := New(spec, Options{Backend: backend, Tol: 1e-6, Precision: PrecisionMixed})
		if err != nil {
			t.Fatal(err)
		}
		if mix.Precision() != PrecisionMixed {
			t.Fatalf("%v: forced mixed resolved to %v", backend, mix.Precision())
		}
		mres, err := mix.Extract()
		if err != nil {
			t.Fatal(err)
		}
		if mres.Precision != PrecisionMixed || rres.Precision != PrecisionFP64 {
			t.Fatalf("%v: result precisions %v / %v", backend, mres.Precision, rres.Precision)
		}
		if d := capDiff(mres, rres); !(d <= 5e-5) {
			t.Errorf("%v: mixed vs fp64 capacitance diff %.3e", backend, d)
		} else {
			t.Logf("%v: mixed vs fp64 capacitance diff %.3e (iters %d vs %d)",
				backend, d, mres.Iterations, rres.Iterations)
		}
	}
}

// TestPipelineAutoPrecision pins the automatic selection: small
// problems and dense backends stay fp64; the cost model's thresholds
// are exercised directly on the workload summary.
func TestPipelineAutoPrecision(t *testing.T) {
	spec := busSpec(t, 2, 2, 1e-6) // few hundred panels, below MixedMinPanels
	p, err := New(spec, Options{Backend: BackendFMM})
	if err != nil {
		t.Fatal(err)
	}
	if p.Precision() != PrecisionFP64 {
		t.Errorf("small fmm pipeline resolved to %v, want fp64", p.Precision())
	}
	d, err := New(spec, Options{Backend: BackendDense, Precision: PrecisionMixed})
	if err != nil {
		t.Fatal(err)
	}
	if d.Precision() != PrecisionFP64 {
		t.Errorf("dense pipeline resolved to %v, want fp64 (no mirror)", d.Precision())
	}

	if c := costmodel.SelectPrecision(costmodel.Workload{Panels: 100000, Tol: 1e-4}); c != costmodel.ChooseMixed {
		t.Errorf("large loose workload: %v, want mixed", c)
	}
	if c := costmodel.SelectPrecision(costmodel.Workload{Panels: 100, Tol: 1e-4}); c != costmodel.ChooseFP64 {
		t.Errorf("small workload: %v, want fp64", c)
	}
	if c := costmodel.SelectPrecision(costmodel.Workload{Panels: 100000, Tol: 1e-9}); c != costmodel.ChooseFP64 {
		t.Errorf("tight-tolerance workload: %v, want fp64", c)
	}
}

// TestPipelineMixedTightTolerance forces mixed precision at a tolerance
// below the fp32 noise floor: the refinement loop must detect the stall
// and finish in full fp64, still converging to the requested residual.
func TestPipelineMixedTightTolerance(t *testing.T) {
	spec := busSpec(t, 4, 4, 1e-6)
	ref, err := New(spec, Options{Backend: BackendFMM, Tol: 1e-10, Precision: PrecisionFP64})
	if err != nil {
		t.Fatal(err)
	}
	rres, err := ref.Extract()
	if err != nil {
		t.Fatal(err)
	}
	mix, err := New(spec, Options{Backend: BackendFMM, Tol: 1e-10, Precision: PrecisionMixed})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mix.Extract()
	if err != nil {
		t.Fatalf("mixed solve at tight tolerance failed: %v", err)
	}
	if d := capDiff(mres, rres); !(d <= 1e-8) {
		t.Errorf("tight-tolerance mixed vs fp64 diff %.3e", d)
	}
}
