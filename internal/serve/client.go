package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin typed client for a capxd server; capx -remote rides
// it. The zero HTTPClient means http.DefaultClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8437".
	BaseURL string
	// HTTPClient optionally overrides the transport.
	HTTPClient *http.Client
	// Tenant, when set, is sent as the X-Tenant header so the server's
	// per-tenant rate limits attribute this client's traffic.
	Tenant string
}

// NewClient creates a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends one JSON request and returns the raw response; non-2xx
// responses are decoded into their structured error.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// get sends one GET and decodes the JSON response into v.
func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// decodeError maps a non-2xx response to its *RequestError.
func decodeError(resp *http.Response) error {
	var env errorEnvelope
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &env) == nil && env.Error != nil {
		return env.Error
	}
	return fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// Extract runs one synchronous extraction (req.Async must be false; use
// ExtractAsync to enqueue).
func (c *Client) Extract(ctx context.Context, req *ExtractRequest) (*ExtractResponse, error) {
	resp, err := c.post(ctx, "/extract", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out ExtractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: bad extract response: %w", err)
	}
	return &out, nil
}

// ExtractAsync enqueues an extraction and returns its job id.
func (c *Client) ExtractAsync(ctx context.Context, req *ExtractRequest) (string, error) {
	r := *req
	r.Async = true
	resp, err := c.post(ctx, "/extract", &r)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("serve: bad async response: %w", err)
	}
	return out.JobID, nil
}

// Job fetches the status (and result, when done) of a submitted job.
func (c *Client) Job(ctx context.Context, id string) (*JobResponse, error) {
	var out JobResponse
	if err := c.get(ctx, "/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep streams a sweep; point is called once per streamed point, in
// order. The returned trailer summarizes the sweep (point errors do not
// fail the call — inspect SweepPoint.Error).
func (c *Client) Sweep(ctx context.Context, req *SweepRequest, point func(*SweepPoint)) (*SweepTrailer, error) {
	resp, err := c.post(ctx, "/sweep", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// NDJSON is a stream of concatenated JSON values; a json.Decoder
	// consumes it without any line-length cap (one point's c_farads for
	// a large admissible conductor count can exceed tens of MB).
	dec := json.NewDecoder(resp.Body)
	first := true
	for {
		var line json.RawMessage
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("serve: bad sweep stream: %w", err)
		}
		if first {
			first = false
			var hdr SweepHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, fmt.Errorf("serve: bad sweep header: %w", err)
			}
			continue
		}
		// A trailer line carries done=true; a whole-sweep failure
		// arrives as a bare error envelope in its place. Point lines
		// always carry "index" — a per-point error is not a sweep
		// failure.
		var probe struct {
			Done  bool          `json:"done"`
			Index *int          `json:"index"`
			Error *RequestError `json:"error"`
		}
		if json.Unmarshal(line, &probe) == nil {
			if probe.Done {
				var tr SweepTrailer
				if err := json.Unmarshal(line, &tr); err != nil {
					return nil, fmt.Errorf("serve: bad sweep trailer: %w", err)
				}
				return &tr, nil
			}
			if probe.Index == nil && probe.Error != nil {
				return nil, probe.Error
			}
		}
		var p SweepPoint
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("serve: bad sweep point: %w", err)
		}
		if point != nil {
			point(&p)
		}
	}
	return nil, fmt.Errorf("serve: sweep stream ended without a trailer")
}

// Stats fetches the server's /stats snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.get(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/healthz", &out)
}
