package ratfit

import (
	"math"
	"testing"
)

func TestMultiIndices(t *testing.T) {
	// k=2, deg=2: indices with |a| <= 2 -> 6 of them.
	idx := MultiIndices(2, 2)
	if len(idx) != 6 {
		t.Fatalf("count = %d, want 6", len(idx))
	}
	if idx[0][0] != 0 || idx[0][1] != 0 {
		t.Fatalf("first index %v, want [0 0]", idx[0])
	}
	// Degrees must be graded non-decreasing.
	last := 0
	for _, a := range idx {
		d := a[0] + a[1]
		if d < last {
			t.Fatalf("indices not graded: %v", idx)
		}
		last = d
	}
	// k=3, deg=3: C(3+3,3) = 20.
	if n := len(MultiIndices(3, 3)); n != 20 {
		t.Fatalf("k=3 deg=3 count = %d, want 20", n)
	}
}

func TestFitRecoversExactRational(t *testing.T) {
	// f(x, y) = (1 + 2x + 3y) / (1 + 0.5x) over [0,1]^2.
	target := func(w []float64) float64 {
		return (1 + 2*w[0] + 3*w[1]) / (1 + 0.5*w[0])
	}
	r, err := FitFunc(target, []float64{0, 0}, []float64{1, 1}, 120, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainMaxRel > 1e-8 {
		t.Fatalf("training error %g on exactly representable target", r.TrainMaxRel)
	}
	// Check off-sample points.
	for _, w := range [][]float64{{0.31, 0.77}, {0.9, 0.05}, {0.5, 0.5}} {
		got := r.Eval(w...)
		want := target(w)
		if rel := math.Abs(got-want) / want; rel > 1e-8 {
			t.Errorf("f(%v) = %g want %g", w, got, want)
		}
	}
}

func TestFitDecayingKernel(t *testing.T) {
	// A 1/r-like decaying function is the paper's motivating target.
	target := func(w []float64) float64 {
		return 1 / math.Sqrt(1+w[0]*w[0]+w[1]*w[1])
	}
	r, err := FitFunc(target, []float64{0.5, 0.5}, []float64{4, 4}, 400, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.TrainMaxRel > 0.01 {
		t.Fatalf("training error %g > 1%% tolerance", r.TrainMaxRel)
	}
	// Validation points off the training lattice.
	for x := 0.6; x < 4; x += 0.37 {
		for y := 0.6; y < 4; y += 0.41 {
			got := r.Eval(x, y)
			want := target([]float64{x, y})
			if rel := math.Abs(got-want) / want; rel > 0.02 {
				t.Fatalf("f(%g,%g): rel error %g", x, y, rel)
			}
		}
	}
}

func TestFitDenominatorNormalization(t *testing.T) {
	target := func(w []float64) float64 { return 2 + w[0] }
	r, err := FitFunc(target, []float64{0}, []float64{1}, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range r.DenCoef {
		sum += c
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("denominator coefficients sum to %g, want 1", sum)
	}
}

func TestFitUnderdetermined(t *testing.T) {
	pts := [][]float64{{0.1}, {0.2}}
	vals := []float64{1, 2}
	if _, err := Fit(pts, vals, 1, 3, 3); err == nil {
		t.Fatal("expected ErrUnderdetermined")
	}
}

func TestEval2MatchesEval(t *testing.T) {
	target := func(w []float64) float64 {
		return (1 + w[0]) / (1 + 0.3*w[0] + 0.2*w[1])
	}
	r, err := FitFunc(target, []float64{0, 0}, []float64{2, 2}, 200, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.0; x <= 2; x += 0.5 {
		for y := 0.0; y <= 2; y += 0.5 {
			a := r.Eval(x, y)
			b := r.Eval2(x, y)
			if math.Abs(a-b) > 1e-14*math.Max(1, math.Abs(a)) {
				t.Fatalf("Eval/Eval2 mismatch at (%g,%g): %g vs %g", x, y, a, b)
			}
		}
	}
}
