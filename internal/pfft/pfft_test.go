package pfft

import (
	"math"
	"math/rand"
	"testing"
)

func TestOperatorMatchesDenseMatvec(t *testing.T) {
	panels := busPanels(t, 2, 2, 1e-6)
	dense := denseRef(panels)
	op := NewOperator(panels, Options{})
	n := len(panels)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	dense.MulVec(want, x)
	got := make([]float64, n)
	op.Apply(got, x)
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	rel := math.Sqrt(num / den)
	if rel > 0.05 {
		t.Fatalf("pFFT matvec relative error %g > 5%%", rel)
	}
}

func TestNearEntriesSparse(t *testing.T) {
	panels := busPanels(t, 3, 3, 1e-6)
	op := NewOperator(panels, Options{})
	n := len(panels)
	if op.NearEntries() >= n*n/2 {
		t.Errorf("precorrection not sparse: %d of %d", op.NearEntries(), n*n)
	}
	nx, ny, nz := op.GridNodes()
	if nx < 2 || ny < 2 || nz < 2 {
		t.Errorf("degenerate grid %dx%dx%d", nx, ny, nz)
	}
}

func TestWorkerInvariance(t *testing.T) {
	panels := busPanels(t, 2, 2, 1.5e-6)
	n := len(panels)
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	op1 := NewOperator(panels, Options{Workers: 1})
	op8 := NewOperator(panels, Options{Workers: 8})
	a := make([]float64, n)
	b := make([]float64, n)
	op1.Apply(a, x)
	op8.Apply(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-18 {
			t.Fatalf("worker-dependent result at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
