package parbem

import (
	"fmt"
	"math/rand"
	"testing"
)

// consistencyTol is the cross-backend agreement bound. The backends run
// the same integration code over the same k-range; they differ only in
// partitioning, which perturbs floating-point accumulation order by at
// most a few ulps — far below 1e-10 relative.
const consistencyTol = 1e-10

// randomStructures builds a deterministic set of seeded-random bus and
// crossing structures exercising different template mixes.
func randomStructures(seed int64, n int) []*Structure {
	rng := rand.New(rand.NewSource(seed))
	jit := func(base float64) float64 { return base * (0.8 + 0.4*rng.Float64()) }
	var out []*Structure
	for i := 0; len(out) < n; i++ {
		if i%2 == 0 {
			sp := NewBus(2+rng.Intn(2), 2+rng.Intn(2))
			sp.Width = jit(sp.Width)
			sp.Thickness = jit(sp.Thickness)
			sp.Pitch = jit(sp.Pitch)
			sp.H = jit(sp.H)
			sp.Margin = jit(sp.Margin)
			out = append(out, sp.Build())
		} else {
			sp := NewCrossingPair()
			sp.Width = jit(sp.Width)
			sp.Thickness = jit(sp.Thickness)
			sp.Length = jit(sp.Length)
			sp.H = jit(sp.H)
			out = append(out, sp.Build())
		}
	}
	return out
}

// TestPipelineBackendConsistency asserts that every operator backend of
// the unified pipeline — dense direct, dense iterative, multipole
// (preconditioned and unpreconditioned) and precorrected-FFT — agrees on
// the bus corpus to 1e-3 relative (the operators share the exact
// Galerkin near field; they differ only in far-field approximation, well
// inside the bound at the conservative settings used here).
func TestPipelineBackendConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("several full piecewise-constant solves")
	}
	st := NewBus(3, 3).Build()
	const edge = 1e-6

	ref, err := ExtractPipeline(st, edge, PipelineOptions{Backend: BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Backend != BackendDense || ref.Iterations != 0 {
		t.Fatalf("reference not a direct dense solve: backend %v, %d iterations",
			ref.Backend, ref.Iterations)
	}

	backends := []struct {
		name string
		opt  PipelineOptions
	}{
		{"dense-iterative", PipelineOptions{Backend: BackendDense, Tol: 1e-6}},
		{"fmm-blockjacobi", PipelineOptions{Backend: BackendFMM, Tol: 1e-6,
			Precond: PrecondBlockJacobi, FMM: &FastCapOptions{Theta: 0.35}}},
		{"fmm-unpreconditioned", PipelineOptions{Backend: BackendFMM, Tol: 1e-6,
			Precond: PrecondNone, FMM: &FastCapOptions{Theta: 0.35}}},
		{"fmm-jacobi", PipelineOptions{Backend: BackendFMM, Tol: 1e-6,
			Precond: PrecondJacobi, FMM: &FastCapOptions{Theta: 0.35}}},
		{"pfft", PipelineOptions{Backend: BackendPFFT, Tol: 1e-6,
			PFFT: &PFFTOptions{NearRadius: 8}}},
		{"auto", PipelineOptions{Backend: BackendAuto, Tol: 1e-6}},
	}
	for _, be := range backends {
		res, err := ExtractPipeline(st, edge, be.opt)
		if err != nil {
			t.Fatalf("%s: %v", be.name, err)
		}
		if res.C.Rows != st.NumConductors() {
			t.Fatalf("%s: C is %dx%d for %d conductors",
				be.name, res.C.Rows, res.C.Cols, st.NumConductors())
		}
		if e := CapError(res.C, ref.C); e > 1e-3 {
			t.Errorf("%s deviates from dense direct by %.3g (tol 1e-3)", be.name, e)
		}
		if res.Iterations == 0 {
			t.Errorf("%s: no Krylov iterations reported", be.name)
		}
	}
}

// TestPipelinePrecisionConsistency asserts that forcing the mixed
// (float32 operator + float64 iterative refinement) matvec changes the
// accelerated backends' capacitance matrices by at most 5e-3 relative
// against their own fp64 solves — the refinement loop converges the
// outer residual in float64, so the float32 storage must not leak into
// the answer beyond the solver tolerance. The warm ApplyMixed paths are
// separately pinned allocation-free by the AllocsPerRun guards in the
// fmm and pfft package tests.
func TestPipelinePrecisionConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("several full piecewise-constant solves")
	}
	st := NewBus(3, 3).Build()
	const edge = 1e-6

	for _, backend := range []PipelineOptions{
		{Backend: BackendFMM, Tol: 1e-6},
		{Backend: BackendPFFT, Tol: 1e-6},
	} {
		opt := backend
		opt.Precision = PrecisionFP64
		ref, err := ExtractPipeline(st, edge, opt)
		if err != nil {
			t.Fatalf("%v fp64: %v", opt.Backend, err)
		}
		if ref.Precision != PrecisionFP64 {
			t.Fatalf("%v: forced fp64 resolved to %v", opt.Backend, ref.Precision)
		}
		opt.Precision = PrecisionMixed
		mix, err := ExtractPipeline(st, edge, opt)
		if err != nil {
			t.Fatalf("%v mixed: %v", opt.Backend, err)
		}
		if mix.Precision != PrecisionMixed {
			t.Fatalf("%v: forced mixed resolved to %v", opt.Backend, mix.Precision)
		}
		if e := CapError(mix.C, ref.C); e > 5e-3 {
			t.Errorf("%v: mixed deviates from fp64 by %.3g (tol 5e-3)", opt.Backend, e)
		}
	}
}

// TestBackendConsistency asserts that the Serial, SharedMem and
// Distributed backends and the batch Engine produce capacitance matrices
// agreeing within 1e-10 relative error on seeded-random structures.
func TestBackendConsistency(t *testing.T) {
	structures := randomStructures(20260727, 4)

	eng := NewEngine(EngineOptions{Workers: 3})
	defer eng.Close()

	for si, st := range structures {
		st := st
		t.Run(fmt.Sprintf("structure%d_%s", si, st.Name), func(t *testing.T) {
			ref, err := Extract(st, Options{Backend: Serial})
			if err != nil {
				t.Fatal(err)
			}

			backends := []struct {
				name string
				run  func() (*Result, error)
			}{
				{"shared-4", func() (*Result, error) {
					return Extract(st, Options{Backend: SharedMem, Workers: 4})
				}},
				{"distributed-3", func() (*Result, error) {
					return Extract(st, Options{Backend: Distributed, Workers: 3})
				}},
				{"distributed-3x2threads", func() (*Result, error) {
					return Extract(st, Options{Backend: Distributed, Workers: 3, ThreadsPerRank: 2})
				}},
				// Twice through the engine: the second run is served
				// from the basis and pair-integral caches and must not
				// drift either.
				{"engine-cold", func() (*Result, error) { return eng.Extract(st) }},
				{"engine-cached", func() (*Result, error) { return eng.Extract(st) }},
			}
			for _, be := range backends {
				res, err := be.run()
				if err != nil {
					t.Fatalf("%s: %v", be.name, err)
				}
				if res.C.Rows != st.NumConductors() {
					t.Fatalf("%s: C is %dx%d for %d conductors",
						be.name, res.C.Rows, res.C.Cols, st.NumConductors())
				}
				if e := CapError(res.C, ref.C); e > consistencyTol {
					t.Errorf("%s deviates from serial by %.3g (tol %g)",
						be.name, e, consistencyTol)
				}
			}
		})
	}
}
