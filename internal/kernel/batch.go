package kernel

import (
	"math"

	"parbem/internal/geom"
	"parbem/internal/quad"
)

// Batch amortizes the target-side setup of RectGalerkin across a block
// of source rectangles sharing one target. RectGalerkin re-derives, per
// pair, the target's axis extents (three switch dispatches inside
// Rect.Dist), its diameter, area and centroid, and — on the
// perpendicular quadrature branch — the mapped Gauss nodes plus a 3-D
// point construction and three axis-switched component extractions per
// quadrature point. All of that depends only on the target, so a blocked
// fill (one matrix row, one near-field leaf-pair block) pays it once per
// target instead of once per pair.
//
// Results are bitwise identical to RectGalerkin: the cached values feed
// the same expressions in the same evaluation order, and the quadrature
// loop replicates quad.Integrate2D's accumulation exactly (verified by
// TestRectGalerkinBatchMatches).
//
// The zero value is ready for Reset. A Batch retains its quadrature
// tables across Reset calls (reallocated only when the order grows), so
// one long-lived value per worker makes blocked fills allocation-light.
// Not safe for concurrent use; give each worker its own.
type Batch struct {
	cfg *Config
	t   geom.Rect

	ext    [3]geom.Interval // target extent per axis (degenerate along Normal)
	center geom.Vec3
	area   float64
	diam   float64
	tU, tV geom.Axis

	// levels caches the target's mapped tensor quadrature rules for the
	// perpendicular branch, one slot per escalation step of
	// rectGalerkinPerp (base order, close, very close). Built lazily:
	// blocks without close perpendicular pairs never touch them.
	levels [3]quadLevel
}

// quadLevel is one cached tensor rule over the target rectangle: nodes
// mapped to the U and V intervals, raw Gauss weights, and the Jacobian
// hx*hy applied once per integral (mirroring quad.Integrate2D).
type quadLevel struct {
	n      int // rule order, 0 = not built for the current target
	us, vs []float64
	wx, wy []float64
	hh     float64
}

// Reset points the batch at a new target rectangle, invalidating the
// cached quadrature levels but keeping their storage.
func (b *Batch) Reset(cfg *Config, t geom.Rect) {
	b.cfg = cfg
	b.t = t
	for ax := geom.X; ax <= geom.Z; ax++ {
		b.ext[ax] = t.Extent(ax)
	}
	b.center = t.Center()
	b.area = t.Area()
	b.diam = t.Diameter()
	b.tU, b.tV = t.UAxis(), t.VAxis()
	for i := range b.levels {
		b.levels[i].n = 0
	}
}

// dist is Rect.Dist with the target's extents served from the cache.
func (b *Batch) dist(s geom.Rect) float64 {
	var d2 float64
	for ax := geom.X; ax <= geom.Z; ax++ {
		g := b.ext[ax].Gap(s.Extent(ax))
		d2 += g * g
	}
	return math.Sqrt(d2)
}

// Eval computes RectGalerkin(cfg, t, s) for the Reset target t,
// reproducing its approximation-distance dispatch from cached
// target-side quantities.
func (b *Batch) Eval(s geom.Rect) float64 {
	cfg := b.cfg
	d := b.dist(s)
	diam := 0.5 * (b.diam + s.Diameter())
	if !cfg.DisableApprox {
		if d > cfg.FarFactor*diam {
			return b.area * s.Area() / b.center.Dist(s.Center())
		}
		if d > cfg.MidFactor*diam {
			return b.area * rectPotentialAt(cfg.Ops, s, b.center)
		}
	}
	if b.t.ParallelTo(s) {
		return rectGalerkinParallel(cfg.Ops, b.t, s)
	}
	return b.evalPerp(s, d, diam)
}

// evalPerp is rectGalerkinPerp over the cached target rule: the order
// escalation picks a quadLevel, and the point loop reads the target's
// plane coordinates straight from the mapped node arrays instead of
// building a Vec3 and re-dispatching on axes per point. The selector
// codes cu/cv/cn map each source-frame axis (U, V, Normal) to one of
// {target offset, target u node, target v node} once per pair.
func (b *Batch) evalPerp(s geom.Rect, d, diam float64) float64 {
	lv := 0
	order := b.cfg.QuadOrder
	if d < 0.1*diam {
		lv, order = 2, min(order*4, quad.MaxOrder)
	} else if d < diam {
		lv, order = 1, min(order*2, quad.MaxOrder)
	}
	l := b.level(lv, order)

	cu := b.axisCode(s.UAxis())
	cv := b.axisCode(s.VAxis())
	cn := b.axisCode(s.Normal)
	ops := b.cfg.Ops
	u1, u2, v1, v2 := s.U.Lo, s.U.Hi, s.V.Lo, s.V.Hi
	off := s.Offset
	var sum float64
	for i, u := range l.us {
		var inner float64
		for j, v := range l.vs {
			vals := [3]float64{b.t.Offset, u, v}
			inner += l.wy[j] * RectPotential(ops, u1, u2, v1, v2,
				vals[cu], vals[cv], vals[cn]-off)
		}
		sum += l.wx[i] * inner
	}
	return l.hh * sum
}

// axisCode classifies axis a in the target frame: 0 = the target normal
// (coordinate is the plane offset), 1 = the target U axis, 2 = V.
func (b *Batch) axisCode(a geom.Axis) int {
	switch a {
	case b.tU:
		return 1
	case b.tV:
		return 2
	}
	return 0
}

// level returns the cached tensor rule of the given order, building it
// on first use for the current target.
func (b *Batch) level(lv, order int) *quadLevel {
	l := &b.levels[lv]
	if l.n == order {
		return l
	}
	r := quad.Gauss(order)
	hx, mx := 0.5*(b.t.U.Hi-b.t.U.Lo), 0.5*(b.t.U.Lo+b.t.U.Hi)
	hy, my := 0.5*(b.t.V.Hi-b.t.V.Lo), 0.5*(b.t.V.Lo+b.t.V.Hi)
	l.us = growFloats(l.us, order)
	l.vs = growFloats(l.vs, order)
	l.wx = growFloats(l.wx, order)
	l.wy = growFloats(l.wy, order)
	for i, x := range r.Nodes {
		l.us[i] = mx + hx*x
		l.vs[i] = my + hy*x
		l.wx[i] = r.Weights[i]
		l.wy[i] = r.Weights[i]
	}
	l.hh = hx * hy
	l.n = order
	return l
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// RectGalerkinBatch computes dst[k] = RectGalerkin(cfg, t, src[k]) for
// every source, sharing the target-side setup across the block. dst must
// have at least len(src) entries. For streaming fills (matrix rows,
// near-field blocks) use a worker-local Batch directly and skip the
// slice marshalling.
func RectGalerkinBatch(cfg *Config, t geom.Rect, src []geom.Rect, dst []float64) {
	var b Batch
	b.Reset(cfg, t)
	for k := range src {
		dst[k] = b.Eval(src[k])
	}
}
