package serve

import (
	"testing"
	"time"
)

// TestBackoffWaitClamps pins the retry-wait guarantees: every wait —
// whatever the attempt count or server advice — lands in
// [BaseDelay/2, MaxDelay], so a misbehaving peer can never induce a hot
// retry loop (zero/negative/malformed Retry-After) and a huge attempt
// count can never overflow into a negative (panicking) wait.
func TestBackoffWaitClamps(t *testing.T) {
	const base, maxWait = 100 * time.Millisecond, 10 * time.Second
	floor := base / 2
	for _, tc := range []struct {
		name    string
		attempt int
		advice  time.Duration
	}{
		{"first", 1, 0},
		{"second", 2, 0},
		{"deep", 40, 0},
		{"overflow-depth", 1 << 30, 0},
		{"zero-advice", 1, 0},
		{"negative-advice", 1, -5 * time.Second},
		{"tiny-advice", 1, time.Nanosecond},
		{"huge-advice", 1, time.Hour},
	} {
		for i := 0; i < 50; i++ { // jitter is random: sample repeatedly
			wait, _ := backoffWait(base, maxWait, tc.attempt, tc.advice)
			if wait < floor || wait > maxWait {
				t.Fatalf("%s: wait %v outside [%v, %v]", tc.name, wait, floor, maxWait)
			}
		}
	}
}

// TestBackoffWaitHonorsAdvice checks that advice longer than the
// computed backoff wins (capped at MaxDelay) and shorter advice does
// not shrink the wait.
func TestBackoffWaitHonorsAdvice(t *testing.T) {
	const base, maxWait = 100 * time.Millisecond, 10 * time.Second
	wait, honored := backoffWait(base, maxWait, 1, 3*time.Second)
	if !honored || wait != 3*time.Second {
		t.Errorf("long advice: wait %v honored %v, want 3s true", wait, honored)
	}
	wait, honored = backoffWait(base, maxWait, 1, time.Hour)
	if !honored || wait != maxWait {
		t.Errorf("over-cap advice: wait %v honored %v, want %v true", wait, honored, maxWait)
	}
	if _, honored = backoffWait(base, maxWait, 8, time.Millisecond); honored {
		t.Error("short advice reported as honored")
	}
}

// TestBackoffWaitGrows checks the exponential shape below the cap: the
// attempt-4 wait floor (pre-jitter/2) exceeds the attempt-1 ceiling.
func TestBackoffWaitGrows(t *testing.T) {
	const base, maxWait = 100 * time.Millisecond, time.Hour
	var min4, max1 time.Duration = time.Hour, 0
	for i := 0; i < 200; i++ {
		w1, _ := backoffWait(base, maxWait, 1, 0)
		w4, _ := backoffWait(base, maxWait, 4, 0)
		if w1 > max1 {
			max1 = w1
		}
		if w4 < min4 {
			min4 = w4
		}
	}
	if min4 <= max1 {
		t.Errorf("no growth: attempt-1 max %v, attempt-4 min %v", max1, min4)
	}
}

// TestParseRetryAfterMalformed pins the header parser: malformed,
// negative and zero values all come back as 0 (no advice), never as a
// negative duration.
func TestParseRetryAfterMalformed(t *testing.T) {
	for _, v := range []string{"", "garbage", "-3", "1.5.2", "Tue, 29 Feb"} {
		if d := parseRetryAfter(v); d != 0 {
			t.Errorf("parseRetryAfter(%q) = %v, want 0", v, d)
		}
	}
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("parseRetryAfter(2) = %v", d)
	}
	// Zero advice plus the backoff floor: the wait can never collapse.
	wait, honored := backoffWait(100*time.Millisecond, 10*time.Second, 1, parseRetryAfter("0"))
	if honored || wait < 50*time.Millisecond {
		t.Errorf("zero Retry-After produced wait %v (honored %v)", wait, honored)
	}
}
