// Package sched provides the work-stealing chunk scheduler shared by the
// parallel matrix-fill backends. The shared-memory fill (internal/par),
// the per-rank fill of the simulated distributed backend (internal/mpi)
// and the batch extraction engine (internal/batch) all execute their
// k-range chunks through the same primitives:
//
//   - Local(d) runs one task set on d throwaway goroutines (the classic
//     per-call worker spawn, used by standalone Extract calls);
//   - Pool is a persistent set of workers that many concurrent jobs share,
//     so a stream of extractions reuses one warm worker set instead of
//     spawning goroutines per call.
//
// In both cases tasks are dealt to per-worker deques in round-robin order
// and idle workers steal from the tail of the busiest victim, which
// absorbs the cost variance between chunks (the dynamic-scheduling
// refinement of paper Section 3's balance discussion) without a single
// contended queue.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Executor runs n indexed tasks, distributing them over workers.
// Implementations guarantee every task index in [0, n) runs exactly once
// and that Map does not return before all tasks completed.
type Executor interface {
	Map(n int, fn func(task int))
}

// falseSharingRange is the padding granularity separating per-worker
// mutable state. 128 bytes covers the 64-byte cache lines of current
// amd64/arm64 parts plus the adjacent-line spatial prefetcher, which
// pulls line pairs and would otherwise re-couple neighbouring deques.
const falseSharingRange = 128

// dequeState holds a contiguous window of task indices still to run. The
// owner pops from the front, thieves pop from the back; chunk granularity
// is coarse (matrix-fill chunks), so a mutex is cheaper than a lock-free
// deque and obviously correct.
type dequeState struct {
	mu     sync.Mutex
	tasks  []int
	lo, hi int // remaining window [lo, hi)
}

// deque pads the state to a cache-line-pair boundary: each worker hammers
// its own deque's mutex and window bounds on every task claim, and the
// thieves' remaining() scans read all of them, so two deques sharing a
// line turn every pop into cross-core traffic (false sharing).
type deque struct {
	dequeState
	_ [(falseSharingRange - unsafe.Sizeof(dequeState{})%falseSharingRange) % falseSharingRange]byte
}

func (d *deque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lo >= d.hi {
		return 0, false
	}
	t := d.tasks[d.lo]
	d.lo++
	return t, true
}

func (d *deque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lo >= d.hi {
		return 0, false
	}
	d.hi--
	return d.tasks[d.hi], true
}

func (d *deque) remaining() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hi - d.lo
}

// job is one Map call in flight: tasks dealt across per-worker deques plus
// a completion latch. The pending counter is decremented by every worker
// on every task completion, so it sits on its own cache-line pair away
// from the read-mostly header fields (deques/fn/done) that take() reads
// on each claim.
type job struct {
	deques  []*deque
	fn      func(task int)
	done    chan struct{}
	_       [falseSharingRange]byte
	pending atomic.Int64
	_       [falseSharingRange - 8]byte
}

// newJob deals n tasks round-robin over nw deques. Round-robin (rather
// than contiguous blocks) interleaves the cost profile across workers,
// since cost-balanced chunk bounds are already contiguous in k. Deques
// are allocated individually (never as one array) so the padded type's
// size keeps any two of them off shared cache lines.
func newJob(n, nw int, fn func(task int)) *job {
	j := &job{deques: make([]*deque, nw), fn: fn, done: make(chan struct{})}
	for w := range j.deques {
		cnt := n / nw
		if w < n%nw {
			cnt++
		}
		j.deques[w] = &deque{dequeState: dequeState{tasks: make([]int, 0, cnt)}}
	}
	for t := 0; t < n; t++ {
		d := j.deques[t%nw]
		d.tasks = append(d.tasks, t)
		d.hi++
	}
	j.pending.Store(int64(n))
	return j
}

// take claims one task for worker w: own deque first, then steal from the
// victim with the most remaining work.
func (j *job) take(w int) (int, bool) {
	if t, ok := j.deques[w].popFront(); ok {
		return t, true
	}
	for {
		best, bestLeft := -1, 0
		for v := range j.deques {
			if v == w {
				continue
			}
			if left := j.deques[v].remaining(); left > bestLeft {
				best, bestLeft = v, left
			}
		}
		if best < 0 {
			return 0, false
		}
		if t, ok := j.deques[best].popBack(); ok {
			return t, true
		}
		// Lost the race to the victim's last task; rescan.
	}
}

// finish marks one task complete, closing the latch on the last.
func (j *job) finish() {
	if j.pending.Add(-1) == 0 {
		close(j.done)
	}
}

// local is the throwaway-goroutine executor.
type local struct{ workers int }

// Local returns an executor that spawns d goroutines per Map call
// (d <= 0 means GOMAXPROCS). It is the per-call analog of Pool.
func Local(d int) Executor {
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	return local{workers: d}
}

// Map implements Executor.
func (l local) Map(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	nw := l.workers
	if nw > n {
		nw = n
	}
	j := newJob(n, nw, fn)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t, ok := j.take(w)
				if !ok {
					return
				}
				fn(t)
				j.finish()
			}
		}(w)
	}
	wg.Wait()
}

// Budgeted wraps an executor so that every Map call occupies at most k
// of its workers at once: the call submits k feeder tasks that claim the
// n real tasks from a shared counter. A long-running service hands each
// request a Budgeted view of one shared persistent Pool, so concurrent
// requests divide the pool instead of each trying to spread across all
// of it (the oversubscription the per-request budget exists to prevent).
// k = 1 runs inline in the caller without touching the executor at all;
// k <= 0 returns ex unwrapped (no budget).
//
// The wrapped fn must not itself call Map on the same underlying Pool:
// feeders run on pool workers, and a nested blocking Map from a worker
// can deadlock the pool. All fill/apply call sites in this module are
// flat (they Map only from request goroutines), which is what makes the
// budget safe to thread through the operator stack.
func Budgeted(ex Executor, k int) Executor {
	if k <= 0 || ex == nil {
		return ex
	}
	return budgeted{ex: ex, k: k}
}

type budgeted struct {
	ex Executor
	k  int
}

// Map implements Executor: every task index in [0, n) runs exactly once
// and Map returns only after all completed, on at most k workers.
func (b budgeted) Map(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	k := b.k
	if k > n {
		k = n
	}
	if k == 1 {
		for t := 0; t < n; t++ {
			fn(t)
		}
		return
	}
	var next atomic.Int64
	b.ex.Map(k, func(int) {
		for {
			t := int(next.Add(1)) - 1
			if t >= n {
				return
			}
			fn(t)
		}
	})
}

// Pool is a persistent work-stealing worker pool. Concurrent Map calls
// from any number of goroutines share the same workers; each call blocks
// until its own tasks are done. Close stops the workers (outstanding Map
// calls complete first).
type Pool struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*job
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts a pool of d workers (d <= 0 means GOMAXPROCS).
func NewPool(d int) *Pool {
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: d}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(d)
	for w := 0; w < d; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Map implements Executor: it enqueues n tasks and blocks until all ran.
func (p *Pool) Map(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	j := newJob(n, p.workers, fn)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		// The pool is gone; run inline rather than deadlock the caller.
		for t := 0; t < n; t++ {
			fn(t)
		}
		return
	}
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Broadcast()
	<-j.done
}

// Close stops the workers after in-flight jobs drain.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// worker is the main loop of pool worker w: claim tasks from any active
// job (own deque first, then steal), sleep when no claimable work exists.
func (p *Pool) worker(w int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.jobs) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.jobs) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		jobs := make([]*job, len(p.jobs))
		copy(jobs, p.jobs)
		p.mu.Unlock()

		ran := false
		for _, j := range jobs {
			for {
				t, ok := j.take(w % len(j.deques))
				if !ok {
					break
				}
				ran = true
				j.fn(t)
				if j.pending.Add(-1) == 0 {
					close(j.done)
					p.removeJob(j)
				}
			}
		}
		if !ran {
			// Every visible task is claimed by another worker; wait for
			// a new job (or shutdown) instead of spinning. Job removal
			// also broadcasts, so we re-check soon after state changes.
			p.mu.Lock()
			if len(p.jobs) == len(jobs) && !p.closed && sameJobs(p.jobs, jobs) {
				p.cond.Wait()
			}
			p.mu.Unlock()
		}
	}
}

// removeJob deletes a completed job from the active list.
func (p *Pool) removeJob(j *job) {
	p.mu.Lock()
	for i, q := range p.jobs {
		if q == j {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

func sameJobs(a, b []*job) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
