package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle embedded in 3-D space. It lies in the
// plane normal to Normal at offset Offset, and spans U x V in the two
// remaining axes (U is the lower-numbered in-plane axis, V the higher; e.g.
// for Normal == Z, U spans X and V spans Y).
//
// Rect is the fundamental support of both piecewise-constant panels and
// instantiable basis-function templates.
type Rect struct {
	Normal Axis
	Offset float64 // coordinate along Normal
	U, V   Interval
}

// UAxis returns the axis spanned by the U interval.
func (r Rect) UAxis() Axis {
	switch r.Normal {
	case X:
		return Y
	case Y:
		return X
	default:
		return X
	}
}

// VAxis returns the axis spanned by the V interval.
func (r Rect) VAxis() Axis {
	switch r.Normal {
	case X:
		return Z
	case Y:
		return Z
	default:
		return Y
	}
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.U.Len() * r.V.Len() }

// Center returns the rectangle's centroid in 3-D.
func (r Rect) Center() Vec3 {
	var c Vec3
	c = c.WithComponent(r.Normal, r.Offset)
	c = c.WithComponent(r.UAxis(), r.U.Mid())
	c = c.WithComponent(r.VAxis(), r.V.Mid())
	return c
}

// Point maps in-plane coordinates (u, v) to a 3-D point on the rectangle's
// plane (u and v need not lie inside the intervals).
func (r Rect) Point(u, v float64) Vec3 {
	var p Vec3
	p = p.WithComponent(r.Normal, r.Offset)
	p = p.WithComponent(r.UAxis(), u)
	p = p.WithComponent(r.VAxis(), v)
	return p
}

// Diameter returns the diagonal length of the rectangle.
func (r Rect) Diameter() float64 {
	du, dv := r.U.Len(), r.V.Len()
	return math.Sqrt(du*du + dv*dv)
}

// Dist returns the Euclidean distance between the closest points of r and s.
// It is exact for axis-aligned rectangles in any relative orientation.
func (r Rect) Dist(s Rect) float64 {
	var d2 float64
	for ax := X; ax <= Z; ax++ {
		ri := r.axisExtent(ax)
		si := s.axisExtent(ax)
		g := ri.Gap(si)
		d2 += g * g
	}
	return math.Sqrt(d2)
}

// DistToPoint returns the distance from p to the closest point of r.
func (r Rect) DistToPoint(p Vec3) float64 {
	dn := p.Component(r.Normal) - r.Offset
	du := r.U.DistTo(p.Component(r.UAxis()))
	dv := r.V.DistTo(p.Component(r.VAxis()))
	return math.Sqrt(dn*dn + du*du + dv*dv)
}

// axisExtent returns the (possibly degenerate) extent of r along axis ax.
func (r Rect) axisExtent(ax Axis) Interval {
	switch ax {
	case r.Normal:
		return Interval{r.Offset, r.Offset}
	case r.UAxis():
		return r.U
	default:
		return r.V
	}
}

// Extent returns the extent of r along axis ax (degenerate along Normal).
func (r Rect) Extent(ax Axis) Interval { return r.axisExtent(ax) }

// ParallelTo reports whether r and s lie in parallel planes.
func (r Rect) ParallelTo(s Rect) bool { return r.Normal == s.Normal }

// Coplanar reports whether r and s lie in the same plane.
func (r Rect) Coplanar(s Rect) bool {
	return r.Normal == s.Normal && r.Offset == s.Offset
}

// SplitGrid subdivides the rectangle into an nu x nv grid of sub-rectangles,
// appending them to dst and returning the extended slice.
func (r Rect) SplitGrid(nu, nv int, dst []Rect) []Rect {
	du := r.U.Len() / float64(nu)
	dv := r.V.Len() / float64(nv)
	for i := 0; i < nu; i++ {
		u0 := r.U.Lo + float64(i)*du
		u1 := u0 + du
		if i == nu-1 {
			u1 = r.U.Hi
		}
		for j := 0; j < nv; j++ {
			v0 := r.V.Lo + float64(j)*dv
			v1 := v0 + dv
			if j == nv-1 {
				v1 = r.V.Hi
			}
			dst = append(dst, Rect{Normal: r.Normal, Offset: r.Offset,
				U: Interval{u0, u1}, V: Interval{v0, v1}})
		}
	}
	return dst
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect{n=%v@%.3g u=[%.3g,%.3g] v=[%.3g,%.3g]}",
		r.Normal, r.Offset, r.U.Lo, r.U.Hi, r.V.Lo, r.V.Hi)
}

// Box is an axis-aligned 3-D box, the building block of Manhattan conductors.
type Box struct {
	Min, Max Vec3
}

// NewBox returns the box spanning the two corner points, normalizing so that
// Min <= Max component-wise.
func NewBox(a, b Vec3) Box {
	return Box{
		Min: Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)},
		Max: Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)},
	}
}

// Extent returns the box's interval along axis ax.
func (b Box) Extent(ax Axis) Interval {
	return Interval{b.Min.Component(ax), b.Max.Component(ax)}
}

// Center returns the box centroid.
func (b Box) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box dimensions.
func (b Box) Size() Vec3 { return b.Max.Sub(b.Min) }

// Faces returns the six rectangular faces of the box. Face order is
// -X, +X, -Y, +Y, -Z, +Z.
func (b Box) Faces() [6]Rect {
	var fs [6]Rect
	for i, ax := range [3]Axis{X, Y, Z} {
		u, v := faceSpan(ax)
		lo := Rect{Normal: ax, Offset: b.Min.Component(ax), U: b.Extent(u), V: b.Extent(v)}
		hi := lo
		hi.Offset = b.Max.Component(ax)
		fs[2*i] = lo
		fs[2*i+1] = hi
	}
	return fs
}

// faceSpan returns the two in-plane axes (U, V) for a face normal to ax,
// consistent with Rect.UAxis/VAxis.
func faceSpan(ax Axis) (Axis, Axis) {
	switch ax {
	case X:
		return Y, Z
	case Y:
		return X, Z
	default:
		return X, Y
	}
}
