// Package plan implements staged extraction plans: an incremental
// build/solve chain that re-extracts geometry variants (h-sweeps,
// width/spacing studies, corpus batches) without paying the full setup
// cost per variant.
//
// # Stage DAG
//
// A piecewise-constant extraction factors into a chain of stage
// artifacts, each content-addressed by what it actually depends on:
//
//	Discretization  panel set + provenance        <- geometry, maxEdge
//	Topology        octree + interaction lists,   <- panel centers,
//	                pFFT grid dims + stencils        operator options
//	NearField       exact-Galerkin near entries   <- pairwise relative
//	                (fmm CSR, pfft precorrection,    panel geometry,
//	                dense matrix)                    kernel cfg, eps
//	Factorization   block-Jacobi Cholesky factors <- near-field blocks
//	Solve           Krylov/direct solve + C       <- all above, tol
//
// # Invalidation keys and reuse rules
//
// A geometry delta invalidates only the stages that truly changed:
//
//   - Identical geometry (every box bitwise equal, geom.Diff.Identical):
//     every stage is reused; Extract returns the cached result without
//     touching any artifact. A tolerance change re-solves on the reused
//     pipeline (tolerance is a solve-only input); a dielectric change
//     rescales the result (the capacitance of a homogeneous medium is
//     exactly linear in eps).
//   - Rigid box translations (geom.Diff classifies every box as
//     Same/Translated and panel counts align): panels map 1:1 across
//     variants and are grouped into rigid-motion classes, one per
//     distinct exact translation. Every near-field integral between two
//     panels of the same class has bit-identical relative geometry and
//     is copied from the previous variant instead of re-integrated
//     (fmm/pfft per-entry reuse, dense per-entry reuse); near blocks
//     whose panels share one class keep their Cholesky factors. The
//     Discretization and Topology stages are rebuilt — both are
//     O(N log N) with no kernel integration, noise next to the
//     integral-bearing stages they feed. The previous variant's charge
//     solution warm-starts the Krylov solves.
//   - Anything else (resized boxes, changed counts): the affected
//     panels' entries are re-integrated; incomparable geometries
//     rebuild from scratch.
//
// Reuse never changes what is computed, only where the value comes
// from: copied entries are bitwise equal to what a canonical fresh
// integration at the previous coordinates produced, so plan-reused
// sweeps match independent extractions to the coordinate-noise floor,
// far below 1e-10 (TestPlanIncrementalConsistency). Preconditioner
// factor reuse cannot affect results at all — only iteration counts.
//
// A Plan is safe for concurrent use but serializes extractions; for
// concurrent sweeps, shard the variants across plans (extract.SweepH
// runs one plan per contiguous chunk of sorted h values).
package plan

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/pfft"
	"parbem/internal/sched"
)

// Options configures a Plan. MaxEdge is required; the zero Pipeline
// value selects the backend with the cost model, the preconditioner
// automatically and a 1e-4 tolerance, exactly like op.Options.
type Options struct {
	// MaxEdge is the panelization edge length in meters (required).
	MaxEdge float64
	// Pipeline configures the solve: backend, preconditioner,
	// tolerance, per-backend operator tuning.
	Pipeline op.Options
	// Eps is the dielectric permittivity (0 = vacuum). See SetEps.
	Eps float64
	// Exec optionally supplies the executor for parallel assembly and
	// reductions (nil = throwaway sched.Local per stage build).
	Exec sched.Executor
	// NoWarmStart disables seeding iterative solves with the previous
	// variant's charge solution.
	NoWarmStart bool
	// Artifacts optionally supplies a persistent stage-artifact store
	// (see artifact.go): near-field values and block factors are read
	// through it before building and written through after, so a
	// restarted or freshly-started process skips the integration cost
	// for families it (or a peer) has built before. Nil disables
	// persistence.
	Artifacts ArtifactStore
}

// Stats counts stage builds and reuse over a plan's lifetime. The JSON
// tags keep machine-readable emitters (capx -json) on the snake_case
// convention of the rest of their payloads.
type Stats struct {
	Extracts  int `json:"extracts"`   // Extract calls
	CacheHits int `json:"cache_hits"` // identical-geometry calls served without any build
	Rescales  int `json:"rescales"`   // identical-geometry calls served by eps rescaling
	Resolves  int `json:"resolves"`   // identical-geometry calls re-solved (tol change)

	DiscBuilds int `json:"disc_builds"` // Discretization stage builds
	TopoBuilds int `json:"topo_builds"` // Topology stage builds
	NearBuilds int `json:"near_builds"` // NearField stage builds
	FactBuilds int `json:"fact_builds"` // Factorization stage builds (pipeline constructions)

	NearReused   int64 `json:"near_reused"`   // near-field entries copied across variants
	NearComputed int64 `json:"near_computed"` // near-field entries integrated fresh
	DenseReused  int64 `json:"dense_reused"`  // dense upper-triangle entries copied
	FactReused   int   `json:"fact_reused"`   // block factors adopted across variants
	WarmStarts   int   `json:"warm_starts"`   // solves seeded from the previous variant

	// Persistent-store traffic (zero unless Options.Artifacts is set).
	ArtifactHits   int64 `json:"artifact_hits"`   // stage payloads decoded from the store
	ArtifactMisses int64 `json:"artifact_misses"` // store lookups that found nothing usable
	ArtifactPuts   int64 `json:"artifact_puts"`   // stage payloads written through
}

// StageReuse flags which stage artifacts of a Result came (at least
// partially) from the previous variant.
type StageReuse struct {
	Discretization bool
	Topology       bool
	NearField      bool
	Factorization  bool
}

// StageTimings is the per-stage wall time of one Extract.
type StageTimings struct {
	Discretize time.Duration
	Topology   time.Duration
	NearField  time.Duration
	Factorize  time.Duration
	Solve      time.Duration
}

// Result is a completed plan extraction. It is shared with the plan's
// internal state (cache hits return the same object; Rho seeds the next
// variant's warm start) and must be treated as read-only.
type Result struct {
	C   *linalg.Dense // n x n capacitance matrix (F)
	Rho *linalg.Dense // N x n panel charge densities per excitation
	// Panels is the discretization the charges live on (shared).
	Panels        []geom.Panel
	NumPanels     int
	NumConductors int
	Iterations    int // total Krylov iterations (0 for direct)
	Backend       op.Backend
	Precision     op.Precision // resolved matvec arithmetic (never auto)
	Reused        StageReuse
	Stages        StageTimings
	Total         time.Duration
}

// Interrupted reports an extraction stopped at a context checkpoint:
// the stage boundaries of the build chain and the per-iteration GMRES
// checkpoints all observe the caller's context, so a deadline or client
// cancellation exits early instead of completing work nobody will read.
// Stage names the stage that was running (or about to run) when the
// context fired; Iterations is the Krylov work completed before the
// stop. Unwrap exposes the context error, so
// errors.Is(err, context.DeadlineExceeded) distinguishes a deadline
// from a cancellation.
//
// An interrupted extraction never corrupts the plan: stage artifacts of
// the previous variant stay installed, so a later retry (or the next
// request of the family) proceeds as if the interrupted call never
// happened.
type Interrupted struct {
	// Stage is the interrupted stage: "discretize", "topology",
	// "near-field", "factorize" or "solve".
	Stage string
	// Elapsed is the wall time spent in this extraction before the stop.
	Elapsed time.Duration
	// Iterations is the Krylov iteration count completed (solve stage).
	Iterations int
	// Residual is the worst relative GMRES residual at the stop (solve
	// stage; 0 = unknown, 1 = no progress beyond the initial guess).
	Residual float64
	// PartialC is the best-effort capacitance matrix reduced from the
	// last GMRES iterates (solve stage only; nil when the stop landed
	// before any iterate). Its accuracy is bounded by Residual, not the
	// requested tolerance.
	PartialC *linalg.Dense
	// Err is the context error.
	Err error
}

// Error implements the error interface.
func (e *Interrupted) Error() string {
	return fmt.Sprintf("plan: %s stage interrupted after %v: %v", e.Stage, e.Elapsed, e.Err)
}

// Unwrap exposes the underlying context error.
func (e *Interrupted) Unwrap() error { return e.Err }

// Plan caches stage artifacts across geometry variants. Create with
// New; Extract may be called concurrently (calls serialize).
type Plan struct {
	mu    sync.Mutex
	opt   Options
	cfg   *kernel.Config
	eps   float64
	cur   *variant
	stats Stats
}

// variant is the cached state of the most recent geometry.
type variant struct {
	st     *geom.Structure // geometry snapshot (deep copy)
	prov   []geom.BoxRef
	spec   op.Spec
	be     op.Backend
	fmmOp  *fmm.Operator
	pfftOp *pfft.Operator
	dense  *linalg.Dense
	pipe   *op.Pipeline
	// factors maps a near block's exact unknown sequence to its
	// Cholesky factor (Factorization stage artifact).
	factors map[string]*linalg.Cholesky
	res     *Result
	eps     float64 // dielectric the artifacts were built at
	tol     float64 // tolerance res was solved at
	// resScaled caches the last eps-rescaled result so repeated
	// identical-geometry extractions at epsScaled are cache hits.
	resScaled *Result
	epsScaled float64
}

// New creates a plan. MaxEdge must be positive.
func New(opt Options) (*Plan, error) {
	if opt.MaxEdge <= 0 {
		return nil, errors.New("plan: MaxEdge must be positive")
	}
	eps := opt.Eps
	if eps == 0 {
		eps = kernel.Eps0
	}
	return &Plan{opt: opt, cfg: kernel.DefaultConfig(), eps: eps}, nil
}

// SetEps updates the dielectric permittivity (0 = vacuum) for
// subsequent extractions. For unchanged geometry this costs one
// rescale: the homogeneous-medium capacitance is exactly linear in eps,
// so every stage artifact is reused.
func (p *Plan) SetEps(eps float64) {
	if eps == 0 {
		eps = kernel.Eps0
	}
	p.mu.Lock()
	p.eps = eps
	p.mu.Unlock()
}

// SetTol updates the Krylov tolerance (0 = the 1e-4 default) for
// subsequent extractions. Tolerance is a solve-only input: no stage
// artifact is invalidated.
func (p *Plan) SetTol(tol float64) {
	p.mu.Lock()
	p.opt.Pipeline.Tol = tol
	if p.cur != nil {
		p.cur.pipe.SetTol(tol)
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the plan's build/reuse counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Extract runs one extraction, reusing every stage artifact of the
// previous variant that the geometry delta leaves valid.
func (p *Plan) Extract(st *geom.Structure) (*Result, error) {
	return p.ExtractCtx(context.Background(), st)
}

// ExtractCtx is Extract bounded by a context: the stage boundaries of
// the build chain and the solve's GMRES iterations observe ctx, so a
// deadline or cancellation stops the extraction early with an
// *Interrupted error instead of completing work nobody will read. A nil
// ctx means context.Background(). Identical-geometry cache hits and
// rescales are served regardless (they cost microseconds).
func (p *Plan) ExtractCtx(ctx context.Context, st *geom.Structure) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Extracts++
	if err := st.Validate(); err != nil {
		return nil, err
	}
	if cur := p.cur; cur != nil && sameGeometry(cur.st, st) {
		if tolEqual(p.opt.Pipeline, cur.tol) || p.opt.Pipeline.Direct {
			if p.eps == cur.eps {
				p.stats.CacheHits++
				return cur.res, nil
			}
			return p.rescale(cur)
		}
		// Tolerance changed: re-solve on the reused artifacts (built at
		// cur.eps) first, then rescale if the dielectric differs too —
		// rescales must always derive from a result at the configured
		// tolerance.
		if _, err := p.resolve(ctx, cur); err != nil {
			return nil, err
		}
		if p.eps == cur.eps {
			return cur.res, nil
		}
		return p.rescale(cur)
	}
	return p.build(ctx, st)
}

// tolEqual reports whether the configured tolerance matches the one a
// result was solved at (normalizing the zero default).
func tolEqual(o op.Options, tol float64) bool {
	want := o.Tol
	if want == 0 {
		want = 1e-4
	}
	return want == tol
}

// resolve re-runs the solve stage on fully reused artifacts (tolerance
// change on unchanged geometry).
func (p *Plan) resolve(ctx context.Context, cur *variant) (*Result, error) {
	p.stats.Resolves++
	t0 := time.Now()
	var x0 *linalg.Dense
	if !p.opt.NoWarmStart {
		x0 = cur.res.Rho
		p.stats.WarmStarts++
	}
	opres, err := cur.pipe.ExtractWarmCtx(ctx, x0)
	if err != nil {
		return nil, interrupted(err, "solve", time.Since(t0))
	}
	res := p.wrap(cur, opres, StageReuse{true, true, true, true}, StageTimings{Solve: time.Since(t0)}, t0)
	cur.res = res
	cur.tol = solvedTol(p.opt.Pipeline)
	cur.resScaled = nil // rescales derive from res; drop the stale one
	return res, nil
}

// rescale serves an identical-geometry extraction at a different
// dielectric: C and Rho are exactly linear in eps. The scaled result is
// cached, so polling the same variant at the new dielectric hits.
func (p *Plan) rescale(cur *variant) (*Result, error) {
	if cur.resScaled != nil && cur.epsScaled == p.eps {
		p.stats.CacheHits++
		return cur.resScaled, nil
	}
	p.stats.Rescales++
	t0 := time.Now()
	s := p.eps / cur.eps
	base := cur.res
	scale := func(m *linalg.Dense) *linalg.Dense {
		out := m.Clone()
		for i := range out.Data {
			out.Data[i] *= s
		}
		return out
	}
	res := &Result{
		C:             scale(base.C),
		Rho:           scale(base.Rho),
		Panels:        base.Panels,
		NumPanels:     base.NumPanels,
		NumConductors: base.NumConductors,
		Iterations:    base.Iterations,
		Backend:       base.Backend,
		Precision:     base.Precision,
		Reused:        StageReuse{true, true, true, true},
		Stages:        StageTimings{Solve: time.Since(t0)},
		Total:         time.Since(t0),
	}
	cur.resScaled, cur.epsScaled = res, p.eps
	return res, nil
}

// solvedTol normalizes the configured tolerance.
func solvedTol(o op.Options) float64 {
	if o.Tol == 0 {
		return 1e-4
	}
	return o.Tol
}

// interrupted wraps a context-checkpoint error from the solve layer as
// a stage-tagged *Interrupted; non-context errors pass through
// unchanged.
func interrupted(err error, stage string, elapsed time.Duration) error {
	var oi *op.Interrupted
	if errors.As(err, &oi) {
		return &Interrupted{
			Stage: stage, Elapsed: elapsed, Iterations: oi.Iterations,
			Residual: oi.Residual, PartialC: oi.PartialC, Err: oi.Err,
		}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		cause := context.Canceled
		if errors.Is(err, context.DeadlineExceeded) {
			cause = context.DeadlineExceeded
		}
		return &Interrupted{Stage: stage, Elapsed: elapsed, Err: cause}
	}
	return err
}

// build runs the staged chain for a new geometry variant.
func (p *Plan) build(ctx context.Context, st *geom.Structure) (*Result, error) {
	t0 := time.Now()
	cur := p.cur
	// check is the stage-boundary context checkpoint: the expensive
	// stages (near-field integration, factorization, solve) never start
	// once the deadline has passed. An interrupted build leaves p.cur on
	// the previous variant — no partial artifacts are ever installed.
	check := func(stage string) error {
		if err := ctx.Err(); err != nil {
			return &Interrupted{Stage: stage, Elapsed: time.Since(t0), Err: err}
		}
		return nil
	}
	if err := check("discretize"); err != nil {
		return nil, err
	}

	// Discretization.
	tD := time.Now()
	snap := st.Clone()
	panels, prov := snap.PanelizeProv(p.opt.MaxEdge)
	if len(panels) == 0 {
		return nil, errors.New("plan: no panels generated")
	}
	spec := op.Spec{
		Panels:        panels,
		NumConductors: snap.NumConductors(),
		Eps:           p.eps,
		Cfg:           p.cfg,
		Exec:          p.opt.Exec,
	}
	p.stats.DiscBuilds++
	dDisc := time.Since(tD)

	// Rigid-motion classes vs the previous variant (nil = no reuse).
	var class []int32
	if cur != nil && cur.eps == p.eps {
		class = motionClasses(cur, snap, prov)
	}
	be := op.ResolveBackend(spec, p.opt.Pipeline)

	nv := &variant{st: snap, prov: prov, spec: spec, be: be, eps: p.eps}
	res := &Result{
		Panels:        panels,
		NumPanels:     len(panels),
		NumConductors: spec.NumConductors,
		Backend:       be,
		Reused: StageReuse{
			Discretization: false,
			NearField:      class != nil && cur.be == be,
		},
	}
	res.Stages.Discretize = dDisc
	if err := check("topology"); err != nil {
		return nil, err
	}

	// Topology + NearField per backend. akey is the persistent-store
	// family hash ("" = persistence off or unkeyable build); the
	// near-field payload is adopted on a store hit and written through
	// on a miss.
	var pb op.Prebuilt
	var akey string
	switch be {
	case op.BackendDense:
		akey = p.artifactKey(snap, be, nil, nil)
		tN := time.Now()
		adopted := false
		if akey != "" {
			if data, ok := p.opt.Artifacts.Get(akey + nearSuffix); ok {
				if d := decodeDenseArtifact(data, len(panels)); d != nil {
					nv.dense = d
					adopted = true
					p.stats.ArtifactHits++
				}
			}
			if !adopted {
				p.stats.ArtifactMisses++
			}
		}
		switch {
		case adopted:
			res.Reused.NearField = true
		case res.Reused.NearField && cur.dense != nil:
			var nr int64
			nv.dense, nr = spec.AssembleDenseReuse(cur.dense, class)
			p.stats.DenseReused += nr
			res.Reused.NearField = nr > 0
		default:
			nv.dense = spec.AssembleDense()
			res.Reused.NearField = false
		}
		if akey != "" && !adopted {
			p.opt.Artifacts.Put(akey+nearSuffix, encodeDenseArtifact(nv.dense))
			p.stats.ArtifactPuts++
		}
		p.stats.NearBuilds++
		res.Stages.NearField = time.Since(tN)
		pb.Dense = nv.dense
	case op.BackendFMM:
		fo := op.FMMOptions(spec, p.opt.Pipeline)
		akey = p.artifactKey(snap, be, &fo, nil)
		tT := time.Now()
		topo := fmm.NewTopology(spec.Panels, fo)
		p.stats.TopoBuilds++
		res.Stages.Topology = time.Since(tT)
		if err := check("near-field"); err != nil {
			return nil, err
		}
		var r *fmm.Reuse
		if res.Reused.NearField && cur.fmmOp != nil {
			r = &fmm.Reuse{Prev: cur.fmmOp, Class: class}
		}
		artHit := false
		if akey != "" {
			if data, ok := p.opt.Artifacts.Get(akey + nearSuffix); ok {
				if vals := decodeFMMNearArtifact(data); vals != nil {
					if r == nil {
						r = &fmm.Reuse{}
					}
					r.Vals = vals
					artHit = true
					p.stats.ArtifactHits++
				}
			}
			if !artHit {
				p.stats.ArtifactMisses++
			}
		}
		tN := time.Now()
		nv.fmmOp = fmm.NewOperatorWith(topo, spec.Panels, fo, r)
		copied, computed := nv.fmmOp.NearReuse()
		p.stats.NearReused += copied
		p.stats.NearComputed += computed
		res.Reused.NearField = copied > 0
		p.stats.NearBuilds++
		res.Stages.NearField = time.Since(tN)
		if akey != "" && !artHit {
			p.opt.Artifacts.Put(akey+nearSuffix, encodeFMMNearArtifact(nv.fmmOp.NearVals()))
			p.stats.ArtifactPuts++
		}
		pb.Operator = nv.fmmOp
	case op.BackendPFFT:
		po := op.PFFTOptions(spec, p.opt.Pipeline)
		akey = p.artifactKey(snap, be, nil, &po)
		var r *pfft.Reuse
		if res.Reused.NearField && cur.pfftOp != nil {
			r = &pfft.Reuse{Prev: cur.pfftOp, Class: class}
		}
		artHit := false
		if akey != "" {
			if data, ok := p.opt.Artifacts.Get(akey + nearSuffix); ok {
				if a := decodePFFTNearArtifact(data, len(panels)); a != nil {
					if r == nil {
						r = &pfft.Reuse{}
					}
					r.Artifact = a
					artHit = true
					p.stats.ArtifactHits++
				}
			}
			if !artHit {
				p.stats.ArtifactMisses++
			}
		}
		nv.pfftOp = pfft.NewOperatorReuse(spec.Panels, po, r)
		copied, computed := nv.pfftOp.NearReuse()
		p.stats.NearReused += copied
		p.stats.NearComputed += computed
		// KernelShared adopts the previous variant's half-spectrum
		// kernel FFT when the padded grid dims and spacing match; the
		// r2c layout halves what a shared (or rebuilt) spectrum costs.
		res.Reused.Topology = nv.pfftOp.KernelShared()
		res.Reused.NearField = copied > 0
		p.stats.TopoBuilds++
		p.stats.NearBuilds++
		res.Stages.Topology, res.Stages.NearField = nv.pfftOp.PhaseTimes()
		if akey != "" && !artHit {
			p.opt.Artifacts.Put(akey+nearSuffix, encodePFFTNearArtifact(nv.pfftOp.NearArtifact()))
			p.stats.ArtifactPuts++
		}
		pb.Operator = nv.pfftOp
	default:
		return nil, errors.New("plan: unknown backend")
	}

	// Factorization: adopt unchanged blocks' Cholesky factors — from the
	// previous in-memory variant when rigid-motion classes align, else
	// from the persistent store (same family hash, so block matrices are
	// bitwise identical).
	if err := check("factorize"); err != nil {
		return nil, err
	}
	pb.Factors = factorLookup(cur, class)
	factHit := false
	if akey != "" {
		if data, ok := p.opt.Artifacts.Get(akey + factSuffix); ok {
			if m := decodeFactorArtifact(data); m != nil {
				pb.Factors = chainFactors(pb.Factors, artifactFactors(m))
				factHit = true
				p.stats.ArtifactHits++
			}
		}
		if !factHit {
			p.stats.ArtifactMisses++
		}
	}
	tF := time.Now()
	popt := p.opt.Pipeline
	popt.Backend = be
	pipe, err := op.NewPrebuilt(spec, popt, pb)
	if err != nil {
		return nil, err
	}
	nv.pipe = pipe
	p.stats.FactBuilds++
	res.Stages.Factorize = time.Since(tF)
	if bj, ok := pipe.Preconditioner().(*op.BlockJacobi); ok {
		p.stats.FactReused += bj.ReusedFactors()
		res.Reused.Factorization = bj.ReusedFactors() > 0
		nv.factors = factorMap(bj)
		if akey != "" && !factHit && len(nv.factors) > 0 {
			p.opt.Artifacts.Put(akey+factSuffix, encodeFactorArtifact(nv.factors))
			p.stats.ArtifactPuts++
		}
	}

	// Solve (warm-started from the previous variant when aligned).
	if err := check("solve"); err != nil {
		return nil, err
	}
	tS := time.Now()
	var x0 *linalg.Dense
	if !p.opt.NoWarmStart && !popt.Direct && cur != nil && cur.res != nil &&
		cur.res.Rho.Rows == len(panels) && cur.res.Rho.Cols == spec.NumConductors {
		x0 = cur.res.Rho
		p.stats.WarmStarts++
	}
	opres, err := pipe.ExtractWarmCtx(ctx, x0)
	if err != nil {
		return nil, interrupted(err, "solve", time.Since(t0))
	}
	res.Stages.Solve = time.Since(tS)
	res.C, res.Rho = opres.C, opres.Rho
	res.Iterations = opres.Iterations
	res.Precision = opres.Precision
	res.Total = time.Since(t0)

	nv.res = res
	nv.tol = solvedTol(p.opt.Pipeline)
	p.cur = nv
	return res, nil
}

// wrap assembles a Result around an op.Result for the reuse paths.
func (p *Plan) wrap(cur *variant, opres *op.Result, reused StageReuse, stages StageTimings, t0 time.Time) *Result {
	return &Result{
		C:             opres.C,
		Rho:           opres.Rho,
		Panels:        cur.spec.Panels,
		NumPanels:     len(cur.spec.Panels),
		NumConductors: cur.spec.NumConductors,
		Iterations:    opres.Iterations,
		Backend:       cur.be,
		Precision:     opres.Precision,
		Reused:        reused,
		Stages:        stages,
		Total:         time.Since(t0),
	}
}

// sameGeometry reports bitwise-identical conductor boxes (names are
// irrelevant to extraction ordering and results). It allocates nothing:
// the identical-geometry path is the cache hit the AllocsPerRun guard
// pins.
func sameGeometry(a, b *geom.Structure) bool {
	if len(a.Conductors) != len(b.Conductors) {
		return false
	}
	for ci := range a.Conductors {
		ab, bb := a.Conductors[ci].Boxes, b.Conductors[ci].Boxes
		if len(ab) != len(bb) {
			return false
		}
		for k := range ab {
			if ab[k] != bb[k] {
				return false
			}
		}
	}
	return true
}

// motionClasses groups the new variant's panels by exact rigid
// translation since the previous variant: panels of a Same box share
// the zero-delta class, panels of a box translated by delta share
// delta's class, panels of reshaped boxes get -1. Returns nil when the
// structures are incomparable or panels do not align 1:1 by index.
func motionClasses(cur *variant, st *geom.Structure, prov []geom.BoxRef) []int32 {
	d := geom.Diff(cur.st, st)
	if !d.Comparable {
		return nil
	}
	if len(prov) != len(cur.prov) {
		return nil
	}
	// Panel indices align iff every box contributed the same panel
	// count; equal total plus equal per-index provenance pins that.
	for i := range prov {
		if prov[i] != cur.prov[i] {
			return nil
		}
	}
	classOf := map[geom.Vec3]int32{}
	// Per-box class, resolved once per box then fanned out to panels.
	boxClass := make([][]int32, len(d.Boxes))
	for ci := range d.Boxes {
		boxClass[ci] = make([]int32, len(d.Boxes[ci]))
		for k, bd := range d.Boxes[ci] {
			if bd.Change == geom.BoxChanged {
				boxClass[ci][k] = -1
				continue
			}
			id, ok := classOf[bd.Delta]
			if !ok {
				id = int32(len(classOf))
				classOf[bd.Delta] = id
			}
			boxClass[ci][k] = id
		}
	}
	cls := make([]int32, len(prov))
	for i, pr := range prov {
		cls[i] = boxClass[pr.Conductor][pr.Box]
	}
	return cls
}

// factorMap keys a preconditioner's factorized blocks by their exact
// unknown sequence.
func factorMap(bj *op.BlockJacobi) map[string]*linalg.Cholesky {
	idx, chol := bj.Factors()
	m := make(map[string]*linalg.Cholesky, len(idx))
	var buf []byte
	for k := range idx {
		if chol[k] == nil {
			continue
		}
		m[string(blockKey(&buf, idx[k]))] = chol[k]
	}
	return m
}

// blockKey serializes a block's unknown sequence into buf.
func blockKey(buf *[]byte, ix []int32) []byte {
	b := (*buf)[:0]
	for _, i := range ix {
		b = binary.LittleEndian.AppendUint32(b, uint32(i))
	}
	*buf = b
	return b
}

// factorLookup builds the NewPrebuilt factor lookup: a previous block's
// factor is adopted when the new block covers the exact same unknown
// sequence and every unknown kept its rigid-motion class (so the block
// matrix is bitwise the copied previous one). Factor reuse can never
// change results — the preconditioner only steers iteration counts.
func factorLookup(cur *variant, class []int32) func(idx []int32) *linalg.Cholesky {
	if cur == nil || cur.factors == nil || class == nil {
		return nil
	}
	factors := cur.factors
	var buf []byte
	return func(ix []int32) *linalg.Cholesky {
		if len(ix) == 0 {
			return nil
		}
		c0 := class[ix[0]]
		if c0 < 0 {
			return nil
		}
		for _, i := range ix[1:] {
			if class[i] != c0 {
				return nil
			}
		}
		return factors[string(blockKey(&buf, ix))]
	}
}
