// Package basis implements instantiable basis functions (paper Section 2.2
// and reference [3]): compact solution representations assembled from
// "flat" and "arch" templates instantiated near wire intersections, plus
// the per-face constant basis functions.
//
// A basis function psi_i' is a fixed linear combination of one or more
// templates psi_{i',ibar}; the template list is flattened and relabeled
// 1..M for the balanced work division of paper Section 3, with the owner
// array l mapping each template back to its basis function (Figure 3).
package basis

import (
	"math"

	"parbem/internal/geom"
)

// Shape is a 1-D profile on [0, 1] (the normalized varying coordinate of a
// template). Shapes must be bounded and piecewise-smooth; Mean is the exact
// integral over [0, 1], used for far-field moments and for the
// potential-matching right-hand side.
type Shape interface {
	Eval(t float64) float64
	Mean() float64
	// FirstMoment is the exact integral of t*Eval(t) over [0, 1]; the
	// shape's centroid is FirstMoment()/Mean(). Far- and mid-field
	// approximations place the template's charge at its centroid, which
	// matters for strongly asymmetric shapes like arches.
	FirstMoment() float64
}

// Breakpointer is implemented by shapes with an interior derivative kink;
// quadrature engines split integration intervals at the reported
// (normalized) position to retain spectral convergence. The scalar return
// keeps the hot integration path allocation-free.
type Breakpointer interface {
	Breakpoint() (t float64, ok bool)
}

// FlatShape is the constant profile of value 1: both the face basis
// functions and the flat templates of induced basis functions use it.
type FlatShape struct{}

// Eval implements Shape.
func (FlatShape) Eval(float64) float64 { return 1 }

// Mean implements Shape.
func (FlatShape) Mean() float64 { return 1 }

// FirstMoment implements Shape.
func (FlatShape) FirstMoment() float64 { return 0.5 }

// ArchShape is the arch profile A_p(u) of paper Figure 2, in normalized
// coordinates: the support [0, 1] maps geometrically from the inside of the
// crossing shadow (t = 0, "ingrowing" end) across the shadow edge at
// t = EdgePos to the outer "extension" end (t = 1). The profile rises
// exponentially toward the shadow edge and decays beyond it:
//
//	A(t) = exp(-(EdgePos-t)/LambdaIn)   for t <= EdgePos
//	A(t) = exp(-(t-EdgePos)/LambdaOut)  for t >  EdgePos
//
// The peak value is 1; the solved coefficient carries the physical
// amplitude b(h). Decay lengths are normalized to the support length.
type ArchShape struct {
	EdgePos   float64 // shadow-edge position in [0,1]
	LambdaIn  float64 // ingrowing decay length (normalized)
	LambdaOut float64 // extension decay length (normalized)
}

// Eval implements Shape.
func (a ArchShape) Eval(t float64) float64 {
	if t <= a.EdgePos {
		return math.Exp(-(a.EdgePos - t) / a.LambdaIn)
	}
	return math.Exp(-(t - a.EdgePos) / a.LambdaOut)
}

// Mean implements Shape (exact integral of the two exponential branches).
func (a ArchShape) Mean() float64 {
	in := a.LambdaIn * (1 - math.Exp(-a.EdgePos/a.LambdaIn))
	out := a.LambdaOut * (1 - math.Exp(-(1-a.EdgePos)/a.LambdaOut))
	return in + out
}

// FirstMoment implements Shape: the exact integral of t*A(t), from
// antiderivatives of t*exp(+-t/lambda) on the two branches.
func (a ArchShape) FirstMoment() float64 {
	e, li, lo := a.EdgePos, a.LambdaIn, a.LambdaOut
	// Rising branch: int_0^e t*exp(-(e-t)/li) dt = e*li - li^2 + li^2*exp(-e/li).
	in := e*li - li*li + li*li*math.Exp(-e/li)
	// Falling branch: int_e^1 t*exp(-(t-e)/lo) dt with a = 1-e:
	// e*lo*(1-exp(-a/lo)) + lo^2 - exp(-a/lo)*(lo*a + lo^2).
	aa := 1 - e
	ex := math.Exp(-aa / lo)
	out := e*lo*(1-ex) + lo*lo - ex*(lo*aa+lo*lo)
	return in + out
}

// Breakpoint implements Breakpointer: the profile kinks at the shadow
// edge.
func (a ArchShape) Breakpoint() (float64, bool) {
	if a.EdgePos <= 0 || a.EdgePos >= 1 {
		return 0, false
	}
	return a.EdgePos, true
}

// TabulatedShape is a sampled profile with linear interpolation, produced
// by the template-extraction pipeline (internal/extract) from elementary
// problems.
type TabulatedShape struct {
	Samples []float64 // values at uniform points over [0, 1]; len >= 2
}

// Eval implements Shape.
func (s TabulatedShape) Eval(t float64) float64 {
	n := len(s.Samples)
	u := t * float64(n-1)
	if u <= 0 {
		return s.Samples[0]
	}
	if u >= float64(n-1) {
		return s.Samples[n-1]
	}
	i := int(u)
	f := u - float64(i)
	return s.Samples[i]*(1-f) + s.Samples[i+1]*f
}

// Mean implements Shape (trapezoid rule, exact for the interpolant).
func (s TabulatedShape) Mean() float64 {
	n := len(s.Samples)
	sum := 0.5 * (s.Samples[0] + s.Samples[n-1])
	for _, v := range s.Samples[1 : n-1] {
		sum += v
	}
	return sum / float64(n-1)
}

// FirstMoment implements Shape (trapezoid rule on t*S(t), exact for the
// piecewise-linear interpolant up to the quadratic correction, which is
// included per segment).
func (s TabulatedShape) FirstMoment() float64 {
	n := len(s.Samples)
	h := 1 / float64(n-1)
	var sum float64
	for i := 0; i+1 < n; i++ {
		t0 := float64(i) * h
		a, b := s.Samples[i], s.Samples[i+1]
		// int_{t0}^{t0+h} t*(a + (b-a)(t-t0)/h) dt
		sum += h * (t0*(a+b)/2 + h*(a+2*b)/6)
	}
	return sum
}

// VaryDir identifies which in-plane direction of a template's support
// rectangle carries the 1-D shape variation.
type VaryDir int

// Template shape-variation directions.
const (
	VaryNone VaryDir = iota // constant template
	VaryU                   // shape varies along the support's U axis
	VaryV                   // shape varies along the support's V axis
)

// Template is one instantiated shape on a rectangular support. Amplitude
// scales the shape within its owning basis function (relative weights
// between a basis function's templates are fixed at instantiation; the
// global coefficient is solved for).
type Template struct {
	Support   geom.Rect
	Dir       VaryDir
	Shape     Shape
	Amplitude float64
}

// Value evaluates the template at in-plane coordinates (u, v) of its
// support (outside the support the template is zero; callers integrate
// over the support only and need not check).
func (t *Template) Value(u, v float64) float64 {
	switch t.Dir {
	case VaryU:
		return t.Amplitude * t.Shape.Eval(normCoord(u, t.Support.U))
	case VaryV:
		return t.Amplitude * t.Shape.Eval(normCoord(v, t.Support.V))
	default:
		return t.Amplitude
	}
}

// Moment returns the integral of the template over its support.
func (t *Template) Moment() float64 {
	mean := 1.0
	if t.Dir != VaryNone {
		mean = t.Shape.Mean()
	}
	return t.Amplitude * mean * t.Support.Area()
}

// IsFlat reports whether the template is constant over its support.
func (t *Template) IsFlat() bool { return t.Dir == VaryNone }

// Centroid returns the charge centroid of the template: the support center
// shifted along the varying direction to the shape's weighted mean
// position. Far- and mid-field approximations must use this point rather
// than the support center for asymmetric shapes.
func (t *Template) Centroid() geom.Vec3 {
	c := t.Support.Center()
	if t.Dir == VaryNone {
		return c
	}
	tc := t.Shape.FirstMoment() / t.Shape.Mean() // in [0, 1]
	switch t.Dir {
	case VaryU:
		u := t.Support.U.Lo + tc*t.Support.U.Len()
		return c.WithComponent(t.Support.UAxis(), u)
	default:
		v := t.Support.V.Lo + tc*t.Support.V.Len()
		return c.WithComponent(t.Support.VAxis(), v)
	}
}

func normCoord(x float64, iv geom.Interval) float64 {
	return (x - iv.Lo) / iv.Len()
}
