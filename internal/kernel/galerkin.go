package kernel

import (
	"parbem/internal/geom"
	"parbem/internal/quad"
)

// Config controls how rectangle-pair Galerkin integrals are evaluated.
type Config struct {
	Ops *MathOps // elementary-function provider (StdOps or fastmath-backed)

	// FarFactor is the approximation distance multiplier (paper Section
	// 4.1): when the separation exceeds FarFactor times the mean rectangle
	// diameter, the 4-D integral is collapsed to a point-to-point
	// interaction. MidFactor gates the intermediate level (collocation at
	// the target centroid, a 4-D -> 2-D reduction).
	FarFactor float64
	MidFactor float64

	// QuadOrder is the Gauss order per dimension for the outer numerical
	// integration over the target rectangle (perpendicular orientations
	// and template-weighted integrals).
	QuadOrder int

	// DisableApprox forces full-accuracy evaluation everywhere (used by
	// the ablation benchmarks).
	DisableApprox bool
}

// DefaultConfig returns the production configuration: standard math,
// approximation distances tuned for ~1% integral accuracy, and a 4-point
// outer rule.
func DefaultConfig() *Config {
	return &Config{
		Ops:       StdOps,
		FarFactor: 12,
		MidFactor: 4,
		QuadOrder: 4,
	}
}

// RectGalerkin computes int_t int_s 1/|r-r'| ds' ds for two axis-aligned
// rectangles in any Manhattan orientation, applying the approximation-
// distance dispatch unless disabled.
func RectGalerkin(cfg *Config, t, s geom.Rect) float64 {
	if !cfg.DisableApprox {
		d := t.Dist(s)
		diam := 0.5 * (t.Diameter() + s.Diameter())
		if d > cfg.FarFactor*diam {
			// Far field: both rectangles act as point charges.
			return t.Area() * s.Area() / t.Center().Dist(s.Center())
		}
		if d > cfg.MidFactor*diam {
			// Intermediate: collocate the target at its centroid
			// (2-D closed form), keep the source exact.
			return t.Area() * rectPotentialAt(cfg.Ops, s, t.Center())
		}
	}
	if t.ParallelTo(s) {
		return rectGalerkinParallel(cfg.Ops, t, s)
	}
	return rectGalerkinPerp(cfg, t, s)
}

// rectGalerkinParallel evaluates the analytic 4-D expression for rectangles
// in parallel planes (including coplanar, overlapping and identical).
func rectGalerkinParallel(ops *MathOps, t, s geom.Rect) float64 {
	Z := t.Offset - s.Offset
	return GalerkinParallel(ops,
		t.U.Lo, t.U.Hi, t.V.Lo, t.V.Hi,
		s.U.Lo, s.U.Hi, s.V.Lo, s.V.Hi, Z)
}

// rectPotentialAt evaluates the collocation closed form of source rectangle
// s at an arbitrary 3-D point p.
func rectPotentialAt(ops *MathOps, s geom.Rect, p geom.Vec3) float64 {
	pu := p.Component(s.UAxis())
	pv := p.Component(s.VAxis())
	pz := p.Component(s.Normal) - s.Offset
	return RectPotential(ops, s.U.Lo, s.U.Hi, s.V.Lo, s.V.Hi, pu, pv, pz)
}

// rectGalerkinPerp evaluates the Galerkin integral for perpendicular
// rectangles: outer tensor Gauss quadrature over the target, inner 2-D
// closed form over the source (paper Eq. 7 structure). Perpendicular
// Manhattan rectangles can touch along an edge but never overlap, so the
// integrand is at worst weakly singular along the target boundary; the
// order is bumped when the pair is close.
func rectGalerkinPerp(cfg *Config, t, s geom.Rect) float64 {
	order := cfg.QuadOrder
	d := t.Dist(s)
	diam := 0.5 * (t.Diameter() + s.Diameter())
	if d < 0.1*diam {
		order = min(order*4, quad.MaxOrder)
	} else if d < diam {
		order = min(order*2, quad.MaxOrder)
	}
	ops := cfg.Ops
	return quad.Integrate2D(func(u, v float64) float64 {
		return rectPotentialAt(ops, s, t.Point(u, v))
	}, t.U.Lo, t.U.Hi, t.V.Lo, t.V.Hi, order, order)
}

// RectCollocation computes the potential integral of source rectangle s at
// point p: int_s 1/|p-r'| ds'. The 1/(4*pi*eps) prefactor is omitted.
func RectCollocation(cfg *Config, s geom.Rect, p geom.Vec3) float64 {
	if !cfg.DisableApprox {
		d := s.DistToPoint(p)
		if d > cfg.FarFactor*s.Diameter() {
			return s.Area() / s.Center().Dist(p)
		}
	}
	return rectPotentialAt(cfg.Ops, s, p)
}

// SelfGalerkin computes the Galerkin self-term of a rectangle: the 4-D
// integral of 1/|r-r'| over the rectangle paired with itself. The analytic
// F4 expression remains finite here; for a unit square the value is
// 8/3*(ln(1+sqrt2) + (1-sqrt2)/... ) ~= 3.5255 (verified in tests against a
// Duffy-transformed numerical reference).
func SelfGalerkin(ops *MathOps, r geom.Rect) float64 {
	return GalerkinParallel(ops,
		r.U.Lo, r.U.Hi, r.V.Lo, r.V.Hi,
		r.U.Lo, r.U.Hi, r.V.Lo, r.V.Hi, 0)
}

// PointKernel is the bare Green's function without prefactor: 1/|a-b|.
func PointKernel(a, b geom.Vec3) float64 {
	return 1 / a.Dist(b)
}

// Scale converts an unscaled integral (in units of m^3 for 4-D Galerkin) to
// the physical coefficient by applying 1/(4*pi*eps).
func Scale(integral, eps float64) float64 {
	return integral / (FourPi * eps)
}
