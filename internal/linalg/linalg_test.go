package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSPD(n int, rng *rand.Rand) *Dense {
	// A = B^T B + n*I is SPD.
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := NewDense(n, n)
	Mul(a, b.Transpose(), b)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatal("At/Set/Add broken")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatal("Transpose broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	x := []float64{1, 2, 3}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != 1 || dst[1] != 18 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulAgainstManual(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	c := NewDense(2, 2)
	Mul(c, a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul = %v, want %v", c.Data, want)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatal("Norm2")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatal("Axpy")
	}
	Scal(0.5, y)
	if y[0] != 3.5 {
		t.Fatal("Scal")
	}
	if Dot(x, x) != 25 {
		t.Fatal("Dot")
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 100, 257} {
		a := randomSPD(n, rng)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Check A = L L^T.
		rec := NewDense(n, n)
		Mul(rec, ch.L, ch.L.Transpose())
		if d := MaxAbsDiff(rec, a); d > 1e-8*float64(n) {
			t.Errorf("n=%d: |LL^T - A| = %g", n, d)
		}
		// Check solve.
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		got := make([]float64, n)
		ch.Solve(got, b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Errorf("n=%d: x[%d] = %g want %g", n, i, got[i], want[i])
				break
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotSPD {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 30, 4
	a := randomSPD(n, rng)
	xWant := NewDense(n, k)
	for i := range xWant.Data {
		xWant.Data[i] = rng.NormFloat64()
	}
	b := NewDense(n, k)
	Mul(b, a, xWant)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.SolveMatrix(b)
	if d := MaxAbsDiff(x, xWant); d > 1e-8 {
		t.Fatalf("SolveMatrix error %g", d)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 40} {
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		f, err := NewLU(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		got := make([]float64, n)
		f.Solve(got, b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Errorf("n=%d: x[%d] = %g want %g", n, i, got[i], want[i])
				break
			}
		}
	}
	// Known determinant.
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	f, _ := NewLU(a)
	if math.Abs(f.Det()+2) > 1e-12 {
		t.Fatalf("det = %g want -2", f.Det())
	}
	// Singular matrix.
	s := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(s); err != ErrSingular {
		t.Fatalf("singular err = %v", err)
	}
}

func TestQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 50, 8
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	a.MulVec(b, want)
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %g want %g", i, got[i], want[i])
		}
	}
}

func TestQROverdeterminedResidualOrthogonality(t *testing.T) {
	// For LS solution, residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(5))
	m, n := 30, 5
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, m)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	at := a.Transpose()
	proj := make([]float64, n)
	at.MulVec(proj, r)
	if nrm := Norm2(proj); nrm > 1e-9 {
		t.Fatalf("residual not orthogonal to range(A): |A^T r| = %g", nrm)
	}
}

func TestGMRESDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 60
	a := randomSPD(n, rng)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)
	x := make([]float64, n)
	res, err := GMRES(DenseOp{M: a}, x, b, GMRESOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g want %g", i, x[i], want[i])
		}
	}
}

func TestGMRESRestartedAndPreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 80
	a := randomSPD(n, rng)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, want)

	// Small restart forces the restart path.
	x := make([]float64, n)
	res, err := GMRES(DenseOp{M: a}, x, b, GMRESOptions{Tol: 1e-9, Restart: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted GMRES did not converge: %+v", res)
	}

	// Jacobi preconditioner must not change the answer.
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
	}
	x2 := make([]float64, n)
	res2, err := GMRES(DenseOp{M: a}, x2, b, GMRESOptions{
		Tol: 1e-9, Restart: 10,
		Precond: func(dst, r []float64) {
			for i := range dst {
				dst[i] = r[i] / diag[i]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged {
		t.Fatalf("preconditioned GMRES did not converge: %+v", res2)
	}
	if res2.Iterations > res.Iterations {
		t.Logf("note: preconditioning took more iterations (%d vs %d)", res2.Iterations, res.Iterations)
	}
	for i := range x2 {
		if math.Abs(x2[i]-want[i]) > 1e-5 {
			t.Fatalf("precond x[%d] = %g want %g", i, x2[i], want[i])
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a := randomSPD(5, rand.New(rand.NewSource(8)))
	x := []float64{1, 2, 3, 4, 5}
	res, err := GMRES(DenseOp{M: a}, x, make([]float64, 5), GMRESOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v %+v", err, res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestSymmetryError(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2.5, 1})
	if e := a.SymmetryError(); math.Abs(e-0.5) > 1e-15 {
		t.Fatalf("SymmetryError = %g", e)
	}
}

func TestCholeskyPropertySolveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a := randomSPD(n, r)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		got := make([]float64, n)
		ch.Solve(got, b)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
