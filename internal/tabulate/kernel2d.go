package tabulate

import "parbem/internal/kernel"

// Domain2D bounds the parameter space of the simplified 2-D expression of
// paper Eq. (13): a source rectangle [0,W] x [0,H] in the z=0 plane and an
// in-plane evaluation point (X, Y). The approximation distance bounds the
// ranges, which is what makes tabulation feasible (paper Section 4.2.1).
type Domain2D struct {
	WMin, WMax float64 // rectangle width range
	HMin, HMax float64 // rectangle height range
	XMin, XMax float64 // evaluation-point range (rectangle-relative)
	YMin, YMax float64
}

// DefaultDomain2D covers rectangles with aspect ratios up to 4 and
// evaluation points within two diameters of the rectangle, in normalized
// units; beyond that range the dimension-reduced expressions take over.
func DefaultDomain2D() Domain2D {
	return Domain2D{
		WMin: 0.25, WMax: 2,
		HMin: 0.25, HMax: 2,
		XMin: -3, XMax: 5,
		YMin: -3, YMax: 5,
	}
}

// Definite2D is the direct tabulation (paper Section 4.2.1) of the definite
// integral f2D(W, H, X, Y) = int_0^W int_0^H 1/|r - r'| dx' dy' evaluated
// at in-plane point (X, Y).
type Definite2D struct {
	tab *Table
}

// NewDefinite2D samples the definite integral on a (nw, nh, nx, ny) grid.
func NewDefinite2D(dom Domain2D, nw, nh, nx, ny int) *Definite2D {
	dims := []Dim{
		{dom.WMin, dom.WMax, nw},
		{dom.HMin, dom.HMax, nh},
		{dom.XMin, dom.XMax, nx},
		{dom.YMin, dom.YMax, ny},
	}
	t := Build(dims, func(p []float64) float64 {
		return kernel.RectPotential(kernel.StdOps, 0, p[0], 0, p[1], p[2], p[3], 0)
	})
	return &Definite2D{tab: t}
}

// Eval returns the 4-linear interpolation of the definite integral.
func (d *Definite2D) Eval(w, h, x, y float64) float64 {
	return d.tab.Eval4(w, h, x, y)
}

// Bytes returns the table memory.
func (d *Definite2D) Bytes() int { return d.tab.Bytes() }

// Indefinite2D is the indefinite-integral tabulation (paper Section 4.2.2):
// only F2(X, Y, z=0) is tabulated (2 parameters instead of 4), and the
// definite integral is recovered by differencing the four corner
// substitutions, at the cost of the cancellation the paper warns about.
type Indefinite2D struct {
	tab *Table
}

// NewIndefinite2D builds the F2 table. The domain must cover
// [XMin - WMax, XMax] x [YMin - HMax, YMax] so that all corner
// substitutions stay inside the grid.
func NewIndefinite2D(dom Domain2D, n int) *Indefinite2D {
	dims := []Dim{
		{dom.XMin - dom.WMax, dom.XMax, n},
		{dom.YMin - dom.HMax, dom.YMax, n},
	}
	t := Build(dims, func(p []float64) float64 {
		return kernel.F2(kernel.StdOps, p[0], p[1], 0)
	})
	return &Indefinite2D{tab: t}
}

// Eval recovers the definite integral by corner differencing.
func (d *Indefinite2D) Eval(w, h, x, y float64) float64 {
	return d.tab.Eval2(x, y) - d.tab.Eval2(x-w, y) -
		d.tab.Eval2(x, y-h) + d.tab.Eval2(x-w, y-h)
}

// Bytes returns the table memory.
func (d *Indefinite2D) Bytes() int { return d.tab.Bytes() }
