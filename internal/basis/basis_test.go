package basis

import (
	"math"
	"testing"
	"testing/quick"

	"parbem/internal/geom"
	"parbem/internal/quad"
)

func TestFlatShape(t *testing.T) {
	var f FlatShape
	if f.Eval(0.3) != 1 || f.Mean() != 1 {
		t.Error("FlatShape must be identically 1")
	}
}

func TestArchShapeProperties(t *testing.T) {
	a := ArchShape{EdgePos: 0.6, LambdaIn: 0.2, LambdaOut: 0.1}
	// Peak of 1 at the edge.
	if got := a.Eval(0.6); math.Abs(got-1) > 1e-15 {
		t.Errorf("peak = %g", got)
	}
	// Monotone rise then fall.
	if !(a.Eval(0.1) < a.Eval(0.4) && a.Eval(0.4) < a.Eval(0.6)) {
		t.Error("not rising toward the edge")
	}
	if !(a.Eval(0.6) > a.Eval(0.8) && a.Eval(0.8) > a.Eval(1.0)) {
		t.Error("not decaying past the edge")
	}
	// Mean matches numerical integration.
	num := quad.Integrate1D(a.Eval, 0, a.EdgePos, 32) +
		quad.Integrate1D(a.Eval, a.EdgePos, 1, 32)
	if math.Abs(a.Mean()-num) > 1e-10 {
		t.Errorf("Mean = %g, numeric = %g", a.Mean(), num)
	}
	// Breakpoint reported at the edge.
	bp, ok := a.Breakpoint()
	if !ok || bp != 0.6 {
		t.Errorf("Breakpoint = %v %v", bp, ok)
	}
}

func TestArchShapeMeanProperty(t *testing.T) {
	f := func(e, li, lo float64) bool {
		a := ArchShape{
			EdgePos:   0.05 + math.Mod(math.Abs(e), 0.9),
			LambdaIn:  0.01 + math.Mod(math.Abs(li), 2),
			LambdaOut: 0.01 + math.Mod(math.Abs(lo), 2),
		}
		num := quad.Integrate1D(a.Eval, 0, a.EdgePos, 32) +
			quad.Integrate1D(a.Eval, a.EdgePos, 1, 32)
		return math.Abs(a.Mean()-num) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTabulatedShape(t *testing.T) {
	s := TabulatedShape{Samples: []float64{0, 1, 0.5}}
	if s.Eval(0) != 0 || s.Eval(1) != 0.5 {
		t.Error("endpoint eval wrong")
	}
	if got := s.Eval(0.25); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Eval(0.25) = %g want 0.5", got)
	}
	// Mean is the trapezoid integral: 0.5*(0+1)/2 + 0.5*(1+0.5)/2 = 0.625.
	if got := s.Mean(); math.Abs(got-0.625) > 1e-15 {
		t.Errorf("Mean = %g want 0.625", got)
	}
	// Out-of-range clamps.
	if s.Eval(-1) != 0 || s.Eval(2) != 0.5 {
		t.Error("clamping broken")
	}
}

func TestTemplateValueAndMoment(t *testing.T) {
	sup := geom.Rect{Normal: geom.Z, U: geom.Interval{Lo: 0, Hi: 2}, V: geom.Interval{Lo: 0, Hi: 3}}
	flat := Template{Support: sup, Dir: VaryNone, Shape: FlatShape{}, Amplitude: 2}
	if flat.Value(1, 1) != 2 {
		t.Error("flat value wrong")
	}
	if flat.Moment() != 12 {
		t.Errorf("flat moment = %g want 12", flat.Moment())
	}
	arch := Template{Support: sup, Dir: VaryU,
		Shape: ArchShape{EdgePos: 0.5, LambdaIn: 0.3, LambdaOut: 0.3}, Amplitude: 1}
	// Value at the shadow edge (u = 1 -> t = 0.5) is the peak.
	if got := arch.Value(1, 1.5); math.Abs(got-1) > 1e-15 {
		t.Errorf("arch peak value = %g", got)
	}
	// Moment = mean * area.
	want := arch.Shape.Mean() * 6
	if math.Abs(arch.Moment()-want) > 1e-12 {
		t.Errorf("arch moment = %g want %g", arch.Moment(), want)
	}
	// VaryV direction picks the v coordinate.
	archV := arch
	archV.Dir = VaryV
	if got := archV.Value(0.1, 1.5); math.Abs(got-1) > 1e-15 {
		t.Errorf("VaryV value = %g", got)
	}
}

// mergedRangePair returns a crossing whose library ratio R = 3.5*w/h - 1
// falls inside the merged-mode validity range [0.5, 4].
func mergedRangePair() *geom.Structure {
	sp := geom.DefaultCrossingPair()
	sp.H = sp.Width // w/h = 1 -> R = 2.5
	return sp.Build()
}

func TestBuildCrossingPairMerged(t *testing.T) {
	set := Build(mergedRangePair(), DefaultBuilderOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := set.CountKinds()
	if kinds[KindFace] != 12 {
		t.Errorf("face functions = %d want 12", kinds[KindFace])
	}
	// One facing pair -> one merged induced function per face, each
	// assembling the flat shadow template with its two reflected arches
	// at the library amplitude ratio.
	if kinds[KindShadow] != 2 {
		t.Errorf("merged induced functions = %d want 2", kinds[KindShadow])
	}
	if kinds[KindArchPair] != 0 {
		t.Errorf("arch-pair functions = %d want 0 in merged mode", kinds[KindArchPair])
	}
	for _, f := range set.Functions {
		if f.Kind != KindShadow {
			continue
		}
		if n := f.TplHi - f.TplLo; n != 3 {
			t.Errorf("merged induced function has %d templates, want 3", n)
		}
		// First template is the flat shadow at amplitude 1; arches share
		// one fixed ratio > 0.
		if set.Templates[f.TplLo].Amplitude != 1 || !set.Templates[f.TplLo].IsFlat() {
			t.Error("first merged template is not the unit flat shadow")
		}
		r := set.Templates[f.TplLo+1].Amplitude
		if r <= 0 || set.Templates[f.TplLo+2].Amplitude != r {
			t.Errorf("arch amplitudes %g, %g not an equal positive pair",
				r, set.Templates[f.TplLo+2].Amplitude)
		}
	}
}

func TestBuildOutOfRangeRatioFallsBack(t *testing.T) {
	// The default crossing pair has w/h = 2 -> R = 6, outside the
	// library's validity range: the builder must emit independent
	// shadow and arch-pair functions instead of a merged one.
	st := geom.DefaultCrossingPair().Build()
	set := Build(st, DefaultBuilderOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := set.CountKinds()
	if kinds[KindShadow] != 2 || kinds[KindArchPair] != 2 {
		t.Errorf("fallback kinds = %v, want 2 shadows + 2 arch pairs", kinds)
	}
}

func TestBuildCrossingPairSeparate(t *testing.T) {
	st := mergedRangePair()
	opt := DefaultBuilderOptions()
	opt.SeparateInduced = true
	set := Build(st, opt)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := set.CountKinds()
	if kinds[KindShadow] != 2 {
		t.Errorf("shadow functions = %d want 2", kinds[KindShadow])
	}
	if kinds[KindArchPair] != 2 {
		t.Errorf("arch-pair functions = %d want 2", kinds[KindArchPair])
	}
	for _, f := range set.Functions {
		if f.Kind == KindArchPair && f.TplHi-f.TplLo != 2 {
			t.Errorf("arch pair with %d templates", f.TplHi-f.TplLo)
		}
	}
	// Separate mode has more functions than merged mode (the ablation's
	// degrees-of-freedom trade) on an in-range geometry.
	merged := Build(st, DefaultBuilderOptions())
	if set.N() <= merged.N() {
		t.Errorf("separate N = %d not larger than merged N = %d", set.N(), merged.N())
	}
	if set.M() != merged.M() {
		t.Errorf("template count changed: %d vs %d (must be identical)", set.M(), merged.M())
	}
}

func TestBuildSkipsTouchingConductors(t *testing.T) {
	// Two boxes of different conductors touching (h = 0): no induced
	// bases should be created for that pair.
	st := &geom.Structure{
		Name: "touching",
		Conductors: []*geom.Conductor{
			{Name: "a", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 0}, geom.Vec3{X: 1e-6, Y: 1e-6, Z: 1e-6})}},
			{Name: "b", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 1e-6}, geom.Vec3{X: 1e-6, Y: 1e-6, Z: 2e-6})}},
		},
	}
	set := Build(st, DefaultBuilderOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := set.CountKinds()
	if kinds[KindShadow] != 0 || kinds[KindArchPair] != 0 {
		t.Errorf("touching conductors produced induced bases: %v", kinds)
	}
}

func TestBuildShadowSkippedWhenCoveringFace(t *testing.T) {
	// Two identical stacked plates: the facing overlap covers the whole
	// face, so the shadow basis would duplicate the face basis.
	st := &geom.Structure{
		Name: "plates",
		Conductors: []*geom.Conductor{
			{Name: "a", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 0}, geom.Vec3{X: 4e-6, Y: 4e-6, Z: 1e-6})}},
			{Name: "b", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 2e-6}, geom.Vec3{X: 4e-6, Y: 4e-6, Z: 3e-6})}},
		},
	}
	set := Build(st, DefaultBuilderOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := set.CountKinds(); k[KindShadow] != 0 {
		t.Errorf("full-cover shadow not skipped: %v", k)
	}
}

func TestMomentsAndClone(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	set := Build(st, DefaultBuilderOptions())
	m := set.Moments()
	if len(m) != set.N() {
		t.Fatalf("moments length %d", len(m))
	}
	for i, v := range m {
		if v <= 0 {
			t.Errorf("moment %d = %g not positive", i, v)
		}
	}
	c := set.Clone()
	c.Templates[0].Amplitude = 99
	if set.Templates[0].Amplitude == 99 {
		t.Error("Clone shares template storage")
	}
	c.Owner[0] = 7
	if set.Owner[0] == 7 {
		t.Error("Clone shares owner storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	set := Build(st, DefaultBuilderOptions())

	bad := set.Clone()
	bad.Owner[len(bad.Owner)-1] = 0
	if err := bad.Validate(); err == nil {
		t.Error("corrupted owner not detected")
	}

	bad2 := set.Clone()
	bad2.Functions[0].TplHi = bad2.Functions[0].TplLo
	if err := bad2.Validate(); err == nil {
		t.Error("empty template range not detected")
	}

	bad3 := set.Clone()
	bad3.Templates[0].Amplitude = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero amplitude not detected")
	}
}

func TestKindString(t *testing.T) {
	if KindFace.String() != "face" || KindShadow.String() != "shadow" ||
		KindArchPair.String() != "arch-pair" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestInterleavedEmissionBalancesKinds(t *testing.T) {
	// On a structure with many induced bases, face and induced functions
	// must be interleaved (not all faces first): check that the first
	// quarter of the function list contains some of each.
	st := geom.DefaultBus(6, 6).Build()
	set := Build(st, DefaultBuilderOptions())
	quarter := set.N() / 4
	var faces, induced int
	for _, f := range set.Functions[:quarter] {
		if f.Kind == KindFace {
			faces++
		} else {
			induced++
		}
	}
	if faces == 0 || induced == 0 {
		t.Errorf("first quarter not interleaved: %d faces, %d induced", faces, induced)
	}
}
