package costmodel

// Mixed-precision selection: the accelerated operators (fmm, pfft)
// optionally run their matvec through a float32 storage mirror, wrapped
// in float64 iterative refinement by the solve pipeline. The mirror
// halves the bandwidth of the bandwidth-bound apply, but costs one-time
// construction and two extra fp64 applies per refinement step — so it
// only wins when the Krylov solve is long enough to amortize both, and
// only when the requested tolerance is reachable through fp32 inner
// arithmetic at all.

// Mixed-precision thresholds. Exported for reporting and tests.
const (
	// MixedMinPanels is the smallest problem worth the float32 mirror:
	// below it the whole solve completes in a handful of cheap applies
	// and the mirror's construction dominates.
	MixedMinPanels = 2048
	// MixedMinTol is the tightest tolerance served by mixed precision.
	// One fp32 apply carries ~1e-7 relative rounding, amplified by the
	// system's conditioning in the inner solves; chasing residuals at or
	// below this floor makes refinement stall and fall back, so full
	// fp64 is chosen up front.
	MixedMinTol = 1e-8
)

// PrecisionChoice is a matvec-arithmetic recommendation.
type PrecisionChoice int

// Precision recommendations.
const (
	ChooseFP64 PrecisionChoice = iota
	ChooseMixed
)

// String implements fmt.Stringer.
func (c PrecisionChoice) String() string {
	switch c {
	case ChooseFP64:
		return "fp64"
	case ChooseMixed:
		return "mixed"
	}
	return "unknown"
}

// SelectPrecision recommends the matvec arithmetic for an accelerated
// (non-dense) solve of the workload. Only Panels and Tol participate:
// the decision is about solve length and reachable accuracy, not
// geometry.
func SelectPrecision(w Workload) PrecisionChoice {
	if w.Panels < MixedMinPanels {
		return ChooseFP64
	}
	if w.Tol > 0 && w.Tol <= MixedMinTol {
		return ChooseFP64
	}
	return ChooseMixed
}
