package fft

import (
	"fmt"

	"parbem/internal/sched"
)

// Float32 mirror of the transform stack, the convolution engine of the
// mixed-precision pfft apply path: complex64 grids halve the bandwidth
// of the 3-D transforms that dominate the far-field matvec. Twiddle
// factors are precomputed in float64 (per length, cached) and rounded
// once, so the only extra error over complex128 is the fp32 rounding
// of the butterflies themselves — about 1e-7 relative on the grid
// sizes pfft uses, far below the iterative-refinement tolerance that
// consumes the result.

// Forward32 computes the in-place forward DFT of x (power-of-two length).
func Forward32(x []complex64) {
	n := checkedLen(x)
	transform32(x, twiddles32(n, -1), revTable(n))
}

// Inverse32 computes the in-place inverse DFT including the 1/n
// scaling, folded into the final butterfly stage (no separate scaling
// sweep).
func Inverse32(x []complex64) {
	n := checkedLen(x)
	transformScaled32(x, twiddles32(n, +1), revTable(n), float32(1)/float32(n))
}

func checkedLen(x []complex64) int {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	return n
}

// transform32 is the iterative Cooley-Tukey radix-2 kernel on complex64
// with table-driven twiddles (the recurrence w *= wStep used by the old
// complex128 kernel loses too many bits at fp32). The caller supplies
// the twiddle and bit-reversal tables so the per-row lookups are
// hoisted out of the 3-D transform's row loops.
//
// The butterfly is spelled as explicit float32 real/imaginary
// arithmetic rather than a complex64 multiply: gc lowers complex64
// multiplication through float64 (widen, multiply, narrow — two
// conversions per operand per butterfly), which dominates the fp32
// transform and made it slower than the fp64 one it exists to beat.
// The explicit form stays in float32 end to end. The fp32 result
// differs from the widened lowering by at most one ulp per butterfly —
// noise against the 1e-7 relative error fp32 rounding already costs.
func transform32(x []complex64, w []complex64, rev []int32) {
	n := len(x)
	for i, j := range rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half]
				tw := w[k*stride]
				br, bi := real(b), imag(b)
				wr, wi := real(tw), imag(tw)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				ar, ai := real(a), imag(a)
				x[start+k] = complex(ar+tr, ai+ti)
				x[start+k+half] = complex(ar-tr, ai-ti)
			}
		}
	}
}

// transformScaled32 is transform32 with a uniform output scaling folded
// into the final butterfly stage (see transformScaled).
func transformScaled32(x []complex64, w []complex64, rev []int32, scale float32) {
	n := len(x)
	if n == 1 {
		if scale != 1 {
			x[0] = complex(real(x[0])*scale, imag(x[0])*scale)
		}
		return
	}
	for i, j := range rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size < n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half]
				tw := w[k*stride]
				br, bi := real(b), imag(b)
				wr, wi := real(tw), imag(tw)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				ar, ai := real(a), imag(a)
				x[start+k] = complex(ar+tr, ai+ti)
				x[start+k+half] = complex(ar-tr, ai-ti)
			}
		}
	}
	half := n >> 1
	for k := 0; k < half; k++ {
		a := x[k]
		b := x[k+half]
		tw := w[k]
		br, bi := real(b), imag(b)
		wr, wi := real(tw), imag(tw)
		tr := br*wr - bi*wi
		ti := br*wi + bi*wr
		ar, ai := real(a), imag(a)
		x[k] = complex((ar+tr)*scale, (ai+ti)*scale)
		x[k+half] = complex((ar-tr)*scale, (ai-ti)*scale)
	}
}

func lineTransform32(x []complex64, w []complex64, rev []int32, scale float32) {
	if scale == 1 {
		transform32(x, w, rev)
	} else {
		transformScaled32(x, w, rev, scale)
	}
}

// lineBuf32 is the complex64 twin of lineBuf.
type lineBuf32 struct {
	y, x []complex64
}

// Grid3F32 is the complex64 twin of Grid3 (same x-major layout), used
// by the mixed-precision pfft convolution.
type Grid3F32 struct {
	Nx, Ny, Nz int
	Data       []complex64
	// Exec optionally parallelizes the line transforms and pointwise
	// multiplies; nil runs inline (allocation-free when warm).
	Exec  sched.Executor
	lines *sched.Scratch[*lineBuf32]
}

// NewGrid3F32 allocates a zeroed complex64 grid.
func NewGrid3F32(nx, ny, nz int) *Grid3F32 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) {
		panic("fft: grid dimensions must be powers of two")
	}
	return &Grid3F32{
		Nx: nx, Ny: ny, Nz: nz,
		Data: make([]complex64, nx*ny*nz),
		lines: sched.NewScratch(func() *lineBuf32 {
			return &lineBuf32{y: make([]complex64, ny), x: make([]complex64, nx)}
		}),
	}
}

// Idx returns the linear index of (ix, iy, iz).
func (g *Grid3F32) Idx(ix, iy, iz int) int { return (ix*g.Ny+iy)*g.Nz + iz }

// Forward3 transforms the grid in place along all three axes.
func (g *Grid3F32) Forward3() { g.transformAll(-1, false) }

// Inverse3 inverse-transforms the grid in place; the 1/(Nx*Ny*Nz)
// scaling is folded per axis into the final butterfly stages (each
// per-axis factor is a power of two, so this is bit-identical to one
// fused scaling pass, minus the extra sweep over the data).
func (g *Grid3F32) Inverse3() { g.transformAll(+1, true) }

// transformAll applies the 1-D transform along z, then y, then x, with
// tables fetched once per axis and lines chunked over Exec when
// present.
func (g *Grid3F32) transformAll(sign float64, scaled bool) {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	wz, rz := twiddles32(nz, sign), revTable(nz)
	wy, ry := twiddles32(ny, sign), revTable(ny)
	wx, rx := twiddles32(nx, sign), revTable(nx)
	sz, sy, sx := float32(1), float32(1), float32(1)
	if scaled {
		sz, sy, sx = 1/float32(nz), 1/float32(ny), 1/float32(nx)
	}
	if g.Exec == nil {
		b := g.lines.Acquire()
		g.zLines(0, nx*ny, wz, rz, sz)
		g.yLines(0, nx*nz, b.y, wy, ry, sy)
		g.xLines(0, ny*nz, b.x, wx, rx, sx)
		g.lines.Release(b)
		return
	}
	g.Exec.Map(chunkTasks(nx*ny, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, nx*ny, lineChunk)
		g.zLines(lo, hi, wz, rz, sz)
	})
	g.Exec.Map(chunkTasks(nx*nz, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, nx*nz, lineChunk)
		b := g.lines.Acquire()
		g.yLines(lo, hi, b.y, wy, ry, sy)
		g.lines.Release(b)
	})
	g.Exec.Map(chunkTasks(ny*nz, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, ny*nz, lineChunk)
		b := g.lines.Acquire()
		g.xLines(lo, hi, b.x, wx, rx, sx)
		g.lines.Release(b)
	})
}

// zLines transforms contiguous z lines [lo, hi).
func (g *Grid3F32) zLines(lo, hi int, w []complex64, rev []int32, scale float32) {
	nz := g.Nz
	for r := lo; r < hi; r++ {
		base := r * nz
		lineTransform32(g.Data[base:base+nz], w, rev, scale)
	}
}

// yLines transforms strided y lines [lo, hi) (line t = ix*Nz + iz).
func (g *Grid3F32) yLines(lo, hi int, buf []complex64, w []complex64, rev []int32, scale float32) {
	data := g.Data
	ny, nz := g.Ny, g.Nz
	for t := lo; t < hi; t++ {
		ix, iz := t/nz, t%nz
		p := ix*ny*nz + iz
		q := p
		for iy := 0; iy < ny; iy++ {
			buf[iy] = data[q]
			q += nz
		}
		lineTransform32(buf, w, rev, scale)
		q = p
		for iy := 0; iy < ny; iy++ {
			data[q] = buf[iy]
			q += nz
		}
	}
}

// xLines transforms strided x lines [lo, hi) (line t = iy*Nz + iz).
func (g *Grid3F32) xLines(lo, hi int, buf []complex64, w []complex64, rev []int32, scale float32) {
	data := g.Data
	nx, nz := g.Nx, g.Nz
	planeStride := g.Ny * nz
	for t := lo; t < hi; t++ {
		p := t
		q := p
		for ix := 0; ix < nx; ix++ {
			buf[ix] = data[q]
			q += planeStride
		}
		lineTransform32(buf, w, rev, scale)
		q = p
		for ix := 0; ix < nx; ix++ {
			data[q] = buf[ix]
			q += planeStride
		}
	}
}

// MulPointwise multiplies g by h element-wise (same dimensions),
// chunked over the executor when present.
func (g *Grid3F32) MulPointwise(h *Grid3F32) {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		panic("fft: grid dimension mismatch")
	}
	n := len(g.Data)
	if g.Exec == nil {
		mulRange64(g.Data, h.Data, 0, n)
		return
	}
	g.Exec.Map(chunkTasks(n, elemChunk), func(t int) {
		lo, hi := chunkSpan(t, n, elemChunk)
		mulRange64(g.Data, h.Data, lo, hi)
	})
}

// mulRange64 multiplies complex64 ranges with explicit float32
// arithmetic (see transform32 for why the *= form is avoided).
func mulRange64(dst, src []complex64, lo, hi int) {
	for i := lo; i < hi; i++ {
		a, b := dst[i], src[i]
		ar, ai := real(a), imag(a)
		br, bi := real(b), imag(b)
		dst[i] = complex(ar*br-ai*bi, ar*bi+ai*br)
	}
}
