// Package faultpoint is the fault-injection hook the crash-safety
// harness drives: named points threaded through the service's
// admission, runner and journal paths that can be armed to return an
// injected error, crash the whole process, or add latency.
//
// Points are disarmed by default and cost one atomic load per Hit, so
// production builds carry the hooks at no measurable cost. A test (or
// capxd -faults / the CAPXD_FAULTS environment variable) arms them
// with a spec string:
//
//	point:action[,point:action...]
//	point[@n]:error        Hit returns ErrInjected (on the n-th hit)
//	point[@n]:crash        the process dies immediately (os.Exit 137,
//	                       no deferred cleanup — a SIGKILL stand-in)
//	point[@n]:sleep=50ms   Hit blocks for the duration
//
// The optional @n trigger fires the action on the n-th hit of that
// point only (1-based); without it the action fires on every hit.
// Example: "journal.append@3:crash" kills the process the third time
// the journal appends a record — the kill-and-recover test uses exactly
// this to die with a half-written state machine on disk.
//
// The point-name inventory lives with the call sites; the service's
// points are serve.admit, serve.run, journal.append, journal.sync and
// journal.compact.
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error an armed error-action point returns.
var ErrInjected = errors.New("faultpoint: injected error")

// action is one armed fault.
type action struct {
	kind  string // "error" | "crash" | "sleep"
	sleep time.Duration
	nth   uint64 // 0 = every hit, else fire on this hit count only
	hits  atomic.Uint64
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	// points maps point name -> armed action; counts tallies every Hit
	// of a named point whether or not an action is armed for it.
	points map[string]*action
	counts map[string]*atomic.Uint64
)

// Configure arms the given fault spec, replacing any previous one. An
// empty spec disarms everything (and is always valid).
func Configure(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	points = make(map[string]*action)
	counts = make(map[string]*atomic.Uint64)
	armed.Store(false)
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, act, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return fmt.Errorf("faultpoint: bad spec %q (want point:action)", part)
		}
		a := &action{}
		if base, n, ok := strings.Cut(name, "@"); ok {
			nth, err := strconv.ParseUint(n, 10, 64)
			if err != nil || nth == 0 {
				return fmt.Errorf("faultpoint: bad trigger count in %q", part)
			}
			name, a.nth = base, nth
		}
		switch {
		case act == "error" || act == "crash":
			a.kind = act
		case strings.HasPrefix(act, "sleep="):
			d, err := time.ParseDuration(strings.TrimPrefix(act, "sleep="))
			if err != nil || d < 0 {
				return fmt.Errorf("faultpoint: bad sleep duration in %q", part)
			}
			a.kind, a.sleep = "sleep", d
		default:
			return fmt.Errorf("faultpoint: unknown action %q (want error, crash or sleep=<dur>)", act)
		}
		points[name] = a
	}
	armed.Store(len(points) > 0)
	return nil
}

// Reset disarms every point and clears the hit counters.
func Reset() { Configure("") }

// Enabled reports whether any point is armed.
func Enabled() bool { return armed.Load() }

// Hit fires the named point: a no-op returning nil unless a spec armed
// an action for it. An error action returns ErrInjected; a crash action
// never returns.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	a := points[name]
	c := counts[name]
	if c == nil {
		c = &atomic.Uint64{}
		counts[name] = c
	}
	mu.Unlock()
	c.Add(1)
	if a == nil {
		return nil
	}
	if n := a.hits.Add(1); a.nth != 0 && n != a.nth {
		return nil
	}
	switch a.kind {
	case "error":
		return fmt.Errorf("%w at %s", ErrInjected, name)
	case "crash":
		// Unclean death on purpose: no deferred cleanup, no journal
		// close, exactly what a SIGKILL or power loss leaves behind.
		fmt.Fprintf(os.Stderr, "faultpoint: crashing at %s\n", name)
		os.Exit(137)
	case "sleep":
		time.Sleep(a.sleep)
	}
	return nil
}

// Count returns how many times the named point was hit since the last
// Configure/Reset (0 when disarmed: disarmed hits are not tallied).
func Count(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if c := counts[name]; c != nil {
		return c.Load()
	}
	return 0
}
