package geomio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"parbem/internal/geom"
)

// randStructure builds a randomized multi-conductor structure. With
// unit = 1 the writer emits %g-formatted coordinates, which strconv
// round-trips exactly, so Write -> Read must preserve geometry bit for
// bit.
func randStructure(rng *rand.Rand) *geom.Structure {
	st := &geom.Structure{Name: fmt.Sprintf("rand-%d", rng.Intn(1_000_000))}
	nc := 1 + rng.Intn(4)
	for c := 0; c < nc; c++ {
		cond := &geom.Conductor{Name: fmt.Sprintf("c%d", c)}
		nb := 1 + rng.Intn(3)
		for b := 0; b < nb; b++ {
			// Arbitrary magnitudes, including negatives and values with
			// long decimal expansions.
			min := geom.Vec3{
				X: (rng.Float64() - 0.5) * 1e-3,
				Y: (rng.Float64() - 0.5) * 1e-3,
				Z: (rng.Float64() - 0.5) * 1e-3,
			}
			sz := geom.Vec3{
				X: rng.Float64()*1e-4 + 1e-9,
				Y: rng.Float64()*1e-4 + 1e-9,
				Z: rng.Float64()*1e-4 + 1e-9,
			}
			cond.Boxes = append(cond.Boxes, geom.NewBox(min, min.Add(sz)))
		}
		st.Conductors = append(st.Conductors, cond)
	}
	return st
}

// checkRoundTrip writes st at unit scale 1 and asserts the re-read
// structure is geometrically bit-exact.
func checkRoundTrip(t *testing.T, st *geom.Structure) {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v\ninput:\n%s", err, buf.String())
	}
	if got.Name != st.Name {
		t.Errorf("name %q != %q", got.Name, st.Name)
	}
	if len(got.Conductors) != len(st.Conductors) {
		t.Fatalf("%d conductors != %d", len(got.Conductors), len(st.Conductors))
	}
	for ci, c := range st.Conductors {
		gc := got.Conductors[ci]
		if gc.Name != c.Name {
			t.Errorf("conductor %d name %q != %q", ci, gc.Name, c.Name)
		}
		if len(gc.Boxes) != len(c.Boxes) {
			t.Fatalf("conductor %d: %d boxes != %d", ci, len(gc.Boxes), len(c.Boxes))
		}
		for bi, b := range c.Boxes {
			if gc.Boxes[bi] != b {
				t.Errorf("conductor %d box %d: %+v != %+v (not bit-exact)",
					ci, bi, gc.Boxes[bi], b)
			}
		}
	}
}

func TestRoundTripRandomStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		checkRoundTrip(t, randStructure(rng))
	}
}

func TestRoundTripBenchmarkStructures(t *testing.T) {
	for _, st := range []*geom.Structure{
		geom.DefaultCrossingPair().Build(),
		geom.DefaultBus(3, 4).Build(),
		geom.DefaultInterconnect().Build(),
	} {
		checkRoundTrip(t, st)
	}
}

// FuzzRoundTrip drives the same property from fuzzed seeds.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-12345))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		st := randStructure(rng)
		if err := Write(&buf, st, 1); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		for ci, c := range st.Conductors {
			for bi, b := range c.Boxes {
				if got.Conductors[ci].Boxes[bi] != b {
					t.Fatalf("box %d/%d not bit-exact", ci, bi)
				}
			}
		}
	})
}
