package serve

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeRequest drives arbitrary bytes through both request decode
// paths — the full HTTP JSON + geomio pipeline the server runs before
// touching any solver state. The boundary's contract: every rejection
// is a structured *RequestError, every acceptance satisfies the
// admission invariants, and nothing panics or allocates unboundedly
// (malformed panels, NaN coordinates, zero-area boxes, huge counts).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 1 1 1\nconductor b\nbox 0 0 2 1 1 3","edge_m":5e-7,"backend":"fastcap","precond":"block","tol":1e-6}`))
	f.Add([]byte(`{"geometry":"structure s\nunit 1e-6\nconductor a\nbox 0 0 0 1 1 1","edge_m":1e-6}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox nan 0 0 1 1 1","edge_m":1e-6}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 1 1 0","edge_m":1e-6}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 1e9 1e9 1e9","edge_m":1e-9}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 inf 1 1","edge_m":1e-6}`))
	f.Add([]byte(`{"geometry":"conductor a\nwire q 0 0 0 1 1 1","edge_m":1e-6}`))
	f.Add([]byte(`{"edge_m":1e-6}`))
	f.Add([]byte(`{"variants":["conductor a\nbox 0 0 0 1 1 1\nconductor b\nbox 0 0 2 1 1 3"],"edge_m":5e-7}`))
	f.Add([]byte(`{"template_hs_m":[4e-7,6e-7],"edge_m":5e-7}`))
	f.Add([]byte(`{"template_hs_m":[4e-7],"variants":["x"],"edge_m":5e-7}`))
	f.Add([]byte(`{"template_hs_m":[-1],"edge_m":5e-7}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 1 1 1","edge_m":1e-6,"backend":"cuda"}`))
	f.Add([]byte(`{"geometry":"conductor a\nbox 0 0 0 1 1 1","edge_m":1e-6,"tol":1e308}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"geometry":1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var l Limits
		req, st, err := l.DecodeExtract(bytes.NewReader(data))
		if err != nil {
			re := new(RequestError)
			if !errors.As(err, &re) {
				t.Fatalf("extract decode rejected with unstructured error %T: %v", err, err)
			}
			if re.Code != CodeBadRequest {
				t.Fatalf("decode rejection code %q, want bad_request", re.Code)
			}
		} else {
			if req == nil || st == nil {
				t.Fatal("accepted extract decode returned nil request or structure")
			}
			// Acceptance implies the admission invariants hold.
			if err := checkStructure(st, req.EdgeM, l.withDefaults()); err != nil {
				t.Fatalf("accepted structure fails its own admission check: %v", err)
			}
			if !isFinite(req.EdgeM) || req.EdgeM <= 0 {
				t.Fatalf("accepted non-positive edge %v", req.EdgeM)
			}
		}

		sreq, sts, err := l.DecodeSweep(bytes.NewReader(data))
		if err != nil {
			re := new(RequestError)
			if !errors.As(err, &re) {
				t.Fatalf("sweep decode rejected with unstructured error %T: %v", err, err)
			}
		} else {
			if sreq == nil {
				t.Fatal("accepted sweep decode returned nil request")
			}
			if (len(sreq.Variants) == 0) == (len(sreq.TemplateHs) == 0) {
				t.Fatal("accepted sweep without exactly one mode")
			}
			for _, st := range sts {
				if err := checkStructure(st, sreq.EdgeM, l.withDefaults()); err != nil {
					t.Fatalf("accepted variant fails its own admission check: %v", err)
				}
			}
			for _, h := range sreq.TemplateHs {
				if !isFinite(h) || h <= 0 {
					t.Fatalf("accepted non-finite template separation %v", h)
				}
			}
		}
	})
}
