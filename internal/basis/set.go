package basis

import "fmt"

// Function is one instantiable basis function: a conductor tag plus the
// half-open range [TplLo, TplHi) of its templates in the flattened list.
type Function struct {
	Conductor int
	TplLo     int
	TplHi     int
	Kind      Kind
}

// Kind labels the origin of a basis function (useful for diagnostics and
// the examples).
type Kind int

// Basis function kinds.
const (
	KindFace     Kind = iota // per-face constant
	KindShadow               // induced flat template over a facing overlap
	KindArchPair             // induced reflected arch templates
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFace:
		return "face"
	case KindShadow:
		return "shadow"
	case KindArchPair:
		return "arch-pair"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Set is a complete instantiable basis for an extraction problem: N basis
// functions expanded into M >= N templates, with the owner array l of
// paper Figure 3 mapping template index to basis index.
type Set struct {
	Functions     []Function
	Templates     []Template
	Owner         []int // len M; Owner[t] = basis index (non-decreasing)
	NumConductors int
}

// N returns the number of basis functions.
func (s *Set) N() int { return len(s.Functions) }

// M returns the number of templates.
func (s *Set) M() int { return len(s.Templates) }

// Validate checks the structural invariants: template ranges are
// contiguous, cover the template list exactly, and Owner is consistent
// and non-decreasing (required by the column-contiguity of the
// distributed-memory partial matrices, paper Figure 5).
func (s *Set) Validate() error {
	next := 0
	for fi, f := range s.Functions {
		if f.TplLo != next {
			return fmt.Errorf("basis: function %d template range starts at %d, want %d", fi, f.TplLo, next)
		}
		if f.TplHi <= f.TplLo {
			return fmt.Errorf("basis: function %d has no templates", fi)
		}
		if f.Conductor < 0 || f.Conductor >= s.NumConductors {
			return fmt.Errorf("basis: function %d conductor %d out of range", fi, f.Conductor)
		}
		for t := f.TplLo; t < f.TplHi; t++ {
			if s.Owner[t] != fi {
				return fmt.Errorf("basis: Owner[%d] = %d, want %d", t, s.Owner[t], fi)
			}
		}
		next = f.TplHi
	}
	if next != len(s.Templates) {
		return fmt.Errorf("basis: %d templates assigned, %d exist", next, len(s.Templates))
	}
	if len(s.Owner) != len(s.Templates) {
		return fmt.Errorf("basis: owner array length %d != %d templates", len(s.Owner), len(s.Templates))
	}
	for _, tpl := range s.Templates {
		if tpl.Support.Area() <= 0 {
			return fmt.Errorf("basis: template with non-positive support area")
		}
		if tpl.Amplitude == 0 {
			return fmt.Errorf("basis: template with zero amplitude")
		}
	}
	return nil
}

// Moments returns the per-basis-function integral of the basis function
// over its support (the sum of its template moments). Entry i is the
// right-hand-side contribution of psi_i against a unit potential.
func (s *Set) Moments() []float64 {
	m := make([]float64, s.N())
	for fi, f := range s.Functions {
		var sum float64
		for t := f.TplLo; t < f.TplHi; t++ {
			sum += s.Templates[t].Moment()
		}
		m[fi] = sum
	}
	return m
}

// Clone returns a deep copy of the set's slices (templates hold immutable
// shape values, which are shared). It models each distributed-memory rank
// holding its own copy of the template definitions.
func (s *Set) Clone() *Set {
	c := &Set{
		Functions:     make([]Function, len(s.Functions)),
		Templates:     make([]Template, len(s.Templates)),
		Owner:         make([]int, len(s.Owner)),
		NumConductors: s.NumConductors,
	}
	copy(c.Functions, s.Functions)
	copy(c.Templates, s.Templates)
	copy(c.Owner, s.Owner)
	return c
}

// CountKinds returns how many basis functions exist of each kind.
func (s *Set) CountKinds() map[Kind]int {
	c := make(map[Kind]int)
	for _, f := range s.Functions {
		c[f.Kind]++
	}
	return c
}
