// Capx is the command-line field solver: it builds one of the benchmark
// structures (or a parameterized variant), runs capacitance extraction
// with the selected backend, and prints the Maxwell capacitance matrix and
// the timing breakdown.
//
// Usage examples:
//
//	capx -structure crossing
//	capx -structure bus -m 24 -n 24 -backend shared -workers 4
//	capx -structure interconnect -backend mpi -workers 10 -accel
//
// Batch mode extracts many geometry files through one shared engine
// (persistent worker pool, basis/table/pair-integral caches), which is
// several times faster than separate runs when structures repeat:
//
//	capx -batch -workers 8 bus1.geo bus2.geo bus3.geo
//
// Piecewise-constant pipeline mode runs the unified operator pipeline
// instead: -backend auto|dense|fastcap|pfft selects the solve backend
// (auto picks per the cost model from panel count and grid fill factor)
// and -precond auto|none|jacobi|block the preconditioner, reporting the
// resolved backend, panel count and Krylov iteration totals:
//
//	capx -structure bus -m 16 -n 16 -backend auto -edge 4e-7 -tol 1e-5
//	capx -structure bus -backend fastcap -precond block
//
// The legacy -baseline flag maps onto the same pipeline path.
//
// Sweep mode runs a separation (H) sweep of the crossing or bus
// structure through one staged extraction plan: after the first point,
// only cross-layer near-field integrals are re-integrated, unchanged
// block factors are adopted and the solves warm-start, reporting
// per-point stage timings and the cold-vs-warm amortization:
//
//	capx -structure crossing -sweep 16 -backend fastcap -edge 3e-7
//	capx -structure bus -m 8 -n 8 -sweep 8 -hmin 5e-7 -hmax 2e-6
//
// Pipeline and sweep runs accept -json for machine-readable output
// (capacitance matrix, backend/precond choice, iteration counts,
// per-stage timings) for serving and telemetry integrations.
//
// Remote mode sends the same pipeline and sweep requests to a running
// capxd daemon instead of solving locally, so repeated invocations ride
// the server's warm plan/basis caches:
//
//	capx -remote http://localhost:8437 -structure bus -backend fastcap
//	capx -remote http://localhost:8437 -structure crossing -sweep 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"parbem"
	"parbem/internal/serve"
)

func main() {
	var (
		structure = flag.String("structure", "crossing", "crossing | bus | interconnect | plates")
		input     = flag.String("input", "", "read structure from a geometry file instead")
		m         = flag.Int("m", 8, "bus: lower-layer wire count")
		n         = flag.Int("n", 8, "bus: upper-layer wire count")
		backend   = flag.String("backend", "serial", "instantiable solver: serial | shared | mpi; piecewise-constant pipeline: auto | dense | fastcap | pfft")
		precond   = flag.String("precond", "auto", "pipeline preconditioner: auto | none | jacobi | block")
		precision = flag.String("precision", "auto", "pipeline matvec arithmetic: auto | fp64 | mixed (float32 operator inside float64 refinement)")
		workers   = flag.Int("workers", 4, "parallel nodes D")
		accel     = flag.Bool("accel", false, "enable tabulated elementary functions (Section 4.2.3)")
		units     = flag.Float64("unit", 1e15, "output scale (1e15 = fF)")
		maxPrint  = flag.Int("maxprint", 12, "largest matrix printed in full")
		spice     = flag.String("spice", "", "also write a SPICE netlist to this file")
		check     = flag.Bool("check", true, "validate the Maxwell matrix structure")
		batchMode = flag.Bool("batch", false, "batch mode: extract the geometry files given as arguments through one shared engine")
		tables    = flag.Bool("tables", false, "enable the tabulated collocation kernel (Section 4.2.1)")
		baseline  = flag.String("baseline", "", "run a piecewise-constant baseline instead: fastcap | pfft | dense")
		tol       = flag.Float64("tol", 1e-4, "baseline iterative solver relative tolerance")
		edge      = flag.Float64("edge", 0.5e-6, "baseline max panel edge (m)")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON (capacitance matrix, backend/precond, iterations, per-stage timings) instead of text")
		sweep     = flag.Int("sweep", 0, "h-sweep mode: extract N separation variants through one staged plan (crossing or bus structure)")
		hmin      = flag.Float64("hmin", 0, "sweep: smallest separation (0 = 0.6x the structure default)")
		hmax      = flag.Float64("hmax", 0, "sweep: largest separation (0 = 2x the structure default)")
		remote    = flag.String("remote", "", "run against a capxd daemon at this base URL instead of solving locally (pipeline and sweep modes)")
	)
	flag.Parse()

	if *remote != "" && *batchMode {
		log.Fatal("-remote does not support -batch; POST the geometries to /extract individually")
	}

	if *batchMode {
		if *spice != "" {
			log.Fatal("-spice is not supported in batch mode")
		}
		runBatch(flag.Args(), *backend, *workers, *tables, *accel, *check, *units, *maxPrint)
		return
	}

	if *sweep > 0 {
		if *input != "" {
			log.Fatal("-sweep varies the built-in crossing/bus separation and does not support -input")
		}
		if *remote != "" {
			runRemoteSweep(*remote, *structure, *m, *n, *sweep, *hmin, *hmax, *backend, *precond, *precision, *edge, *tol, *jsonOut)
			return
		}
		runSweep(*structure, *m, *n, *sweep, *hmin, *hmax, *backend, *precond, *precision, *edge, *tol, *workers, *jsonOut)
		return
	}

	var st *parbem.Structure
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			log.Fatal(ferr)
		}
		st, err = parbem.ReadStructure(f)
		f.Close()
	} else {
		st, err = buildStructure(*structure, *m, *n)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *remote != "" {
		kind := *backend
		if *baseline != "" {
			kind = *baseline
		}
		if !isPipelineBackend(kind) {
			log.Fatalf("-remote needs a pipeline backend (auto|dense|fastcap|pfft), got %q", kind)
		}
		runRemote(*remote, st, kind, *precond, *precision, *edge, *tol, *units, *maxPrint, *check, *jsonOut)
		return
	}
	if *baseline != "" {
		runPipeline(st, *baseline, *precond, *precision, *edge, *tol, *workers, *units, *maxPrint, *check, *jsonOut)
		return
	}
	if isPipelineBackend(*backend) {
		runPipeline(st, *backend, *precond, *precision, *edge, *tol, *workers, *units, *maxPrint, *check, *jsonOut)
		return
	}
	if *jsonOut {
		log.Fatal("-json requires a pipeline backend (auto|dense|fastcap|pfft) or -sweep")
	}

	opt := parbem.Options{Workers: *workers, Tables: *tables}
	be, err := parseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	opt.Backend = be
	if *accel {
		opt.Kernel = parbem.FastKernelConfig()
	}

	res, err := parbem.Extract(st, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("structure : %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("backend   : %v, D = %d, accel = %v\n", opt.Backend, *workers, *accel)
	fmt.Printf("basis     : N = %d functions, M = %d templates (M/N = %.2f)\n",
		res.N, res.M, float64(res.M)/float64(res.N))
	fmt.Printf("memory    : %.1f KB system matrix\n", float64(res.MatrixBytes)/1024)
	if res.Timing.TableGen > 0 {
		fmt.Printf("timing    : basis %v | tables %v | setup %v | solve %v | total %v\n",
			res.Timing.BasisGen, res.Timing.TableGen, res.Timing.Setup, res.Timing.Solve, res.Timing.Total)
	} else {
		fmt.Printf("timing    : basis %v | setup %v | solve %v | total %v\n",
			res.Timing.BasisGen, res.Timing.Setup, res.Timing.Solve, res.Timing.Total)
	}
	fmt.Printf("setup %%   : %.1f%%\n\n",
		100*float64(res.Timing.Setup)/float64(res.Timing.Total))

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}

	if *check {
		if violations := parbem.CheckMaxwell(res.C, 0); len(violations) > 0 {
			fmt.Println("Maxwell-matrix warnings:")
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Println()
		}
	}

	if *spice != "" {
		f, err := os.Create(*spice)
		if err != nil {
			log.Fatal(err)
		}
		if err := parbem.WriteSpice(f, res.C, names, 1e-20); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist   : %s\n\n", *spice)
	}

	fmt.Println("capacitance matrix (scaled):")
	printMatrix(res.C, *units, names, *maxPrint)
}

// printMatrix prints the full matrix up to maxPrint conductors, else the
// diagonal with each row's strongest coupling.
func printMatrix(c *parbem.Matrix, units float64, names []string, maxPrint int) {
	nc := c.Rows
	if nc <= maxPrint {
		fmt.Print(parbem.FormatMatrix(c, units, names))
		return
	}
	fmt.Printf("matrix is %dx%d; printing diagonal and strongest coupling per row\n", nc, nc)
	for i := 0; i < nc; i++ {
		best, bj := 0.0, -1
		for j := 0; j < nc; j++ {
			if j != i && -c.At(i, j) > best {
				best, bj = -c.At(i, j), j
			}
		}
		fmt.Printf("C[%3d][%3d] = %10.4f   strongest coupling -> %3d: %10.4f\n",
			i, i, c.At(i, i)*units, bj, best*units)
	}
}

// isPipelineBackend reports whether the -backend value selects the
// unified piecewise-constant pipeline rather than an instantiable-basis
// fill backend.
func isPipelineBackend(name string) bool {
	switch name {
	case "auto", "dense", "fastcap", "fmm", "pfft":
		return true
	}
	return false
}

// pipelineOptions maps the -backend/-precond/-precision/-tol/-workers
// flags to pipeline options (shared by the single-shot and sweep modes).
func pipelineOptions(kind, precond, precision string, tol float64, workers int) parbem.PipelineOptions {
	prec, err := parbem.ParsePrecision(precision)
	if err != nil {
		log.Fatalf("unknown precision %q (want auto, fp64 or mixed)", precision)
	}
	opt := parbem.PipelineOptions{Tol: tol, Precision: prec}
	switch kind {
	case "auto":
		opt.Backend = parbem.BackendAuto
		// Whichever accelerated operator the cost model picks must see
		// the worker count.
		opt.FMM = &parbem.FastCapOptions{Workers: workers}
		opt.PFFT = &parbem.PFFTOptions{Workers: workers}
	case "fastcap", "fmm":
		opt.Backend = parbem.BackendFMM
		opt.FMM = &parbem.FastCapOptions{Workers: workers}
	case "pfft":
		opt.Backend = parbem.BackendPFFT
		opt.PFFT = &parbem.PFFTOptions{Workers: workers}
	case "dense":
		opt.Backend = parbem.BackendDense
		// An explicit -precond request means the user wants the
		// preconditioned iterative path; the default is the direct
		// factorization (the historical -baseline dense behavior).
		opt.Direct = precond == "" || precond == "auto"
	default:
		log.Fatalf("unknown pipeline backend %q (want auto, dense, fastcap or pfft)", kind)
	}
	switch precond {
	case "", "auto":
		opt.Precond = parbem.PrecondAuto
	case "none":
		opt.Precond = parbem.PrecondNone
	case "jacobi":
		opt.Precond = parbem.PrecondJacobi
	case "block":
		opt.Precond = parbem.PrecondBlockJacobi
	default:
		log.Fatalf("unknown preconditioner %q (want auto, none, jacobi or block)", precond)
	}
	return opt
}

// matrixRows flattens a capacitance matrix for JSON output.
func matrixRows(c *parbem.Matrix) [][]float64 {
	rows := make([][]float64, c.Rows)
	for i := range rows {
		rows[i] = append([]float64(nil), c.Row(i)...)
	}
	return rows
}

// conductorNames lists the structure's conductor names.
func conductorNames(st *parbem.Structure) []string {
	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}
	return names
}

// emitJSON marshals v to stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// runPipeline solves the structure through the unified operator pipeline
// and reports the resolved backend, panel counts, Krylov iterations and
// timing next to the capacitance matrix.
func runPipeline(st *parbem.Structure, kind, precond, precision string, edge, tol float64, workers int, units float64, maxPrint int, check bool, jsonOut bool) {
	opt := pipelineOptions(kind, precond, precision, tol, workers)

	t0 := time.Now()
	res, err := parbem.ExtractPipeline(st, edge, opt)
	if err != nil {
		log.Fatal(err)
	}
	total := time.Since(t0)

	if jsonOut {
		emitJSON(struct {
			Structure  string      `json:"structure"`
			Backend    string      `json:"backend"`
			Requested  string      `json:"requested"`
			Precond    string      `json:"precond"`
			Precision  string      `json:"precision"`
			NumPanels  int         `json:"num_panels"`
			Edge       float64     `json:"edge_m"`
			Tol        float64     `json:"tol"`
			Iterations int         `json:"iterations"`
			SetupMs    float64     `json:"setup_ms"`
			SolveMs    float64     `json:"solve_ms"`
			TotalMs    float64     `json:"total_ms"`
			Names      []string    `json:"conductors"`
			CFarads    [][]float64 `json:"c_farads"`
			Warnings   []string    `json:"maxwell_warnings,omitempty"`
		}{
			Structure: st.Name, Backend: res.Backend.String(), Requested: kind,
			Precond: precond, Precision: res.Precision.String(),
			NumPanels: res.NumPanels, Edge: edge, Tol: tol,
			Iterations: res.Iterations,
			SetupMs:    res.SetupTime.Seconds() * 1e3,
			SolveMs:    res.SolveTime.Seconds() * 1e3,
			TotalMs:    total.Seconds() * 1e3,
			Names:      conductorNames(st), CFarads: matrixRows(res.C),
			Warnings: parbem.CheckMaxwell(res.C, 0),
		})
		return
	}

	fmt.Printf("structure : %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("backend   : %v (requested %s), N = %d panels, edge = %g m\n",
		res.Backend, kind, res.NumPanels, edge)
	if res.Iterations > 0 {
		fmt.Printf("krylov    : %d GMRES iterations total (tol %g, precond %s, precision %s, all conductors concurrent)\n",
			res.Iterations, tol, precond, res.Precision)
	}
	fmt.Printf("timing    : setup %v | solve %v | total %v\n\n", res.SetupTime, res.SolveTime, total)

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}
	if check {
		if violations := parbem.CheckMaxwell(res.C, 0); len(violations) > 0 {
			fmt.Println("Maxwell-matrix warnings:")
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Println()
		}
	}
	fmt.Println("capacitance matrix (scaled):")
	printMatrix(res.C, units, names, maxPrint)
}

// sweepPoint is the per-variant record of a sweep (shared by the text
// and JSON outputs).
type sweepPoint struct {
	H          float64     `json:"h_m"`
	Iterations int         `json:"iterations"`
	Reused     string      `json:"reused"`
	DiscMs     float64     `json:"discretize_ms"`
	TopoMs     float64     `json:"topology_ms"`
	NearMs     float64     `json:"near_field_ms"`
	FactMs     float64     `json:"factorize_ms"`
	SolveMs    float64     `json:"solve_ms"`
	TotalMs    float64     `json:"total_ms"`
	CFarads    [][]float64 `json:"c_farads,omitempty"`
}

// runSweep extracts a separation sweep through one staged plan
// (parbem.NewPlan) and reports per-point timings, reuse and the
// cold-vs-warm amortization.
func runSweep(structure string, m, n, points int, hmin, hmax float64, backend, precond, precision string, edge, tol float64, workers int, jsonOut bool) {
	if !isPipelineBackend(backend) {
		log.Fatalf("-sweep needs a pipeline backend (auto|dense|fastcap|pfft), got %q", backend)
	}
	defH := 0.0
	variant := func(h float64) *parbem.Structure {
		switch structure {
		case "crossing":
			sp := parbem.NewCrossingPair()
			sp.H = h
			return sp.Build()
		default: // bus
			sp := parbem.NewBus(m, n)
			sp.H = h
			return sp.Build()
		}
	}
	switch structure {
	case "crossing":
		defH = parbem.NewCrossingPair().H
	case "bus":
		defH = parbem.NewBus(m, n).H
	default:
		log.Fatalf("-sweep supports the crossing and bus structures (their separation H), got %q", structure)
	}
	if hmin == 0 {
		hmin = 0.6 * defH
	}
	if hmax == 0 {
		hmax = 2 * defH
	}
	if points < 2 || hmax <= hmin {
		log.Fatalf("bad sweep range: %d points over [%g, %g]", points, hmin, hmax)
	}

	p, err := parbem.NewPlan(parbem.PlanOptions{
		MaxEdge:  edge,
		Pipeline: pipelineOptions(backend, precond, precision, tol, workers),
	})
	if err != nil {
		log.Fatal(err)
	}

	recs := make([]sweepPoint, points)
	var coldMs, warmMs float64
	t0 := time.Now()
	for i := 0; i < points; i++ {
		h := hmin + (hmax-hmin)*float64(i)/float64(points-1)
		res, err := p.Extract(variant(h))
		if err != nil {
			log.Fatalf("sweep point h=%g: %v", h, err)
		}
		reused := "none"
		if res.Reused.NearField {
			reused = "near-field"
			if res.Reused.Factorization {
				reused += "+factors"
			}
		}
		recs[i] = sweepPoint{
			H: h, Iterations: res.Iterations, Reused: reused,
			DiscMs:  res.Stages.Discretize.Seconds() * 1e3,
			TopoMs:  res.Stages.Topology.Seconds() * 1e3,
			NearMs:  res.Stages.NearField.Seconds() * 1e3,
			FactMs:  res.Stages.Factorize.Seconds() * 1e3,
			SolveMs: res.Stages.Solve.Seconds() * 1e3,
			TotalMs: res.Total.Seconds() * 1e3,
		}
		if jsonOut {
			recs[i].CFarads = matrixRows(res.C)
		}
		if i == 0 {
			coldMs += recs[i].TotalMs
		} else {
			warmMs += recs[i].TotalMs
		}
	}
	total := time.Since(t0)
	stats := p.Stats()
	warmPer := warmMs / float64(points-1)

	if jsonOut {
		emitJSON(struct {
			Structure string           `json:"structure"`
			Backend   string           `json:"backend"`
			Precond   string           `json:"precond"`
			Precision string           `json:"precision"`
			Edge      float64          `json:"edge_m"`
			Tol       float64          `json:"tol"`
			Points    []sweepPoint     `json:"points"`
			ColdMs    float64          `json:"cold_ms_per_point"`
			WarmMs    float64          `json:"warm_ms_per_point"`
			TotalMs   float64          `json:"total_ms"`
			Stats     parbem.PlanStats `json:"stats"`
		}{
			Structure: structure, Backend: backend, Precond: precond,
			Precision: precision, Edge: edge, Tol: tol, Points: recs,
			ColdMs: coldMs, WarmMs: warmPer, TotalMs: total.Seconds() * 1e3,
			Stats: stats,
		})
		return
	}

	fmt.Printf("sweep     : %s, %d points over H = [%g, %g] m, backend %s, edge %g m\n",
		structure, points, hmin, hmax, backend, edge)
	fmt.Printf("%10s %6s %12s %9s %9s %9s %9s %9s\n",
		"h (m)", "iters", "reused", "topo ms", "near ms", "fact ms", "solve ms", "total ms")
	for _, r := range recs {
		fmt.Printf("%10.3g %6d %12s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			r.H, r.Iterations, r.Reused, r.TopoMs, r.NearMs, r.FactMs, r.SolveMs, r.TotalMs)
	}
	fmt.Printf("\namortize  : cold %.1f ms/pt, warm %.1f ms/pt (%.1fx), sweep total %v\n",
		coldMs, warmPer, coldMs/warmPer, total)
	fmt.Printf("reuse     : %d near entries copied, %d computed, %d block factors adopted, %d warm starts\n",
		stats.NearReused, stats.NearComputed, stats.FactReused, stats.WarmStarts)
}

// geometryText serializes a structure to the geomio wire format for the
// remote API.
func geometryText(st *parbem.Structure) string {
	var sb strings.Builder
	if err := parbem.WriteStructure(&sb, st, 0); err != nil {
		log.Fatal(err)
	}
	return sb.String()
}

// runRemote sends one pipeline extraction to a capxd daemon and prints
// the response in the local runPipeline formats.
func runRemote(base string, st *parbem.Structure, kind, precond, precision string, edge, tol, units float64, maxPrint int, check, jsonOut bool) {
	c := serve.NewClient(base)
	res, err := c.Extract(context.Background(), &serve.ExtractRequest{
		Geometry:  geometryText(st),
		EdgeM:     edge,
		Backend:   kind,
		Precond:   precond,
		Precision: precision,
		Tol:       tol,
	})
	if err != nil {
		log.Fatalf("remote extract: %v", err)
	}
	if jsonOut {
		emitJSON(res)
		return
	}
	fmt.Printf("structure : %s (%d conductors), served by %s [job %s]\n",
		res.Structure, len(res.Conductors), base, res.JobID)
	fmt.Printf("backend   : %s (requested %s), N = %d panels, edge = %g m, reused %s\n",
		res.Backend, res.Requested, res.NumPanels, res.EdgeM, res.Reused)
	if res.Iterations > 0 {
		fmt.Printf("krylov    : %d GMRES iterations total (tol %g, precond %s, precision %s)\n",
			res.Iterations, tol, precond, res.Precision)
	}
	fmt.Printf("timing    : setup %.2f ms | solve %.2f ms | total %.2f ms\n\n",
		res.SetupMs, res.SolveMs, res.TotalMs)
	if check && len(res.Warnings) > 0 {
		fmt.Println("Maxwell-matrix warnings:")
		for _, v := range res.Warnings {
			fmt.Printf("  %s\n", v)
		}
		fmt.Println()
	}
	c2 := rowsToMatrix(res.CFarads)
	fmt.Println("capacitance matrix (scaled):")
	printMatrix(c2, units, res.Conductors, maxPrint)
}

// runRemoteSweep streams an h-sweep through a capxd daemon: the variant
// geometries are built locally (same range logic as runSweep) and ride
// the server's family-keyed plan cache.
func runRemoteSweep(base, structure string, m, n, points int, hmin, hmax float64, backend, precond, precision string, edge, tol float64, jsonOut bool) {
	if !isPipelineBackend(backend) {
		log.Fatalf("-sweep needs a pipeline backend (auto|dense|fastcap|pfft), got %q", backend)
	}
	var defH float64
	variant := func(h float64) *parbem.Structure {
		switch structure {
		case "crossing":
			sp := parbem.NewCrossingPair()
			sp.H = h
			return sp.Build()
		default:
			sp := parbem.NewBus(m, n)
			sp.H = h
			return sp.Build()
		}
	}
	switch structure {
	case "crossing":
		defH = parbem.NewCrossingPair().H
	case "bus":
		defH = parbem.NewBus(m, n).H
	default:
		log.Fatalf("-sweep supports the crossing and bus structures (their separation H), got %q", structure)
	}
	if hmin == 0 {
		hmin = 0.6 * defH
	}
	if hmax == 0 {
		hmax = 2 * defH
	}
	if points < 2 || hmax <= hmin {
		log.Fatalf("bad sweep range: %d points over [%g, %g]", points, hmin, hmax)
	}

	req := &serve.SweepRequest{EdgeM: edge, Backend: backend, Precond: precond, Precision: precision, Tol: tol}
	hs := make([]float64, points)
	for i := range hs {
		hs[i] = hmin + (hmax-hmin)*float64(i)/float64(points-1)
		req.Variants = append(req.Variants, geometryText(variant(hs[i])))
	}

	var pts []*serve.SweepPoint
	tr, err := serve.NewClient(base).Sweep(context.Background(), req,
		func(p *serve.SweepPoint) { pts = append(pts, p) })
	if err != nil {
		log.Fatalf("remote sweep: %v", err)
	}
	if jsonOut {
		emitJSON(struct {
			Structure string              `json:"structure"`
			Backend   string              `json:"backend"`
			Precond   string              `json:"precond"`
			Precision string              `json:"precision"`
			EdgeM     float64             `json:"edge_m"`
			Tol       float64             `json:"tol"`
			Points    []*serve.SweepPoint `json:"points"`
			Trailer   *serve.SweepTrailer `json:"trailer"`
		}{structure, backend, precond, precision, edge, tol, pts, tr})
		return
	}
	fmt.Printf("sweep     : %s, %d points over H = [%g, %g] m via %s, backend %s, edge %g m\n",
		structure, points, hmin, hmax, base, backend, edge)
	fmt.Printf("%10s %6s %20s %9s\n", "h (m)", "iters", "reused", "total ms")
	for i, p := range pts {
		if p.Error != nil {
			fmt.Printf("%10.3g %6s %20s   error: %s\n", hs[i], "-", "-", p.Error.Message)
			continue
		}
		fmt.Printf("%10.3g %6d %20s %9.2f\n", hs[i], p.Iterations, p.Reused, p.TotalMs)
	}
	fmt.Printf("\nserver    : %d points, %d failed, sweep total %.1f ms\n", tr.Points, tr.Failed, tr.TotalMs)
}

// rowsToMatrix rebuilds a dense matrix from JSON rows for printing.
func rowsToMatrix(rows [][]float64) *parbem.Matrix {
	m := parbem.NewMatrix(len(rows), len(rows))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

func parseBackend(name string) (parbem.Backend, error) {
	switch name {
	case "serial":
		return parbem.Serial, nil
	case "shared":
		return parbem.SharedMem, nil
	case "mpi":
		return parbem.Distributed, nil
	}
	return 0, fmt.Errorf("unknown backend %q", name)
}

// runBatch extracts every geometry file through one shared engine and
// prints a per-structure summary plus aggregate cache statistics.
func runBatch(files []string, backend string, workers int, tables, accel, check bool, units float64, maxPrint int) {
	if len(files) == 0 {
		log.Fatal("batch mode needs geometry files as arguments")
	}
	be, err := parseBackend(backend)
	if err != nil {
		log.Fatal(err)
	}
	structures := make([]*parbem.Structure, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		st, err := parbem.ReadStructure(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		structures[i] = st
	}

	engOpt := parbem.EngineOptions{
		Backend: be,
		Workers: workers,
		Tables:  tables,
	}
	if accel {
		engOpt.Kernel = parbem.FastKernelConfig()
	}
	eng := parbem.NewEngine(engOpt)
	defer eng.Close()

	t0 := time.Now()
	results, err := eng.ExtractAll(structures)
	elapsed := time.Since(t0)
	if err != nil {
		log.Fatal(err)
	}

	for i, res := range results {
		fmt.Printf("%-24s %3d conductors  N=%4d  M=%4d  setup %v\n",
			files[i], structures[i].NumConductors(), res.N, res.M, res.Timing.Setup)
		if check {
			for _, v := range parbem.CheckMaxwell(res.C, 0) {
				fmt.Printf("  warning: %s\n", v)
			}
		}
		names := make([]string, structures[i].NumConductors())
		for j, c := range structures[i].Conductors {
			names[j] = c.Name
		}
		printMatrix(res.C, units, names, maxPrint)
		fmt.Println()
	}
	s := eng.Stats()
	fmt.Printf("batch     : %d structures in %v (%.1f/s)\n",
		len(files), elapsed, float64(len(files))/elapsed.Seconds())
	fmt.Printf("caches    : state %d hits / %d misses, pair integrals %d hits / %d misses (%d entries)\n",
		s.StateHits, s.StateMisses, s.PairHits, s.PairMisses, s.PairEntries)
}

func buildStructure(kind string, m, n int) (*parbem.Structure, error) {
	switch kind {
	case "crossing":
		return parbem.NewCrossingPair().Build(), nil
	case "bus":
		return parbem.NewBus(m, n).Build(), nil
	case "interconnect":
		return parbem.NewInterconnect().Build(), nil
	case "plates":
		side, gap, thick := 20e-6, 0.5e-6, 0.2e-6
		return &parbem.Structure{
			Name: "plates",
			Conductors: []*parbem.Conductor{
				{Name: "bot", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: 0},
					parbem.Vec3{X: side, Y: side, Z: thick})}},
				{Name: "top", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: thick + gap},
					parbem.Vec3{X: side, Y: side, Z: 2*thick + gap})}},
			},
		}, nil
	}
	fmt.Fprintf(os.Stderr, "unknown structure %q\n", kind)
	return nil, fmt.Errorf("unknown structure %q", kind)
}
