// Package pfft is a from-scratch precorrected-FFT solver in the mold of
// Phillips & White [6] and its parallel variant [1], the second baseline
// the paper compares against: panel charges are projected onto a uniform
// grid, the grid potential is obtained by FFT convolution with the 1/r
// kernel, potentials are interpolated back at the panels, and close
// interactions are "precorrected" by replacing the inaccurate grid
// contribution with exact Galerkin entries.
//
// The grid data this method convolves is real — charges in, potentials
// out — so the convolution runs on internal/fft's real-to-complex
// half-spectrum grids (fft.RGrid3/RGrid3F32): relative to the
// complex-to-complex grids they replace, the work grid and the cached
// kernel spectrum take half the memory and the transforms half the
// flops.
//
// The operator matches the guarantees of its multipole sibling
// (internal/fmm): Apply is safe for concurrent use (per-Apply scratch is
// pooled, not locked), allocation-free after warmup in serial mode, and
// its projection and interpolation loops run on a sched.Executor when
// Workers > 1 or a shared Pool is supplied. The grid projection is
// parallelized over grid nodes through a precomputed node-to-panel
// adjacency (no write conflicts), the interpolation/precorrection over
// panel ranges, and the 3-D FFT convolution over independent grid lines
// (the fft grids inherit the operator's executor). It also exposes its
// precorrection clusters as near-field diagonal blocks for the
// pipeline's block-Jacobi preconditioner (internal/op).
package pfft

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/fft"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Options tunes the precorrected-FFT operator.
type Options struct {
	// GridSpacing is the grid pitch h (0 = automatic: fit the structure
	// in at most MaxNodes nodes per axis, but no finer than half the
	// median panel edge).
	GridSpacing float64
	// MaxNodes caps the logical grid nodes per axis for automatic
	// spacing (default 48).
	MaxNodes int
	// NearRadius is the precorrection radius in units of h (default 3).
	NearRadius float64
	Workers    int // parallel workers when Pool is nil (default GOMAXPROCS)
	Eps        float64
	Cfg        *kernel.Config
	// Pool optionally supplies a shared persistent worker pool
	// (internal/sched); when nil, construction and Apply use a
	// throwaway sched.Local executor sized by Workers, or run inline
	// when Workers is 1.
	Pool *sched.Pool
	// Exec overrides Pool/Workers with an arbitrary executor — e.g. a
	// sched.Budgeted view of a shared pool, so a service caps how many
	// pool workers one request's operator occupies.
	Exec sched.Executor
	// Tol is the GMRES relative tolerance used by the iterative solves
	// driven through parbem.ExtractPFFT (0 = 1e-4). The operator itself
	// does not consume it.
	Tol float64
}

func (o *Options) defaults() {
	if o.MaxNodes == 0 {
		o.MaxNodes = 48
	}
	if o.NearRadius == 0 {
		o.NearRadius = 3
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Eps == 0 {
		o.Eps = kernel.Eps0
	}
	if o.Cfg == nil {
		o.Cfg = kernel.DefaultConfig()
	}
}

// stencil is a panel's trilinear projection/interpolation footprint:
// 8 grid nodes and weights.
type stencil struct {
	idx [8]int32 // linear node indices in the logical grid
	w   [8]float64
}

// applyScratch is the per-Apply mutable state: panel charges and the
// padded FFT work grid (real, half-spectrum layout). Pooling it keeps
// Apply re-entrant (concurrent GMRES solves share one Operator) and
// allocation-free after warmup.
type applyScratch struct {
	charges []float64
	grid    *fft.RGrid3
}

// applyChunk is the grid-node / panel batch size of the parallel Apply
// loops: coarse enough that executor task overhead stays negligible.
const applyChunk = 2048

// Operator is the precorrected-FFT matvec y = P x. It implements
// linalg.Matvec. Apply is safe for concurrent use.
type Operator struct {
	panels []geom.Panel
	opt    Options
	exec   sched.Executor // nil = run inline (serial)

	h          float64
	origin     geom.Vec3
	nx, ny, nz int // logical grid dims
	px, py, pz int // padded FFT dims (>= 2*logical, powers of two)

	// kernelHat is the forward r2c FFT of the 1/r kernel on the padded
	// grid (half spectrum: px*py*(pz/2+1) bins). It is immutable after
	// construction and shared across variants on a matching grid.
	kernelHat *fft.RGrid3

	sten    []stencil
	areas   []float64
	centers []geom.Vec3

	// Node-to-panel adjacency (CSR over logical nodes with at least one
	// panel in their footprint): the projection loop iterates nodes, so
	// parallel chunks never write the same grid entry.
	activeNodes []int32
	nodeOff     []int32
	nodePanel   []int32
	nodeW       []float64

	nearIdx   [][]int32
	nearVal   [][]float64 // exact - grid, pre-scaled
	nearExact [][]float64 // exact Galerkin, pre-scaled (near-block data)

	// cluster[i] is panel i's precorrection spatial-hash cell, the
	// near-block partition exposed to the preconditioner.
	cluster  []int32
	clusters [][]int32

	scale float64

	// kernelShared reports that kernelHat was adopted from a previous
	// variant's operator (same padded dims and spacing) instead of
	// re-transformed; nearReused/nearComputed count the exact-Galerkin
	// precorrection entries copied from the previous variant vs
	// integrated fresh.
	kernelShared             bool
	nearReused, nearComputed int64
	// topoTime / nearTime split construction into its topology phase
	// (grid sizing, kernel transform, stencils, node adjacency) and its
	// near-field phase (precorrection integration) for the staged
	// plans' per-stage telemetry.
	topoTime, nearTime time.Duration

	// scratch manages per-Apply buffers: warm dedicated value for the
	// one-Apply-at-a-time case, pooled overflow for concurrent Applies.
	scratch *sched.Scratch[*applyScratch]

	// mixed is the optional float32 mirror (see mixed.go), built once on
	// the first EnableMixed call.
	mixed     *mixedState
	mixedOnce sync.Once
}

// Reuse requests delta-aware construction: the kernel transform is
// adopted from Prev when the padded grid dims and spacing match, and
// exact-Galerkin precorrection entries whose panel pair moved rigidly
// as a unit since Prev was built (equal non-negative Class values; see
// geom.Diff and internal/plan) are copied instead of re-integrated.
type Reuse struct {
	Prev  *Operator
	Class []int32
	// Artifact, when non-nil, adopts complete precorrection rows
	// captured by NearArtifact from an operator built over bit-identical
	// panels and options (the disk artifact store's path; internal/plan
	// keys it by a content hash of exact geometry + options, so values
	// baked with a different Eps/Cfg never reach here). The spatial-hash
	// row structure is a deterministic function of the geometry, so the
	// stored values land in the rows a fresh integration would fill; any
	// row whose stored length disagrees with the rebuilt row is
	// integrated fresh instead.
	Artifact *NearArtifact
}

// NearArtifact is the flattened value-only form of the precorrection
// stage: per-row lengths plus the concatenated correction (Val) and
// exact-Galerkin (Exact) entries in row order. The row index structure
// is deliberately omitted — it rebuilds deterministically from the
// geometry — which keeps the on-disk artifact at two float64 per entry.
type NearArtifact struct {
	RowLen []int32
	Val    []float64
	Exact  []float64
}

// valid reports whether the artifact is structurally consistent for an
// n-panel build: one length per row and flat arrays summing to the row
// total.
func (a *NearArtifact) valid(n int) bool {
	if a == nil || len(a.RowLen) != n {
		return false
	}
	var total int64
	for _, l := range a.RowLen {
		if l < 0 {
			return false
		}
		total += int64(l)
	}
	return int64(len(a.Val)) == total && int64(len(a.Exact)) == total
}

// validNear reports whether per-entry exact reuse applies: aligned
// panel sets and integral-identical settings (copied values bake in the
// kernel configuration and the 1/(4*pi*eps) scale).
func (r *Reuse) validNear(n int, opt *Options) bool {
	if r == nil || r.Prev == nil || len(r.Class) != n || r.Prev.Dim() != n {
		return false
	}
	p := &r.Prev.opt
	return p.Eps == opt.Eps && *p.Cfg == *opt.Cfg
}

// NewOperator builds the grid, kernel transform, stencils and
// precorrection entries.
func NewOperator(panels []geom.Panel, opt Options) *Operator {
	return NewOperatorReuse(panels, opt, nil)
}

// NewOperatorReuse is NewOperator with optional reuse of a previous
// variant's stage artifacts (reuse may be nil; inapplicable reuse
// degrades to a full fresh build).
func NewOperatorReuse(panels []geom.Panel, opt Options, reuse *Reuse) *Operator {
	t0 := time.Now()
	opt.defaults()
	op := &Operator{
		panels:  panels,
		opt:     opt,
		areas:   make([]float64, len(panels)),
		centers: make([]geom.Vec3, len(panels)),
		sten:    make([]stencil, len(panels)),
		nearIdx: make([][]int32, len(panels)),
		nearVal: make([][]float64, len(panels)),
		scale:   1 / (kernel.FourPi * opt.Eps),
	}
	op.nearExact = make([][]float64, len(panels))
	if opt.Exec != nil {
		op.exec = opt.Exec
	} else if opt.Pool != nil {
		op.exec = opt.Pool
	} else if opt.Workers > 1 {
		op.exec = sched.Local(opt.Workers)
	}
	var medEdge float64
	{
		var edges []float64
		for i, p := range panels {
			op.areas[i] = p.Area()
			op.centers[i] = p.Center()
			edges = append(edges, math.Max(p.U.Len(), p.V.Len()))
		}
		// Median without sorting the caller's data.
		medEdge = median(edges)
	}

	// Bounding box of centers.
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for _, c := range op.centers {
		lo = geom.Vec3{X: math.Min(lo.X, c.X), Y: math.Min(lo.Y, c.Y), Z: math.Min(lo.Z, c.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, c.X), Y: math.Max(hi.Y, c.Y), Z: math.Max(hi.Z, c.Z)}
	}
	span := hi.Sub(lo)
	maxSpan := math.Max(span.X, math.Max(span.Y, span.Z))

	h := opt.GridSpacing
	if h == 0 {
		h = math.Max(medEdge/2, maxSpan/float64(opt.MaxNodes-1))
		if h == 0 {
			h = 1
		}
	}
	op.h = h
	op.origin = lo
	dims := func(s float64) int { return int(s/h) + 2 }
	op.nx, op.ny, op.nz = dims(span.X), dims(span.Y), dims(span.Z)
	op.px = fft.NextPow2(2 * op.nx)
	op.py = fft.NextPow2(2 * op.ny)
	op.pz = fft.NextPow2(2 * op.nz)

	// Geometry-independent phase: the padded-grid kernel transform
	// depends only on the padded dims and the spacing, so a previous
	// variant on the same grid shares it (it is immutable after
	// construction).
	if prev := reusePrev(reuse); prev != nil &&
		prev.px == op.px && prev.py == op.py && prev.pz == op.pz && prev.h == op.h {
		op.kernelHat = prev.kernelHat
		op.kernelShared = true
	} else {
		op.buildKernel()
	}
	op.buildStencils()
	op.buildNodeAdjacency()
	op.topoTime = time.Since(t0)
	tN := time.Now()
	var art *NearArtifact
	if reuse != nil && reuse.Artifact.valid(len(panels)) {
		art = reuse.Artifact
	}
	if reuse.validNear(len(panels), &op.opt) {
		op.buildPrecorrection(reuse, art)
	} else {
		op.buildPrecorrection(nil, art)
	}
	op.nearTime = time.Since(tN)
	op.scratch = sched.NewScratch(func() *applyScratch {
		return newScratch(len(panels), op.px, op.py, op.pz, op.exec)
	})
	return op
}

// reusePrev returns the previous operator of a reuse request, nil-safe.
func reusePrev(r *Reuse) *Operator {
	if r == nil {
		return nil
	}
	return r.Prev
}

// NearReuse reports how many exact-Galerkin precorrection entries were
// copied from the previous variant vs integrated fresh at construction.
func (op *Operator) NearReuse() (copied, computed int64) {
	return op.nearReused, op.nearComputed
}

// KernelShared reports whether the kernel transform was adopted from
// the previous variant.
func (op *Operator) KernelShared() bool { return op.kernelShared }

// NearArtifact captures the precorrection stage as a flat value-only
// artifact suitable for the disk store: per-row lengths plus the
// concatenated correction and exact-Galerkin entries in row order. A
// later build over bit-identical panels and options adopts it through
// Reuse.Artifact.
func (op *Operator) NearArtifact() *NearArtifact {
	a := &NearArtifact{RowLen: make([]int32, len(op.nearIdx))}
	total := 0
	for i, r := range op.nearIdx {
		a.RowLen[i] = int32(len(r))
		total += len(r)
	}
	a.Val = make([]float64, 0, total)
	a.Exact = make([]float64, 0, total)
	for i := range op.nearIdx {
		a.Val = append(a.Val, op.nearVal[i]...)
		a.Exact = append(a.Exact, op.nearExact[i]...)
	}
	return a
}

// PhaseTimes reports the construction split: the topology phase (grid
// sizing, kernel transform, stencils, adjacency) vs the near-field
// phase (precorrection integration).
func (op *Operator) PhaseTimes() (topology, nearField time.Duration) {
	return op.topoTime, op.nearTime
}

func newScratch(n, px, py, pz int, exec sched.Executor) *applyScratch {
	g := fft.NewRGrid3(px, py, pz)
	g.Exec = exec
	return &applyScratch{
		charges: make([]float64, n),
		grid:    g,
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion into order via simple sort.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// kernelValue is the grid Green's function between nodes separated by
// (dx, dy, dz) node steps: 1/(h*dist); the self value uses the average of
// 1/r over a cube of side h (~2.38/h), only for internal consistency (all
// node-sharing panel pairs are inside the precorrection radius).
func (op *Operator) kernelValue(dx, dy, dz int) float64 {
	if dx == 0 && dy == 0 && dz == 0 {
		return 2.38 / op.h
	}
	d := math.Sqrt(float64(dx*dx + dy*dy + dz*dz))
	return 1 / (op.h * d)
}

// buildKernel fills the padded kernel grid with circular-symmetric wrap
// layout and forward transforms it into its half spectrum.
func (op *Operator) buildKernel() {
	g := fft.NewRGrid3(op.px, op.py, op.pz)
	g.Exec = op.exec
	for ix := 0; ix < op.px; ix++ {
		wx := wrapDist(ix, op.px)
		for iy := 0; iy < op.py; iy++ {
			wy := wrapDist(iy, op.py)
			base := g.RIdx(ix, iy, 0)
			for iz := 0; iz < op.pz; iz++ {
				g.Data[base+iz] = op.kernelValue(wx, wy, wrapDist(iz, op.pz))
			}
		}
	}
	g.ForwardReal()
	op.kernelHat = g
}

// wrapDist maps a padded index to its signed minimal distance magnitude.
func wrapDist(i, n int) int {
	if i <= n/2 {
		return i
	}
	return n - i
}

// buildStencils computes each panel's trilinear footprint.
func (op *Operator) buildStencils() {
	for i, c := range op.centers {
		fx := (c.X - op.origin.X) / op.h
		fy := (c.Y - op.origin.Y) / op.h
		fz := (c.Z - op.origin.Z) / op.h
		ix, iy, iz := int(fx), int(fy), int(fz)
		tx, ty, tz := fx-float64(ix), fy-float64(iy), fz-float64(iz)
		s := &op.sten[i]
		k := 0
		for a := 0; a < 2; a++ {
			wa := 1 - tx
			if a == 1 {
				wa = tx
			}
			for b := 0; b < 2; b++ {
				wb := 1 - ty
				if b == 1 {
					wb = ty
				}
				for c2 := 0; c2 < 2; c2++ {
					wc := 1 - tz
					if c2 == 1 {
						wc = tz
					}
					s.idx[k] = op.nodeIdx(ix+a, iy+b, iz+c2)
					s.w[k] = wa * wb * wc
					k++
				}
			}
		}
	}
}

// buildNodeAdjacency inverts the stencils into a CSR over logical grid
// nodes, so the projection loop can be parallelized over nodes with no
// write conflicts (each node entry is owned by exactly one task).
func (op *Operator) buildNodeAdjacency() {
	counts := make([]int32, op.nx*op.ny*op.nz)
	for i := range op.sten {
		for k := 0; k < 8; k++ {
			counts[op.sten[i].idx[k]]++
		}
	}
	for n, c := range counts {
		if c > 0 {
			op.activeNodes = append(op.activeNodes, int32(n))
		}
	}
	op.nodeOff = make([]int32, len(op.activeNodes)+1)
	slot := make([]int32, op.nx*op.ny*op.nz) // node -> active slot + 1
	for a, n := range op.activeNodes {
		op.nodeOff[a+1] = op.nodeOff[a] + counts[n]
		slot[n] = int32(a) + 1
	}
	total := op.nodeOff[len(op.activeNodes)]
	op.nodePanel = make([]int32, total)
	op.nodeW = make([]float64, total)
	fill := make([]int32, len(op.activeNodes))
	for i := range op.sten {
		s := &op.sten[i]
		for k := 0; k < 8; k++ {
			a := slot[s.idx[k]] - 1
			p := op.nodeOff[a] + fill[a]
			fill[a]++
			op.nodePanel[p] = int32(i)
			op.nodeW[p] = s.w[k]
		}
	}
}

// nodeIdx linearizes logical node coordinates (clamped into range).
func (op *Operator) nodeIdx(ix, iy, iz int) int32 {
	ix = clamp(ix, op.nx)
	iy = clamp(iy, op.ny)
	iz = clamp(iz, op.nz)
	return int32((ix*op.ny+iy)*op.nz + iz)
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// nodeCoords inverts nodeIdx.
func (op *Operator) nodeCoords(idx int32) (int, int, int) {
	iz := int(idx) % op.nz
	iy := (int(idx) / op.nz) % op.ny
	ix := int(idx) / (op.nz * op.ny)
	return ix, iy, iz
}

// gridPair computes the grid-mediated interaction S_ij between the
// stencils of panels i and j (unit densities): sum_ab w_ia G(a-b) w_jb.
func (op *Operator) gridPair(i, j int) float64 {
	si, sj := &op.sten[i], &op.sten[j]
	var sum float64
	for a := 0; a < 8; a++ {
		ax, ay, az := op.nodeCoords(si.idx[a])
		for b := 0; b < 8; b++ {
			bx, by, bz := op.nodeCoords(sj.idx[b])
			sum += si.w[a] * sj.w[b] * op.kernelValue(ax-bx, ay-by, az-bz)
		}
	}
	return sum
}

// buildPrecorrection finds near pairs via spatial hashing and stores
// both the (exact - grid) correction entries and the exact entries (the
// near-block data). The spatial-hash cells double as the near-block
// clusters, assigned deterministically in panel order. Rows are sorted
// by source panel index, which makes them binary-searchable for the
// delta-aware reuse of later geometry variants.
//
// With a non-nil reuse, exact-Galerkin entries of rigidly co-moved
// pairs are copied from the previous variant; when additionally the
// grids coincide and both stencils are unchanged, the grid-mediated
// part is unchanged too and the whole correction entry is copied.
func (op *Operator) buildPrecorrection(reuse *Reuse, art *NearArtifact) {
	cell := op.opt.NearRadius * op.h
	type key struct{ x, y, z int32 }
	buckets := make(map[key][]int32)
	keyOf := func(c geom.Vec3) key {
		return key{
			int32(math.Floor((c.X - op.origin.X) / cell)),
			int32(math.Floor((c.Y - op.origin.Y) / cell)),
			int32(math.Floor((c.Z - op.origin.Z) / cell)),
		}
	}
	op.cluster = make([]int32, len(op.panels))
	clusterOf := make(map[key]int32)
	for i, c := range op.centers {
		k := keyOf(c)
		buckets[k] = append(buckets[k], int32(i))
		id, ok := clusterOf[k]
		if !ok {
			id = int32(len(op.clusters))
			clusterOf[k] = id
			op.clusters = append(op.clusters, nil)
		}
		op.cluster[i] = id
		op.clusters[id] = append(op.clusters[id], int32(i))
	}
	limit := op.opt.NearRadius * op.h

	var prev *Operator
	var class []int32
	if reuse != nil {
		prev, class = reuse.Prev, reuse.Class
	}
	// The grid-mediated part of an entry is a function of the two
	// stencils, the logical dims and the spacing only.
	gridsEq := prev != nil && op.kernelShared &&
		prev.nx == op.nx && prev.ny == op.ny && prev.nz == op.nz

	// Flat-artifact adoption: precompute row offsets into the artifact's
	// concatenated arrays (validated by the caller via NearArtifact.valid).
	var artOff []int64
	if art != nil {
		artOff = make([]int64, len(art.RowLen)+1)
		for i, l := range art.RowLen {
			artOff[i+1] = artOff[i] + int64(l)
		}
	}

	sched.MapOrInline(op.exec, len(op.panels), func(i int) {
		ci := op.centers[i]
		k := keyOf(ci)
		var idx []int32
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for dz := int32(-1); dz <= 1; dz++ {
					for _, j := range buckets[key{k.x + dx, k.y + dy, k.z + dz}] {
						if ci.Dist(op.centers[j]) <= limit {
							idx = append(idx, j)
						}
					}
				}
			}
		}
		sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
		val := make([]float64, len(idx))
		exa := make([]float64, len(idx))
		var nr, nc int64
		if art != nil && int(art.RowLen[i]) == len(idx) {
			// The rebuilt row matches the stored one — adopt the whole
			// row and skip integration.
			lo := artOff[i]
			copy(val, art.Val[lo:lo+int64(len(idx))])
			copy(exa, art.Exact[lo:lo+int64(len(idx))])
			op.nearIdx[i] = idx
			op.nearVal[i] = val
			op.nearExact[i] = exa
			atomic.AddInt64(&op.nearReused, int64(len(idx)))
			return
		}
		stenI := gridsEq && op.sten[i] == prev.sten[i]
		for t, j := range idx {
			var exact float64
			copiedExact, copiedVal := false, false
			if prev != nil && class[i] >= 0 && class[i] == class[j] {
				if p, ok := prevRowFind(prev, i, j); ok {
					exact = prev.nearExact[i][p]
					copiedExact = true
					if stenI && op.sten[j] == prev.sten[j] {
						val[t] = prev.nearVal[i][p]
						copiedVal = true
					}
				}
			}
			if !copiedExact {
				exact = op.scale * kernel.RectGalerkin(op.opt.Cfg,
					op.panels[i].Rect, op.panels[j].Rect)
			}
			if !copiedVal {
				gridPart := op.scale * op.areas[i] * op.areas[j] * op.gridPair(i, int(j))
				val[t] = exact - gridPart
			}
			exa[t] = exact
			if copiedExact {
				nr++
			} else {
				nc++
			}
		}
		op.nearIdx[i] = idx
		op.nearVal[i] = val
		op.nearExact[i] = exa
		if prev != nil || art != nil {
			atomic.AddInt64(&op.nearReused, nr)
			atomic.AddInt64(&op.nearComputed, nc)
		}
	})
}

// prevRowFind binary-searches the previous variant's (sorted) row i for
// source panel j.
func prevRowFind(prev *Operator, i int, j int32) (int, bool) {
	row := prev.nearIdx[i]
	p := sort.Search(len(row), func(p int) bool { return row[p] >= j })
	if p == len(row) || row[p] != j {
		return 0, false
	}
	return p, true
}

// Dim implements linalg.Matvec.
func (op *Operator) Dim() int { return len(op.panels) }

// GridNodes returns the logical grid dimensions (diagnostics).
func (op *Operator) GridNodes() (int, int, int) { return op.nx, op.ny, op.nz }

// NearEntries returns the number of precorrected pairs.
func (op *Operator) NearEntries() int {
	n := 0
	for _, r := range op.nearIdx {
		n += len(r)
	}
	return n
}

// NearBlocks implements the pipeline's near-block contract
// (internal/op.NearBlocker): the exact-Galerkin diagonal blocks of the
// precorrection spatial-hash clusters. Clusters partition the panels;
// cluster pairs beyond the precorrection radius are not stored and stay
// zero (the preconditioner falls back to the block diagonal if the
// zero-filled block loses positive definiteness).
func (op *Operator) NearBlocks() (idx [][]int32, blocks []*linalg.Dense) {
	pos := make([]int32, len(op.panels))
	for _, cl := range op.clusters {
		for k, pi := range cl {
			pos[pi] = int32(k)
		}
	}
	for _, cl := range op.clusters {
		b := linalg.NewDense(len(cl), len(cl))
		for r, pi := range cl {
			row := b.Row(r)
			cols := op.nearIdx[pi]
			vals := op.nearExact[pi]
			for k, pj := range cols {
				if op.cluster[pj] == op.cluster[pi] {
					row[pos[pj]] = vals[k]
				}
			}
		}
		idx = append(idx, append([]int32(nil), cl...))
		blocks = append(blocks, b)
	}
	return idx, blocks
}

// Apply implements linalg.Matvec: project, convolve, interpolate,
// correct. The projection runs parallel over grid nodes (via the
// precomputed node-to-panel adjacency), the interpolation and
// precorrection parallel over panel ranges, and the fused r2c FFT
// convolution parallel over grid lines (the serial global transform
// was the bottleneck that limited parallel efficiency in [1]). Safe
// for concurrent use and allocation-free after warmup in serial mode.
func (op *Operator) Apply(dst, x []float64) {
	s := op.scratch.Acquire()
	defer op.scratch.Release(s)

	for i := range s.charges {
		s.charges[i] = x[i] * op.areas[i]
	}

	// Zero the padded grid, then project charges onto the logical
	// region: each task owns a disjoint range of grid entries. The
	// serial path runs the same range helpers without closures, so it
	// stays allocation-free.
	g := s.grid
	data := g.Data
	nodes := op.activeNodes
	np := len(op.panels)
	if op.exec == nil {
		op.zeroRange(data, 0, len(data))
		op.projectRange(s, data, 0, len(nodes))
	} else {
		op.exec.Map((len(data)+applyChunk-1)/applyChunk, func(t int) {
			lo, hi := chunkBounds(t, len(data))
			op.zeroRange(data, lo, hi)
		})
		op.exec.Map((len(nodes)+applyChunk-1)/applyChunk, func(t int) {
			lo, hi := chunkBounds(t, len(nodes))
			op.projectRange(s, data, lo, hi)
		})
	}

	// Fused forward -> pointwise multiply -> inverse convolution on
	// the real half-spectrum grid.
	g.ConvolveInto(op.kernelHat)

	// Interpolate + precorrect over panel ranges.
	if op.exec == nil {
		op.evalRange(data, dst, x, 0, np)
		return
	}
	op.exec.Map((np+applyChunk-1)/applyChunk, func(t int) {
		lo, hi := chunkBounds(t, np)
		op.evalRange(data, dst, x, lo, hi)
	})
}

// chunkBounds maps task t to its [lo, hi) range over n items in
// applyChunk-sized chunks.
func chunkBounds(t, n int) (int, int) {
	lo := t * applyChunk
	hi := lo + applyChunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// zeroRange clears grid samples [lo, hi) (float64 slots of the real
// half-spectrum layout).
func (op *Operator) zeroRange(data []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		data[i] = 0
	}
}

// projectRange accumulates panel charges onto active grid nodes
// [lo, hi) through the node-to-panel adjacency. Charges are plain
// float64 writes into the real grid (no complex packing).
func (op *Operator) projectRange(s *applyScratch, data []float64, lo, hi int) {
	g := s.grid
	for a := lo; a < hi; a++ {
		var q float64
		for p := op.nodeOff[a]; p < op.nodeOff[a+1]; p++ {
			q += op.nodeW[p] * s.charges[op.nodePanel[p]]
		}
		ix, iy, iz := op.nodeCoords(op.activeNodes[a])
		data[g.RIdx(ix, iy, iz)] = q
	}
}

// evalRange interpolates grid potentials and applies the precorrection
// for panels [lo, hi).
func (op *Operator) evalRange(data []float64, dst, x []float64, lo, hi int) {
	ls := op.pz + 2 // padded-line stride of the half-spectrum layout
	for i := lo; i < hi; i++ {
		st := &op.sten[i]
		var phi float64
		for k := 0; k < 8; k++ {
			ix, iy, iz := op.nodeCoords(st.idx[k])
			phi += st.w[k] * data[(ix*op.py+iy)*ls+iz]
		}
		y := op.scale * op.areas[i] * phi
		idx := op.nearIdx[i]
		val := op.nearVal[i]
		for k, j := range idx {
			y += val[k] * x[j]
		}
		dst[i] = y
	}
}

var _ linalg.Matvec = (*Operator)(nil)
