package fmm

import (
	"math"
	"sort"
)

// nearSrc is one entry of a leaf's near list: a source leaf whose panels
// interact with every panel of the target leaf through the near-field
// CSR, either with exact Galerkin integrals or with center monopole
// (point) entries.
type nearSrc struct {
	leaf     int32
	galerkin bool
	// off is the entry offset of this source leaf's block inside every
	// CSR row of the target leaf (rows of one leaf all share the same
	// layout: blocks ordered by source leaf id).
	off int32
}

// nearPair is one unordered near leaf pair (a <= b), the unit of
// near-field assembly work: the pair's Galerkin (or point) block is
// integrated once and scattered into the rows of both leaves.
type nearPair struct {
	a, b     int32
	galerkin bool
	// offA is the block offset inside leaf a's rows for sources in b;
	// offB the offset inside leaf b's rows for sources in a.
	offA, offB int32
}

// interactions is the output of the dual-tree traversal: per-node M2L
// source lists in CSR form plus the near-field pair decomposition.
type interactions struct {
	m2lOff []int32 // per-node offsets into m2lSrc, len(nodes)+1
	m2lSrc []int32 // well-separated source node ids

	pairs  []nearPair  // unordered near leaf pairs
	nearBy [][]nearSrc // per-leaf near lists, sorted by source leaf id
}

// buildInteractions runs the dual-tree traversal from (root, root) and
// classifies every (target, source) node pair exactly once:
//
//   - accepted by the multipole criterion -> M2L entry on the target;
//   - both leaves, not accepted -> near pair (exact Galerkin when the
//     boxes are within the NearFactor adjacency radius, center monopole
//     entries otherwise);
//   - otherwise the larger node is expanded into its children.
//
// The expansion rule (larger halfSize first; ties broken by node id, not
// by position) makes the visited ordered-pair set symmetric, so every
// unordered near pair is seen in both orders and recorded once with
// a <= b.
func (t *tree) buildInteractions(theta, nearFactor float64) *interactions {
	nn := len(t.nodes)
	m2l := make([][]int32, nn)
	nearBy := make([][]nearSrc, nn)
	var pairs []nearPair

	type pr struct{ a, b int32 }
	stack := make([]pr, 1, 1024)
	stack[0] = pr{0, 0}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		a, b := top.a, top.b
		na, nb := &t.nodes[a], &t.nodes[b]
		d := na.center.Sub(nb.center).Norm()
		// Multipole acceptance: both the source truncation (as in the
		// recursive Barnes-Hut walk) and the local-expansion truncation
		// on the target side shrink like (halfSize/d)^3, so the
		// criterion is symmetric in the two radii.
		if d*theta > 2*(na.halfSize+nb.halfSize) {
			m2l[a] = append(m2l[a], b)
			continue
		}
		if na.leaf && nb.leaf {
			gal := t.boxDist(a, b) <= nearFactor*2*math.Max(na.halfSize, nb.halfSize)
			nearBy[a] = append(nearBy[a], nearSrc{leaf: b, galerkin: gal})
			if a <= b {
				pairs = append(pairs, nearPair{a: a, b: b, galerkin: gal})
			}
			continue
		}
		var expandA bool
		switch {
		case na.leaf:
			expandA = false
		case nb.leaf:
			expandA = true
		case na.halfSize != nb.halfSize:
			expandA = na.halfSize > nb.halfSize
		default:
			expandA = a <= b
		}
		if expandA {
			for _, ch := range na.children {
				if ch >= 0 {
					stack = append(stack, pr{ch, b})
				}
			}
		} else {
			for _, ch := range nb.children {
				if ch >= 0 {
					stack = append(stack, pr{a, ch})
				}
			}
		}
	}

	in := &interactions{nearBy: nearBy, pairs: pairs}

	// Deterministic order independent of traversal stack details.
	total := 0
	for id := range m2l {
		lst := m2l[id]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		total += len(lst)
	}
	in.m2lOff = make([]int32, nn+1)
	in.m2lSrc = make([]int32, 0, total)
	for id := range m2l {
		in.m2lOff[id] = int32(len(in.m2lSrc))
		in.m2lSrc = append(in.m2lSrc, m2l[id]...)
	}
	in.m2lOff[nn] = int32(len(in.m2lSrc))

	// Fix every leaf's row layout: blocks ordered by source leaf id,
	// offsets by prefix sum of source leaf sizes.
	for id := range nearBy {
		lst := nearBy[id]
		if len(lst) == 0 {
			continue
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i].leaf < lst[j].leaf })
		var off int32
		for k := range lst {
			lst[k].off = off
			nd := &t.nodes[lst[k].leaf]
			off += nd.hi - nd.lo
		}
	}

	// Resolve each pair's block offsets on both sides.
	for k := range pairs {
		p := &pairs[k]
		p.offA = findNearOff(nearBy[p.a], p.b)
		p.offB = findNearOff(nearBy[p.b], p.a)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	return in
}

// findNearOff returns the row-block offset of source leaf src inside a
// sorted near list.
func findNearOff(lst []nearSrc, src int32) int32 {
	i := sort.Search(len(lst), func(i int) bool { return lst[i].leaf >= src })
	return lst[i].off
}

// rowStride returns the total near-entry count of every row of leaf id.
func (in *interactions) rowStride(t *tree, id int32) int64 {
	var s int64
	for _, ns := range in.nearBy[id] {
		nd := &t.nodes[ns.leaf]
		s += int64(nd.hi - nd.lo)
	}
	return s
}
