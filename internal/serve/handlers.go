package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"parbem/internal/extract"
	"parbem/internal/geom"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/plan"
	"parbem/internal/report"
)

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /extract", s.handleExtract)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /artifacts/{key}", s.handleArtifact)
	return mux
}

// errorEnvelope is the JSON shape of every non-2xx response.
type errorEnvelope struct {
	Error *RequestError `json:"error"`
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// asRequestError coerces any error to the structured shape, wrapping
// foreign errors as extraction failures.
func asRequestError(err error) *RequestError {
	if re, ok := err.(*RequestError); ok {
		return re
	}
	return &RequestError{Code: CodeExtractionFailed, Message: err.Error()}
}

// writeError wraps any error as a structured rejection. Backpressure
// rejections carrying RetryAfterSec additionally set the HTTP
// Retry-After header (whole seconds, rounded up) so generic clients and
// proxies can honor the advice without parsing the body.
func writeError(w http.ResponseWriter, err error) {
	re := asRequestError(err)
	status := http.StatusBadRequest
	switch re.Code {
	case CodeQueueFull, CodeRateLimited:
		status = http.StatusTooManyRequests
	case CodeDeadlineExceeded:
		status = http.StatusGatewayTimeout
	case CodeNotFound:
		status = http.StatusNotFound
	case CodeExtractionFailed:
		status = http.StatusUnprocessableEntity
	case CodeShuttingDown, CodeDraining:
		status = http.StatusServiceUnavailable
	case CodeInternal:
		status = http.StatusInternalServerError
	}
	if re.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(re.RetryAfterSec))))
	}
	writeJSON(w, status, errorEnvelope{Error: re})
}

// ExtractResponse is the POST /extract result: the capx -json pipeline
// telemetry schema plus the job id and the plan-stage reuse marker.
type ExtractResponse struct {
	JobID     string `json:"job_id"`
	Structure string `json:"structure"`
	Backend   string `json:"backend"`
	Requested string `json:"requested"`
	Precond   string `json:"precond"`
	// Precision is the resolved matvec arithmetic of the solve
	// ("fp64" or "mixed"; auto requests report what the cost model
	// picked).
	Precision  string  `json:"precision"`
	NumPanels  int     `json:"num_panels"`
	EdgeM      float64 `json:"edge_m"`
	Tol        float64 `json:"tol"`
	Iterations int     `json:"iterations"`
	// Reused reports the plan-stage reuse of the build that produced
	// this result ("none", "near-field", "near-field+factors"); an
	// identical-geometry cache hit repeats the original build's flags.
	Reused     string      `json:"reused"`
	SetupMs    float64     `json:"setup_ms"`
	SolveMs    float64     `json:"solve_ms"`
	TotalMs    float64     `json:"total_ms"`
	Conductors []string    `json:"conductors"`
	CFarads    [][]float64 `json:"c_farads"`
	Warnings   []string    `json:"maxwell_warnings,omitempty"`
}

// JobResponse is the GET /jobs/{id} payload; Result is set once done.
type JobResponse struct {
	JobID    string           `json:"job_id"`
	Kind     string           `json:"kind"`
	Status   string           `json:"status"`
	QueuedMs float64          `json:"queued_ms"`
	RunMs    float64          `json:"run_ms,omitempty"`
	Result   *ExtractResponse `json:"result,omitempty"`
	Error    *RequestError    `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// 503 flips load-balancer health checks away from a replica
		// that is about to go down while its backlog finishes.
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ok": false, "status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// admitTenant applies the per-tenant token bucket (X-Tenant header;
// absent headers share one anonymous bucket) before any decode work is
// spent on the request. Nil limiter admits everything.
func (s *Server) admitTenant(r *http.Request) error {
	if s.limiter == nil {
		return nil
	}
	tenant := r.Header.Get("X-Tenant")
	if ok, wait := s.limiter.allow(tenant, time.Now()); !ok {
		s.c.rejectedRate.Add(1)
		return &RequestError{
			Code:          CodeRateLimited,
			Message:       fmt.Sprintf("tenant %q over its request rate; retry later", tenant),
			RetryAfterSec: wait.Seconds(),
		}
	}
	return nil
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	if err := s.admitTenant(r); err != nil {
		writeError(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	req, st, err := s.limits.DecodeExtract(body)
	if err != nil {
		s.c.badRequests.Add(1)
		writeError(w, err)
		return
	}
	// Async jobs deliberately detach from the submitting request;
	// synchronous jobs carry the client's context so a queued job
	// whose client gave up is skipped instead of burning the pool.
	ctx := r.Context()
	if req.Async {
		ctx = context.Background()
	}
	j := s.newExtractJob(ctx, req, st)
	dup, err := s.admit(j)
	if err != nil {
		writeError(w, err)
		return
	}
	if dup != nil {
		// The idempotency key matched a live job: the retried submit
		// observes its original instead of enqueueing a twin.
		writeJSON(w, http.StatusAccepted, JobResponse{
			JobID: dup.id, Kind: dup.kind, Status: jobState(dup.state.Load()).String(),
		})
		return
	}
	if req.Async {
		writeJSON(w, http.StatusAccepted, JobResponse{
			JobID: j.id, Kind: j.kind, Status: jobState(j.state.Load()).String(),
		})
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; a job already running completes into the /jobs
		// history, a queued one is skipped when popped.
		return
	}
	if j.err != nil {
		writeError(w, j.err)
		return
	}
	writeJSON(w, http.StatusOK, j.result)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, &RequestError{Code: CodeNotFound, Message: "unknown job id"})
		return
	}
	state := jobState(j.state.Load())
	resp := JobResponse{JobID: j.id, Kind: j.kind, Status: state.String()}
	switch state {
	case jobDone, jobFailed, jobCancelled:
		resp.QueuedMs = j.started.Sub(j.enqueued).Seconds() * 1e3
		resp.RunMs = j.finished.Sub(j.started).Seconds() * 1e3
		if j.err != nil {
			resp.Error = asRequestError(j.err)
		} else if res, ok := j.result.(*ExtractResponse); ok {
			resp.Result = res
		}
	case jobRunning:
		resp.QueuedMs = j.started.Sub(j.enqueued).Seconds() * 1e3
	}
	writeJSON(w, http.StatusOK, resp)
}

// requestErrorFor maps an engine error onto the structured service
// shape. A plan.Interrupted — the deadline or disconnect observed at a
// stage boundary or GMRES iteration checkpoint — keeps its partial
// telemetry (the stage that was running, elapsed wall time of the
// request, Krylov iterations completed) and, when the solve stage got
// far enough to produce one, the best-effort partial result: the last
// iterates' worst relative residual and the capacitance matrix reduced
// from them, accurate only to that residual.
func requestErrorFor(err error, elapsed time.Duration) *RequestError {
	var pi *plan.Interrupted
	code, stage, iters := "", "", 0
	residual := 0.0
	var partial [][]float64
	if errors.As(err, &pi) {
		stage, iters = pi.Stage, pi.Iterations
		residual = pi.Residual
		if pi.PartialC != nil {
			partial = matrixRows(pi.PartialC)
		}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = CodeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		code = CodeCancelled
	default:
		return &RequestError{Code: CodeExtractionFailed, Message: err.Error()}
	}
	return &RequestError{
		Code:           code,
		Message:        err.Error(),
		Stage:          stage,
		ElapsedMs:      elapsed.Seconds() * 1e3,
		Iterations:     iters,
		Residual:       residual,
		PartialCFarads: partial,
	}
}

// runExtract executes one admitted extract job on the shared engine,
// bounded by the job's deadline/cancellation context.
func (s *Server) runExtract(j *job, req *ExtractRequest, st *geom.Structure) (*ExtractResponse, error) {
	opt, err := PipelineOptions(req.Backend, req.Precond, req.Precision, req.Tol)
	if err != nil {
		return nil, err
	}
	if opt.Precision == op.PrecisionAuto {
		// A request that leaves the arithmetic to "auto" inherits the
		// daemon-wide default (capxd -precision).
		opt.Precision = s.opt.DefaultPrecision
	}
	t0 := time.Now()
	res, err := s.eng.ExtractPipelineCtx(j.ctx, st, req.EdgeM, opt)
	if err != nil {
		return nil, requestErrorFor(err, time.Since(t0))
	}
	total := time.Since(t0)
	s.m.observeStages(res.Backend.String(), res.Stages, total)
	setup := res.Stages.Discretize + res.Stages.Topology + res.Stages.NearField + res.Stages.Factorize
	return &ExtractResponse{
		JobID:      j.id,
		Structure:  st.Name,
		Backend:    res.Backend.String(),
		Requested:  requestedName(req.Backend),
		Precond:    requestedName(req.Precond),
		Precision:  res.Precision.String(),
		NumPanels:  res.NumPanels,
		EdgeM:      req.EdgeM,
		Tol:        req.Tol,
		Iterations: res.Iterations,
		Reused:     reusedName(res.Reused),
		SetupMs:    setup.Seconds() * 1e3,
		SolveMs:    res.Stages.Solve.Seconds() * 1e3,
		TotalMs:    total.Seconds() * 1e3,
		Conductors: conductorNames(st),
		CFarads:    matrixRows(res.C),
		Warnings:   report.CheckMaxwell(res.C, 0),
	}, nil
}

// SweepHeader is the first NDJSON line of a /sweep response.
type SweepHeader struct {
	JobID   string  `json:"job_id"`
	Mode    string  `json:"mode"` // "variants" | "template"
	Points  int     `json:"points"`
	Backend string  `json:"backend"`
	Precond string  `json:"precond"`
	EdgeM   float64 `json:"edge_m"`
	Tol     float64 `json:"tol"`
}

// SweepFit is the template-mode payload of one point: the fitted
// flat/arch decomposition of extract.FitArch.
type SweepFit struct {
	Flat    float64 `json:"flat"`
	Peak    float64 `json:"peak"`
	PeakPos float64 `json:"peak_pos"`
	Decay   float64 `json:"decay"`
}

// SweepPoint is one NDJSON line of a /sweep response. A failed point
// carries Error and no result fields — mid-sweep failures surface as
// per-point entries, never dropped points.
type SweepPoint struct {
	Index     int    `json:"index"`
	Structure string `json:"structure,omitempty"`
	// HM, Iterations and TotalMs carry no omitempty: a zero there is a
	// legitimate value (h=0 contact sweeps, direct solves with zero
	// Krylov iterations, sub-millisecond cache hits rounding to 0) and
	// must survive the round trip to capx -remote.
	HM         float64       `json:"h_m"`
	Backend    string        `json:"backend,omitempty"`
	Iterations int           `json:"iterations"`
	Reused     string        `json:"reused,omitempty"`
	TotalMs    float64       `json:"total_ms"`
	CFarads    [][]float64   `json:"c_farads,omitempty"`
	Conductors []string      `json:"conductors,omitempty"`
	Fit        *SweepFit     `json:"fit,omitempty"`
	Error      *RequestError `json:"error,omitempty"`
}

// SweepTrailer is the final NDJSON line of a /sweep response.
type SweepTrailer struct {
	Done    bool    `json:"done"`
	Points  int     `json:"points"`
	Failed  int     `json:"failed"`
	TotalMs float64 `json:"total_ms"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if err := s.admitTenant(r); err != nil {
		writeError(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.limits.MaxBodyBytes)
	req, sts, err := s.limits.DecodeSweep(body)
	if err != nil {
		s.c.badRequests.Add(1)
		writeError(w, err)
		return
	}
	j := s.newSweepJob(r.Context(), req, sts)
	if _, err := s.admit(j); err != nil {
		writeError(w, err)
		return
	}

	mode := "variants"
	points := len(sts)
	if len(req.TemplateHs) > 0 {
		mode, points = "template", len(req.TemplateHs)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(SweepHeader{
		JobID: j.id, Mode: mode, Points: points,
		Backend: requestedName(req.Backend), Precond: requestedName(req.Precond),
		EdgeM: req.EdgeM, Tol: req.Tol,
	})
	for msg := range j.stream {
		emit(msg)
	}
	<-j.done
	if t, ok := j.result.(*SweepTrailer); ok && j.err == nil {
		emit(t)
	} else if j.err != nil {
		// A whole-sweep failure (not a per-point one) ends the stream
		// with an error line in place of the trailer.
		emit(errorEnvelope{Error: asRequestError(j.err)})
	}
}

// runSweep executes an admitted sweep job, emitting one SweepPoint per
// point onto the job's stream. A client disconnect or deadline expiry
// cancels the sweep between points, and variant solves in flight stop
// at the engine's interior checkpoints.
func (s *Server) runSweep(j *job, req *SweepRequest, sts []*geom.Structure) (any, error) {
	t0 := time.Now()
	failed := 0
	emit := func(p *SweepPoint) bool {
		select {
		case j.stream <- p:
		case <-j.ctx.Done():
			return false
		}
		// Count after the send: a point that never reached the stream
		// (client gone, sweep abandoned) must not inflate the
		// delivered-point counters.
		s.c.sweepPoints.Add(1)
		if p.Error != nil {
			failed++
			s.c.sweepPointErrors.Add(1)
		}
		return true
	}
	if len(req.TemplateHs) > 0 {
		s.runTemplateSweep(j, req, emit)
	} else {
		s.runVariantSweep(j, req, sts, emit)
	}
	if err := j.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, &RequestError{
				Code:      CodeDeadlineExceeded,
				Message:   "sweep deadline exceeded",
				ElapsedMs: time.Since(t0).Seconds() * 1e3,
			}
		}
		return nil, &RequestError{Code: CodeCancelled, Message: "client went away mid-sweep"}
	}
	n := len(sts) + len(req.TemplateHs)
	return &SweepTrailer{
		Done: true, Points: n, Failed: failed,
		TotalMs: time.Since(t0).Seconds() * 1e3,
	}, nil
}

// runVariantSweep streams each geometry through the engine's
// family-keyed plan cache; a failing point becomes an error entry and
// the sweep continues.
func (s *Server) runVariantSweep(j *job, req *SweepRequest, sts []*geom.Structure, emit func(*SweepPoint) bool) {
	opt, err := PipelineOptions(req.Backend, req.Precond, req.Precision, req.Tol)
	if err != nil {
		// Unreachable: DecodeSweep validated the options.
		for i := range sts {
			if !emit(&SweepPoint{Index: i, Error: &RequestError{Code: CodePointFailed, Message: err.Error()}}) {
				return
			}
		}
		return
	}
	if opt.Precision == op.PrecisionAuto {
		opt.Precision = s.opt.DefaultPrecision
	}
	for i, st := range sts {
		if j.ctx.Err() != nil {
			return
		}
		t0 := time.Now()
		res, err := s.eng.ExtractPipelineCtx(j.ctx, st, req.EdgeM, opt)
		if err != nil {
			if j.ctx.Err() != nil {
				// Deadline or disconnect observed inside the solve:
				// the whole sweep is over, not just this point —
				// runSweep reports it in place of the trailer.
				return
			}
			if !emit(&SweepPoint{
				Index: i, Structure: st.Name,
				Error: &RequestError{Code: CodePointFailed, Message: err.Error()},
			}) {
				return
			}
			continue
		}
		total := time.Since(t0)
		s.m.observeStages(res.Backend.String(), res.Stages, total)
		if !emit(&SweepPoint{
			Index: i, Structure: st.Name,
			Backend:    res.Backend.String(),
			Iterations: res.Iterations,
			Reused:     reusedName(res.Reused),
			TotalMs:    total.Seconds() * 1e3,
			CFarads:    matrixRows(res.C),
			Conductors: conductorNames(st),
		}) {
			return
		}
	}
}

// runTemplateSweep runs the template-extraction h-sweep of the
// elementary crossing pair. extract.SweepH keeps healthy points on a
// mid-sweep failure and joins one PointError per failed separation;
// here, at the service edge, each failure becomes that point's error
// entry in the stream.
func (s *Server) runTemplateSweep(j *job, req *SweepRequest, emit func(*SweepPoint) bool) {
	// Template sweeps run outside the budgeted engine pool (the sweep
	// owns its fan-out and per-chunk plans), so they serialize on a
	// dedicated slot and are bounded to the server's per-job worker
	// budget instead of multiplying the whole machine by the runner
	// count.
	select {
	case s.tmplSem <- struct{}{}:
		defer func() { <-s.tmplSem }()
	case <-j.ctx.Done():
		return
	}
	if j.ctx.Err() != nil {
		return
	}
	hs := req.TemplateHs
	fits, err := s.sweepH(geom.DefaultCrossingPair(), hs, req.EdgeM, s.opt.WorkerBudget)
	if len(fits) < len(hs) {
		fits = append(fits, make([]*extract.ArchFit, len(hs)-len(fits))...)
	}
	perr := perPointErrors(err, hs)
	for i, h := range hs {
		p := &SweepPoint{Index: i, HM: h}
		switch {
		case fits[i] != nil:
			p.Fit = &SweepFit{
				Flat: fits[i].Flat, Peak: fits[i].Peak,
				PeakPos: fits[i].PeakPos, Decay: fits[i].Decay,
			}
		case perr[i] != nil:
			p.Error = &RequestError{Code: CodePointFailed, Message: perr[i].Error()}
		default:
			p.Error = &RequestError{Code: CodePointFailed, Message: "point produced no fit"}
		}
		if !emit(p) {
			return
		}
	}
}

// perPointErrors maps a joined SweepH error back onto the h indices it
// belongs to. Separations are matched bitwise so duplicate h values
// claim one error each, in order.
func perPointErrors(err error, hs []float64) []error {
	out := make([]error, len(hs))
	if err == nil {
		return out
	}
	pes := extract.PointErrors(err)
	claimed := make([]bool, len(pes))
	for i, h := range hs {
		for k, pe := range pes {
			if claimed[k] || !sameFloat(pe.H, h) {
				continue
			}
			out[i], claimed[k] = pe.Err, true
			break
		}
	}
	return out
}

// sameFloat is bitwise float equality (NaN-safe).
func sameFloat(a, b float64) bool {
	return a == b || (a != a && b != b)
}

// requestedName normalizes an empty selector to "auto" for telemetry.
func requestedName(s string) string {
	if s == "" {
		return "auto"
	}
	return s
}

// reusedName renders plan stage reuse the way capx -sweep does.
func reusedName(r plan.StageReuse) string {
	if !r.NearField {
		return "none"
	}
	if r.Factorization {
		return "near-field+factors"
	}
	return "near-field"
}

// conductorNames lists the structure's conductor names.
func conductorNames(st *geom.Structure) []string {
	names := make([]string, len(st.Conductors))
	for i, c := range st.Conductors {
		names[i] = c.Name
	}
	return names
}

// matrixRows flattens a capacitance matrix for JSON output (the
// c_farads field of capx -json).
func matrixRows(c *linalg.Dense) [][]float64 {
	rows := make([][]float64, c.Rows)
	for i := range rows {
		rows[i] = append([]float64(nil), c.Row(i)...)
	}
	return rows
}
