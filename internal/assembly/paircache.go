package assembly

import (
	"math"
	"sync"

	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
)

// floatBits is math.Float64bits, local for the shard hash.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// PairCache memoizes template-pair Galerkin integrals across matrix fills.
// The key is the pair's *relative* geometry — both supports translated so
// the first support's corner is the origin — so a hit requires only that
// the two templates be an exact rigid translate of a previously integrated
// pair. That is exactly the situation the paper's instantiable templates
// create: a repeated-template corpus (the same bus extracted many times,
// or one structure whose crossings repeat on a regular pitch) re-derives
// the same relative pair geometries over and over, and the batch engine
// shares one cache across all of its extractions so every repeat becomes
// a lookup.
//
// Only non-far pairs are worth caching (the far-field point approximation
// is cheaper than the lookup); TemplatePair applies that gate before
// consulting the cache. A cached value is the output of the same
// deterministic code path as a fresh evaluation; when a hit serves a
// *translated* copy of the original pair, the two evaluations could have
// differed in the last ulp (absolute coordinates round differently), so
// enabling the cache perturbs results by at most machine epsilon.
//
// The cache is sharded: each shard is an independent mutex-protected LRU,
// so concurrent fill workers rarely contend on the same lock.
type PairCache struct {
	shards [pairShards]pairShard
}

const pairShards = 64

// pairShard is one LRU shard: a map into a doubly linked ring ordered by
// recency.
type pairShard struct {
	mu   sync.Mutex
	cap  int
	m    map[pairKey]*pairNode
	head *pairNode // most recent
	tail *pairNode // least recent
	hits uint64
	miss uint64
}

type pairNode struct {
	key        pairKey
	val        float64
	prev, next *pairNode
}

// pairKey captures the translation-invariant geometry of a template pair
// plus a fingerprint of the integration configuration it was evaluated
// under (kernel settings and tabulated-kernel identity), so one shared
// cache never aliases values across differently-configured extractions.
// It is a comparable value type so lookups stay allocation-free.
type pairKey struct {
	cfg              uint64
	normalA, normalB geom.Axis
	dirA, dirB       basis.VaryDir
	shapeA, shapeB   shapeKey
	// Relative geometry: support A's in-plane extents and support B's
	// plane offset and in-plane intervals, all translated so support
	// A's (offset, U.Lo, V.Lo) corner is the origin.
	g          [7]float64
	ampA, ampB float64
}

// shapeKey is the comparable encoding of a template shape.
type shapeKey struct {
	kind uint8
	p    [3]float64
}

// shapeKeyOf encodes the shape; ok is false for shape types that cannot
// be encoded compactly (TabulatedShape), which simply bypasses the cache.
func shapeKeyOf(s basis.Shape) (shapeKey, bool) {
	switch sh := s.(type) {
	case basis.FlatShape:
		return shapeKey{kind: 0}, true
	case basis.ArchShape:
		return shapeKey{kind: 1, p: [3]float64{sh.EdgePos, sh.LambdaIn, sh.LambdaOut}}, true
	}
	return shapeKey{}, false
}

// NewPairCache creates a cache bounded to roughly maxEntries entries
// (split across shards; 0 means the default of 1<<18).
func NewPairCache(maxEntries int) *PairCache {
	if maxEntries <= 0 {
		maxEntries = 1 << 18
	}
	per := maxEntries / pairShards
	if per < 16 {
		per = 16
	}
	c := &PairCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].m = make(map[pairKey]*pairNode)
	}
	return c
}

// cacheFingerprint condenses every configuration input that influences
// a template-pair integral into one word for the pair-cache key. ok is
// false for configurations the cache cannot identify (a custom MathOps
// provider), which simply bypasses caching.
func (in *Integrator) cacheFingerprint() (uint64, bool) {
	cfg := in.Cfg
	var opsID uint64
	switch cfg.Ops {
	case kernel.StdOps:
		opsID = 1
	case kernel.FastOps:
		opsID = 2
	default:
		return 0, false
	}
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(opsID)
	mix(floatBits(cfg.FarFactor))
	mix(floatBits(cfg.MidFactor))
	mix(uint64(cfg.QuadOrder))
	if cfg.DisableApprox {
		mix(1)
	}
	if in.Tab != nil {
		mix(in.Tab.Fingerprint())
	}
	return h, true
}

// keyOf builds the translation-invariant key; ok is false when the pair
// is not cacheable (un-encodable shape).
func keyOf(cfgFP uint64, ti, tj *basis.Template) (pairKey, bool) {
	var k pairKey
	k.cfg = cfgFP
	var ok bool
	if k.shapeA, ok = shapeKeyOf(ti.Shape); !ok {
		return k, false
	}
	if k.shapeB, ok = shapeKeyOf(tj.Shape); !ok {
		return k, false
	}
	k.normalA, k.normalB = ti.Support.Normal, tj.Support.Normal
	k.dirA, k.dirB = ti.Dir, tj.Dir
	k.ampA, k.ampB = ti.Amplitude, tj.Amplitude
	sa, sb := &ti.Support, &tj.Support
	// Translate both supports by support A's origin. The in-plane axes
	// of a rect are fixed functions of its normal, so for equal normals
	// the U/V axes align; for different normals the key still encodes a
	// well-defined relative geometry because the normals are part of it.
	// Each support's in-plane origin shift must be expressed in the
	// *other* rect's axes when normals differ, so instead of reasoning
	// per-axis we subtract support A's world-space corner from both
	// rects' world-space coordinates via their axis extents.
	au, av, an := sa.U.Lo, sa.V.Lo, sa.Offset
	// World components of A's corner, indexed by axis.
	var corner [3]float64
	corner[sa.UAxis()] = au
	corner[sa.VAxis()] = av
	corner[sa.Normal] = an
	k.g[0] = sa.U.Hi - au
	k.g[1] = sa.V.Hi - av
	k.g[2] = sb.U.Lo - corner[sb.UAxis()]
	k.g[3] = sb.U.Hi - corner[sb.UAxis()]
	k.g[4] = sb.V.Lo - corner[sb.VAxis()]
	k.g[5] = sb.V.Hi - corner[sb.VAxis()]
	k.g[6] = sb.Offset - corner[sb.Normal]
	return k, true
}

// shardOf picks the shard by a cheap hash of the key's geometry.
func (c *PairCache) shardOf(k *pairKey) *pairShard {
	// FNV-style mix of a few discriminating floats.
	h := uint64(14695981039346656037)
	mix := func(f float64) {
		h ^= floatBits(f)
		h *= 1099511628211
	}
	mix(k.g[2])
	mix(k.g[4])
	mix(k.g[6])
	mix(k.g[0])
	h ^= uint64(k.normalA)<<8 | uint64(k.normalB)<<4 | uint64(k.dirA)<<2 | uint64(k.dirB)
	return &c.shards[h%pairShards]
}

// get returns the cached value for the key.
func (s *pairShard) get(k pairKey) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.m[k]
	if n == nil {
		s.miss++
		return 0, false
	}
	s.hits++
	s.moveToFront(n)
	return n.val, true
}

// put inserts a value, evicting the least recently used entry when full.
func (s *pairShard) put(k pairKey, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.m[k]; n != nil {
		n.val = v
		s.moveToFront(n)
		return
	}
	if len(s.m) >= s.cap && s.tail != nil {
		old := s.tail
		s.unlink(old)
		delete(s.m, old.key)
	}
	n := &pairNode{key: k, val: v}
	s.m[k] = n
	s.pushFront(n)
}

func (s *pairShard) moveToFront(n *pairNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *pairShard) pushFront(n *pairNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *pairShard) unlink(n *pairNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Stats returns cumulative hit and miss counts across shards.
func (c *PairCache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.miss
		s.mu.Unlock()
	}
	return hits, misses
}

// Len returns the current entry count.
func (c *PairCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
