package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"parbem/internal/geom"
	"parbem/internal/geomio"
	"strings"
)

// BenchmarkServeExtract measures end-to-end /extract request
// throughput: cold is a fresh server (and engine) per request — the
// one-shot CLI cost the service exists to amortize — and warm is the
// steady state against a long-running server whose plan cache is hot.
// The warm/cold ratio is the service-layer amortization the ROADMAP
// benchmark record tracks.
func BenchmarkServeExtract(b *testing.B) {
	var sb strings.Builder
	if err := geomio.Write(&sb, geom.DefaultCrossingPair().Build(), 0); err != nil {
		b.Fatal(err)
	}
	req := &ExtractRequest{
		Geometry: sb.String(), EdgeM: 0.4e-6,
		Backend: "fastcap", Precond: "block", Tol: 1e-6,
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := New(Options{Workers: 2})
			hs := httptest.NewServer(s.Handler())
			if _, err := NewClient(hs.URL).Extract(ctx, req); err != nil {
				b.Fatal(err)
			}
			hs.Close()
			s.Close()
		}
	})
	b.Run("warm", func(b *testing.B) {
		benchWarm(b, ctx, req, Options{Workers: 2})
	})
	// Synchronous extracts never touch the journal, so a durable server
	// must serve them at the same warm rate (acceptance bound: < 5%
	// regression vs warm).
	b.Run("warm-journal", func(b *testing.B) {
		benchWarm(b, ctx, req, Options{Workers: 2, DataDir: b.TempDir()})
	})
}

// benchWarm measures steady-state /extract latency against one
// long-running server configured by opt.
func benchWarm(b *testing.B, ctx context.Context, req *ExtractRequest, opt Options) {
	s := New(opt)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer s.Close()
	c := NewClient(hs.URL)
	if _, err := c.Extract(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Extract(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
