// Package op is the unified operator/solve pipeline: one backend-agnostic,
// preconditioned Krylov path shared by every capacitance-extraction entry
// point (the dense reference, the multipole and precorrected-FFT
// accelerated baselines, the template-extraction fast path, the
// instantiable-basis solver and the batch engine).
//
// # Operator contract
//
// A solve backend is anything implementing Operator (= linalg.Matvec):
//
//	Apply(dst, x)  // dst = P x; dst and x never alias
//	Dim() int      // square dimension N
//
// Apply must be safe for concurrent use — the pipeline solves all
// conductor right-hand sides at once, one Krylov iteration stream per
// column — and should be allocation-free after warmup (the fmm and pfft
// operators and DenseOperator all are in serial mode). Backends may
// additionally implement NearBlocker to expose their near-field diagonal
// blocks:
//
//	NearBlocks() (idx [][]int32, blocks []*linalg.Dense)
//
// idx[k] lists the unknowns of block k (disjoint across blocks) and
// blocks[k] is the corresponding dense sub-matrix of the operator. The
// fmm operator returns its exact-Galerkin octree-leaf self blocks, the
// pfft operator its precorrection-cluster blocks, and DenseOperator
// fixed-size diagonal blocks.
//
// # Pipeline
//
// Pipeline owns the three steps every entry point used to re-implement:
// right-hand-side construction (unit-potential excitation per conductor,
// Galerkin-tested with panel areas), the multi-RHS solve (concurrent
// preconditioned restarted GMRES on pooled workspaces, or the direct
// equilibrated-Cholesky path for dense backends), and the
// charge-to-capacitance reduction C = Phi^T Rho (symmetrized).
//
// # Preconditioner
//
// The block-Jacobi preconditioner (NewBlockJacobi) factorizes each near
// block once with Cholesky at setup and applies all block solves
// allocation-free inside GMRESWith; unknowns outside every block fall
// back to the exact point-Jacobi diagonal. Because the near blocks carry
// the strong interactions of the Galerkin matrix, block-Jacobi cuts
// Krylov iteration counts across all accelerated backends relative to
// both plain and point-Jacobi iteration (see TestBlockJacobiReducesIterations
// and BenchmarkPipelineSolve).
//
// Backend selection under Options.Backend == BackendAuto is delegated to
// internal/costmodel.Select, which picks dense, fmm or pfft from the
// panel count and grid fill factor.
//
// # Precision
//
// Options.Precision selects the arithmetic of the accelerated matvec.
// PrecisionFP64 runs everything in float64. PrecisionMixed asks the fmm
// and pfft operators for their float32 mirrors (ApplyMixed: float32
// storage and arithmetic for the far field, float64 accumulation at the
// interfaces) and wraps the Krylov solve in float64 iterative
// refinement: the inner GMRES iterates against the float32 operator at
// a loose inner tolerance while the outer loop computes true float64
// residuals through the fp64 operator and re-solves for the correction,
// so the float32 representation error never bounds the final accuracy —
// only the requested Tol does. If the refinement stalls (the float32
// operator cannot reduce the residual further), the pipeline finishes
// the solve in pure fp64; correctness is never traded for speed.
// PrecisionAuto (the default) delegates to costmodel.SelectPrecision,
// which enables mixed only above a panel-count floor and below a
// tolerance floor (tight tolerances near float32 epsilon gain nothing).
// Dense backends ignore the knob (no float32 mirror). Result.Precision
// and Pipeline.Precision report the arithmetic that actually ran, never
// PrecisionAuto.
package op

import (
	"math"
	"sort"
	"sync/atomic"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Operator is the solve-backend contract: a concurrency-safe matvec.
type Operator = linalg.Matvec

// NearBlocker is optionally implemented by operators that can expose
// disjoint near-field diagonal blocks for block-Jacobi preconditioning.
// idx[k] holds the unknown indices of block k; blocks[k] the dense
// sub-matrix over those unknowns. Blocks must not share unknowns.
type NearBlocker interface {
	NearBlocks() (idx [][]int32, blocks []*linalg.Dense)
}

// Spec describes a panelized extraction problem to the pipeline: the
// geometry, the physics constants and the execution resources. It is the
// backend-independent half of pcbem.Problem.
type Spec struct {
	Panels        []geom.Panel
	NumConductors int
	// Eps is the dielectric permittivity (0 = vacuum).
	Eps float64
	// Cfg is the integration configuration (nil = defaults).
	Cfg *kernel.Config
	// Exec runs parallel assembly, dense matvecs and the reduction
	// (nil = a throwaway sched.Local sized by GOMAXPROCS).
	Exec sched.Executor
}

// withDefaults fills zero fields (value receiver: the caller's spec is
// not mutated).
func (s Spec) withDefaults() Spec {
	if s.Eps == 0 {
		s.Eps = kernel.Eps0
	}
	if s.Cfg == nil {
		s.Cfg = kernel.DefaultConfig()
	}
	return s
}

// exec returns the configured executor or a throwaway local one.
func (s *Spec) exec() sched.Executor {
	if s.Exec != nil {
		return s.Exec
	}
	return sched.Local(0)
}

// N returns the unknown count.
func (s *Spec) N() int { return len(s.Panels) }

// Entry computes one scaled Galerkin matrix entry P_ij.
func (s *Spec) Entry(i, j int) float64 {
	v := kernel.RectGalerkin(s.Cfg, s.Panels[i].Rect, s.Panels[j].Rect)
	return kernel.Scale(v, s.Eps)
}

// RHS builds the N x n right-hand-side matrix Phi: row i has the panel
// area in the column of its conductor (Galerkin testing of the unit
// potential).
func (s *Spec) RHS() *linalg.Dense {
	phi := linalg.NewDense(s.N(), s.NumConductors)
	for i, pan := range s.Panels {
		phi.Set(i, pan.Conductor, pan.Area())
	}
	return phi
}

// assembleChunks is the target task count for the parallel fill: several
// per worker so the cost-balanced ranges load-balance under stealing.
const assembleChunks = 64

// TriangularRowBounds partitions rows [0, n) into chunks carrying
// roughly equal upper-triangle entry counts (row i holds n-i entries).
func TriangularRowBounds(n, chunks int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	total := int64(n) * int64(n+1) / 2
	target := total / int64(chunks)
	bounds := make([]int, 1, chunks+1)
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(n - i)
		if acc >= target && len(bounds) < chunks {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	return append(bounds, n)
}

// AssembleDense builds the full N x N Galerkin matrix: the upper
// triangle is integrated in parallel over cost-balanced row ranges, then
// mirrored (each entry is computed exactly once).
func (s *Spec) AssembleDense() *linalg.Dense {
	n := s.N()
	m := linalg.NewDense(n, n)
	ex := s.exec()
	bounds := TriangularRowBounds(n, assembleChunks)
	ex.Map(len(bounds)-1, func(t int) {
		var batch kernel.Batch
		for i := bounds[t]; i < bounds[t+1]; i++ {
			row := m.Row(i)
			batch.Reset(s.Cfg, s.Panels[i].Rect)
			for j := i; j < n; j++ {
				row[j] = kernel.Scale(batch.Eval(s.Panels[j].Rect), s.Eps)
			}
		}
	})
	// Mirror the strictly-lower triangle from the filled upper half.
	chunk := (n + assembleChunks - 1) / assembleChunks
	ex.Map((n+chunk-1)/chunk, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := 0; j < i; j++ {
				row[j] = m.At(j, i)
			}
		}
	})
	return m
}

// AssembleDenseReuse is AssembleDense with delta-aware reuse: entries
// whose panel pair moved rigidly as a unit since prev was assembled
// (equal non-negative class values, panels aligned 1:1 by index; see
// geom.Diff and internal/plan) are copied from prev instead of
// re-integrated. It returns the matrix and the number of unordered
// entries served from prev. A shape-mismatched prev degrades to a full
// fresh assembly.
func (s *Spec) AssembleDenseReuse(prev *linalg.Dense, class []int32) (*linalg.Dense, int64) {
	n := s.N()
	if prev == nil || prev.Rows != n || prev.Cols != n || len(class) != n {
		return s.AssembleDense(), 0
	}
	m := linalg.NewDense(n, n)
	ex := s.exec()
	bounds := TriangularRowBounds(n, assembleChunks)
	var reused atomic.Int64
	ex.Map(len(bounds)-1, func(t int) {
		var nr int64
		var batch kernel.Batch
		for i := bounds[t]; i < bounds[t+1]; i++ {
			row := m.Row(i)
			prow := prev.Row(i)
			ci := class[i]
			batch.Reset(s.Cfg, s.Panels[i].Rect)
			for j := i; j < n; j++ {
				if ci >= 0 && ci == class[j] {
					row[j] = prow[j]
					nr++
				} else {
					row[j] = kernel.Scale(batch.Eval(s.Panels[j].Rect), s.Eps)
				}
			}
		}
		reused.Add(nr)
	})
	// Mirror the strictly-lower triangle from the filled upper half.
	chunk := (n + assembleChunks - 1) / assembleChunks
	ex.Map((n+chunk-1)/chunk, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := 0; j < i; j++ {
				row[j] = m.At(j, i)
			}
		}
	})
	return m, reused.Load()
}

// diagonal computes the exact matrix diagonal (point-Jacobi data).
func (s *Spec) diagonal() []float64 {
	d := make([]float64, s.N())
	for i := range d {
		d[i] = s.Entry(i, i)
	}
	return d
}

// stats summarizes the panelization for the cost-model selector: the
// bounding-box span of panel centers and the median panel long edge.
func (s *Spec) stats() (span [3]float64, medianEdge float64) {
	if len(s.Panels) == 0 {
		return span, 0
	}
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	edges := make([]float64, len(s.Panels))
	for i, p := range s.Panels {
		c := p.Center()
		lo = geom.Vec3{X: math.Min(lo.X, c.X), Y: math.Min(lo.Y, c.Y), Z: math.Min(lo.Z, c.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, c.X), Y: math.Max(hi.Y, c.Y), Z: math.Max(hi.Z, c.Z)}
		edges[i] = math.Max(p.U.Len(), p.V.Len())
	}
	d := hi.Sub(lo)
	span = [3]float64{d.X, d.Y, d.Z}
	sort.Float64s(edges)
	return span, edges[len(edges)/2]
}

// denseBlockSize is DenseOperator's near-block width: large enough that
// the blocks capture meaningful local coupling, small enough that the
// per-iteration block solves stay negligible next to the dense matvec.
const denseBlockSize = 64

// DenseOperator adapts an assembled dense system matrix to the pipeline.
// Its matvec delegates to linalg.DenseOp (row-blocked parallel above the
// cutoff when an executor is configured) and its near blocks are
// fixed-size diagonal blocks of the matrix.
type DenseOperator struct {
	linalg.DenseOp
	// BlockSize overrides the near-block width (0 = denseBlockSize).
	BlockSize int
}

// NewDenseOperator wraps an assembled matrix for the pipeline.
func NewDenseOperator(m *linalg.Dense, ex sched.Executor) *DenseOperator {
	return &DenseOperator{DenseOp: linalg.DenseOp{M: m, Exec: ex}}
}

// NearBlocks implements NearBlocker with contiguous diagonal blocks.
func (d *DenseOperator) NearBlocks() (idx [][]int32, blocks []*linalg.Dense) {
	bs := d.BlockSize
	if bs <= 0 {
		bs = denseBlockSize
	}
	n := d.M.Rows
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		ix := make([]int32, hi-lo)
		b := linalg.NewDense(hi-lo, hi-lo)
		for i := lo; i < hi; i++ {
			ix[i-lo] = int32(i)
			copy(b.Row(i-lo), d.M.Row(i)[lo:hi])
		}
		idx = append(idx, ix)
		blocks = append(blocks, b)
	}
	return idx, blocks
}

var (
	_ Operator    = (*DenseOperator)(nil)
	_ NearBlocker = (*DenseOperator)(nil)
)
