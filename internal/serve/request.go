package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"parbem/internal/geom"
	"parbem/internal/geomio"
	"parbem/internal/op"
)

// RequestError is the structured rejection every bad request gets: a
// stable machine-readable code plus a human-readable message. It is the
// only error shape the service emits on its JSON boundary. A
// deadline_exceeded rejection additionally carries partial telemetry:
// the pipeline stage the deadline interrupted, the wall time burned and
// the Krylov iterations completed before the early exit.
type RequestError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Stage is the pipeline stage the deadline interrupted
	// ("discretize", "topology", "near-field", "factorize", "solve", or
	// "queued" when it expired before the job started).
	Stage string `json:"stage,omitempty"`
	// ElapsedMs is the wall time spent on the request before the stop.
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	// Iterations is the Krylov work completed before the stop.
	Iterations int `json:"iterations,omitempty"`
	// Residual is the worst relative GMRES residual of the last iterate
	// when a deadline interrupted the solve stage (0 = unknown, 1 = no
	// progress beyond the initial guess). It bounds the accuracy of
	// PartialCFarads.
	Residual float64 `json:"residual,omitempty"`
	// PartialCFarads is the best-effort capacitance matrix reduced from
	// the last GMRES iterates when a deadline interrupted the solve —
	// a partial result alongside the telemetry, accurate only to
	// Residual, never to the requested tolerance.
	PartialCFarads [][]float64 `json:"partial_c_farads,omitempty"`
	// RetryAfterSec, on backpressure rejections (queue_full,
	// rate_limited, draining), is the server's advice on how long to
	// wait before retrying; it is also sent as the HTTP Retry-After
	// header. Zero means no advice.
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
}

// Error implements the error interface.
func (e *RequestError) Error() string { return e.Code + ": " + e.Message }

// Rejection codes.
const (
	// CodeBadRequest: malformed JSON, bad geometry text, invalid
	// options, or a geometry outside the admission limits.
	CodeBadRequest = "bad_request"
	// CodeQueueFull: the bounded job queue rejected the request.
	CodeQueueFull = "queue_full"
	// CodeNotFound: unknown job id.
	CodeNotFound = "not_found"
	// CodeExtractionFailed: the solver rejected or failed the geometry.
	CodeExtractionFailed = "extraction_failed"
	// CodePointFailed: one sweep point failed (per-point stream entry).
	CodePointFailed = "point_failed"
	// CodeShuttingDown: the server is closing and admits no new jobs.
	CodeShuttingDown = "shutting_down"
	// CodeDraining: the server is draining ahead of a shutdown or
	// restart; retry against another replica (or after Retry-After).
	CodeDraining = "draining"
	// CodeCancelled: the requester disconnected before the job ran (or
	// mid-sweep).
	CodeCancelled = "cancelled"
	// CodeDeadlineExceeded: the request's timeout_ms expired before the
	// solve converged; the error carries partial telemetry (stage,
	// elapsed_ms, iterations).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeRateLimited: the tenant's token bucket rejected the request.
	CodeRateLimited = "rate_limited"
	// CodeInternal: a contained panic inside the solver stack.
	CodeInternal = "internal_error"
)

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// Limits bound what one request may ask of the server; everything over
// a limit is rejected at decode time with a structured error, before
// any solver state is touched. The zero value selects the defaults.
type Limits struct {
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxConductors caps conductors per structure (default 1024).
	MaxConductors int
	// MaxBoxes caps total boxes per structure (default 16384).
	MaxBoxes int
	// MaxPanels caps the estimated panel count of geometry/edge_m
	// (default 200000): the admission guard against a tiny edge on a
	// large structure allocating unbounded memory.
	MaxPanels int
	// MaxSweepPoints caps variants/template points per sweep
	// (default 256).
	MaxSweepPoints int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = 8 << 20
	}
	if l.MaxConductors == 0 {
		l.MaxConductors = 1024
	}
	if l.MaxBoxes == 0 {
		l.MaxBoxes = 16384
	}
	if l.MaxPanels == 0 {
		l.MaxPanels = 200000
	}
	if l.MaxSweepPoints == 0 {
		l.MaxSweepPoints = 256
	}
	return l
}

// ExtractRequest is the POST /extract payload: one geometry in the
// geomio text format plus the pipeline options of parbem.ExtractPipeline
// (the same selectors as capx -backend/-precond/-tol/-edge).
type ExtractRequest struct {
	// Geometry is the structure in geomio text format (required).
	Geometry string `json:"geometry"`
	// EdgeM is the max panel edge in meters (required, > 0).
	EdgeM float64 `json:"edge_m"`
	// Backend: auto | dense | fastcap | fmm | pfft ("" = auto).
	Backend string `json:"backend,omitempty"`
	// Precond: auto | none | jacobi | block ("" = auto).
	Precond string `json:"precond,omitempty"`
	// Precision: auto | fp64 | mixed ("" = auto). Selects the matvec
	// arithmetic of the accelerated backends; mixed runs a float32
	// operator inside float64 iterative refinement (see op.Precision).
	Precision string `json:"precision,omitempty"`
	// Tol is the Krylov relative tolerance (0 = 1e-4).
	Tol float64 `json:"tol,omitempty"`
	// Async enqueues the job and returns its id immediately; poll
	// GET /jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// IdempotencyKey deduplicates async submissions: two async requests
	// carrying the same key return the same job id, and a key replayed
	// from the journal after a crash folds onto its original job — so a
	// client retrying a submit it never saw acknowledged can never
	// double-run the work. Ignored for synchronous requests. Max 128
	// bytes; the client generates one automatically for ExtractAsync.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TimeoutMs is the request deadline in milliseconds (0 = none).
	// The clock starts at admission, so time spent queued counts; the
	// deadline propagates into the solver as a context observed at the
	// plan stage boundaries and every GMRES iteration. An exceeded
	// deadline returns a structured deadline_exceeded error (HTTP 504)
	// with partial telemetry instead of burning pool workers.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// SweepRequest is the POST /sweep payload. Exactly one of Variants and
// TemplateHs must be set:
//
//   - Variants streams each geometry through the engine's family-keyed
//     plan cache (parbem.NewPlan semantics): variants of one structural
//     family reuse each other's near-field integrals, factorizations
//     and warm starts, exactly like capx -sweep.
//   - TemplateHs runs the template-extraction h-sweep (extract.SweepH)
//     of the elementary crossing pair and streams the fitted a(h), b(h)
//     decompositions. Backend/Precond/Tol are ignored: the template
//     pipeline owns its solver configuration.
type SweepRequest struct {
	// Variants are geomio text geometries, extracted in order.
	Variants []string `json:"variants,omitempty"`
	// TemplateHs are crossing-pair separations in meters.
	TemplateHs []float64 `json:"template_hs_m,omitempty"`
	// EdgeM is the max panel edge in meters (required, > 0).
	EdgeM float64 `json:"edge_m"`
	// Backend, Precond, Precision, Tol: as in ExtractRequest (variants
	// mode only).
	Backend   string  `json:"backend,omitempty"`
	Precond   string  `json:"precond,omitempty"`
	Precision string  `json:"precision,omitempty"`
	Tol       float64 `json:"tol,omitempty"`
	// TimeoutMs bounds the whole sweep (0 = none); see
	// ExtractRequest.TimeoutMs. An expiring sweep ends its stream with
	// a deadline_exceeded error line in place of the trailer.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// decodeJSON unmarshals one JSON value from r under the body cap,
// rejecting trailing garbage.
func decodeJSON(r io.Reader, maxBytes int64, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBytes))
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// DecodeExtract parses and fully validates an /extract body: JSON
// shape, geometry text, finite coordinates, positive box volumes,
// option names and the admission limits. It never panics on malformed
// input (FuzzDecodeRequest) and every rejection is a *RequestError.
func (l Limits) DecodeExtract(r io.Reader) (*ExtractRequest, *geom.Structure, error) {
	l = l.withDefaults()
	var req ExtractRequest
	if err := decodeJSON(r, l.MaxBodyBytes, &req); err != nil {
		return nil, nil, err
	}
	if err := l.validateSolve(req.EdgeM, req.Backend, req.Precond, req.Precision, req.Tol); err != nil {
		return nil, nil, err
	}
	if err := validateTimeout(req.TimeoutMs); err != nil {
		return nil, nil, err
	}
	if len(req.IdempotencyKey) > 128 {
		return nil, nil, badRequest("idempotency_key exceeds 128 bytes")
	}
	st, err := l.parseGeometry(req.Geometry, req.EdgeM)
	if err != nil {
		return nil, nil, err
	}
	return &req, st, nil
}

// DecodeSweep parses and fully validates a /sweep body; all variant
// geometries (or template separations) are validated up front so a
// malformed point rejects the request instead of failing mid-stream.
func (l Limits) DecodeSweep(r io.Reader) (*SweepRequest, []*geom.Structure, error) {
	l = l.withDefaults()
	var req SweepRequest
	if err := decodeJSON(r, l.MaxBodyBytes, &req); err != nil {
		return nil, nil, err
	}
	if (len(req.Variants) == 0) == (len(req.TemplateHs) == 0) {
		return nil, nil, badRequest("exactly one of variants and template_hs_m must be non-empty")
	}
	if n := len(req.Variants) + len(req.TemplateHs); n > l.MaxSweepPoints {
		return nil, nil, badRequest("%d sweep points exceed the limit of %d", n, l.MaxSweepPoints)
	}
	if err := l.validateSolve(req.EdgeM, req.Backend, req.Precond, req.Precision, req.Tol); err != nil {
		return nil, nil, err
	}
	if err := validateTimeout(req.TimeoutMs); err != nil {
		return nil, nil, err
	}
	if len(req.TemplateHs) > 0 {
		for i, h := range req.TemplateHs {
			if !isFinite(h) || h <= 0 {
				return nil, nil, badRequest("template_hs_m[%d] = %v is not a positive finite separation", i, h)
			}
		}
		return &req, nil, nil
	}
	sts := make([]*geom.Structure, len(req.Variants))
	for i, g := range req.Variants {
		st, err := l.parseGeometry(g, req.EdgeM)
		if err != nil {
			msg := err.Error()
			if re, ok := err.(*RequestError); ok {
				msg = re.Message
			}
			return nil, nil, badRequest("variants[%d]: %s", i, msg)
		}
		sts[i] = st
	}
	return &req, sts, nil
}

// validateTimeout rejects non-finite or negative deadlines (0 = none).
func validateTimeout(ms float64) error {
	if ms != 0 && (!isFinite(ms) || ms < 0) {
		return badRequest("timeout_ms = %v is not a non-negative finite duration", ms)
	}
	return nil
}

// validateSolve checks the option fields shared by both request kinds.
func (l Limits) validateSolve(edge float64, backend, precond, precision string, tol float64) error {
	if !isFinite(edge) || edge <= 0 {
		return badRequest("edge_m = %v is not a positive finite panel edge", edge)
	}
	if _, err := PipelineOptions(backend, precond, precision, tol); err != nil {
		return err
	}
	return nil
}

// parseGeometry parses geomio text and enforces the geometry limits.
func (l Limits) parseGeometry(text string, edge float64) (*geom.Structure, error) {
	if text == "" {
		return nil, badRequest("geometry is required (geomio text format)")
	}
	if int64(len(text)) > l.MaxBodyBytes {
		return nil, badRequest("geometry text exceeds %d bytes", l.MaxBodyBytes)
	}
	st, err := geomio.Read(strings.NewReader(text))
	if err != nil {
		return nil, badRequest("bad geometry: %v", err)
	}
	if err := checkStructure(st, edge, l); err != nil {
		return nil, err
	}
	return st, nil
}

// checkStructure enforces the admission limits on a parsed structure:
// coordinate sanity (geom.Validate accepts NaN sizes, the service must
// not), count caps and the estimated panel budget.
func checkStructure(st *geom.Structure, edge float64, l Limits) error {
	if len(st.Conductors) > l.MaxConductors {
		return badRequest("%d conductors exceed the limit of %d", len(st.Conductors), l.MaxConductors)
	}
	boxes := 0
	var panels float64
	for ci, c := range st.Conductors {
		boxes += len(c.Boxes)
		if boxes > l.MaxBoxes {
			return badRequest("more than %d boxes", l.MaxBoxes)
		}
		for bi, b := range c.Boxes {
			for _, v := range [6]float64{b.Min.X, b.Min.Y, b.Min.Z, b.Max.X, b.Max.Y, b.Max.Z} {
				if !isFinite(v) {
					return badRequest("conductor %d (%q) box %d has a non-finite coordinate", ci, c.Name, bi)
				}
			}
			sz := b.Size()
			if !(sz.X > 0 && sz.Y > 0 && sz.Z > 0) {
				return badRequest("conductor %d (%q) box %d has non-positive size (zero-area or inverted)", ci, c.Name, bi)
			}
			panels += estimatePanels(sz, edge)
			if panels > float64(l.MaxPanels) {
				return badRequest("geometry at edge_m=%g estimates over %d panels (limit %d)",
					edge, int64(panels), l.MaxPanels)
			}
		}
	}
	// Validate still runs for everything it checks beyond the above
	// (empty conductor lists etc.).
	if err := st.Validate(); err != nil {
		return badRequest("bad geometry: %v", err)
	}
	return nil
}

// estimatePanels approximates the panel count of one box at the given
// edge: each of the six faces splits into ceil(a/edge) x ceil(b/edge)
// panels, exactly like geom.Panelize.
func estimatePanels(sz geom.Vec3, edge float64) float64 {
	nx := math.Ceil(sz.X / edge)
	ny := math.Ceil(sz.Y / edge)
	nz := math.Ceil(sz.Z / edge)
	return 2 * (nx*ny + nx*nz + ny*nz)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// PipelineOptions maps the wire-format backend/precond/precision/tol
// selectors onto op.Options, with the same semantics as the capx
// command line: an explicit preconditioner on the dense backend selects
// the iterative path, the default dense solve is the direct
// factorization.
func PipelineOptions(backend, precond, precision string, tol float64) (op.Options, error) {
	if tol != 0 && (!isFinite(tol) || tol < 0 || tol >= 1) {
		return op.Options{}, badRequest("tol = %v is not in (0, 1)", tol)
	}
	prec, err := op.ParsePrecision(precision)
	if err != nil {
		return op.Options{}, badRequest("unknown precision %q (want auto, fp64 or mixed)", precision)
	}
	opt := op.Options{Tol: tol, Precision: prec}
	switch backend {
	case "", "auto":
		opt.Backend = op.BackendAuto
	case "fastcap", "fmm":
		opt.Backend = op.BackendFMM
	case "pfft":
		opt.Backend = op.BackendPFFT
	case "dense":
		opt.Backend = op.BackendDense
		opt.Direct = precond == "" || precond == "auto"
	default:
		return op.Options{}, badRequest("unknown backend %q (want auto, dense, fastcap or pfft)", backend)
	}
	switch precond {
	case "", "auto":
		opt.Precond = op.PrecondAuto
	case "none":
		opt.Precond = op.PrecondNone
	case "jacobi":
		opt.Precond = op.PrecondJacobi
	case "block":
		opt.Precond = op.PrecondBlockJacobi
	default:
		return op.Options{}, badRequest("unknown preconditioner %q (want auto, none, jacobi or block)", precond)
	}
	return opt, nil
}
