package parbem

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the golden-corpus reference matrices (and
// geometry files) from the dense direct solver:
//
//	go test -run TestGoldenCorpus -update .
//
// Regeneration is a deliberate act: commit the diff only when the
// physics is supposed to have changed.
var updateGolden = flag.Bool("update", false, "regenerate testdata/golden reference matrices")

// goldenCase is one canonical geometry of the regression corpus. The
// geometry lives in testdata/golden/<name>.geo (written on -update from
// build, read back through geomio like any served payload) and the
// dense-direct reference matrix in testdata/golden/<name>.json.
type goldenCase struct {
	name  string
	build func() *Structure
	// edge is the panelization edge; relTol the per-case agreement
	// bound every backend must reproduce the stored matrix to. The
	// accelerated backends differ from dense only in far-field
	// approximation; the bounds are ~3x the worst deviation observed
	// at the conservative operator settings used here.
	edge   float64
	relTol float64
}

// platePair builds two parallel square plates (side/gap/thick in
// meters), the classic capacitor geometry, optionally offsetting the
// top plate laterally.
func platePair(side, gap, thick, offset float64) *Structure {
	return &Structure{
		Name: "plates",
		Conductors: []*Conductor{
			{Name: "bot", Boxes: []Box{NewBox(
				Vec3{X: 0, Y: 0, Z: 0},
				Vec3{X: side, Y: side, Z: thick})}},
			{Name: "top", Boxes: []Box{NewBox(
				Vec3{X: offset, Y: offset, Z: thick + gap},
				Vec3{X: side + offset, Y: side + offset, Z: 2*thick + gap})}},
		},
	}
}

// goldenCases is the corpus: bus crossings, plate pairs and members of
// the sweep families (h and width variants) the plan cache serves.
var goldenCases = []goldenCase{
	{"crossing", func() *Structure { return NewCrossingPair().Build() }, 4e-7, 5e-3},
	{"crossing_tight", func() *Structure {
		sp := NewCrossingPair()
		sp.H = 0.3e-6
		return sp.Build()
	}, 4e-7, 5e-3},
	{"crossing_wide", func() *Structure {
		sp := NewCrossingPair()
		sp.Width = 1.5 * sp.Width
		return sp.Build()
	}, 4e-7, 5e-3},
	{"plates", func() *Structure { return platePair(6e-6, 0.5e-6, 0.2e-6, 0) }, 1e-6, 5e-3},
	{"plates_offset", func() *Structure { return platePair(6e-6, 0.5e-6, 0.2e-6, 2e-6) }, 1e-6, 5e-3},
	{"bus2x2", func() *Structure { return NewBus(2, 2).Build() }, 1e-6, 5e-3},
	{"bus3x3", func() *Structure { return NewBus(3, 3).Build() }, 1e-6, 5e-3},
	{"bus2x2_hvar", func() *Structure {
		sp := NewBus(2, 2)
		sp.H = 1.5 * sp.H
		return sp.Build()
	}, 1e-6, 5e-3},
}

// goldenFile is the stored reference: the dense-direct capacitance
// matrix of the .geo geometry at the recorded edge.
type goldenFile struct {
	Name       string      `json:"name"`
	EdgeM      float64     `json:"edge_m"`
	RelTol     float64     `json:"rel_tol"`
	Conductors []string    `json:"conductors"`
	CFarads    [][]float64 `json:"c_farads"`
}

// goldenBackends is the backend x preconditioner matrix every case must
// reproduce its golden under. Conservative operator settings (fmm Theta
// 0.35, pfft NearRadius 8) keep the far-field error well inside the
// per-case bounds, as in TestPipelineBackendConsistency.
var goldenBackends = []struct {
	name string
	opt  PipelineOptions
}{
	{"dense-direct", PipelineOptions{Backend: BackendDense, Direct: true}},
	{"dense-block", PipelineOptions{Backend: BackendDense, Tol: 1e-6, Precond: PrecondBlockJacobi}},
	{"fmm-none", PipelineOptions{Backend: BackendFMM, Tol: 1e-6, Precond: PrecondNone,
		FMM: &FastCapOptions{Theta: 0.35}}},
	{"fmm-block", PipelineOptions{Backend: BackendFMM, Tol: 1e-6, Precond: PrecondBlockJacobi,
		FMM: &FastCapOptions{Theta: 0.35}}},
	{"pfft-none", PipelineOptions{Backend: BackendPFFT, Tol: 1e-6, Precond: PrecondNone,
		PFFT: &PFFTOptions{NearRadius: 8}}},
	{"pfft-block", PipelineOptions{Backend: BackendPFFT, Tol: 1e-6, Precond: PrecondBlockJacobi,
		PFFT: &PFFTOptions{NearRadius: 8}}},
	{"auto", PipelineOptions{Backend: BackendAuto, Tol: 1e-6}},
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

// loadGoldenStructure reads a corpus geometry exactly the way the
// service boundary would: through the geomio text format.
func loadGoldenStructure(t *testing.T, name string) *Structure {
	t.Helper()
	f, err := os.Open(goldenPath(name, ".geo"))
	if err != nil {
		t.Fatalf("golden geometry missing (run go test -run TestGoldenCorpus -update .): %v", err)
	}
	defer f.Close()
	st, err := ReadStructure(f)
	if err != nil {
		t.Fatalf("%s.geo: %v", name, err)
	}
	return st
}

// regenerateGolden writes the .geo from the case builder and the .json
// from a dense-direct solve of the re-parsed geometry (so the stored
// matrix corresponds bit-for-bit to the geometry as tests will read it,
// not to the pre-roundtrip builder output).
func regenerateGolden(t *testing.T, gc goldenCase) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(goldenPath(gc.name, ".geo"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteStructure(f, gc.build(), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st := loadGoldenStructure(t, gc.name)
	res, err := ExtractPipeline(st, gc.edge, PipelineOptions{Backend: BackendDense, Direct: true})
	if err != nil {
		t.Fatalf("%s: dense reference: %v", gc.name, err)
	}
	names := make([]string, len(st.Conductors))
	rows := make([][]float64, res.C.Rows)
	for i := range names {
		names[i] = st.Conductors[i].Name
	}
	for i := range rows {
		rows[i] = res.C.Row(i)
	}
	buf, err := json.MarshalIndent(goldenFile{
		Name: gc.name, EdgeM: gc.edge, RelTol: gc.relTol,
		Conductors: names, CFarads: rows,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(gc.name, ".json"), append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: regenerated (%d panels, %d conductors)", gc.name, res.NumPanels, len(names))
}

// TestGoldenCorpus is the golden-corpus regression harness: every
// backend/preconditioner combination must reproduce each stored
// reference capacitance matrix to its per-case tolerance. It pins the
// whole stack — geomio parsing, panelization, operator assembly,
// preconditioning, Krylov solves, the capacitance reduction — so
// service-level refactors cannot silently drift the physics. Regenerate
// deliberately with -update.
func TestGoldenCorpus(t *testing.T) {
	cases := goldenCases
	if testing.Short() {
		cases = cases[:3]
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			if *updateGolden {
				regenerateGolden(t, gc)
			}
			data, err := os.ReadFile(goldenPath(gc.name, ".json"))
			if err != nil {
				t.Fatalf("golden matrix missing (run go test -run TestGoldenCorpus -update .): %v", err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("%s.json: %v", gc.name, err)
			}
			if want.EdgeM != gc.edge {
				t.Fatalf("stored edge %g != case edge %g: regenerate with -update", want.EdgeM, gc.edge)
			}
			if want.RelTol != gc.relTol {
				t.Fatalf("stored rel_tol %g != case rel_tol %g: regenerate with -update", want.RelTol, gc.relTol)
			}
			st := loadGoldenStructure(t, gc.name)
			if len(st.Conductors) != len(want.Conductors) {
				t.Fatalf("geometry has %d conductors, golden %d", len(st.Conductors), len(want.Conductors))
			}
			ref := NewMatrix(len(want.CFarads), len(want.CFarads))
			for i, row := range want.CFarads {
				for j, v := range row {
					ref.Set(i, j, v)
				}
			}

			for _, be := range goldenBackends {
				be := be
				t.Run(be.name, func(t *testing.T) {
					res, err := ExtractPipeline(st, gc.edge, be.opt)
					if err != nil {
						t.Fatalf("%s/%s: %v", gc.name, be.name, err)
					}
					if res.C.Rows != ref.Rows {
						t.Fatalf("C is %dx%d, golden %dx%d", res.C.Rows, res.C.Cols, ref.Rows, ref.Cols)
					}
					if e := CapError(res.C, ref); e > want.RelTol {
						t.Errorf("%s/%s deviates from golden by %.3g (tol %g)",
							gc.name, be.name, e, want.RelTol)
					}
					if !be.opt.Direct && res.Iterations == 0 {
						t.Errorf("%s/%s: no Krylov iterations reported", gc.name, be.name)
					}
					if warnings := CheckMaxwell(res.C, 1e-6); len(warnings) > 0 {
						t.Errorf("%s/%s Maxwell violations: %v", gc.name, be.name, warnings)
					}
				})
			}
		})
	}
}

// TestGoldenCorpusComplete keeps the corpus and the case table in sync:
// every case has both files on disk and no stray files shadow deleted
// cases.
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	known := map[string]bool{}
	for _, gc := range goldenCases {
		known[gc.name] = true
		for _, ext := range []string{".geo", ".json"} {
			if _, err := os.Stat(goldenPath(gc.name, ext)); err != nil {
				t.Errorf("case %s missing %s: %v", gc.name, ext, err)
			}
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		base := e.Name()
		ext := filepath.Ext(base)
		if !known[base[:len(base)-len(ext)]] {
			t.Errorf("stray corpus file %s (no matching case)", e.Name())
		}
	}
}
