// Package assembly computes the entries of the template interaction matrix
// P~ (paper Eq. 5) and assembles them into the condensed system matrix P
// (paper Figure 3 / Algorithm 1). It contains the template-pair Galerkin
// integration engine implementing the dispatch of paper Section 4: closed
// forms for the non-varying directions, Gaussian quadrature for directions
// with 1-D shape variation (split at shape kinks), and distance-based
// dimension reduction.
package assembly

import (
	"math"
	"sync"

	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/quad"
	"parbem/internal/tabulate"
)

// Integrator evaluates template-pair Galerkin integrals under a kernel
// configuration. It is stateless apart from the configuration and the
// optional (concurrency-safe) acceleration structures, and safe for
// concurrent use.
type Integrator struct {
	Cfg *kernel.Config

	// Tab, when non-nil, serves in-domain rectangle collocation
	// potentials from the tabulated kernel (paper Section 4.2.1)
	// instead of the closed form; out-of-domain queries fall back. It
	// changes integral values within the table's interpolation error,
	// so it is opt-in (solver.Options.Tables / the batch engine).
	Tab *tabulate.Collocation

	// Pairs, when non-nil, memoizes whole template-pair integrals by
	// relative geometry (see PairCache). Cached values are bitwise
	// reproductions of the uncached path.
	Pairs *PairCache

	// fpOnce memoizes the configuration fingerprint folded into pair
	// cache keys (Cfg and Tab are immutable for the Integrator's
	// lifetime). Guarded lazily so struct-literal construction keeps
	// working; the Integrator must not be copied after first use.
	fpOnce sync.Once
	fp     uint64
	fpOK   bool
}

// cacheFP returns the memoized configuration fingerprint.
func (in *Integrator) cacheFP() (uint64, bool) {
	in.fpOnce.Do(func() { in.fp, in.fpOK = in.cacheFingerprint() })
	return in.fp, in.fpOK
}

// NewIntegrator returns an integrator with the default configuration.
func NewIntegrator() *Integrator { return &Integrator{Cfg: kernel.DefaultConfig()} }

// maxNodes bounds the per-direction quadrature nodes: up to 3 kink-split
// segments of up to 32 points.
const maxNodes = 96

// nodeBuf is a stack-allocated quadrature node/weight set.
type nodeBuf struct {
	x, w [maxNodes]float64
	n    int
}

// fill populates the buffer with Gauss nodes over iv, split at the shape's
// breakpoints, with the weights pre-multiplied by the shape values.
func (nb *nodeBuf) fill(sh basis.Shape, iv geom.Interval, order int) {
	if order > 32 {
		order = 32
	}
	var brk [4]float64
	nseg := 0
	brk[nseg] = iv.Lo
	nseg++
	if bp, ok := sh.(basis.Breakpointer); ok {
		if t, has := bp.Breakpoint(); has {
			u := iv.Lo + t*iv.Len()
			if u > brk[nseg-1]+1e-12*iv.Len() && u < iv.Hi-1e-12*iv.Len() {
				brk[nseg] = u
				nseg++
			}
		}
	}
	brk[nseg] = iv.Hi
	nseg++
	cnt := 0
	for s := 0; s+1 < nseg; s++ {
		quad.FillMapped(order, brk[s], brk[s+1], nb.x[cnt:], nb.w[cnt:])
		cnt += order
	}
	nb.n = cnt
	inv := 1 / iv.Len()
	for i := 0; i < cnt; i++ {
		nb.w[i] *= sh.Eval((nb.x[i] - iv.Lo) * inv)
	}
}

// fillFlat populates plain Gauss nodes over iv (weight only).
func (nb *nodeBuf) fillFlat(iv geom.Interval, order int) {
	if order > 32 {
		order = 32
	}
	quad.FillMapped(order, iv.Lo, iv.Hi, nb.x[:], nb.w[:])
	nb.n = order
}

// TemplatePair computes the unscaled Galerkin integral (paper Eq. 5)
//
//	P~_ij = int int T_i(r) T_j(r') / |r - r'| ds' ds
//
// (the 1/(4*pi*eps) prefactor is applied once at the system level).
func (in *Integrator) TemplatePair(ti, tj *basis.Template) float64 {
	cfg := in.Cfg
	d := ti.Support.Dist(tj.Support)
	diam := 0.5 * (ti.Support.Diameter() + tj.Support.Diameter())

	if !cfg.DisableApprox && d > cfg.FarFactor*diam {
		// Far field: both templates collapse to point charges carrying
		// their zeroth moments, placed at their charge centroids
		// (support centers are wrong for asymmetric arch shapes).
		// Far pairs never consult the pair cache: the point form is
		// cheaper than the lookup.
		return ti.Moment() * tj.Moment() / ti.Centroid().Dist(tj.Centroid())
	}

	if in.Pairs != nil {
		if fp, okCfg := in.cacheFP(); okCfg {
			if k, ok := keyOf(fp, ti, tj); ok {
				sh := in.Pairs.shardOf(&k)
				if v, hit := sh.get(k); hit {
					return v
				}
				v := in.templatePairNear(ti, tj, d, diam)
				sh.put(k, v)
				return v
			}
		}
	}
	return in.templatePairNear(ti, tj, d, diam)
}

// templatePairNear evaluates a non-far pair (the cacheable work).
func (in *Integrator) templatePairNear(ti, tj *basis.Template, d, diam float64) float64 {
	cfg := in.Cfg

	if ti.IsFlat() && tj.IsFlat() {
		if in.Tab != nil && !cfg.DisableApprox && d > cfg.MidFactor*diam {
			// The tabulated counterpart of RectGalerkin's intermediate
			// branch: collocate the target at its center against the
			// tabulated source potential.
			if v, ok := in.Tab.EvalRect(tj.Support, ti.Support.Center()); ok {
				return ti.Amplitude * tj.Amplitude * ti.Support.Area() * v
			}
		}
		return ti.Amplitude * tj.Amplitude * kernel.RectGalerkin(cfg, ti.Support, tj.Support)
	}

	if !cfg.DisableApprox && d > cfg.MidFactor*diam {
		// Intermediate: collocate the target at its charge centroid.
		return ti.Moment() * in.potentialAt(tj, ti.Centroid())
	}

	if ti.Support.ParallelTo(tj.Support) {
		switch {
		case tj.IsFlat():
			return in.stripPair(ti, tj)
		case ti.IsFlat():
			return in.stripPair(tj, ti)
		default:
			if ti.Dir == tj.Dir {
				return in.pairSameAxis(ti, tj)
			}
			return in.pairCrossAxis(ti, tj)
		}
	}
	return in.genericPair(ti, tj)
}

// order picks the per-dimension Gauss order, elevated for close pairs where
// the (integrable) kernel singularity slows quadrature convergence.
func (in *Integrator) order(ti, tj *basis.Template) int {
	q := in.Cfg.QuadOrder
	d := ti.Support.Dist(tj.Support)
	diam := 0.5 * (ti.Support.Diameter() + tj.Support.Diameter())
	switch {
	case d < 0.05*diam:
		q *= 4
	case d < diam:
		q *= 2
	}
	if q > 32 {
		q = 32
	}
	return q
}

// stripPair integrates a shaped template against a flat template in a
// parallel plane: 1-D shape-weighted quadrature along the varying
// direction, closed-form 3-D strip integral for the rest (paper Eq. 7).
func (in *Integrator) stripPair(shaped, flat *basis.Template) float64 {
	ops := in.Cfg.Ops
	Z := shaped.Support.Offset - flat.Support.Offset
	q := in.order(shaped, flat)
	var vary, tv, sv, su geom.Interval
	if shaped.Dir == basis.VaryU {
		vary, tv = shaped.Support.U, shaped.Support.V
		sv, su = flat.Support.V, flat.Support.U
	} else {
		vary, tv = shaped.Support.V, shaped.Support.U
		sv, su = flat.Support.U, flat.Support.V
	}
	var nb nodeBuf
	nb.fill(shaped.Shape, vary, q)
	var sum float64
	for i := 0; i < nb.n; i++ {
		sum += nb.w[i] *
			kernel.GalerkinStrip(ops, tv.Lo, tv.Hi, sv.Lo, sv.Hi, su.Lo, su.Hi, nb.x[i], Z)
	}
	return shaped.Amplitude * flat.Amplitude * sum
}

// pairSameAxis integrates two shaped templates in parallel planes whose
// shapes vary along the same world axis: tensor quadrature over the two
// varying coordinates, closed-form Galerkin pairing of the flat direction.
// Mismatched Gauss orders (q, q+1) guarantee the quadrature nodes never
// collide on the (integrably log-singular) diagonal X = 0 for coincident
// supports.
func (in *Integrator) pairSameAxis(ti, tj *basis.Template) float64 {
	ops := in.Cfg.Ops
	Z := ti.Support.Offset - tj.Support.Offset
	q := in.order(ti, tj)
	var vi, vj, fi, fj geom.Interval
	if ti.Dir == basis.VaryU {
		vi, fi = ti.Support.U, ti.Support.V
		vj, fj = tj.Support.U, tj.Support.V
	} else {
		vi, fi = ti.Support.V, ti.Support.U
		vj, fj = tj.Support.V, tj.Support.U
	}
	var na, nbuf nodeBuf
	na.fill(ti.Shape, vi, q)
	qj := q + 1
	if qj > 32 {
		qj = 31 // keep the orders distinct
	}
	nbuf.fill(tj.Shape, vj, qj)
	tiny := 1e-12 * (vi.Len() + vj.Len())
	var sum float64
	for a := 0; a < na.n; a++ {
		wa := na.w[a]
		if wa == 0 {
			continue
		}
		ua := na.x[a]
		var inner float64
		for b := 0; b < nbuf.n; b++ {
			X := ua - nbuf.x[b]
			if math.Abs(X) < tiny {
				X = tiny
			}
			inner += nbuf.w[b] * kernel.GalerkinPair1D(ops, fi.Lo, fi.Hi, fj.Lo, fj.Hi, X, Z)
		}
		sum += wa * inner
	}
	return ti.Amplitude * tj.Amplitude * sum
}

// pairCrossAxis integrates two shaped templates in parallel planes whose
// shapes vary along different in-plane axes (e.g. an arch along the lower
// wire against an arch along the upper wire at a crossing): tensor
// quadrature over the two varying coordinates, and for the two flat
// directions the closed-form mixed second antiderivative F2 differenced at
// the four interval-end combinations.
func (in *Integrator) pairCrossAxis(ti, tj *basis.Template) float64 {
	ops := in.Cfg.Ops
	Z := ti.Support.Offset - tj.Support.Offset
	q := in.order(ti, tj)
	// Varying interval of ti and its flat complement; same for tj. The
	// two flat directions are paired: ti's flat axis is tj's varying
	// axis and vice versa.
	var vi, fi, vj, fj geom.Interval
	if ti.Dir == basis.VaryU {
		vi, fi = ti.Support.U, ti.Support.V
	} else {
		vi, fi = ti.Support.V, ti.Support.U
	}
	if tj.Dir == basis.VaryU {
		vj, fj = tj.Support.U, tj.Support.V
	} else {
		vj, fj = tj.Support.V, tj.Support.U
	}
	var na, nb nodeBuf
	na.fill(ti.Shape, vi, q)
	nb.fill(tj.Shape, vj, q)
	tab := in.Tab
	if in.Cfg.DisableApprox {
		tab = nil // full-accuracy mode: no tabulated kernels
	}
	var sum float64
	for a := 0; a < na.n; a++ {
		wa := na.w[a]
		if wa == 0 {
			continue
		}
		u := na.x[a] // ti's varying coordinate == tj's flat axis coordinate
		// The two flat directions integrate in closed form: a 2-D
		// rectangle integral of 1/r over [fj] x [fi] evaluated at the
		// in-plane point (u, vp) with plane separation Z — served from
		// the tabulated kernel when the normalized query is in domain.
		var inner float64
		for b := 0; b < nb.n; b++ {
			if tab != nil {
				if v, ok := tab.EvalCoords(fj.Lo, fj.Hi, fi.Lo, fi.Hi, u, nb.x[b], Z); ok {
					inner += nb.w[b] * v
					continue
				}
			}
			inner += nb.w[b] * kernel.RectPotential(ops,
				fj.Lo, fj.Hi, fi.Lo, fi.Hi, u, nb.x[b], Z)
		}
		sum += wa * inner
	}
	return ti.Amplitude * tj.Amplitude * sum
}

// genericPair is the robust fallback (perpendicular planes, or parallel
// shaped pairs varying along different axes): shape-weighted tensor
// quadrature over the target support, with the source potential evaluated
// in closed form (flat) or by 1-D quadrature over its varying direction.
func (in *Integrator) genericPair(ti, tj *basis.Template) float64 {
	q := in.order(ti, tj)
	sup := ti.Support
	var nu, nv nodeBuf
	switch ti.Dir {
	case basis.VaryU:
		nu.fill(ti.Shape, sup.U, q)
		nv.fillFlat(sup.V, q)
	case basis.VaryV:
		nu.fillFlat(sup.U, q)
		nv.fill(ti.Shape, sup.V, q)
	default:
		nu.fillFlat(sup.U, q)
		nv.fillFlat(sup.V, q)
	}
	var sum float64
	for a := 0; a < nu.n; a++ {
		wu := nu.w[a]
		if wu == 0 {
			continue
		}
		for b := 0; b < nv.n; b++ {
			sum += wu * nv.w[b] * in.potentialAt(tj, sup.Point(nu.x[a], nv.x[b]))
		}
	}
	return ti.Amplitude * sum
}

// potentialAt evaluates the single-layer potential of template tj at point
// p (including tj's amplitude, excluding 1/(4*pi*eps)).
func (in *Integrator) potentialAt(tj *basis.Template, p geom.Vec3) float64 {
	if tj.IsFlat() {
		if cfg := in.Cfg; in.Tab != nil && !cfg.DisableApprox &&
			tj.Support.DistToPoint(p) <= cfg.FarFactor*tj.Support.Diameter() {
			if v, ok := in.Tab.EvalRect(tj.Support, p); ok {
				return tj.Amplitude * v
			}
		}
		return tj.Amplitude * kernel.RectCollocation(in.Cfg, tj.Support, p)
	}
	ops := in.Cfg.Ops
	sup := tj.Support
	q := in.Cfg.QuadOrder * 2
	if q > 32 {
		q = 32
	}
	var vary, flat geom.Interval
	var pVary, pFlat float64
	if tj.Dir == basis.VaryU {
		vary, flat = sup.U, sup.V
		pVary = p.Component(sup.UAxis())
		pFlat = p.Component(sup.VAxis())
	} else {
		vary, flat = sup.V, sup.U
		pVary = p.Component(sup.VAxis())
		pFlat = p.Component(sup.UAxis())
	}
	pn := p.Component(sup.Normal) - sup.Offset
	var nb nodeBuf
	nb.fill(tj.Shape, vary, q)
	var sum float64
	for i := 0; i < nb.n; i++ {
		du := pVary - nb.x[i]
		d2 := du*du + pn*pn
		sum += nb.w[i] * kernel.SegPotential(ops, flat.Lo, flat.Hi, pFlat, d2)
	}
	return tj.Amplitude * sum
}
