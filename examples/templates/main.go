// Templates reproduces paper Figure 2: the induced charge profile on the
// target wire of the elementary crossing problem, its decomposition into a
// flat shape plus arch shapes, and the dependence of the fitted parameters
// a(h), b(h) on the wire separation h.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"parbem"
)

func main() {
	edge := flag.Float64("edge", 0.35e-6, "reference panel edge (m)")
	flag.Parse()

	sp := parbem.NewCrossingPair()
	sp.Length = 8e-6

	prof, err := parbem.CrossingProfile(sp, *edge)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := parbem.FitArch(prof, sp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("elementary crossing problem: w = %.2f um, h = %.2f um\n\n",
		sp.Width*1e6, sp.H*1e6)

	// ASCII rendering of the charge profile (magnitude).
	fmt.Println("induced charge density |rho(u)| along the target wire:")
	maxAbs := 0.0
	for _, r := range prof.Rho {
		if a := math.Abs(r); a > maxAbs {
			maxAbs = a
		}
	}
	step := len(prof.U) / 40
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(prof.U); i += step {
		bar := int(40 * math.Abs(prof.Rho[i]) / maxAbs)
		fmt.Printf("%8.2f um |%s\n", prof.U[i]*1e6, strings.Repeat("#", bar))
	}

	fmt.Printf("\nflat level a(h)      = %.4g C/m^2\n", fit.Flat)
	fmt.Printf("arch peak  b(h)      = %.4g C/m^2 at u = %.2f um\n", fit.Peak, fit.PeakPos*1e6)
	fmt.Printf("extension decay      = %.3f um (%.2f x h)\n", fit.Decay*1e6, fit.Decay/sp.H)

	// Parameter sweep over h.
	hs := []float64{0.25e-6, 0.5e-6, 1e-6, 2e-6}
	fits, err := parbem.SweepH(sp, hs, *edge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n   h (um)    a(h) C/m^2    b(h) C/m^2    b/a")
	for i, h := range hs {
		f := fits[i]
		fmt.Printf("%8.2f  %12.4g  %12.4g  %5.2f\n",
			h*1e6, f.Flat, f.Peak, f.Peak/f.Flat)
	}
	fmt.Println("\n(b(h) decays with separation: weaker induced charge for larger gaps,")
	fmt.Println(" the parameterization the instantiable template library instantiates.)")
}
