package pfft

import (
	"math"
	"testing"

	"parbem/internal/geom"
)

// crossingVariant builds the crossing pair at separation h with
// provenance, mirroring how internal/plan feeds the operator.
func crossingVariant(h, edge float64) ([]geom.Panel, []geom.BoxRef, *geom.Structure) {
	sp := geom.DefaultCrossingPair()
	sp.H = h
	st := sp.Build()
	panels, prov := st.PanelizeProv(edge)
	return panels, prov, st
}

// crossingClasses derives per-panel rigid-motion classes between two
// variants (one class per distinct box translation, -1 for reshaped
// boxes).
func crossingClasses(a, b *geom.Structure, prov []geom.BoxRef) []int32 {
	d := geom.Diff(a, b)
	if !d.Comparable {
		return nil
	}
	classOf := map[geom.Vec3]int32{}
	cls := make([]int32, len(prov))
	for i, pr := range prov {
		bd := d.Boxes[pr.Conductor][pr.Box]
		if bd.Change == geom.BoxChanged {
			cls[i] = -1
			continue
		}
		id, ok := classOf[bd.Delta]
		if !ok {
			id = int32(len(classOf))
			classOf[bd.Delta] = id
		}
		cls[i] = id
	}
	return cls
}

// TestOperatorReuseMatchesFresh pins the delta-aware pfft construction
// to a from-scratch build of the same variant: a substantial share of
// the exact precorrection entries must be copied, the kernel transform
// shared when the grids coincide, and the matvecs must agree to
// floating-point noise.
func TestOperatorReuseMatchesFresh(t *testing.T) {
	const edge = 0.4e-6
	pa, _, sta := crossingVariant(0.5e-6, edge)
	pb, prov, stb := crossingVariant(0.7e-6, edge)
	if len(pa) != len(pb) {
		t.Fatalf("variant panel counts differ: %d vs %d", len(pa), len(pb))
	}
	opt := Options{Workers: 1}

	prev := NewOperator(pa, opt)
	fresh := NewOperator(pb, opt)
	cls := crossingClasses(sta, stb, prov)
	if cls == nil {
		t.Fatal("variants not comparable")
	}
	reused := NewOperatorReuse(pb, opt, &Reuse{Prev: prev, Class: cls})

	copied, computed := reused.NearReuse()
	if copied == 0 {
		t.Fatal("reuse construction copied no exact entries")
	}
	t.Logf("near entries: %d copied, %d computed; kernel shared: %v",
		copied, computed, reused.KernelShared())
	// The crossing's x/y span dominates the bounding box, so a z-only
	// h change keeps the auto spacing and the padded dims: the kernel
	// transform must be shared.
	if !reused.KernelShared() {
		t.Error("kernel transform not shared across z-translated variants")
	}
	if c, _ := fresh.NearReuse(); c != 0 || fresh.KernelShared() {
		t.Error("fresh construction reports reuse")
	}

	n := len(pb)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(2*i + 1))
	}
	yf := make([]float64, n)
	yr := make([]float64, n)
	fresh.Apply(yf, x)
	reused.Apply(yr, x)
	var num, den float64
	for i := range yf {
		d := yf[i] - yr[i]
		num += d * d
		den += yf[i] * yf[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-12 {
		t.Errorf("reused matvec deviates from fresh by %g relative", rel)
	}
}

// TestOperatorReuseEpsMismatch verifies that reuse with a different
// dielectric degrades to a fresh near-field fill (copied exact values
// bake in the scale).
func TestOperatorReuseEpsMismatch(t *testing.T) {
	const edge = 0.5e-6
	pa, _, _ := crossingVariant(0.5e-6, edge)
	pb, prov, _ := crossingVariant(0.7e-6, edge)
	prev := NewOperator(pa, Options{Workers: 1})
	cls := make([]int32, len(prov))
	op := NewOperatorReuse(pb, Options{Workers: 1, Eps: 2 * prev.opt.Eps},
		&Reuse{Prev: prev, Class: cls})
	if c, _ := op.NearReuse(); c != 0 {
		t.Errorf("eps-mismatched reuse copied %d entries", c)
	}
}
