package op

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"parbem/internal/costmodel"
	"parbem/internal/fmm"
	"parbem/internal/linalg"
	"parbem/internal/pfft"
	"parbem/internal/sched"
)

// Backend selects a solve backend for the pipeline.
type Backend int

// Pipeline backends.
const (
	// BackendAuto picks dense, fmm or pfft via the cost model
	// (internal/costmodel.Select).
	BackendAuto Backend = iota
	// BackendDense assembles the full Galerkin matrix.
	BackendDense
	// BackendFMM uses the list-based multipole operator.
	BackendFMM
	// BackendPFFT uses the precorrected-FFT operator.
	BackendPFFT
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendDense:
		return "dense"
	case BackendFMM:
		return "fmm"
	case BackendPFFT:
		return "pfft"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// PrecondKind selects the pipeline preconditioner.
type PrecondKind int

// Preconditioner kinds.
const (
	// PrecondAuto uses block-Jacobi when the operator exposes near
	// blocks, point-Jacobi otherwise.
	PrecondAuto PrecondKind = iota
	// PrecondNone iterates unpreconditioned.
	PrecondNone
	// PrecondJacobi scales by the exact matrix diagonal.
	PrecondJacobi
	// PrecondBlockJacobi solves the operator's factorized near blocks.
	PrecondBlockJacobi
)

// String implements fmt.Stringer.
func (p PrecondKind) String() string {
	switch p {
	case PrecondAuto:
		return "auto"
	case PrecondNone:
		return "none"
	case PrecondJacobi:
		return "jacobi"
	case PrecondBlockJacobi:
		return "block-jacobi"
	}
	return fmt.Sprintf("PrecondKind(%d)", int(p))
}

// Options configures a Pipeline.
type Options struct {
	// Backend selects the operator (default BackendAuto).
	Backend Backend
	// Precond selects the preconditioner (default PrecondAuto).
	Precond PrecondKind
	// Tol is the GMRES relative residual tolerance (0 = 1e-4).
	Tol float64
	// Restart is the GMRES restart length (0 = 60).
	Restart int
	// Direct forces the dense direct solve (equilibrated Cholesky with
	// LU fallback) instead of Krylov iteration; it requires the dense
	// backend (auto resolving to dense is fine).
	Direct bool
	// Precision selects the matvec arithmetic of accelerated backends
	// (default PrecisionAuto: the cost model enables the float32 mirror
	// when the problem is large enough and the tolerance allows
	// refinement to recover full fp64 accuracy). Dense and direct
	// solves always run fp64.
	Precision Precision
	// FMM overrides the multipole operator options (nil = defaults;
	// Eps/Cfg are filled from the Spec when zero).
	FMM *fmm.Options
	// PFFT overrides the precorrected-FFT operator options (likewise).
	PFFT *pfft.Options
}

// withDefaults normalizes zero fields.
func (o Options) withDefaults() Options {
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.Restart == 0 {
		o.Restart = 60
	}
	return o
}

// Interrupted reports a solve stopped at a context checkpoint (deadline
// or cancellation) rather than by convergence or failure. Iterations is
// the total Krylov work completed before the stop — the partial
// telemetry a deadline-aware service surfaces to the client. Unwrap
// exposes the context error, so errors.Is(err, context.DeadlineExceeded)
// distinguishes a deadline from a client cancellation.
type Interrupted struct {
	// Iterations completed across all RHS columns before the stop.
	Iterations int
	// Residual is the worst (largest) relative residual across the RHS
	// columns at the stop — the convergence state of the last iterate
	// (1 = no progress beyond the initial guess, 0 = unknown).
	Residual float64
	// Partial is the best-effort charge solution assembled from each
	// column's last GMRES iterate (nil when the stop preceded any
	// iterate). Converged columns carry their solution; interrupted
	// columns whatever their last restart cycle produced.
	Partial *linalg.Dense
	// PartialC is the capacitance matrix reduced from Partial — the
	// deadline-aware partial result a service surfaces alongside the
	// error telemetry. Best-effort only: its accuracy is bounded by
	// Residual, not by the requested tolerance.
	PartialC *linalg.Dense
	// Err is the context error (context.DeadlineExceeded or Canceled).
	Err error
}

// Error implements the error interface.
func (e *Interrupted) Error() string {
	return fmt.Sprintf("op: solve interrupted after %d iterations: %v", e.Iterations, e.Err)
}

// Unwrap exposes the underlying context error.
func (e *Interrupted) Unwrap() error { return e.Err }

// Result is a completed extraction through the pipeline.
type Result struct {
	C          *linalg.Dense // n x n capacitance matrix (F)
	Rho        *linalg.Dense // N x n panel charge densities per excitation
	NumPanels  int
	Iterations int // total Krylov iterations (0 for direct)
	SetupTime  time.Duration
	SolveTime  time.Duration
	// Backend is the resolved operator backend (never BackendAuto).
	Backend Backend
	// Precision is the resolved matvec arithmetic (never PrecisionAuto).
	Precision Precision
}

// Pipeline is the unified solve path: one operator, one preconditioner,
// pooled GMRES workspaces, and the shared RHS-construction and
// capacitance-reduction steps. Construct with New (backend built from a
// Spec, with automatic selection), NewWithOperator (caller-supplied
// operator) or NewFromDense (already-assembled system matrix). A
// Pipeline may be reused for many solves; Solve/Extract are safe to call
// concurrently.
type Pipeline struct {
	spec    Spec
	opt     Options
	a       Operator
	pre     Preconditioner
	dense   *linalg.Dense // retained when the backend assembled densely
	backend Backend
	setup   time.Duration
	ws      sync.Pool
	// factors is the optional reused-block lookup of NewPrebuilt.
	factors func(idx []int32) *linalg.Cholesky
	// mixedA is non-nil when the resolved precision is mixed: the
	// operator with its float32 mirror enabled (see precision.go).
	mixedA MixedApplier
}

// New builds the pipeline for a panelized problem, constructing the
// operator selected by opt.Backend (BackendAuto delegates to the cost
// model) and the preconditioner selected by opt.Precond.
func New(spec Spec, opt Options) (*Pipeline, error) {
	spec = spec.withDefaults()
	opt = opt.withDefaults()
	if spec.N() == 0 {
		return nil, errors.New("op: empty panelization")
	}
	backend := opt.Backend
	if backend == BackendAuto {
		backend = selectBackend(&spec, opt)
	}
	t0 := time.Now()
	p := &Pipeline{spec: spec, opt: opt, backend: backend}
	switch backend {
	case BackendDense:
		p.dense = spec.AssembleDense()
		p.a = NewDenseOperator(p.dense, spec.Exec)
	case BackendFMM:
		p.a = fmm.NewOperator(spec.Panels, FMMOptions(spec, opt))
	case BackendPFFT:
		p.a = pfft.NewOperator(spec.Panels, PFFTOptions(spec, opt))
	default:
		return nil, fmt.Errorf("op: unknown backend %v", opt.Backend)
	}
	if opt.Direct && p.dense == nil {
		return nil, fmt.Errorf("op: direct solve requires the dense backend, got %v", backend)
	}
	if err := p.buildPrecond(); err != nil {
		return nil, err
	}
	p.resolvePrecision()
	p.setup = time.Since(t0)
	return p, nil
}

// NewWithOperator wraps a caller-constructed operator (any Matvec) in
// the pipeline; spec supplies the RHS data, the executor and the exact
// diagonal for point-Jacobi preconditioning.
func NewWithOperator(spec Spec, a Operator, opt Options) (*Pipeline, error) {
	spec = spec.withDefaults()
	opt = opt.withDefaults()
	if a.Dim() != spec.N() {
		return nil, errors.New("op: operator dimension mismatch")
	}
	if opt.Direct {
		return nil, errors.New("op: direct solve needs a dense backend, not a wrapped operator")
	}
	t0 := time.Now()
	p := &Pipeline{spec: spec, opt: opt, a: a, backend: backendOf(a)}
	if err := p.buildPrecond(); err != nil {
		return nil, err
	}
	p.resolvePrecision()
	p.setup = time.Since(t0)
	return p, nil
}

// NewFromDense wraps an already-assembled system matrix (the
// instantiable-basis solver's path: the matrix is tiny and solved
// directly unless opt says otherwise). The spec-free pipeline takes its
// dimensions from the matrix and its diagonal for preconditioning.
func NewFromDense(m *linalg.Dense, opt Options) (*Pipeline, error) {
	opt = opt.withDefaults()
	if m.Rows != m.Cols {
		return nil, errors.New("op: system matrix not square")
	}
	p := &Pipeline{
		opt:     opt,
		dense:   m,
		a:       NewDenseOperator(m, nil),
		backend: BackendDense,
	}
	if err := p.buildPrecond(); err != nil {
		return nil, err
	}
	return p, nil
}

// FMMOptions resolves the multipole operator options New would use for
// a spec: the caller override with Eps and Cfg filled from the spec.
// Exported so stage builders (internal/plan) construct operators
// exactly as the pipeline would.
func FMMOptions(spec Spec, opt Options) fmm.Options {
	spec = spec.withDefaults()
	fo := fmm.Options{}
	if opt.FMM != nil {
		fo = *opt.FMM
	}
	if fo.Eps == 0 {
		fo.Eps = spec.Eps
	}
	if fo.Cfg == nil {
		fo.Cfg = spec.Cfg
	}
	if fo.Exec == nil && fo.Pool == nil && fo.Workers == 0 {
		// No explicit parallelism configured: the operator runs on the
		// spec's executor (a service's budgeted shared pool, a plan's
		// stage executor), like the dense assembly and reduction do.
		fo.Exec = spec.Exec
	}
	return fo
}

// PFFTOptions resolves the precorrected-FFT operator options New would
// use for a spec (see FMMOptions).
func PFFTOptions(spec Spec, opt Options) pfft.Options {
	spec = spec.withDefaults()
	po := pfft.Options{}
	if opt.PFFT != nil {
		po = *opt.PFFT
	}
	if po.Eps == 0 {
		po.Eps = spec.Eps
	}
	if po.Cfg == nil {
		po.Cfg = spec.Cfg
	}
	if po.Exec == nil && po.Pool == nil && po.Workers == 0 {
		// See FMMOptions: inherit the spec's executor when the caller
		// configured no operator-level parallelism.
		po.Exec = spec.Exec
	}
	return po
}

// ResolveBackend reports the backend New would construct for spec/opt
// (BackendAuto resolved through the cost model).
func ResolveBackend(spec Spec, opt Options) Backend {
	spec = spec.withDefaults()
	opt = opt.withDefaults()
	if opt.Backend == BackendAuto {
		return selectBackend(&spec, opt)
	}
	return opt.Backend
}

// Prebuilt supplies stage artifacts constructed by the caller (the
// staged extraction plans in internal/plan) to NewPrebuilt: the solve
// operator, the assembled system matrix when the operator wraps one,
// and an optional lookup of previously factorized near blocks for the
// block-Jacobi preconditioner.
type Prebuilt struct {
	// Operator is the solve backend (required unless Dense is set, in
	// which case a DenseOperator is wrapped around it).
	Operator Operator
	// Dense is the assembled system matrix backing a dense operator;
	// required for Options.Direct.
	Dense *linalg.Dense
	// Factors optionally returns a previously computed Cholesky factor
	// for the near block over idx (nil result = factorize fresh). A
	// factor is only valid if the block's values are unchanged — the
	// preconditioner is an approximate inverse, so a stale factor
	// degrades convergence but never correctness.
	Factors func(idx []int32) *linalg.Cholesky
}

// NewPrebuilt wraps caller-built stage artifacts in a pipeline,
// skipping operator construction entirely. The spec supplies RHS data,
// the executor and the point-Jacobi diagonal, exactly as in New.
func NewPrebuilt(spec Spec, opt Options, pb Prebuilt) (*Pipeline, error) {
	spec = spec.withDefaults()
	opt = opt.withDefaults()
	a := pb.Operator
	if a == nil {
		if pb.Dense == nil {
			return nil, errors.New("op: NewPrebuilt needs an operator or an assembled matrix")
		}
		a = NewDenseOperator(pb.Dense, spec.Exec)
	}
	if a.Dim() != spec.N() {
		return nil, errors.New("op: prebuilt operator dimension mismatch")
	}
	t0 := time.Now()
	p := &Pipeline{
		spec: spec, opt: opt, a: a, dense: pb.Dense,
		backend: backendOf(a), factors: pb.Factors,
	}
	if opt.Direct && p.dense == nil {
		return nil, errors.New("op: direct solve requires an assembled dense matrix")
	}
	if err := p.buildPrecond(); err != nil {
		return nil, err
	}
	p.resolvePrecision()
	p.setup = time.Since(t0)
	return p, nil
}

// selectBackend runs the cost model over the spec's panel statistics.
func selectBackend(spec *Spec, opt Options) Backend {
	span, med := spec.stats()
	switch costmodel.Select(costmodel.Workload{
		Panels:     spec.N(),
		Span:       span,
		MedianEdge: med,
		Tol:        opt.Tol,
	}) {
	case costmodel.ChooseDense:
		return BackendDense
	case costmodel.ChoosePFFT:
		return BackendPFFT
	}
	return BackendFMM
}

// backendOf classifies a caller-supplied operator for Result reporting.
func backendOf(a Operator) Backend {
	switch a.(type) {
	case *fmm.Operator:
		return BackendFMM
	case *pfft.Operator:
		return BackendPFFT
	}
	return BackendDense
}

// buildPrecond constructs the configured preconditioner. For the direct
// path no preconditioner is needed.
func (p *Pipeline) buildPrecond() error {
	if p.opt.Direct {
		return nil
	}
	kind := p.opt.Precond
	nb, hasBlocks := p.a.(NearBlocker)
	if kind == PrecondAuto {
		if hasBlocks {
			kind = PrecondBlockJacobi
		} else {
			kind = PrecondJacobi
		}
	}
	switch kind {
	case PrecondNone:
		return nil
	case PrecondJacobi:
		p.pre = NewJacobi(p.diagonal())
		return nil
	case PrecondBlockJacobi:
		if !hasBlocks {
			return fmt.Errorf("op: %v operator exposes no near blocks for block-Jacobi", p.backend)
		}
		idx, blocks := nb.NearBlocks()
		bj, err := NewBlockJacobiWith(p.a.Dim(), idx, blocks, p.diagonal(), p.factors)
		if err != nil {
			return err
		}
		p.pre = bj
		return nil
	}
	return fmt.Errorf("op: unknown preconditioner %v", p.opt.Precond)
}

// diagonal returns the exact matrix diagonal from the cheapest source
// available: the assembled matrix, else the spec's entry integrals.
func (p *Pipeline) diagonal() []float64 {
	if p.dense != nil {
		d := make([]float64, p.dense.Rows)
		for i := range d {
			d[i] = p.dense.At(i, i)
		}
		return d
	}
	return p.spec.diagonal()
}

// Operator exposes the pipeline's operator (diagnostics, tests).
func (p *Pipeline) Operator() Operator { return p.a }

// Backend reports the resolved backend.
func (p *Pipeline) Backend() Backend { return p.backend }

// Preconditioner exposes the built preconditioner (nil = none).
func (p *Pipeline) Preconditioner() Preconditioner { return p.pre }

// SetupTime reports the operator + preconditioner construction time.
func (p *Pipeline) SetupTime() time.Duration { return p.setup }

// SetTol updates the Krylov tolerance for subsequent solves (0 resets
// the 1e-4 default). Tolerance is a solve-only parameter: no stage
// artifact depends on it, so plans reuse the whole pipeline across
// tolerance changes. Not safe to call concurrently with active solves.
func (p *Pipeline) SetTol(tol float64) {
	if tol == 0 {
		tol = 1e-4
	}
	p.opt.Tol = tol
}

// Extract builds the unit-potential RHS from the spec, solves, and
// reduces to the capacitance matrix.
func (p *Pipeline) Extract() (*Result, error) {
	return p.ExtractWarm(nil)
}

// ExtractWarm is Extract with warm-started Krylov solves: column j of
// x0 seeds the initial guess for conductor j (typically the previous
// geometry variant's charge solution in a sweep). A nil or
// shape-mismatched x0 falls back to zero starts; the direct path
// ignores it. The warm start changes iteration counts, never the
// converged solution (which is determined by the tolerance).
func (p *Pipeline) ExtractWarm(x0 *linalg.Dense) (*Result, error) {
	return p.ExtractWarmCtx(context.Background(), x0)
}

// ExtractWarmCtx is ExtractWarm bounded by a context: the GMRES
// iteration loop observes ctx at every checkpoint, so a deadline or
// cancellation stops the solve early with an *Interrupted error carrying
// the iterations completed. A nil ctx means context.Background().
func (p *Pipeline) ExtractWarmCtx(ctx context.Context, x0 *linalg.Dense) (*Result, error) {
	if p.spec.NumConductors == 0 {
		return nil, errors.New("op: pipeline has no spec (use ExtractRHS)")
	}
	return p.extractRHS(ctx, p.spec.RHS(), x0)
}

// ExtractRHS solves P Rho = Phi for a caller-built right-hand-side
// matrix and reduces C = Phi^T Rho (symmetrized).
func (p *Pipeline) ExtractRHS(phi *linalg.Dense) (*Result, error) {
	return p.extractRHS(context.Background(), phi, nil)
}

func (p *Pipeline) extractRHS(ctx context.Context, phi, x0 *linalg.Dense) (*Result, error) {
	t0 := time.Now()
	rho, iters, err := p.SolveRHSWarmCtx(ctx, phi, x0)
	if err != nil {
		// A context interruption still reduces whatever iterate the
		// solve reached into a best-effort capacitance estimate, so a
		// deadline-aware caller can return a partial result instead of
		// nothing.
		var oi *Interrupted
		if errors.As(err, &oi) && oi.Partial != nil {
			oi.PartialC = Reduce(p.spec.exec(), phi, oi.Partial)
		}
		return nil, err
	}
	c := Reduce(p.spec.exec(), phi, rho)
	return &Result{
		C:          c,
		Rho:        rho,
		NumPanels:  p.a.Dim(),
		Iterations: iters,
		SetupTime:  p.setup,
		SolveTime:  time.Since(t0),
		Backend:    p.backend,
		Precision:  p.Precision(),
	}, nil
}

// SolveRHS solves P Rho = Phi without the reduction step. Direct
// pipelines factorize once per call; iterative pipelines run one
// preconditioned GMRES per column concurrently, each on a pooled
// workspace (allocation-free once the pool is warm).
func (p *Pipeline) SolveRHS(phi *linalg.Dense) (*linalg.Dense, int, error) {
	return p.SolveRHSWarm(phi, nil)
}

// SolveRHSWarm is SolveRHS with per-column initial guesses from x0
// (see ExtractWarm).
func (p *Pipeline) SolveRHSWarm(phi, x0 *linalg.Dense) (*linalg.Dense, int, error) {
	return p.SolveRHSWarmCtx(context.Background(), phi, x0)
}

// SolveRHSWarmCtx is SolveRHSWarm bounded by a context (nil = no
// bound): every column's GMRES observes ctx per iteration, and a done
// context returns an *Interrupted error with the partial iteration
// count. The direct path checks ctx once before factorizing (a dense
// factorization has no interior checkpoints).
func (p *Pipeline) SolveRHSWarmCtx(ctx context.Context, phi, x0 *linalg.Dense) (*linalg.Dense, int, error) {
	n := p.a.Dim()
	if phi.Rows != n {
		return nil, 0, errors.New("op: RHS dimension mismatch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, &Interrupted{Err: err}
	}
	if p.opt.Direct {
		rho, err := SolveSPD(p.dense, phi)
		if err != nil {
			return nil, 0, err
		}
		return rho, 0, nil
	}
	nc := phi.Cols
	if x0 != nil && (x0.Rows != n || x0.Cols != nc) {
		x0 = nil
	}
	rho := linalg.NewDense(n, nc)
	iters := make([]int, nc)
	resids := make([]float64, nc)
	errs := make([]error, nc)
	var pre func(dst, r []float64)
	if p.pre != nil {
		pre = p.pre.Apply
	}
	var wg sync.WaitGroup
	for j := 0; j < nc; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ws := p.acquireWS(n)
			defer p.ws.Put(ws)
			b := make([]float64, n)
			x := make([]float64, n)
			for i := 0; i < n; i++ {
				b[i] = phi.At(i, j)
			}
			if x0 != nil {
				for i := 0; i < n; i++ {
					x[i] = x0.At(i, j)
				}
			}
			var res linalg.GMRESResult
			var err error
			if p.mixedA != nil {
				res, err = p.solveRefined(ctx, ws, x, b, pre)
			} else {
				res, err = linalg.GMRESWith(ws, p.a, x, b, linalg.GMRESOptions{
					Tol:     p.opt.Tol,
					Restart: p.opt.Restart,
					Precond: pre,
					Ctx:     ctx,
				})
			}
			// Record partial iteration counts, residuals and the last
			// iterate even on failure: an interrupted solve reports the
			// work it completed, and the partial charges feed the
			// best-effort capacitance estimate of a deadline-aware
			// early exit. Columns write disjoint entries, so the shared
			// matrix needs no locking.
			iters[j] = res.Iterations
			resids[j] = res.Residual
			for i := 0; i < n; i++ {
				rho.Set(i, j, x[i])
			}
			if err != nil {
				errs[j] = fmt.Errorf("op: GMRES failed on column %d: %w", j, err)
				return
			}
			if !res.Converged {
				errs[j] = fmt.Errorf("op: GMRES stalled on column %d (res %g)", j, res.Residual)
			}
		}(j)
	}
	wg.Wait()
	total := 0
	for j := 0; j < nc; j++ {
		total += iters[j]
	}
	for j := 0; j < nc; j++ {
		if errs[j] != nil {
			if cerr := ctx.Err(); cerr != nil && errors.Is(errs[j], cerr) {
				worst := 0.0
				for _, r := range resids {
					if r > worst {
						worst = r
					}
				}
				return nil, total, &Interrupted{
					Iterations: total, Residual: worst, Partial: rho, Err: cerr,
				}
			}
			return nil, total, errs[j]
		}
	}
	return rho, total, nil
}

// acquireWS takes a GMRES workspace from the pool (grown as needed).
func (p *Pipeline) acquireWS(n int) *linalg.GMRESWorkspace {
	if ws, ok := p.ws.Get().(*linalg.GMRESWorkspace); ok {
		return ws
	}
	return linalg.NewGMRESWorkspace(n, p.opt.Restart)
}

// Reduce computes the capacitance matrix C = Phi^T Rho on the executor
// and enforces exact symmetry (P is symmetric, so C is up to roundoff).
func Reduce(ex sched.Executor, phi, rho *linalg.Dense) *linalg.Dense {
	n := phi.Cols
	c := linalg.NewDense(n, rho.Cols)
	linalg.ParMul(ex, c, phi.Transpose(), rho)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c
}

// SolveSPD solves P X = Phi by Cholesky with symmetric Jacobi
// equilibration: the system diagonal can span several orders of
// magnitude (face basis moments vs small arch templates in the
// instantiable solver), so P is first scaled to unit diagonal,
// S P S y = S Phi with S = diag(P_ii^-1/2). P is SPD in exact
// arithmetic, but quadrature error on nearly dependent basis functions
// can push a tiny eigenvalue below zero on large problems; an escalating
// uniform shift on the equilibrated matrix (starting at 1e-12, far below
// the integration accuracy) restores positive definiteness. LU remains
// the last-resort fallback. The input matrix is not modified.
func SolveSPD(p, phi *linalg.Dense) (*linalg.Dense, error) {
	nr := p.Rows
	if phi.Rows != nr {
		return nil, errors.New("op: SolveSPD dimension mismatch")
	}
	s := make([]float64, nr)
	ok := true
	for i := 0; i < nr; i++ {
		d := p.At(i, i)
		if d <= 0 {
			ok = false
			break
		}
		s[i] = 1 / math.Sqrt(d)
	}
	if ok {
		eq := linalg.NewDense(nr, nr)
		for i := 0; i < nr; i++ {
			prow := p.Row(i)
			erow := eq.Row(i)
			si := s[i]
			for j, v := range prow {
				erow[j] = si * v * s[j]
			}
		}
		ephi := linalg.NewDense(nr, phi.Cols)
		for i := 0; i < nr; i++ {
			for j := 0; j < phi.Cols; j++ {
				ephi.Set(i, j, s[i]*phi.At(i, j))
			}
		}
		for _, shift := range []float64{0, 1e-12, 1e-10, 1e-8} {
			if shift > 0 {
				for i := 0; i < nr; i++ {
					eq.Set(i, i, 1+shift)
				}
			}
			ch, err := linalg.NewCholesky(eq)
			if err != nil {
				continue
			}
			y := ch.SolveMatrix(ephi)
			// Undo the scaling: x = S y.
			for i := 0; i < nr; i++ {
				for j := 0; j < y.Cols; j++ {
					y.Set(i, j, s[i]*y.At(i, j))
				}
			}
			return y, nil
		}
	}
	lu, err := linalg.NewLU(p)
	if err != nil {
		return nil, fmt.Errorf("op: system matrix unsolvable: %w", err)
	}
	rho := linalg.NewDense(nr, phi.Cols)
	sched.Local(0).Map(phi.Cols, func(j int) {
		col := make([]float64, nr)
		for i := 0; i < nr; i++ {
			col[i] = phi.At(i, j)
		}
		lu.Solve(col, col)
		for i := 0; i < nr; i++ {
			rho.Set(i, j, col[i])
		}
	})
	return rho, nil
}
