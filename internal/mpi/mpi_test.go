package mpi

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvRoundtrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 7, []float64{1, 2.5, -3})
			got := c.RecvInts(1, 8)
			if len(got) != 2 || got[0] != 42 || got[1] != -1 {
				t.Errorf("ints = %v", got)
			}
		} else {
			got := c.RecvFloat64s(0, 7)
			if len(got) != 3 || got[1] != 2.5 {
				t.Errorf("floats = %v", got)
			}
			c.SendInts(0, 8, []int{42, -1})
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{1, 2, 3}
			c.SendFloat64s(1, 1, buf)
			buf[0] = 99 // must not affect the receiver
			c.Send(1, 2, nil)
		} else {
			got := c.RecvFloat64s(0, 1)
			c.Recv(0, 2)
			if got[0] != 1 {
				t.Errorf("payload aliased: %v", got)
			}
		}
	})
}

func TestMessageOrderingPerPair(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				c.SendFloat64s(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 100; i++ {
				got := c.RecvFloat64s(0, 5)
				if got[0] != float64(i) {
					t.Fatalf("out of order: got %v at %d", got, i)
				}
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	var phase atomic.Int32
	Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			time.Sleep(10 * time.Millisecond)
			phase.Store(1)
		}
		c.Barrier()
		if phase.Load() != 1 {
			t.Errorf("rank %d passed barrier before rank 2 arrived", c.Rank())
		}
	})
}

func TestBcast(t *testing.T) {
	Run(5, func(c *Comm) {
		var xs []float64
		if c.Rank() == 2 {
			xs = []float64{3.14, 2.71}
		}
		got := c.BcastFloat64s(2, xs)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("rank %d bcast = %v", c.Rank(), got)
		}
	})
}

func TestReduceSum(t *testing.T) {
	Run(4, func(c *Comm) {
		xs := []float64{float64(c.Rank()), 1}
		got := c.ReduceSumFloat64s(0, xs)
		if c.Rank() == 0 {
			if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1*4
				t.Errorf("reduce = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root got %v", got)
		}
	})
}

func TestEncodeDecodeFloat64s(t *testing.T) {
	xs := []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	got := DecodeFloat64s(EncodeFloat64s(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("roundtrip[%d] = %v want %v", i, got[i], xs[i])
		}
	}
	// NaN roundtrip (bit pattern preserved, compare via IsNaN).
	n := DecodeFloat64s(EncodeFloat64s([]float64{math.NaN()}))
	if !math.IsNaN(n[0]) {
		t.Fatal("NaN lost")
	}
}

func TestNetworkCostModelSlowsTransfer(t *testing.T) {
	fast := NewNetwork(2)
	slow := NewNetwork(2)
	slow.Latency = 2 * time.Millisecond

	elapsed := func(n *Network) time.Duration {
		start := time.Now()
		RunOn(n, func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < 10; i++ {
					c.Send(1, 1, make([]byte, 8))
				}
			} else {
				for i := 0; i < 10; i++ {
					c.Recv(0, 1)
				}
			}
		})
		return time.Since(start)
	}
	tf, ts := elapsed(fast), elapsed(slow)
	if ts < 15*time.Millisecond {
		t.Errorf("slow network too fast: %v", ts)
	}
	if tf > ts {
		t.Errorf("fast network slower than slow one: %v vs %v", tf, ts)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on tag mismatch")
		}
	}()
	n := NewNetwork(1)
	c := n.Comm(0)
	c.Send(0, 1, nil)
	c.Recv(0, 2)
}
