package assembly

import (
	"math"
	"testing"

	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
)

func busSet() *basis.Set {
	st := geom.DefaultBus(3, 3).Build()
	return basis.Build(st, basis.DefaultBuilderOptions())
}

func TestPairCacheReproducesUncached(t *testing.T) {
	set := busSet()
	plain := NewIntegrator()
	cached := NewIntegrator()
	cached.Pairs = NewPairCache(0)

	// Two passes: the second is served almost entirely from the cache
	// and must agree with the uncached integrator to the last ulp that
	// translation-invariant keying allows.
	for pass := 0; pass < 2; pass++ {
		for k := int64(0); k < NumPairs(set.M()); k += 3 {
			i, j := KToIJ(k)
			want := plain.TemplatePair(&set.Templates[i], &set.Templates[j])
			got := cached.TemplatePair(&set.Templates[i], &set.Templates[j])
			tol := 1e-13 * math.Abs(want)
			if math.Abs(got-want) > tol {
				t.Fatalf("pass %d pair (%d,%d): cached %g != %g", pass, i, j, got, want)
			}
		}
	}
	if hits, _ := cached.Pairs.Stats(); hits == 0 {
		t.Fatal("second pass produced no cache hits")
	}
}

func TestPairCacheTranslationInvariance(t *testing.T) {
	// Two identical crossing structures offset by a whole number of
	// microns must generate pair keys that collide (that is the point of
	// relative-geometry keying).
	mk := func(off float64) *basis.Set {
		sp := geom.DefaultCrossingPair()
		st := sp.Build()
		for _, c := range st.Conductors {
			for bi := range c.Boxes {
				c.Boxes[bi].Min.X += off
				c.Boxes[bi].Max.X += off
			}
		}
		return basis.Build(st, basis.DefaultBuilderOptions())
	}
	a := mk(0)
	b := mk(4e-6)
	if a.M() != b.M() {
		t.Fatalf("template counts differ: %d vs %d", a.M(), b.M())
	}
	matched := 0
	for i := 0; i < a.M(); i++ {
		ka, oka := keyOf(1, &a.Templates[i], &a.Templates[i])
		kb, okb := keyOf(1, &b.Templates[i], &b.Templates[i])
		if !oka || !okb {
			continue
		}
		if ka == kb {
			matched++
		}
	}
	if matched == 0 {
		t.Fatal("no self-pair keys matched across a rigid translation")
	}
}

func TestPairCacheLRUBound(t *testing.T) {
	c := NewPairCache(pairShards * 16) // minimum per-shard capacity
	set := busSet()
	in := NewIntegrator()
	in.Pairs = c
	for k := int64(0); k < NumPairs(set.M()); k++ {
		i, j := KToIJ(k)
		in.TemplatePair(&set.Templates[i], &set.Templates[j])
	}
	if got, max := c.Len(), pairShards*16; got > max {
		t.Fatalf("cache grew to %d entries, cap %d", got, max)
	}
}

func TestPairCacheConfigsDoNotAlias(t *testing.T) {
	// One shared cache, two differently-configured integrators: each
	// must get its own values, not the other's.
	set := busSet()
	pc := NewPairCache(0)
	std := NewIntegrator()
	std.Pairs = pc
	coarse := &Integrator{Cfg: kernel.DefaultConfig(), Pairs: pc}
	coarse.Cfg.QuadOrder = 2

	plainStd := NewIntegrator()
	plainCoarse := &Integrator{Cfg: kernel.DefaultConfig()}
	plainCoarse.Cfg.QuadOrder = 2

	for k := int64(0); k < NumPairs(set.M()); k += 17 {
		i, j := KToIJ(k)
		ti, tj := &set.Templates[i], &set.Templates[j]
		// Prime with the standard config, then query with the coarse
		// one; a key collision would return the standard value.
		std.TemplatePair(ti, tj)
		if got, want := coarse.TemplatePair(ti, tj), plainCoarse.TemplatePair(ti, tj); got != want {
			t.Fatalf("pair (%d,%d): coarse config served %g, want %g (aliased across configs)", i, j, got, want)
		}
		if got, want := std.TemplatePair(ti, tj), plainStd.TemplatePair(ti, tj); got != want {
			t.Fatalf("pair (%d,%d): std config served %g, want %g", i, j, got, want)
		}
	}
}

func TestShapeKeyOfTabulatedShapeUncacheable(t *testing.T) {
	if _, ok := shapeKeyOf(basis.TabulatedShape{Samples: []float64{0, 1}}); ok {
		t.Fatal("TabulatedShape must bypass the cache (slice field is not comparable)")
	}
}
