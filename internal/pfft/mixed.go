package pfft

import (
	"parbem/internal/fft"
	"parbem/internal/sched"
)

// Mixed-precision apply path: a float32 mirror of the stencils, the
// precorrection entries and the grid convolution (half-spectrum r2c
// FFT through fft.RGrid3F32). The pFFT matvec is bandwidth-bound on
// the padded grid and the correction CSR, so halving the element width
// roughly halves the traffic per apply; the fp32 rounding is absorbed
// by the float64 iterative refinement wrapper in internal/op exactly
// as for the multipole operator. Unlike the multipole mirror no
// rescaling is needed: every pFFT intermediate is at most one power of
// 1/r, far inside float32 range even for micron geometry.

// mixedScratch is the per-ApplyMixed mutable state: fp32 charges and
// the float32 padded work grid.
type mixedScratch struct {
	charges []float32
	x       []float32
	grid    *fft.RGrid3F32
}

// mixedState is the float32 storage mirror, built once by EnableMixed.
// The precorrection rows are flattened into one CSR (off/idx/val) —
// the per-row slices of the fp64 path cost a pointer chase per panel
// that the fp32 pass avoids.
type mixedState struct {
	areas     []float32
	scale     float32
	kernelHat *fft.RGrid3F32

	// stenPad are the stencil node indices pre-linearized into the
	// padded half-spectrum grid, line stride pz+2 (the fp64 path
	// re-derives padded coordinates from logical indices on every
	// interpolation); stenW are the weights.
	stenPad [][8]int32
	stenW   [][8]float32
	// activePad mirrors activeNodes in padded-grid linear indices.
	activePad []int32
	nodeW     []float32

	nearOff []int64
	nearIdx []int32
	nearVal []float32

	scratch *sched.Scratch[*mixedScratch]
}

// EnableMixed builds the float32 mirror (idempotent, safe for
// concurrent callers). Opt-in for the same reason as the multipole
// operator: it doubles grid storage until the first mixed apply.
func (op *Operator) EnableMixed() {
	op.mixedOnce.Do(func() {
		n := len(op.panels)
		m := &mixedState{
			areas:     make([]float32, n),
			scale:     float32(op.scale),
			kernelHat: fft.NewRGrid3F32(op.px, op.py, op.pz),
			stenPad:   make([][8]int32, n),
			stenW:     make([][8]float32, n),
			activePad: make([]int32, len(op.activeNodes)),
			nodeW:     make([]float32, len(op.nodeW)),
			nearOff:   make([]int64, n+1),
		}
		for i, a := range op.areas {
			m.areas[i] = float32(a)
		}
		// The fp64 kernel spectrum shares the half-spectrum float
		// layout, so the fp32 mirror is a plain element-wise narrowing.
		for i, v := range op.kernelHat.Data {
			m.kernelHat.Data[i] = float32(v)
		}
		ls := op.pz + 2 // padded-line stride of the half-spectrum layout
		for i := range op.sten {
			s := &op.sten[i]
			for k := 0; k < 8; k++ {
				ix, iy, iz := op.nodeCoords(s.idx[k])
				m.stenPad[i][k] = int32((ix*op.py+iy)*ls + iz)
				m.stenW[i][k] = float32(s.w[k])
			}
		}
		for a, nd := range op.activeNodes {
			ix, iy, iz := op.nodeCoords(nd)
			m.activePad[a] = int32((ix*op.py+iy)*ls + iz)
		}
		for i, w := range op.nodeW {
			m.nodeW[i] = float32(w)
		}
		var total int64
		for i := 0; i < n; i++ {
			total += int64(len(op.nearIdx[i]))
			m.nearOff[i+1] = total
		}
		m.nearIdx = make([]int32, total)
		m.nearVal = make([]float32, total)
		for i := 0; i < n; i++ {
			lo := m.nearOff[i]
			copy(m.nearIdx[lo:], op.nearIdx[i])
			for k, v := range op.nearVal[i] {
				m.nearVal[lo+int64(k)] = float32(v)
			}
		}
		m.scratch = sched.NewScratch(func() *mixedScratch {
			g := fft.NewRGrid3F32(op.px, op.py, op.pz)
			g.Exec = op.exec
			return &mixedScratch{
				charges: make([]float32, n),
				x:       make([]float32, n),
				grid:    g,
			}
		})
		op.mixed = m
	})
}

// MixedEnabled reports whether the float32 mirror has been built.
func (op *Operator) MixedEnabled() bool { return op.mixed != nil }

// ApplyMixed computes dst = P x through the float32 mirror: fp32
// project, half-spectrum complex64 FFT convolution, fp32 interpolate +
// precorrect. dst and x stay float64 at the interface (the refinement
// loop owns them). Falls back to the fp64 Apply when EnableMixed has
// not run. Safe for concurrent use and allocation-free after warmup in
// serial mode.
func (op *Operator) ApplyMixed(dst, x []float64) {
	m := op.mixed
	if m == nil {
		op.Apply(dst, x)
		return
	}
	s := m.scratch.Acquire()
	defer m.scratch.Release(s)

	for i, a := range m.areas {
		xi := float32(x[i])
		s.x[i] = xi
		s.charges[i] = xi * a
	}

	g := s.grid
	data := g.Data
	np := len(op.panels)
	if op.exec == nil {
		for i := range data {
			data[i] = 0
		}
		op.projectRange32(m, s, data, 0, len(m.activePad))
	} else {
		op.exec.Map((len(data)+applyChunk-1)/applyChunk, func(t int) {
			lo, hi := chunkBounds(t, len(data))
			for i := lo; i < hi; i++ {
				data[i] = 0
			}
		})
		op.exec.Map((len(m.activePad)+applyChunk-1)/applyChunk, func(t int) {
			lo, hi := chunkBounds(t, len(m.activePad))
			op.projectRange32(m, s, data, lo, hi)
		})
	}

	g.ConvolveInto(m.kernelHat)

	if op.exec == nil {
		op.evalRange32(m, s, data, dst, 0, np)
		return
	}
	op.exec.Map((np+applyChunk-1)/applyChunk, func(t int) {
		lo, hi := chunkBounds(t, np)
		op.evalRange32(m, s, data, dst, lo, hi)
	})
}

// projectRange32 accumulates fp32 charges onto active padded-grid nodes
// [lo, hi) through the node-to-panel adjacency.
func (op *Operator) projectRange32(m *mixedState, s *mixedScratch, data []float32, lo, hi int) {
	for a := lo; a < hi; a++ {
		var q float32
		for p := op.nodeOff[a]; p < op.nodeOff[a+1]; p++ {
			q += m.nodeW[p] * s.charges[op.nodePanel[p]]
		}
		data[m.activePad[a]] = q
	}
}

// evalRange32 interpolates fp32 grid potentials and applies the fp32
// precorrection for panels [lo, hi).
func (op *Operator) evalRange32(m *mixedState, s *mixedScratch, data []float32, dst []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		pad := &m.stenPad[i]
		w := &m.stenW[i]
		phi := w[0]*data[pad[0]] + w[1]*data[pad[1]] +
			w[2]*data[pad[2]] + w[3]*data[pad[3]] +
			w[4]*data[pad[4]] + w[5]*data[pad[5]] +
			w[6]*data[pad[6]] + w[7]*data[pad[7]]
		y := m.scale * m.areas[i] * phi
		nlo, nhi := m.nearOff[i], m.nearOff[i+1]
		idx := m.nearIdx[nlo:nhi]
		val := m.nearVal[nlo:nhi]
		x32 := s.x
		var c float32
		for k, j := range idx {
			c += val[k] * x32[j]
		}
		dst[i] = float64(y + c)
	}
}
