package costmodel

import "testing"

func TestSelectSmallProblemsGoDense(t *testing.T) {
	for _, n := range []int{1, 100, DenseMaxPanels} {
		w := Workload{Panels: n, Span: [3]float64{1e-5, 1e-5, 1e-6}, MedianEdge: 5e-7}
		if got := Select(w); got != ChooseDense {
			t.Errorf("N=%d: got %v, want dense", n, got)
		}
	}
}

func TestSelectSpreadStructureGoesFMM(t *testing.T) {
	// 5k panels scattered over a large volume: the uniform grid would be
	// nearly empty, so the tree operator must win.
	w := Workload{
		Panels:     5000,
		Span:       [3]float64{100e-6, 100e-6, 100e-6},
		MedianEdge: 1e-6,
	}
	if f := w.FillFactor(); f >= PFFTMinFill {
		t.Fatalf("test workload not sparse: fill %g", f)
	}
	if got := Select(w); got != ChooseFMM {
		t.Errorf("got %v, want fmm", got)
	}
}

func TestSelectCompactDenseVolumeGoesPFFT(t *testing.T) {
	// 50k panels filling a compact slab: high fill factor, grid wins.
	w := Workload{
		Panels:     50000,
		Span:       [3]float64{20e-6, 20e-6, 2e-6},
		MedianEdge: 1e-6,
	}
	if f := w.FillFactor(); f < PFFTMinFill {
		t.Fatalf("test workload not dense: fill %g", f)
	}
	if got := Select(w); got != ChoosePFFT {
		t.Errorf("got %v, want pfft", got)
	}
}

func TestSelectTightToleranceAvoidsPFFT(t *testing.T) {
	// Same compact workload, but a 1e-8 target: the grid approximation
	// cannot chase it, so the exact-near-field tree operator is forced.
	w := Workload{
		Panels:     50000,
		Span:       [3]float64{20e-6, 20e-6, 2e-6},
		MedianEdge: 1e-6,
		Tol:        1e-8,
	}
	if got := Select(w); got != ChooseFMM {
		t.Errorf("got %v, want fmm at tight tolerance", got)
	}
}

func TestGridNodesPositive(t *testing.T) {
	w := Workload{Panels: 10, Span: [3]float64{0, 0, 0}, MedianEdge: 0}
	if g := w.GridNodes(); g <= 0 {
		t.Errorf("degenerate workload grid nodes %d", g)
	}
}
