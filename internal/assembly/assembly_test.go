package assembly

import (
	"math"
	"testing"
	"testing/quick"

	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
)

func TestKToIJRoundtrip(t *testing.T) {
	// Exhaustive for small M.
	m := 40
	k := int64(0)
	for j := 0; j < m; j++ {
		for i := 0; i <= j; i++ {
			gi, gj := KToIJ(k)
			if gi != i || gj != j {
				t.Fatalf("KToIJ(%d) = (%d,%d), want (%d,%d)", k, gi, gj, i, j)
			}
			if IJToK(i, j) != k {
				t.Fatalf("IJToK(%d,%d) = %d, want %d", i, j, IJToK(i, j), k)
			}
			k++
		}
	}
	if k != NumPairs(m) {
		t.Fatalf("NumPairs(%d) = %d, want %d", m, NumPairs(m), k)
	}
}

func TestKToIJProperty(t *testing.T) {
	f := func(raw uint32) bool {
		k := int64(raw % 50_000_000)
		i, j := KToIJ(k)
		return i >= 0 && i <= j && IJToK(i, j) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPartitionK(t *testing.T) {
	b := PartitionK(100, 7)
	if len(b) != 8 || b[0] != 0 || b[7] != 100 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 0; i < 7; i++ {
		if b[i+1] < b[i] {
			t.Fatalf("non-monotone bounds %v", b)
		}
	}
	// Equal division except remainder in the last partition (paper).
	for i := 0; i < 6; i++ {
		if b[i+1]-b[i] != 14 {
			t.Fatalf("partition %d size %d, want 14", i, b[i+1]-b[i])
		}
	}
	if b[7]-b[6] != 16 {
		t.Fatalf("last partition size %d, want 16", b[7]-b[6])
	}
}

// flatTpl builds a flat template on a z-plane rectangle.
func flatTpl(x0, x1, y0, y1, z float64) basis.Template {
	return basis.Template{
		Support: geom.Rect{Normal: geom.Z, Offset: z,
			U: geom.Interval{Lo: x0, Hi: x1}, V: geom.Interval{Lo: y0, Hi: y1}},
		Dir: basis.VaryNone, Shape: basis.FlatShape{}, Amplitude: 1,
	}
}

// nearFlatArch is an arch shape so wide it is numerically constant ~ 1.
func nearFlatArch() basis.ArchShape {
	return basis.ArchShape{EdgePos: 0.5, LambdaIn: 1e6, LambdaOut: 1e6}
}

func TestTemplatePairFlatFlatMatchesKernel(t *testing.T) {
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 1, 0)
	b := flatTpl(0.5, 2, 1, 3, 0.8)
	got := in.TemplatePair(&a, &b)
	want := kernel.RectGalerkin(in.Cfg, a.Support, b.Support)
	if math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Fatalf("flat-flat = %g want %g", got, want)
	}
}

func TestStripPairNearlyFlatMatchesClosedForm(t *testing.T) {
	// A shaped template whose shape is ~1 must reproduce the flat-flat
	// closed form, exercising the GalerkinStrip quadrature path.
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	shaped := flatTpl(0, 1, 0, 1, 0)
	shaped.Dir = basis.VaryU
	shaped.Shape = nearFlatArch()
	for _, zc := range []struct {
		z    float64
		name string
	}{{0.9, "parallel-offset"}, {0, "coplanar"}} {
		flat := flatTpl(0.2, 1.5, -1, 0.5, zc.z)
		if zc.z == 0 {
			// Coplanar non-overlapping for a clean singularity-free check.
			flat = flatTpl(1.3, 2.5, 0, 1, 0)
		}
		got := in.TemplatePair(&shaped, &flat)
		ref := kernel.RectGalerkin(in.Cfg, shaped.Support, flat.Support)
		if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-6 {
			t.Errorf("%s: shaped~flat = %g want %g (rel %g)", zc.name, got, ref, rel)
		}
		// Symmetric orientation (flat template first).
		got2 := in.TemplatePair(&flat, &shaped)
		if rel := math.Abs(got2-ref) / math.Abs(ref); rel > 1e-6 {
			t.Errorf("%s reversed: %g want %g", zc.name, got2, ref)
		}
	}
}

func TestPairSameAxisNearlyFlatMatchesClosedForm(t *testing.T) {
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 1, 0)
	a.Dir = basis.VaryU
	a.Shape = nearFlatArch()
	b := flatTpl(0.3, 1.8, 0.5, 2, 1.1)
	b.Dir = basis.VaryU
	b.Shape = nearFlatArch()
	got := in.TemplatePair(&a, &b)
	ref := kernel.RectGalerkin(in.Cfg, a.Support, b.Support)
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-5 {
		t.Fatalf("1D-1D same axis = %g want %g (rel %g)", got, ref, rel)
	}
}

func TestPairSameAxisSelfTermFinitePositive(t *testing.T) {
	// Self interaction of an arch template (identical supports, coplanar):
	// must be finite, positive, and close to the flat self-term when the
	// shape is nearly constant.
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 0.5, 0)
	a.Dir = basis.VaryU
	a.Shape = nearFlatArch()
	got := in.TemplatePair(&a, &a)
	ref := kernel.SelfGalerkin(kernel.StdOps, a.Support)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("self term not finite: %g", got)
	}
	if got <= 0 {
		t.Fatalf("self term non-positive: %g", got)
	}
	// Log-singular diagonal integrated by Gauss tensor rule: expect a few
	// percent accuracy, not machine precision.
	if rel := math.Abs(got-ref) / ref; rel > 0.05 {
		t.Fatalf("self term = %g want ~%g (rel %g)", got, ref, rel)
	}
}

func TestGenericPairCrossAxesNearlyFlat(t *testing.T) {
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 1, 0)
	a.Dir = basis.VaryU
	a.Shape = nearFlatArch()
	b := flatTpl(0.2, 1.2, 0.1, 0.9, 1.3)
	b.Dir = basis.VaryV
	b.Shape = nearFlatArch()
	got := in.TemplatePair(&a, &b)
	ref := kernel.RectGalerkin(in.Cfg, a.Support, b.Support)
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-4 {
		t.Fatalf("cross-axis pair = %g want %g (rel %g)", got, ref, rel)
	}
}

func TestGenericPairPerpendicularPlanes(t *testing.T) {
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 1, 0)
	a.Dir = basis.VaryU
	a.Shape = nearFlatArch()
	b := basis.Template{
		Support: geom.Rect{Normal: geom.X, Offset: 2,
			U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 1}},
		Dir: basis.VaryNone, Shape: basis.FlatShape{}, Amplitude: 1,
	}
	got := in.TemplatePair(&a, &b)
	ref := kernel.RectGalerkin(in.Cfg, a.Support, b.Support)
	if rel := math.Abs(got-ref) / math.Abs(ref); rel > 1e-4 {
		t.Fatalf("perpendicular pair = %g want %g (rel %g)", got, ref, rel)
	}
}

func TestTemplatePairFarField(t *testing.T) {
	in := NewIntegrator() // approximations ON
	exact := NewIntegrator()
	exact.Cfg.DisableApprox = true
	a := flatTpl(0, 1, 0, 1, 0)
	b := flatTpl(50, 51, 50, 51, 3)
	got := in.TemplatePair(&a, &b)
	want := exact.TemplatePair(&a, &b)
	if rel := math.Abs(got-want) / want; rel > 1e-2 {
		t.Fatalf("far-field approx error %g", rel)
	}
}

func TestAmplitudeBilinearity(t *testing.T) {
	in := NewIntegrator()
	a := flatTpl(0, 1, 0, 1, 0)
	b := flatTpl(0, 1, 0, 1, 2)
	base := in.TemplatePair(&a, &b)
	a2, b2 := a, b
	a2.Amplitude = 3
	b2.Amplitude = -2
	got := in.TemplatePair(&a2, &b2)
	if math.Abs(got-(-6)*base) > 1e-12*math.Abs(base) {
		t.Fatalf("bilinearity: %g vs %g", got, -6*base)
	}
}

// buildSmallSet builds the basis for the default crossing pair.
func buildSmallSet(t *testing.T) *basis.Set {
	t.Helper()
	st := geom.DefaultCrossingPair().Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return set
}

func TestBuildCrossingBasis(t *testing.T) {
	set := buildSmallSet(t)
	if set.N() < 14 { // 12 faces + induced
		t.Fatalf("N = %d too small", set.N())
	}
	if set.M() <= set.N() {
		t.Fatalf("M = %d should exceed N = %d (multi-template bases)", set.M(), set.N())
	}
	ratio := float64(set.M()) / float64(set.N())
	if ratio < 1.05 || ratio > 3.5 {
		t.Errorf("M/N = %.2f outside the paper's practical range", ratio)
	}
	kinds := set.CountKinds()
	if kinds[basis.KindFace] != 12 {
		t.Errorf("face bases = %d, want 12", kinds[basis.KindFace])
	}
	if kinds[basis.KindShadow] == 0 {
		t.Errorf("missing induced bases: %v", kinds)
	}
	// Owner non-decreasing.
	for i := 1; i < len(set.Owner); i++ {
		if set.Owner[i] < set.Owner[i-1] {
			t.Fatal("owner array not monotone")
		}
	}
}

func TestFillSerialProducesSPDMatrix(t *testing.T) {
	set := buildSmallSet(t)
	in := NewIntegrator()
	P := FillSerial(set, in)
	if P.Rows != set.N() {
		t.Fatalf("P is %dx%d", P.Rows, P.Cols)
	}
	if e := P.SymmetryError(); e != 0 {
		t.Fatalf("P not exactly symmetric after Symmetrize: %g", e)
	}
	// Positive diagonal.
	for i := 0; i < P.Rows; i++ {
		if P.At(i, i) <= 0 {
			t.Fatalf("P[%d][%d] = %g <= 0", i, i, P.At(i, i))
		}
	}
	if _, err := linalg.NewCholesky(P); err != nil {
		t.Fatalf("P not SPD: %v", err)
	}
}

func TestFillPartialMergeEqualsSerial(t *testing.T) {
	set := buildSmallSet(t)
	in := NewIntegrator()
	want := FillSerial(set, in)

	// Partition boundaries can split a multi-template basis function's
	// accumulation order, so agreement is to rounding, not bit-exact.
	var scale float64
	for _, v := range want.Data {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	K := NumPairs(set.M())
	for _, d := range []int{2, 3, 7} {
		P := linalg.NewDense(set.N(), set.N())
		bounds := PartitionK(K, d)
		for p := 0; p < d; p++ {
			part := FillPartial(set, in, bounds[p], bounds[p+1])
			part.MergeInto(P)
		}
		Symmetrize(P)
		if diff := linalg.MaxAbsDiff(P, want); diff > 1e-12*scale {
			t.Fatalf("d=%d: partition merge differs from serial by %g", d, diff)
		}
	}
}

// TestCondensationFigure3 reproduces the paper's Figure 3 example: N=4
// basis functions, M=5 templates where basis 2 (0-based) owns templates 2
// and 3. The off-diagonal template pair (2,3) must contribute twice to the
// diagonal entry P[2][2].
func TestCondensationFigure3(t *testing.T) {
	// Five unit squares far apart on the z=0 plane.
	mk := func(x float64) basis.Template { return flatTpl(x, x+1, 0, 1, 0) }
	set := &basis.Set{
		NumConductors: 1,
		Templates:     []basis.Template{mk(0), mk(10), mk(20), mk(30), mk(40)},
		Owner:         []int{0, 1, 2, 2, 3},
		Functions: []basis.Function{
			{Conductor: 0, TplLo: 0, TplHi: 1},
			{Conductor: 0, TplLo: 1, TplHi: 2},
			{Conductor: 0, TplLo: 2, TplHi: 4},
			{Conductor: 0, TplLo: 4, TplHi: 5},
		},
	}
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewIntegrator()
	in.Cfg.DisableApprox = true
	P := FillSerial(set, in)

	// Manual condensation from the raw template matrix.
	var ptRaw [5][5]float64
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			ptRaw[i][j] = in.TemplatePair(&set.Templates[i], &set.Templates[j])
		}
	}
	want22 := ptRaw[2][2] + ptRaw[3][3] + ptRaw[2][3] + ptRaw[3][2]
	if rel := math.Abs(P.At(2, 2)-want22) / want22; rel > 1e-12 {
		t.Errorf("P[2][2] = %g, want %g (double-count rule)", P.At(2, 2), want22)
	}
	want02 := ptRaw[0][2] + ptRaw[0][3]
	if rel := math.Abs(P.At(0, 2)-want02) / math.Abs(want02); rel > 1e-12 {
		t.Errorf("P[0][2] = %g, want %g", P.At(0, 2), want02)
	}
	if P.At(2, 0) != P.At(0, 2) {
		t.Error("P not symmetric")
	}
}
