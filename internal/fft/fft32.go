package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// Float32 mirror of the transform stack, the convolution engine of the
// mixed-precision pfft apply path: complex64 grids halve the bandwidth of
// the 3-D transforms that dominate the far-field matvec. Twiddle factors
// are precomputed in float64 (per length, cached) and rounded once, so
// the only extra error over complex128 is the fp32 rounding of the
// butterflies themselves — about 1e-7 relative on the grid sizes pfft
// uses, far below the iterative-refinement tolerance that consumes the
// result.

// twiddle32Cache holds the first-half roots of unity per (length, sign),
// computed in float64 and rounded to complex64 once. The cache is tiny
// (one entry per distinct grid edge and direction) and read-mostly;
// sync.Map keeps concurrent pfft applies lock-free on the hit path.
var twiddle32Cache sync.Map

// twiddles32 returns w[k] = exp(sign * 2 pi i k / n) for k in [0, n/2).
func twiddles32(n int, sign float64) []complex64 {
	key := int64(n)
	if sign > 0 {
		key = -key
	}
	if w, ok := twiddle32Cache.Load(key); ok {
		return w.([]complex64)
	}
	w := make([]complex64, n/2)
	for k := range w {
		s, c := math.Sincos(sign * 2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(float32(c), float32(s))
	}
	twiddle32Cache.Store(key, w)
	return w
}

// revCache holds the bit-reversal permutation per length: rev[i] is the
// bit-reverse of i. A table lookup per element beats recomputing
// bits.Reverse64 per element across the thousands of short 1-D rows of
// one 3-D transform.
var revCache sync.Map

func revTable(n int) []int32 {
	if r, ok := revCache.Load(n); ok {
		return r.([]int32)
	}
	shift := 64 - uint(bits.Len(uint(n-1)))
	rev := make([]int32, n)
	for i := range rev {
		rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	revCache.Store(n, rev)
	return rev
}

// Forward32 computes the in-place forward DFT of x (power-of-two length).
func Forward32(x []complex64) {
	n := checkedLen(x)
	transform32(x, twiddles32(n, -1), revTable(n))
}

// Inverse32 computes the in-place inverse DFT including the 1/n scaling.
func Inverse32(x []complex64) {
	n := checkedLen(x)
	transform32(x, twiddles32(n, +1), revTable(n))
	inv := float32(1) / float32(n)
	for i := range x {
		x[i] *= complex(inv, 0)
	}
}

func checkedLen(x []complex64) int {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	return n
}

// transform32 is the iterative Cooley-Tukey radix-2 kernel on complex64
// with table-driven twiddles (the recurrence w *= wStep used by the
// complex128 kernel loses too many bits at fp32). The caller supplies
// the twiddle and bit-reversal tables so the per-row lookups are hoisted
// out of the 3-D transform's row loops.
func transform32(x []complex64, w []complex64, rev []int32) {
	n := len(x)
	for i, j := range rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w[k*stride]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Grid3F32 is the complex64 twin of Grid3 (same x-major layout), used by
// the mixed-precision pfft convolution.
type Grid3F32 struct {
	Nx, Ny, Nz int
	Data       []complex64
	bufY, bufX []complex64
}

// NewGrid3F32 allocates a zeroed complex64 grid.
func NewGrid3F32(nx, ny, nz int) *Grid3F32 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) {
		panic("fft: grid dimensions must be powers of two")
	}
	return &Grid3F32{
		Nx: nx, Ny: ny, Nz: nz,
		Data: make([]complex64, nx*ny*nz),
		bufY: make([]complex64, ny),
		bufX: make([]complex64, nx),
	}
}

// Idx returns the linear index of (ix, iy, iz).
func (g *Grid3F32) Idx(ix, iy, iz int) int { return (ix*g.Ny+iy)*g.Nz + iz }

// Forward3 transforms the grid in place along all three axes.
func (g *Grid3F32) Forward3() { g.transformAll(-1) }

// Inverse3 inverse-transforms the grid in place (scaled).
func (g *Grid3F32) Inverse3() {
	g.transformAll(+1)
	// One fused 1/(nx*ny*nz) pass instead of a 1/n scaling inside each of
	// the nx*ny + nx*nz + ny*nz row transforms.
	inv := float32(1) / float32(g.Nx*g.Ny*g.Nz)
	for i := range g.Data {
		g.Data[i] *= complex(inv, 0)
	}
}

// transformAll applies the unscaled 1-D transform along z, then y, then
// x, with twiddle/reversal tables fetched once per axis and explicit
// stride arithmetic in the gather/scatter loops.
func (g *Grid3F32) transformAll(sign float64) {
	data := g.Data
	nx, ny, nz := g.Nx, g.Ny, g.Nz

	wz, rz := twiddles32(nz, sign), revTable(nz)
	for base := 0; base < len(data); base += nz {
		transform32(data[base:base+nz], wz, rz)
	}

	wy, ry := twiddles32(ny, sign), revTable(ny)
	buf := g.bufY
	for ix := 0; ix < nx; ix++ {
		plane := ix * ny * nz
		for iz := 0; iz < nz; iz++ {
			p := plane + iz
			for iy := 0; iy < ny; iy++ {
				buf[iy] = data[p]
				p += nz
			}
			transform32(buf, wy, ry)
			p = plane + iz
			for iy := 0; iy < ny; iy++ {
				data[p] = buf[iy]
				p += nz
			}
		}
	}

	wx, rx := twiddles32(nx, sign), revTable(nx)
	bufX := g.bufX
	planeStride := ny * nz
	for iy := 0; iy < ny; iy++ {
		row := iy * nz
		for iz := 0; iz < nz; iz++ {
			p := row + iz
			for ix := 0; ix < nx; ix++ {
				bufX[ix] = data[p]
				p += planeStride
			}
			transform32(bufX, wx, rx)
			p = row + iz
			for ix := 0; ix < nx; ix++ {
				data[p] = bufX[ix]
				p += planeStride
			}
		}
	}
}

// MulPointwise multiplies g by h element-wise (same dimensions).
func (g *Grid3F32) MulPointwise(h *Grid3F32) {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		panic("fft: grid dimension mismatch")
	}
	for i, v := range h.Data {
		g.Data[i] *= v
	}
}
