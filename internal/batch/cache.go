package batch

import (
	"container/list"
	"sync"
)

// LRU is the engine's concurrency-safe least-recently-used cache for
// immutable expensive state (basis sets keyed by geometry signature,
// tabulated kernel tables, warmed quadrature rule sets). Lookups of
// missing keys compute the value exactly once even under concurrent
// demand for the same key (single-flight): late arrivals block on the
// first caller's computation instead of duplicating it, which is what
// makes ExtractAll over a repeated-template corpus do one basis build
// and one table build total.
type LRU struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recent; values are *lruEntry
	m    map[string]*list.Element
	hits uint64
	miss uint64
}

// lruEntry is one cache slot; ready is closed once val/err are set.
type lruEntry struct {
	key   string
	ready chan struct{}
	val   any
	err   error
}

// NewLRU creates a cache bounded to capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// GetOrCompute returns the cached value for key, computing it with f on
// the first demand. Concurrent callers for the same key share one
// computation. Failed computations are not cached; the error is returned
// to every caller that joined the attempt, and the next demand retries.
// computed reports whether this call ran f itself.
func (c *LRU) GetOrCompute(key string, f func() (any, error)) (val any, computed bool, err error) {
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.val, false, e.err
	}
	c.miss++
	e := &lruEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.m[key] = el
	if c.ll.Len() > c.cap {
		c.evictOldestReadyLocked()
	}
	c.mu.Unlock()

	e.val, e.err = f()
	close(e.ready)
	if e.err != nil {
		// Do not cache failures.
		c.mu.Lock()
		if cur, ok := c.m[key]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.m, key)
		}
		c.mu.Unlock()
	}
	return e.val, true, e.err
}

// evictOldestReadyLocked drops the least recently used entry whose
// computation has completed (in-flight entries have waiters and must
// survive until their ready channel closes).
func (c *LRU) evictOldestReadyLocked() {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry)
		select {
		case <-e.ready:
			c.ll.Remove(el)
			delete(c.m, e.key)
			return
		default:
		}
	}
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
