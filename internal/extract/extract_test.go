package extract

import (
	"math"
	"testing"

	"parbem/internal/geom"
)

func smallSpec() geom.CrossingPairSpec {
	return geom.CrossingPairSpec{
		Width:     1e-6,
		Thickness: 0.5e-6,
		Length:    8e-6,
		H:         0.5e-6,
	}
}

func TestCrossingProfileShape(t *testing.T) {
	sp := smallSpec()
	prof, err := CrossingProfile(sp, 0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.U) < 10 {
		t.Fatalf("profile too coarse: %d bins", len(prof.U))
	}
	// Positions sorted.
	for i := 1; i < len(prof.U); i++ {
		if prof.U[i] <= prof.U[i-1] {
			t.Fatal("profile positions not sorted")
		}
	}
	// Induced charge on the grounded target is negative everywhere under
	// a positive source.
	for i, r := range prof.Rho {
		if r >= 0 {
			t.Fatalf("induced density at u=%g is %g, want negative", prof.U[i], r)
		}
	}
	// Magnitude peaks near the crossing (center) and decays toward the
	// ends (paper Figure 2's bump).
	mid := math.Abs(interp(prof, 0))
	end := math.Abs(prof.Rho[0])
	if mid <= end {
		t.Errorf("no charge crowding: |rho(0)| = %g <= |rho(end)| = %g", mid, end)
	}
}

func TestFitArchFindsBump(t *testing.T) {
	sp := smallSpec()
	prof, err := CrossingProfile(sp, 0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitArch(prof, sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Peak) <= math.Abs(fit.Flat) {
		t.Errorf("peak %g not above plateau %g", fit.Peak, fit.Flat)
	}
	// Peak inside the crossing neighborhood.
	if math.Abs(fit.PeakPos) > sp.Width/2+sp.H+1e-9 {
		t.Errorf("peak at %g outside crossing region", fit.PeakPos)
	}
	// Decay length on the physical scale of the separation: between
	// h/10 and 10h.
	if fit.Decay < sp.H/10 || fit.Decay > 10*sp.H {
		t.Errorf("decay %g not on the h scale (h=%g)", fit.Decay, sp.H)
	}
}

func TestShapeFromProfileNormalized(t *testing.T) {
	sp := smallSpec()
	prof, err := CrossingProfile(sp, 0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitArch(prof, sp)
	if err != nil {
		t.Fatal(err)
	}
	shape := ShapeFromProfile(prof, fit, sp, 32)
	if len(shape.Samples) != 32 {
		t.Fatalf("samples = %d", len(shape.Samples))
	}
	maxV := 0.0
	for _, v := range shape.Samples {
		if v < 0 || v > 1 {
			t.Fatalf("sample %g outside [0,1]", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if math.Abs(maxV-1) > 1e-12 {
		t.Errorf("shape not normalized to peak 1: %g", maxV)
	}
	// Usable as a basis shape.
	if shape.Mean() <= 0 || shape.Mean() > 1 {
		t.Errorf("shape mean %g implausible", shape.Mean())
	}
}

func TestSweepHMonotonicity(t *testing.T) {
	// b(h): weaker induced peak for larger separation (paper Figure 2's
	// parameter dependence).
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	base := smallSpec()
	fits, err := SweepH(base, []float64{0.3e-6, 0.6e-6, 1.2e-6}, 0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(fits); i++ {
		if math.Abs(fits[i].Peak) >= math.Abs(fits[i-1].Peak) {
			t.Errorf("peak magnitude not decreasing with h: %g -> %g",
				fits[i-1].Peak, fits[i].Peak)
		}
	}
}
