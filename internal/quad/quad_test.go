package quad

import (
	"math"
	"testing"
)

func TestGaussPolynomialExactness(t *testing.T) {
	// An n-point rule integrates x^k exactly for k <= 2n-1.
	for n := 1; n <= 12; n++ {
		for k := 0; k <= 2*n-1; k++ {
			got := Integrate1D(func(x float64) float64 {
				return math.Pow(x, float64(k))
			}, -1, 1, n)
			var want float64
			if k%2 == 0 {
				want = 2 / float64(k+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d k=%d: got %g want %g", n, k, got, want)
			}
		}
	}
}

func TestGaussWeightsSumToTwo(t *testing.T) {
	for n := 1; n <= MaxOrder; n++ {
		r := Gauss(n)
		var s float64
		for _, w := range r.Weights {
			s += w
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("n=%d: weights sum %g", n, s)
		}
		// Nodes sorted and inside (-1, 1).
		for i, x := range r.Nodes {
			if x <= -1 || x >= 1 {
				t.Errorf("n=%d: node %g outside (-1,1)", n, x)
			}
			if i > 0 && x <= r.Nodes[i-1] {
				t.Errorf("n=%d: nodes not increasing", n)
			}
		}
	}
}

func TestGaussSymmetry(t *testing.T) {
	for _, n := range []int{2, 5, 16, 33} {
		r := Gauss(n)
		for i := range r.Nodes {
			j := n - 1 - i
			if math.Abs(r.Nodes[i]+r.Nodes[j]) > 1e-14 {
				t.Errorf("n=%d: nodes %d/%d not symmetric", n, i, j)
			}
			if math.Abs(r.Weights[i]-r.Weights[j]) > 1e-14 {
				t.Errorf("n=%d: weights %d/%d differ", n, i, j)
			}
		}
	}
}

func TestIntegrate1DKnown(t *testing.T) {
	got := Integrate1D(math.Exp, 0, 1, 12)
	want := math.E - 1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("int exp = %.15g want %.15g", got, want)
	}
	got = Integrate1D(math.Sin, 0, math.Pi, 16)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("int sin = %.15g want 2", got)
	}
}

func TestIntegrate2DKnown(t *testing.T) {
	// int_0^1 int_0^2 x*y dy dx = (1/2)*(2) = 1... = (1/2)*(4/2)=1.
	got := Integrate2D(func(x, y float64) float64 { return x * y }, 0, 1, 0, 2, 4, 4)
	if math.Abs(got-1) > 1e-13 {
		t.Errorf("int xy = %g want 1", got)
	}
	// Separable exponential.
	got = Integrate2D(func(x, y float64) float64 { return math.Exp(x + y) }, 0, 1, 0, 1, 12, 12)
	want := (math.E - 1) * (math.E - 1)
	if math.Abs(got-want) > 1e-11 {
		t.Errorf("int exp = %g want %g", got, want)
	}
}

func TestIntegrate4D(t *testing.T) {
	got := Integrate4D(func(x, y, xp, yp float64) float64 {
		return x * y * xp * yp
	}, 0, 1, 0, 1, 0, 1, 0, 1, 4)
	want := 1.0 / 16
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("int = %g want %g", got, want)
	}
}

func TestMapped(t *testing.T) {
	xs, ws := Mapped(8, 2, 5, nil, nil)
	if len(xs) != 8 || len(ws) != 8 {
		t.Fatalf("lengths %d %d", len(xs), len(ws))
	}
	var s, m float64
	for i := range xs {
		s += ws[i]
		m += ws[i] * xs[i] * xs[i]
	}
	if math.Abs(s-3) > 1e-12 {
		t.Errorf("weights sum %g want 3", s)
	}
	want := (125.0 - 8.0) / 3
	if math.Abs(m-want) > 1e-12 {
		t.Errorf("int x^2 = %g want %g", m, want)
	}
}

func TestGaussPanics(t *testing.T) {
	for _, n := range []int{0, -1, MaxOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gauss(%d) did not panic", n)
				}
			}()
			Gauss(n)
		}()
	}
}

func TestGaussCacheConcurrency(t *testing.T) {
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for n := 1; n <= 24; n++ {
				Gauss(n)
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
