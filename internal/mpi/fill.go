package mpi

import (
	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/linalg"
)

// Message tags of the distributed fill protocol.
const (
	tagPartHeader = 1
	tagPartData   = 2
)

// FillDistributed runs the distributed-memory system setup of paper
// Section 5.2 / Figures 5 and 6 on the given network: every rank holds a
// private copy of the template definitions and computes the entries of P~
// in its k-partition into a partial matrix P_Kd; ranks d != 0 serialize
// their partials and send them to the main rank, which shifts each slab to
// its column offset and accumulates into P. The returned matrix (rank 0's
// result) is symmetrized and unscaled.
func FillDistributed(set *basis.Set, in *assembly.Integrator, net *Network) *linalg.Dense {
	size := net.size
	// One contiguous k-partition per rank (Figure 5/6); boundaries are
	// placed at equal *estimated cost* rather than equal count, since a
	// rank stuck with the expensive shaped-template block would bound
	// the whole setup (every rank computes the same partition
	// deterministically, so no coordination is needed).
	bounds := assembly.PartitionKCost(set, in, size)

	var result *linalg.Dense
	RunOn(net, func(c *Comm) {
		// Each process holds its own copy of the template definitions
		// (paper: "the process d holds its own copy of template
		// definitions"); this also guarantees no shared mutable state.
		local := set.Clone()
		lo, hi := bounds[c.Rank()], bounds[c.Rank()+1]

		if c.Rank() != 0 {
			if hi <= lo {
				c.SendInts(0, tagPartHeader, []int{0, -1})
				return
			}
			part := assembly.FillPartial(local, in, lo, hi)
			c.SendInts(0, tagPartHeader, []int{part.ColLo, part.ColHi})
			c.SendFloat64s(0, tagPartData, part.Data.Data)
			return
		}

		// Main process: own partition directly into P, then merge the
		// incoming partial matrices.
		n := local.N()
		P := linalg.NewDense(n, n)
		if hi > lo {
			part := assembly.FillPartial(local, in, lo, hi)
			part.MergeInto(P)
		}
		for r := 1; r < size; r++ {
			hdr := c.RecvInts(r, tagPartHeader)
			colLo, colHi := hdr[0], hdr[1]
			if colHi < colLo {
				continue
			}
			data := c.RecvFloat64s(r, tagPartData)
			part := &assembly.Partial{
				N: n, ColLo: colLo, ColHi: colHi,
				Data: linalg.NewDenseFrom(n, colHi-colLo+1, data),
			}
			part.MergeInto(P)
		}
		assembly.Symmetrize(P)
		result = P
	})
	return result
}
