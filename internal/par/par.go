// Package par implements the shared-memory parallel system setup of paper
// Section 5.1 / Figure 4: the k-range of Algorithm 1 is split into
// contiguous partitions, D workers (the OpenMP-thread analog) compute
// their template interactions into private partial matrices, and the
// results are merged into the shared system matrix P as each partition
// completes.
//
// Two scheduling modes are provided. Static mode is the paper's Algorithm
// 1 verbatim: exactly D equal partitions. The default dynamic mode keeps
// the same contiguous-partition structure but splits the k-range into
// ChunksPerWorker*D chunks claimed from a shared queue — the standard
// OpenMP "schedule(dynamic)" refinement that absorbs the residual cost
// variance between template pairs. The ablation benchmark
// (BenchmarkAblationDivision) quantifies the difference.
package par

import (
	"runtime"
	"sync"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/linalg"
)

// Options configures the shared-memory fill.
type Options struct {
	// Workers is the number of parallel computing nodes D. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Static selects the paper's exact equal division into D partitions
	// instead of dynamic chunking.
	Static bool
	// ChunksPerWorker sets the dynamic-mode chunk count multiplier
	// (default 16).
	ChunksPerWorker int
}

// Fill runs the parallelized system setup and returns the symmetrized,
// unscaled system matrix P.
func Fill(set *basis.Set, in *assembly.Integrator, opt Options) *linalg.Dense {
	d := opt.Workers
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	cpw := opt.ChunksPerWorker
	if cpw <= 0 {
		cpw = 16
	}
	n := set.N()
	P := linalg.NewDense(n, n)
	K := assembly.NumPairs(set.M())

	nparts := d
	var bounds []int64
	if opt.Static {
		// The paper's Algorithm 1: one equal partition per node.
		bounds = assembly.PartitionK(K, nparts)
	} else {
		nparts = d * cpw
		bounds = assembly.PartitionKCost(set, in, nparts)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < d; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range next {
				lo, hi := bounds[p], bounds[p+1]
				if hi <= lo {
					continue
				}
				part := assembly.FillPartial(set, in, lo, hi)
				// Adjacent partitions can share one column of P
				// (paper Figure 5); merges are serialized on a
				// mutex, whose cost is negligible next to the
				// integration work.
				mu.Lock()
				part.MergeInto(P)
				mu.Unlock()
			}
		}()
	}
	for p := 0; p < nparts; p++ {
		next <- p
	}
	close(next)
	wg.Wait()
	assembly.Symmetrize(P)
	return P
}
