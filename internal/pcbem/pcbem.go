// Package pcbem is the classical piecewise-constant boundary element method
// that the paper positions as the baseline representation: conductor
// surfaces are discretized into rectangular panels, each carrying an
// unknown constant charge density, with Galerkin interactions assembled
// from the closed-form integrals of internal/kernel.
//
// It provides the dense direct solve (the accuracy reference used for
// Table 2's error figures), and the generic Krylov plumbing shared by the
// multipole (internal/fmm) and precorrected-FFT (internal/pfft)
// acceleration baselines. The expensive layers are throughput-oriented:
// AssembleDense fills the symmetric halves in parallel with cost-balanced
// row ranges on a sched executor, and SolveIterative runs one GMRES per
// conductor concurrently, each with its own preallocated reusable
// workspace (the operators' Apply implementations are safe for
// concurrent use).
package pcbem

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Problem is a panelized extraction problem.
type Problem struct {
	Panels        []geom.Panel
	NumConductors int
	Eps           float64
	Cfg           *kernel.Config
	// Par optionally supplies the executor for parallel assembly and
	// dense matvecs (e.g. a shared sched.Pool); nil means a throwaway
	// sched.Local executor sized by GOMAXPROCS.
	Par sched.Executor
}

// NewProblem panelizes a structure with the given maximum panel edge.
func NewProblem(st *geom.Structure, maxEdge float64) (*Problem, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	panels := st.Panelize(maxEdge)
	if len(panels) == 0 {
		return nil, errors.New("pcbem: no panels generated")
	}
	return &Problem{
		Panels:        panels,
		NumConductors: st.NumConductors(),
		Eps:           kernel.Eps0,
		Cfg:           kernel.DefaultConfig(),
	}, nil
}

// exec returns the configured executor (a fresh local one by default).
func (p *Problem) exec() sched.Executor {
	if p.Par != nil {
		return p.Par
	}
	return sched.Local(0)
}

// N returns the number of unknowns (panels).
func (p *Problem) N() int { return len(p.Panels) }

// Entry computes one scaled Galerkin matrix entry P_ij.
func (p *Problem) Entry(i, j int) float64 {
	v := kernel.RectGalerkin(p.Cfg, p.Panels[i].Rect, p.Panels[j].Rect)
	return kernel.Scale(v, p.Eps)
}

// assembleChunks is the target task count for the parallel fill: several
// per worker so the cost-balanced ranges load-balance under stealing.
const assembleChunks = 64

// triangularRowBounds partitions rows [0, n) into chunks carrying
// roughly equal upper-triangle entry counts (row i holds n-i entries).
func triangularRowBounds(n, chunks int) []int {
	if chunks > n {
		chunks = n
	}
	total := int64(n) * int64(n+1) / 2
	target := total / int64(chunks)
	bounds := make([]int, 1, chunks+1)
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(n - i)
		if acc >= target && len(bounds) < chunks {
			bounds = append(bounds, i+1)
			acc = 0
		}
	}
	return append(bounds, n)
}

// AssembleDense builds the full N x N Galerkin matrix: the upper
// triangle is integrated in parallel over cost-balanced row ranges, then
// mirrored (each entry is computed exactly once).
func (p *Problem) AssembleDense() *linalg.Dense {
	n := p.N()
	m := linalg.NewDense(n, n)
	ex := p.exec()
	bounds := triangularRowBounds(n, assembleChunks)
	ex.Map(len(bounds)-1, func(t int) {
		for i := bounds[t]; i < bounds[t+1]; i++ {
			row := m.Row(i)
			for j := i; j < n; j++ {
				row[j] = p.Entry(i, j)
			}
		}
	})
	// Mirror the strictly-lower triangle from the filled upper half.
	chunk := (n + assembleChunks - 1) / assembleChunks
	ex.Map((n+chunk-1)/chunk, func(t int) {
		lo := t * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j := 0; j < i; j++ {
				row[j] = m.At(j, i)
			}
		}
	})
	return m
}

// RHS builds the N x n right-hand-side matrix Phi: row i has the panel
// area in the column of its conductor (Galerkin testing of the unit
// potential).
func (p *Problem) RHS() *linalg.Dense {
	phi := linalg.NewDense(p.N(), p.NumConductors)
	for i, pan := range p.Panels {
		phi.Set(i, pan.Conductor, pan.Area())
	}
	return phi
}

// Result is a completed piecewise-constant extraction.
type Result struct {
	C          *linalg.Dense // n x n capacitance matrix (F)
	Rho        *linalg.Dense // N x n panel charge densities per excitation
	NumPanels  int
	Iterations int // total Krylov iterations (0 for direct)
	SetupTime  time.Duration
	SolveTime  time.Duration
}

// SolveDense assembles the dense system and solves it directly (Cholesky
// with LU fallback). It is O(N^2) memory and O(N^3) time: the "system
// solving bottleneck" the paper's introduction describes.
func (p *Problem) SolveDense() (*Result, error) {
	t0 := time.Now()
	P := p.AssembleDense()
	phi := p.RHS()
	setup := time.Since(t0)

	t1 := time.Now()
	var rho *linalg.Dense
	if ch, err := linalg.NewCholesky(P); err == nil {
		rho = ch.SolveMatrix(phi)
	} else {
		lu, luErr := linalg.NewLU(P)
		if luErr != nil {
			return nil, fmt.Errorf("pcbem: dense solve failed: %w", luErr)
		}
		rho = linalg.NewDense(p.N(), p.NumConductors)
		col := make([]float64, p.N())
		for j := 0; j < p.NumConductors; j++ {
			for i := 0; i < p.N(); i++ {
				col[i] = phi.At(i, j)
			}
			lu.Solve(col, col)
			for i := 0; i < p.N(); i++ {
				rho.Set(i, j, col[i])
			}
		}
	}
	c := p.capFromRho(phi, rho)
	return &Result{
		C: c, Rho: rho, NumPanels: p.N(),
		SetupTime: setup, SolveTime: time.Since(t1),
	}, nil
}

// SolveIterative solves the system with GMRES through an arbitrary matvec
// operator (dense, multipole-accelerated, or precorrected-FFT), with a
// Jacobi preconditioner built from the exact diagonal. All conductor
// right-hand sides are solved concurrently, each column on its own
// goroutine with a preallocated reusable GMRES workspace; the heavy
// per-iteration work (the operator Apply) runs on whatever parallel
// resources the operator was configured with, so concurrent columns keep
// a shared worker pool saturated between Krylov synchronization points.
// The operator's Apply must be safe for concurrent use (the fmm and pfft
// operators and DenseOp all are).
func (p *Problem) SolveIterative(op linalg.Matvec, tol float64) (*Result, error) {
	if op.Dim() != p.N() {
		return nil, errors.New("pcbem: operator dimension mismatch")
	}
	if tol == 0 {
		tol = 1e-4
	}
	n := p.N()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = p.Entry(i, i)
	}
	phi := p.RHS()
	rho := linalg.NewDense(n, p.NumConductors)
	t1 := time.Now()
	nc := p.NumConductors
	iters := make([]int, nc)
	errs := make([]error, nc)
	var wg sync.WaitGroup
	for j := 0; j < nc; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ws := linalg.NewGMRESWorkspace(n, 60)
			b := make([]float64, n)
			x := make([]float64, n)
			for i := 0; i < n; i++ {
				b[i] = phi.At(i, j)
			}
			res, err := linalg.GMRESWith(ws, op, x, b, linalg.GMRESOptions{
				Tol:     tol,
				Restart: 60,
				Precond: func(dst, r []float64) {
					for i := range dst {
						dst[i] = r[i] / diag[i]
					}
				},
			})
			if err != nil {
				errs[j] = fmt.Errorf("pcbem: GMRES failed on conductor %d: %w", j, err)
				return
			}
			if !res.Converged {
				errs[j] = fmt.Errorf("pcbem: GMRES stalled on conductor %d (res %g)", j, res.Residual)
				return
			}
			iters[j] = res.Iterations
			for i := 0; i < n; i++ {
				rho.Set(i, j, x[i])
			}
		}(j)
	}
	wg.Wait()
	total := 0
	for j := 0; j < nc; j++ {
		if errs[j] != nil {
			return nil, errs[j]
		}
		total += iters[j]
	}
	c := p.capFromRho(phi, rho)
	return &Result{
		C: c, Rho: rho, NumPanels: n,
		Iterations: total, SolveTime: time.Since(t1),
	}, nil
}

// capFromRho computes C = Phi^T rho, symmetrized.
func (p *Problem) capFromRho(phi, rho *linalg.Dense) *linalg.Dense {
	n := phi.Cols
	c := linalg.NewDense(n, n)
	linalg.ParMul(p.exec(), c, phi.Transpose(), rho)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (c.At(i, j) + c.At(j, i))
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c
}

// DenseOp exposes the dense assembled matrix as a Matvec for testing the
// iterative path independently of the accelerated operators; above the
// linalg.DenseOpParCutoff size its matvec runs row-blocked on the
// problem's executor.
func (p *Problem) DenseOp() linalg.Matvec {
	return linalg.DenseOp{M: p.AssembleDense(), Exec: p.Par}
}
