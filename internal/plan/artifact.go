// Artifact persistence: the plan's expensive stage artifacts — the
// near-field values (dense matrix, FMM CSR values, pFFT precorrection
// rows) and the preconditioner's block Cholesky factors — survive
// process restarts and travel between replicas through an ArtifactStore
// (internal/artifact on disk, fronted by a peer-fetching resolver in
// internal/serve).
//
// The store is content-addressed: the key is a sha256 over the exact
// inputs that determine the artifact bit-for-bit — panelization edge,
// dielectric, kernel configuration, resolved backend with its
// topology-relevant tuning, and every conductor box's float64 bits. Two
// requests with identical keys rebuild identical CSR/row layouts (the
// layout is a deterministic function of the geometry), so only the
// value arrays are stored; indices and interaction lists are rebuilt,
// which keeps artifacts at one or two float64 per entry. The cheap
// O(N log N) Discretization and Topology stages are deliberately not
// persisted — they carry no kernel integrals and rebuild faster than
// they deserialize.
//
// Artifacts can never change results, only construction time: a decoded
// payload is adopted only when its shape matches the layout the build
// just produced (length checks in fmm, per-row checks in pfft, dim
// checks here), and any mismatch or corruption degrades to a fresh
// integration.
package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/pfft"
)

// ArtifactStore is the persistence hook a Plan reads stage artifacts
// through before building and writes through after. Implementations
// must be safe for concurrent use and are free to drop entries (LRU
// budget, corruption, peer miss): Get returning ok=false simply costs a
// fresh build, and Put is fire-and-forget (a failed write is the
// implementation's to log). internal/artifact provides the disk-backed
// implementation; internal/serve layers peer fetching on top.
type ArtifactStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// Artifact key suffixes: one family hash owns one entry per persisted
// stage.
const (
	nearSuffix = "-near" // near-field values (backend-tagged payload)
	factSuffix = "-fact" // block-Jacobi Cholesky factors
)

// Payload tags (first byte) keep a near-field blob from being decoded
// by the wrong backend after a store mixup.
const (
	artTagDense = 'D'
	artTagFMM   = 'F'
	artTagPFFT  = 'P'
	artTagFact  = 'K'
)

// artifactKey returns the family content hash for the current build,
// or "" when persistence is off or the build is unkeyable. The kernel
// configuration hashed is the effective one the backend integrates with
// (a backend-level Cfg override wins over the plan's).
func (p *Plan) artifactKey(st *geom.Structure, be op.Backend, fo *fmm.Options, po *pfft.Options) string {
	if p.opt.Artifacts == nil {
		return ""
	}
	cfg := p.cfg
	switch {
	case fo != nil && fo.Cfg != nil:
		cfg = fo.Cfg
	case po != nil && po.Cfg != nil:
		cfg = po.Cfg
	}
	key, ok := artifactHash(p.opt.MaxEdge, p.eps, cfg, be, fo, po, st)
	if !ok {
		return ""
	}
	return key
}

// artifactHash computes the family content hash, or ok=false when the
// build is unkeyable (function-valued options that cannot participate
// in a content hash, e.g. a custom MathOps provider or an fmm NearEval
// override).
//
// Backend tuning values are hashed raw (unresolved zero defaults are
// distinct from their explicit equivalents): identical Options always
// produce identical keys, which is the contract that matters; a
// zero-vs-explicit-default mismatch only costs a missed dedup.
func artifactHash(maxEdge, eps float64, cfg *kernel.Config, be op.Backend,
	fo *fmm.Options, po *pfft.Options, st *geom.Structure) (string, bool) {
	var opsTag byte
	switch cfg.Ops {
	case nil, kernel.StdOps:
		opsTag = 0
	case kernel.FastOps:
		opsTag = 1
	default:
		return "", false
	}
	if fo != nil && fo.NearEval != nil {
		return "", false
	}
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	h.Write([]byte{'p', 'b', 'a', '1', opsTag, byte(be)})
	wf(maxEdge)
	wf(eps)
	wf(cfg.FarFactor)
	wf(cfg.MidFactor)
	w64(uint64(cfg.QuadOrder))
	if cfg.DisableApprox {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	switch {
	case fo != nil:
		w64(uint64(fo.LeafSize))
		wf(fo.Theta)
		wf(fo.NearFactor)
		wf(fo.Eps)
	case po != nil:
		wf(po.GridSpacing)
		w64(uint64(po.MaxNodes))
		wf(po.NearRadius)
		wf(po.Eps)
	}
	w64(uint64(len(st.Conductors)))
	for _, c := range st.Conductors {
		w64(uint64(len(c.Boxes)))
		for _, b := range c.Boxes {
			wf(b.Min.X)
			wf(b.Min.Y)
			wf(b.Min.Z)
			wf(b.Max.X)
			wf(b.Max.Y)
			wf(b.Max.Z)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// appendFloats appends the little-endian bits of v.
func appendFloats(b []byte, v []float64) []byte {
	for _, f := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	return b
}

// readFloats decodes n float64 from data, nil-checked by the caller via
// the ok return.
func readFloats(data []byte, n int) ([]float64, []byte, bool) {
	need := int64(n) * 8
	if int64(len(data)) < need {
		return nil, nil, false
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	return v, data[need:], true
}

func encodeDenseArtifact(d *linalg.Dense) []byte {
	b := make([]byte, 0, 1+16+8*len(d.Data))
	b = append(b, artTagDense)
	b = binary.LittleEndian.AppendUint64(b, uint64(d.Rows))
	b = binary.LittleEndian.AppendUint64(b, uint64(d.Cols))
	return appendFloats(b, d.Data)
}

// decodeDenseArtifact rejects any payload whose dims disagree with the
// n-panel build it is being adopted into.
func decodeDenseArtifact(data []byte, n int) *linalg.Dense {
	if len(data) < 17 || data[0] != artTagDense {
		return nil
	}
	rows := binary.LittleEndian.Uint64(data[1:])
	cols := binary.LittleEndian.Uint64(data[9:])
	if rows != uint64(n) || cols != uint64(n) {
		return nil
	}
	vals, rest, ok := readFloats(data[17:], n*n)
	if !ok || len(rest) != 0 {
		return nil
	}
	return &linalg.Dense{Rows: n, Cols: n, Data: vals}
}

func encodeFMMNearArtifact(vals []float64) []byte {
	b := make([]byte, 0, 9+8*len(vals))
	b = append(b, artTagFMM)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(vals)))
	return appendFloats(b, vals)
}

func decodeFMMNearArtifact(data []byte) []float64 {
	if len(data) < 9 || data[0] != artTagFMM {
		return nil
	}
	n := binary.LittleEndian.Uint64(data[1:])
	if n > uint64(len(data))/8 {
		return nil
	}
	vals, rest, ok := readFloats(data[9:], int(n))
	if !ok || len(rest) != 0 {
		return nil
	}
	return vals
}

func encodePFFTNearArtifact(a *pfft.NearArtifact) []byte {
	b := make([]byte, 0, 17+4*len(a.RowLen)+8*(len(a.Val)+len(a.Exact)))
	b = append(b, artTagPFFT)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(a.RowLen)))
	for _, l := range a.RowLen {
		b = binary.LittleEndian.AppendUint32(b, uint32(l))
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(a.Val)))
	b = appendFloats(b, a.Val)
	return appendFloats(b, a.Exact)
}

// decodePFFTNearArtifact rejects any payload whose row count disagrees
// with the n-panel build, whose row lengths are negative, or whose flat
// arrays do not sum to the row total.
func decodePFFTNearArtifact(data []byte, n int) *pfft.NearArtifact {
	if len(data) < 9 || data[0] != artTagPFFT {
		return nil
	}
	rows := binary.LittleEndian.Uint64(data[1:])
	if rows != uint64(n) {
		return nil
	}
	data = data[9:]
	if int64(len(data)) < int64(n)*4+8 {
		return nil
	}
	a := &pfft.NearArtifact{RowLen: make([]int32, n)}
	var total int64
	for i := range a.RowLen {
		l := int32(binary.LittleEndian.Uint32(data[i*4:]))
		if l < 0 {
			return nil
		}
		a.RowLen[i] = l
		total += int64(l)
	}
	data = data[n*4:]
	if binary.LittleEndian.Uint64(data) != uint64(total) {
		return nil
	}
	var ok bool
	if a.Val, data, ok = readFloats(data[8:], int(total)); !ok {
		return nil
	}
	var rest []byte
	if a.Exact, rest, ok = readFloats(data, int(total)); !ok || len(rest) != 0 {
		return nil
	}
	return a
}

// encodeFactorArtifact serializes the Factorization stage: each
// factorized near block's Cholesky L keyed by its exact unknown
// sequence (blockKey bytes). Keys are sorted so identical factor maps
// serialize to identical bytes.
func encodeFactorArtifact(m map[string]*linalg.Cholesky) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := []byte{artTagFact}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(keys)))
	for _, k := range keys {
		l := m[k].L
		b = binary.LittleEndian.AppendUint32(b, uint32(len(k)))
		b = append(b, k...)
		b = binary.LittleEndian.AppendUint32(b, uint32(l.Rows))
		b = appendFloats(b, l.Data)
	}
	return b
}

func decodeFactorArtifact(data []byte) map[string]*linalg.Cholesky {
	if len(data) < 9 || data[0] != artTagFact {
		return nil
	}
	count := binary.LittleEndian.Uint64(data[1:])
	data = data[9:]
	if count > uint64(len(data)) { // each entry takes well over one byte
		return nil
	}
	m := make(map[string]*linalg.Cholesky, count)
	for e := uint64(0); e < count; e++ {
		if len(data) < 4 {
			return nil
		}
		kl := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint64(len(data)) < uint64(kl)+4 {
			return nil
		}
		key := string(data[:kl])
		data = data[kl:]
		nu := binary.LittleEndian.Uint32(data)
		data = data[4:]
		n := int(nu)
		// A block's key holds one uint32 per unknown — dims must agree.
		if n < 0 || uint32(n*4) != kl {
			return nil
		}
		vals, rest, ok := readFloats(data, n*n)
		if !ok {
			return nil
		}
		data = rest
		m[key] = &linalg.Cholesky{L: &linalg.Dense{Rows: n, Cols: n, Data: vals}}
	}
	if len(data) != 0 {
		return nil
	}
	return m
}

// artifactFactors turns a decoded factor map into a NewPrebuilt lookup.
// No rigid-motion class check is needed: the store key pins the exact
// geometry, so a block covering the same unknown sequence has bitwise
// the same matrix.
func artifactFactors(m map[string]*linalg.Cholesky) func(idx []int32) *linalg.Cholesky {
	var buf []byte
	return func(ix []int32) *linalg.Cholesky {
		return m[string(blockKey(&buf, ix))]
	}
}

// chainFactors tries lookups in order (in-memory previous variant
// first, then the decoded artifact).
func chainFactors(a, b func(idx []int32) *linalg.Cholesky) func(idx []int32) *linalg.Cholesky {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(ix []int32) *linalg.Cholesky {
		if c := a(ix); c != nil {
			return c
		}
		return b(ix)
	}
}
