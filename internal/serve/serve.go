// Package serve implements the long-running extraction service behind
// the capxd daemon: an HTTP/JSON front end over one shared
// batch.Engine, so the plan, basis, kernel-table and pair-integral
// caches built up by PRs 1-4 amortize across requests and process
// lifetime instead of dying with each CLI invocation.
//
// # Endpoints
//
//	POST /extract   one geometry through the unified operator pipeline
//	                (parbem.ExtractPipeline semantics, geomio payload);
//	                async=true enqueues and returns a job id
//	POST /sweep     a stream of geometry variants through the engine's
//	                family-keyed plan cache, or a template a(h), b(h)
//	                h-sweep (extract.SweepH); responds with NDJSON,
//	                one point per line, errors as per-point entries
//	GET  /jobs/{id} status and result of a submitted job
//	GET  /healthz   liveness
//	GET  /stats     queue gauges, job counters, engine cache counters
//
// The response schema matches capx -json (snake_case telemetry fields,
// c_farads matrix rows), so serving and CLI tooling share consumers;
// capx -remote http://... rides this API directly.
//
// # Admission control and worker budgeting
//
// Every solve enters a bounded job queue; when the queue is full the
// server rejects immediately with a structured queue_full error (HTTP
// 429) instead of building unbounded backlog. A fixed set of runner
// goroutines drains the queue, and each running job's stage builds and
// operator applies execute on a sched.Budgeted view of the engine's
// persistent worker pool, capped at WorkerBudget workers per request —
// concurrent requests divide the pool instead of each spawning
// GOMAXPROCS goroutines on top of one another. The one exception is
// template sweeps: extract.SweepH owns its machine-wide fan-out outside
// the engine pool, so those serialize on a dedicated single slot
// instead.
//
// Malformed input (bad JSON, bad geometry text, NaN coordinates,
// zero-area boxes, over-limit panel estimates) is rejected at decode
// time with a *RequestError before any solver state is touched; the
// boundary is fuzzed (FuzzDecodeRequest) to never panic.
//
// # Cache sharing
//
// All requests share the engine's state LRU and plan cache: identical
// geometries are pure cache hits, and geometry variants of one
// structural family — an h-sweep arriving as separate HTTP requests —
// reuse each other's near-field integrals, block factorizations and
// warm starts exactly as an explicit parbem.Plan sweep would
// (TestServeWarmCacheSpeedup pins the amortization at >= 2x).
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/batch"
	"parbem/internal/extract"
	"parbem/internal/geom"
)

// Options configures a Server. The zero value serves with a fresh
// GOMAXPROCS engine, a queue of 64, one runner and no worker budget
// (each job may use the whole pool).
type Options struct {
	// Engine optionally supplies the batch engine; nil creates one
	// owned by the server (closed by Close) from the fields below.
	Engine *batch.Engine
	// Workers sizes an owned engine's persistent pool (0 = GOMAXPROCS).
	Workers int
	// WorkerBudget caps how many pool workers one job occupies
	// (0 = the whole pool) via the engine's PlanWorkers budget. It
	// applies to an owned engine only; a supplied Engine keeps its own
	// PlanWorkers setting, which becomes the server's effective budget
	// (reported by /stats and used to derive Runners).
	WorkerBudget int
	// QueueDepth bounds the admission queue (0 = 64).
	QueueDepth int
	// Runners is the number of concurrent jobs (0 = pool/budget when a
	// budget is set, else 1).
	Runners int
	// CacheEntries / PairCacheEntries size an owned engine's caches
	// (0 = engine defaults).
	CacheEntries     int
	PairCacheEntries int
	// Limits bound individual requests (zero value = defaults).
	Limits Limits
	// JobHistory is how many finished jobs stay queryable via
	// GET /jobs/{id} (0 = 256).
	JobHistory int
}

// Server is the extraction service. Create with New, expose with
// Handler, release with Close. Safe for concurrent use.
type Server struct {
	opt    Options
	limits Limits
	eng    *batch.Engine
	ownEng bool

	queue   chan *job
	runners int
	wg      sync.WaitGroup
	// tmplSem serializes template sweeps: extract.SweepH fans out to
	// GOMAXPROCS solver goroutines with its own per-chunk plans,
	// outside the engine pool the per-job worker budget bounds, so at
	// most one such sweep may use the machine at a time.
	tmplSem chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	hist   []string // finished job ids in retirement order
	seq    uint64
	closed bool

	start time.Time
	c     counters

	// sweepH runs the template h-sweep (extract.SweepH); tests inject
	// mid-sweep failures through it to pin the per-point error
	// reporting at the service edge.
	sweepH func(geom.CrossingPairSpec, []float64, float64) ([]*extract.ArchFit, error)
}

// counters are the monotonic job/request counters of /stats. Queued and
// Running are gauges.
type counters struct {
	accepted     atomic.Uint64
	rejectedFull atomic.Uint64
	badRequests  atomic.Uint64
	completed    atomic.Uint64
	failed       atomic.Uint64
	queued       atomic.Int64
	running      atomic.Int64

	extracts         atomic.Uint64
	sweeps           atomic.Uint64
	sweepPoints      atomic.Uint64
	sweepPointErrors atomic.Uint64
}

// jobState is the lifecycle of a job.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return fmt.Sprintf("jobState(%d)", int32(s))
}

// job is one admitted request. run executes on a runner goroutine;
// stream, when non-nil, receives per-point sweep messages and is closed
// by the runner when the job finishes. ctx is the requester's context:
// a job whose client has gone is skipped when popped (a solve already
// in flight runs to completion — the engine has no cancellation points
// — but sweeps stop between points). Async jobs carry the background
// context; they deliberately outlive their submitting request.
type job struct {
	id    string
	kind  string // "extract" | "sweep"
	state atomic.Int32
	ctx   context.Context

	run    func() (any, error)
	stream chan any

	result any
	err    error
	done   chan struct{}

	enqueued time.Time
	started  time.Time
	finished time.Time
}

// New creates a server and starts its runner goroutines.
func New(opt Options) *Server {
	s := &Server{
		opt:     opt,
		limits:  opt.Limits.withDefaults(),
		eng:     opt.Engine,
		jobs:    make(map[string]*job),
		start:   time.Now(),
		sweepH:  extract.SweepH,
		tmplSem: make(chan struct{}, 1),
	}
	if s.eng == nil {
		s.eng = batch.New(batch.Options{
			Workers:          opt.Workers,
			PlanWorkers:      opt.WorkerBudget,
			CacheEntries:     opt.CacheEntries,
			PairCacheEntries: opt.PairCacheEntries,
		})
		s.ownEng = true
	}
	// The effective budget is whatever the engine actually enforces: a
	// supplied engine keeps its own PlanWorkers, and deriving runner
	// counts (or reporting /stats) from an unenforced request-level
	// budget would oversubscribe the pool.
	s.opt.WorkerBudget = s.eng.PlanWorkers()
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	s.queue = make(chan *job, depth)
	s.runners = opt.Runners
	if s.runners <= 0 {
		if s.opt.WorkerBudget > 0 {
			s.runners = s.eng.Workers() / s.opt.WorkerBudget
		}
		if s.runners < 1 {
			s.runners = 1
		}
	}
	s.wg.Add(s.runners)
	for i := 0; i < s.runners; i++ {
		go s.runner()
	}
	return s
}

// Engine exposes the shared batch engine (for tests and embedding).
func (s *Server) Engine() *batch.Engine { return s.eng }

// Close stops admitting jobs, drains the queue, waits for running jobs
// and closes an owned engine.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	if s.ownEng {
		s.eng.Close()
	}
}

// admit registers and enqueues a job; a full queue or closing server
// rejects with a structured error.
func (s *Server) admit(j *job) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &RequestError{Code: CodeShuttingDown, Message: "server is shutting down"}
	}
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	j.enqueued = time.Now()
	// Count before enqueueing: a runner may pop and decrement the
	// queued gauge the instant the send succeeds.
	s.c.accepted.Add(1)
	s.c.queued.Add(1)
	select {
	case s.queue <- j:
	default:
		s.c.accepted.Add(^uint64(0))
		s.c.queued.Add(-1)
		s.mu.Unlock()
		s.c.rejectedFull.Add(1)
		return &RequestError{
			Code:    CodeQueueFull,
			Message: fmt.Sprintf("job queue full (%d pending)", cap(s.queue)),
		}
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	return nil
}

// runner drains the queue until Close.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue {
		s.c.queued.Add(-1)
		s.c.running.Add(1)
		j.started = time.Now()
		j.state.Store(int32(jobRunning))

		var v any
		var err error
		if j.ctx != nil && j.ctx.Err() != nil {
			// The requester is gone (disconnect or timeout while the
			// job sat in the queue): don't burn pool workers on a
			// result nobody will read.
			err = &RequestError{Code: CodeCancelled, Message: "client went away before the job started"}
			if j.stream != nil {
				close(j.stream)
			}
		} else {
			v, err = runJob(j)
		}

		j.result, j.err = v, err
		j.finished = time.Now()
		if err != nil {
			j.state.Store(int32(jobFailed))
			s.c.failed.Add(1)
		} else {
			j.state.Store(int32(jobDone))
			s.c.completed.Add(1)
		}
		s.c.running.Add(-1)
		close(j.done)
		s.retire(j)
	}
}

// runJob executes one job with panic containment: jobs run on raw
// runner goroutines (not HTTP handler goroutines), so without a recover
// here one latent solver panic would kill the whole daemon and every
// queued job. A sweep job's own deferred close(stream) runs during the
// unwind, so the streaming handler cannot hang on a panicked job.
func runJob(j *job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v = nil
			err = &RequestError{Code: CodeInternal, Message: fmt.Sprintf("internal panic: %v", r)}
		}
	}()
	return j.run()
}

// retire keeps the finished-job history bounded.
func (s *Server) retire(j *job) {
	limit := s.opt.JobHistory
	if limit <= 0 {
		limit = 256
	}
	s.mu.Lock()
	s.hist = append(s.hist, j.id)
	for len(s.hist) > limit {
		delete(s.jobs, s.hist[0])
		s.hist = s.hist[1:]
	}
	s.mu.Unlock()
}

// lookup returns a registered job.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// newExtractJob wraps an extract request as a queue job.
func (s *Server) newExtractJob(ctx context.Context, req *ExtractRequest, st *geom.Structure) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{kind: "extract", done: make(chan struct{}), ctx: ctx}
	j.run = func() (any, error) {
		s.c.extracts.Add(1)
		res, err := s.runExtract(j.id, req, st)
		return res, err
	}
	return j
}

// newSweepJob wraps a sweep request as a streaming queue job.
func (s *Server) newSweepJob(ctx context.Context, req *SweepRequest, sts []*geom.Structure) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{kind: "sweep", done: make(chan struct{}), stream: make(chan any, 16), ctx: ctx}
	j.run = func() (any, error) {
		s.c.sweeps.Add(1)
		defer close(j.stream)
		return s.runSweep(j, req, sts)
	}
	return j
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSec    float64 `json:"uptime_sec"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	Runners      int     `json:"runners"`
	PoolWorkers  int     `json:"pool_workers"`
	WorkerBudget int     `json:"worker_budget"`

	Accepted          uint64 `json:"jobs_accepted"`
	RejectedQueueFull uint64 `json:"jobs_rejected_queue_full"`
	BadRequests       uint64 `json:"bad_requests"`
	Completed         uint64 `json:"jobs_completed"`
	Failed            uint64 `json:"jobs_failed"`
	Queued            int64  `json:"jobs_queued"`
	Running           int64  `json:"jobs_running"`

	Extracts         uint64 `json:"extracts"`
	Sweeps           uint64 `json:"sweeps"`
	SweepPoints      uint64 `json:"sweep_points"`
	SweepPointErrors uint64 `json:"sweep_point_errors"`

	Engine batch.Stats `json:"engine"`
}

// Stats snapshots the server and engine counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeSec:    time.Since(s.start).Seconds(),
		QueueDepth:   len(s.queue),
		QueueCap:     cap(s.queue),
		Runners:      s.runners,
		PoolWorkers:  s.eng.Workers(),
		WorkerBudget: s.opt.WorkerBudget,

		Accepted:          s.c.accepted.Load(),
		RejectedQueueFull: s.c.rejectedFull.Load(),
		BadRequests:       s.c.badRequests.Load(),
		Completed:         s.c.completed.Load(),
		Failed:            s.c.failed.Load(),
		Queued:            s.c.queued.Load(),
		Running:           s.c.running.Load(),

		Extracts:         s.c.extracts.Load(),
		Sweeps:           s.c.sweeps.Load(),
		SweepPoints:      s.c.sweepPoints.Load(),
		SweepPointErrors: s.c.sweepPointErrors.Load(),

		Engine: s.eng.Stats(),
	}
}
