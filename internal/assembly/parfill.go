package assembly

import (
	"sync"

	"parbem/internal/basis"
	"parbem/internal/sched"
)

// FillRanges is the chunk-queue core shared by every parallel fill path:
// it computes the partial slab of each k-chunk [bounds[t], bounds[t+1])
// on the executor's workers and hands each finished slab to merge. Merge
// calls are serialized (the paper's merge mutex, Figure 4, whose cost is
// negligible next to the integration work), so callers can accumulate
// into shared state without their own locking.
//
// The shared-memory backend passes sched.Local or a shared sched.Pool and
// merges into the full system matrix; a distributed-memory rank passes a
// rank-local executor and merges into its private partial slab before
// serializing it onto the network.
func FillRanges(set *basis.Set, in *Integrator, bounds []int64, ex sched.Executor, merge func(*Partial)) {
	var mu sync.Mutex
	ex.Map(len(bounds)-1, func(t int) {
		lo, hi := bounds[t], bounds[t+1]
		if hi <= lo {
			return
		}
		part := FillPartial(set, in, lo, hi)
		mu.Lock()
		merge(part)
		mu.Unlock()
	})
}
