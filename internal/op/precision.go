package op

import (
	"context"
	"fmt"
	"math"

	"parbem/internal/costmodel"
	"parbem/internal/linalg"
)

// Precision selects the arithmetic of the accelerated matvec inside the
// Krylov solve.
type Precision int

// Matvec precisions.
const (
	// PrecisionAuto lets the cost model decide
	// (costmodel.SelectPrecision): mixed when the backend has a float32
	// mirror, the problem is large enough to amortize it, and the
	// tolerance is reachable through fp32 inner arithmetic.
	PrecisionAuto Precision = iota
	// PrecisionFP64 runs every apply in float64.
	PrecisionFP64
	// PrecisionMixed runs the inner Krylov applies through the
	// operator's float32 mirror, wrapped in float64 iterative
	// refinement; the converged result still satisfies the requested
	// fp64 residual tolerance.
	PrecisionMixed
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case PrecisionAuto:
		return "auto"
	case PrecisionFP64:
		return "fp64"
	case PrecisionMixed:
		return "mixed"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// ParsePrecision parses a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "auto", "":
		return PrecisionAuto, nil
	case "fp64":
		return PrecisionFP64, nil
	case "mixed":
		return PrecisionMixed, nil
	}
	return PrecisionAuto, fmt.Errorf("op: unknown precision %q (want auto, fp64 or mixed)", s)
}

// MixedApplier is implemented by operators carrying an optional float32
// mirror (fmm.Operator, pfft.Operator): EnableMixed builds the mirror
// once, ApplyMixed runs the matvec through it with float64 vectors at
// the interface.
type MixedApplier interface {
	Operator
	EnableMixed()
	MixedEnabled() bool
	ApplyMixed(dst, x []float64)
}

// mixedMatvec adapts ApplyMixed to linalg.Matvec for the inner solves.
type mixedMatvec struct{ ma MixedApplier }

func (m mixedMatvec) Dim() int               { return m.ma.Dim() }
func (m mixedMatvec) Apply(dst, x []float64) { m.ma.ApplyMixed(dst, x) }

// resolvePrecision enables the operator's float32 mirror when the
// requested (or cost-model-selected) precision is mixed. Dense and
// direct solves, and operators without a mirror, stay fp64 regardless.
func (p *Pipeline) resolvePrecision() {
	if p.opt.Direct {
		return
	}
	ma, ok := p.a.(MixedApplier)
	if !ok {
		return
	}
	prec := p.opt.Precision
	if prec == PrecisionAuto {
		w := costmodel.Workload{Panels: p.a.Dim(), Tol: p.opt.Tol}
		if costmodel.SelectPrecision(w) == costmodel.ChooseMixed {
			prec = PrecisionMixed
		}
	}
	if prec != PrecisionMixed {
		return
	}
	ma.EnableMixed()
	if ma.MixedEnabled() {
		p.mixedA = ma
	}
}

// Precision reports the resolved matvec arithmetic of this pipeline
// (never PrecisionAuto).
func (p *Pipeline) Precision() Precision {
	if p.mixedA != nil {
		return PrecisionMixed
	}
	return PrecisionFP64
}

// Iterative-refinement parameters of solveRefined.
const (
	// refineMaxOuter bounds the outer fp64 refinement steps before the
	// solve falls back to full fp64 GMRES.
	refineMaxOuter = 8
	// refineInnerMinTol is the floor on the inner (fp32) relative
	// tolerance: one fp32 apply carries ~1e-7 noise, so inner residuals
	// much below a few 1e-6 are unresolvable and would spin.
	refineInnerMinTol = 3e-6
	// refineInnerMaxTol keeps each inner solve making real progress
	// (at least one decimal digit per outer step).
	refineInnerMaxTol = 1e-1
)

// solveRefined solves one RHS column to the pipeline tolerance by
// float64 iterative refinement over float32 inner GMRES solves: the
// outer loop computes true fp64 residuals r = b - A x with the exact
// operator, the inner GMRES reduces each residual through the float32
// mirror (cheaper per iteration), and corrections are accumulated in
// float64. When refinement stalls — the fp32 noise floor amplified by
// conditioning exceeds what the remaining tolerance needs — the solve
// finishes with full fp64 GMRES from the current iterate, so mixed
// precision never loses accuracy, only (in the worst case) time.
func (p *Pipeline) solveRefined(ctx context.Context, ws *linalg.GMRESWorkspace, x, b []float64, pre func(dst, r []float64)) (linalg.GMRESResult, error) {
	tol := p.opt.Tol
	bn := norm2(b)
	if bn == 0 {
		for i := range x {
			x[i] = 0
		}
		return linalg.GMRESResult{Converged: true}, nil
	}
	n := len(b)
	r := make([]float64, n)
	d := make([]float64, n)
	inner := mixedMatvec{p.mixedA}
	total := 0
	rel := math.Inf(1)
	for outer := 0; outer < refineMaxOuter; outer++ {
		if err := ctx.Err(); err != nil {
			return linalg.GMRESResult{Iterations: total, Residual: rel}, err
		}
		p.a.Apply(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		prev := rel
		rel = norm2(r) / bn
		if rel <= tol {
			return linalg.GMRESResult{Iterations: total, Residual: rel, Converged: true}, nil
		}
		if outer > 0 && !(rel < 0.5*prev) {
			// Stalled (or NaN): refinement is no longer contracting.
			break
		}
		// Aim one outer step past the remaining gap, clamped to what
		// fp32 inner arithmetic can resolve.
		innerTol := 0.25 * tol / rel
		if innerTol < refineInnerMinTol {
			innerTol = refineInnerMinTol
		}
		if innerTol > refineInnerMaxTol {
			innerTol = refineInnerMaxTol
		}
		for i := range d {
			d[i] = 0
		}
		res, err := linalg.GMRESWith(ws, inner, d, r, linalg.GMRESOptions{
			Tol: innerTol, Restart: p.opt.Restart, Precond: pre, Ctx: ctx,
		})
		total += res.Iterations
		if err != nil {
			if ctx.Err() != nil {
				return linalg.GMRESResult{Iterations: total, Residual: rel}, err
			}
			// Numerical breakdown in the fp32 inner solve: the fp64
			// fallback below owns the column from here.
			break
		}
		for i := range x {
			x[i] += d[i]
		}
	}
	// Full-fp64 finish from the current iterate: reached on stall,
	// inner breakdown, or outer-iteration exhaustion.
	res, err := linalg.GMRESWith(ws, p.a, x, b, linalg.GMRESOptions{
		Tol: tol, Restart: p.opt.Restart, Precond: pre, Ctx: ctx,
	})
	res.Iterations += total
	return res, err
}

// norm2 is the Euclidean norm.
func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
