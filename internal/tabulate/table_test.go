package tabulate

import (
	"math"
	"testing"

	"parbem/internal/kernel"
)

func TestTableExactOnLinearFunctions(t *testing.T) {
	// Multilinear interpolation reproduces multilinear functions exactly.
	dims := []Dim{{0, 1, 5}, {0, 2, 7}, {-1, 1, 4}}
	f := func(x []float64) float64 {
		return 2 + 3*x[0] - x[1] + 0.5*x[2] + x[0]*x[1] - 2*x[1]*x[2] + x[0]*x[1]*x[2]
	}
	tab := Build(dims, f)
	probe := [][]float64{
		{0.13, 1.7, -0.4},
		{0.5, 1, 0},
		{0.99, 0.01, 0.99},
		{0, 0, -1},
		{1, 2, 1},
	}
	for _, p := range probe {
		got := tab.Eval(p...)
		want := f(p)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Eval(%v) = %g want %g", p, got, want)
		}
	}
}

func TestTableClamping(t *testing.T) {
	tab := Build([]Dim{{0, 1, 3}}, func(x []float64) float64 { return x[0] })
	if got := tab.Eval(-5); got != 0 {
		t.Errorf("clamp below = %g", got)
	}
	if got := tab.Eval(99); got != 1 {
		t.Errorf("clamp above = %g", got)
	}
}

func TestEval2AndEval4FastPaths(t *testing.T) {
	f2 := func(x []float64) float64 { return math.Sin(x[0]) * math.Cos(x[1]) }
	t2 := Build([]Dim{{0, 2, 30}, {0, 2, 30}}, f2)
	for x := 0.05; x < 2; x += 0.3 {
		for y := 0.05; y < 2; y += 0.3 {
			a := t2.Eval(x, y)
			b := t2.Eval2(x, y)
			if math.Abs(a-b) > 1e-14 {
				t.Fatalf("Eval2 mismatch at (%g,%g)", x, y)
			}
		}
	}
	f4 := func(x []float64) float64 { return x[0] + 2*x[1] + x[2]*x[3] }
	t4 := Build([]Dim{{0, 1, 4}, {0, 1, 4}, {0, 1, 4}, {0, 1, 4}}, f4)
	probe := [][4]float64{{0.1, 0.9, 0.3, 0.5}, {0, 1, 0.5, 0.25}}
	for _, p := range probe {
		a := t4.Eval(p[0], p[1], p[2], p[3])
		b := t4.Eval4(p[0], p[1], p[2], p[3])
		if math.Abs(a-b) > 1e-14 {
			t.Fatalf("Eval4 mismatch at %v: %g vs %g", p, a, b)
		}
	}
}

func TestDefinite2DAccuracy(t *testing.T) {
	dom := DefaultDomain2D()
	tab := NewDefinite2D(dom, 10, 10, 48, 48)
	// Probe away from the rectangle edges where the integrand kinks.
	maxRel := 0.0
	for _, p := range [][4]float64{
		{1, 1, 3, 3}, {0.5, 1.5, -2, 4}, {2, 2, 4.5, -2.5}, {1.2, 0.8, 3.5, 0.5},
	} {
		got := tab.Eval(p[0], p[1], p[2], p[3])
		want := kernel.RectPotential(kernel.StdOps, 0, p[0], 0, p[1], p[2], p[3], 0)
		rel := math.Abs(got-want) / math.Abs(want)
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.02 {
		t.Fatalf("direct tabulation error %g > 2%%", maxRel)
	}
	if tab.Bytes() < 1000 {
		t.Fatal("implausibly small table")
	}
}

func TestIndefinite2DMatchesClosedForm(t *testing.T) {
	dom := DefaultDomain2D()
	tab := NewIndefinite2D(dom, 600)
	maxRel := 0.0
	for _, p := range [][4]float64{
		{1, 1, 3, 3}, {0.5, 1.5, -2, 4}, {2, 2, 4.5, -2.5}, {1.2, 0.8, 3.5, 0.5},
	} {
		got := tab.Eval(p[0], p[1], p[2], p[3])
		want := kernel.RectPotential(kernel.StdOps, 0, p[0], 0, p[1], p[2], p[3], 0)
		rel := math.Abs(got-want) / math.Abs(want)
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 0.02 {
		t.Fatalf("indefinite tabulation error %g > 2%%", maxRel)
	}
}

func TestMaxInterpError(t *testing.T) {
	tab := Build([]Dim{{0, 1, 200}, {0, 1, 200}}, func(x []float64) float64 {
		return math.Exp(x[0] + x[1])
	})
	e := tab.MaxInterpError(func(x []float64) float64 {
		return math.Exp(x[0] + x[1])
	}, 500)
	if e > 1e-3 {
		t.Fatalf("interp error %g too large for smooth function", e)
	}
}

func TestBuildPanics(t *testing.T) {
	for _, dims := range [][]Dim{
		nil,
		{{0, 1, 1}},
		{{1, 1, 4}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Build(%v) did not panic", dims)
				}
			}()
			Build(dims, func([]float64) float64 { return 0 })
		}()
	}
}
