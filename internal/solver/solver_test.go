package solver

import (
	"math"
	"testing"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/mpi"
)

func TestExtractCrossingPair(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	res, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	C := res.C
	if C.Rows != 2 || C.Cols != 2 {
		t.Fatalf("C is %dx%d", C.Rows, C.Cols)
	}
	// Maxwell capacitance matrix structure.
	if C.At(0, 0) <= 0 || C.At(1, 1) <= 0 {
		t.Errorf("diagonal not positive: %g %g", C.At(0, 0), C.At(1, 1))
	}
	if C.At(0, 1) >= 0 {
		t.Errorf("coupling not negative: %g", C.At(0, 1))
	}
	if C.At(0, 1) != C.At(1, 0) {
		t.Error("C not symmetric")
	}
	// Row sums (capacitance to infinity) must be positive.
	for i := 0; i < 2; i++ {
		if C.At(i, 0)+C.At(i, 1) <= 0 {
			t.Errorf("row %d sum non-positive", i)
		}
	}
	// Scale sanity: crossing micron wires couple at O(0.01..1 fF).
	c12 := -C.At(0, 1)
	if c12 < 1e-18 || c12 > 1e-14 {
		t.Errorf("coupling %g F outside physical window", c12)
	}
	if res.N <= 0 || res.M < res.N {
		t.Errorf("bad sizes N=%d M=%d", res.N, res.M)
	}
}

func TestExtractParallelPlates(t *testing.T) {
	// Two 20x20 um plates 0.5 um apart: C ~ eps*A/d plus fringing.
	side := 20e-6
	d := 0.5e-6
	thick := 0.2e-6
	st := &geom.Structure{
		Name: "plates",
		Conductors: []*geom.Conductor{
			{Name: "bot", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 0}, geom.Vec3{X: side, Y: side, Z: thick})}},
			{Name: "top", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: thick + d}, geom.Vec3{X: side, Y: side, Z: 2*thick + d})}},
		},
	}
	res, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ideal := kernel.Eps0 * side * side / d
	got := -res.C.At(0, 1)
	ratio := got / ideal
	if ratio < 0.9 || ratio > 1.6 {
		t.Errorf("plate capacitance %g F, ideal %g F (ratio %.2f) outside [0.9, 1.6]",
			got, ideal, ratio)
	}
}

func TestBackendsAgree(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	serial, err := Extract(st, Options{Backend: Serial})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Extract(st, Options{Backend: SharedMem, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := Extract(st, Options{Backend: Distributed, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := linalg.MaxAbsDiff(serial.C, shared.C); d > ctol(serial.C) {
		t.Errorf("shared differs from serial by %g", d)
	}
	if d := linalg.MaxAbsDiff(serial.C, dist.C); d > ctol(serial.C) {
		t.Errorf("distributed differs from serial by %g", d)
	}
}

func TestExtractWithCustomNetwork(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	net := mpi.NewNetwork(4)
	res, err := Extract(st, Options{Backend: Distributed, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := Extract(st, Options{})
	if d := linalg.MaxAbsDiff(serial.C, res.C); d > ctol(serial.C) {
		t.Errorf("networked result differs by %g", d)
	}
}

func TestExtractBusCouplingStructure(t *testing.T) {
	st := geom.DefaultBus(3, 3).Build()
	res, err := Extract(st, Options{Backend: SharedMem})
	if err != nil {
		t.Fatal(err)
	}
	C := res.C
	if C.Rows != 6 {
		t.Fatalf("C rows = %d", C.Rows)
	}
	// Cross-layer couplings: negative for the unshielded pairs; the
	// center-center crossing is almost completely shielded by its four
	// neighbors, so it may only be required to be negligible relative to
	// the strongest coupling.
	var maxCouple float64
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j && -C.At(i, j) > maxCouple {
				maxCouple = -C.At(i, j)
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			if C.At(i, j) > 0.02*maxCouple {
				t.Errorf("C[%d][%d] = %g, want negative (or negligibly shielded) coupling", i, j, C.At(i, j))
			}
		}
	}
	// Mirror symmetry on the strong entries (self terms and adjacent
	// lateral couplings), within the ~1-2% template integration
	// tolerance; small shielded couplings have larger relative error.
	if rel := relDiff(C.At(0, 0), C.At(2, 2)); rel > 2e-2 {
		t.Errorf("self-cap mirror symmetry broken: %g vs %g", C.At(0, 0), C.At(2, 2))
	}
	if rel := relDiff(C.At(0, 1), C.At(1, 2)); rel > 2e-2 {
		t.Errorf("lateral mirror symmetry broken: %g vs %g", C.At(0, 1), C.At(1, 2))
	}
	// Setup must dominate the runtime (the paper's premise: > 95% in
	// their implementation; we assert a softer bound to stay robust on
	// tiny problems).
	if res.Timing.Setup < res.Timing.Solve {
		t.Errorf("setup (%v) should dominate solve (%v)", res.Timing.Setup, res.Timing.Solve)
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(&geom.Structure{Name: "empty"}, Options{}); err == nil {
		t.Error("empty structure must fail")
	}
}

func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// ctol returns the rounding tolerance for comparing capacitance matrices
// produced by different backends (accumulation order differs).
func ctol(m *linalg.Dense) float64 {
	var scale float64
	for _, v := range m.Data {
		if v > scale {
			scale = v
		} else if -v > scale {
			scale = -v
		}
	}
	return 1e-9 * scale
}
