package extract

import (
	"math"
	"testing"

	"parbem/internal/pcbem"
)

// TestIterativeCrossingMatchesDense verifies the accelerated template
// solve: above the panel threshold solveCrossing must route through the
// multipole iterative path and reproduce the dense charge densities to
// well within the arch-fit sensitivity.
func TestIterativeCrossingMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("dense reference solve is O(N^3)")
	}
	sp := smallSpec()
	st := sp.Build()
	prob, err := pcbem.NewProblem(st, 0.15e-6)
	if err != nil {
		t.Fatal(err)
	}
	if prob.N() < iterativeThreshold {
		t.Fatalf("problem too small to exercise the fast path: N=%d", prob.N())
	}
	fast, err := solveCrossing(prob)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Iterations == 0 {
		t.Fatal("solveCrossing did not take the iterative path")
	}
	dense, err := prob.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is the excitation CrossingProfile reads.
	var num, den float64
	for i := 0; i < prob.N(); i++ {
		d := fast.Rho.At(i, 1) - dense.Rho.At(i, 1)
		num += d * d
		den += dense.Rho.At(i, 1) * dense.Rho.At(i, 1)
	}
	// The floor is the operator's center-monopole treatment of
	// mid-range panel pairs (~0.2%), far below the arch-fit
	// sensitivity; the bound guards against regressions on top of it.
	rel := math.Sqrt(num / den)
	if rel > 1e-2 {
		t.Fatalf("iterative charge densities off by %g relative", rel)
	}
}

// TestSweepHConcurrentMatchesSequential pins the concurrent sweep to the
// per-point results (each h is an independent problem).
func TestSweepHConcurrentMatchesSequential(t *testing.T) {
	base := smallSpec()
	hs := []float64{0.4e-6, 0.8e-6}
	fits, err := SweepH(base, hs, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		sp := base
		sp.H = h
		prof, err := CrossingProfile(sp, 0.5e-6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FitArch(prof, sp)
		if err != nil {
			t.Fatal(err)
		}
		if fits[i].Flat != want.Flat || fits[i].Peak != want.Peak ||
			fits[i].PeakPos != want.PeakPos || fits[i].Decay != want.Decay {
			t.Fatalf("h=%g: concurrent sweep fit %+v != sequential %+v", h, fits[i], want)
		}
	}
}
