package fmm

import (
	"sort"
	"sync/atomic"

	"parbem/internal/geom"
)

// Topology is the geometry phase of operator construction: the octree
// over panel centroids plus the near/far interaction lists produced by
// the dual-tree traversal. It involves no kernel integration, costs
// O(N log N), and is the stage artifact the staged extraction plans
// (internal/plan) rebuild per geometry variant while reusing the far
// more expensive near-field integrals underneath.
type Topology struct {
	t     *tree
	inter *interactions
}

// NewTopology builds the octree and interaction lists for the given
// panelization (LeafSize, Theta and NearFactor are the options
// consumed; the rest are ignored).
func NewTopology(panels []geom.Panel, opt Options) *Topology {
	opt.defaults()
	t := buildTree(panels, opt.LeafSize)
	return &Topology{t: t, inter: t.buildInteractions(opt.Theta, opt.NearFactor)}
}

// Leaves returns the number of octree leaves (diagnostics).
func (tp *Topology) Leaves() int {
	n := 0
	for id := range tp.t.nodes {
		if tp.t.nodes[id].leaf {
			n++
		}
	}
	return n
}

// Reuse requests delta-aware near-field construction: exact-Galerkin
// entries whose panel pair moved rigidly as a unit since Prev was built
// are copied from Prev instead of re-integrated.
type Reuse struct {
	// Prev is the operator built for the previous geometry variant.
	// Panels must correspond 1:1 by index (same count, same conductor
	// layout; see geom.Diff).
	Prev *Operator
	// Class[i] groups panels by their exact rigid translation since
	// Prev: two panels with the same non-negative class have
	// bit-identical relative geometry, so their Galerkin integral is
	// unchanged. Class[i] < 0 marks panels whose geometry changed.
	Class []int32
	// Vals, when non-nil, adopts a complete near-field CSR value array
	// captured by NearVals from an operator built over bit-identical
	// panels and options (the disk artifact store's path, keyed by a
	// content hash of exact geometry + options in internal/plan). The
	// CSR layout is a deterministic function of the topology, so the
	// stored values land at the same offsets a fresh integration would
	// fill. Ignored — degrading to the Prev/Class path or a fresh
	// build — when its length disagrees with the CSR being built or a
	// NearEval override is configured.
	Vals []float64
}

// valid reports whether reuse is applicable for an operator being built
// with the given options: aligned panel sets and integral-identical
// settings (the copied values bake in the kernel configuration and the
// 1/(4*pi*eps) scale; NearEval overrides are function-valued and cannot
// be compared, so both sides must be nil).
func (r *Reuse) valid(n int, opt *Options) bool {
	if r == nil || r.Prev == nil || len(r.Class) != n || r.Prev.Dim() != n {
		return false
	}
	p := &r.Prev.opt
	return p.Eps == opt.Eps && *p.Cfg == *opt.Cfg &&
		p.NearEval == nil && opt.NearEval == nil
}

// nearLookup resolves previous-variant near entries by panel pair. The
// previous CSR is addressed through the previous tree's leaf layout
// (row offset of the source leaf block plus the source panel's position
// inside its leaf), so each probe is one binary search over a leaf's
// near list.
type nearLookup struct {
	prev  *Operator
	class []int32
	pos   []int32 // panel -> position within its previous leaf
	// copied/computed count exact-Galerkin entries served from Prev vs
	// integrated fresh (updated once per pair block).
	copied, computed atomic.Int64
}

func newNearLookup(r *Reuse) *nearLookup {
	prev := r.Prev
	l := &nearLookup{prev: prev, class: r.Class, pos: make([]int32, prev.Dim())}
	for id := range prev.t.nodes {
		nd := &prev.t.nodes[id]
		if !nd.leaf {
			continue
		}
		for k, pi := range prev.t.perm[nd.lo:nd.hi] {
			l.pos[pi] = int32(k)
		}
	}
	return l
}

// value returns the previous variant's exact-Galerkin entry for the
// (target, source) panel pair, or ok=false when the pair moved
// relative to each other or the previous operator did not integrate it
// exactly.
func (l *nearLookup) value(pi, pj int32) (float64, bool) {
	ci := l.class[pi]
	if ci < 0 || ci != l.class[pj] {
		return 0, false
	}
	prev := l.prev
	lst := prev.lists.nearBy[prev.t.leafOf[pi]]
	lfJ := prev.t.leafOf[pj]
	k := sort.Search(len(lst), func(k int) bool { return lst[k].leaf >= lfJ })
	if k == len(lst) || lst[k].leaf != lfJ || !lst[k].galerkin {
		return 0, false
	}
	return prev.nearVal[prev.nearOff[pi]+int64(lst[k].off)+int64(l.pos[pj])], true
}
