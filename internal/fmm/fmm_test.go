package fmm

import (
	"math"
	"math/rand"
	"testing"
)

func TestTreeCoversAllPanels(t *testing.T) {
	panels := busPanels(t, 4, 4, 2e-6)
	tr := buildTree(panels, 8)
	seen := make([]bool, len(panels))
	for _, lf := range tr.leaves() {
		nd := tr.nodes[lf]
		for _, pi := range tr.perm[nd.lo:nd.hi] {
			if seen[pi] {
				t.Fatalf("panel %d in two leaves", pi)
			}
			seen[pi] = true
			if tr.leafOf[pi] != lf {
				t.Fatalf("leafOf[%d] inconsistent", pi)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("panel %d not covered", i)
		}
	}
}

func TestLeafSizeRespected(t *testing.T) {
	panels := busPanels(t, 4, 4, 1e-6)
	for _, ls := range []int{4, 16, 64} {
		tr := buildTree(panels, ls)
		for _, lf := range tr.leaves() {
			nd := tr.nodes[lf]
			if int(nd.hi-nd.lo) > ls {
				t.Errorf("leafSize %d violated: %d panels", ls, nd.hi-nd.lo)
			}
		}
	}
}

func TestNearListIncludesSelf(t *testing.T) {
	panels := busPanels(t, 3, 3, 2e-6)
	tr := buildTree(panels, 8)
	in := tr.buildInteractions(0.5, 1.5)
	for _, lf := range tr.leaves() {
		found := false
		for _, ns := range in.nearBy[lf] {
			if ns.leaf == lf {
				if !ns.galerkin {
					t.Fatalf("leaf %d self pair not exact", lf)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("leaf %d missing from its own near list", lf)
		}
	}
}

func TestOperatorMatchesDenseMatvec(t *testing.T) {
	panels := busPanels(t, 3, 3, 1.5e-6)
	dense := denseRef(panels)
	op := NewOperator(panels, Options{Theta: 0.4})
	n := len(panels)
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	dense.MulVec(want, x)
	got := make([]float64, n)
	op.Apply(got, x)
	// Relative error in the 2-norm: multipole truncation ~ theta^3.
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	rel := math.Sqrt(num / den)
	if rel > 0.02 {
		t.Fatalf("matvec relative error %g > 2%%", rel)
	}
}

func TestNearFieldSparse(t *testing.T) {
	// Large enough that the dual-tree traversal finds well-separated
	// pairs; the near CSR must then be a small fraction of N^2 (the
	// stored-entry count is O(N): a few hundred entries per row).
	panels := busPanels(t, 8, 8, 0.75e-6)
	op := NewOperator(panels, Options{})
	n := len(panels)
	if op.NearEntries() >= n*n/4 {
		t.Errorf("near entries %d not sparse vs N^2 = %d", op.NearEntries(), n*n)
	}
	if len(op.m2lSrc) == 0 {
		t.Error("no far-field interactions found")
	}
}

func TestOperatorAccuracyImprovesWithSmallerTheta(t *testing.T) {
	panels := busPanels(t, 3, 3, 1.5e-6)
	dense := denseRef(panels)
	n := len(panels)
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := make([]float64, n)
	dense.MulVec(want, x)
	err := func(theta float64) float64 {
		op := NewOperator(panels, Options{Theta: theta})
		got := make([]float64, n)
		op.Apply(got, x)
		var num, den float64
		for i := range got {
			d := got[i] - want[i]
			num += d * d
			den += want[i] * want[i]
		}
		return math.Sqrt(num / den)
	}
	loose := err(0.8)
	tight := err(0.3)
	if tight > loose {
		t.Errorf("theta=0.3 error %g not better than theta=0.8 error %g", tight, loose)
	}
}

func TestOperatorWorkerCountInvariance(t *testing.T) {
	panels := busPanels(t, 3, 3, 1.5e-6)
	n := len(panels)
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	op1 := NewOperator(panels, Options{Workers: 1})
	op8 := NewOperator(panels, Options{Workers: 8})
	a := make([]float64, n)
	b := make([]float64, n)
	op1.Apply(a, x)
	op8.Apply(b, x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker-count dependent result at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
