package kernel

import (
	"math/rand"
	"testing"

	"parbem/internal/geom"
)

// randRect draws a rectangle with random orientation, span and position,
// scaled so the pair distances exercise every dispatch branch of
// RectGalerkin (far, mid, close parallel, close perpendicular, touching).
func randRect(rng *rand.Rand, spread float64) geom.Rect {
	lo := func() float64 { return (rng.Float64() - 0.5) * spread }
	u0, v0 := lo(), lo()
	return geom.Rect{
		Normal: geom.Axis(rng.Intn(3)),
		Offset: lo(),
		U:      geom.Interval{Lo: u0, Hi: u0 + 0.2 + rng.Float64()},
		V:      geom.Interval{Lo: v0, Hi: v0 + 0.2 + rng.Float64()},
	}
}

// TestRectGalerkinBatchMatches pins the batch evaluator to the per-pair
// path bitwise: the cached target-side quantities and the replicated
// quadrature loop must not perturb a single ulp, because near-field
// reuse across geometry variants (fmm.Reuse) compares copied entries
// against fresh integrations.
func TestRectGalerkinBatchMatches(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  *Config
	}{
		{"default", DefaultConfig()},
		{"fast", FastConfig()},
		{"exact", func() *Config { c := DefaultConfig(); c.DisableApprox = true; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var b Batch
			for _, spread := range []float64{1, 4, 40} { // close, mid, far regimes
				for trial := 0; trial < 200; trial++ {
					tgt := randRect(rng, spread)
					b.Reset(tc.cfg, tgt)
					for k := 0; k < 4; k++ {
						src := randRect(rng, spread)
						want := RectGalerkin(tc.cfg, tgt, src)
						if got := b.Eval(src); got != want {
							t.Fatalf("spread %g: Eval = %.17g, RectGalerkin = %.17g\n  t=%v\n  s=%v",
								spread, got, want, tgt, src)
						}
					}
					// Self pair: the parallel closed form at Z=0.
					if got, want := b.Eval(tgt), RectGalerkin(tc.cfg, tgt, tgt); got != want {
						t.Fatalf("self pair: %.17g vs %.17g (t=%v)", got, want, tgt)
					}
				}
			}
		})
	}
}

// TestRectGalerkinBatchSlice covers the slice wrapper.
func TestRectGalerkinBatchSlice(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(11))
	tgt := randRect(rng, 2)
	src := make([]geom.Rect, 32)
	for i := range src {
		src[i] = randRect(rng, 2)
	}
	dst := make([]float64, len(src))
	RectGalerkinBatch(cfg, tgt, src, dst)
	for i, s := range src {
		if want := RectGalerkin(cfg, tgt, s); dst[i] != want {
			t.Fatalf("dst[%d] = %.17g, want %.17g", i, dst[i], want)
		}
	}
}

// benchBlock builds one target and a block of sources spanning the
// near/mid/far mix of a leaf-pair near block: same-plane neighbours,
// perpendicular close pairs and separated pairs.
func benchBlock() (geom.Rect, []geom.Rect) {
	rng := rand.New(rand.NewSource(3))
	tgt := geom.Rect{Normal: geom.Z,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 1}}
	src := make([]geom.Rect, 0, 48)
	for i := 0; i < 48; i++ {
		src = append(src, randRect(rng, 3))
	}
	return tgt, src
}

func BenchmarkRectGalerkinPairwise(b *testing.B) {
	cfg := FastConfig()
	tgt, src := benchBlock()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range src {
			sink += RectGalerkin(cfg, tgt, s)
		}
	}
	_ = sink
}

func BenchmarkRectGalerkinBatch(b *testing.B) {
	cfg := FastConfig()
	tgt, src := benchBlock()
	var batch Batch
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Reset(cfg, tgt)
		for _, s := range src {
			sink += batch.Eval(s)
		}
	}
	_ = sink
}
