package fmm

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Options tunes the multipole operator.
type Options struct {
	LeafSize int     // max panels per leaf (default 16)
	Theta    float64 // multipole opening parameter (default 0.5)
	// NearFactor scales the exact-integration radius (default 1.5):
	// near leaf pairs within NearFactor * 2*max(halfSize) get exact
	// Galerkin entries; remaining near pairs get center monopole
	// entries (the same approximation the far field uses).
	NearFactor float64
	Workers    int // parallel workers when Pool is nil (default GOMAXPROCS)
	Eps        float64
	Cfg        *kernel.Config
	// Pool optionally supplies a shared persistent worker pool
	// (internal/sched); when nil, construction and Apply use a
	// throwaway sched.Local executor sized by Workers, or run inline
	// when Workers is 1.
	Pool *sched.Pool
	// Exec overrides Pool/Workers with an arbitrary executor — e.g. a
	// sched.Budgeted view of a shared pool, so a service caps how many
	// pool workers one request's operator occupies.
	Exec sched.Executor
	// Tol is the GMRES relative tolerance used by the iterative solves
	// driven through parbem.ExtractFastCapLike (0 = 1e-4). The operator
	// itself does not consume it.
	Tol float64
	// NearEval optionally overrides the exact near-field entry
	// integration (e.g. the tabulated-collocation adapter in
	// internal/op): it returns the unscaled Galerkin integral for the
	// target/source pair, or ok=false to fall back to the closed-form
	// quadrature. Blocks are integrated once per unordered pair, so an
	// asymmetric evaluator still yields a symmetric near field.
	NearEval func(target, source geom.Rect) (float64, bool)
}

func (o *Options) defaults() {
	if o.LeafSize == 0 {
		o.LeafSize = 16
	}
	if o.Theta == 0 {
		o.Theta = 0.5
	}
	if o.NearFactor == 0 {
		o.NearFactor = 1.5
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Eps == 0 {
		o.Eps = kernel.Eps0
	}
	if o.Cfg == nil {
		o.Cfg = kernel.DefaultConfig()
	}
}

// applyScratch is the per-Apply mutable state: panel charges, upward
// moments and downward local expansions. Bundling it keeps Apply
// re-entrant (concurrent GMRES solves share one Operator) and
// allocation-free after warmup.
type applyScratch struct {
	charges []float64
	mono    []float64
	dip     [][3]float64
	quad    [][6]float64 // xx, yy, zz, xy, xz, yz
	l0      []float64
	l1      [][3]float64
	l2      [][6]float64 // symmetric Hessian, same layout as quad
}

func newScratch(n, nodes int) *applyScratch {
	return &applyScratch{
		charges: make([]float64, n),
		mono:    make([]float64, nodes),
		dip:     make([][3]float64, nodes),
		quad:    make([][6]float64, nodes),
		l0:      make([]float64, nodes),
		l1:      make([][3]float64, nodes),
		l2:      make([][6]float64, nodes),
	}
}

// Operator is the multipole-accelerated Galerkin matvec y = P x for panel
// charge densities x. It implements linalg.Matvec. Apply is safe for
// concurrent use.
type Operator struct {
	panels []geom.Panel
	opt    Options
	t      *tree
	exec   sched.Executor // nil = run inline (serial)

	centers []geom.Vec3
	areas   []float64

	// Near field: one CSR matrix over panels (exact Galerkin plus
	// point-monopole entries, pre-scaled).
	nearOff []int64
	nearIdx []int32
	nearVal []float64

	// Far field: per-node M2L source lists.
	m2lOff []int32
	m2lSrc []int32

	leaves []int32
	scale  float64 // 1/(4*pi*eps)

	// lists retains the dual-tree traversal output (near pair
	// decomposition and per-leaf near lists): delta-aware reconstruction
	// of a later geometry variant addresses this operator's CSR through
	// it (see nearLookup).
	lists *interactions

	// nearReused / nearComputed count the exact-Galerkin entries copied
	// from a previous variant vs integrated fresh at construction.
	nearReused, nearComputed int64

	// scratch manages per-Apply buffers: warm dedicated value for the
	// one-Apply-at-a-time case, pooled overflow for concurrent Applies.
	scratch *sched.Scratch[*applyScratch]

	// mixed is the float32 storage mirror driving ApplyMixed, built
	// lazily by EnableMixed (nil until then).
	mixed     *mixedState
	mixedOnce sync.Once
}

// m2lChunk batches M2L node updates into executor tasks.
const m2lChunk = 64

// NewOperator builds the tree, the near/far interaction lists and the
// exact near-field entries.
func NewOperator(panels []geom.Panel, opt Options) *Operator {
	opt.defaults()
	return NewOperatorWith(NewTopology(panels, opt), panels, opt, nil)
}

// NewOperatorWith assembles the operator over a pre-built topology,
// optionally copying unchanged exact-Galerkin near entries from a
// previous variant's operator (reuse may be nil; invalid reuse — panel
// count mismatch, different kernel settings — degrades to a full
// fresh fill).
func NewOperatorWith(tp *Topology, panels []geom.Panel, opt Options, reuse *Reuse) *Operator {
	opt.defaults()
	t, inter := tp.t, tp.inter

	op := &Operator{
		panels:  panels,
		opt:     opt,
		t:       t,
		centers: make([]geom.Vec3, len(panels)),
		areas:   make([]float64, len(panels)),
		m2lOff:  inter.m2lOff,
		m2lSrc:  inter.m2lSrc,
		leaves:  t.leaves(),
		scale:   1 / (kernel.FourPi * opt.Eps),
		lists:   inter,
	}
	if opt.Exec != nil {
		op.exec = opt.Exec
	} else if opt.Pool != nil {
		op.exec = opt.Pool
	} else if opt.Workers > 1 {
		op.exec = sched.Local(opt.Workers)
	}
	for i, p := range panels {
		op.centers[i] = p.Center()
		op.areas[i] = p.Area()
	}

	// CSR row offsets: every row of a leaf has the same stride.
	op.nearOff = make([]int64, len(panels)+1)
	for pi := range panels {
		op.nearOff[pi+1] = op.nearOff[pi] + inter.rowStride(t, t.leafOf[pi])
	}
	total := op.nearOff[len(panels)]
	op.nearIdx = make([]int32, total)
	op.nearVal = make([]float64, total)

	// A value-array artifact (Reuse.Vals) short-circuits integration
	// entirely: the CSR layout is deterministic for this topology, so
	// the stored values are adopted wholesale and only the indices are
	// rebuilt. The per-entry Prev/Class lookup is the fallback.
	var adopt []float64
	if reuse != nil && int64(len(reuse.Vals)) == total && op.opt.NearEval == nil {
		adopt = reuse.Vals
	}
	var look *nearLookup
	if adopt == nil && reuse.valid(len(panels), &op.opt) {
		look = newNearLookup(reuse)
	}

	// Fill near blocks, one task per unordered leaf pair; each block is
	// integrated once and scattered to both sides. Every (row, block)
	// segment is owned by exactly one pair, so no locking is needed.
	pairs := inter.pairs
	sched.MapOrInline(op.exec, len(pairs), func(k int) {
		if adopt != nil {
			op.fillPairAdopt(&pairs[k], adopt)
			return
		}
		op.fillPair(&pairs[k], look)
	})
	if adopt != nil {
		op.nearReused = total
	} else if look != nil {
		op.nearReused = look.copied.Load()
		op.nearComputed = look.computed.Load()
	}

	op.scratch = sched.NewScratch(func() *applyScratch {
		return newScratch(len(panels), len(t.nodes))
	})
	return op
}

// nearValue computes one pre-scaled near-field entry. Exact entries are
// integrated in a canonical orientation (lower panel index as target):
// the quadrature of perpendicular pairs is not exactly symmetric in its
// arguments, and the canonical order makes each pair's value a function
// of the pair alone — independent of which octree leaf hosted the
// integration — so values copied across geometry variants (see Reuse)
// match what a fresh build would compute.
func (op *Operator) nearValue(pi, pj int32, galerkin bool) float64 {
	if galerkin {
		if pj < pi {
			pi, pj = pj, pi
		}
		if ne := op.opt.NearEval; ne != nil {
			if v, ok := ne(op.panels[pi].Rect, op.panels[pj].Rect); ok {
				return op.scale * v
			}
		}
		return op.scale * kernel.RectGalerkin(op.opt.Cfg, op.panels[pi].Rect, op.panels[pj].Rect)
	}
	return op.scale * op.areas[pi] * op.areas[pj] / op.centers[pi].Dist(op.centers[pj])
}

// fillPair integrates the near block of one unordered leaf pair and
// scatters it into the CSR rows of both leaves. With a non-nil lookup,
// exact-Galerkin entries whose panel pair is unchanged since the
// previous variant are copied instead of integrated (point entries are
// a single division and are always recomputed). Exact-Galerkin blocks
// without a NearEval override go through the cache-blocked path.
func (op *Operator) fillPair(pr *nearPair, look *nearLookup) {
	if pr.galerkin && op.opt.NearEval == nil {
		op.fillPairBatched(pr, look)
		return
	}
	var copied, computed int64
	value := func(pi, pj int32) float64 {
		if !pr.galerkin {
			return op.nearValue(pi, pj, false)
		}
		if look != nil {
			if v, ok := look.value(pi, pj); ok {
				copied++
				return v
			}
		}
		computed++
		return op.nearValue(pi, pj, true)
	}
	na, nb := &op.t.nodes[pr.a], &op.t.nodes[pr.b]
	pa := op.t.perm[na.lo:na.hi]
	if pr.a == pr.b {
		// Self block: symmetric, compute the upper triangle once.
		for ia, pi := range pa {
			base := op.nearOff[pi] + int64(pr.offA)
			for jb := ia; jb < len(pa); jb++ {
				pj := pa[jb]
				v := value(pi, pj)
				op.nearIdx[base+int64(jb)] = pj
				op.nearVal[base+int64(jb)] = v
				if jb != ia {
					b2 := op.nearOff[pj] + int64(pr.offA) + int64(ia)
					op.nearIdx[b2] = pi
					op.nearVal[b2] = v
				}
			}
		}
	} else {
		pb := op.t.perm[nb.lo:nb.hi]
		for ia, pi := range pa {
			base := op.nearOff[pi] + int64(pr.offA)
			for jb, pj := range pb {
				v := value(pi, pj)
				op.nearIdx[base+int64(jb)] = pj
				op.nearVal[base+int64(jb)] = v
				b2 := op.nearOff[pj] + int64(pr.offB) + int64(ia)
				op.nearIdx[b2] = pi
				op.nearVal[b2] = v
			}
		}
	}
	if look != nil && pr.galerkin {
		look.copied.Add(copied)
		look.computed.Add(computed)
	}
}

// fillPairBatched is fillPair for exact-Galerkin blocks evaluated with
// the closed-form kernel: one kernel.Batch per block amortizes the
// target-side setup (axis extents, diameter, centroid and the
// perpendicular quadrature tables) across each block row. Rows are
// walked so that every fresh integral runs in nearValue's canonical
// orientation — lower panel index as target — which makes the batch
// target a function of the row alone and keeps the stored values
// bitwise identical to the per-pair path (and therefore to the entries
// Reuse copies across geometry variants).
func (op *Operator) fillPairBatched(pr *nearPair, look *nearLookup) {
	var copied, computed int64
	var batch kernel.Batch
	cfg := op.opt.Cfg
	value := func(pi, pj int32, src geom.Rect) float64 {
		if look != nil {
			if v, ok := look.value(pi, pj); ok {
				copied++
				return v
			}
		}
		computed++
		return op.scale * batch.Eval(src)
	}
	na, nb := &op.t.nodes[pr.a], &op.t.nodes[pr.b]
	pa := op.t.perm[na.lo:na.hi]
	if pr.a == pr.b {
		// Self block: leaf positions sorted by panel index turn the
		// upper triangle into canonically-oriented rows.
		ord := make([]int32, len(pa))
		for k := range ord {
			ord[k] = int32(k)
		}
		sort.Slice(ord, func(x, y int) bool { return pa[ord[x]] < pa[ord[y]] })
		for oi, ia := range ord {
			pi := pa[ia]
			batch.Reset(cfg, op.panels[pi].Rect)
			base := op.nearOff[pi] + int64(pr.offA)
			for _, jb := range ord[oi:] {
				pj := pa[jb]
				v := value(pi, pj, op.panels[pj].Rect)
				op.nearIdx[base+int64(jb)] = pj
				op.nearVal[base+int64(jb)] = v
				if jb != ia {
					b2 := op.nearOff[pj] + int64(pr.offA) + int64(ia)
					op.nearIdx[b2] = pi
					op.nearVal[b2] = v
				}
			}
		}
	} else {
		// Cross block, two passes: rows of a against higher-indexed
		// sources in b, then rows of b against higher-indexed sources
		// in a. Distinct leaves never share a panel, so every unordered
		// pair is integrated exactly once.
		pb := op.t.perm[nb.lo:nb.hi]
		for ia, pi := range pa {
			batch.Reset(cfg, op.panels[pi].Rect)
			base := op.nearOff[pi] + int64(pr.offA)
			for jb, pj := range pb {
				if pj < pi {
					continue
				}
				v := value(pi, pj, op.panels[pj].Rect)
				op.nearIdx[base+int64(jb)] = pj
				op.nearVal[base+int64(jb)] = v
				b2 := op.nearOff[pj] + int64(pr.offB) + int64(ia)
				op.nearIdx[b2] = pi
				op.nearVal[b2] = v
			}
		}
		for jb, pj := range pb {
			batch.Reset(cfg, op.panels[pj].Rect)
			base := op.nearOff[pj] + int64(pr.offB)
			for ia, pi := range pa {
				if pi < pj {
					continue
				}
				v := value(pi, pj, op.panels[pi].Rect)
				op.nearIdx[base+int64(ia)] = pi
				op.nearVal[base+int64(ia)] = v
				b2 := op.nearOff[pi] + int64(pr.offA) + int64(jb)
				op.nearIdx[b2] = pj
				op.nearVal[b2] = v
			}
		}
	}
	if look != nil {
		look.copied.Add(copied)
		look.computed.Add(computed)
	}
}

// fillPairAdopt is fillPair when a complete value-array artifact is
// adopted (Reuse.Vals): it rebuilds the CSR indices of one unordered
// leaf pair and copies the values from the artifact at the same
// offsets, skipping all integration. Point-monopole entries adopt too —
// for bit-identical geometry they are bitwise what a fresh division
// would produce.
func (op *Operator) fillPairAdopt(pr *nearPair, vals []float64) {
	na, nb := &op.t.nodes[pr.a], &op.t.nodes[pr.b]
	pa := op.t.perm[na.lo:na.hi]
	if pr.a == pr.b {
		for ia, pi := range pa {
			base := op.nearOff[pi] + int64(pr.offA)
			for jb := ia; jb < len(pa); jb++ {
				pj := pa[jb]
				dst := base + int64(jb)
				op.nearIdx[dst] = pj
				op.nearVal[dst] = vals[dst]
				if jb != ia {
					b2 := op.nearOff[pj] + int64(pr.offA) + int64(ia)
					op.nearIdx[b2] = pi
					op.nearVal[b2] = vals[b2]
				}
			}
		}
		return
	}
	pb := op.t.perm[nb.lo:nb.hi]
	for ia, pi := range pa {
		base := op.nearOff[pi] + int64(pr.offA)
		for jb, pj := range pb {
			dst := base + int64(jb)
			op.nearIdx[dst] = pj
			op.nearVal[dst] = vals[dst]
			b2 := op.nearOff[pj] + int64(pr.offB) + int64(ia)
			op.nearIdx[b2] = pi
			op.nearVal[b2] = vals[b2]
		}
	}
}

// NearVals exposes the near-field CSR value array (read-only) — the
// NearField stage artifact the disk store persists. For bit-identical
// panels and options, a later build's CSR layout matches exactly, so
// Reuse.Vals can adopt this array wholesale.
func (op *Operator) NearVals() []float64 { return op.nearVal }

// Dim implements linalg.Matvec.
func (op *Operator) Dim() int { return len(op.panels) }

// NearEntries returns the number of stored near-field entries (memory
// diagnostics for Table 2).
func (op *Operator) NearEntries() int { return len(op.nearVal) }

// NearReuse reports how many exact-Galerkin near entries were copied
// from the previous variant vs integrated fresh at construction (both
// zero when the operator was built without reuse).
func (op *Operator) NearReuse() (copied, computed int64) {
	return op.nearReused, op.nearComputed
}

// NearBlocks implements the pipeline's near-block contract
// (internal/op.NearBlocker): the exact-Galerkin self blocks of the
// octree leaves, extracted from the near-field CSR. Leaves partition the
// panels, so the blocks are disjoint and cover every unknown; each block
// is a principal sub-matrix of the SPD Galerkin matrix and therefore
// Cholesky-factorizable.
func (op *Operator) NearBlocks() (idx [][]int32, blocks []*linalg.Dense) {
	// pos[panel] = position of the panel within its own leaf.
	pos := make([]int32, len(op.panels))
	for _, lf := range op.leaves {
		nd := &op.t.nodes[lf]
		for k, pi := range op.t.perm[nd.lo:nd.hi] {
			pos[pi] = int32(k)
		}
	}
	for _, lf := range op.leaves {
		nd := &op.t.nodes[lf]
		pan := op.t.perm[nd.lo:nd.hi]
		b := linalg.NewDense(len(pan), len(pan))
		for r, pi := range pan {
			row := b.Row(r)
			lo, hi := op.nearOff[pi], op.nearOff[pi+1]
			cols := op.nearIdx[lo:hi]
			vals := op.nearVal[lo:hi]
			for k, pj := range cols {
				if op.t.leafOf[pj] == lf {
					row[pos[pj]] = vals[k]
				}
			}
		}
		idx = append(idx, append([]int32(nil), pan...))
		blocks = append(blocks, b)
	}
	return idx, blocks
}

// Apply implements linalg.Matvec: upward moment pass, M2L over the
// interaction lists, L2L downward translation, then near CSR row plus
// L2P per panel. Allocation-free after the first call (serial mode) and
// safe for concurrent use.
func (op *Operator) Apply(dst, x []float64) {
	s := op.scratch.Acquire()
	defer op.scratch.Release(s)
	for i, a := range op.areas {
		s.charges[i] = x[i] * a
	}
	op.upward(s)
	if op.exec == nil {
		for id := range op.t.nodes {
			op.m2lNode(s, id)
		}
		op.downward(s)
		for _, lf := range op.leaves {
			op.evalLeaf(s, lf, dst, x)
		}
		return
	}
	nn := len(op.t.nodes)
	op.exec.Map((nn+m2lChunk-1)/m2lChunk, func(c int) {
		lo := c * m2lChunk
		hi := lo + m2lChunk
		if hi > nn {
			hi = nn
		}
		for id := lo; id < hi; id++ {
			op.m2lNode(s, id)
		}
	})
	op.downward(s)
	leaves := op.leaves
	op.exec.Map(len(leaves), func(k int) {
		op.evalLeaf(s, leaves[k], dst, x)
	})
}

// upward computes the Cartesian moments of every node about its own
// center. Children always have larger ids than their parent, so one
// descending sweep is a post-order traversal.
func (op *Operator) upward(s *applyScratch) {
	nodes := op.t.nodes
	for id := len(nodes) - 1; id >= 0; id-- {
		nd := &nodes[id]
		var mono float64
		var dip [3]float64
		var quad [6]float64
		if nd.leaf {
			for _, pi := range op.t.perm[nd.lo:nd.hi] {
				q := s.charges[pi]
				r := op.centers[pi].Sub(nd.center)
				mono += q
				dip[0] += q * r.X
				dip[1] += q * r.Y
				dip[2] += q * r.Z
				quad[0] += q * r.X * r.X
				quad[1] += q * r.Y * r.Y
				quad[2] += q * r.Z * r.Z
				quad[3] += q * r.X * r.Y
				quad[4] += q * r.X * r.Z
				quad[5] += q * r.Y * r.Z
			}
		} else {
			for _, ch := range nd.children {
				if ch < 0 {
					continue
				}
				cn := &nodes[ch]
				d := cn.center.Sub(nd.center)
				q := s.mono[ch]
				cd := s.dip[ch]
				cq := s.quad[ch]
				mono += q
				// Shift dipole: d' = d_child + q * offset.
				dip[0] += cd[0] + q*d.X
				dip[1] += cd[1] + q*d.Y
				dip[2] += cd[2] + q*d.Z
				// Shift quadrupole: Q'_ab = Q_ab + d_a off_b + d_b off_a + q off_a off_b.
				quad[0] += cq[0] + 2*cd[0]*d.X + q*d.X*d.X
				quad[1] += cq[1] + 2*cd[1]*d.Y + q*d.Y*d.Y
				quad[2] += cq[2] + 2*cd[2]*d.Z + q*d.Z*d.Z
				quad[3] += cq[3] + cd[0]*d.Y + cd[1]*d.X + q*d.X*d.Y
				quad[4] += cq[4] + cd[0]*d.Z + cd[2]*d.X + q*d.X*d.Z
				quad[5] += cq[5] + cd[1]*d.Z + cd[2]*d.Y + q*d.Y*d.Z
			}
		}
		s.mono[id] = mono
		s.dip[id] = dip
		s.quad[id] = quad
	}
}

// m2lNode converts the moments of every well-separated source node into
// a local (Taylor) expansion about node id's center: value l0, gradient
// l1 and symmetric Hessian l2 of the source potential field. The result
// is assigned, not accumulated, so no zeroing pass is needed.
func (op *Operator) m2lNode(s *applyScratch, id int) {
	var l0 float64
	var l1 [3]float64
	var l2 [6]float64
	ct := op.t.nodes[id].center
	for _, src := range op.m2lSrc[op.m2lOff[id]:op.m2lOff[id+1]] {
		q := s.mono[src]
		dp := s.dip[src]
		qd := s.quad[src]
		R := ct.Sub(op.t.nodes[src].center)
		x, y, z := R.X, R.Y, R.Z
		r2 := x*x + y*y + z*z
		inv2 := 1 / r2
		inv := math.Sqrt(inv2)
		inv3 := inv * inv2
		inv5 := inv3 * inv2
		inv7 := inv5 * inv2
		inv9 := inv7 * inv2

		// Monopole q/r: value, gradient -q x/r^3, Hessian
		// q(3 x_a x_b - delta_ab r^2)/r^5.
		l0 += q * inv
		c3 := q * inv3
		l1[0] -= c3 * x
		l1[1] -= c3 * y
		l1[2] -= c3 * z
		c5 := 3 * q * inv5
		l2[0] += c5*x*x - c3
		l2[1] += c5*y*y - c3
		l2[2] += c5*z*z - c3
		l2[3] += c5 * x * y
		l2[4] += c5 * x * z
		l2[5] += c5 * y * z

		// Dipole (D.x)/r^3.
		dx := dp[0]*x + dp[1]*y + dp[2]*z
		l0 += dx * inv3
		d5 := 3 * dx * inv5
		l1[0] += dp[0]*inv3 - d5*x
		l1[1] += dp[1]*inv3 - d5*y
		l1[2] += dp[2]*inv3 - d5*z
		d7 := 15 * dx * inv7
		t5 := 3 * inv5
		l2[0] += d7*x*x - t5*(2*dp[0]*x+dx)
		l2[1] += d7*y*y - t5*(2*dp[1]*y+dx)
		l2[2] += d7*z*z - t5*(2*dp[2]*z+dx)
		l2[3] += d7*x*y - t5*(dp[0]*y+dp[1]*x)
		l2[4] += d7*x*z - t5*(dp[0]*z+dp[2]*x)
		l2[5] += d7*y*z - t5*(dp[1]*z+dp[2]*y)

		// Quadrupole (raw second moments): (3 x.Qx - tr(Q) r^2)/(2 r^5).
		qx := qd[0]*x + qd[3]*y + qd[4]*z
		qy := qd[3]*x + qd[1]*y + qd[5]*z
		qz := qd[4]*x + qd[5]*y + qd[2]*z
		a := x*qx + y*qy + z*qz
		tr := qd[0] + qd[1] + qd[2]
		l0 += 1.5*a*inv5 - 0.5*tr*inv3
		a7 := 7.5 * a * inv7
		tq5 := 1.5 * tr * inv5
		l1[0] += 3*qx*inv5 - a7*x + tq5*x
		l1[1] += 3*qy*inv5 - a7*y + tq5*y
		l1[2] += 3*qz*inv5 - a7*z + tq5*z
		a9 := 52.5 * a * inv9
		t7 := 7.5 * tr * inv7
		i5 := 3 * inv5
		l2[0] += i5*qd[0] - 30*qx*x*inv7 - a7 + a9*x*x + tq5 - t7*x*x
		l2[1] += i5*qd[1] - 30*qy*y*inv7 - a7 + a9*y*y + tq5 - t7*y*y
		l2[2] += i5*qd[2] - 30*qz*z*inv7 - a7 + a9*z*z + tq5 - t7*z*z
		l2[3] += i5*qd[3] - 15*(qx*y+qy*x)*inv7 + a9*x*y - t7*x*y
		l2[4] += i5*qd[4] - 15*(qx*z+qz*x)*inv7 + a9*x*z - t7*x*z
		l2[5] += i5*qd[5] - 15*(qy*z+qz*y)*inv7 + a9*y*z - t7*y*z
	}
	s.l0[id] = l0
	s.l1[id] = l1
	s.l2[id] = l2
}

// downward translates each node's local expansion to its children (L2L).
// Parents have smaller ids, so one ascending sweep visits parents first.
func (op *Operator) downward(s *applyScratch) {
	nodes := op.t.nodes
	for id := range nodes {
		nd := &nodes[id]
		if nd.leaf {
			continue
		}
		pl0 := s.l0[id]
		pl1 := s.l1[id]
		pl2 := s.l2[id]
		for _, ch := range nd.children {
			if ch < 0 {
				continue
			}
			d := nodes[ch].center.Sub(nd.center)
			hx := pl2[0]*d.X + pl2[3]*d.Y + pl2[4]*d.Z
			hy := pl2[3]*d.X + pl2[1]*d.Y + pl2[5]*d.Z
			hz := pl2[4]*d.X + pl2[5]*d.Y + pl2[2]*d.Z
			s.l0[ch] += pl0 + pl1[0]*d.X + pl1[1]*d.Y + pl1[2]*d.Z +
				0.5*(d.X*hx+d.Y*hy+d.Z*hz)
			s.l1[ch][0] += pl1[0] + hx
			s.l1[ch][1] += pl1[1] + hy
			s.l1[ch][2] += pl1[2] + hz
			for k := 0; k < 6; k++ {
				s.l2[ch][k] += pl2[k]
			}
		}
	}
}

// evalLeaf computes dst for every target panel of leaf lf: the near CSR
// row plus the leaf's local expansion evaluated at the panel center
// (L2P).
func (op *Operator) evalLeaf(s *applyScratch, lf int32, dst, x []float64) {
	nd := &op.t.nodes[lf]
	l0 := s.l0[lf]
	l1 := s.l1[lf]
	l2 := s.l2[lf]
	for _, pi := range op.t.perm[nd.lo:nd.hi] {
		lo, hi := op.nearOff[pi], op.nearOff[pi+1]
		idx := op.nearIdx[lo:hi]
		val := op.nearVal[lo:hi]
		var s0, s1 float64
		k := 0
		for ; k+2 <= len(idx); k += 2 {
			s0 += val[k] * x[idx[k]]
			s1 += val[k+1] * x[idx[k+1]]
		}
		if k < len(idx) {
			s0 += val[k] * x[idx[k]]
		}
		r := op.centers[pi].Sub(nd.center)
		phi := l0 + l1[0]*r.X + l1[1]*r.Y + l1[2]*r.Z +
			0.5*(l2[0]*r.X*r.X+l2[1]*r.Y*r.Y+l2[2]*r.Z*r.Z) +
			l2[3]*r.X*r.Y + l2[4]*r.X*r.Z + l2[5]*r.Y*r.Z
		dst[pi] = s0 + s1 + op.scale*op.areas[pi]*phi
	}
}

var _ linalg.Matvec = (*Operator)(nil)
