package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parbem/internal/geom"
)

// clampRange maps an arbitrary float into [lo, hi].
func clampRange(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	return lo + math.Mod(math.Abs(x), hi-lo)
}

func TestF2SecondMixedDerivativeProperty(t *testing.T) {
	// d^2 F2 / dX dY == 1/r away from singular lines.
	f := func(xr, yr, zr float64) bool {
		X := clampRange(xr, 0.3, 3)
		Y := clampRange(yr, 0.3, 3)
		Z := clampRange(zr, 0.3, 3)
		h := 1e-5
		mixed := (F2(StdOps, X+h, Y+h, Z) - F2(StdOps, X+h, Y-h, Z) -
			F2(StdOps, X-h, Y+h, Z) + F2(StdOps, X-h, Y-h, Z)) / (4 * h * h)
		want := 1 / math.Sqrt(X*X+Y*Y+Z*Z)
		return math.Abs(mixed-want)/want < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestF4FourthMixedDerivativeProperty(t *testing.T) {
	// d^4 F4 / dX^2 dY^2 == 1/r (the defining property of the Galerkin
	// antiderivative), via nested central differences.
	f := func(xr, yr, zr float64) bool {
		X := clampRange(xr, 0.5, 2.5)
		Y := clampRange(yr, 0.5, 2.5)
		Z := clampRange(zr, 0.5, 2.5)
		h := 2e-3
		d2x := func(x, y float64) float64 {
			return (F4(StdOps, x+h, y, Z) - 2*F4(StdOps, x, y, Z) + F4(StdOps, x-h, y, Z)) / (h * h)
		}
		mixed := (d2x(X, Y+h) - 2*d2x(X, Y) + d2x(X, Y-h)) / (h * h)
		want := 1 / math.Sqrt(X*X+Y*Y+Z*Z)
		return math.Abs(mixed-want)/want < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRectPotentialPositiveAndDecaying(t *testing.T) {
	// The potential of a positive charge sheet is positive everywhere
	// and decays along rays away from the rectangle.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		w := 0.2 + rng.Float64()*2
		h := 0.2 + rng.Float64()*2
		px := rng.Float64()*8 - 4
		py := rng.Float64()*8 - 4
		pz := rng.Float64()*4 + 0.1
		v1 := RectPotential(StdOps, 0, w, 0, h, px, py, pz)
		if v1 <= 0 {
			t.Fatalf("potential %g <= 0 at (%g,%g,%g)", v1, px, py, pz)
		}
		v2 := RectPotential(StdOps, 0, w, 0, h, px, py, pz*2)
		if v2 >= v1 {
			t.Fatalf("potential not decaying in z: %g -> %g", v1, v2)
		}
	}
}

func TestGalerkinDecaysWithSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		w := 0.5 + rng.Float64()
		prev := math.Inf(1)
		for _, z := range []float64{0.5, 1, 2, 4, 8} {
			v := GalerkinParallel(StdOps, 0, w, 0, w, 0, w, 0, w, z)
			if v <= 0 || v >= prev {
				t.Fatalf("Galerkin not positive-decaying: %g at z=%g (prev %g)", v, z, prev)
			}
			prev = v
		}
	}
}

func TestGalerkinTranslationInvariance(t *testing.T) {
	f := func(dxr, dyr float64) bool {
		dx := clampRange(dxr, -5, 5)
		dy := clampRange(dyr, -5, 5)
		a := GalerkinParallel(StdOps, 0, 1, 0, 1, 2, 3, 0, 1, 1.5)
		b := GalerkinParallel(StdOps, dx, 1+dx, dy, 1+dy, 2+dx, 3+dx, dy, 1+dy, 1.5)
		return math.Abs(a-b) < 1e-9*math.Abs(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGalerkinScaleInvariance(t *testing.T) {
	// The 4-D integral of 1/r scales as length^3.
	f := func(sr float64) bool {
		s := clampRange(sr, 0.1, 10)
		a := GalerkinParallel(StdOps, 0, 1, 0, 2, 0.5, 2, -1, 1, 0.8)
		b := GalerkinParallel(StdOps, 0, s, 0, 2*s, 0.5*s, 2*s, -s, s, 0.8*s)
		return math.Abs(b-a*s*s*s) < 1e-9*math.Abs(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRectGalerkinOrientationConsistency(t *testing.T) {
	// The same physical pair expressed with different normal axes must
	// give the same integral (X-normal planes vs Z-normal planes).
	cfg := DefaultConfig()
	cfg.DisableApprox = true
	// Pair 1: both rects normal to Z, separated in z.
	a1 := geom.Rect{Normal: geom.Z, Offset: 0,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 2}}
	b1 := geom.Rect{Normal: geom.Z, Offset: 1.3,
		U: geom.Interval{Lo: 0.2, Hi: 1.7}, V: geom.Interval{Lo: -1, Hi: 0.5}}
	// Same pair rotated: normals X; (x,y,z) -> (z,x,y) mapping.
	a2 := geom.Rect{Normal: geom.X, Offset: 0,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 2}}
	b2 := geom.Rect{Normal: geom.X, Offset: 1.3,
		U: geom.Interval{Lo: 0.2, Hi: 1.7}, V: geom.Interval{Lo: -1, Hi: 0.5}}
	v1 := RectGalerkin(cfg, a1, b1)
	v2 := RectGalerkin(cfg, a2, b2)
	if math.Abs(v1-v2) > 1e-12*math.Abs(v1) {
		t.Fatalf("orientation-dependent result: %g vs %g", v1, v2)
	}
}

func TestSelfGalerkinScalesAsCube(t *testing.T) {
	base := SelfGalerkin(StdOps, geom.Rect{Normal: geom.Z,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 1}})
	f := func(sr float64) bool {
		s := clampRange(sr, 0.05, 20)
		v := SelfGalerkin(StdOps, geom.Rect{Normal: geom.Z,
			U: geom.Interval{Lo: 0, Hi: s}, V: geom.Interval{Lo: 0, Hi: s}})
		return math.Abs(v-base*s*s*s) < 1e-9*v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFastOpsCloseToStdOps(t *testing.T) {
	// The tabulated-function kernel must track the exact kernel within
	// the paper's error budget (~1%, a little more after the 16-corner
	// cancellation) on the *production* evaluation path. Raw far-pair
	// 16-corner differences amplify table error through cancellation —
	// that is precisely why the dispatch switches to dimension-reduced
	// expressions beyond the approximation distance (Sections 4.1/4.2.4),
	// so the test evaluates through RectGalerkin like the solver does.
	std := DefaultConfig()
	fast := FastConfig()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		w := 0.3 + rng.Float64()
		dz := 0.3 + rng.Float64()*2
		dx := rng.Float64() * 3
		a := geom.Rect{Normal: geom.Z, Offset: 0,
			U: geom.Interval{Lo: 0, Hi: w}, V: geom.Interval{Lo: 0, Hi: w}}
		b := geom.Rect{Normal: geom.Z, Offset: dz,
			U: geom.Interval{Lo: dx, Hi: dx + w}, V: geom.Interval{Lo: 0, Hi: w}}
		exact := RectGalerkin(std, a, b)
		approx := RectGalerkin(fast, a, b)
		// Worst case ~3% for small rectangles just inside the
		// mid-field switch (maximum cancellation); these entries are
		// themselves small, so the capacitance-level impact is ~0.01%
		// (see Table 2 in EXPERIMENTS.md).
		if rel := math.Abs(approx-exact) / math.Abs(exact); rel > 0.04 {
			t.Fatalf("FastOps error %g > 4%% (w=%g dx=%g dz=%g)", rel, w, dx, dz)
		}
	}
}
