// Package batch implements the batch extraction engine: a long-lived
// service front end over the instantiable-basis solver that amortizes
// per-call setup across a stream of structures.
//
// A plain Extract call rebuilds everything from scratch every time —
// quadrature rules, tabulated kernel tables, the template basis — and
// spawns a fresh worker set for its parallel fill. The engine instead
//
//   - caches immutable expensive state behind a concurrency-safe LRU:
//     template basis sets keyed by an exact geometry signature,
//     tabulated collocation kernels keyed by their spec, and pre-warmed
//     quadrature rule sets;
//   - shares one template-pair integral cache across all extractions, so
//     a repeated-template corpus (the same bus extracted many times, or
//     translated copies of one crossing layout) fills its matrix mostly
//     from lookups; and
//   - schedules every fill's chunks onto one persistent work-stealing
//     worker pool instead of spawning per-call goroutines.
//
// The paper's observation that nearly all extraction time is the
// embarrassingly parallel matrix fill is what makes this profitable: the
// fill is exactly the part that repeats across a batch.
//
// Solves flow through the unified operator pipeline (internal/op) via
// solver.ExtractSet, so every engine extraction shares the same direct
// path (equilibrated Cholesky, shift recovery, LU fallback) and
// capacitance reduction as the interactive entry points.
//
// Piecewise-constant pipeline extractions (ExtractPipeline) ride the
// same LRU with staged extraction plans (internal/plan) keyed by
// structural family, so a stream of geometry variants — h-sweeps,
// width studies, near-identical cells — reuses near-field integrals,
// factorizations and warm starts across requests.
package batch

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/op"
	"parbem/internal/plan"
	"parbem/internal/quad"
	"parbem/internal/sched"
	"parbem/internal/solver"
	"parbem/internal/tabulate"
)

// Options configures an Engine. The zero value is a SharedMem engine
// with GOMAXPROCS workers, default kernel and basis settings, caching
// enabled and tables off.
type Options struct {
	// Backend selects the fill backend (default SharedMem; SharedMem
	// fills run on the engine's persistent pool).
	Backend solver.Backend
	// Workers sizes the shared worker pool (0 = GOMAXPROCS).
	Workers int
	// Concurrency bounds how many extractions ExtractAll runs at once
	// (0 = max(2, Workers)); their fills interleave on the shared pool.
	Concurrency int
	// PlanWorkers caps how many pool workers one ExtractPipeline
	// request's stage builds and operator applies occupy (0 = the whole
	// pool). A service running several pipeline extractions at once
	// sets this so concurrent requests divide the persistent pool
	// instead of oversubscribing it (sched.Budgeted).
	PlanWorkers int

	// CacheEntries bounds the state LRU (basis sets, kernel tables,
	// quadrature warm sets; 0 = 64).
	CacheEntries int
	// PairCacheEntries bounds the shared template-pair integral cache
	// (0 = default 1<<18).
	PairCacheEntries int
	// DisableCache turns off both the state LRU and the pair cache
	// (every call recomputes, but still shares the worker pool).
	DisableCache bool

	// Tables enables the tabulated collocation kernel; the engine
	// builds it once per spec and reuses it for every extraction.
	Tables bool
	// TableSpec overrides the table domain/resolution (nil = defaults).
	TableSpec *tabulate.CollocationSpec

	// Basis, Kernel, Eps, ThreadsPerRank mirror solver.Options.
	Basis          basis.BuilderOptions
	Kernel         *kernel.Config
	Eps            float64
	ThreadsPerRank int

	// Artifacts optionally supplies a persistent stage-artifact store
	// shared by every pipeline plan the engine caches (see
	// plan.Options.Artifacts): near-field values and block factors
	// survive process restarts and, behind internal/serve's resolver,
	// travel between replicas. Nil disables persistence.
	Artifacts plan.ArtifactStore
}

// Engine is a batch extraction service. It is safe for concurrent use;
// Close releases the worker pool.
type Engine struct {
	opt   Options
	pool  *sched.Pool
	state *LRU
	pairs *assembly.PairCache

	mu     sync.Mutex
	closed bool
}

// Stats is a snapshot of the engine's cache effectiveness. The JSON
// tags keep the extraction service's /stats payload on the snake_case
// convention of the other machine-readable emitters.
type Stats struct {
	// StateHits/StateMisses count the basis/table/quad/plan LRU.
	StateHits   uint64 `json:"state_hits"`
	StateMisses uint64 `json:"state_misses"`
	// PairHits/PairMisses count the template-pair integral cache.
	PairHits    uint64 `json:"pair_hits"`
	PairMisses  uint64 `json:"pair_misses"`
	PairEntries int    `json:"pair_entries"`
}

// New creates an engine and starts its worker pool. The quadrature rule
// set is warmed immediately so the first extraction pays no rule-build
// latency.
func New(opt Options) *Engine {
	e := &Engine{opt: opt, pool: sched.NewPool(opt.Workers)}
	if !opt.DisableCache {
		capEntries := opt.CacheEntries
		if capEntries == 0 {
			capEntries = 64
		}
		e.state = NewLRU(capEntries)
		e.pairs = assembly.NewPairCache(opt.PairCacheEntries)
		e.state.GetOrCompute("quad:32", func() (any, error) {
			return warmQuad(32), nil
		})
	}
	return e
}

// warmQuad forces computation of every Gauss rule the integration engine
// can request (quad caches them globally; the engine keeps the set alive
// and pre-paid).
func warmQuad(maxOrder int) []*quad.Rule {
	rules := make([]*quad.Rule, 0, maxOrder)
	for n := 1; n <= maxOrder; n++ {
		rules = append(rules, quad.Gauss(n))
	}
	return rules
}

// Close shuts down the worker pool. Extractions in flight complete;
// later calls fall back to per-call workers.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.pool.Close()
}

// Workers returns the size of the engine's persistent worker pool.
func (e *Engine) Workers() int { return e.pool.Workers() }

// PlanWorkers returns the per-request worker budget pipeline plans run
// under (0 = the whole pool).
func (e *Engine) PlanWorkers() int { return e.opt.PlanWorkers }

// planExec returns the executor pipeline plans run their stage builds
// and operator applies on: the engine's persistent pool, budgeted to
// PlanWorkers per request when configured. After Close the pool runs
// Map calls inline, so cached plans keep working serially.
func (e *Engine) planExec() sched.Executor {
	return sched.Budgeted(e.pool, e.opt.PlanWorkers)
}

// Stats returns cache counters (zero when caching is disabled).
func (e *Engine) Stats() Stats {
	var s Stats
	if e.state != nil {
		s.StateHits, s.StateMisses = e.state.Stats()
	}
	if e.pairs != nil {
		s.PairHits, s.PairMisses = e.pairs.Stats()
		s.PairEntries = e.pairs.Len()
	}
	return s
}

// Extract runs one extraction through the engine's caches and pool.
// The returned Result shares the cached basis set (read-only); its
// Timing.BasisGen and Timing.TableGen are zero on cache hits — that is
// the amortization the engine exists for.
func (e *Engine) Extract(st *geom.Structure) (*solver.Result, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}

	var tBasis time.Duration
	var set *basis.Set
	if e.state != nil {
		// tBasis is written only when this call computes the entry; on
		// a hit (or a join of another caller's computation) it stays 0,
		// which is exactly what the timing should report.
		v, _, err := e.state.GetOrCompute("basis:"+geoSignature(st, e.opt.Basis), func() (any, error) {
			t0 := time.Now()
			s, err := solver.BuildBasis(st, e.opt.Basis)
			tBasis = time.Since(t0)
			return s, err
		})
		if err != nil {
			return nil, err
		}
		set = v.(*basis.Set)
	} else {
		t0 := time.Now()
		s, err := solver.BuildBasis(st, e.opt.Basis)
		if err != nil {
			return nil, err
		}
		tBasis = time.Since(t0)
		set = s
	}

	tab, tTable, err := e.table()
	if err != nil {
		return nil, err
	}

	res, err := solver.ExtractSet(set, e.solverOptions(tab))
	if err != nil {
		return nil, err
	}
	res.Timing.BasisGen = tBasis
	res.Timing.TableGen = tTable
	res.Timing.Total += tBasis + tTable
	return res, nil
}

// table returns the (possibly cached) collocation table when enabled.
func (e *Engine) table() (*tabulate.Collocation, time.Duration, error) {
	if !e.opt.Tables {
		return nil, 0, nil
	}
	spec := tabulate.CollocationSpec{}
	if e.opt.TableSpec != nil {
		spec = *e.opt.TableSpec
	}
	if err := spec.Validate(); err != nil {
		return nil, 0, fmt.Errorf("batch: bad table spec: %w", err)
	}
	if e.state == nil {
		t0 := time.Now()
		tab := tabulate.NewCollocation(spec)
		return tab, time.Since(t0), nil
	}
	var tTable time.Duration
	v, computed, err := e.state.GetOrCompute(fmt.Sprintf("table:%v", spec.Key()), func() (any, error) {
		t0 := time.Now()
		tab := tabulate.NewCollocation(spec)
		tTable = time.Since(t0)
		return tab, nil
	})
	if err != nil {
		return nil, 0, err
	}
	if !computed {
		tTable = 0
	}
	return v.(*tabulate.Collocation), tTable, nil
}

// solverOptions assembles the per-call solver options around the shared
// state.
func (e *Engine) solverOptions(tab *tabulate.Collocation) solver.Options {
	opt := solver.Options{
		Backend:        e.opt.Backend,
		Workers:        e.opt.Workers,
		Basis:          e.opt.Basis,
		Kernel:         e.opt.Kernel,
		Eps:            e.opt.Eps,
		ThreadsPerRank: e.opt.ThreadsPerRank,
		Tab:            tab,
		Pairs:          e.pairs,
	}
	if opt.Backend == solver.SharedMem {
		e.mu.Lock()
		if !e.closed {
			opt.Pool = e.pool
			opt.Workers = e.pool.Workers()
		}
		e.mu.Unlock()
	}
	return opt
}

// ExtractAll extracts every structure, running up to Concurrency
// extractions at once over the shared pool and caches. results[i]
// corresponds to sts[i]; on error, results for structures that failed
// are nil and the first error is returned (the rest still complete).
func (e *Engine) ExtractAll(sts []*geom.Structure) ([]*solver.Result, error) {
	results := make([]*solver.Result, len(sts))
	errs := make([]error, len(sts))
	conc := e.opt.Concurrency
	if conc <= 0 {
		conc = e.pool.Workers()
		if conc < 2 {
			conc = 2
		}
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, st := range sts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, st *geom.Structure) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.Extract(st)
		}(i, st)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ExtractPipeline runs a piecewise-constant pipeline extraction
// (parbem.ExtractPipeline semantics) through the engine's plan cache:
// structures route to a staged extraction plan (internal/plan) keyed by
// their structural family — conductor/box layout plus the solve options
// — so geometry variants of one family arriving in a stream reuse each
// other's stage artifacts: unchanged near-field integrals are copied,
// block factorizations adopted and Krylov solves warm-started, exactly
// as in an explicit parbem.Plan sweep. Unrelated geometries that
// happen to share a family key simply rebuild (the plan's diff keeps
// results exact); per-family extractions serialize on their plan.
//
// Caveat: opt.FMM/PFFT worker-pool and evaluator overrides (Pool,
// NearEval) are not part of the family key, and all non-standard
// kernel.Config.Ops providers share one key tag; callers varying those
// per request should use explicit parbem.NewPlan instances instead.
func (e *Engine) ExtractPipeline(st *geom.Structure, maxEdge float64, opt op.Options) (*plan.Result, error) {
	return e.ExtractPipelineCtx(context.Background(), st, maxEdge, opt)
}

// ExtractPipelineCtx is ExtractPipeline bounded by a context: the
// plan's stage boundaries and the GMRES iteration loop observe ctx, so
// a request deadline (or a client cancellation) stops the extraction at
// the next checkpoint with a *plan.Interrupted error instead of running
// to completion. An interrupted extraction never corrupts the cached
// family plan — the previous variant's artifacts stay installed and the
// next request proceeds normally. A nil ctx means context.Background().
func (e *Engine) ExtractPipelineCtx(ctx context.Context, st *geom.Structure, maxEdge float64, opt op.Options) (*plan.Result, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	mk := func() (*plan.Plan, error) {
		return plan.New(plan.Options{MaxEdge: maxEdge, Pipeline: opt,
			Exec: e.planExec(), Artifacts: e.opt.Artifacts})
	}
	if e.state == nil {
		p, err := mk()
		if err != nil {
			return nil, err
		}
		return p.ExtractCtx(ctx, st)
	}
	v, _, err := e.state.GetOrCompute(planSignature(st, maxEdge, opt), func() (any, error) {
		return mk()
	})
	if err != nil {
		return nil, err
	}
	return v.(*plan.Plan).ExtractCtx(ctx, st)
}

// FamilyKey returns the geometry-family key ExtractPipeline caches
// plans under: structural shape (conductor/box counts, not coordinates —
// variants of one family must share the key) plus every scalar solve
// option that changes results. The multi-replica coordinator
// (internal/serve.NewRouter) consistent-hashes this key so all variants
// of a family land on the replica whose warm caches own it.
func FamilyKey(st *geom.Structure, maxEdge float64, opt op.Options) string {
	return planSignature(st, maxEdge, opt)
}

// planSignature keys a plan by structural family: conductor/box counts
// (not coordinates — variants must share the key) plus every scalar
// solve option that changes results.
func planSignature(st *geom.Structure, maxEdge float64, opt op.Options) string {
	buf := []byte("plan:")
	f := func(x float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	u := func(x uint64) {
		buf = binary.LittleEndian.AppendUint64(buf, x)
	}
	f(maxEdge)
	u(uint64(opt.Backend))
	u(uint64(opt.Precond))
	u(uint64(opt.Precision))
	f(opt.Tol)
	u(uint64(opt.Restart))
	if opt.Direct {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	// Presence tags keep the encoding unambiguous: without them, a
	// missing sub-struct followed by other fields could serialize like
	// a present zero-valued one (geoSignature's collision-free rule).
	cfg := func(c *kernel.Config) {
		if c == nil {
			buf = append(buf, 0)
			return
		}
		if c.Ops == kernel.StdOps {
			buf = append(buf, 1)
		} else {
			// Any non-standard elementary-function provider (the
			// tabulated fastmath set, or a caller's own) shares one
			// tag; see the ExtractPipeline caveat.
			buf = append(buf, 2)
		}
		f(c.FarFactor)
		f(c.MidFactor)
		u(uint64(c.QuadOrder))
		if c.DisableApprox {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	if fo := opt.FMM; fo != nil {
		buf = append(buf, 'F')
		u(uint64(fo.LeafSize))
		f(fo.Theta)
		f(fo.NearFactor)
		f(fo.Eps)
		f(fo.Tol)
		cfg(fo.Cfg)
	} else {
		buf = append(buf, 0)
	}
	if po := opt.PFFT; po != nil {
		buf = append(buf, 'P')
		f(po.GridSpacing)
		u(uint64(po.MaxNodes))
		f(po.NearRadius)
		f(po.Eps)
		f(po.Tol)
		cfg(po.Cfg)
	} else {
		buf = append(buf, 0)
	}
	u(uint64(len(st.Conductors)))
	for _, c := range st.Conductors {
		u(uint64(len(c.Boxes)))
	}
	return string(buf)
}

// geoSignature serializes the exact geometry and builder options into a
// collision-free cache key: two structures share a key iff their
// conductor boxes are bitwise identical in the same order under the same
// builder options (names are irrelevant to the basis). Keys are a few
// dozen bytes per box, which the bounded LRU holds comfortably.
func geoSignature(st *geom.Structure, bopt basis.BuilderOptions) string {
	var buf []byte
	f := func(x float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	f(bopt.MaxCoupleGap)
	f(bopt.ExtFactor)
	f(bopt.InFactor)
	f(bopt.DecayFactor)
	f(bopt.MinShadowFrac)
	f(bopt.ArchAmpFactor)
	if bopt.SeparateInduced {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(st.Conductors)))
	for _, c := range st.Conductors {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(c.Boxes)))
		for _, b := range c.Boxes {
			f(b.Min.X)
			f(b.Min.Y)
			f(b.Min.Z)
			f(b.Max.X)
			f(b.Max.Y)
			f(b.Max.Z)
		}
	}
	return string(buf)
}
