// Package fft provides an iterative radix-2 complex FFT and 3-D transforms
// over complex128 grids. It is the convolution engine of the
// precorrected-FFT baseline (internal/pfft); the standard library has no
// FFT, so this is built from scratch.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of x (len must be a power of
// two): X[k] = sum_j x[j] exp(-2 pi i j k / n).
func Forward(x []complex128) { transform(x, -1) }

// Inverse computes the in-place inverse DFT including the 1/n scaling.
func Inverse(x []complex128) {
	transform(x, +1)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// transform is the iterative Cooley-Tukey radix-2 kernel; sign is the
// exponent sign.
func transform(x []complex128, sign float64) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Grid3 is a dense complex grid of dimensions Nx x Ny x Nz (all powers of
// two), stored x-major: index = (ix*Ny + iy)*Nz + iz.
type Grid3 struct {
	Nx, Ny, Nz int
	Data       []complex128
	// bufY, bufX are the gather/scatter line buffers of the strided
	// transforms, kept on the grid so repeated transforms (one per
	// matvec in pfft) are allocation-free. A grid serves one transform
	// at a time.
	bufY, bufX []complex128
}

// NewGrid3 allocates a zeroed grid.
func NewGrid3(nx, ny, nz int) *Grid3 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) {
		panic("fft: grid dimensions must be powers of two")
	}
	return &Grid3{
		Nx: nx, Ny: ny, Nz: nz,
		Data: make([]complex128, nx*ny*nz),
		bufY: make([]complex128, ny),
		bufX: make([]complex128, nx),
	}
}

// Idx returns the linear index of (ix, iy, iz).
func (g *Grid3) Idx(ix, iy, iz int) int { return (ix*g.Ny+iy)*g.Nz + iz }

// Forward3 transforms the grid in place along all three axes.
func (g *Grid3) Forward3() { g.transformAll(Forward) }

// Inverse3 inverse-transforms the grid in place (scaled).
func (g *Grid3) Inverse3() { g.transformAll(Inverse) }

// transformAll applies a 1-D transform along z, then y, then x.
func (g *Grid3) transformAll(f func([]complex128)) {
	// Along z: contiguous slices.
	for ix := 0; ix < g.Nx; ix++ {
		for iy := 0; iy < g.Ny; iy++ {
			base := g.Idx(ix, iy, 0)
			f(g.Data[base : base+g.Nz])
		}
	}
	// Along y: strided, gather/scatter.
	buf := g.bufY
	for ix := 0; ix < g.Nx; ix++ {
		for iz := 0; iz < g.Nz; iz++ {
			for iy := 0; iy < g.Ny; iy++ {
				buf[iy] = g.Data[g.Idx(ix, iy, iz)]
			}
			f(buf)
			for iy := 0; iy < g.Ny; iy++ {
				g.Data[g.Idx(ix, iy, iz)] = buf[iy]
			}
		}
	}
	// Along x.
	bufX := g.bufX
	for iy := 0; iy < g.Ny; iy++ {
		for iz := 0; iz < g.Nz; iz++ {
			for ix := 0; ix < g.Nx; ix++ {
				bufX[ix] = g.Data[g.Idx(ix, iy, iz)]
			}
			f(bufX)
			for ix := 0; ix < g.Nx; ix++ {
				g.Data[g.Idx(ix, iy, iz)] = bufX[ix]
			}
		}
	}
}

// MulPointwise multiplies g by h element-wise (same dimensions).
func (g *Grid3) MulPointwise(h *Grid3) {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		panic("fft: grid dimension mismatch")
	}
	for i, v := range h.Data {
		g.Data[i] *= v
	}
}
