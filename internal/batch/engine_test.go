package batch

import (
	"testing"
	"time"

	"parbem/internal/geom"
	"parbem/internal/op"
	"parbem/internal/pcbem"
	"parbem/internal/solver"
)

// relErr is the row-diagonal-normalized maximum relative difference (the
// conventional extraction accuracy metric).
func relErr(got, ref *solver.Result) float64 {
	var maxRel float64
	for i := 0; i < ref.C.Rows; i++ {
		den := ref.C.At(i, i)
		if den < 0 {
			den = -den
		}
		for j := 0; j < ref.C.Cols; j++ {
			d := got.C.At(i, j) - ref.C.At(i, j)
			if d < 0 {
				d = -d
			}
			if rel := d / den; rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

func TestEngineMatchesSerialExtract(t *testing.T) {
	st := geom.DefaultBus(3, 3).Build()
	ref, err := solver.Extract(st, solver.Options{Backend: solver.Serial})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Workers: 2})
	defer e.Close()
	for rep := 0; rep < 2; rep++ {
		res, err := e.Extract(st)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res, ref); e > 1e-10 {
			t.Fatalf("rep %d: engine deviates from serial by %g", rep, e)
		}
	}
	s := e.Stats()
	if s.StateHits == 0 {
		t.Error("second extraction did not hit the basis cache")
	}
	if s.PairHits == 0 {
		t.Error("second extraction did not hit the pair cache")
	}
}

func TestEngineExtractAllConcurrent(t *testing.T) {
	// A mixed corpus: repeated copies of two distinct structures,
	// extracted concurrently over the shared pool and caches.
	var corpus []*geom.Structure
	stA := geom.DefaultBus(3, 3).Build()
	stB := geom.DefaultCrossingPair().Build()
	for i := 0; i < 4; i++ {
		corpus = append(corpus, stA, stB)
	}
	e := New(Options{Workers: 2, Concurrency: 4})
	defer e.Close()
	results, err := e.ExtractAll(corpus)
	if err != nil {
		t.Fatal(err)
	}
	refA, _ := solver.Extract(stA, solver.Options{Backend: solver.Serial})
	refB, _ := solver.Extract(stB, solver.Options{Backend: solver.Serial})
	for i, res := range results {
		ref := refA
		if i%2 == 1 {
			ref = refB
		}
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		if e := relErr(res, ref); e > 1e-10 {
			t.Fatalf("result %d deviates by %g", i, e)
		}
	}
	// Exactly two distinct geometries were built.
	if _, misses := e.state.Stats(); misses != 2+1 { // two bases + quad warm set
		t.Errorf("state misses = %d, want 3", misses)
	}
}

func TestEngineExtractAllError(t *testing.T) {
	bad := &geom.Structure{Name: "empty"} // no conductors: Validate fails
	good := geom.DefaultCrossingPair().Build()
	e := New(Options{Workers: 1})
	defer e.Close()
	results, err := e.ExtractAll([]*geom.Structure{good, bad})
	if err == nil {
		t.Fatal("expected error from invalid structure")
	}
	if results[0] == nil {
		t.Error("valid structure should still have extracted")
	}
	if results[1] != nil {
		t.Error("invalid structure should have nil result")
	}
}

func TestEngineDisabledCacheStillWorks(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	e := New(Options{Workers: 1, DisableCache: true})
	defer e.Close()
	res, err := e.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := solver.Extract(st, solver.Options{Backend: solver.Serial})
	if e := relErr(res, ref); e > 1e-10 {
		t.Fatalf("deviates by %g", e)
	}
	if s := e.Stats(); s.StateHits+s.StateMisses+s.PairHits+s.PairMisses != 0 {
		t.Error("caches active despite DisableCache")
	}
}

func TestEngineTables(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	e := New(Options{Workers: 1, Tables: true})
	defer e.Close()
	r1, err := e.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Timing.TableGen == 0 {
		t.Error("first extraction should have built the table")
	}
	r2, err := e.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timing.TableGen != 0 {
		t.Error("second extraction rebuilt the table despite the cache")
	}
	ref, _ := solver.Extract(st, solver.Options{Backend: solver.Serial})
	if e := relErr(r2, ref); e > 0.02 {
		t.Errorf("tabulated-kernel result deviates by %.3f%%", 100*e)
	}
}

func TestEngineUseAfterClose(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	e := New(Options{Workers: 2})
	e.Close()
	res, err := e.Extract(st) // falls back to per-call workers
	if err != nil || res == nil {
		t.Fatalf("extract after close: %v", err)
	}
}

// corpus16 builds the benchmark corpus: 16 repeated-template bus
// structures (identical geometry, the service steady state the batch
// engine targets).
func corpus16() []*geom.Structure {
	out := make([]*geom.Structure, 16)
	for i := range out {
		out[i] = geom.DefaultBus(4, 4).Build()
	}
	return out
}

// TestEngineBatchSpeedup enforces the headline acceptance criterion:
// extracting the repeated-template corpus through the engine is at least
// 2x the throughput of 16 sequential Extract calls (in practice the
// table/basis/pair caches deliver far more than 2x; the assertion leaves
// slack for noisy CI machines).
func TestEngineBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	corpus := corpus16()

	measure := func() float64 {
		t0 := time.Now()
		for _, st := range corpus {
			if _, err := solver.Extract(st, solver.Options{Backend: solver.SharedMem}); err != nil {
				t.Fatal(err)
			}
		}
		sequential := time.Since(t0)

		e := New(Options{})
		defer e.Close()
		t1 := time.Now()
		if _, err := e.ExtractAll(corpus); err != nil {
			t.Fatal(err)
		}
		batched := time.Since(t1)

		speedup := float64(sequential) / float64(batched)
		s := e.Stats()
		t.Logf("sequential=%v engine=%v speedup=%.1fx (pair cache: %d hits / %d misses)",
			sequential, batched, speedup, s.PairHits, s.PairMisses)
		return speedup
	}

	// The cache-driven speedup is ~8-10x in practice; a single retry
	// absorbs scheduler noise on loaded CI machines without weakening
	// the >=2x acceptance bar.
	if measure() >= 2 {
		return
	}
	t.Log("first measurement under 2x; retrying once to rule out machine noise")
	if speedup := measure(); speedup < 2 {
		t.Errorf("engine speedup %.2fx < 2x in two consecutive measurements", speedup)
	}
}

// BenchmarkEngineBatch compares a corpus of 16 repeated-template bus
// structures extracted by 16 sequential Extract calls against the batch
// engine (fresh engine per iteration, so every iteration pays the
// cache-cold first fill and then reaps the 15 repeats).
func BenchmarkEngineBatch(b *testing.B) {
	corpus := corpus16()

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, st := range corpus {
				if _, err := solver.Extract(st, solver.Options{Backend: solver.SharedMem}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := New(Options{})
			if _, err := e.ExtractAll(corpus); err != nil {
				b.Fatal(err)
			}
			e.Close()
		}
	})
}

// TestEnginePipelinePlanReuse routes geometry variants of one family
// through the engine's plan cache and checks both correctness (vs an
// independent pipeline solve) and that the shared plan actually reused
// stage artifacts across the stream.
func TestEnginePipelinePlanReuse(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()

	const edge = 0.5e-6
	popt := op.Options{Backend: op.BackendDense, Direct: true}
	for _, h := range []float64{0.4e-6, 0.55e-6, 0.7e-6} {
		sp := geom.DefaultCrossingPair()
		sp.H = h
		st := sp.Build()
		res, err := eng.ExtractPipeline(st, edge, popt)
		if err != nil {
			t.Fatalf("h=%g: %v", h, err)
		}
		prob, err := pcbem.NewProblem(st, edge)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := prob.SolvePipeline(popt)
		if err != nil {
			t.Fatal(err)
		}
		var maxRel float64
		for i := 0; i < ref.C.Rows; i++ {
			den := ref.C.At(i, i)
			if den < 0 {
				den = -den
			}
			for j := 0; j < ref.C.Cols; j++ {
				d := res.C.At(i, j) - ref.C.At(i, j)
				if d < 0 {
					d = -d
				}
				if d/den > maxRel {
					maxRel = d / den
				}
			}
		}
		if maxRel > 1e-10 {
			t.Errorf("h=%g: engine pipeline deviates by %g", h, maxRel)
		}
	}

	// All three variants share one family: the second and third must
	// have hit the cached plan and reused dense entries.
	s := eng.Stats()
	if s.StateHits < 2 {
		t.Errorf("plan cache hits = %d, want >= 2", s.StateHits)
	}
}

// TestEnginePipelineNoCache covers the DisableCache path: every call
// builds a one-shot plan but still solves correctly.
func TestEnginePipelineNoCache(t *testing.T) {
	eng := New(Options{Workers: 1, DisableCache: true})
	defer eng.Close()
	st := geom.DefaultCrossingPair().Build()
	res, err := eng.ExtractPipeline(st, 0.6e-6, op.Options{Backend: op.BackendDense, Direct: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.C.Rows != 2 {
		t.Fatalf("C is %dx%d", res.C.Rows, res.C.Cols)
	}
}
