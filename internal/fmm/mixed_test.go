package fmm

import (
	"math"
	"math/rand"
	"testing"
)

// TestApplyMixedMatchesApply checks the float32 mirror against the fp64
// apply on a ~1.5k panel bus crossing: the relative difference must stay
// at fp32 rounding level — orders of magnitude below the multipole
// truncation error the operator already carries, which is what lets the
// refinement loop treat ApplyMixed as "the same operator, noisier".
func TestApplyMixedMatchesApply(t *testing.T) {
	panels := busPanels(t, 4, 4, 1e-6)
	op := NewOperator(panels, Options{Workers: 1})
	op.EnableMixed()
	n := len(panels)
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	got := make([]float64, n)
	op.Apply(want, x)
	op.ApplyMixed(got, x)
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	rel := math.Sqrt(num / den)
	t.Logf("fp64 vs mixed rel diff: %.3e (N=%d)", rel, n)
	if !(rel <= 1e-4) { // negated form catches NaN (fp32 overflow etc.)
		t.Fatalf("mixed apply rel diff %g, want <= 1e-4", rel)
	}
	if rel == 0 {
		t.Fatal("mixed apply identical to fp64: float32 path not exercised")
	}
}

// TestApplyMixedBeforeEnable pins the fallback contract: without
// EnableMixed, ApplyMixed must produce the fp64 result bitwise.
func TestApplyMixedBeforeEnable(t *testing.T) {
	panels := busPanels(t, 2, 2, 1e-6)
	op := NewOperator(panels, Options{Workers: 1})
	n := len(panels)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	want := make([]float64, n)
	got := make([]float64, n)
	op.Apply(want, x)
	op.ApplyMixed(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyMixed before EnableMixed diverged at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestApplyMixedAllocFree proves the warm float32 apply path allocates
// nothing (serial mode, same guarantee the fp64 Apply documents).
func TestApplyMixedAllocFree(t *testing.T) {
	panels := busPanels(t, 2, 2, 1e-6)
	op := NewOperator(panels, Options{Workers: 1})
	op.EnableMixed()
	n := len(panels)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	op.ApplyMixed(dst, x) // warm the scratch
	if allocs := testing.AllocsPerRun(10, func() { op.ApplyMixed(dst, x) }); allocs > 0 {
		t.Errorf("warm ApplyMixed allocates %v times per run", allocs)
	}
}
