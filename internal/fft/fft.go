// Package fft is the convolution engine of the precorrected-FFT
// baseline (internal/pfft): an iterative radix-2 FFT with cached
// twiddle-factor and bit-reversal tables, 3-D transforms over dense
// grids, and — the layout the physics actually needs — real-input
// convolution grids that carry only the non-redundant half spectrum.
// The standard library has no FFT, so this is built from scratch.
//
// # Real-input convolution contract
//
// The grid data pfft convolves is real (charges projected onto grid
// nodes, potentials read back), so RGrid3/RGrid3F32 store an
// Nx x Ny x Nz real grid and transform it r2c along z via conjugate
// symmetry into Hz = Nz/2+1 complex bins, then c2c along y and x over
// the Hz half-planes. Compared to a complex-to-complex transform of
// the same grid this halves the transform flops, the grid memory and
// the kernel-spectrum storage. ConvolveInto fuses the full circular
// convolution (forward, pointwise spectral multiply, inverse) in one
// call; the 1/n inverse scaling is folded into the final butterfly
// stage of each axis rather than a separate sweep over the data.
//
// # Half-spectrum layout
//
// An RGrid3 line (ix, iy) occupies Nz+2 float64 slots. In real space
// the first Nz are the samples f(ix, iy, 0..Nz-1); after ForwardReal
// the same slots hold the Hz half-spectrum bins X[0..Nz/2] as (re, im)
// pairs — X[k] for k > Nz/2 is implied by the conjugate symmetry
// X[Nz-k] = conj(X[k]) of real input. X[0] and X[Nz/2] are real.
//
// # Parallelism model
//
// Each 3-D transform is Nx*Ny (z), Nx*Nz (y) and Ny*Nz (x)
// independent 1-D line transforms. When a grid's Exec executor is set,
// the line loops and the pointwise spectral multiply are chunked over
// it with per-worker line buffers drawn from a sched.Scratch pool;
// results are bit-identical to the serial path regardless of
// scheduling (every line is transformed by the same table-driven
// kernel). With Exec nil everything runs inline and the warm paths are
// allocation-free. A grid serves one transform at a time.
package fft

import (
	"fmt"
	"math/bits"

	"parbem/internal/sched"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward computes the in-place forward DFT of x (len must be a power
// of two): X[k] = sum_j x[j] exp(-2 pi i j k / n).
func Forward(x []complex128) {
	n := checkedLen128(x)
	transform(x, twiddles(n, -1), revTable(n))
}

// Inverse computes the in-place inverse DFT including the 1/n scaling,
// folded into the final butterfly stage (no separate scaling sweep).
func Inverse(x []complex128) {
	n := checkedLen128(x)
	transformScaled(x, twiddles(n, +1), revTable(n), 1/float64(n))
}

func checkedLen128(x []complex128) int {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	return n
}

// transform is the iterative Cooley-Tukey radix-2 kernel with
// table-driven twiddles (the w *= wStep recurrence it replaces loses
// O(n eps) across a row). The caller supplies the twiddle and
// bit-reversal tables so the per-row lookups are hoisted out of the
// 3-D transform's line loops.
func transform(x []complex128, w []complex128, rev []int32) {
	n := len(x)
	for i, j := range rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w[k*stride]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// transformScaled is transform with a uniform output scaling folded
// into the final butterfly stage: the last stage spans the whole row
// (one butterfly per element pair), so multiplying its outputs is
// exactly the separate x[i] *= scale sweep, minus the extra pass over
// the data. For power-of-two scalings (1/n here) the fold is
// bit-identical to the sweep.
func transformScaled(x []complex128, w []complex128, rev []int32, scale float64) {
	n := len(x)
	if n == 1 {
		if scale != 1 {
			x[0] *= complex(scale, 0)
		}
		return
	}
	for i, j := range rev {
		if int(j) > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size < n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w[k*stride]
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	half := n >> 1
	s := complex(scale, 0)
	for k := 0; k < half; k++ {
		a := x[k]
		b := x[k+half] * w[k]
		x[k] = (a + b) * s
		x[k+half] = (a - b) * s
	}
}

// lineTransform dispatches to the scaled or unscaled kernel.
func lineTransform(x []complex128, w []complex128, rev []int32, scale float64) {
	if scale == 1 {
		transform(x, w, rev)
	} else {
		transformScaled(x, w, rev, scale)
	}
}

// lineChunk is the number of 1-D line transforms per executor task:
// coarse enough that task overhead stays negligible against the
// microseconds a line costs, fine enough to balance across workers.
const lineChunk = 32

// elemChunk is the number of grid elements per executor task in the
// elementwise passes (pointwise multiply).
const elemChunk = 8192

func chunkTasks(n, chunk int) int { return (n + chunk - 1) / chunk }

func chunkSpan(t, n, chunk int) (int, int) {
	lo := t * chunk
	hi := lo + chunk
	if hi > n {
		hi = n
	}
	return lo, hi
}

// lineBuf is the per-worker gather/scatter state of one parallel task:
// one line buffer per strided axis.
type lineBuf struct {
	y, x []complex128
}

// Grid3 is a dense complex grid of dimensions Nx x Ny x Nz (all powers
// of two), stored x-major: index = (ix*Ny + iy)*Nz + iz.
type Grid3 struct {
	Nx, Ny, Nz int
	Data       []complex128
	// Exec optionally parallelizes the line transforms and pointwise
	// multiplies; nil runs everything inline (allocation-free when
	// warm). Set it before transforming; a grid serves one transform
	// at a time either way.
	Exec sched.Executor
	// lines pools the gather/scatter buffers of the strided y/x
	// transforms: the warm serial value keeps repeated transforms (one
	// per matvec in pfft) allocation-free, parallel tasks draw
	// per-worker buffers from the overflow pool.
	lines *sched.Scratch[*lineBuf]
}

// NewGrid3 allocates a zeroed grid.
func NewGrid3(nx, ny, nz int) *Grid3 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) {
		panic("fft: grid dimensions must be powers of two")
	}
	return &Grid3{
		Nx: nx, Ny: ny, Nz: nz,
		Data: make([]complex128, nx*ny*nz),
		lines: sched.NewScratch(func() *lineBuf {
			return &lineBuf{y: make([]complex128, ny), x: make([]complex128, nx)}
		}),
	}
}

// Idx returns the linear index of (ix, iy, iz).
func (g *Grid3) Idx(ix, iy, iz int) int { return (ix*g.Ny+iy)*g.Nz + iz }

// Forward3 transforms the grid in place along all three axes.
func (g *Grid3) Forward3() { g.transformAll(-1, false) }

// Inverse3 inverse-transforms the grid in place; the 1/(Nx*Ny*Nz)
// scaling is folded into the final butterfly stage of each axis.
func (g *Grid3) Inverse3() { g.transformAll(+1, true) }

// transformAll applies a 1-D transform along z, then y, then x, with
// twiddle/reversal tables fetched once per axis. Each axis is a set of
// independent lines, chunked over Exec when present.
func (g *Grid3) transformAll(sign float64, scaled bool) {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	wz, rz := twiddles(nz, sign), revTable(nz)
	wy, ry := twiddles(ny, sign), revTable(ny)
	wx, rx := twiddles(nx, sign), revTable(nx)
	sz, sy, sx := 1.0, 1.0, 1.0
	if scaled {
		sz, sy, sx = 1/float64(nz), 1/float64(ny), 1/float64(nx)
	}
	if g.Exec == nil {
		b := g.lines.Acquire()
		g.zLines(0, nx*ny, wz, rz, sz)
		g.yLines(0, nx*nz, b.y, wy, ry, sy)
		g.xLines(0, ny*nz, b.x, wx, rx, sx)
		g.lines.Release(b)
		return
	}
	g.Exec.Map(chunkTasks(nx*ny, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, nx*ny, lineChunk)
		g.zLines(lo, hi, wz, rz, sz)
	})
	g.Exec.Map(chunkTasks(nx*nz, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, nx*nz, lineChunk)
		b := g.lines.Acquire()
		g.yLines(lo, hi, b.y, wy, ry, sy)
		g.lines.Release(b)
	})
	g.Exec.Map(chunkTasks(ny*nz, lineChunk), func(t int) {
		lo, hi := chunkSpan(t, ny*nz, lineChunk)
		b := g.lines.Acquire()
		g.xLines(lo, hi, b.x, wx, rx, sx)
		g.lines.Release(b)
	})
}

// zLines transforms contiguous z lines [lo, hi) (line r = (ix*Ny+iy)).
func (g *Grid3) zLines(lo, hi int, w []complex128, rev []int32, scale float64) {
	nz := g.Nz
	for r := lo; r < hi; r++ {
		base := r * nz
		lineTransform(g.Data[base:base+nz], w, rev, scale)
	}
}

// yLines transforms strided y lines [lo, hi) (line t = ix*Nz + iz)
// through the gather/scatter buffer buf.
func (g *Grid3) yLines(lo, hi int, buf []complex128, w []complex128, rev []int32, scale float64) {
	data := g.Data
	ny, nz := g.Ny, g.Nz
	for t := lo; t < hi; t++ {
		ix, iz := t/nz, t%nz
		p := ix*ny*nz + iz
		q := p
		for iy := 0; iy < ny; iy++ {
			buf[iy] = data[q]
			q += nz
		}
		lineTransform(buf, w, rev, scale)
		q = p
		for iy := 0; iy < ny; iy++ {
			data[q] = buf[iy]
			q += nz
		}
	}
}

// xLines transforms strided x lines [lo, hi) (line t = iy*Nz + iz).
func (g *Grid3) xLines(lo, hi int, buf []complex128, w []complex128, rev []int32, scale float64) {
	data := g.Data
	nx, nz := g.Nx, g.Nz
	planeStride := g.Ny * nz
	for t := lo; t < hi; t++ {
		p := t // iy*nz + iz
		q := p
		for ix := 0; ix < nx; ix++ {
			buf[ix] = data[q]
			q += planeStride
		}
		lineTransform(buf, w, rev, scale)
		q = p
		for ix := 0; ix < nx; ix++ {
			data[q] = buf[ix]
			q += planeStride
		}
	}
}

// MulPointwise multiplies g by h element-wise (same dimensions),
// chunked over the executor when present.
func (g *Grid3) MulPointwise(h *Grid3) {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		panic("fft: grid dimension mismatch")
	}
	n := len(g.Data)
	if g.Exec == nil {
		mulRange128(g.Data, h.Data, 0, n)
		return
	}
	g.Exec.Map(chunkTasks(n, elemChunk), func(t int) {
		lo, hi := chunkSpan(t, n, elemChunk)
		mulRange128(g.Data, h.Data, lo, hi)
	})
}

func mulRange128(dst, src []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] *= src[i]
	}
}
