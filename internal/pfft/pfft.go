// Package pfft is a from-scratch precorrected-FFT solver in the mold of
// Phillips & White [6] and its parallel variant [1], the second baseline
// the paper compares against: panel charges are projected onto a uniform
// grid, the grid potential is obtained by FFT convolution with the 1/r
// kernel, potentials are interpolated back at the panels, and close
// interactions are "precorrected" by replacing the inaccurate grid
// contribution with exact Galerkin entries.
package pfft

import (
	"math"
	"runtime"
	"sync"

	"parbem/internal/fft"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
)

// Options tunes the precorrected-FFT operator.
type Options struct {
	// GridSpacing is the grid pitch h (0 = automatic: fit the structure
	// in at most MaxNodes nodes per axis, but no finer than half the
	// median panel edge).
	GridSpacing float64
	// MaxNodes caps the logical grid nodes per axis for automatic
	// spacing (default 48).
	MaxNodes int
	// NearRadius is the precorrection radius in units of h (default 3).
	NearRadius float64
	Workers    int
	Eps        float64
	Cfg        *kernel.Config
	// Tol is the GMRES relative tolerance used by the iterative solves
	// driven through parbem.ExtractPFFT (0 = 1e-4). The operator itself
	// does not consume it.
	Tol float64
}

func (o *Options) defaults() {
	if o.MaxNodes == 0 {
		o.MaxNodes = 48
	}
	if o.NearRadius == 0 {
		o.NearRadius = 3
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Eps == 0 {
		o.Eps = kernel.Eps0
	}
	if o.Cfg == nil {
		o.Cfg = kernel.DefaultConfig()
	}
}

// stencil is a panel's trilinear projection/interpolation footprint:
// 8 grid nodes and weights.
type stencil struct {
	idx [8]int32 // linear node indices in the logical grid
	w   [8]float64
}

// Operator is the precorrected-FFT matvec y = P x. It implements
// linalg.Matvec.
type Operator struct {
	panels []geom.Panel
	opt    Options

	h          float64
	origin     geom.Vec3
	nx, ny, nz int // logical grid dims
	px, py, pz int // padded FFT dims (>= 2*logical, powers of two)

	kernelHat *fft.Grid3 // forward FFT of the 1/r kernel on the padded grid
	work      *fft.Grid3 // scratch charge/potential grid

	sten    []stencil
	areas   []float64
	centers []geom.Vec3

	nearIdx [][]int32
	nearVal [][]float64 // exact - grid, pre-scaled

	charges []float64
	scale   float64
	mu      sync.Mutex // guards work during Apply
}

// NewOperator builds the grid, kernel transform, stencils and
// precorrection entries.
func NewOperator(panels []geom.Panel, opt Options) *Operator {
	opt.defaults()
	op := &Operator{
		panels:  panels,
		opt:     opt,
		areas:   make([]float64, len(panels)),
		centers: make([]geom.Vec3, len(panels)),
		sten:    make([]stencil, len(panels)),
		nearIdx: make([][]int32, len(panels)),
		nearVal: make([][]float64, len(panels)),
		charges: make([]float64, len(panels)),
		scale:   1 / (kernel.FourPi * opt.Eps),
	}
	var medEdge float64
	{
		var edges []float64
		for i, p := range panels {
			op.areas[i] = p.Area()
			op.centers[i] = p.Center()
			edges = append(edges, math.Max(p.U.Len(), p.V.Len()))
		}
		// Median without sorting the caller's data.
		medEdge = median(edges)
	}

	// Bounding box of centers.
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for _, c := range op.centers {
		lo = geom.Vec3{X: math.Min(lo.X, c.X), Y: math.Min(lo.Y, c.Y), Z: math.Min(lo.Z, c.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, c.X), Y: math.Max(hi.Y, c.Y), Z: math.Max(hi.Z, c.Z)}
	}
	span := hi.Sub(lo)
	maxSpan := math.Max(span.X, math.Max(span.Y, span.Z))

	h := opt.GridSpacing
	if h == 0 {
		h = math.Max(medEdge/2, maxSpan/float64(opt.MaxNodes-1))
		if h == 0 {
			h = 1
		}
	}
	op.h = h
	op.origin = lo
	dims := func(s float64) int { return int(s/h) + 2 }
	op.nx, op.ny, op.nz = dims(span.X), dims(span.Y), dims(span.Z)
	op.px = fft.NextPow2(2 * op.nx)
	op.py = fft.NextPow2(2 * op.ny)
	op.pz = fft.NextPow2(2 * op.nz)

	op.buildKernel()
	op.work = fft.NewGrid3(op.px, op.py, op.pz)
	op.buildStencils()
	op.buildPrecorrection()
	return op
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion into order via simple sort.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// kernelValue is the grid Green's function between nodes separated by
// (dx, dy, dz) node steps: 1/(h*dist); the self value uses the average of
// 1/r over a cube of side h (~2.38/h), only for internal consistency (all
// node-sharing panel pairs are inside the precorrection radius).
func (op *Operator) kernelValue(dx, dy, dz int) float64 {
	if dx == 0 && dy == 0 && dz == 0 {
		return 2.38 / op.h
	}
	d := math.Sqrt(float64(dx*dx + dy*dy + dz*dz))
	return 1 / (op.h * d)
}

// buildKernel fills the padded kernel grid with circular-symmetric wrap
// layout and forward transforms it.
func (op *Operator) buildKernel() {
	g := fft.NewGrid3(op.px, op.py, op.pz)
	for ix := 0; ix < op.px; ix++ {
		wx := wrapDist(ix, op.px)
		for iy := 0; iy < op.py; iy++ {
			wy := wrapDist(iy, op.py)
			for iz := 0; iz < op.pz; iz++ {
				wz := wrapDist(iz, op.pz)
				g.Data[g.Idx(ix, iy, iz)] = complex(op.kernelValue(wx, wy, wz), 0)
			}
		}
	}
	g.Forward3()
	op.kernelHat = g
}

// wrapDist maps a padded index to its signed minimal distance magnitude.
func wrapDist(i, n int) int {
	if i <= n/2 {
		return i
	}
	return n - i
}

// buildStencils computes each panel's trilinear footprint.
func (op *Operator) buildStencils() {
	for i, c := range op.centers {
		fx := (c.X - op.origin.X) / op.h
		fy := (c.Y - op.origin.Y) / op.h
		fz := (c.Z - op.origin.Z) / op.h
		ix, iy, iz := int(fx), int(fy), int(fz)
		tx, ty, tz := fx-float64(ix), fy-float64(iy), fz-float64(iz)
		s := &op.sten[i]
		k := 0
		for a := 0; a < 2; a++ {
			wa := 1 - tx
			if a == 1 {
				wa = tx
			}
			for b := 0; b < 2; b++ {
				wb := 1 - ty
				if b == 1 {
					wb = ty
				}
				for c2 := 0; c2 < 2; c2++ {
					wc := 1 - tz
					if c2 == 1 {
						wc = tz
					}
					s.idx[k] = op.nodeIdx(ix+a, iy+b, iz+c2)
					s.w[k] = wa * wb * wc
					k++
				}
			}
		}
	}
}

// nodeIdx linearizes logical node coordinates (clamped into range).
func (op *Operator) nodeIdx(ix, iy, iz int) int32 {
	ix = clamp(ix, op.nx)
	iy = clamp(iy, op.ny)
	iz = clamp(iz, op.nz)
	return int32((ix*op.ny+iy)*op.nz + iz)
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// nodeCoords inverts nodeIdx.
func (op *Operator) nodeCoords(idx int32) (int, int, int) {
	iz := int(idx) % op.nz
	iy := (int(idx) / op.nz) % op.ny
	ix := int(idx) / (op.nz * op.ny)
	return ix, iy, iz
}

// gridPair computes the grid-mediated interaction S_ij between the
// stencils of panels i and j (unit densities): sum_ab w_ia G(a-b) w_jb.
func (op *Operator) gridPair(i, j int) float64 {
	si, sj := &op.sten[i], &op.sten[j]
	var sum float64
	for a := 0; a < 8; a++ {
		ax, ay, az := op.nodeCoords(si.idx[a])
		for b := 0; b < 8; b++ {
			bx, by, bz := op.nodeCoords(sj.idx[b])
			sum += si.w[a] * sj.w[b] * op.kernelValue(ax-bx, ay-by, az-bz)
		}
	}
	return sum
}

// buildPrecorrection finds near pairs via spatial hashing and stores
// (exact - grid) entries.
func (op *Operator) buildPrecorrection() {
	cell := op.opt.NearRadius * op.h
	type key struct{ x, y, z int32 }
	buckets := make(map[key][]int32)
	keyOf := func(c geom.Vec3) key {
		return key{
			int32(math.Floor((c.X - op.origin.X) / cell)),
			int32(math.Floor((c.Y - op.origin.Y) / cell)),
			int32(math.Floor((c.Z - op.origin.Z) / cell)),
		}
	}
	for i, c := range op.centers {
		k := keyOf(c)
		buckets[k] = append(buckets[k], int32(i))
	}
	limit := op.opt.NearRadius * op.h

	var wg sync.WaitGroup
	sem := make(chan struct{}, op.opt.Workers)
	for i := range op.panels {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			ci := op.centers[i]
			k := keyOf(ci)
			var idx []int32
			var val []float64
			for dx := int32(-1); dx <= 1; dx++ {
				for dy := int32(-1); dy <= 1; dy++ {
					for dz := int32(-1); dz <= 1; dz++ {
						for _, j := range buckets[key{k.x + dx, k.y + dy, k.z + dz}] {
							if ci.Dist(op.centers[j]) > limit {
								continue
							}
							exact := op.scale * kernel.RectGalerkin(op.opt.Cfg,
								op.panels[i].Rect, op.panels[j].Rect)
							gridPart := op.scale * op.areas[i] * op.areas[int(j)] * op.gridPair(i, int(j))
							idx = append(idx, j)
							val = append(val, exact-gridPart)
						}
					}
				}
			}
			op.nearIdx[i] = idx
			op.nearVal[i] = val
		}(i)
	}
	wg.Wait()
}

// Dim implements linalg.Matvec.
func (op *Operator) Dim() int { return len(op.panels) }

// GridNodes returns the logical grid dimensions (diagnostics).
func (op *Operator) GridNodes() (int, int, int) { return op.nx, op.ny, op.nz }

// NearEntries returns the number of precorrected pairs.
func (op *Operator) NearEntries() int {
	n := 0
	for _, r := range op.nearIdx {
		n += len(r)
	}
	return n
}

// Apply implements linalg.Matvec: project, convolve, interpolate, correct.
func (op *Operator) Apply(dst, x []float64) {
	op.mu.Lock()
	defer op.mu.Unlock()

	for i := range op.charges {
		op.charges[i] = x[i] * op.areas[i]
	}

	// Project onto the padded grid (logical region only).
	g := op.work
	for i := range g.Data {
		g.Data[i] = 0
	}
	for i := range op.panels {
		s := &op.sten[i]
		q := op.charges[i]
		for k := 0; k < 8; k++ {
			ix, iy, iz := op.nodeCoords(s.idx[k])
			g.Data[g.Idx(ix, iy, iz)] += complex(q*s.w[k], 0)
		}
	}

	// Convolve via FFT (this global transform is the serial bottleneck
	// that limits parallel efficiency in [1]).
	g.Forward3()
	g.MulPointwise(op.kernelHat)
	g.Inverse3()

	// Interpolate + precorrect, parallel over panels.
	var wg sync.WaitGroup
	nw := op.opt.Workers
	chunk := (len(op.panels) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(op.panels) {
			hi = len(op.panels)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s := &op.sten[i]
				var phi float64
				for k := 0; k < 8; k++ {
					ix, iy, iz := op.nodeCoords(s.idx[k])
					phi += s.w[k] * real(g.Data[g.Idx(ix, iy, iz)])
				}
				y := op.scale * op.areas[i] * phi
				idx := op.nearIdx[i]
				val := op.nearVal[i]
				for k, j := range idx {
					y += val[k] * x[j]
				}
				dst[i] = y
			}
		}(lo, hi)
	}
	wg.Wait()
}

var _ linalg.Matvec = (*Operator)(nil)
