package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/plan"
)

// GET /metrics exposes every /stats counter plus latency histograms in
// Prometheus text exposition format (version 0.0.4), hand-written so
// the daemon stays dependency-free. The name inventory:
//
//	parbem_uptime_seconds                     gauge
//	parbem_queue_cap / parbem_runners /
//	parbem_pool_workers / parbem_worker_budget gauges (configuration)
//	parbem_jobs_accepted_total                counter
//	parbem_jobs_rejected_queue_full_total     counter
//	parbem_jobs_rejected_rate_limited_total   counter
//	parbem_bad_requests_total                 counter
//	parbem_jobs_completed_total               counter
//	parbem_jobs_failed_total                  counter
//	parbem_jobs_cancelled_total               counter
//	parbem_deadline_exceeded_total            counter
//	parbem_jobs_queued{class=}                gauge (interactive|bulk)
//	parbem_jobs_running                       gauge
//	parbem_extracts_total / parbem_sweeps_total counters
//	parbem_sweep_points_total / parbem_sweep_point_errors_total counters
//	parbem_draining                           gauge (0/1)
//	parbem_jobs_rejected_draining_total       counter
//	parbem_jobs_replayed_total                counter
//	parbem_jobs_interrupted_total             counter
//	parbem_idempotent_hits_total              counter
//	parbem_engine_state_hits_total / _misses_total counters
//	parbem_engine_pair_hits_total / _misses_total  counters
//	parbem_engine_pair_entries                gauge
//	parbem_artifact_entries / parbem_artifact_bytes gauges
//	parbem_artifact_local_hits_total /
//	parbem_artifact_peer_hits_total /
//	parbem_artifact_misses_total /
//	parbem_artifact_puts_total /
//	parbem_artifact_peer_errors_total /
//	parbem_artifact_evictions_total /
//	parbem_artifact_corrupt_total             counters (ArtifactDir set)
//	parbem_queue_wait_seconds{class=}         histogram
//	parbem_stage_seconds{stage=,backend=}     histogram
//	    stage: discretize|topology|near_field|factorize|solve

// latencyBounds are the histogram bucket upper bounds in seconds,
// spanning sub-millisecond queue waits to multi-second dense solves.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram with lock-free
// observation; counts[len(bounds)] is the +Inf bucket.
type histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sumNs  atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	h.counts[sort.SearchFloat64s(h.bounds, d.Seconds())].Add(1)
	h.sumNs.Add(int64(d))
}

// count is the total number of observations.
func (h *histogram) count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// stageKey labels one per-stage latency series.
type stageKey struct{ stage, backend string }

// metrics holds the server's latency histograms; counters live in
// counters (serve.go) and are exported by both /stats and /metrics.
type metrics struct {
	queueWait [numClasses]*histogram

	mu    sync.Mutex
	stage map[stageKey]*histogram
}

func newMetrics() *metrics {
	m := &metrics{stage: make(map[stageKey]*histogram)}
	for i := range m.queueWait {
		m.queueWait[i] = newHistogram(latencyBounds)
	}
	return m
}

// stageHist returns (creating on first use) the series of one
// stage/backend pair.
func (m *metrics) stageHist(stage, backend string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := stageKey{stage, backend}
	h := m.stage[k]
	if h == nil {
		h = newHistogram(latencyBounds)
		m.stage[k] = h
	}
	return h
}

// observeStages records the per-stage build latencies of one
// extraction under its backend label. A cached Result repeats the
// original build's timings — recognizable because the request's wall
// time sits far below the reported stage sum — and contributes
// nothing: the histograms measure work performed, not results served.
func (m *metrics) observeStages(backend string, st plan.StageTimings, wall time.Duration) {
	sum := st.Discretize + st.Topology + st.NearField + st.Factorize + st.Solve
	if sum == 0 || wall < sum/2 {
		return
	}
	for _, sb := range [...]struct {
		name string
		d    time.Duration
	}{
		{"discretize", st.Discretize},
		{"topology", st.Topology},
		{"near_field", st.NearField},
		{"factorize", st.Factorize},
		{"solve", st.Solve},
	} {
		if sb.d > 0 {
			m.stageHist(sb.name, backend).observe(sb.d)
		}
	}
}

// fmtFloat renders a float the way Prometheus expects (shortest
// round-trip decimal).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCounter / writeGauge emit one unlabelled series with metadata.
func writeCounter(b *strings.Builder, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
}

// histSeries is one labelled series of a histogram family.
type histSeries struct {
	labels string // rendered label pairs, no braces, e.g. `class="bulk"`
	h      *histogram
}

// writeHistogram emits one histogram family in exposition order:
// cumulative le buckets, _sum, _count per series.
func writeHistogram(b *strings.Builder, name, help string, series []histSeries) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, sr := range series {
		var cum uint64
		for i, bound := range sr.h.bounds {
			cum += sr.h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, sr.labels, fmtFloat(bound), cum)
		}
		cum += sr.h.counts[len(sr.h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, sr.labels, cum)
		fmt.Fprintf(b, "%s_sum{%s} %s\n", name, sr.labels, fmtFloat(float64(sr.h.sumNs.Load())/1e9))
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, sr.labels, cum)
	}
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder

	writeGauge(&b, "parbem_uptime_seconds", "Seconds since the server started.", st.UptimeSec)
	writeGauge(&b, "parbem_queue_cap", "Total admission queue capacity across classes.", float64(st.QueueCap))
	writeGauge(&b, "parbem_runners", "Concurrent job runner goroutines.", float64(st.Runners))
	writeGauge(&b, "parbem_pool_workers", "Persistent engine pool size.", float64(st.PoolWorkers))
	writeGauge(&b, "parbem_worker_budget", "Pool workers one job may occupy (0 = all).", float64(st.WorkerBudget))

	writeCounter(&b, "parbem_jobs_accepted_total", "Jobs admitted to a queue.", st.Accepted)
	writeCounter(&b, "parbem_jobs_rejected_queue_full_total", "Jobs rejected because their class queue was full.", st.RejectedQueueFull)
	writeCounter(&b, "parbem_jobs_rejected_rate_limited_total", "Jobs rejected by per-tenant rate limits.", st.RejectedRateLimited)
	writeCounter(&b, "parbem_bad_requests_total", "Requests rejected at decode time.", st.BadRequests)
	writeCounter(&b, "parbem_jobs_completed_total", "Jobs that finished successfully.", st.Completed)
	writeCounter(&b, "parbem_jobs_failed_total", "Jobs that finished with an error (including deadline expiries).", st.Failed)
	writeCounter(&b, "parbem_jobs_cancelled_total", "Jobs abandoned by their client before completion.", st.Cancelled)
	writeCounter(&b, "parbem_deadline_exceeded_total", "Jobs stopped by their timeout_ms deadline.", st.DeadlineExceeded)

	fmt.Fprintf(&b, "# HELP parbem_jobs_queued Jobs waiting in the admission queue by class.\n# TYPE parbem_jobs_queued gauge\n")
	fmt.Fprintf(&b, "parbem_jobs_queued{class=\"interactive\"} %d\n", st.QueuedInteractive)
	fmt.Fprintf(&b, "parbem_jobs_queued{class=\"bulk\"} %d\n", st.QueuedBulk)
	writeGauge(&b, "parbem_jobs_running", "Jobs currently executing.", float64(st.Running))

	writeCounter(&b, "parbem_extracts_total", "Extract jobs started.", st.Extracts)
	writeCounter(&b, "parbem_sweeps_total", "Sweep jobs started.", st.Sweeps)
	writeCounter(&b, "parbem_sweep_points_total", "Sweep points delivered to clients.", st.SweepPoints)
	writeCounter(&b, "parbem_sweep_point_errors_total", "Delivered sweep points carrying a per-point error.", st.SweepPointErrors)

	draining := 0.0
	if st.Draining {
		draining = 1
	}
	writeGauge(&b, "parbem_draining", "1 while the server drains for shutdown.", draining)
	writeCounter(&b, "parbem_jobs_rejected_draining_total", "Jobs rejected because the server was draining.", st.RejectedDraining)
	writeCounter(&b, "parbem_jobs_replayed_total", "Unfinished journaled jobs re-enqueued at startup.", st.Replayed)
	writeCounter(&b, "parbem_jobs_interrupted_total", "Running jobs cut short by an overrun drain.", st.Interrupted)
	writeCounter(&b, "parbem_idempotent_hits_total", "Async submissions deduplicated by idempotency key.", st.IdempotentHits)

	writeCounter(&b, "parbem_engine_state_hits_total", "Engine basis/table/quad/plan LRU hits.", st.Engine.StateHits)
	writeCounter(&b, "parbem_engine_state_misses_total", "Engine basis/table/quad/plan LRU misses.", st.Engine.StateMisses)
	writeCounter(&b, "parbem_engine_pair_hits_total", "Template pair-integral cache hits.", st.Engine.PairHits)
	writeCounter(&b, "parbem_engine_pair_misses_total", "Template pair-integral cache misses.", st.Engine.PairMisses)
	writeGauge(&b, "parbem_engine_pair_entries", "Template pair-integral cache size.", float64(st.Engine.PairEntries))

	if a := st.Artifacts; a != nil {
		writeGauge(&b, "parbem_artifact_entries", "Resident artifacts in the persistent store.", float64(a.Entries))
		writeGauge(&b, "parbem_artifact_bytes", "Resident artifact payload bytes.", float64(a.Bytes))
		writeCounter(&b, "parbem_artifact_local_hits_total", "Stage artifacts served from the local disk store.", a.LocalHits)
		writeCounter(&b, "parbem_artifact_peer_hits_total", "Stage artifacts fetched from a replica peer.", a.PeerHits)
		writeCounter(&b, "parbem_artifact_misses_total", "Stage artifact lookups that missed everywhere.", a.Misses)
		writeCounter(&b, "parbem_artifact_puts_total", "Stage artifacts written through to the store.", a.Puts)
		writeCounter(&b, "parbem_artifact_peer_errors_total", "Peer artifact fetches that failed (transport or non-200).", a.PeerErrors)
		writeCounter(&b, "parbem_artifact_evictions_total", "Artifacts evicted by the size budget.", a.Evictions)
		writeCounter(&b, "parbem_artifact_corrupt_total", "Artifacts dropped for failing frame verification.", a.Corrupt)
	}

	qw := make([]histSeries, 0, numClasses)
	for i, h := range s.m.queueWait {
		qw = append(qw, histSeries{labels: fmt.Sprintf("class=%q", classNames[i]), h: h})
	}
	writeHistogram(&b, "parbem_queue_wait_seconds", "Admission-to-start wait by priority class.", qw)

	s.m.mu.Lock()
	keys := make([]stageKey, 0, len(s.m.stage))
	for k := range s.m.stage {
		keys = append(keys, k)
	}
	stage := make([]histSeries, 0, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].stage != keys[j].stage {
			return keys[i].stage < keys[j].stage
		}
		return keys[i].backend < keys[j].backend
	})
	for _, k := range keys {
		stage = append(stage, histSeries{
			labels: fmt.Sprintf("stage=%q,backend=%q", k.stage, k.backend),
			h:      s.m.stage[k],
		})
	}
	s.m.mu.Unlock()
	writeHistogram(&b, "parbem_stage_seconds", "Pipeline stage build latency by stage and backend.", stage)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
