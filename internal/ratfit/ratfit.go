// Package ratfit implements the rational-fitting integration acceleration
// of paper Section 4.2.4: a multivariable rational function
//
//	f(w) = fN(w) / fD(w)
//
// of degree (n, m) is fitted to training samples of an integral expression
// by the linearized constrained least-squares problem of paper Eq. (12):
//
//	minimize   sum_i | f~(w_i) fD(w_i) - fN(w_i) |^2
//	subject to sum_{|a'|<=m} beta_D,a' = 1
//
// The constraint removes the scaling degree of freedom; it is eliminated by
// substitution, leaving an ordinary linear least-squares problem solved by
// Householder QR (the paper uses the STINS solver of [2]; the linearized
// problem is the same first step).
package ratfit

import (
	"errors"
	"fmt"
	"math"

	"parbem/internal/linalg"
)

// MultiIndices enumerates all k-dimensional multi-indices with total degree
// |alpha| <= deg, in graded lexicographic order. The zero index comes first.
func MultiIndices(k, deg int) [][]int {
	if k <= 0 {
		panic("ratfit: non-positive dimension")
	}
	var out [][]int
	idx := make([]int, k)
	for d := 0; d <= deg; d++ {
		enumFixedDegree(idx, 0, d, &out)
	}
	return out
}

// enumFixedDegree appends all completions of idx[:pos] with remaining
// degree rem distributed over idx[pos:].
func enumFixedDegree(idx []int, pos, rem int, out *[][]int) {
	if pos == len(idx)-1 {
		idx[pos] = rem
		c := make([]int, len(idx))
		copy(c, idx)
		*out = append(*out, c)
		return
	}
	for v := rem; v >= 0; v-- {
		idx[pos] = v
		enumFixedDegree(idx, pos+1, rem-v, out)
	}
}

// monomial evaluates w^alpha.
func monomial(w []float64, alpha []int) float64 {
	p := 1.0
	for i, a := range alpha {
		for j := 0; j < a; j++ {
			p *= w[i]
		}
	}
	return p
}

// Rational is a fitted multivariable rational function.
type Rational struct {
	Dim          int
	NumIdx       [][]int // numerator multi-indices
	DenIdx       [][]int // denominator multi-indices (zero index first)
	NumCoef      []float64
	DenCoef      []float64 // same order as DenIdx; sums to 1
	TrainMaxRel  float64   // max relative error over the training set
	TrainSamples int
}

// Eval evaluates the rational function at w (len == Dim).
func (r *Rational) Eval(w ...float64) float64 {
	if len(w) != r.Dim {
		panic("ratfit: Eval arity mismatch")
	}
	var num, den float64
	for i, a := range r.NumIdx {
		num += r.NumCoef[i] * monomial(w, a)
	}
	for i, a := range r.DenIdx {
		den += r.DenCoef[i] * monomial(w, a)
	}
	return num / den
}

// Eval2 is an allocation-free fast path for 2-input rationals with dense
// graded coefficients; it falls back to Eval semantics.
func (r *Rational) Eval2(w0, w1 float64) float64 {
	var num, den float64
	for i, a := range r.NumIdx {
		num += r.NumCoef[i] * pow2(w0, w1, a[0], a[1])
	}
	for i, a := range r.DenIdx {
		den += r.DenCoef[i] * pow2(w0, w1, a[0], a[1])
	}
	return num / den
}

func pow2(w0, w1 float64, a0, a1 int) float64 {
	p := 1.0
	for j := 0; j < a0; j++ {
		p *= w0
	}
	for j := 0; j < a1; j++ {
		p *= w1
	}
	return p
}

// ErrUnderdetermined is returned when there are fewer samples than unknowns.
var ErrUnderdetermined = errors.New("ratfit: fewer samples than coefficients")

// Fit solves the linearized constrained problem for training samples
// (points[i], values[i]) with numerator degree degN and denominator degree
// degM over dim variables.
func Fit(points [][]float64, values []float64, dim, degN, degM int) (*Rational, error) {
	if len(points) != len(values) {
		return nil, errors.New("ratfit: points/values length mismatch")
	}
	numIdx := MultiIndices(dim, degN)
	denIdx := MultiIndices(dim, degM)
	nNum := len(numIdx)
	nDen := len(denIdx) // includes the zero index eliminated by constraint
	unknowns := nNum + nDen - 1
	ns := len(points)
	if ns < unknowns {
		return nil, fmt.Errorf("%w: %d samples, %d unknowns", ErrUnderdetermined, ns, unknowns)
	}

	// Residual_i = f~_i * [1 + sum_{a'!=0} bD_a' (w^a' - 1)] - sum_a bN_a w^a.
	// Unknown ordering: [bD_{a'!=0} ..., bN_a ...]; rhs b_i = -f~_i.
	// Rows are scaled by 1/|f~_i| so the linearized objective controls
	// *relative* error: for decaying Green's-function integrals the small
	// far-field values matter as much as the near-field ones.
	a := linalg.NewDense(ns, unknowns)
	b := make([]float64, ns)
	var scaleFloor float64
	for _, v := range values {
		if av := math.Abs(v); av > scaleFloor {
			scaleFloor = av
		}
	}
	scaleFloor *= 1e-9
	for i, w := range points {
		fi := values[i]
		inv := 1.0
		if av := math.Abs(fi); av > scaleFloor {
			inv = 1 / av
		} else if scaleFloor > 0 {
			inv = 1 / scaleFloor
		}
		col := 0
		for j := 1; j < nDen; j++ {
			a.Set(i, col, inv*fi*(monomial(w, denIdx[j])-1))
			col++
		}
		for j := 0; j < nNum; j++ {
			a.Set(i, col, -inv*monomial(w, numIdx[j]))
			col++
		}
		b[i] = -inv * fi
	}
	qr, err := linalg.NewQR(a)
	if err != nil {
		return nil, err
	}
	theta, err := qr.LeastSquares(b)
	if err != nil {
		return nil, err
	}

	r := &Rational{
		Dim:          dim,
		NumIdx:       numIdx,
		DenIdx:       denIdx,
		NumCoef:      make([]float64, nNum),
		DenCoef:      make([]float64, nDen),
		TrainSamples: ns,
	}
	sumD := 0.0
	for j := 1; j < nDen; j++ {
		r.DenCoef[j] = theta[j-1]
		sumD += theta[j-1]
	}
	r.DenCoef[0] = 1 - sumD
	copy(r.NumCoef, theta[nDen-1:])

	// Record training error for the caller's error control.
	for i, w := range points {
		got := r.Eval(w...)
		den := math.Abs(values[i])
		if den < 1e-12 {
			den = 1e-12
		}
		if rel := math.Abs(got-values[i]) / den; rel > r.TrainMaxRel {
			r.TrainMaxRel = rel
		}
	}
	return r, nil
}

// weylAlphas are square roots of distinct square-free integers: pairwise
// rationally independent, so the Weyl lattice they generate equidistributes
// in every dimension count (square roots of arbitrary integers can be
// rationally dependent — e.g. sqrt(8) = 2*sqrt(2) — which collapses the
// lattice onto a lower-dimensional manifold and ruins sampling).
var weylAlphas = [...]float64{
	math.Sqrt2, 1.7320508075688772, 2.23606797749979, 2.6457513110645907,
	3.3166247903554, 3.605551275463989, 4.123105625617661, 4.358898943540674,
}

// WeylPoint fills w with the p-th point of the Weyl lattice over [0,1)^dim.
func WeylPoint(w []float64, p int) {
	for i := range w {
		w[i] = math.Mod(weylAlphas[i%len(weylAlphas)]*float64(p+1), 1)
	}
}

// FitFunc samples f on a low-discrepancy lattice over the box [lo, hi]^dim
// (per-dimension bounds) and fits a rational of degree (degN, degM).
func FitFunc(f func(w []float64) float64, lo, hi []float64, nSamples, degN, degM int) (*Rational, error) {
	if len(lo) != len(hi) {
		return nil, errors.New("ratfit: bounds length mismatch")
	}
	dim := len(lo)
	pts := make([][]float64, nSamples)
	vals := make([]float64, nSamples)
	u := make([]float64, dim)
	for p := 0; p < nSamples; p++ {
		WeylPoint(u, p)
		w := make([]float64, dim)
		for i := 0; i < dim; i++ {
			w[i] = lo[i] + u[i]*(hi[i]-lo[i])
		}
		pts[p] = w
		vals[p] = f(w)
	}
	return Fit(pts, vals, dim, degN, degM)
}
