package fmm

import (
	"math"
	"testing"

	"parbem/internal/geom"
)

// variantPanels builds the crossing pair at separation h with box
// provenance, for the reuse tests.
func variantPanels(h, edge float64) ([]geom.Panel, []geom.BoxRef, *geom.Structure) {
	sp := geom.DefaultCrossingPair()
	sp.H = h
	st := sp.Build()
	panels, prov := st.PanelizeProv(edge)
	return panels, prov, st
}

// classesFor derives the per-panel rigid-motion classes between two
// crossing variants the way internal/plan does: one class per distinct
// box translation.
func classesFor(a, b *geom.Structure, prov []geom.BoxRef) []int32 {
	d := geom.Diff(a, b)
	if !d.Comparable {
		return nil
	}
	classOf := map[geom.Vec3]int32{}
	cls := make([]int32, len(prov))
	for i, pr := range prov {
		bd := d.Boxes[pr.Conductor][pr.Box]
		if bd.Change == geom.BoxChanged {
			cls[i] = -1
			continue
		}
		id, ok := classOf[bd.Delta]
		if !ok {
			id = int32(len(classOf))
			classOf[bd.Delta] = id
		}
		cls[i] = id
	}
	return cls
}

// TestOperatorReuseMatchesFresh pins the delta-aware construction to a
// from-scratch build of the same variant: the reused operator must copy
// a substantial share of its exact entries from the previous variant
// and still produce (near-)identical matvecs.
func TestOperatorReuseMatchesFresh(t *testing.T) {
	const edge = 0.4e-6
	pa, _, sta := variantPanels(0.5e-6, edge)
	pb, prov, stb := variantPanels(0.7e-6, edge)
	if len(pa) != len(pb) {
		t.Fatalf("variant panel counts differ: %d vs %d", len(pa), len(pb))
	}
	opt := Options{Workers: 1}

	prev := NewOperator(pa, opt)
	fresh := NewOperator(pb, opt)
	cls := classesFor(sta, stb, prov)
	if cls == nil {
		t.Fatal("variants not comparable")
	}
	reused := NewOperatorWith(NewTopology(pb, opt), pb, opt, &Reuse{Prev: prev, Class: cls})

	copied, computed := reused.NearReuse()
	if copied == 0 {
		t.Fatal("reuse construction copied no entries")
	}
	if copied < computed {
		t.Errorf("copied %d < computed %d: within-layer pairs should dominate the near field",
			copied, computed)
	}
	if c, _ := fresh.NearReuse(); c != 0 {
		t.Errorf("fresh construction reports %d copied entries", c)
	}

	// Matvec agreement: copied entries differ from re-integrated ones
	// only through the ~ulp coordinate noise of the variant build.
	n := len(pb)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(3*i + 1))
	}
	yf := make([]float64, n)
	yr := make([]float64, n)
	fresh.Apply(yf, x)
	reused.Apply(yr, x)
	var num, den float64
	for i := range yf {
		d := yf[i] - yr[i]
		num += d * d
		den += yf[i] * yf[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-12 {
		t.Errorf("reused matvec deviates from fresh by %g relative", rel)
	}
}

// TestReuseLookupBitwise pins the lookup addressing: every value the
// previous-variant lookup serves must be bitwise equal to canonically
// re-integrating that pair with the previous variant's panels.
func TestReuseLookupBitwise(t *testing.T) {
	const edge = 0.4e-6
	pa, _, sta := variantPanels(0.5e-6, edge)
	_, prov, stb := variantPanels(0.7e-6, edge)
	opt := Options{Workers: 1}
	prev := NewOperator(pa, opt)
	cls := classesFor(sta, stb, prov)
	look := newNearLookup(&Reuse{Prev: prev, Class: cls})
	n := int32(len(pa))
	checked, bad := 0, 0
	for pi := int32(0); pi < n; pi++ {
		for pj := pi; pj < n; pj += 7 {
			v, ok := look.value(pi, pj)
			if !ok {
				continue
			}
			checked++
			if v != prev.nearValue(pi, pj, true) {
				bad++
			}
		}
	}
	if checked == 0 {
		t.Fatal("lookup served no entries")
	}
	if bad != 0 {
		t.Errorf("%d of %d lookup values not bitwise equal to canonical integration", bad, checked)
	}
}

// TestOperatorReuseRejectsMismatch verifies that incompatible reuse
// requests degrade to a full fresh fill instead of corrupting entries.
func TestOperatorReuseRejectsMismatch(t *testing.T) {
	const edge = 0.5e-6
	pa, _, _ := variantPanels(0.5e-6, edge)
	pb, prov, _ := variantPanels(0.7e-6, edge)
	opt := Options{Workers: 1}
	prev := NewOperator(pa, opt)

	// Eps mismatch: copied values would bake in the wrong scale.
	cls := make([]int32, len(prov))
	other := Options{Workers: 1, Eps: 2 * prev.opt.Eps}
	op := NewOperatorWith(NewTopology(pb, other), pb, other, &Reuse{Prev: prev, Class: cls})
	if c, _ := op.NearReuse(); c != 0 {
		t.Errorf("eps-mismatched reuse copied %d entries", c)
	}

	// Class slice length mismatch.
	op = NewOperatorWith(NewTopology(pb, opt), pb, opt, &Reuse{Prev: prev, Class: cls[:1]})
	if c, _ := op.NearReuse(); c != 0 {
		t.Errorf("short-class reuse copied %d entries", c)
	}
}
