package fmm

// refOperator is a frozen copy of the original recursive operator (the
// pre-interaction-list implementation): per-target-panel Barnes-Hut tree
// walks with adjacency-list membership checks, recomputed each Apply.
// It is kept test-only, as the accuracy and speed reference that
// TestFMMOperatorSpeedup measures the list-based operator against.

import (
	"math"
	"sync"

	"parbem/internal/geom"
	"parbem/internal/kernel"
)

type refOperator struct {
	panels []geom.Panel
	opt    Options
	t      *tree

	centers []geom.Vec3
	areas   []float64

	adj [][]int32 // per-leaf adjacency lists (indexed by node id)

	nearIdx [][]int32
	nearVal [][]float64

	mono []float64
	dip  [][3]float64
	quad [][6]float64

	charges []float64
	scale   float64
}

func newRefOperator(panels []geom.Panel, opt Options) *refOperator {
	opt.defaults()
	t := buildTree(panels, opt.LeafSize)

	op := &refOperator{
		panels:  panels,
		opt:     opt,
		t:       t,
		centers: make([]geom.Vec3, len(panels)),
		areas:   make([]float64, len(panels)),
		adj:     make([][]int32, len(t.nodes)),
		nearIdx: make([][]int32, len(panels)),
		nearVal: make([][]float64, len(panels)),
		mono:    make([]float64, len(t.nodes)),
		dip:     make([][3]float64, len(t.nodes)),
		quad:    make([][6]float64, len(t.nodes)),
		charges: make([]float64, len(panels)),
		scale:   1 / (kernel.FourPi * opt.Eps),
	}
	for i, p := range panels {
		op.centers[i] = p.Center()
		op.areas[i] = p.Area()
	}

	// Leaf adjacency, as computeAdjacency did in the seed.
	leaves := t.leaves()
	for _, a := range leaves {
		for _, b := range leaves {
			limit := opt.NearFactor * math.Max(t.nodes[a].halfSize, t.nodes[b].halfSize) * 2
			if t.boxDist(a, b) <= limit {
				op.adj[a] = append(op.adj[a], b)
			}
		}
	}

	// Exact near-field assembly, parallel over leaves.
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for _, lf := range leaves {
		wg.Add(1)
		sem <- struct{}{}
		go func(lf int32) {
			defer func() { <-sem; wg.Done() }()
			nd := &t.nodes[lf]
			for _, pi := range t.perm[nd.lo:nd.hi] {
				var idx []int32
				var val []float64
				for _, al := range op.adj[lf] {
					an := &t.nodes[al]
					for _, pj := range t.perm[an.lo:an.hi] {
						v := kernel.RectGalerkin(opt.Cfg, panels[pi].Rect, panels[pj].Rect)
						idx = append(idx, pj)
						val = append(val, op.scale*v)
					}
				}
				op.nearIdx[pi] = idx
				op.nearVal[pi] = val
			}
		}(lf)
	}
	wg.Wait()
	return op
}

func (op *refOperator) Dim() int { return len(op.panels) }

func (op *refOperator) isAdjacent(a, b int32) bool {
	for _, x := range op.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

func (op *refOperator) Apply(dst, x []float64) {
	for i := range op.charges {
		op.charges[i] = x[i] * op.areas[i]
	}
	op.upward(0)

	leaves := op.t.leaves()
	var wg sync.WaitGroup
	work := make(chan int32)
	for w := 0; w < op.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lf := range work {
				op.evalLeaf(lf, dst, x)
			}
		}()
	}
	for _, lf := range leaves {
		work <- lf
	}
	close(work)
	wg.Wait()
}

func (op *refOperator) upward(id int32) {
	nd := &op.t.nodes[id]
	var mono float64
	var dip [3]float64
	var quad [6]float64
	if nd.leaf {
		for _, pi := range op.t.perm[nd.lo:nd.hi] {
			q := op.charges[pi]
			mono += q
			r := op.centers[pi].Sub(nd.center)
			dip[0] += q * r.X
			dip[1] += q * r.Y
			dip[2] += q * r.Z
			quad[0] += q * r.X * r.X
			quad[1] += q * r.Y * r.Y
			quad[2] += q * r.Z * r.Z
			quad[3] += q * r.X * r.Y
			quad[4] += q * r.X * r.Z
			quad[5] += q * r.Y * r.Z
		}
	} else {
		for _, ch := range nd.children {
			if ch < 0 {
				continue
			}
			op.upward(ch)
			cn := &op.t.nodes[ch]
			d := cn.center.Sub(nd.center)
			q := op.mono[ch]
			cd := op.dip[ch]
			cq := op.quad[ch]
			mono += q
			dip[0] += cd[0] + q*d.X
			dip[1] += cd[1] + q*d.Y
			dip[2] += cd[2] + q*d.Z
			quad[0] += cq[0] + 2*cd[0]*d.X + q*d.X*d.X
			quad[1] += cq[1] + 2*cd[1]*d.Y + q*d.Y*d.Y
			quad[2] += cq[2] + 2*cd[2]*d.Z + q*d.Z*d.Z
			quad[3] += cq[3] + cd[0]*d.Y + cd[1]*d.X + q*d.X*d.Y
			quad[4] += cq[4] + cd[0]*d.Z + cd[2]*d.X + q*d.X*d.Z
			quad[5] += cq[5] + cd[1]*d.Z + cd[2]*d.Y + q*d.Y*d.Z
		}
	}
	op.mono[id] = mono
	op.dip[id] = dip
	op.quad[id] = quad
}

func (op *refOperator) evalLeaf(lf int32, dst, x []float64) {
	nd := &op.t.nodes[lf]
	for _, pi := range op.t.perm[nd.lo:nd.hi] {
		var sum float64
		idx := op.nearIdx[pi]
		val := op.nearVal[pi]
		for k, pj := range idx {
			sum += val[k] * x[pj]
		}
		phi := op.evalFar(0, lf, op.centers[pi])
		dst[pi] = sum + op.scale*op.areas[pi]*phi
	}
}

func (op *refOperator) evalFar(id, tl int32, p geom.Vec3) float64 {
	nd := &op.t.nodes[id]
	if nd.leaf {
		if op.isAdjacent(tl, id) {
			return 0 // handled exactly
		}
		var sum float64
		for _, pj := range op.t.perm[nd.lo:nd.hi] {
			q := op.charges[pj]
			if q == 0 {
				continue
			}
			sum += q / p.Dist(op.centers[pj])
		}
		return sum
	}
	r := p.Sub(nd.center)
	dist := r.Norm()
	if dist > 2*nd.halfSize/op.opt.Theta {
		return op.evalMultipole(id, r, dist)
	}
	var sum float64
	for _, ch := range nd.children {
		if ch >= 0 {
			sum += op.evalFar(ch, tl, p)
		}
	}
	return sum
}

func (op *refOperator) evalMultipole(id int32, r geom.Vec3, dist float64) float64 {
	inv := 1 / dist
	inv2 := inv * inv
	inv3 := inv2 * inv
	inv5 := inv3 * inv2
	d := op.dip[id]
	q := op.quad[id]
	phi := op.mono[id]*inv + (d[0]*r.X+d[1]*r.Y+d[2]*r.Z)*inv3
	tr := q[0] + q[1] + q[2]
	rr := q[0]*r.X*r.X + q[1]*r.Y*r.Y + q[2]*r.Z*r.Z +
		2*(q[3]*r.X*r.Y+q[4]*r.X*r.Z+q[5]*r.Y*r.Z)
	phi += 0.5 * (3*rr - tr*dist*dist) * inv5
	return phi
}
