package geomio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"parbem/internal/geom"
)

const sample = `
# two crossing wires
structure crossing
unit 1e-6
conductor bottom
wire x  0 0 0   10 1 0.5
conductor top
wire y  0 0 1.0 10 1 0.5
`

func TestReadSample(t *testing.T) {
	st, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "crossing" || st.NumConductors() != 2 {
		t.Fatalf("parsed %q with %d conductors", st.Name, st.NumConductors())
	}
	b := st.Conductors[0].Boxes[0]
	if got := b.Size(); math.Abs(got.X-10e-6) > 1e-18 || math.Abs(got.Y-1e-6) > 1e-18 {
		t.Errorf("bottom wire size = %v", got)
	}
}

func TestReadBoxes(t *testing.T) {
	src := `structure s
conductor c
box 0 0 0 1 2 3
box 5 5 5 4 4 4
`
	st, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Conductors[0].Boxes) != 2 {
		t.Fatal("want 2 boxes")
	}
	// Second box must be normalized (corners given in reverse).
	b := st.Conductors[0].Boxes[1]
	if math.Abs(b.Min.X-4e-6) > 1e-20 || math.Abs(b.Max.X-5e-6) > 1e-20 {
		t.Errorf("box not normalized: %+v", b)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"box 0 0 0 1 1 1\n",                       // box before conductor
		"conductor c\nbox 1 2 3\n",                // too few numbers
		"conductor c\nwire q 0 0 0 1 1 1\n",       // bad direction
		"frobnicate\n",                            // unknown directive
		"unit -5\nconductor c\nbox 0 0 0 1 1 1\n", // bad unit
		"structure\n",                             // missing name
		"conductor c\nbox 0 0 0 0 1 1\n",          // degenerate box fails Validate
		"conductor c\nbox a b c d e f\n",          // non-numeric
	}
	for _, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundtrip(t *testing.T) {
	orig := geom.DefaultBus(3, 2).Build()
	var buf bytes.Buffer
	if err := Write(&buf, orig, 1e-6); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumConductors() != orig.NumConductors() {
		t.Fatalf("conductor count %d != %d", back.NumConductors(), orig.NumConductors())
	}
	for ci, c := range orig.Conductors {
		bc := back.Conductors[ci]
		if len(bc.Boxes) != len(c.Boxes) {
			t.Fatalf("conductor %d box count differs", ci)
		}
		for bi, b := range c.Boxes {
			bb := bc.Boxes[bi]
			if b.Min.Sub(bb.Min).Norm() > 1e-15 || b.Max.Sub(bb.Max).Norm() > 1e-15 {
				t.Errorf("conductor %d box %d differs: %v vs %v", ci, bi, b, bb)
			}
		}
	}
}

func TestWriteSanitizesNames(t *testing.T) {
	st := &geom.Structure{
		Name: "has spaces",
		Conductors: []*geom.Conductor{{
			Name:  "",
			Boxes: []geom.Box{geom.NewBox(geom.Vec3{}, geom.Vec3{X: 1e-6, Y: 1e-6, Z: 1e-6})},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, st, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "structure has_spaces") {
		t.Errorf("name not sanitized: %s", out)
	}
	if !strings.Contains(out, "conductor unnamed") {
		t.Errorf("empty name not defaulted: %s", out)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatalf("written file unreadable: %v", err)
	}
}
