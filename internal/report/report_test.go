package report

import (
	"bytes"
	"strings"
	"testing"

	"parbem/internal/linalg"
)

func goodMatrix() *linalg.Dense {
	return linalg.NewDenseFrom(2, 2, []float64{
		3e-15, -1e-15,
		-1e-15, 2.5e-15,
	})
}

func TestCheckMaxwellClean(t *testing.T) {
	if v := CheckMaxwell(goodMatrix(), 0); len(v) != 0 {
		t.Errorf("violations on clean matrix: %v", v)
	}
}

func TestCheckMaxwellCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		m    *linalg.Dense
		want string
	}{
		{"negative diagonal", linalg.NewDenseFrom(2, 2, []float64{
			-1e-15, 0, 0, 1e-15}), "diagonal"},
		{"positive coupling", linalg.NewDenseFrom(2, 2, []float64{
			3e-15, 1e-15, 1e-15, 3e-15}), "positive coupling"},
		{"asymmetric", linalg.NewDenseFrom(2, 2, []float64{
			3e-15, -2e-15, -0.5e-15, 3e-15}), "asymmetric"},
		{"negative row sum", linalg.NewDenseFrom(2, 2, []float64{
			1e-15, -2e-15, -2e-15, 1e-15}), "negative capacitance"},
		{"non-square", linalg.NewDense(2, 3), "not square"},
	}
	for _, c := range cases {
		v := CheckMaxwell(c.m, 0.01)
		found := false
		for _, msg := range v {
			if strings.Contains(msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing %q", c.name, v, c.want)
		}
	}
}

func TestWriteSpice(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpice(&buf, goodMatrix(), []string{"vdd", "out!"}, 1e-18); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		".subckt extracted vdd out_",
		"C1 vdd 0 2e-15",    // row sum 3-1
		"C2 out_ 0 1.5e-15", // row sum 2.5-1
		"C3 vdd out_ 1e-15", // coupling
		".ends",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("netlist missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSpiceThreshold(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpice(&buf, goodMatrix(), nil, 1.9e-15); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "C") && strings.Contains(line, "n0 n1") {
			t.Errorf("coupling below threshold not skipped: %s", line)
		}
	}
	if !strings.Contains(out, "n0 0 2e-15") {
		t.Errorf("grounded cap above threshold missing:\n%s", out)
	}
}

func TestFormatMatrixAndCapToInfinity(t *testing.T) {
	s := FormatMatrix(goodMatrix(), 1e15, []string{"a", "b"})
	if !strings.Contains(s, "a") || !strings.Contains(s, "3.0000") {
		t.Errorf("format output wrong:\n%s", s)
	}
	sums := CapToInfinity(goodMatrix())
	if len(sums) != 2 {
		t.Fatalf("CapToInfinity = %v", sums)
	}
	for i, want := range []float64{2e-15, 1.5e-15} {
		if d := sums[i] - want; d > 1e-30 || d < -1e-30 {
			t.Errorf("CapToInfinity[%d] = %g want %g", i, sums[i], want)
		}
	}
}
