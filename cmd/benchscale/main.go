// Benchscale measures multi-core scaling of the hot extraction paths:
// the fmm near-field fill, the fmm and pfft steady-state matvecs (fp64
// and mixed) and the end-to-end iterative solve, each at worker counts
// 1, 2, 4, ... up to GOMAXPROCS (always through 4 so the rig exercises
// the multi-worker code paths even on small runners). Results go to
// stdout as a table and to -out as JSON (the PR benchmark record):
//
//	benchscale -bus 8 -edge 0.5e-6 -reps 3 -out BENCH_pr8.json
//
// Each point is the best of -reps runs; speedup and parallel efficiency
// are relative to the 1-worker point of the same path. num_cpu is
// recorded next to the curves: points with workers > num_cpu are
// oversubscribed and measure scheduling overhead, not scaling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"time"

	"parbem"
	"parbem/internal/fft"
	"parbem/internal/fmm"
	"parbem/internal/pcbem"
	"parbem/internal/pfft"
	"parbem/internal/sched"
)

func main() {
	var (
		busM  = flag.Int("bus", 8, "bus structure size (m = n wires per layer)")
		edge  = flag.Float64("edge", 0.5e-6, "max panel edge (m)")
		reps  = flag.Int("reps", 3, "repetitions per point (best kept)")
		maxW  = flag.Int("maxworkers", 0, "largest worker count (0 = max(GOMAXPROCS, 4))")
		out   = flag.String("out", "", "also write the JSON report to this file")
		quick = flag.Bool("quick", false, "tiny geometry for smoke runs")
	)
	flag.Parse()

	m := *busM
	if *quick {
		m = 2
	}
	rep, err := runScaling(m, *edge, *reps, workerCounts(*maxW))
	if err != nil {
		log.Fatal(err)
	}
	printReport(rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

// Point is one worker count of one path's scaling curve.
type Point struct {
	Workers int   `json:"workers"`
	NS      int64 `json:"ns"`
	// MixedNS is the float32-operator matvec at the same worker count
	// (apply paths only).
	MixedNS int64 `json:"mixed_ns,omitempty"`
	// Speedup and Efficiency are relative to this path's 1-worker point.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// Path is the scaling curve of one hot path.
type Path struct {
	Name   string  `json:"name"`
	Desc   string  `json:"desc"`
	Points []Point `json:"points"`
}

// Report is the BENCH_pr8.json payload.
type Report struct {
	GeneratedBy string  `json:"generated_by"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	Reps        int     `json:"reps"`
	Bus         int     `json:"bus"`
	EdgeM       float64 `json:"edge_m"`
	NumPanels   int     `json:"num_panels"`
	Paths       []Path  `json:"paths"`
}

// workerCounts is 1, 2, 4, ... up to max (max itself always included).
// The default runs through at least 4 so the multi-worker paths are
// exercised even on 1-CPU runners (those points are oversubscribed).
func workerCounts(max int) []int {
	if max <= 0 {
		max = runtime.GOMAXPROCS(0)
		if max < 4 {
			max = 4
		}
	}
	var ws []int
	for w := 1; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}

// runScaling measures every path at every worker count and assembles
// the report. Factored from main so the scaling smoke test drives it.
func runScaling(busM int, edge float64, reps int, workers []int) (*Report, error) {
	st := parbem.NewBus(busM, busM).Build()
	prob, err := pcbem.NewProblem(st, edge)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GeneratedBy: "cmd/benchscale",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Reps:        reps,
		Bus:         busM,
		EdgeM:       edge,
		NumPanels:   len(prob.Panels),
	}

	rep.Paths = append(rep.Paths, scaleNearFill(prob, reps, workers))
	rep.Paths = append(rep.Paths, scaleFMMApply(prob, reps, workers))
	rep.Paths = append(rep.Paths, scalePFFTApply(prob, reps, workers))
	rep.Paths = append(rep.Paths, scaleFFTConvolve(reps, workers))
	solve, err := scaleSolve(prob, reps, workers)
	if err != nil {
		return nil, err
	}
	rep.Paths = append(rep.Paths, solve)
	return rep, nil
}

// scaleNearFill times the fmm near-field fill (operator construction on
// a shared topology, the direct-interaction Galerkin integrals).
func scaleNearFill(prob *pcbem.Problem, reps int, workers []int) Path {
	p := Path{Name: "fmm_near_fill", Desc: "fmm near-field fill (NewOperatorWith on shared topology)"}
	for _, d := range workers {
		opt := fmm.Options{Workers: d}
		topo := fmm.NewTopology(prob.Panels, opt)
		ns := bestOf(reps, func() int64 {
			t0 := time.Now()
			fmm.NewOperatorWith(topo, prob.Panels, opt, nil)
			return time.Since(t0).Nanoseconds()
		})
		p.Points = append(p.Points, Point{Workers: d, NS: ns})
	}
	finish(&p)
	return p
}

// scaleFMMApply times the steady-state fmm matvec (fp64 and mixed).
func scaleFMMApply(prob *pcbem.Problem, reps int, workers []int) Path {
	p := Path{Name: "fmm_apply", Desc: "fmm steady-state matvec"}
	for _, d := range workers {
		op := fmm.NewOperator(prob.Panels, fmm.Options{Workers: d})
		x, y := ones(len(prob.Panels)), make([]float64, len(prob.Panels))
		pt := Point{
			Workers: d,
			NS:      bestOf(reps, func() int64 { return timeApply(op.Apply, y, x) }),
			MixedNS: bestOf(reps, func() int64 { return timeApply(op.ApplyMixed, y, x) }),
		}
		p.Points = append(p.Points, pt)
	}
	finish(&p)
	return p
}

// scalePFFTApply times the steady-state pfft matvec (fp64 and mixed).
func scalePFFTApply(prob *pcbem.Problem, reps int, workers []int) Path {
	p := Path{Name: "pfft_apply", Desc: "pfft steady-state matvec"}
	for _, d := range workers {
		op := pfft.NewOperator(prob.Panels, pfft.Options{Workers: d})
		x, y := ones(len(prob.Panels)), make([]float64, len(prob.Panels))
		pt := Point{
			Workers: d,
			NS:      bestOf(reps, func() int64 { return timeApply(op.Apply, y, x) }),
			MixedNS: bestOf(reps, func() int64 { return timeApply(op.ApplyMixed, y, x) }),
		}
		p.Points = append(p.Points, pt)
	}
	finish(&p)
	return p
}

// scaleFFTConvolve times the fused r2c grid convolution (fp64 and
// fp32) at a pfft-representative padded grid size: the line transforms
// and the spectral multiply chunk over the executor, so this curve
// isolates the FFT stage that used to be the serial bottleneck of the
// pfft apply.
func scaleFFTConvolve(reps int, workers []int) Path {
	const cnx, cny, cnz = 64, 64, 32
	p := Path{Name: "fft_convolve", Desc: fmt.Sprintf("fused r2c grid convolution (%dx%dx%d)", cnx, cny, cnz)}
	for _, d := range workers {
		var exec sched.Executor
		var pool *sched.Pool
		if d > 1 {
			pool = sched.NewPool(d)
			exec = pool
		}
		g := fft.NewRGrid3(cnx, cny, cnz)
		kh := fft.NewRGrid3(cnx, cny, cnz)
		g32 := fft.NewRGrid3F32(cnx, cny, cnz)
		kh32 := fft.NewRGrid3F32(cnx, cny, cnz)
		g.Exec, g32.Exec = exec, exec
		for ix := 0; ix < cnx; ix++ {
			for iy := 0; iy < cny; iy++ {
				for iz := 0; iz < cnz; iz++ {
					v := float64((ix*31+iy*17+iz*7)%101) / 101
					g.Data[g.RIdx(ix, iy, iz)] = v
					kh.Data[kh.RIdx(ix, iy, iz)] = 1 - v
					g32.Data[g32.RIdx(ix, iy, iz)] = float32(v)
					kh32.Data[kh32.RIdx(ix, iy, iz)] = float32(1 - v)
				}
			}
		}
		kh.ForwardReal()
		kh32.ForwardReal()
		pt := Point{
			Workers: d,
			NS:      bestOf(reps, func() int64 { return timeConvolve(func() { g.ConvolveInto(kh) }) }),
			MixedNS: bestOf(reps, func() int64 { return timeConvolve(func() { g32.ConvolveInto(kh32) }) }),
		}
		p.Points = append(p.Points, pt)
		if pool != nil {
			pool.Close()
		}
	}
	finish(&p)
	return p
}

// timeConvolve measures one fused convolution in ns (same sampling
// loop as timeApply).
func timeConvolve(conv func()) int64 {
	conv() // warm (twiddle/rev tables, line scratch)
	const minSample = 20 * time.Millisecond
	iters := 1
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			conv()
		}
		if el := time.Since(t0); el >= minSample || iters >= 1<<20 {
			return el.Nanoseconds() / int64(iters)
		}
		iters *= 2
	}
}

// scaleSolve times the preconditioned GMRES solve on a prebuilt fmm
// operator (the pipeline solve stage; setup excluded).
func scaleSolve(prob *pcbem.Problem, reps int, workers []int) (Path, error) {
	p := Path{Name: "pipeline_solve", Desc: "GMRES solve on prebuilt fmm operator (tol 1e-4)"}
	for _, d := range workers {
		op := fmm.NewOperator(prob.Panels, fmm.Options{Workers: d})
		var solveErr error
		ns := bestOf(reps, func() int64 {
			t0 := time.Now()
			if _, err := prob.SolveIterative(op, 1e-4); err != nil {
				solveErr = err
			}
			return time.Since(t0).Nanoseconds()
		})
		if solveErr != nil {
			return p, solveErr
		}
		p.Points = append(p.Points, Point{Workers: d, NS: ns})
	}
	finish(&p)
	return p, nil
}

// timeApply measures one matvec in ns, iterating short applies until
// the sample is long enough to trust the clock.
func timeApply(apply func(dst, x []float64), y, x []float64) int64 {
	apply(y, x) // warm (mixed builds its float32 mirror lazily)
	const minSample = 20 * time.Millisecond
	iters := 1
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			apply(y, x)
		}
		if el := time.Since(t0); el >= minSample || iters >= 1<<20 {
			return el.Nanoseconds() / int64(iters)
		}
		iters *= 2
	}
}

// bestOf keeps the fastest of reps runs.
func bestOf(reps int, f func() int64) int64 {
	best := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		if ns := f(); ns < best {
			best = ns
		}
	}
	return best
}

// finish fills the speedup/efficiency columns from the 1-worker point.
func finish(p *Path) {
	if len(p.Points) == 0 || p.Points[0].Workers != 1 {
		return
	}
	base := float64(p.Points[0].NS)
	for i := range p.Points {
		pt := &p.Points[i]
		pt.Speedup = base / float64(pt.NS)
		pt.Efficiency = pt.Speedup / float64(pt.Workers)
	}
}

func ones(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func printReport(rep *Report) {
	fmt.Printf("scaling: %dx%d bus, %d panels, edge %g m, best of %d, GOMAXPROCS %d, %d CPUs\n",
		rep.Bus, rep.Bus, rep.NumPanels, rep.EdgeM, rep.Reps, rep.GOMAXPROCS, rep.NumCPU)
	for _, p := range rep.Paths {
		fmt.Printf("\n%s — %s\n", p.Name, p.Desc)
		fmt.Printf("%8s %14s %14s %9s %6s\n", "workers", "ns", "mixed ns", "speedup", "eff")
		for _, pt := range p.Points {
			mixed := "-"
			if pt.MixedNS > 0 {
				mixed = fmt.Sprintf("%d", pt.MixedNS)
			}
			fmt.Printf("%8d %14d %14s %8.2fx %5.0f%%\n",
				pt.Workers, pt.NS, mixed, pt.Speedup, 100*pt.Efficiency)
		}
	}
}
