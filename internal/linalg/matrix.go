// Package linalg is a self-contained dense linear-algebra kit for the
// extractor: a row-major dense matrix type, blocked Cholesky factorization
// for the SPD system matrix P, partial-pivoting LU, Householder QR
// least-squares (used by rational fitting), and restarted GMRES (used by the
// piecewise-constant iterative baselines).
//
// The paper leans on vendor-optimized BLAS for the (tiny) solve step; here
// blocking keeps the factorizations cache-friendly enough that the solve
// stays a negligible fraction of total extraction time, which is what the
// paper's scaling argument needs.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom wraps existing backing data (not copied).
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i (shared backing).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// Transpose returns a newly allocated transpose.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes dst = m * x. dst must have length m.Rows and may not
// alias x.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// Mul computes c = a * b with an ikj loop ordering that streams rows of
// b through the unrolled Axpy kernel. c must be pre-allocated with shape
// a.Rows x b.Cols.
func Mul(c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic("linalg: Mul dimension mismatch")
	}
	for i := range c.Data {
		c.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			Axpy(av, b.Row(k), crow)
		}
	}
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|; shapes must match.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
	var m float64
	for i, v := range a.Data {
		d := math.Abs(v - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// SymmetryError returns max_ij |m_ij - m_ji| for a square matrix.
func (m *Dense) SymmetryError() float64 {
	if m.Rows != m.Cols {
		panic("linalg: SymmetryError on non-square matrix")
	}
	var e float64
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := math.Abs(m.At(i, j) - m.At(j, i))
			if d > e {
				e = d
			}
		}
	}
	return e
}

// Dot returns the inner product of x and y. The loop is 4-way unrolled
// with independent accumulators so the FMA chains overlap; this kernel
// is the inner loop of both GMRES (Gram-Schmidt) and MulVec.
func Dot(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place, 4-way unrolled like Dot.
func Axpy(a float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < n; i++ {
		y[i] += a * x[i]
	}
}

// Scal scales x by a in place.
func Scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}
