package kernel

import "math"

// F2Y is the double antiderivative of 1/r in Y at fixed X:
//
//	F2Y = Y*ln(Y+r) - r
//
// It backs the closed-form Galerkin pairing of the non-varying direction
// when both templates carry 1-D shape variation along the same axis.
func F2Y(ops *MathOps, X, Y, Z float64) float64 {
	x2, y2, z2 := X*X, Y*Y, Z*Z
	r := math.Sqrt(x2 + y2 + z2)
	var s float64
	if math.Abs(Y) > coefEps {
		yr := plusR(Y, r, x2+z2)
		if yr > 0 {
			s += Y * ops.Log(yr)
		}
	}
	return s - r
}

// GalerkinPair1D computes the 2-D integral
//
//	int_{t1}^{t2} int_{s1}^{s2} 1/sqrt(X^2 + (v-v')^2 + Z^2) dv' dv
//
// (Galerkin pairing of the v direction at fixed in-plane difference X and
// plane separation Z) via second differences of F2Y. It diverges
// logarithmically as (X, Z) -> 0 with overlapping intervals; callers
// integrating over X must keep quadrature nodes off X = 0 (see
// assembly.TemplatePair).
func GalerkinPair1D(ops *MathOps, t1, t2, s1, s2, X, Z float64) float64 {
	return F2Y(ops, X, t2-s1, Z) - F2Y(ops, X, t1-s1, Z) -
		F2Y(ops, X, t2-s2, Z) + F2Y(ops, X, t1-s2, Z)
}

// GalerkinStrip computes the 3-D integral
//
//	int_{tv1}^{tv2} dv int_{su1}^{su2} du' int_{sv1}^{sv2} dv' 1/|r-r'|
//
// for a target line at fixed u spanning [tv1,tv2] against a full source
// rectangle [su1,su2] x [sv1,sv2], with plane separation Z. It is the
// inner closed form when exactly one template of a parallel pair carries
// 1-D variation (paper Eq. 7 with the quadrature on the varying side).
func GalerkinStrip(ops *MathOps, tv1, tv2, sv1, sv2, su1, su2, u, Z float64) float64 {
	vs := [2]float64{tv1, tv2}
	vps := [2]float64{sv1, sv2}
	var sum float64
	for j := 0; j < 2; j++ {
		for jp := 0; jp < 2; jp++ {
			s := signPair(j, jp)
			Y := vs[j] - vps[jp]
			sum += s * (F3(ops, Y, u-su1, Z) - F3(ops, Y, u-su2, Z))
		}
	}
	return sum
}

// SegPotential computes the line integral
//
//	int_{v1}^{v2} 1/sqrt((pv-v')^2 + d2) dv'
//
// of a unit line density, where d2 is the squared distance in the two
// remaining coordinates. It is the innermost closed form when the source
// template carries 1-D variation and must itself be quadratured.
//
// The antiderivative is ln(V + sqrt(V^2+d2)); the difference of the two
// endpoint substitutions is computed in a form where d2 cancels when the
// evaluation point is collinear with the segment (d2 = 0), so the result
// stays exact for all off-segment points. Points exactly on the open
// segment are true singularities and return +Inf.
func SegPotential(ops *MathOps, v1, v2, pv, d2 float64) float64 {
	V1 := pv - v1 // >= V2 for v1 < v2
	V2 := pv - v2
	r1 := math.Sqrt(V1*V1 + d2)
	r2 := math.Sqrt(V2*V2 + d2)
	switch {
	case V2 >= 0:
		// Point beyond the v2 end: both substitutions well-conditioned.
		return ops.Log((V1 + r1) / (V2 + r2))
	case V1 <= 0:
		// Point before the v1 end: use V+r = d2/(r-V); d2 cancels.
		return ops.Log((r2 - V2) / (r1 - V1))
	default:
		// Projection inside the segment: (V1+r1)(r2-V2)/d2.
		if d2 == 0 {
			return math.Inf(1)
		}
		return ops.Log((V1 + r1) * (r2 - V2) / d2)
	}
}
