package costmodel

import "math"

// This file grows the package beyond the Figure 8 efficiency curves: a
// backend selector for the unified piecewise-constant solve pipeline
// (internal/op). The heuristics encode the asymptotic cost structure of
// the three operator backends:
//
//   - dense direct: O(N^2) memory, O(N^3) factorization. Below a couple
//     of thousand panels the cubic term is cheaper than any accelerated
//     operator's construction cost, and the answer is exact — so small
//     problems always go dense.
//   - precorrected FFT: the grid convolution costs O(G log G) in the
//     number of grid nodes G, *independent of N*. It wins when panels
//     densely fill a compact volume (G comparable to N); it loses badly
//     on spread-out structures where the uniform grid is mostly empty
//     space.
//   - fast multipole: O(N)-ish with geometry-adaptive cost; the safe
//     default for large, sparse or high-aspect structures.
//
// The selector therefore needs only two cheap statistics of the
// panelization: the panel count and the ratio of panels to the logical
// grid nodes a pFFT operator would allocate (the "fill factor").

// Selection thresholds. Exported so callers can report or test the
// decision boundary explicitly.
const (
	// DenseMaxPanels is the largest panel count solved with the dense
	// direct backend under automatic selection.
	DenseMaxPanels = 1800
	// PFFTMinFill is the minimum panels-per-grid-node fill factor at
	// which the uniform grid is considered efficient.
	PFFTMinFill = 0.35
	// pfftMaxNodes mirrors the pfft operator's default per-axis cap
	// used when estimating the logical grid it would build.
	pfftMaxNodes = 48
)

// Choice is a backend recommendation.
type Choice int

// Backend recommendations, ordered by preference for small problems.
const (
	ChooseDense Choice = iota
	ChooseFMM
	ChoosePFFT
)

// String implements fmt.Stringer.
func (c Choice) String() string {
	switch c {
	case ChooseDense:
		return "dense"
	case ChooseFMM:
		return "fmm"
	case ChoosePFFT:
		return "pfft"
	}
	return "unknown"
}

// Workload summarizes a panelized extraction problem for backend
// selection. All statistics are O(N) to compute from the panel list.
type Workload struct {
	// Panels is the unknown count N.
	Panels int
	// Span is the bounding-box extent of the panel centers per axis (m).
	Span [3]float64
	// MedianEdge is the median panel long-edge length (m).
	MedianEdge float64
	// Tol is the requested solve tolerance (0 = default). Tight
	// tolerances (< 1e-6) bias away from pFFT, whose grid
	// approximation limits achievable accuracy.
	Tol float64
}

// GridNodes estimates the logical grid node count a pfft operator would
// allocate for this workload, mirroring its automatic spacing rule
// (h = max(medianEdge/2, maxSpan/(maxNodes-1)), dims = span/h + 2).
func (w Workload) GridNodes() int {
	maxSpan := math.Max(w.Span[0], math.Max(w.Span[1], w.Span[2]))
	h := math.Max(w.MedianEdge/2, maxSpan/float64(pfftMaxNodes-1))
	if h <= 0 {
		h = 1
	}
	nodes := 1
	for _, s := range w.Span {
		nodes *= int(s/h) + 2
	}
	return nodes
}

// FillFactor returns panels per estimated grid node: the density measure
// deciding between the uniform-grid and tree-based operators.
func (w Workload) FillFactor() float64 {
	g := w.GridNodes()
	if g <= 0 {
		return 0
	}
	return float64(w.Panels) / float64(g)
}

// Select recommends a solve backend for the workload: dense below
// DenseMaxPanels, then pFFT when the panels fill the estimated grid at
// PFFTMinFill or better (and the tolerance is within the grid's reach),
// otherwise fast multipole.
func Select(w Workload) Choice {
	if w.Panels <= DenseMaxPanels {
		return ChooseDense
	}
	if w.Tol > 0 && w.Tol < 1e-6 {
		// The grid + precorrection approximation cannot chase
		// arbitrarily tight residuals; the tree operator's exact near
		// field can.
		return ChooseFMM
	}
	if w.FillFactor() >= PFFTMinFill {
		return ChoosePFFT
	}
	return ChooseFMM
}
