package serve

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// RetryPolicy configures the client's backoff on retryable failures:
// transport errors and backpressure rejections (queue_full,
// rate_limited, draining, shutting_down — HTTP 429/503). Waits grow
// exponentially from BaseDelay, capped at MaxDelay, with ±50% jitter so
// a fleet of rejected clients does not re-arrive in lockstep; a server
// Retry-After is honored (up to MaxDelay) when it exceeds the backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (0 = 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps each wait, including honored Retry-After advice
	// (0 = 10s).
	MaxDelay time.Duration
}

// DefaultRetry is a ready-made policy for CLI and load-generation use.
var DefaultRetry = &RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second}

// Client is a thin typed client for a capxd server; capx -remote rides
// it. The zero HTTPClient means http.DefaultClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8437".
	BaseURL string
	// HTTPClient optionally overrides the transport.
	HTTPClient *http.Client
	// Tenant, when set, is sent as the X-Tenant header so the server's
	// per-tenant rate limits attribute this client's traffic.
	Tenant string
	// Retry, when set, retries transport errors and backpressure
	// rejections with capped exponential backoff. Safe on every
	// endpoint: extracts are stateless reads of shared caches, and
	// ExtractAsync sends an idempotency key, so a retried submit whose
	// original 202 was lost in flight can never double-run the job.
	Retry *RetryPolicy
	// OnRetry, when set, observes each backoff before the wait:
	// the upcoming attempt number (2 = first retry), the wait, whether
	// it came from server Retry-After advice, and the error being
	// retried.
	OnRetry func(attempt int, wait time.Duration, honored bool, err error)
}

// NewClient creates a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{BaseURL: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do sends one request (rebuilt per attempt by mk, so bodies replay)
// under the retry policy. Non-2xx responses come back as their decoded
// structured error.
func (c *Client) do(ctx context.Context, mk func() (*http.Request, error)) (*http.Response, error) {
	pol := c.Retry
	attempts, base, maxWait := 1, 100*time.Millisecond, 10*time.Second
	if pol != nil {
		attempts = pol.MaxAttempts
		if attempts <= 0 {
			attempts = 4
		}
		if pol.BaseDelay > 0 {
			base = pol.BaseDelay
		}
		if pol.MaxDelay > 0 {
			maxWait = pol.MaxDelay
		}
	}
	for attempt := 1; ; attempt++ {
		req, err := mk()
		if err != nil {
			return nil, err
		}
		resp, err := c.http().Do(req)
		if err == nil && resp.StatusCode < 300 {
			return resp, nil
		}
		if err == nil {
			derr := decodeError(resp)
			resp.Body.Close()
			err = derr
		}
		if attempt >= attempts || !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		wait, honored := backoffWait(base, maxWait, attempt, retryAfterOf(err))
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, wait, honored, err)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// backoffWait computes the wait before retry number attempt (1 = first
// retry): exponential from base with saturating doubling (a huge
// attempt count can never overflow into a negative Duration), capped at
// maxWait, then jittered down by up to 50% so a fleet of rejected
// clients does not re-arrive in lockstep. Server Retry-After advice
// overrides the backoff when longer (honored=true), but every outcome —
// including zero, negative or malformed advice, which parses as 0 — is
// clamped into [floor, maxWait] where floor is half the base delay: a
// misbehaving peer can slow this client down, never spin it into a hot
// retry loop.
func backoffWait(base, maxWait time.Duration, attempt int, advice time.Duration) (wait time.Duration, honored bool) {
	wait = base
	for i := 1; i < attempt; i++ {
		if wait >= maxWait/2 {
			wait = maxWait
			break
		}
		wait *= 2
	}
	if wait > maxWait {
		wait = maxWait
	}
	wait = wait/2 + time.Duration(mrand.Int63n(int64(wait/2)+1))
	if advice > wait {
		honored = true
		wait = advice
	}
	floor := base / 2
	if floor > maxWait {
		floor = maxWait
	}
	if wait > maxWait {
		wait = maxWait
	}
	if wait < floor {
		wait = floor
	}
	return wait, honored
}

// retryable reports whether an attempt's failure is worth repeating:
// transport errors (the request may never have arrived) and structured
// backpressure rejections. Permanent rejections — bad requests,
// extraction failures, deadline expiry — are not.
func retryable(err error) bool {
	var re *RequestError
	if errors.As(err, &re) {
		switch re.Code {
		case CodeQueueFull, CodeRateLimited, CodeDraining, CodeShuttingDown:
			return true
		}
		return false
	}
	// Anything that never produced a structured response: connection
	// refused/reset, or a bare 429/503 from an intermediary.
	var herr *httpStatusError
	if errors.As(err, &herr) {
		return herr.status == http.StatusTooManyRequests || herr.status == http.StatusServiceUnavailable
	}
	return true
}

// retryAfterOf extracts the server's Retry-After advice from a
// structured or bare-HTTP error (0 = none).
func retryAfterOf(err error) time.Duration {
	var re *RequestError
	if errors.As(err, &re) && re.RetryAfterSec > 0 {
		return time.Duration(re.RetryAfterSec * float64(time.Second))
	}
	var herr *httpStatusError
	if errors.As(err, &herr) {
		return herr.retryAfter
	}
	return 0
}

// httpStatusError is a non-2xx response that carried no structured
// envelope (a proxy 503, a truncated body).
type httpStatusError struct {
	status     int
	body       string
	retryAfter time.Duration
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.status, e.body)
}

// post sends one JSON request and returns the raw response; non-2xx
// responses are decoded into their structured error.
func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Tenant != "" {
			req.Header.Set("X-Tenant", c.Tenant)
		}
		return req, nil
	})
}

// get sends one GET and decodes the JSON response into v.
func (c *Client) get(ctx context.Context, path string, v any) error {
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// decodeError maps a non-2xx response to its *RequestError, folding a
// bare Retry-After header into the structured advice when the body
// carried none.
func decodeError(resp *http.Response) error {
	ra := parseRetryAfter(resp.Header.Get("Retry-After"))
	var env errorEnvelope
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &env) == nil && env.Error != nil {
		if env.Error.RetryAfterSec == 0 && ra > 0 {
			env.Error.RetryAfterSec = ra.Seconds()
		}
		return env.Error
	}
	return &httpStatusError{status: resp.StatusCode, body: strings.TrimSpace(string(data)), retryAfter: ra}
}

// parseRetryAfter reads a delay-seconds Retry-After value (the only
// form capxd emits; HTTP-date forms are ignored).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// newIdemKey generates a random idempotency key for an async submit.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to math/rand: a weaker key only weakens dedup of
		// this client's own retries, never correctness.
		return fmt.Sprintf("idem-%016x", mrand.Uint64())
	}
	return "idem-" + hex.EncodeToString(b[:])
}

// Extract runs one synchronous extraction (req.Async must be false; use
// ExtractAsync to enqueue).
func (c *Client) Extract(ctx context.Context, req *ExtractRequest) (*ExtractResponse, error) {
	resp, err := c.post(ctx, "/extract", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out ExtractResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: bad extract response: %w", err)
	}
	return &out, nil
}

// ExtractAsync enqueues an extraction and returns its job id. When the
// request carries no idempotency key, a random one is generated, so a
// retried submit (lost 202, transport error) resolves to the same job
// instead of double-running.
func (c *Client) ExtractAsync(ctx context.Context, req *ExtractRequest) (string, error) {
	r := *req
	r.Async = true
	if r.IdempotencyKey == "" {
		r.IdempotencyKey = newIdemKey()
	}
	resp, err := c.post(ctx, "/extract", &r)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("serve: bad async response: %w", err)
	}
	return out.JobID, nil
}

// Job fetches the status (and result, when done) of a submitted job.
func (c *Client) Job(ctx context.Context, id string) (*JobResponse, error) {
	var out JobResponse
	if err := c.get(ctx, "/jobs/"+id, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep streams a sweep; point is called once per streamed point, in
// order. The returned trailer summarizes the sweep (point errors do not
// fail the call — inspect SweepPoint.Error).
func (c *Client) Sweep(ctx context.Context, req *SweepRequest, point func(*SweepPoint)) (*SweepTrailer, error) {
	resp, err := c.post(ctx, "/sweep", req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// NDJSON is a stream of concatenated JSON values; a json.Decoder
	// consumes it without any line-length cap (one point's c_farads for
	// a large admissible conductor count can exceed tens of MB).
	dec := json.NewDecoder(resp.Body)
	first := true
	for {
		var line json.RawMessage
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("serve: bad sweep stream: %w", err)
		}
		if first {
			first = false
			var hdr SweepHeader
			if err := json.Unmarshal(line, &hdr); err != nil {
				return nil, fmt.Errorf("serve: bad sweep header: %w", err)
			}
			continue
		}
		// A trailer line carries done=true; a whole-sweep failure
		// arrives as a bare error envelope in its place. Point lines
		// always carry "index" — a per-point error is not a sweep
		// failure.
		var probe struct {
			Done  bool          `json:"done"`
			Index *int          `json:"index"`
			Error *RequestError `json:"error"`
		}
		if json.Unmarshal(line, &probe) == nil {
			if probe.Done {
				var tr SweepTrailer
				if err := json.Unmarshal(line, &tr); err != nil {
					return nil, fmt.Errorf("serve: bad sweep trailer: %w", err)
				}
				return &tr, nil
			}
			if probe.Index == nil && probe.Error != nil {
				return nil, probe.Error
			}
		}
		var p SweepPoint
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("serve: bad sweep point: %w", err)
		}
		if point != nil {
			point(&p)
		}
	}
	return nil, fmt.Errorf("serve: sweep stream ended without a trailer")
}

// Stats fetches the server's /stats snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.get(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]any
	return c.get(ctx, "/healthz", &out)
}
