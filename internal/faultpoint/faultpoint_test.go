package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with empty spec")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Count("anything") != 0 {
		t.Error("disarmed hits tallied")
	}
}

func TestErrorAction(t *testing.T) {
	defer Reset()
	if err := Configure("a.b:error"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed point returned %v, want ErrInjected", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unarmed point returned %v", err)
	}
	if Count("a.b") != 1 || Count("other") != 1 {
		t.Errorf("counts a.b=%d other=%d, want 1/1", Count("a.b"), Count("other"))
	}
}

func TestNthTrigger(t *testing.T) {
	defer Reset()
	if err := Configure("p@3:error"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want injected error", i, err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d: got %v, want nil", i, err)
		}
	}
}

func TestSleepAction(t *testing.T) {
	defer Reset()
	if err := Configure("slow:sleep=20ms"); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Errorf("sleep point returned after %v, want >= 20ms", d)
	}
}

func TestBadSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"noaction", "p:boom", "p:sleep=xyz", "p@0:error", "p@x:error", ":error"} {
		if err := Configure(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
		if Enabled() {
			t.Errorf("spec %q left points armed after rejection", spec)
		}
	}
}

func TestMultiPointSpec(t *testing.T) {
	defer Reset()
	if err := Configure("a:error, b:sleep=1ms"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("point a: %v", err)
	}
	if err := Hit("b"); err != nil {
		t.Errorf("point b: %v", err)
	}
}
