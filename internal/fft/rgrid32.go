package fft

import (
	"parbem/internal/sched"
)

// Float32 mirror of the real-input convolution grid (see rgrid.go),
// the mixed-precision pfft convolution engine: float32 samples and a
// complex64 half spectrum quarter the transform traffic of the
// original complex128 c2c grid.

// rlineBuf32 is the complex64 twin of rlineBuf.
type rlineBuf32 struct {
	z, y, x []complex64
}

// RGrid3F32 is the float32 twin of RGrid3 (same half-spectrum layout,
// float32 slots).
type RGrid3F32 struct {
	Nx, Ny, Nz int
	Hz         int // Nz/2 + 1 spectral bins along z
	Data       []float32
	// Exec optionally parallelizes the line transforms and the
	// spectral multiply; nil runs inline (allocation-free when warm).
	Exec  sched.Executor
	lines *sched.Scratch[*rlineBuf32]
}

// NewRGrid3F32 allocates a zeroed float32 real convolution grid.
func NewRGrid3F32(nx, ny, nz int) *RGrid3F32 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) || nz < 2 {
		panic("fft: real grid dimensions must be powers of two with Nz >= 2")
	}
	return &RGrid3F32{
		Nx: nx, Ny: ny, Nz: nz, Hz: nz/2 + 1,
		Data: make([]float32, nx*ny*(nz+2)),
		lines: sched.NewScratch(func() *rlineBuf32 {
			return &rlineBuf32{
				z: make([]complex64, nz/2),
				y: make([]complex64, ny),
				x: make([]complex64, nx),
			}
		}),
	}
}

// RIdx returns the float32 index of real sample (ix, iy, iz); the line
// stride is Nz+2 (see RGrid3.RIdx).
func (g *RGrid3F32) RIdx(ix, iy, iz int) int { return (ix*g.Ny+iy)*(g.Nz+2) + iz }

// ForwardReal transforms the real grid in place into its half
// spectrum.
func (g *RGrid3F32) ForwardReal() { g.transformAll(false) }

// InverseReal transforms the half spectrum in place back to real
// samples, scaling folded into the final butterfly stages.
func (g *RGrid3F32) InverseReal() { g.transformAll(true) }

// ConvolveInto circularly convolves the grid's real data with the
// kernel spectrum in place (see RGrid3.ConvolveInto).
func (g *RGrid3F32) ConvolveInto(kernelHat *RGrid3F32) {
	if g.Nx != kernelHat.Nx || g.Ny != kernelHat.Ny || g.Nz != kernelHat.Nz {
		panic("fft: grid dimension mismatch")
	}
	g.ForwardReal()
	g.mulSpectrum(kernelHat)
	g.InverseReal()
}

// mulSpectrum multiplies the half spectra pointwise, chunked over the
// executor.
func (g *RGrid3F32) mulSpectrum(h *RGrid3F32) {
	n := len(g.Data) / 2
	if g.Exec == nil {
		mulSpectrumRange32(g.Data, h.Data, 0, n)
		return
	}
	g.Exec.Map(chunkTasks(n, elemChunk), func(t int) {
		lo, hi := chunkSpan(t, n, elemChunk)
		mulSpectrumRange32(g.Data, h.Data, lo, hi)
	})
}

func mulSpectrumRange32(dst, src []float32, lo, hi int) {
	for i := 2 * lo; i < 2*hi; i += 2 {
		a, b := dst[i], dst[i+1]
		c, d := src[i], src[i+1]
		dst[i] = a*c - b*d
		dst[i+1] = a*d + b*c
	}
}

// transformAll runs the three axis passes (see RGrid3.transformAll).
func (g *RGrid3F32) transformAll(inv bool) {
	nx, ny, nz, hz := g.Nx, g.Ny, g.Nz, g.Hz
	sign := -1.0
	if inv {
		sign = +1
	}
	m := nz / 2
	wM, rM := twiddles32(m, sign), revTable(m)
	wN := twiddles32(nz, sign)
	wy, ry := twiddles32(ny, sign), revTable(ny)
	wx, rx := twiddles32(nx, sign), revTable(nx)
	sy, sx, sm := float32(1), float32(1), float32(1)
	if inv {
		sy, sx = 1/float32(ny), 1/float32(nx)
		sm = 1 / float32(m)
	}
	if g.Exec == nil {
		b := g.lines.Acquire()
		if !inv {
			g.zLinesReal(0, nx*ny, b.z, wM, rM, wN, false, sm)
			g.yLinesR(0, nx*hz, b.y, wy, ry, sy)
			g.xLinesR(0, ny*hz, b.x, wx, rx, sx)
		} else {
			g.xLinesR(0, ny*hz, b.x, wx, rx, sx)
			g.yLinesR(0, nx*hz, b.y, wy, ry, sy)
			g.zLinesReal(0, nx*ny, b.z, wM, rM, wN, true, sm)
		}
		g.lines.Release(b)
		return
	}
	zPass := func() {
		g.Exec.Map(chunkTasks(nx*ny, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, nx*ny, lineChunk)
			b := g.lines.Acquire()
			g.zLinesReal(lo, hi, b.z, wM, rM, wN, inv, sm)
			g.lines.Release(b)
		})
	}
	yPass := func() {
		g.Exec.Map(chunkTasks(nx*hz, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, nx*hz, lineChunk)
			b := g.lines.Acquire()
			g.yLinesR(lo, hi, b.y, wy, ry, sy)
			g.lines.Release(b)
		})
	}
	xPass := func() {
		g.Exec.Map(chunkTasks(ny*hz, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, ny*hz, lineChunk)
			b := g.lines.Acquire()
			g.xLinesR(lo, hi, b.x, wx, rx, sx)
			g.lines.Release(b)
		})
	}
	if !inv {
		zPass()
		yPass()
		xPass()
	} else {
		xPass()
		yPass()
		zPass()
	}
}

// zLinesReal runs the r2c (forward) or c2r (inverse) pass over z lines
// [lo, hi).
func (g *RGrid3F32) zLinesReal(lo, hi int, buf []complex64, wM []complex64, rM []int32, wN []complex64, inv bool, scale float32) {
	ls := g.Nz + 2
	for r := lo; r < hi; r++ {
		d := g.Data[r*ls : r*ls+ls]
		if inv {
			inverseRealLine32(d, buf, wM, rM, wN, scale)
		} else {
			forwardRealLine32(d, buf, wM, rM, wN)
		}
	}
}

// forwardRealLine32 is the complex64 twin of forwardRealLine.
func forwardRealLine32(d []float32, buf []complex64, wM []complex64, rM []int32, wN []complex64) {
	m := len(buf)
	for n := 0; n < m; n++ {
		buf[n] = complex(d[2*n], d[2*n+1])
	}
	transform32(buf, wM, rM)
	z0 := buf[0]
	d[0] = real(z0) + imag(z0)
	d[1] = 0
	d[2*m] = real(z0) - imag(z0)
	d[2*m+1] = 0
	// Explicit float32 unscramble (see transform32 for why complex64
	// multiplies are avoided in the hot lines).
	for k := 1; k < m; k++ {
		zk := buf[k]
		zn := buf[m-k]
		fer, fei := real(zk)+real(zn), imag(zk)-imag(zn) // Z[k] + conj(Z[m-k])
		odr, odi := imag(zk)+imag(zn), real(zn)-real(zk) // -i*(Z[k] - conj(Z[m-k]))
		wr, wi := real(wN[k]), imag(wN[k])
		d[2*k] = (fer + wr*odr - wi*odi) * 0.5
		d[2*k+1] = (fei + wr*odi + wi*odr) * 0.5
	}
}

// inverseRealLine32 is the complex64 twin of inverseRealLine.
func inverseRealLine32(d []float32, buf []complex64, wM []complex64, rM []int32, wN []complex64, scale float32) {
	m := len(buf)
	x0, xm := d[0], d[2*m]
	buf[0] = complex((x0+xm)*0.5, (x0-xm)*0.5)
	// Explicit float32 scramble (see transform32).
	for k := 1; k < m; k++ {
		xkr, xki := d[2*k], d[2*k+1]
		xnr, xni := d[2*(m-k)], -d[2*(m-k)+1] // conj(X[m-k])
		fer, fei := (xkr+xnr)*0.5, (xki+xni)*0.5
		dr, di := (xkr-xnr)*0.5, (xki-xni)*0.5
		wr, wi := real(wN[k]), imag(wN[k])
		odr, odi := wr*dr-wi*di, wr*di+wi*dr
		buf[k] = complex(fer-odi, fei+odr) // Fe + i*Fo
	}
	transformScaled32(buf, wM, rM, scale)
	for n := 0; n < m; n++ {
		d[2*n] = real(buf[n])
		d[2*n+1] = imag(buf[n])
	}
}

// yLinesR transforms strided y lines [lo, hi) of the half spectrum.
func (g *RGrid3F32) yLinesR(lo, hi int, buf []complex64, w []complex64, rev []int32, scale float32) {
	data := g.Data
	ny, hz, ls := g.Ny, g.Hz, g.Nz+2
	for t := lo; t < hi; t++ {
		ix, k := t/hz, t%hz
		p := ix*ny*ls + 2*k
		q := p
		for iy := 0; iy < ny; iy++ {
			buf[iy] = complex(data[q], data[q+1])
			q += ls
		}
		lineTransform32(buf, w, rev, scale)
		q = p
		for iy := 0; iy < ny; iy++ {
			data[q] = real(buf[iy])
			data[q+1] = imag(buf[iy])
			q += ls
		}
	}
}

// xLinesR transforms strided x lines [lo, hi) of the half spectrum.
func (g *RGrid3F32) xLinesR(lo, hi int, buf []complex64, w []complex64, rev []int32, scale float32) {
	data := g.Data
	nx, hz, ls := g.Nx, g.Hz, g.Nz+2
	planeStride := g.Ny * ls
	for t := lo; t < hi; t++ {
		iy, k := t/hz, t%hz
		p := iy*ls + 2*k
		q := p
		for ix := 0; ix < nx; ix++ {
			buf[ix] = complex(data[q], data[q+1])
			q += planeStride
		}
		lineTransform32(buf, w, rev, scale)
		q = p
		for ix := 0; ix < nx; ix++ {
			data[q] = real(buf[ix])
			data[q+1] = imag(buf[ix])
			q += planeStride
		}
	}
}
