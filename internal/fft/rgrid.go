package fft

import (
	"parbem/internal/sched"
)

// Real-input convolution grids. The physics pfft convolves is real —
// charges projected onto grid nodes in, potentials out — so the grid
// carries float64 samples and transforms r2c along z: a z line of Nz
// reals packs into Nz/2 complex values (even samples real part, odd
// samples imaginary part), one half-length complex FFT plus an O(Nz)
// untangle yields the Hz = Nz/2+1 non-redundant spectrum bins, and the
// y/x axes transform c2c over the Hz half-planes only. Relative to a
// complex-to-complex transform of the same grid this halves flops,
// memory and kernel-spectrum storage.

// rlineBuf is the per-worker line-buffer set of the r2c transforms:
// the half-length z pack buffer and the y/x gather/scatter buffers.
type rlineBuf struct {
	z, y, x []complex128
}

// RGrid3 is a real Nx x Ny x Nz grid (all powers of two, Nz >= 2) in
// the half-spectrum layout: each (ix, iy) line occupies Nz+2 float64
// slots — Nz real samples in real space, Hz = Nz/2+1 complex bins as
// (re, im) pairs after ForwardReal (see the package doc). Index
// helpers: RIdx for real samples, the k-th spectral bin of line
// (ix, iy) lives at floats RIdx(ix, iy, 2k) and RIdx(ix, iy, 2k+1).
type RGrid3 struct {
	Nx, Ny, Nz int
	Hz         int // Nz/2 + 1 spectral bins along z
	Data       []float64
	// Exec optionally parallelizes the line transforms and the
	// spectral multiply; nil runs inline (allocation-free when warm).
	Exec  sched.Executor
	lines *sched.Scratch[*rlineBuf]
}

// NewRGrid3 allocates a zeroed real convolution grid.
func NewRGrid3(nx, ny, nz int) *RGrid3 {
	if !IsPow2(nx) || !IsPow2(ny) || !IsPow2(nz) || nz < 2 {
		panic("fft: real grid dimensions must be powers of two with Nz >= 2")
	}
	return &RGrid3{
		Nx: nx, Ny: ny, Nz: nz, Hz: nz/2 + 1,
		Data: make([]float64, nx*ny*(nz+2)),
		lines: sched.NewScratch(func() *rlineBuf {
			return &rlineBuf{
				z: make([]complex128, nz/2),
				y: make([]complex128, ny),
				x: make([]complex128, nx),
			}
		}),
	}
}

// RIdx returns the float64 index of real sample (ix, iy, iz). Lines
// are padded by two floats (the Nz/2-th spectral bin), so the stride
// between (ix, iy) and (ix, iy+1) is Nz+2, not Nz.
func (g *RGrid3) RIdx(ix, iy, iz int) int { return (ix*g.Ny+iy)*(g.Nz+2) + iz }

// ForwardReal transforms the real grid in place into its half
// spectrum: r2c along z, then c2c along y and x over the Hz
// half-planes.
func (g *RGrid3) ForwardReal() { g.transformAll(false) }

// InverseReal transforms the half spectrum in place back to real
// samples: c2c inverse along x and y, then c2r along z. The full
// 1/(Nx*Ny*Nz) scaling is folded into the final butterfly stages (no
// separate scaling sweep).
func (g *RGrid3) InverseReal() { g.transformAll(true) }

// ConvolveInto circularly convolves the grid's real data with the
// kernel spectrum in place: forward transform, pointwise spectral
// multiply, inverse transform, fused in one call. kernelHat must hold
// the ForwardReal transform of a same-dimension kernel grid; the
// half-spectrum product is valid because both factors carry the
// conjugate symmetry of real data, so the implied redundant half of
// the product is exactly the conjugate of the stored half.
func (g *RGrid3) ConvolveInto(kernelHat *RGrid3) {
	if g.Nx != kernelHat.Nx || g.Ny != kernelHat.Ny || g.Nz != kernelHat.Nz {
		panic("fft: grid dimension mismatch")
	}
	g.ForwardReal()
	g.mulSpectrum(kernelHat)
	g.InverseReal()
}

// mulSpectrum multiplies the half spectra pointwise (complex multiply
// over the (re, im) float pairs), chunked over the executor.
func (g *RGrid3) mulSpectrum(h *RGrid3) {
	n := len(g.Data) / 2
	if g.Exec == nil {
		mulSpectrumRange(g.Data, h.Data, 0, n)
		return
	}
	g.Exec.Map(chunkTasks(n, elemChunk), func(t int) {
		lo, hi := chunkSpan(t, n, elemChunk)
		mulSpectrumRange(g.Data, h.Data, lo, hi)
	})
}

// mulSpectrumRange multiplies complex bins [lo, hi) of the float-pair
// spectra: (a+bi)(c+di) = (ac-bd) + (ad+bc)i.
func mulSpectrumRange(dst, src []float64, lo, hi int) {
	for i := 2 * lo; i < 2*hi; i += 2 {
		a, b := dst[i], dst[i+1]
		c, d := src[i], src[i+1]
		dst[i] = a*c - b*d
		dst[i+1] = a*d + b*c
	}
}

// transformAll runs the three axis passes. Forward order is z (r2c),
// y, x; inverse order is x, y, z (the z pass converts back to reals,
// so it must come last). Each axis is a set of independent lines,
// chunked over Exec when present.
func (g *RGrid3) transformAll(inv bool) {
	nx, ny, nz, hz := g.Nx, g.Ny, g.Nz, g.Hz
	sign := -1.0
	if inv {
		sign = +1
	}
	m := nz / 2
	// z pass tables: the half-length transform plus the length-Nz
	// twiddles of the untangle/entangle rotation.
	wM, rM := twiddles(m, sign), revTable(m)
	wN := twiddles(nz, sign)
	wy, ry := twiddles(ny, sign), revTable(ny)
	wx, rx := twiddles(nx, sign), revTable(nx)
	sy, sx, sm := 1.0, 1.0, 1.0
	if inv {
		sy, sx = 1/float64(ny), 1/float64(nx)
		sm = 1 / float64(m) // z carries 1/Nz total: 1/m here, 1/2 in the entangle halves
	}
	if g.Exec == nil {
		b := g.lines.Acquire()
		if !inv {
			g.zLinesReal(0, nx*ny, b.z, wM, rM, wN, false, sm)
			g.yLinesR(0, nx*hz, b.y, wy, ry, sy)
			g.xLinesR(0, ny*hz, b.x, wx, rx, sx)
		} else {
			g.xLinesR(0, ny*hz, b.x, wx, rx, sx)
			g.yLinesR(0, nx*hz, b.y, wy, ry, sy)
			g.zLinesReal(0, nx*ny, b.z, wM, rM, wN, true, sm)
		}
		g.lines.Release(b)
		return
	}
	zPass := func() {
		g.Exec.Map(chunkTasks(nx*ny, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, nx*ny, lineChunk)
			b := g.lines.Acquire()
			g.zLinesReal(lo, hi, b.z, wM, rM, wN, inv, sm)
			g.lines.Release(b)
		})
	}
	yPass := func() {
		g.Exec.Map(chunkTasks(nx*hz, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, nx*hz, lineChunk)
			b := g.lines.Acquire()
			g.yLinesR(lo, hi, b.y, wy, ry, sy)
			g.lines.Release(b)
		})
	}
	xPass := func() {
		g.Exec.Map(chunkTasks(ny*hz, lineChunk), func(t int) {
			lo, hi := chunkSpan(t, ny*hz, lineChunk)
			b := g.lines.Acquire()
			g.xLinesR(lo, hi, b.x, wx, rx, sx)
			g.lines.Release(b)
		})
	}
	if !inv {
		zPass()
		yPass()
		xPass()
	} else {
		xPass()
		yPass()
		zPass()
	}
}

// zLinesReal runs the r2c (forward) or c2r (inverse) pass over z lines
// [lo, hi), line r = ix*Ny + iy.
func (g *RGrid3) zLinesReal(lo, hi int, buf []complex128, wM []complex128, rM []int32, wN []complex128, inv bool, scale float64) {
	ls := g.Nz + 2
	for r := lo; r < hi; r++ {
		d := g.Data[r*ls : r*ls+ls]
		if inv {
			inverseRealLine(d, buf, wM, rM, wN, scale)
		} else {
			forwardRealLine(d, buf, wM, rM, wN)
		}
	}
}

// forwardRealLine transforms one z line of Nz reals into its Hz
// half-spectrum bins in place: pack the reals as m = Nz/2 complex
// values z[n] = x[2n] + i*x[2n+1], transform, then untangle the even/
// odd sub-spectra — Fe[k] = (Z[k]+conj(Z[m-k]))/2, Fo[k] =
// -i*(Z[k]-conj(Z[m-k]))/2, X[k] = Fe[k] + w^k Fo[k] with
// w = exp(-2 pi i / Nz). X[0] and X[m] are real by construction.
func forwardRealLine(d []float64, buf []complex128, wM []complex128, rM []int32, wN []complex128) {
	m := len(buf)
	for n := 0; n < m; n++ {
		buf[n] = complex(d[2*n], d[2*n+1])
	}
	transform(buf, wM, rM)
	z0 := buf[0]
	d[0] = real(z0) + imag(z0)
	d[1] = 0
	d[2*m] = real(z0) - imag(z0)
	d[2*m+1] = 0
	for k := 1; k < m; k++ {
		zk := buf[k]
		zn := buf[m-k]
		fe := complex(real(zk)+real(zn), imag(zk)-imag(zn))   // Z[k] + conj(Z[m-k])
		fo := complex(imag(zk)+imag(zn), real(zn)-real(zk))   // -i*(Z[k] - conj(Z[m-k]))
		x := (fe + wN[k]*fo) * 0.5
		d[2*k] = real(x)
		d[2*k+1] = imag(x)
	}
}

// inverseRealLine transforms one line's Hz half-spectrum bins back to
// Nz reals in place: entangle Z[k] = Fe[k] + i*Fo[k] with Fe[k] =
// (X[k]+conj(X[m-k]))/2 and Fo[k] = w^-k (X[k]-conj(X[m-k]))/2
// (w = exp(-2 pi i / Nz), so wN here is the +sign table), inverse
// transform the m complex values with the 1/m scaling folded into the
// last stage, and unpack reals x[2n] = Re z[n], x[2n+1] = Im z[n].
// Together with the entangle's 1/2 the z axis carries exactly the
// 1/Nz share of the full inverse scaling.
func inverseRealLine(d []float64, buf []complex128, wM []complex128, rM []int32, wN []complex128, scale float64) {
	m := len(buf)
	x0, xm := d[0], d[2*m]
	buf[0] = complex((x0+xm)*0.5, (x0-xm)*0.5)
	for k := 1; k < m; k++ {
		xk := complex(d[2*k], d[2*k+1])
		xn := complex(d[2*(m-k)], -d[2*(m-k)+1]) // conj(X[m-k])
		fe := (xk + xn) * 0.5
		fo := wN[k] * (xk - xn) * 0.5
		// Z[k] = Fe + i*Fo.
		buf[k] = complex(real(fe)-imag(fo), imag(fe)+real(fo))
	}
	transformScaled(buf, wM, rM, scale)
	for n := 0; n < m; n++ {
		d[2*n] = real(buf[n])
		d[2*n+1] = imag(buf[n])
	}
}

// yLinesR transforms strided y lines [lo, hi) of the half spectrum
// (line t = ix*Hz + k over the Hz half-planes).
func (g *RGrid3) yLinesR(lo, hi int, buf []complex128, w []complex128, rev []int32, scale float64) {
	data := g.Data
	ny, hz, ls := g.Ny, g.Hz, g.Nz+2
	for t := lo; t < hi; t++ {
		ix, k := t/hz, t%hz
		p := ix*ny*ls + 2*k
		q := p
		for iy := 0; iy < ny; iy++ {
			buf[iy] = complex(data[q], data[q+1])
			q += ls
		}
		lineTransform(buf, w, rev, scale)
		q = p
		for iy := 0; iy < ny; iy++ {
			data[q] = real(buf[iy])
			data[q+1] = imag(buf[iy])
			q += ls
		}
	}
}

// xLinesR transforms strided x lines [lo, hi) of the half spectrum
// (line t = iy*Hz + k).
func (g *RGrid3) xLinesR(lo, hi int, buf []complex128, w []complex128, rev []int32, scale float64) {
	data := g.Data
	nx, hz, ls := g.Nx, g.Hz, g.Nz+2
	planeStride := g.Ny * ls
	for t := lo; t < hi; t++ {
		iy, k := t/hz, t%hz
		p := iy*ls + 2*k
		q := p
		for ix := 0; ix < nx; ix++ {
			buf[ix] = complex(data[q], data[q+1])
			q += planeStride
		}
		lineTransform(buf, w, rev, scale)
		q = p
		for ix := 0; ix < nx; ix++ {
			data[q] = real(buf[ix])
			data[q+1] = imag(buf[ix])
			q += planeStride
		}
	}
}
