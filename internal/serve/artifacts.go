package serve

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/artifact"
)

// artifactResolver implements plan.ArtifactStore over the disk-backed
// store plus the replica peer protocol: a Get tries the local store
// first, then each configured peer's GET /artifacts/{key}, populating
// the local store on a peer hit so the family is served locally from
// then on. Keys that miss everywhere enter a bounded negative cache so
// a hot family being built for the first time does not hammer the peer
// set once per stage.
//
// The resolver is what a server's engine reads stage artifacts through;
// the HTTP handler (handleArtifact) serves the local store only, so a
// fetch can never recurse through the replica set.
type artifactResolver struct {
	store  *artifact.Store
	peers  []string
	client *http.Client
	logf   func(format string, args ...any)

	// neg maps recently-missed keys to their retry deadline (guarded by
	// mu, bounded by negCap with random-ish eviction via map iteration).
	mu  sync.Mutex
	neg map[string]time.Time

	localHits  atomic.Uint64
	peerHits   atomic.Uint64
	misses     atomic.Uint64
	puts       atomic.Uint64
	peerErrors atomic.Uint64
}

const (
	// negTTL is how long an everywhere-miss suppresses peer fetches for
	// a key: long enough to cover the stage builds of one cold request,
	// short enough that a peer finishing its own build becomes visible
	// quickly.
	negTTL = 2 * time.Second
	// negCap bounds the negative cache.
	negCap = 4096
	// peerTimeout bounds one peer artifact fetch end to end; artifacts
	// are tens of megabytes at the high end and peers are same-rack, so
	// a slow peer is a down peer.
	peerTimeout = 10 * time.Second
)

func newArtifactResolver(store *artifact.Store, peers []string, logf func(string, ...any)) *artifactResolver {
	return &artifactResolver{
		store:  store,
		peers:  peers,
		client: &http.Client{Timeout: peerTimeout},
		logf:   logf,
		neg:    make(map[string]time.Time),
	}
}

// Get implements plan.ArtifactStore.
func (a *artifactResolver) Get(key string) ([]byte, bool) {
	if data, ok := a.store.Get(key); ok {
		a.localHits.Add(1)
		return data, true
	}
	if len(a.peers) > 0 && !a.negativelyCached(key) {
		if data, ok := a.fetchFromPeers(key); ok {
			a.peerHits.Add(1)
			// Populate the local store so the next request of this
			// family (and our own peers) are served from here.
			if err := a.store.Put(key, data); err != nil {
				a.logf("serve: artifact %s: local populate failed: %v", key, err)
			}
			return data, true
		}
		a.recordNegative(key)
	}
	a.misses.Add(1)
	return nil, false
}

// Put implements plan.ArtifactStore (fire-and-forget: a failed write
// only costs a future rebuild).
func (a *artifactResolver) Put(key string, data []byte) {
	if err := a.store.Put(key, data); err != nil {
		a.logf("serve: artifact %s: put failed: %v", key, err)
		return
	}
	a.puts.Add(1)
}

func (a *artifactResolver) negativelyCached(key string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	dl, ok := a.neg[key]
	if !ok {
		return false
	}
	if time.Now().After(dl) {
		delete(a.neg, key)
		return false
	}
	return true
}

func (a *artifactResolver) recordNegative(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.neg) >= negCap {
		// Evict any one entry; precision is irrelevant, boundedness is
		// the point.
		for k := range a.neg {
			delete(a.neg, k)
			break
		}
	}
	a.neg[key] = time.Now().Add(negTTL)
}

// fetchFromPeers tries each peer in order and returns the first hit. A
// peer 404 is a clean miss; transport errors and non-200s count as peer
// errors but never fail the request — the caller just computes locally.
func (a *artifactResolver) fetchFromPeers(key string) ([]byte, bool) {
	for _, peer := range a.peers {
		data, err := a.fetchOne(peer, key)
		if err == errPeerMiss {
			continue
		}
		if err != nil {
			a.peerErrors.Add(1)
			a.logf("serve: artifact %s: peer %s: %v", key, peer, err)
			continue
		}
		return data, true
	}
	return nil, false
}

// errPeerMiss marks a clean 404 from a peer.
var errPeerMiss = fmt.Errorf("peer does not hold the artifact")

func (a *artifactResolver) fetchOne(peer, key string) ([]byte, error) {
	resp, err := a.client.Get(peer + "/artifacts/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, errPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	// +1 over the entry cap turns an oversized (or maliciously
	// unbounded) body into a detectable error instead of a truncation.
	data, err := io.ReadAll(io.LimitReader(resp.Body, artifact.MaxEntryBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > artifact.MaxEntryBytes {
		return nil, fmt.Errorf("body exceeds the %d-byte entry cap", int64(artifact.MaxEntryBytes))
	}
	return data, nil
}

// ArtifactStats is the /stats artifact section: disk-store occupancy
// and integrity counters plus the resolver's local/peer traffic split.
type ArtifactStats struct {
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	LocalHits  uint64 `json:"local_hits"`
	PeerHits   uint64 `json:"peer_hits"`
	Misses     uint64 `json:"misses"`
	Puts       uint64 `json:"puts"`
	PeerErrors uint64 `json:"peer_errors"`
	Evictions  uint64 `json:"evictions"`
	Corrupt    uint64 `json:"corrupt"`
}

func (a *artifactResolver) stats() *ArtifactStats {
	st := a.store.Stats()
	return &ArtifactStats{
		Entries:    st.Entries,
		Bytes:      st.Bytes,
		LocalHits:  a.localHits.Load(),
		PeerHits:   a.peerHits.Load(),
		Misses:     a.misses.Load(),
		Puts:       a.puts.Load(),
		PeerErrors: a.peerErrors.Load(),
		Evictions:  st.Evictions,
		Corrupt:    st.Corrupt,
	}
}

// handleArtifact serves GET /artifacts/{key} from the LOCAL disk store
// only — never through the resolver's peer fetch, so replicas fetching
// from each other cannot recurse. The framed file was CRC-verified by
// the store before the payload is handed out.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.artifacts == nil || !artifact.ValidKey(key) {
		http.NotFound(w, r)
		return
	}
	data, ok := s.artifacts.store.Get(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}
