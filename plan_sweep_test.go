package parbem

import (
	"testing"
	"time"
)

// TestSweepIncrementalSpeedup enforces the staged-plan value
// proposition: a 16-point crossing h-sweep through one parbem.Plan must
// finish at least 2x faster than 16 independent ExtractPipeline calls
// while agreeing with every one of them to 1e-10. The speedup comes
// from work elimination, not parallelism — on the h variants only
// cross-layer near-field integrals are recomputed, block factors over
// unchanged panels are adopted, and the Krylov solves warm-start from
// the previous point — so it holds on a single core.
func TestSweepIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 32 extractions")
	}
	const (
		edge   = 0.25e-6
		points = 16
	)
	hs := make([]float64, points)
	for i := range hs {
		hs[i] = 0.3e-6 + 0.05e-6*float64(i)
	}
	popt := PipelineOptions{
		Backend: BackendFMM,
		Precond: PrecondBlockJacobi,
		// Tight tolerance: both paths must converge far below the
		// 1e-10 agreement bound so warm starts are invisible.
		Tol: 1e-12,
		FMM: &FastCapOptions{Workers: 1},
	}
	variant := func(h float64) *Structure {
		sp := NewCrossingPair()
		sp.H = h
		return sp.Build()
	}

	p, err := NewPlan(PlanOptions{MaxEdge: edge, Pipeline: popt})
	if err != nil {
		t.Fatal(err)
	}
	planC := make([]*Matrix, points)
	t0 := time.Now()
	for i, h := range hs {
		res, err := p.Extract(variant(h))
		if err != nil {
			t.Fatalf("plan h=%g: %v", h, err)
		}
		planC[i] = res.C
	}
	planTime := time.Since(t0)

	t0 = time.Now()
	indepC := make([]*Matrix, points)
	for i, h := range hs {
		res, err := ExtractPipeline(variant(h), edge, popt)
		if err != nil {
			t.Fatalf("independent h=%g: %v", h, err)
		}
		indepC[i] = res.C
	}
	indepTime := time.Since(t0)

	for i, h := range hs {
		if e := CapError(planC[i], indepC[i]); e > 1e-10 {
			t.Errorf("h=%g: plan deviates from independent by %.3g (tol 1e-10)", h, e)
		}
	}
	speedup := float64(indepTime) / float64(planTime)
	t.Logf("16-point h-sweep: plan %v, independent %v, speedup %.2fx (stats %+v)",
		planTime, indepTime, speedup, p.Stats())
	if speedup < 2 {
		t.Errorf("plan sweep speedup %.2fx, want >= 2x (plan %v vs independent %v)",
			speedup, planTime, indepTime)
	}
}
