package fmm

import (
	"math"

	"parbem/internal/sched"
)

// Mixed-precision apply path: a float32 mirror of the near-field CSR and
// the far-field multipole pass. The accelerated matvec is memory-bound on
// the CSR values and the per-node expansion tables, so halving their
// width roughly halves the bandwidth per apply; the fp32 rounding
// (~1e-7 relative per apply) is absorbed by the float64 iterative
// refinement wrapper in internal/op, which re-computes residuals with
// the fp64 Apply and keeps the final answer at the fp64 contract.

// mixedScratch is the per-ApplyMixed mutable state, the float32 twin of
// applyScratch plus the converted input vector.
type mixedScratch struct {
	x       []float32
	charges []float32
	mono    []float32
	dip     [][3]float32
	quad    [][6]float32
	l0      []float32
	l1      [][3]float32
	l2      [][6]float32
	// xg is the per-leaf gathered x sub-vector: every row of a leaf has
	// the same near-field column layout, so the gather is hoisted out of
	// the row loop and each row becomes a dense contiguous dot product.
	xg []float32
}

func newMixedScratch(n, nodes, maxRow int) *mixedScratch {
	return &mixedScratch{
		x:       make([]float32, n),
		charges: make([]float32, n),
		mono:    make([]float32, nodes),
		dip:     make([][3]float32, nodes),
		quad:    make([][6]float32, nodes),
		l0:      make([]float32, nodes),
		l1:      make([][3]float32, nodes),
		l2:      make([][6]float32, nodes),
		xg:      make([]float32, maxRow),
	}
}

// mixedState holds the float32 storage mirror, built once by EnableMixed:
// near CSR values, panel geometry, and node centers (the M2L translation
// inputs). Indices are shared with the fp64 CSR.
//
// Coordinates are stored in units of the root node's half-size: the raw
// micron-scale geometry would push the 1/r^7 and 1/r^9 M2L factors to
// ~1e42, far past float32 range (~3.4e38). The Laplace potential is
// homogeneous of degree -1 in length, so evaluating the whole far-field
// pass in scaled coordinates and folding one factor of 1/L into the
// output scale reproduces the physical potential exactly while keeping
// every fp32 intermediate within a few orders of magnitude of 1.
type mixedState struct {
	nearVal []float32
	areas   []float32
	centers [][3]float32 // panel centers, in units of L
	nodeCtr [][3]float32 // tree node centers, in units of L
	scale   float32      // op.scale / L (the homogeneity factor)
	// m2lTab is the M2L translation table: the 35 derivative-tensor
	// components of 1/r (value, gradient, Hessian, third and fourth
	// derivatives; see m2lCoeffs) per *unique* pair separation, with
	// m2lTabIdx mapping each interaction-list pair (aligned with m2lSrc)
	// to its table row. The fp64 path rebuilds the 1/r^k power ladder
	// per pair per apply; here the separations never change, so the
	// mixed inner loop is pure independent multiply-adds with no
	// divide/sqrt dependency chain. Octree centers sit on a dyadic
	// lattice, so separations repeat massively across pairs (the classic
	// FMM unique-translation observation): deduplicating by exact bit
	// pattern keeps the table a few hundred rows — cache-resident —
	// instead of 140 bytes streamed per pair.
	m2lTab    []float32
	m2lTabIdx []int32
	scratch   *sched.Scratch[*mixedScratch]
}

// m2lStride is the number of table entries per M2L pair.
const m2lStride = 35

// EnableMixed builds the float32 mirror (idempotent, safe for concurrent
// callers). The mirror costs half the fp64 near-field storage and is only
// worth building when ApplyMixed will actually run, so it is opt-in
// rather than part of construction.
func (op *Operator) EnableMixed() {
	op.mixedOnce.Do(func() {
		L := op.t.nodes[0].halfSize
		if L <= 0 {
			L = 1
		}
		invL := 1 / L
		m := &mixedState{
			nearVal: make([]float32, len(op.nearVal)),
			areas:   make([]float32, len(op.areas)),
			centers: make([][3]float32, len(op.centers)),
			nodeCtr: make([][3]float32, len(op.t.nodes)),
			scale:   float32(op.scale * invL),
		}
		for i, v := range op.nearVal {
			m.nearVal[i] = float32(v)
		}
		for i, a := range op.areas {
			m.areas[i] = float32(a)
		}
		for i, c := range op.centers {
			m.centers[i] = [3]float32{float32(c.X * invL), float32(c.Y * invL), float32(c.Z * invL)}
		}
		for i := range op.t.nodes {
			c := op.t.nodes[i].center
			m.nodeCtr[i] = [3]float32{float32(c.X * invL), float32(c.Y * invL), float32(c.Z * invL)}
		}
		m.m2lTabIdx = make([]int32, len(op.m2lSrc))
		// Dedup key: octree centers are odd multiples of the finest
		// half-cell, so every separation is an integer multiple of it.
		// Keying on those integers (not raw float64 bits, which differ by
		// rounding at different absolute positions) collapses the table to
		// the few hundred genuinely distinct translations and keeps it
		// cache-resident during the apply.
		hmin := math.Inf(1)
		for i := range op.t.nodes {
			if h := op.t.nodes[i].halfSize; h > 0 && h < hmin {
				hmin = h
			}
		}
		if math.IsInf(hmin, 1) {
			hmin = L
		}
		invQ := 1 / (hmin * invL)
		uniq := make(map[[3]int64]int32)
		for id := range op.t.nodes {
			ct := op.t.nodes[id].center
			for k := op.m2lOff[id]; k < op.m2lOff[id+1]; k++ {
				sc := op.t.nodes[op.m2lSrc[k]].center
				r := [3]float64{(ct.X - sc.X) * invL, (ct.Y - sc.Y) * invL, (ct.Z - sc.Z) * invL}
				key := [3]int64{
					int64(math.Round(r[0] * invQ)),
					int64(math.Round(r[1] * invQ)),
					int64(math.Round(r[2] * invQ)),
				}
				row, ok := uniq[key]
				if !ok {
					row = int32(len(uniq))
					uniq[key] = row
					m.m2lTab = append(m.m2lTab, make([]float32, m2lStride)...)
					m2lCoeffs(r[0], r[1], r[2], m.m2lTab[int(row)*m2lStride:])
				}
				m.m2lTabIdx[k] = row
			}
		}
		n, nodes := len(op.panels), len(op.t.nodes)
		maxRow := 0
		for pi := 0; pi < n; pi++ {
			if w := int(op.nearOff[pi+1] - op.nearOff[pi]); w > maxRow {
				maxRow = w
			}
		}
		m.scratch = sched.NewScratch(func() *mixedScratch {
			return newMixedScratch(n, nodes, maxRow)
		})
		op.mixed = m
	})
}

// MixedEnabled reports whether the float32 mirror has been built.
func (op *Operator) MixedEnabled() bool { return op.mixed != nil }

// ApplyMixed computes dst = P x through the float32 mirror. dst and x
// remain float64 at the interface (the refinement loop owns them); the
// conversion in and out is linear-time and cache-friendly. Falls back to
// the fp64 Apply when EnableMixed has not run. Allocation-free warm and
// safe for concurrent use.
func (op *Operator) ApplyMixed(dst, x []float64) {
	m := op.mixed
	if m == nil {
		op.Apply(dst, x)
		return
	}
	s := m.scratch.Acquire()
	defer m.scratch.Release(s)
	for i, a := range m.areas {
		xi := float32(x[i])
		s.x[i] = xi
		s.charges[i] = xi * a
	}
	op.upward32(m, s)
	transformMoments(s)
	if op.exec == nil {
		for id := range op.t.nodes {
			op.m2lNode32(m, s, id)
		}
		op.downward32(m, s)
		for _, lf := range op.leaves {
			op.evalLeaf32(m, s, lf, dst)
		}
		return
	}
	nn := len(op.t.nodes)
	op.exec.Map((nn+m2lChunk-1)/m2lChunk, func(c int) {
		lo := c * m2lChunk
		hi := lo + m2lChunk
		if hi > nn {
			hi = nn
		}
		for id := lo; id < hi; id++ {
			op.m2lNode32(m, s, id)
		}
	})
	op.downward32(m, s)
	leaves := op.leaves
	op.exec.Map(len(leaves), func(k int) {
		op.evalLeaf32(m, s, leaves[k], dst)
	})
}

// upward32 mirrors upward in float32.
func (op *Operator) upward32(m *mixedState, s *mixedScratch) {
	nodes := op.t.nodes
	for id := len(nodes) - 1; id >= 0; id-- {
		nd := &nodes[id]
		ctr := m.nodeCtr[id]
		// Scalar accumulators: see the m2lNode32 registerization note.
		var mono, dpx, dpy, dpz, qxx, qyy, qzz, qxy, qxz, qyz float32
		if nd.leaf {
			for _, pi := range op.t.perm[nd.lo:nd.hi] {
				q := s.charges[pi]
				c := m.centers[pi]
				rx, ry, rz := c[0]-ctr[0], c[1]-ctr[1], c[2]-ctr[2]
				mono += q
				dpx += q * rx
				dpy += q * ry
				dpz += q * rz
				qxx += q * rx * rx
				qyy += q * ry * ry
				qzz += q * rz * rz
				qxy += q * rx * ry
				qxz += q * rx * rz
				qyz += q * ry * rz
			}
		} else {
			for _, ch := range nd.children {
				if ch < 0 {
					continue
				}
				cc := m.nodeCtr[ch]
				dx, dy, dz := cc[0]-ctr[0], cc[1]-ctr[1], cc[2]-ctr[2]
				q := s.mono[ch]
				cd := s.dip[ch]
				cq := s.quad[ch]
				mono += q
				dpx += cd[0] + q*dx
				dpy += cd[1] + q*dy
				dpz += cd[2] + q*dz
				qxx += cq[0] + 2*cd[0]*dx + q*dx*dx
				qyy += cq[1] + 2*cd[1]*dy + q*dy*dy
				qzz += cq[2] + 2*cd[2]*dz + q*dz*dz
				qxy += cq[3] + cd[0]*dy + cd[1]*dx + q*dx*dy
				qxz += cq[4] + cd[0]*dz + cd[2]*dx + q*dx*dz
				qyz += cq[5] + cd[1]*dz + cd[2]*dy + q*dy*dz
			}
		}
		s.mono[id] = mono
		s.dip[id] = [3]float32{dpx, dpy, dpz}
		s.quad[id] = [6]float32{qxx, qyy, qzz, qxy, qxz, qyz}
	}
}

// m2lCoeffs fills t (length m2lStride) with the derivative tensors of
// 1/r at separation (x, y, z), computed in float64 and rounded once:
//
//	t[0]      value            1/r
//	t[1:4]    gradient         g_a   = -x_a/r^3
//	t[4:10]   Hessian          H_ab  = 3 x_a x_b/r^5 - d_ab/r^3   (xx yy zz xy xz yz)
//	t[10:20]  third derivative T_abc (lexicographic: xxx xxy xxz xyy xyz xzz yyy yyz yzz zzz)
//	t[20:35]  fourth derivative F_abcd (xxxx xxxy xxxz xxyy xxyz xxzz
//	          xyyy xyyz xyzz xzzz yyyy yyyz yyzz yzzz zzzz)
//
// With moments transformed to (q, D' = -D, Q” = half-diagonal Q), the
// local expansion of one source is the pure contraction
//
//	l0   = q t[0] + g.D'  + H:Q''
//	l1_a = q g_a  + (H D')_a + (T:Q'')_a
//	l2_ab= q H_ab + (T D')_ab + (F:Q'')_ab
//
// which is algebraically identical to the fp64 m2lNode formulas.
func m2lCoeffs(x, y, z float64, t []float32) {
	r2 := x*x + y*y + z*z
	inv := 1 / math.Sqrt(r2)
	inv2 := inv * inv
	inv3 := inv * inv2
	inv5 := inv3 * inv2
	inv7 := inv5 * inv2
	inv9 := inv7 * inv2
	t[0] = float32(inv)
	t[1] = float32(-x * inv3)
	t[2] = float32(-y * inv3)
	t[3] = float32(-z * inv3)
	t[4] = float32(3*x*x*inv5 - inv3)
	t[5] = float32(3*y*y*inv5 - inv3)
	t[6] = float32(3*z*z*inv5 - inv3)
	t[7] = float32(3 * x * y * inv5)
	t[8] = float32(3 * x * z * inv5)
	t[9] = float32(3 * y * z * inv5)
	c7 := -15 * inv7
	t[10] = float32(c7*x*x*x + 9*x*inv5)
	t[11] = float32(c7*x*x*y + 3*y*inv5)
	t[12] = float32(c7*x*x*z + 3*z*inv5)
	t[13] = float32(c7*x*y*y + 3*x*inv5)
	t[14] = float32(c7 * x * y * z)
	t[15] = float32(c7*x*z*z + 3*x*inv5)
	t[16] = float32(c7*y*y*y + 9*y*inv5)
	t[17] = float32(c7*y*y*z + 3*z*inv5)
	t[18] = float32(c7*y*z*z + 3*y*inv5)
	t[19] = float32(c7*z*z*z + 9*z*inv5)
	c9 := 105 * inv9
	t[20] = float32(c9*x*x*x*x + c7*6*x*x + 9*inv5)
	t[21] = float32(c9*x*x*x*y + c7*3*x*y)
	t[22] = float32(c9*x*x*x*z + c7*3*x*z)
	t[23] = float32(c9*x*x*y*y + c7*(x*x+y*y) + 3*inv5)
	t[24] = float32(c9*x*x*y*z + c7*y*z)
	t[25] = float32(c9*x*x*z*z + c7*(x*x+z*z) + 3*inv5)
	t[26] = float32(c9*x*y*y*y + c7*3*x*y)
	t[27] = float32(c9*x*y*y*z + c7*x*z)
	t[28] = float32(c9*x*y*z*z + c7*x*y)
	t[29] = float32(c9*x*z*z*z + c7*3*x*z)
	t[30] = float32(c9*y*y*y*y + c7*6*y*y + 9*inv5)
	t[31] = float32(c9*y*y*y*z + c7*3*y*z)
	t[32] = float32(c9*y*y*z*z + c7*(y*y+z*z) + 3*inv5)
	t[33] = float32(c9*y*z*z*z + c7*3*y*z)
	t[34] = float32(c9*z*z*z*z + c7*6*z*z + 9*inv5)
}

// transformMoments rewrites the upward moments into the contraction form
// m2lNode32 consumes: negated dipole (odd derivative orders carry a sign
// flip) and quadrupole with the 1/2 Taylor factor folded in — 1/2 on the
// diagonal, 1/2 * 2 = 1 on the off-diagonal (symmetric multiplicity).
func transformMoments(s *mixedScratch) {
	for id := range s.dip {
		d := &s.dip[id]
		d[0], d[1], d[2] = -d[0], -d[1], -d[2]
		q := &s.quad[id]
		q[0] *= 0.5
		q[1] *= 0.5
		q[2] *= 0.5
	}
}

// m2lNode32 accumulates the local expansion of node id from its M2L
// sources through the translation table: 100 independent multiply-adds
// per source, no divisions, sqrt, or power chains (compare m2lNode,
// which rebuilds the 1/r^k ladder per pair per apply).
// Accumulators are individual scalars, not small arrays: the Go
// compiler never registerizes multi-element arrays, so [3]/[6]float32
// accumulators would be forced through the stack on every add. (The
// loop keeps ~20 float values live and spills regardless; scalars at
// least let the register allocator choose the victims.)
func (op *Operator) m2lNode32(m *mixedState, s *mixedScratch, id int) {
	var v0, gx, gy, gz, hxx, hyy, hzz, hxy, hxz, hyz float32
	lo, hi := op.m2lOff[id], op.m2lOff[id+1]
	tabIdx := m.m2lTabIdx[lo:hi]
	for i, src := range op.m2lSrc[lo:hi] {
		r := int(tabIdx[i]) * m2lStride
		t := m.m2lTab[r : r+m2lStride : r+m2lStride]
		q := s.mono[src]
		d := s.dip[src]
		qq := s.quad[src]
		d0, d1, d2 := d[0], d[1], d[2]
		q0, q1, q2, q3, q4, q5 := qq[0], qq[1], qq[2], qq[3], qq[4], qq[5]
		v0 += q*t[0] + d0*t[1] + d1*t[2] + d2*t[3] +
			q0*t[4] + q1*t[5] + q2*t[6] + q3*t[7] + q4*t[8] + q5*t[9]
		gx += q*t[1] + d0*t[4] + d1*t[7] + d2*t[8] +
			q0*t[10] + q1*t[13] + q2*t[15] + q3*t[11] + q4*t[12] + q5*t[14]
		gy += q*t[2] + d0*t[7] + d1*t[5] + d2*t[9] +
			q0*t[11] + q1*t[16] + q2*t[18] + q3*t[13] + q4*t[14] + q5*t[17]
		gz += q*t[3] + d0*t[8] + d1*t[9] + d2*t[6] +
			q0*t[12] + q1*t[17] + q2*t[19] + q3*t[14] + q4*t[15] + q5*t[18]
		hxx += q*t[4] + d0*t[10] + d1*t[11] + d2*t[12] +
			q0*t[20] + q1*t[23] + q2*t[25] + q3*t[21] + q4*t[22] + q5*t[24]
		hyy += q*t[5] + d0*t[13] + d1*t[16] + d2*t[17] +
			q0*t[23] + q1*t[30] + q2*t[32] + q3*t[26] + q4*t[27] + q5*t[31]
		hzz += q*t[6] + d0*t[15] + d1*t[18] + d2*t[19] +
			q0*t[25] + q1*t[32] + q2*t[34] + q3*t[28] + q4*t[29] + q5*t[33]
		hxy += q*t[7] + d0*t[11] + d1*t[13] + d2*t[14] +
			q0*t[21] + q1*t[26] + q2*t[28] + q3*t[23] + q4*t[24] + q5*t[27]
		hxz += q*t[8] + d0*t[12] + d1*t[14] + d2*t[15] +
			q0*t[22] + q1*t[27] + q2*t[29] + q3*t[24] + q4*t[25] + q5*t[28]
		hyz += q*t[9] + d0*t[14] + d1*t[17] + d2*t[18] +
			q0*t[24] + q1*t[31] + q2*t[33] + q3*t[27] + q4*t[28] + q5*t[32]
	}
	s.l0[id] = v0
	s.l1[id] = [3]float32{gx, gy, gz}
	s.l2[id] = [6]float32{hxx, hyy, hzz, hxy, hxz, hyz}
}

// downward32 mirrors downward in float32.
func (op *Operator) downward32(m *mixedState, s *mixedScratch) {
	nodes := op.t.nodes
	for id := range nodes {
		nd := &nodes[id]
		if nd.leaf {
			continue
		}
		ctr := m.nodeCtr[id]
		pl0 := s.l0[id]
		pl1 := s.l1[id]
		pl2 := s.l2[id]
		for _, ch := range nd.children {
			if ch < 0 {
				continue
			}
			cc := m.nodeCtr[ch]
			dx, dy, dz := cc[0]-ctr[0], cc[1]-ctr[1], cc[2]-ctr[2]
			hx := pl2[0]*dx + pl2[3]*dy + pl2[4]*dz
			hy := pl2[3]*dx + pl2[1]*dy + pl2[5]*dz
			hz := pl2[4]*dx + pl2[5]*dy + pl2[2]*dz
			s.l0[ch] += pl0 + pl1[0]*dx + pl1[1]*dy + pl1[2]*dz +
				0.5*(dx*hx+dy*hy+dz*hz)
			s.l1[ch][0] += pl1[0] + hx
			s.l1[ch][1] += pl1[1] + hy
			s.l1[ch][2] += pl1[2] + hz
			for k := 0; k < 6; k++ {
				s.l2[ch][k] += pl2[k]
			}
		}
	}
}

// evalLeaf32 mirrors evalLeaf with two structural changes on top of the
// fp32 storage: the x gather is hoisted — every row of a leaf has the
// same column layout (each near block lands at one fixed offset in all
// of the leaf's rows), so x is gathered once per leaf into a contiguous
// buffer — and each row then reduces to a dense unrolled fp32 dot
// product (two streaming loads per entry instead of value + index +
// dependent gather). L2P is unchanged; the final store converts to
// float64.
func (op *Operator) evalLeaf32(m *mixedState, s *mixedScratch, lf int32, dst []float64) {
	nd := &op.t.nodes[lf]
	rows := op.t.perm[nd.lo:nd.hi]
	if len(rows) == 0 {
		return
	}
	lo0, hi0 := op.nearOff[rows[0]], op.nearOff[rows[0]+1]
	cols := op.nearIdx[lo0:hi0]
	xg := s.xg[:len(cols)]
	x := s.x
	for k, c := range cols {
		xg[k] = x[c]
	}
	ctr := m.nodeCtr[lf]
	l0 := s.l0[lf]
	l1 := s.l1[lf]
	l2 := s.l2[lf]
	for _, pi := range rows {
		lo := op.nearOff[pi]
		val := m.nearVal[lo : lo+int64(len(xg))]
		var s0, s1, s2, s3 float32
		k := 0
		for ; k+4 <= len(val); k += 4 {
			s0 += val[k] * xg[k]
			s1 += val[k+1] * xg[k+1]
			s2 += val[k+2] * xg[k+2]
			s3 += val[k+3] * xg[k+3]
		}
		for ; k < len(val); k++ {
			s0 += val[k] * xg[k]
		}
		s0 += s1 + s2 + s3
		c := m.centers[pi]
		rx, ry, rz := c[0]-ctr[0], c[1]-ctr[1], c[2]-ctr[2]
		phi := l0 + l1[0]*rx + l1[1]*ry + l1[2]*rz +
			0.5*(l2[0]*rx*rx+l2[1]*ry*ry+l2[2]*rz*rz) +
			l2[3]*rx*ry + l2[4]*rx*rz + l2[5]*ry*rz
		dst[pi] = float64(s0 + m.scale*m.areas[pi]*phi)
	}
}
