// Package geomio reads and writes extraction structures in a simple
// line-oriented text format (the "input file" of the paper's Figures 4
// and 6):
//
//	# comment
//	structure <name>
//	unit <meters-per-unit>          # optional, default 1e-6 (microns)
//	conductor <name>
//	  box  x0 y0 z0  x1 y1 z1      # axis-aligned block, two corners
//	  wire x|y|z  cx cy cz  length width thickness
//
// All coordinates are multiplied by the unit scale. Conductors own every
// box/wire line until the next conductor (or end of file).
package geomio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parbem/internal/geom"
)

// DefaultUnit is meters per coordinate unit when no "unit" line is given.
const DefaultUnit = 1e-6

// Read parses a structure from r.
func Read(r io.Reader) (*geom.Structure, error) {
	st := &geom.Structure{Name: "unnamed"}
	unit := DefaultUnit
	var cur *geom.Conductor
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "structure":
			if len(fields) != 2 {
				return nil, fmt.Errorf("geomio: line %d: structure needs a name", lineNo)
			}
			st.Name = fields[1]
		case "unit":
			if len(fields) != 2 {
				return nil, fmt.Errorf("geomio: line %d: unit needs a value", lineNo)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("geomio: line %d: bad unit %q", lineNo, fields[1])
			}
			unit = v
		case "conductor":
			if len(fields) != 2 {
				return nil, fmt.Errorf("geomio: line %d: conductor needs a name", lineNo)
			}
			cur = &geom.Conductor{Name: fields[1]}
			st.Conductors = append(st.Conductors, cur)
		case "box":
			if cur == nil {
				return nil, fmt.Errorf("geomio: line %d: box before any conductor", lineNo)
			}
			vs, err := parseFloats(fields[1:], 6)
			if err != nil {
				return nil, fmt.Errorf("geomio: line %d: %v", lineNo, err)
			}
			a := geom.Vec3{X: vs[0] * unit, Y: vs[1] * unit, Z: vs[2] * unit}
			b := geom.Vec3{X: vs[3] * unit, Y: vs[4] * unit, Z: vs[5] * unit}
			cur.Boxes = append(cur.Boxes, geom.NewBox(a, b))
		case "wire":
			if cur == nil {
				return nil, fmt.Errorf("geomio: line %d: wire before any conductor", lineNo)
			}
			if len(fields) != 8 {
				return nil, fmt.Errorf("geomio: line %d: wire needs dir + 6 numbers", lineNo)
			}
			var dir geom.Axis
			switch strings.ToLower(fields[1]) {
			case "x":
				dir = geom.X
			case "y":
				dir = geom.Y
			case "z":
				dir = geom.Z
			default:
				return nil, fmt.Errorf("geomio: line %d: bad wire direction %q", lineNo, fields[1])
			}
			vs, err := parseFloats(fields[2:], 6)
			if err != nil {
				return nil, fmt.Errorf("geomio: line %d: %v", lineNo, err)
			}
			center := geom.Vec3{X: vs[0] * unit, Y: vs[1] * unit, Z: vs[2] * unit}
			cur.Boxes = append(cur.Boxes,
				geom.Wire(dir, center, vs[3]*unit, vs[4]*unit, vs[5]*unit))
		default:
			return nil, fmt.Errorf("geomio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := st.Validate(); err != nil {
		return nil, err
	}
	return st, nil
}

// Write serializes a structure (coordinates divided by unit).
func Write(w io.Writer, st *geom.Structure, unit float64) error {
	if unit <= 0 {
		unit = DefaultUnit
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "structure %s\n", sanitize(st.Name))
	fmt.Fprintf(bw, "unit %g\n", unit)
	for _, c := range st.Conductors {
		fmt.Fprintf(bw, "conductor %s\n", sanitize(c.Name))
		for _, b := range c.Boxes {
			fmt.Fprintf(bw, "box %g %g %g %g %g %g\n",
				b.Min.X/unit, b.Min.Y/unit, b.Min.Z/unit,
				b.Max.X/unit, b.Max.Y/unit, b.Max.Z/unit)
		}
	}
	return bw.Flush()
}

func parseFloats(fields []string, n int) ([]float64, error) {
	if len(fields) != n {
		return nil, fmt.Errorf("want %d numbers, got %d", n, len(fields))
	}
	out := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, " ", "_")
	if s == "" {
		return "unnamed"
	}
	return s
}
