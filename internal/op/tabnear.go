package op

import (
	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/tabulate"
)

// TabulatedNear returns a near-field entry evaluator backed by the
// tabulated collocation kernel of paper Section 4.2.1: intermediate-range
// pairs (beyond cfg.MidFactor mean diameters but inside the operator's
// near radius) are served as target-area times the tabulated source
// potential at the target center — the same approximation
// kernel.RectGalerkin's intermediate branch computes in closed form, at
// table-lookup cost. Close pairs and out-of-domain queries return
// ok=false, falling back to the exact quadrature.
//
// The evaluator plugs into fmm.Options.NearEval, forming the
// tabulated-near-field operator variant of the pipeline (NewTabulated).
func TabulatedNear(cfg *kernel.Config, tab *tabulate.Collocation) func(t, s geom.Rect) (float64, bool) {
	if cfg == nil {
		cfg = kernel.DefaultConfig()
	}
	return func(t, s geom.Rect) (float64, bool) {
		if cfg.DisableApprox {
			return 0, false
		}
		d := t.Dist(s)
		diam := 0.5 * (t.Diameter() + s.Diameter())
		if d <= cfg.MidFactor*diam {
			// Too close for the collocation approximation: exact.
			return 0, false
		}
		v, ok := tab.EvalRect(s, t.Center())
		if !ok {
			return 0, false
		}
		return t.Area() * v, true
	}
}

// NewTabulated builds the tabulated-near-field multipole operator: the
// list-based fmm operator with its exact near-field integrals served
// from the collocation table wherever the normalized query is in domain.
// It implements Operator and NearBlocker like the plain fmm operator and
// drops into the same pipeline; construction is cheaper on repeated or
// translated layouts at the cost of the table's interpolation error
// (about one percent on served entries — the close pairs that dominate
// the near field remain exact).
func NewTabulated(panels []geom.Panel, tab *tabulate.Collocation, fo fmm.Options) *fmm.Operator {
	if fo.Cfg == nil {
		fo.Cfg = kernel.DefaultConfig()
	}
	fo.NearEval = TabulatedNear(fo.Cfg, tab)
	return fmm.NewOperator(panels, fo)
}
