package linalg

import (
	"errors"
	"math"
)

// QR holds a Householder QR factorization of an m x n matrix (m >= n).
// Reflector vectors are stored in and below the diagonal of qr; the strict
// upper triangle of qr holds R's off-diagonal entries, and diag holds R's
// diagonal.
type QR struct {
	qr   *Dense
	beta []float64 // leading reflector components v_k
	diag []float64 // R_kk
}

// NewQR factorizes a copy of A (m >= n required).
func NewQR(a *Dense) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, errors.New("linalg: QR requires rows >= cols")
	}
	f := &QR{qr: a.Clone(), beta: make([]float64, n), diag: make([]float64, n)}
	qr := f.qr
	for k := 0; k < n; k++ {
		// Column norm below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			v := qr.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			f.beta[k] = 0
			f.diag[k] = 0
			continue
		}
		if qr.At(k, k) > 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		f.beta[k] = qr.At(k, k)
		f.diag[k] = -norm // R_kk
		// Apply the reflector to trailing columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
	}
	return f, nil
}

// LeastSquares solves min_x ||A x - b||_2, returning x of length n.
// It returns ErrSingular if R is rank-deficient.
func (f *QR) LeastSquares(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, errors.New("linalg: LeastSquares dimension mismatch")
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Q^T to y reflector by reflector.
	for k := 0; k < n; k++ {
		if f.beta[k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.diag[i]
		if d == 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Residual returns ||A x - b||_2 for a given solution candidate, using the
// original matrix reconstructed from the factorization is not available;
// callers should keep A. This helper computes the norm directly from A.
func Residual(a *Dense, x, b []float64) float64 {
	r := make([]float64, a.Rows)
	a.MulVec(r, x)
	for i := range r {
		r[i] -= b[i]
	}
	return Norm2(r)
}
