package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"parbem/internal/geom"
)

// TestServeConcurrentSoak fires concurrent mixed-backend /extract and
// /sweep traffic at one server (run under -race in CI) and asserts
//
//   - every request succeeds and each goroutine's repeated identical
//     request returns bitwise-identical results (the plan cache serves
//     the same artifacts; dense-direct sweep reuse is exact), and
//   - the /stats counters balance: nothing lost, nothing double-counted.
//
// Family-plan interleaving hazards are part of the design: two
// goroutines share the dense sweep family on purpose, and the fmm
// extract goroutines use distinct tolerances so each owns its family
// plan (same-family alternation would legitimately warm-start to
// different-in-the-ulps results).
func TestServeConcurrentSoak(t *testing.T) {
	repeats := 3
	if testing.Short() {
		repeats = 2
	}
	s, c := startServer(t, Options{Workers: 2, WorkerBudget: 1, Runners: 2, QueueDepth: 128})
	ctx := context.Background()

	bus := geom.DefaultBus(2, 2).Build()

	// Bodies run on spawned goroutines, so they report failures as
	// errors instead of calling t.Fatal.
	extractBody := func(req *ExtractRequest) func() (string, error) {
		return func() (string, error) {
			res, err := c.Extract(ctx, req)
			if err != nil {
				return "", fmt.Errorf("extract: %w", err)
			}
			buf, _ := json.Marshal(res.CFarads)
			return string(buf), nil
		}
	}
	asyncBody := func(req *ExtractRequest) func() (string, error) {
		return func() (string, error) {
			id, err := c.ExtractAsync(ctx, req)
			if err != nil {
				return "", fmt.Errorf("async: %w", err)
			}
			for deadline := time.Now().Add(time.Minute); ; {
				jr, err := c.Job(ctx, id)
				if err != nil {
					return "", fmt.Errorf("poll: %w", err)
				}
				if jr.Status == "failed" {
					return "", fmt.Errorf("job failed: %v", jr.Error)
				}
				if jr.Status == "done" {
					buf, _ := json.Marshal(jr.Result.CFarads)
					return string(buf), nil
				}
				if time.Now().After(deadline) {
					return "", fmt.Errorf("job stuck")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	sweepBody := func(req *SweepRequest) func() (string, error) {
		return func() (string, error) {
			var pts []*SweepPoint
			tr, err := c.Sweep(ctx, req, func(p *SweepPoint) { pts = append(pts, p) })
			if err != nil {
				return "", fmt.Errorf("sweep: %w", err)
			}
			if tr.Failed != 0 {
				return "", fmt.Errorf("sweep failed points: %+v", tr)
			}
			comparable := make([]any, 0, len(pts))
			for _, p := range pts {
				comparable = append(comparable, []any{p.Index, p.CFarads, p.Fit})
			}
			buf, _ := json.Marshal(comparable)
			return string(buf), nil
		}
	}

	const edge = 0.5e-6
	clients := []struct {
		name string
		body func() (string, error)
	}{
		{"dense-direct", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge, Backend: "dense"})},
		{"dense-direct-twin", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge, Backend: "dense"})},
		{"fmm-block", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge,
			Backend: "fastcap", Precond: "block", Tol: 1e-6})},
		{"fmm-block-h7", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.7e-6)), EdgeM: edge,
			Backend: "fastcap", Precond: "block", Tol: 2e-6})},
		{"auto-bus-async", asyncBody(&ExtractRequest{
			Geometry: geoText(t, bus), EdgeM: 1e-6, Backend: "auto"})},
		{"dense-sweep", sweepBody(&SweepRequest{
			EdgeM: edge, Backend: "dense",
			Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))}})},
		{"dense-sweep-twin", sweepBody(&SweepRequest{
			EdgeM: edge, Backend: "dense",
			Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))}})},
		{"template-sweep", sweepBody(&SweepRequest{
			EdgeM: edge, TemplateHs: []float64{0.4e-6, 0.6e-6}})},
	}

	// Disconnecting clients run alongside the healthy traffic: each
	// fires a synchronous request and hangs up after a staggered few
	// milliseconds. Their jobs may complete (solve won the race) or
	// book as cancelled — never as failed — and the admission counters
	// must still balance exactly.
	chaos := 6
	var wg sync.WaitGroup
	for i := 0; i < chaos; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, time.Duration(2+3*i)*time.Millisecond)
			defer cancel()
			if i%2 == 0 {
				_, _ = c.Extract(cctx, &ExtractRequest{
					Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge, Backend: "dense"})
			} else {
				_, _ = c.Sweep(cctx, &SweepRequest{
					EdgeM: edge, Backend: "dense",
					Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))}}, nil)
			}
		}(i)
	}
	for _, cl := range clients {
		wg.Add(1)
		go func(name string, body func() (string, error)) {
			defer wg.Done()
			var first string
			for rep := 0; rep < repeats; rep++ {
				payload, err := body()
				if err != nil {
					t.Errorf("%s repeat %d: %v", name, rep, err)
					return
				}
				if rep == 0 {
					first = payload
					continue
				}
				if payload != first {
					t.Errorf("%s: repeat %d not bitwise-stable:\nfirst %s\n now  %s",
						name, rep, first, payload)
				}
			}
		}(cl.name, cl.body)
	}
	wg.Wait()

	// A disconnecting client's job can still be queued (HTTP handler
	// returned; the job is skipped when popped); wait for the gauges
	// to drain before balancing the books.
	var stats Stats
	for deadline := time.Now().Add(30 * time.Second); ; {
		stats = s.Stats()
		if stats.Queued == 0 && stats.Running == 0 &&
			stats.Completed+stats.Failed+stats.Cancelled == stats.Accepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never drained: %+v", stats)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A disconnecting client may hang up before its request body even
	// finishes uploading, in which case the job is never admitted — so
	// chaos admissions are an upper bound, healthy ones exact.
	healthy, maxJobs := uint64(len(clients)*repeats), uint64(len(clients)*repeats+chaos)
	if stats.Accepted < healthy || stats.Accepted > maxJobs {
		t.Errorf("accepted %d jobs, want in [%d, %d] (lost or double-counted admissions)",
			stats.Accepted, healthy, maxJobs)
	}
	if stats.Completed+stats.Failed+stats.Cancelled != stats.Accepted {
		t.Errorf("accepted %d != completed %d + failed %d + cancelled %d",
			stats.Accepted, stats.Completed, stats.Failed, stats.Cancelled)
	}
	// Healthy traffic all completes; disconnects book as cancelled or
	// completed depending on the race — never failed.
	if stats.Completed < healthy {
		t.Errorf("completed %d, want >= %d (healthy traffic lost)", stats.Completed, healthy)
	}
	if stats.Failed != 0 {
		t.Errorf("failed %d, want 0 (client disconnects must book as cancelled)", stats.Failed)
	}
	if stats.Extracts+stats.Sweeps > stats.Accepted {
		t.Errorf("extracts %d + sweeps %d > %d admitted", stats.Extracts, stats.Sweeps, stats.Accepted)
	}
	wantPoints := uint64(3 * repeats * 2) // three healthy sweep clients x two points
	if stats.SweepPoints < wantPoints {
		t.Errorf("sweep points %d, want >= %d (dropped points on healthy traffic)", stats.SweepPoints, wantPoints)
	}
	if stats.SweepPointErrors != 0 {
		t.Errorf("%d sweep point errors on healthy traffic", stats.SweepPointErrors)
	}
	if stats.Engine.StateHits == 0 {
		t.Error("engine state cache never hit: requests are not sharing the plan cache")
	}
	if stats.RejectedQueueFull != 0 {
		t.Errorf("%d rejections with an empty 128-deep queue", stats.RejectedQueueFull)
	}
}
