// Package serve implements the long-running extraction service behind
// the capxd daemon: an HTTP/JSON front end over one shared
// batch.Engine, so the plan, basis, kernel-table and pair-integral
// caches built up by PRs 1-4 amortize across requests and process
// lifetime instead of dying with each CLI invocation.
//
// # Endpoints
//
//	POST /extract   one geometry through the unified operator pipeline
//	                (parbem.ExtractPipeline semantics, geomio payload);
//	                async=true enqueues and returns a job id
//	POST /sweep     a stream of geometry variants through the engine's
//	                family-keyed plan cache, or a template a(h), b(h)
//	                h-sweep (extract.SweepH); responds with NDJSON,
//	                one point per line, errors as per-point entries
//	GET  /jobs/{id} status and result of a submitted job
//	GET  /healthz   liveness
//	GET  /stats     queue gauges, job counters, engine cache counters
//	GET  /metrics   the same counters in Prometheus text exposition
//	                format, plus queue-wait and per-stage latency
//	                histograms (see metrics.go for the name inventory)
//
// The response schema matches capx -json (snake_case telemetry fields,
// c_farads matrix rows), so serving and CLI tooling share consumers;
// capx -remote http://... rides this API directly.
//
// # Admission control and worker budgeting
//
// Every solve enters a bounded job queue; when the queue is full the
// server rejects immediately with a structured queue_full error (HTTP
// 429) instead of building unbounded backlog. Admission is two-tier:
// interactive extracts and bulk sweeps queue separately, and runners
// take any waiting extract before the next sweep, so a burst of bulk
// traffic cannot starve latency-sensitive requests (it can only delay
// other bulk work). A fixed set of runner goroutines drains the
// queues, and each running job's stage builds and operator applies
// execute on a sched.Budgeted view of the engine's persistent worker
// pool, capped at WorkerBudget workers per request — concurrent
// requests divide the pool instead of each spawning GOMAXPROCS
// goroutines on top of one another. The one exception is template
// sweeps: extract.SweepH owns its machine-wide fan-out outside the
// engine pool, so those serialize on a dedicated single slot instead.
//
// # Deadlines
//
// A request may carry timeout_ms; the clock starts at admission, so
// queue time counts against it. The deadline propagates as a
// context.Context through the engine, the plan-stage builds and the
// per-iteration GMRES checkpoints, so an expired request stops inside
// the solver instead of completing work nobody will read. Expiry
// surfaces as a structured deadline_exceeded error (HTTP 504 on a
// synchronous /extract) carrying partial telemetry: the stage that
// was running, elapsed milliseconds and Krylov iterations completed.
//
// # Tenant fairness
//
// When Options.TenantRate is set, each tenant — identified by the
// X-Tenant request header; absent headers share one anonymous bucket —
// is admitted through its own token bucket (TenantRate requests/sec
// sustained, TenantBurst burst). Requests over the limit are rejected
// with a structured rate_limited error (HTTP 429) before decode-time
// work is spent on them.
//
// Malformed input (bad JSON, bad geometry text, NaN coordinates,
// zero-area boxes, over-limit panel estimates) is rejected at decode
// time with a *RequestError before any solver state is touched; the
// boundary is fuzzed (FuzzDecodeRequest) to never panic.
//
// # Job accounting
//
// Every admitted job ends in exactly one of three monotonic counters:
// jobs_completed, jobs_failed or jobs_cancelled (the client went away
// — disconnect or abandoned stream — before or during the run), so
// jobs_accepted == completed + failed + cancelled holds at every
// quiescent point. Deadline expiries count as failures and are
// additionally tallied by the deadline_exceeded counter.
//
// # Durability and restarts
//
// With Options.DataDir set, async extract jobs are journaled (see
// durable.go and the journal package): the accepted record — wire
// payload, idempotency key — is fsync'd before POST /extract returns
// 202, and every later state edge follows it, so a SIGKILL or power
// loss loses no acknowledged job. Open replays the journal: finished
// jobs stay queryable via GET /jobs/{id}, unfinished ones re-run.
// Drain puts the server into a graceful stop: admission rejects with a
// structured 503 draining error (Retry-After attached), /healthz flips
// to 503, running jobs get a bounded time to finish and are interrupted
// — journaled as re-runnable — past it. Backpressure rejections
// (queue_full, rate_limited, draining) carry Retry-After advice in
// both the error body (retry_after_sec) and the HTTP header.
//
// # Cache sharing
//
// All requests share the engine's state LRU and plan cache: identical
// geometries are pure cache hits, and geometry variants of one
// structural family — an h-sweep arriving as separate HTTP requests —
// reuse each other's near-field integrals, block factorizations and
// warm starts exactly as an explicit parbem.Plan sweep would
// (TestServeWarmCacheSpeedup pins the amortization at >= 2x).
//
// # Running a replica set
//
// Cache sharing extends across processes. With Options.ArtifactDir
// set, an owned engine's plans read the expensive solver by-products —
// near-field matrix values and preconditioner factors, keyed by a
// content hash of geometry and solve options — through a disk artifact
// store (internal/artifact) before building, and write through after,
// so identical-family work survives restarts. With Options.Peers set,
// a local miss first tries each sibling replica's GET /artifacts/{key}
// endpoint and populates the local store on a hit: a cold replica
// joining a warm set skips most integration work. /stats and /metrics
// report the artifact traffic (local hits, peer hits, misses, puts,
// peer errors).
//
// NewRouter is the matching thin coordinator (capxd -route): it owns
// no engine, consistent-hashes each request's geometry family key
// (batch.FamilyKey) over the replica set, and forwards to the owning
// replica, so every variant of a family lands where its plans and
// artifacts are already warm. When the owner is down or shedding, the
// router walks the ring's successors with backoff — a killed replica
// costs affinity, not availability (TestReplicaSetCoordinatorSoak pins
// zero failed client requests through a mid-soak kill).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parbem/internal/artifact"
	"parbem/internal/batch"
	"parbem/internal/extract"
	"parbem/internal/faultpoint"
	"parbem/internal/geom"
	"parbem/internal/op"
	"parbem/internal/plan"
	"parbem/internal/serve/journal"
)

// Options configures a Server. The zero value serves with a fresh
// GOMAXPROCS engine, queues of 64, one runner, no worker budget (each
// job may use the whole pool) and no tenant rate limits.
type Options struct {
	// Engine optionally supplies the batch engine; nil creates one
	// owned by the server (closed by Close) from the fields below.
	Engine *batch.Engine
	// Workers sizes an owned engine's persistent pool (0 = GOMAXPROCS).
	Workers int
	// WorkerBudget caps how many pool workers one job occupies
	// (0 = the whole pool) via the engine's PlanWorkers budget. It
	// applies to an owned engine only; a supplied Engine keeps its own
	// PlanWorkers setting, which becomes the server's effective budget
	// (reported by /stats and used to derive Runners).
	WorkerBudget int
	// QueueDepth bounds the interactive (extract) admission queue
	// (0 = 64).
	QueueDepth int
	// SweepQueueDepth bounds the bulk (sweep) admission queue
	// (0 = QueueDepth).
	SweepQueueDepth int
	// Runners is the number of concurrent jobs (0 = pool/budget when a
	// budget is set, else 1).
	Runners int
	// TenantRate enables per-tenant token-bucket admission limits:
	// each tenant (X-Tenant header) sustains TenantRate requests/sec
	// with bursts of TenantBurst (0 burst = ceil(rate), min 1).
	// TenantRate 0 disables tenant limiting.
	TenantRate  float64
	TenantBurst int
	// CacheEntries / PairCacheEntries size an owned engine's caches
	// (0 = engine defaults).
	CacheEntries     int
	PairCacheEntries int
	// DefaultPrecision is the matvec arithmetic applied to requests that
	// leave their precision selector empty or "auto" (capxd -precision).
	// The zero value (op.PrecisionAuto) keeps the cost model in charge.
	DefaultPrecision op.Precision
	// Limits bound individual requests (zero value = defaults).
	Limits Limits
	// JobHistory is how many finished jobs stay queryable via
	// GET /jobs/{id} (0 = 256).
	JobHistory int
	// DataDir, when set, enables the durable job journal
	// (DataDir/jobs.journal): async extract jobs are fsync'd at every
	// state edge, replayed on the next Open — finished results stay
	// queryable across restarts, unfinished jobs re-run — and
	// deduplicated by idempotency key. Empty disables durability.
	// Synchronous requests never touch the journal either way: their
	// results die with the connection, so the fsyncs would buy nothing.
	DataDir string
	// ArtifactDir, when set, enables the persistent stage-artifact
	// store (capxd defaults it to DataDir/artifacts): an owned engine's
	// plans read near-field values and block factors through it before
	// building and write through after, so identical-family requests
	// skip integration across restarts. It applies to an owned engine
	// only (a supplied Engine keeps its own artifact wiring). Empty
	// disables persistence.
	ArtifactDir string
	// ArtifactMaxBytes bounds the resident artifact bytes under
	// ArtifactDir (LRU eviction; 0 = the store's 1 GiB default).
	ArtifactMaxBytes int64
	// Peers lists sibling replicas' base URLs (e.g.
	// "http://10.0.0.2:8080"): a locally-missing artifact is fetched
	// from the first peer that holds it (GET /artifacts/{key}) before
	// being computed. Peers are only consulted when ArtifactDir is set.
	Peers []string
	// Logf receives replay, drain, journal and artifact diagnostics
	// (nil = discard).
	Logf func(format string, args ...any)
}

// Job priority classes. Interactive jobs (extract) are popped with
// strict priority over bulk jobs (sweep): a runner drains every
// waiting interactive job before taking the next bulk one.
const (
	classInteractive = iota // extract: latency-sensitive
	classBulk               // sweep: throughput traffic
	numClasses
)

// classNames are the metric label values of the priority classes.
var classNames = [numClasses]string{"interactive", "bulk"}

// Server is the extraction service. Create with New, expose with
// Handler, release with Close. Safe for concurrent use.
type Server struct {
	opt     Options
	limits  Limits
	eng     *batch.Engine
	ownEng  bool
	limiter *tenantLimiter
	logf    func(format string, args ...any)

	// jrnl is the durable job log (nil without Options.DataDir); idem
	// maps live idempotency keys to job ids (guarded by mu).
	jrnl *journal.Journal
	idem map[string]string

	// artifacts is the persistent stage-artifact resolver (nil without
	// Options.ArtifactDir): the owned engine's plans read/write through
	// it, and GET /artifacts/{key} serves its local store to peers.
	artifacts *artifactResolver

	// draining gates admission once Drain starts; baseCtx is the
	// ancestor of every job context and is cancelled when a drain
	// overruns its timeout, stopping in-flight jobs at their next
	// checkpoint.
	draining   atomic.Bool
	baseCtx    context.Context
	baseCancel context.CancelFunc
	// admitWG tracks admits between id reservation and channel send
	// (the send happens outside mu so the accepted journal record can
	// precede poppability); Close waits on it before closing the queues.
	admitWG sync.WaitGroup
	// ewmaRunNs smooths job run time for queue_full Retry-After advice.
	ewmaRunNs atomic.Int64

	// queues[classInteractive] holds extracts, queues[classBulk]
	// sweeps; runners pop interactive-first (see nextJob).
	queues  [numClasses]chan *job
	runners int
	wg      sync.WaitGroup
	// tmplSem serializes template sweeps: the sweep fans out to
	// budget-many solver goroutines with their own per-chunk plans,
	// outside the engine pool the per-job worker budget bounds, so at
	// most one such sweep runs at a time (its goroutines are extra
	// threads beyond the pool even when budget-bounded).
	tmplSem chan struct{}

	mu     sync.Mutex
	jobs   map[string]*job
	hist   []string // finished job ids in retirement order
	seq    uint64
	closed bool

	start time.Time
	c     counters
	m     *metrics

	// sweepH runs the template h-sweep (extract.SweepHWorkers, bounded
	// by the worker budget); tests inject mid-sweep failures through it
	// to pin the per-point error reporting at the service edge.
	sweepH func(geom.CrossingPairSpec, []float64, float64, int) ([]*extract.ArchFit, error)
}

// counters are the monotonic job/request counters of /stats. Queued
// (total and per class) and Running are gauges. Every accepted job
// lands in exactly one of completed/failed/cancelled.
type counters struct {
	accepted     atomic.Uint64
	rejectedFull atomic.Uint64
	rejectedRate atomic.Uint64
	badRequests  atomic.Uint64
	completed    atomic.Uint64
	failed       atomic.Uint64
	cancelled    atomic.Uint64
	deadline     atomic.Uint64
	queued       atomic.Int64
	queuedClass  [numClasses]atomic.Int64
	running      atomic.Int64

	extracts         atomic.Uint64
	sweeps           atomic.Uint64
	sweepPoints      atomic.Uint64
	sweepPointErrors atomic.Uint64

	rejectedDraining atomic.Uint64
	replayed         atomic.Uint64
	interrupted      atomic.Uint64
	idemHits         atomic.Uint64
}

// jobState is the lifecycle of a job.
type jobState int32

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("jobState(%d)", int32(s))
}

// job is one admitted request. run executes on a runner goroutine;
// stream, when non-nil, receives per-point sweep messages and is closed
// by the runner when the job finishes. ctx is the requester's context,
// bounded by the request's timeout_ms deadline when one was set (the
// clock starts at admission): a job whose context has fired is skipped
// when popped, and one in flight is stopped at the next plan-stage or
// GMRES-iteration checkpoint. Async jobs derive from the background
// context; they deliberately outlive their submitting request but
// still honor their own deadline.
type job struct {
	id    string
	kind  string // "extract" | "sweep"
	class int    // classInteractive | classBulk
	state atomic.Int32
	ctx   context.Context
	// cancel releases the timeout_ms deadline timer; nil when the
	// request carried none.
	cancel context.CancelFunc

	run    func() (any, error)
	stream chan any

	// journaled jobs (async extracts on a durable server) write their
	// state edges to the journal; reqJSON is the wire payload persisted
	// with the accepted record, idemKey the client's dedup key.
	journaled bool
	reqJSON   json.RawMessage
	idemKey   string

	result any
	err    error
	done   chan struct{}

	enqueued time.Time
	started  time.Time
	finished time.Time
}

// release frees the job's deadline timer, if any.
func (j *job) release() {
	if j.cancel != nil {
		j.cancel()
	}
}

// New creates a server and starts its runner goroutines. It panics when
// the journal under Options.DataDir cannot be opened or replayed; use
// Open to handle that error. Without a DataDir, New cannot fail.
func New(opt Options) *Server {
	s, err := Open(opt)
	if err != nil {
		panic(fmt.Sprintf("serve: %v", err))
	}
	return s
}

// Open creates a server, replaying the durable job journal under
// Options.DataDir when one is configured: finished async jobs come back
// queryable via GET /jobs/{id}, unfinished ones are re-enqueued.
func Open(opt Options) (*Server, error) {
	s := &Server{
		opt:     opt,
		limits:  opt.Limits.withDefaults(),
		eng:     opt.Engine,
		jobs:    make(map[string]*job),
		idem:    make(map[string]string),
		start:   time.Now(),
		m:       newMetrics(),
		sweepH:  extract.SweepHWorkers,
		tmplSem: make(chan struct{}, 1),
		logf:    opt.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if opt.ArtifactDir != "" {
		store, err := artifact.Open(opt.ArtifactDir, artifact.Options{
			MaxBytes: opt.ArtifactMaxBytes,
			Logf:     s.logf,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: artifact store: %w", err)
		}
		s.artifacts = newArtifactResolver(store, opt.Peers, s.logf)
	}
	if s.eng == nil {
		var arts plan.ArtifactStore
		if s.artifacts != nil {
			arts = s.artifacts
		}
		s.eng = batch.New(batch.Options{
			Workers:          opt.Workers,
			PlanWorkers:      opt.WorkerBudget,
			CacheEntries:     opt.CacheEntries,
			PairCacheEntries: opt.PairCacheEntries,
			Artifacts:        arts,
		})
		s.ownEng = true
	}
	// The effective budget is whatever the engine actually enforces: a
	// supplied engine keeps its own PlanWorkers, and deriving runner
	// counts (or reporting /stats) from an unenforced request-level
	// budget would oversubscribe the pool.
	s.opt.WorkerBudget = s.eng.PlanWorkers()
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	sweepDepth := opt.SweepQueueDepth
	if sweepDepth <= 0 {
		sweepDepth = depth
	}
	s.queues[classInteractive] = make(chan *job, depth)
	s.queues[classBulk] = make(chan *job, sweepDepth)
	if opt.TenantRate > 0 {
		s.limiter = newTenantLimiter(opt.TenantRate, opt.TenantBurst)
	}
	s.runners = opt.Runners
	if s.runners <= 0 {
		if s.opt.WorkerBudget > 0 {
			s.runners = s.eng.Workers() / s.opt.WorkerBudget
		}
		if s.runners < 1 {
			s.runners = 1
		}
	}
	// Replay before starting runners so re-enqueued jobs cannot race the
	// registration of restored ones.
	if opt.DataDir != "" {
		if err := s.openJournal(opt.DataDir); err != nil {
			if s.ownEng {
				s.eng.Close()
			}
			return nil, err
		}
	}
	s.wg.Add(s.runners)
	for i := 0; i < s.runners; i++ {
		go s.runner()
	}
	return s, nil
}

// Engine exposes the shared batch engine (for tests and embedding).
func (s *Server) Engine() *batch.Engine { return s.eng }

// Close stops admitting jobs, drains the queues, waits for running
// jobs, compacts and closes the journal, and closes an owned engine.
// Call Drain first for a graceful stop that bounds how long running
// jobs may take.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Admits that passed the closed check still hold a send in flight;
	// wait them out before closing the queues.
	s.admitWG.Wait()
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
	s.baseCancel()
	if s.jrnl != nil {
		s.compactJournal()
		if err := s.jrnl.Close(); err != nil {
			s.logf("serve: closing journal: %v", err)
		}
	}
	if s.ownEng {
		s.eng.Close()
	}
}

// admit registers and enqueues a job on its class queue; a full queue,
// draining or closing server rejects with a structured error (full and
// draining rejections carry Retry-After advice). When the job's
// idempotency key matches a live job, that job is returned as dup and
// nothing is enqueued — the retried submit observes its original.
func (s *Server) admit(j *job) (dup *job, err error) {
	if ferr := faultpoint.Hit("serve.admit"); ferr != nil {
		j.release()
		return nil, &RequestError{Code: CodeInternal, Message: ferr.Error()}
	}
	q := s.queues[j.class]
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.release()
		return nil, &RequestError{Code: CodeShuttingDown, Message: "server is shutting down"}
	}
	if s.draining.Load() {
		s.mu.Unlock()
		s.c.rejectedDraining.Add(1)
		j.release()
		return nil, &RequestError{
			Code:          CodeDraining,
			Message:       "server is draining for shutdown; retry against another replica or after Retry-After",
			RetryAfterSec: drainingRetryAfterSec,
		}
	}
	if j.idemKey != "" {
		if prev, ok := s.idem[j.idemKey]; ok {
			dup := s.jobs[prev]
			s.mu.Unlock()
			s.c.idemHits.Add(1)
			j.release()
			if dup == nil {
				// The original retired out of the bounded history; its
				// work ran exactly once, but the result is gone.
				return nil, &RequestError{
					Code:    CodeNotFound,
					Message: fmt.Sprintf("idempotency key maps to job %s, which has been retired from history", prev),
				}
			}
			return dup, nil
		}
	}
	// Capacity is checked against the queued gauge rather than len(q):
	// the channel send happens after mu is released (the accepted
	// journal record must be durable before a runner can pop the job),
	// so the gauge is the reservation and the send below cannot block.
	if s.c.queuedClass[j.class].Load() >= int64(cap(q)) {
		retry := s.queueRetryAfter(j.class)
		s.mu.Unlock()
		s.c.rejectedFull.Add(1)
		j.release()
		return nil, &RequestError{
			Code:          CodeQueueFull,
			Message:       fmt.Sprintf("%s job queue full (%d pending)", classNames[j.class], cap(q)),
			RetryAfterSec: retry,
		}
	}
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	j.enqueued = time.Now()
	if j.idemKey != "" {
		s.idem[j.idemKey] = j.id
	}
	s.jobs[j.id] = j
	s.c.accepted.Add(1)
	s.c.queued.Add(1)
	s.c.queuedClass[j.class].Add(1)
	s.admitWG.Add(1)
	s.mu.Unlock()
	defer s.admitWG.Done()
	if j.journaled {
		// Durability before poppability: a 202 must mean the job
		// survives a crash, and the accepted record must hit disk
		// before any runner can journal the running edge.
		jerr := s.jrnl.Append(journal.Record{
			JobID: j.id, State: journal.StateAccepted, Kind: j.kind,
			IdemKey: j.idemKey, Request: j.reqJSON,
		})
		if jerr != nil {
			s.mu.Lock()
			delete(s.jobs, j.id)
			if j.idemKey != "" {
				delete(s.idem, j.idemKey)
			}
			s.mu.Unlock()
			s.c.accepted.Add(^uint64(0))
			s.c.queued.Add(-1)
			s.c.queuedClass[j.class].Add(-1)
			j.release()
			s.logf("serve: journaling admission of %s: %v", j.id, jerr)
			return nil, &RequestError{
				Code:    CodeInternal,
				Message: fmt.Sprintf("journaling admission: %v", jerr),
			}
		}
	}
	q <- j
	return nil, nil
}

// runner drains the queues until Close, interactive jobs first.
func (s *Server) runner() {
	defer s.wg.Done()
	hi, lo := s.queues[classInteractive], s.queues[classBulk]
	for {
		j, ok := nextJob(&hi, &lo)
		if !ok {
			return
		}
		s.dispatch(j)
	}
}

// nextJob pops the next job with strict priority: any waiting
// interactive job is taken before a bulk one; when the interactive
// queue is empty the runner blocks on both. Closed queues are nil-ed
// out (a nil channel never selects); ok=false once both are closed and
// drained.
func nextJob(hi, lo *chan *job) (*job, bool) {
	for {
		if *hi != nil {
			select {
			case j, ok := <-*hi:
				if !ok {
					*hi = nil
					continue
				}
				return j, true
			default:
			}
		}
		if *hi == nil && *lo == nil {
			return nil, false
		}
		select {
		case j, ok := <-*hi:
			if !ok {
				*hi = nil
				continue
			}
			return j, true
		case j, ok := <-*lo:
			if !ok {
				*lo = nil
				continue
			}
			return j, true
		}
	}
}

// dispatch runs one popped job and books its outcome into exactly one
// of completed/failed/cancelled (jobs_accepted == the sum of the
// three): a client that went away books cancelled, a deadline expiry
// books failed plus the deadline_exceeded tally, everything else
// follows the job error.
func (s *Server) dispatch(j *job) {
	s.c.queued.Add(-1)
	s.c.queuedClass[j.class].Add(-1)
	s.c.running.Add(1)
	j.started = time.Now()
	s.m.queueWait[j.class].observe(j.started.Sub(j.enqueued))
	j.state.Store(int32(jobRunning))
	if j.journaled {
		s.journal(journal.Record{JobID: j.id, State: journal.StateRunning})
	}

	var v any
	var err error
	if j.ctx != nil && j.ctx.Err() != nil {
		// The requester is gone — or its deadline expired — while the
		// job sat in the queue: don't burn pool workers on a result
		// nobody will read.
		if errors.Is(j.ctx.Err(), context.DeadlineExceeded) {
			err = &RequestError{
				Code:      CodeDeadlineExceeded,
				Message:   "deadline expired while the job was queued",
				Stage:     "queued",
				ElapsedMs: time.Since(j.enqueued).Seconds() * 1e3,
			}
		} else {
			err = &RequestError{Code: CodeCancelled, Message: "client went away before the job started"}
		}
		if j.stream != nil {
			close(j.stream)
		}
	} else if ferr := faultpoint.Hit("serve.run"); ferr != nil {
		err = &RequestError{Code: CodeInternal, Message: ferr.Error()}
		if j.stream != nil {
			close(j.stream)
		}
	} else {
		v, err = runJob(j)
	}

	j.result, j.err = v, err
	j.finished = time.Now()
	j.release()
	switch {
	case err == nil:
		j.state.Store(int32(jobDone))
		s.c.completed.Add(1)
	case asRequestError(err).Code == CodeCancelled:
		j.state.Store(int32(jobCancelled))
		s.c.cancelled.Add(1)
	default:
		if asRequestError(err).Code == CodeDeadlineExceeded {
			s.c.deadline.Add(1)
		}
		j.state.Store(int32(jobFailed))
		s.c.failed.Add(1)
	}
	s.observeRun(j.finished.Sub(j.started))
	if j.journaled {
		s.journalOutcome(j)
	}
	s.c.running.Add(-1)
	close(j.done)
	s.retire(j)
}

// observeRun folds one job's run time into the EWMA behind queue_full
// Retry-After advice (load/store races just blur the smoothing).
func (s *Server) observeRun(d time.Duration) {
	old := s.ewmaRunNs.Load()
	if old == 0 {
		s.ewmaRunNs.Store(int64(d))
		return
	}
	s.ewmaRunNs.Store(old - old/5 + int64(d)/5)
}

// runJob executes one job with panic containment: jobs run on raw
// runner goroutines (not HTTP handler goroutines), so without a recover
// here one latent solver panic would kill the whole daemon and every
// queued job. A sweep job's own deferred close(stream) runs during the
// unwind, so the streaming handler cannot hang on a panicked job.
func runJob(j *job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			v = nil
			err = &RequestError{Code: CodeInternal, Message: fmt.Sprintf("internal panic: %v", r)}
		}
	}()
	return j.run()
}

// retire keeps the finished-job history bounded.
func (s *Server) retire(j *job) {
	limit := s.opt.JobHistory
	if limit <= 0 {
		limit = 256
	}
	s.mu.Lock()
	s.hist = append(s.hist, j.id)
	for len(s.hist) > limit {
		if old := s.jobs[s.hist[0]]; old != nil && old.idemKey != "" {
			delete(s.idem, old.idemKey)
		}
		delete(s.jobs, s.hist[0])
		s.hist = s.hist[1:]
	}
	s.mu.Unlock()
}

// lookup returns a registered job.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// withDeadline bounds ctx by the request's timeout_ms, if any. The
// deadline clock starts here — at admission — so queue wait counts
// against the budget.
func withDeadline(ctx context.Context, timeoutMs float64) (context.Context, context.CancelFunc) {
	if timeoutMs <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, time.Duration(timeoutMs*float64(time.Millisecond)))
}

// jobContext derives a job's context: bounded by the request's
// timeout_ms and additionally cancelled by the server's drain context,
// so an overrun drain can stop every job at its next checkpoint. The
// returned cancel releases the merge and any deadline timer.
func (s *Server) jobContext(ctx context.Context, timeoutMs float64) (context.Context, context.CancelFunc) {
	mctx, mcancel := context.WithCancel(ctx)
	stop := context.AfterFunc(s.baseCtx, mcancel)
	dctx, dcancel := withDeadline(mctx, timeoutMs)
	return dctx, func() {
		stop()
		if dcancel != nil {
			dcancel()
		}
		mcancel()
	}
}

// newExtractJob wraps an extract request as an interactive queue job.
// On a durable server, async jobs are journaled: their wire payload is
// persisted with the accepted record and their idempotency key (when
// the client sent one) dedups retried submissions.
func (s *Server) newExtractJob(ctx context.Context, req *ExtractRequest, st *geom.Structure) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{kind: "extract", class: classInteractive, done: make(chan struct{})}
	if req.Async {
		j.idemKey = req.IdempotencyKey
		if s.jrnl != nil {
			j.journaled = true
			j.reqJSON, _ = json.Marshal(req)
		}
	}
	j.ctx, j.cancel = s.jobContext(ctx, req.TimeoutMs)
	j.run = func() (any, error) {
		s.c.extracts.Add(1)
		res, err := s.runExtract(j, req, st)
		return res, err
	}
	return j
}

// newSweepJob wraps a sweep request as a streaming bulk queue job.
func (s *Server) newSweepJob(ctx context.Context, req *SweepRequest, sts []*geom.Structure) *job {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{kind: "sweep", class: classBulk, done: make(chan struct{}), stream: make(chan any, 16)}
	j.ctx, j.cancel = s.jobContext(ctx, req.TimeoutMs)
	j.run = func() (any, error) {
		s.c.sweeps.Add(1)
		defer close(j.stream)
		return s.runSweep(j, req, sts)
	}
	return j
}

// Stats is the /stats payload.
type Stats struct {
	UptimeSec    float64 `json:"uptime_sec"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCap     int     `json:"queue_cap"`
	Runners      int     `json:"runners"`
	PoolWorkers  int     `json:"pool_workers"`
	WorkerBudget int     `json:"worker_budget"`

	Accepted            uint64 `json:"jobs_accepted"`
	RejectedQueueFull   uint64 `json:"jobs_rejected_queue_full"`
	RejectedRateLimited uint64 `json:"jobs_rejected_rate_limited"`
	BadRequests         uint64 `json:"bad_requests"`
	Completed           uint64 `json:"jobs_completed"`
	Failed              uint64 `json:"jobs_failed"`
	Cancelled           uint64 `json:"jobs_cancelled"`
	DeadlineExceeded    uint64 `json:"deadline_exceeded"`
	Queued              int64  `json:"jobs_queued"`
	QueuedInteractive   int64  `json:"jobs_queued_interactive"`
	QueuedBulk          int64  `json:"jobs_queued_bulk"`
	Running             int64  `json:"jobs_running"`

	Extracts         uint64 `json:"extracts"`
	Sweeps           uint64 `json:"sweeps"`
	SweepPoints      uint64 `json:"sweep_points"`
	SweepPointErrors uint64 `json:"sweep_point_errors"`

	// Durability and drain telemetry (see Options.DataDir and Drain).
	Draining         bool   `json:"draining"`
	RejectedDraining uint64 `json:"jobs_rejected_draining"`
	Replayed         uint64 `json:"jobs_replayed"`
	Interrupted      uint64 `json:"jobs_interrupted"`
	IdempotentHits   uint64 `json:"idempotent_hits"`

	Engine batch.Stats `json:"engine"`

	// Artifacts is the persistent stage-artifact store section (nil
	// without Options.ArtifactDir). PeerHits > 0 is the cross-replica
	// signal: a stage was adopted from a sibling instead of integrated.
	Artifacts *ArtifactStats `json:"artifacts,omitempty"`
}

// Stats snapshots the server and engine counters.
func (s *Server) Stats() Stats {
	var arts *ArtifactStats
	if s.artifacts != nil {
		arts = s.artifacts.stats()
	}
	return Stats{
		Artifacts:    arts,
		UptimeSec:    time.Since(s.start).Seconds(),
		QueueDepth:   len(s.queues[classInteractive]) + len(s.queues[classBulk]),
		QueueCap:     cap(s.queues[classInteractive]) + cap(s.queues[classBulk]),
		Runners:      s.runners,
		PoolWorkers:  s.eng.Workers(),
		WorkerBudget: s.opt.WorkerBudget,

		Accepted:            s.c.accepted.Load(),
		RejectedQueueFull:   s.c.rejectedFull.Load(),
		RejectedRateLimited: s.c.rejectedRate.Load(),
		BadRequests:         s.c.badRequests.Load(),
		Completed:           s.c.completed.Load(),
		Failed:              s.c.failed.Load(),
		Cancelled:           s.c.cancelled.Load(),
		DeadlineExceeded:    s.c.deadline.Load(),
		Queued:              s.c.queued.Load(),
		QueuedInteractive:   s.c.queuedClass[classInteractive].Load(),
		QueuedBulk:          s.c.queuedClass[classBulk].Load(),
		Running:             s.c.running.Load(),

		Extracts:         s.c.extracts.Load(),
		Sweeps:           s.c.sweeps.Load(),
		SweepPoints:      s.c.sweepPoints.Load(),
		SweepPointErrors: s.c.sweepPointErrors.Load(),

		Draining:         s.draining.Load(),
		RejectedDraining: s.c.rejectedDraining.Load(),
		Replayed:         s.c.replayed.Load(),
		Interrupted:      s.c.interrupted.Load(),
		IdempotentHits:   s.c.idemHits.Load(),

		Engine: s.eng.Stats(),
	}
}
