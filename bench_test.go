package parbem

// Benchmark harness: one bench (or bench family) per paper table/figure,
// plus ablations of the design choices called out in DESIGN.md. The cmd/
// tools regenerate the tables at paper scale; these benches use reduced
// sizes so `go test -bench=.` completes in minutes. See EXPERIMENTS.md for
// the measured-vs-paper comparison.

import (
	"testing"
	"time"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/costmodel"
	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/mpi"
	"parbem/internal/par"
	"parbem/internal/pcbem"
	"parbem/internal/pfft"
	"parbem/internal/ratfit"
	"parbem/internal/tabulate"
)

// ---- Table 1: integration acceleration techniques ----

var table1Sink float64

func table1Probes() [][2]float64 {
	var probes [][2]float64
	for i := 0; len(probes) < 128; i++ {
		x := -2 + 5*float64((i*37)%101)/101.0
		y := -2 + 5*float64((i*53)%103)/103.0
		if x > -0.2 && x < 1.2 && y > -0.2 && y < 1.2 {
			continue
		}
		probes = append(probes, [2]float64{x, y})
	}
	return probes
}

func BenchmarkTable1_Technique0_Analytic(b *testing.B) {
	probes := table1Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		table1Sink += kernel.RectPotential(kernel.StdOps, 0, 1, 0, 1, p[0], p[1], 0)
	}
}

func BenchmarkTable1_Technique1_DirectTabulation(b *testing.B) {
	tab := tabulate.Build([]tabulate.Dim{{Min: -2, Max: 3, N: 320}, {Min: -2, Max: 3, N: 320}},
		func(q []float64) float64 {
			return kernel.RectPotential(kernel.StdOps, 0, 1, 0, 1, q[0], q[1], 0)
		})
	probes := table1Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		table1Sink += tab.Eval2(p[0], p[1])
	}
}

func BenchmarkTable1_Technique2_IndefiniteTabulation(b *testing.B) {
	tab := tabulate.Build([]tabulate.Dim{{Min: -3, Max: 3, N: 340}, {Min: -3, Max: 3, N: 340}},
		func(q []float64) float64 {
			return kernel.F2(kernel.StdOps, q[0], q[1], 0)
		})
	probes := table1Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		table1Sink += tab.Eval2(p[0], p[1]) - tab.Eval2(p[0]-1, p[1]) -
			tab.Eval2(p[0], p[1]-1) + tab.Eval2(p[0]-1, p[1]-1)
	}
}

func BenchmarkTable1_Technique3_TabulatedRoutines(b *testing.B) {
	probes := table1Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		table1Sink += kernel.RectPotential(kernel.FastOps, 0, 1, 0, 1, p[0], p[1], 0)
	}
}

func BenchmarkTable1_Technique4_RationalFitting(b *testing.B) {
	grid, err := ratfit.FitGrid(func(q []float64) float64 {
		return kernel.RectPotential(kernel.StdOps, 0, 1, 0, 1, q[0], q[1], 0)
	}, []float64{-2, -2}, []float64{3, 3}, []int{5, 5}, 200, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	probes := table1Probes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		table1Sink += grid.Eval(p[0], p[1])
	}
}

// ---- Table 2: instantiable vs FASTCAP-analog on the interconnect ----

func BenchmarkTable2_FastCapAnalog(b *testing.B) {
	st := NewInterconnect().Build()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractFastCapLike(st, 0.5e-6, FastCapOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_InstantiableNoAccel(b *testing.B) {
	st := NewInterconnect().Build()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(st, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_InstantiableWithAccel(b *testing.B) {
	st := NewInterconnect().Build()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(st, Options{Kernel: FastKernelConfig()}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 3: bus parallel scalability (reduced to 8x8 for bench time;
// cmd/benchtables -table 3 runs the paper's 24x24) ----

func benchBus(b *testing.B, backend Backend, workers int) {
	b.Helper()
	st := NewBus(8, 8).Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(st, Options{Backend: backend, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Serial(b *testing.B)        { benchBus(b, Serial, 1) }
func BenchmarkTable3_Shared2(b *testing.B)       { benchBus(b, SharedMem, 2) }
func BenchmarkTable3_Shared4(b *testing.B)       { benchBus(b, SharedMem, 4) }
func BenchmarkTable3_Distributed2(b *testing.B)  { benchBus(b, Distributed, 2) }
func BenchmarkTable3_Distributed4(b *testing.B)  { benchBus(b, Distributed, 4) }
func BenchmarkTable3_Distributed8(b *testing.B)  { benchBus(b, Distributed, 8) }
func BenchmarkTable3_Distributed10(b *testing.B) { benchBus(b, Distributed, 10) }

// ---- Figure 8: rival parallel efficiency (reduced problem) ----

func benchRivalFMM(b *testing.B, workers int) {
	b.Helper()
	st := NewBus(2, 2).Build()
	prob, err := pcbem.NewProblem(st, 0.5e-6)
	if err != nil {
		b.Fatal(err)
	}
	op := fmm.NewOperator(prob.Panels, fmm.Options{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.SolveIterative(op, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_FMM_Workers1(b *testing.B) { benchRivalFMM(b, 1) }
func BenchmarkFig8_FMM_Workers4(b *testing.B) { benchRivalFMM(b, 4) }
func BenchmarkFig8_FMM_Workers8(b *testing.B) { benchRivalFMM(b, 8) }

func benchRivalPFFT(b *testing.B, workers int) {
	b.Helper()
	st := NewBus(2, 2).Build()
	prob, err := pcbem.NewProblem(st, 0.5e-6)
	if err != nil {
		b.Fatal(err)
	}
	op := pfft.NewOperator(prob.Panels, pfft.Options{Workers: workers})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prob.SolveIterative(op, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_PFFT_Workers1(b *testing.B) { benchRivalPFFT(b, 1) }
func BenchmarkFig8_PFFT_Workers4(b *testing.B) { benchRivalPFFT(b, 4) }
func BenchmarkFig8_PFFT_Workers8(b *testing.B) { benchRivalPFFT(b, 8) }

func BenchmarkFig8_PublishedCurves(b *testing.B) {
	// Evaluating the calibrated reference models (trivial; included so
	// every figure has a bench target).
	var s float64
	for i := 0; i < b.N; i++ {
		for d := 1; d <= 10; d++ {
			s += costmodel.ParallelFMM.Efficiency(d) + costmodel.ParallelPFFT.Efficiency(d)
		}
	}
	table1Sink = s
}

// ---- Figure 2: template extraction ----

func BenchmarkFig2_CrossingProfileExtraction(b *testing.B) {
	sp := NewCrossingPair()
	sp.Length = 6e-6
	for i := 0; i < b.N; i++ {
		if _, err := CrossingProfile(sp, 0.5e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (design choices from DESIGN.md) ----

// BenchmarkAblationDivision compares the paper's static equal-count
// partition against cost-weighted dynamic chunking at D=4.
func BenchmarkAblationDivision_Static(b *testing.B) {
	st := NewBus(6, 6).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.Fill(set, in, par.Options{Workers: 4, Static: true})
	}
}

func BenchmarkAblationDivision_Dynamic(b *testing.B) {
	st := NewBus(6, 6).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.Fill(set, in, par.Options{Workers: 4})
	}
}

// BenchmarkAblationApproxDistance quantifies the approximation-distance
// dimension reduction (paper Section 4.1).
func BenchmarkAblationApproxDistance_On(b *testing.B) {
	st := NewBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assembly.FillSerial(set, in)
	}
}

func BenchmarkAblationApproxDistance_Off(b *testing.B) {
	st := NewBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	in.Cfg.DisableApprox = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assembly.FillSerial(set, in)
	}
}

// BenchmarkAblationMaterializePt compares direct accumulation into P
// against materializing the full M x M template matrix first (the memory
// optimization of paper Section 3).
func BenchmarkAblationMaterializePt_Direct(b *testing.B) {
	st := NewBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assembly.FillSerial(set, in)
	}
}

func BenchmarkAblationMaterializePt_Materialized(b *testing.B) {
	st := NewBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	m := set.M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := linalg.NewDense(m, m)
		for k := int64(0); k < assembly.NumPairs(m); k++ {
			ti, tj := assembly.KToIJ(k)
			v := in.TemplatePair(&set.Templates[ti], &set.Templates[tj])
			pt.Set(ti, tj, v)
			pt.Set(tj, ti, v)
		}
		// Condense.
		p := linalg.NewDense(set.N(), set.N())
		for ti := 0; ti < m; ti++ {
			for tj := 0; tj < m; tj++ {
				p.Add(set.Owner[ti], set.Owner[tj], pt.At(ti, tj))
			}
		}
	}
}

// BenchmarkAblationCholesky compares the blocked Cholesky against GMRES on
// the (small, dense) instantiable system.
func BenchmarkAblationCholesky_Direct(b *testing.B) {
	st := NewBus(6, 6).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	P := assembly.FillSerial(set, in)
	linalg.Scal(1/(kernel.FourPi*kernel.Eps0), P.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := linalg.NewCholesky(P)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, P.Rows)
		rhs := make([]float64, P.Rows)
		for j := range rhs {
			rhs[j] = 1e-12
		}
		ch.Solve(x, rhs)
	}
}

func BenchmarkAblationCholesky_GMRES(b *testing.B) {
	st := NewBus(6, 6).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	P := assembly.FillSerial(set, in)
	linalg.Scal(1/(kernel.FourPi*kernel.Eps0), P.Data)
	rhs := make([]float64, P.Rows)
	for j := range rhs {
		rhs[j] = 1e-12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, P.Rows)
		if _, err := linalg.GMRES(linalg.DenseOp{M: P}, x, rhs,
			linalg.GMRESOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Distributed-memory overhead: ideal vs slow interconnect ----

func BenchmarkMPI_IdealNetwork(b *testing.B) {
	st := NewBus(4, 4).Build()
	for i := 0; i < b.N; i++ {
		net := mpi.NewNetwork(4)
		if _, err := Extract(st, Options{Backend: Distributed, Network: net}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPI_SlowNetwork(b *testing.B) {
	st := NewBus(4, 4).Build()
	for i := 0; i < b.N; i++ {
		net := mpi.NewNetwork(4)
		net.Latency = 200 * time.Microsecond
		if _, err := Extract(st, Options{Backend: Distributed, Network: net}); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: geometry generation should stay cheap.
func BenchmarkBasisGeneration24x24(b *testing.B) {
	st := geom.DefaultBus(24, 24).Build()
	for i := 0; i < b.N; i++ {
		set := basis.Build(st, basis.DefaultBuilderOptions())
		if err := set.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
