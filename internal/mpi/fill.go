package mpi

import (
	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Message tags of the distributed fill protocol.
const (
	tagPartHeader = 1
	tagPartData   = 2
)

// FillOptions tunes the distributed fill beyond the paper's baseline.
type FillOptions struct {
	// ThreadsPerRank runs the rank-local fill on this many goroutine
	// "threads" through the shared work-stealing scheduler (the hybrid
	// MPI+OpenMP layout of real BEM codes). Zero or one keeps the
	// paper's one-thread-per-process model.
	ThreadsPerRank int
	// ChunksPerThread sets how many chunks each rank splits its
	// partition into per thread (default 4; more chunks smooth residual
	// imbalance inside the rank).
	ChunksPerThread int
}

// FillDistributed runs the distributed-memory system setup of paper
// Section 5.2 / Figures 5 and 6 on the given network with the default
// one-thread-per-rank layout.
func FillDistributed(set *basis.Set, in *assembly.Integrator, net *Network) *linalg.Dense {
	return FillDistributedOpts(set, in, net, FillOptions{})
}

// FillDistributedOpts is FillDistributed with explicit fill options: every
// rank holds a private copy of the template definitions and computes the
// entries of P~ in its k-partition into a partial matrix P_Kd; ranks
// d != 0 serialize their partials and send them to the main rank, which
// shifts each slab to its column offset and accumulates into P. The
// returned matrix (rank 0's result) is symmetrized and unscaled.
//
// The rank-local fill runs through the same work-stealing chunk scheduler
// as the shared-memory backend (assembly.FillRanges): the rank's k-range
// is re-chunked and executed on ThreadsPerRank local workers, each chunk's
// slab merging into the rank's partial.
func FillDistributedOpts(set *basis.Set, in *assembly.Integrator, net *Network, fo FillOptions) *linalg.Dense {
	size := net.size
	threads := fo.ThreadsPerRank
	if threads <= 0 {
		threads = 1
	}
	cpt := fo.ChunksPerThread
	if cpt <= 0 {
		cpt = 4
	}
	// One contiguous k-partition per rank (Figure 5/6); boundaries are
	// placed at equal *estimated cost* rather than equal count, since a
	// rank stuck with the expensive shaped-template block would bound
	// the whole setup (every rank computes the same partition
	// deterministically, so no coordination is needed).
	bounds := assembly.PartitionKCost(set, in, size)

	var result *linalg.Dense
	RunOn(net, func(c *Comm) {
		// Each process holds its own copy of the template definitions
		// (paper: "the process d holds its own copy of template
		// definitions"); this also guarantees no shared mutable state.
		local := set.Clone()
		lo, hi := bounds[c.Rank()], bounds[c.Rank()+1]

		if c.Rank() != 0 {
			if hi <= lo {
				c.SendInts(0, tagPartHeader, []int{0, -1})
				return
			}
			part := fillRank(local, in, lo, hi, threads, cpt)
			c.SendInts(0, tagPartHeader, []int{part.ColLo, part.ColHi})
			c.SendFloat64s(0, tagPartData, part.Data.Data)
			return
		}

		// Main process: own partition directly into P, then merge the
		// incoming partial matrices.
		n := local.N()
		P := linalg.NewDense(n, n)
		if hi > lo {
			part := fillRank(local, in, lo, hi, threads, cpt)
			part.MergeInto(P)
		}
		for r := 1; r < size; r++ {
			hdr := c.RecvInts(r, tagPartHeader)
			colLo, colHi := hdr[0], hdr[1]
			if colHi < colLo {
				continue
			}
			data := c.RecvFloat64s(r, tagPartData)
			part := &assembly.Partial{
				N: n, ColLo: colLo, ColHi: colHi,
				Data: linalg.NewDenseFrom(n, colHi-colLo+1, data),
			}
			part.MergeInto(P)
		}
		assembly.Symmetrize(P)
		result = P
	})
	return result
}

// fillRank computes one rank's partial slab for [lo, hi) by running the
// re-chunked range through the shared scheduler on `threads` local
// workers.
func fillRank(set *basis.Set, in *assembly.Integrator, lo, hi int64, threads, chunksPerThread int) *assembly.Partial {
	if threads == 1 {
		// Paper-baseline layout: one thread per process computes its
		// whole partition directly (no sub-chunk slabs or extra merge).
		return assembly.FillPartial(set, in, lo, hi)
	}
	colLo, colHi := assembly.ColRange(set, lo, hi)
	slab := &assembly.Partial{
		N:     set.N(),
		ColLo: colLo,
		ColHi: colHi,
		Data:  linalg.NewDense(set.N(), colHi-colLo+1),
	}
	sub := assembly.PartitionRange(lo, hi, threads*chunksPerThread)
	assembly.FillRanges(set, in, sub, sched.Local(threads), func(p *assembly.Partial) {
		p.MergeIntoSlab(slab)
	})
	return slab
}
