package tabulate

import (
	"math"
	"math/rand"
	"testing"

	"parbem/internal/kernel"
)

func TestCollocationMatchesClosedForm(t *testing.T) {
	tab := NewCollocation(CollocationSpec{})
	rng := rand.New(rand.NewSource(3))
	var maxRel float64
	checked := 0
	for i := 0; i < 20000; i++ {
		// Random rectangle and a point in the tabulated neighborhood.
		w := 0.5e-6 + 4e-6*rng.Float64()
		h := w * (0.15 + 0.85*rng.Float64())
		u1 := (rng.Float64() - 0.5) * 1e-5
		v1 := (rng.Float64() - 0.5) * 1e-5
		pu := u1 + (rng.Float64()*8-3.5)*w
		pv := v1 + (rng.Float64()*8-3.5)*w
		pz := (rng.Float64()*3 + 0.16) * w * sign(rng)
		got, ok := tab.EvalCoords(u1, u1+w, v1, v1+h, pu, pv, pz)
		if !ok {
			continue
		}
		want := kernel.RectPotential(kernel.StdOps, u1, u1+w, v1, v1+h, pu, pv, pz)
		if rel := math.Abs(got-want) / math.Abs(want); rel > maxRel {
			maxRel = rel
		}
		checked++
	}
	if checked < 5000 {
		t.Fatalf("only %d of 20000 probes landed in domain", checked)
	}
	t.Logf("%d in-domain probes, max relative interpolation error %.4f%%", checked, 100*maxRel)
	if maxRel > 0.02 {
		t.Errorf("interpolation error %.2f%% exceeds 2%%", 100*maxRel)
	}
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

func TestCollocationOutOfDomainFallsBack(t *testing.T) {
	tab := NewCollocation(CollocationSpec{})
	cases := []struct {
		name                       string
		u1, u2, v1, v2, pu, pv, pz float64
	}{
		{"aspect too thin", 0, 10, 0, 0.1, 5, 0.05, 1},
		{"z under gate", 0, 1, 0, 1, 0.5, 0.5, 0.01},
		{"z beyond range", 0, 1, 0, 1, 0.5, 0.5, 6},
		{"x beyond range", 0, 1, 0, 1, -6, 0.5, 1},
		{"degenerate rect", 0, 0, 0, 0, 0.5, 0.5, 1},
	}
	for _, c := range cases {
		if _, ok := tab.EvalCoords(c.u1, c.u2, c.v1, c.v2, c.pu, c.pv, c.pz); ok {
			t.Errorf("%s: expected out-of-domain", c.name)
		}
	}
}

func TestCollocationAxisSwapSymmetry(t *testing.T) {
	tab := NewCollocation(CollocationSpec{})
	// A tall rectangle is evaluated by swapping onto the canonical
	// orientation; the result must match the closed form just as well.
	got, ok := tab.EvalCoords(0, 1e-6, 0, 3e-6, 0.5e-6, 1e-6, 1e-6)
	if !ok {
		t.Fatal("query unexpectedly out of domain")
	}
	want := kernel.RectPotential(kernel.StdOps, 0, 1e-6, 0, 3e-6, 0.5e-6, 1e-6, 1e-6)
	if rel := math.Abs(got-want) / want; rel > 0.02 {
		t.Errorf("swapped-orientation error %.2f%%", 100*rel)
	}
}
