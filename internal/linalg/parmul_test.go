package linalg

import (
	"math/rand"
	"testing"

	"parbem/internal/sched"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestParMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 63, 64, 200, 301} {
		m := randDense(rng, n, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, n)
		m.MulVec(want, x)
		got := make([]float64, n)
		ParMulVec(sched.Local(4), m, got, x)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: row %d differs: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestParMulMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{5, 64, 130} {
		a := randDense(rng, n, n+3)
		b := randDense(rng, n+3, n-1)
		want := NewDense(n, n-1)
		Mul(want, a, b)
		got := NewDense(n, n-1)
		ParMul(sched.Local(4), got, a, b)
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("n=%d: ParMul differs from Mul by %g", n, d)
		}
	}
}

func TestDenseOpParallelCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256 // n*n = 65536 >= DenseOpParCutoff
	m := randDense(rng, n, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	m.MulVec(want, x)
	got := make([]float64, n)
	DenseOp{M: m, Exec: sched.Local(4)}.Apply(got, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestGMRESWorkspaceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 40
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64()/float64(n))
		}
		a.Add(i, i, 4)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ws := NewGMRESWorkspace(n, 20)
	var first GMRESResult
	for rep := 0; rep < 3; rep++ {
		x := make([]float64, n)
		res, err := GMRESWith(ws, DenseOp{M: a}, x, b, GMRESOptions{Tol: 1e-10, Restart: 20})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("rep %d did not converge", rep)
		}
		if rep == 0 {
			first = res
		} else if res.Iterations != first.Iterations || res.Residual != first.Residual {
			t.Fatalf("workspace reuse changed the solve: rep %d %+v vs %+v", rep, res, first)
		}
	}

	// Steady-state solves through a warm workspace must not allocate.
	// (The interface conversion is hoisted: DenseOp is a multi-word
	// struct, so boxing it per call would itself allocate.)
	var op Matvec = DenseOp{M: a}
	x := make([]float64, n)
	if allocs := testing.AllocsPerRun(10, func() {
		for i := range x {
			x[i] = 0
		}
		if _, err := GMRESWith(ws, op, x, b, GMRESOptions{Tol: 1e-10, Restart: 20}); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("GMRESWith allocates %.0f objects per warm solve", allocs)
	}
}

var benchSink float64

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 4096
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += Dot(x, y)
	}
}

func BenchmarkAxpy(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 4096
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.SetBytes(int64(24 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(1e-9, x, y)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 512
	m := randDense(rng, n, n)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkParMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 512
	m := randDense(rng, n, n)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	pool := sched.NewPool(0)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParMulVec(pool, m, dst, x)
	}
}

func BenchmarkGMRESWarmWorkspace(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64()/float64(n))
		}
		a.Add(i, i, 4)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	ws := NewGMRESWorkspace(n, 50)
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		if _, err := GMRESWith(ws, DenseOp{M: a}, x, rhs, GMRESOptions{Tol: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
