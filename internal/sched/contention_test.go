package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"
)

// TestFalseSharingPadding pins the padded layouts: a deque occupies a
// whole number of false-sharing ranges (so two heap-allocated deques can
// never share a prefetch-paired cache line), and the job's pending
// counter does not share a range with the read-mostly header fields.
func TestFalseSharingPadding(t *testing.T) {
	if s := unsafe.Sizeof(deque{}); s%falseSharingRange != 0 {
		t.Errorf("deque size %d is not a multiple of %d", s, falseSharingRange)
	}
	var j job
	headerEnd := unsafe.Offsetof(j.done) + unsafe.Sizeof(j.done)
	if unsafe.Offsetof(j.pending)-headerEnd < falseSharingRange {
		t.Errorf("job.pending %d bytes past header end (want >= %d)",
			unsafe.Offsetof(j.pending)-headerEnd, falseSharingRange)
	}
	var s Scratch[*int]
	if unsafe.Offsetof(s.extra)-unsafe.Offsetof(s.busy) < falseSharingRange {
		t.Errorf("Scratch.busy only %d bytes from extra (want >= %d)",
			unsafe.Offsetof(s.extra)-unsafe.Offsetof(s.busy), falseSharingRange)
	}
}

// contentionWorkers enumerates the worker counts of the contention
// benches: 1 (the uncontended floor), then powers of two up to
// GOMAXPROCS (and always at least 2, so the delta vs serial is visible
// even when a 1-CPU runner oversubscribes).
func contentionWorkers() []int {
	ws := []int{1, 2}
	for w := 4; w <= runtime.GOMAXPROCS(0); w *= 2 {
		ws = append(ws, w)
	}
	return ws
}

// BenchmarkMapContention measures the scheduler's per-task overhead
// under maximal contention: many near-empty tasks, so every claim is a
// deque pop racing the thieves and every completion hits the shared
// pending counter. This is the micro-bench that exposed the false
// sharing the deque/job cache-line padding removes — at >= 2 workers
// the padded layout cuts cross-core invalidation traffic on the pop
// and finish paths.
func BenchmarkMapContention(b *testing.B) {
	const tasks = 4096
	for _, w := range contentionWorkers() {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			var sink atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Map(tasks, func(t int) { sink.Add(int64(t & 1)) })
			}
			b.ReportMetric(float64(b.N)*tasks/b.Elapsed().Seconds()/1e6, "Mtasks/s")
		})
	}
}

// BenchmarkScratchContention measures concurrent Acquire/Release on one
// Scratch: the hot CAS on busy plus sync.Pool overflow, the pattern of
// concurrent GMRES columns sharing one operator.
func BenchmarkScratchContention(b *testing.B) {
	for _, w := range contentionWorkers() {
		b.Run(fmt.Sprintf("g=%d", w), func(b *testing.B) {
			s := NewScratch(func() *[64]float64 { return new([64]float64) })
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < w; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						v := s.Acquire()
						v[0]++
						s.Release(v)
					}
				}()
			}
			wg.Wait()
		})
	}
}
