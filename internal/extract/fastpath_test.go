package extract

import (
	"errors"
	"math"
	"testing"

	"parbem/internal/pcbem"
)

// TestIterativeCrossingMatchesDense verifies the accelerated template
// solve: above the panel threshold solveCrossing must route through the
// multipole iterative path and reproduce the dense charge densities to
// well within the arch-fit sensitivity.
func TestIterativeCrossingMatchesDense(t *testing.T) {
	if testing.Short() {
		t.Skip("dense reference solve is O(N^3)")
	}
	sp := smallSpec()
	st := sp.Build()
	prob, err := pcbem.NewProblem(st, 0.15e-6)
	if err != nil {
		t.Fatal(err)
	}
	if prob.N() < iterativeThreshold {
		t.Fatalf("problem too small to exercise the fast path: N=%d", prob.N())
	}
	fast, err := solveCrossing(prob)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Iterations == 0 {
		t.Fatal("solveCrossing did not take the iterative path")
	}
	dense, err := prob.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is the excitation CrossingProfile reads.
	var num, den float64
	for i := 0; i < prob.N(); i++ {
		d := fast.Rho.At(i, 1) - dense.Rho.At(i, 1)
		num += d * d
		den += dense.Rho.At(i, 1) * dense.Rho.At(i, 1)
	}
	// The floor is the operator's center-monopole treatment of
	// mid-range panel pairs (~0.2%), far below the arch-fit
	// sensitivity; the bound guards against regressions on top of it.
	rel := math.Sqrt(num / den)
	if rel > 1e-2 {
		t.Fatalf("iterative charge densities off by %g relative", rel)
	}
}

// TestSweepHMatchesSequential pins the plan-based sweep to the
// per-point results: each h is the same elementary problem an
// independent CrossingProfile solves, and stage reuse only perturbs
// integrals at the coordinate-noise floor (copied entries are bitwise
// what a fresh canonical integration at the previous coordinates
// produced), far below the fits' physical scales.
func TestSweepHMatchesSequential(t *testing.T) {
	base := smallSpec()
	hs := []float64{0.4e-6, 0.8e-6}
	fits, err := SweepH(base, hs, 0.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-8*(math.Abs(a)+math.Abs(b))
	}
	// The decay length is a log-residual least-squares slope: residuals
	// near the plateau sit close to zero, so the log amplifies the
	// coordinate-noise floor by several orders. 1e-5 relative is still
	// ~1000x below the fit's physical accuracy.
	closeDecay := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-5*(math.Abs(a)+math.Abs(b))
	}
	for i, h := range hs {
		sp := base
		sp.H = h
		prof, err := CrossingProfile(sp, 0.5e-6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FitArch(prof, sp)
		if err != nil {
			t.Fatal(err)
		}
		if !close(fits[i].Flat, want.Flat) || !close(fits[i].Peak, want.Peak) ||
			fits[i].PeakPos != want.PeakPos || !closeDecay(fits[i].Decay, want.Decay) {
			t.Fatalf("h=%g: sweep fit %+v != sequential %+v", h, fits[i], want)
		}
	}
}

// TestSweepHPartialErrors verifies per-point error propagation: a
// poisoned h value fails alone, tagged with its separation, while the
// healthy points still produce fits.
func TestSweepHPartialErrors(t *testing.T) {
	base := smallSpec()
	hs := []float64{0.4e-6, math.NaN(), 0.8e-6}
	fits, err := SweepH(base, hs, 0.5e-6)
	if err == nil {
		t.Fatal("poisoned sweep returned no error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not expose a PointError", err)
	}
	if !math.IsNaN(pe.H) {
		t.Errorf("PointError tagged h=%g, want the NaN point", pe.H)
	}
	if fits[0] == nil || fits[2] == nil {
		t.Error("healthy points lost their fits")
	}
	if fits[1] != nil {
		t.Error("failed point produced a fit")
	}
}

// TestPointErrorsDecomposition pins the service-edge contract: every
// failed point of a sweep is recoverable from the joined error, tagged
// with its own separation, so a streaming caller can emit one error
// entry per point instead of dropping points behind the first failure.
func TestPointErrorsDecomposition(t *testing.T) {
	base := smallSpec()
	hs := []float64{math.NaN(), 0.5e-6, math.Inf(1), 0.8e-6}
	fits, err := SweepH(base, hs, 0.5e-6)
	pes := PointErrors(err)
	if len(pes) != 2 {
		t.Fatalf("got %d point errors, want 2 (err: %v)", len(pes), err)
	}
	var sawNaN, sawInf bool
	for _, pe := range pes {
		switch {
		case math.IsNaN(pe.H):
			sawNaN = true
		case math.IsInf(pe.H, 1):
			sawInf = true
		}
	}
	if !sawNaN || !sawInf {
		t.Errorf("point errors tag h values %v, want the NaN and +Inf points", pes)
	}
	for i, h := range hs {
		healthy := !math.IsNaN(h) && !math.IsInf(h, 0)
		if healthy && fits[i] == nil {
			t.Errorf("healthy point h=%g lost its fit", h)
		}
		if !healthy && fits[i] != nil {
			t.Errorf("failed point h=%g produced a fit", h)
		}
	}
	if PointErrors(nil) != nil {
		t.Error("PointErrors(nil) != nil")
	}
}
