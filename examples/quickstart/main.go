// Quickstart: extract the capacitance matrix of a pair of crossing wires
// (paper Figure 1) and print it in femtofarads.
package main

import (
	"fmt"
	"log"

	"parbem"
)

func main() {
	// The elementary problem: a 1 um-wide source wire crossing 0.5 um
	// above a target wire.
	spec := parbem.NewCrossingPair()
	st := spec.Build()

	res, err := parbem.Extract(st, parbem.Options{Backend: parbem.SharedMem})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("structure: %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("basis functions N = %d, templates M = %d (M/N = %.2f)\n",
		res.N, res.M, float64(res.M)/float64(res.N))
	fmt.Printf("timing: basis %v, setup %v, solve %v\n",
		res.Timing.BasisGen, res.Timing.Setup, res.Timing.Solve)

	fmt.Println("\ncapacitance matrix (fF):")
	for i := 0; i < res.C.Rows; i++ {
		for j := 0; j < res.C.Cols; j++ {
			fmt.Printf("%12.4f", res.C.At(i, j)*1e15)
		}
		fmt.Println()
	}
	fmt.Printf("\ncoupling C12 = %.4f fF at separation h = %.2f um\n",
		-res.C.At(0, 1)*1e15, spec.H*1e6)
}
