package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := make([]complex128, n)
		copy(got, x)
		Forward(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: X[%d] = %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestForwardInverseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	Forward(x)
	Inverse(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-12 {
			t.Fatalf("roundtrip[%d] = %v want %v", i, x[i], orig[i])
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two")
		}
	}()
	Forward(make([]complex128, 12))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 128: 128}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d want %d", in, got, want)
		}
	}
	if !IsPow2(64) || IsPow2(0) || IsPow2(12) {
		t.Error("IsPow2 wrong")
	}
}

func TestGrid3RoundtripAndParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid3(8, 4, 16)
	orig := make([]complex128, len(g.Data))
	var energy float64
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
		energy += real(g.Data[i]) * real(g.Data[i])
	}
	g.Forward3()
	// Parseval: sum |X|^2 = N * sum |x|^2.
	var fenergy float64
	for _, v := range g.Data {
		fenergy += real(v)*real(v) + imag(v)*imag(v)
	}
	n := float64(8 * 4 * 16)
	if math.Abs(fenergy-n*energy)/math.Abs(n*energy) > 1e-10 {
		t.Errorf("Parseval violated: %g vs %g", fenergy, n*energy)
	}
	g.Inverse3()
	for i := range g.Data {
		if cmplx.Abs(g.Data[i]-orig[i]) > 1e-10 {
			t.Fatalf("3D roundtrip failed at %d", i)
		}
	}
}

func TestGrid3ConvolutionTheorem(t *testing.T) {
	// Circular convolution of a delta at origin with any kernel returns
	// the kernel.
	k := NewGrid3(4, 4, 4)
	rng := rand.New(rand.NewSource(4))
	for i := range k.Data {
		k.Data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := make([]complex128, len(k.Data))
	copy(orig, k.Data)

	q := NewGrid3(4, 4, 4)
	q.Data[q.Idx(0, 0, 0)] = 1

	k.Forward3()
	q.Forward3()
	q.MulPointwise(k)
	q.Inverse3()
	for i := range q.Data {
		if cmplx.Abs(q.Data[i]-orig[i]) > 1e-10 {
			t.Fatalf("delta convolution failed at %d: %v vs %v", i, q.Data[i], orig[i])
		}
	}
}

func TestGrid3ShiftedDeltaConvolution(t *testing.T) {
	// Convolving with a shifted delta circularly shifts the kernel.
	k := NewGrid3(4, 4, 4)
	for i := range k.Data {
		k.Data[i] = complex(float64(i), 0)
	}
	orig := make([]complex128, len(k.Data))
	copy(orig, k.Data)

	q := NewGrid3(4, 4, 4)
	q.Data[q.Idx(1, 0, 0)] = 1

	k.Forward3()
	q.Forward3()
	q.MulPointwise(k)
	q.Inverse3()
	for ix := 0; ix < 4; ix++ {
		for iy := 0; iy < 4; iy++ {
			for iz := 0; iz < 4; iz++ {
				want := orig[k.Idx((ix+3)%4, iy, iz)]
				got := q.Data[q.Idx(ix, iy, iz)]
				if cmplx.Abs(got-want) > 1e-10 {
					t.Fatalf("shifted conv (%d,%d,%d): %v want %v", ix, iy, iz, got, want)
				}
			}
		}
	}
}
