package assembly

import (
	"math"

	"parbem/internal/basis"
	"parbem/internal/linalg"
)

// NumPairs returns K = M*(M+1)/2, the number of upper-triangular template
// pairs iterated by Algorithm 1.
func NumPairs(m int) int64 {
	return int64(m) * int64(m+1) / 2
}

// KToIJ converts the flat work index k (0 <= k < M(M+1)/2) to template
// indices (i, j) with i <= j, iterating the upper triangle of P~ column by
// column as in Algorithm 1:
//
//	j = floor((-1 + sqrt(1+8k)) / 2),  i = k - j(j+1)/2
func KToIJ(k int64) (i, j int) {
	jj := int64((math.Sqrt(float64(8*k+1)) - 1) / 2)
	// Guard against floating-point boundary errors.
	for (jj+1)*(jj+2)/2 <= k {
		jj++
	}
	for jj*(jj+1)/2 > k {
		jj--
	}
	return int(k - jj*(jj+1)/2), int(jj)
}

// IJToK is the inverse mapping (i <= j required).
func IJToK(i, j int) int64 {
	return int64(j)*int64(j+1)/2 + int64(i)
}

// Partial is the contribution of one contiguous k-range to the condensed
// matrix P: a dense slab covering columns [ColLo, ColHi] of P's upper
// triangle (paper Figure 5). Because the template owner array is
// non-decreasing, the columns touched by a contiguous k-range are
// contiguous.
type Partial struct {
	N            int
	ColLo, ColHi int           // inclusive column range of P
	Data         *linalg.Dense // N x (ColHi-ColLo+1)
}

// Add accumulates v into partial entry (row, col) of P coordinates.
func (p *Partial) Add(row, col int, v float64) {
	p.Data.Add(row, col-p.ColLo, v)
}

// ColRange returns the P-column range [lo, hi] touched by the k-range
// [kLo, kHi) for the given basis set.
func ColRange(set *basis.Set, kLo, kHi int64) (int, int) {
	_, jFirst := KToIJ(kLo)
	_, jLast := KToIJ(kHi - 1)
	return set.Owner[jFirst], set.Owner[jLast]
}

// FillPartial computes all P~ entries for k in [kLo, kHi) and condenses
// them into a Partial slab following the accumulation rule of Algorithm 1:
// an off-diagonal template pair whose templates share a basis function
// lands on P's diagonal twice.
//
// (The paper's printed Algorithm 1 guards the doubling with "i = j and
// l_i = l_j"; as Figure 3's text explains, the doubling applies to
// *off-diagonal* P~ entries condensing onto P's diagonal, so the condition
// is implemented here as i != j with l_i = l_j.)
func FillPartial(set *basis.Set, in *Integrator, kLo, kHi int64) *Partial {
	if kHi <= kLo {
		return &Partial{N: set.N(), ColLo: 0, ColHi: -1, Data: linalg.NewDense(set.N(), 0)}
	}
	colLo, colHi := ColRange(set, kLo, kHi)
	p := &Partial{
		N:     set.N(),
		ColLo: colLo,
		ColHi: colHi,
		Data:  linalg.NewDense(set.N(), colHi-colLo+1),
	}
	for k := kLo; k < kHi; k++ {
		i, j := KToIJ(k)
		v := in.TemplatePair(&set.Templates[i], &set.Templates[j])
		li, lj := set.Owner[i], set.Owner[j]
		if i != j && li == lj {
			p.Add(li, lj, 2*v)
		} else {
			p.Add(li, lj, v)
		}
	}
	return p
}

// MergeIntoSlab adds the partial into a wider partial slab. dst's column
// range must contain p's (callers size dst from ColRange of the enclosing
// k-range).
func (p *Partial) MergeIntoSlab(dst *Partial) {
	off := p.ColLo - dst.ColLo
	for i := 0; i < p.N; i++ {
		row := p.Data.Row(i)
		drow := dst.Data.Row(i)
		for c, v := range row {
			if v != 0 {
				drow[off+c] += v
			}
		}
	}
}

// MergeInto adds the partial slab into the full upper-triangular matrix P.
func (p *Partial) MergeInto(P *linalg.Dense) {
	for i := 0; i < p.N; i++ {
		row := p.Data.Row(i)
		dst := P.Row(i)
		for c, v := range row {
			if v != 0 {
				dst[p.ColLo+c] += v
			}
		}
	}
}

// Symmetrize copies the upper triangle of P onto the lower triangle.
func Symmetrize(P *linalg.Dense) {
	for i := 0; i < P.Rows; i++ {
		for j := i + 1; j < P.Cols; j++ {
			P.Set(j, i, P.At(i, j))
		}
	}
}

// FillSerial runs Algorithm 1 on a single node: the full k-range, merged
// and symmetrized. The returned matrix is the unscaled P (multiply by
// 1/(4*pi*eps) for physical units).
func FillSerial(set *basis.Set, in *Integrator) *linalg.Dense {
	P := linalg.NewDense(set.N(), set.N())
	part := FillPartial(set, in, 0, NumPairs(set.M()))
	part.MergeInto(P)
	Symmetrize(P)
	return P
}

// PartitionK splits the k-range [0, K) into d near-equal contiguous
// partitions (the paper's equal division; the last partition absorbs the
// remainder). It returns the d+1 boundaries.
func PartitionK(K int64, d int) []int64 {
	return PartitionRange(0, K, d)
}

// PartitionRange splits [lo, hi) into d near-equal contiguous partitions,
// returning the d+1 boundaries. It generalizes PartitionK to sub-ranges so
// a distributed-memory rank can re-chunk its own partition for its local
// scheduler.
func PartitionRange(lo, hi int64, d int) []int64 {
	if d < 1 {
		d = 1
	}
	if hi < lo {
		hi = lo
	}
	bounds := make([]int64, d+1)
	per := (hi - lo) / int64(d)
	for i := 0; i <= d; i++ {
		bounds[i] = lo + int64(i)*per
	}
	bounds[d] = hi
	return bounds
}

// pairCostEstimate is a relative cost model for one template-pair
// integration, used only for load balancing. The constants are measured
// average costs per dispatch class (relative to a far-field pair = 1),
// indexed by the proximity bucket that controls quadrature-order elevation
// (see Integrator.order).
func pairCostEstimate(set *basis.Set, cfg costConfig, i, j int) float64 {
	ti, tj := &set.Templates[i], &set.Templates[j]
	d := ti.Support.Dist(tj.Support)
	diam := 0.5 * (ti.Support.Diameter() + tj.Support.Diameter())
	if d > cfg.farFactor*diam {
		return 1
	}
	if d > cfg.midFactor*diam {
		return 4
	}
	b := 0
	if d < 0.05*diam {
		b = 2
	} else if d < diam {
		b = 1
	}
	par := ti.Support.ParallelTo(tj.Support)
	si, sj := !ti.IsFlat(), !tj.IsFlat()
	switch {
	case !si && !sj:
		if par {
			return 12 // analytic 16-corner form, distance-independent
		}
		return [3]float64{40, 85, 136}[b]
	case si != sj:
		if par {
			return [3]float64{22, 46, 51}[b]
		}
		return [3]float64{64, 241, 1009}[b]
	default:
		if par && ti.Dir == tj.Dir {
			return [3]float64{48, 153, 523}[b]
		}
		if par {
			return [3]float64{84, 353, 1400}[b]
		}
		return [3]float64{64, 241, 1009}[b]
	}
}

type costConfig struct{ farFactor, midFactor float64 }

// PartitionKCost splits [0, K) into d contiguous partitions whose
// *estimated costs* are equal, by sampling a few pair costs per column of
// P~ (the exact per-pair cost depends on template kinds and distances, so
// the paper's equal-count division can be imbalanced when basis richness
// varies; see Section 3's balance discussion). Boundaries remain
// contiguous in k, preserving the column-contiguity that the
// distributed-memory partial matrices rely on (Figure 5).
func PartitionKCost(set *basis.Set, in *Integrator, d int) []int64 {
	m := set.M()
	K := NumPairs(m)
	if d <= 1 || m < 2*d {
		return PartitionK(K, d)
	}
	cfg := costConfig{farFactor: in.Cfg.FarFactor, midFactor: in.Cfg.MidFactor}
	if in.Cfg.DisableApprox {
		cfg.farFactor = math.Inf(1)
		cfg.midFactor = math.Inf(1)
	}
	// Column costs from a deterministic sample of rows.
	colCost := make([]float64, m)
	var total float64
	const samples = 9
	for j := 0; j < m; j++ {
		var s float64
		n := 0
		for p := 0; p < samples && p <= j; p++ {
			i := j * p / (samples - 1)
			s += pairCostEstimate(set, cfg, i, j)
			n++
		}
		colCost[j] = s / float64(n) * float64(j+1)
		total += colCost[j]
	}
	// Cut at equal cumulative cost, interpolating within columns.
	bounds := make([]int64, d+1)
	bounds[d] = K
	cum := 0.0
	next := 1
	for j := 0; j < m && next < d; j++ {
		target := total * float64(next) / float64(d)
		for next < d && cum+colCost[j] >= target {
			frac := (target - cum) / colCost[j]
			k := IJToK(0, j) + int64(frac*float64(j+1))
			if k > K {
				k = K
			}
			if k < bounds[next-1] {
				k = bounds[next-1]
			}
			bounds[next] = k
			next++
			target = total * float64(next) / float64(d)
		}
		cum += colCost[j]
	}
	for ; next < d; next++ {
		bounds[next] = K
	}
	return bounds
}
