// Capx is the command-line field solver: it builds one of the benchmark
// structures (or a parameterized variant), runs capacitance extraction
// with the selected backend, and prints the Maxwell capacitance matrix and
// the timing breakdown.
//
// Usage examples:
//
//	capx -structure crossing
//	capx -structure bus -m 24 -n 24 -backend shared -workers 4
//	capx -structure interconnect -backend mpi -workers 10 -accel
//
// Batch mode extracts many geometry files through one shared engine
// (persistent worker pool, basis/table/pair-integral caches), which is
// several times faster than separate runs when structures repeat:
//
//	capx -batch -workers 8 bus1.geo bus2.geo bus3.geo
//
// Piecewise-constant pipeline mode runs the unified operator pipeline
// instead: -backend auto|dense|fastcap|pfft selects the solve backend
// (auto picks per the cost model from panel count and grid fill factor)
// and -precond auto|none|jacobi|block the preconditioner, reporting the
// resolved backend, panel count and Krylov iteration totals:
//
//	capx -structure bus -m 16 -n 16 -backend auto -edge 4e-7 -tol 1e-5
//	capx -structure bus -backend fastcap -precond block
//
// The legacy -baseline flag maps onto the same pipeline path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"parbem"
)

func main() {
	var (
		structure = flag.String("structure", "crossing", "crossing | bus | interconnect | plates")
		input     = flag.String("input", "", "read structure from a geometry file instead")
		m         = flag.Int("m", 8, "bus: lower-layer wire count")
		n         = flag.Int("n", 8, "bus: upper-layer wire count")
		backend   = flag.String("backend", "serial", "instantiable solver: serial | shared | mpi; piecewise-constant pipeline: auto | dense | fastcap | pfft")
		precond   = flag.String("precond", "auto", "pipeline preconditioner: auto | none | jacobi | block")
		workers   = flag.Int("workers", 4, "parallel nodes D")
		accel     = flag.Bool("accel", false, "enable tabulated elementary functions (Section 4.2.3)")
		units     = flag.Float64("unit", 1e15, "output scale (1e15 = fF)")
		maxPrint  = flag.Int("maxprint", 12, "largest matrix printed in full")
		spice     = flag.String("spice", "", "also write a SPICE netlist to this file")
		check     = flag.Bool("check", true, "validate the Maxwell matrix structure")
		batchMode = flag.Bool("batch", false, "batch mode: extract the geometry files given as arguments through one shared engine")
		tables    = flag.Bool("tables", false, "enable the tabulated collocation kernel (Section 4.2.1)")
		baseline  = flag.String("baseline", "", "run a piecewise-constant baseline instead: fastcap | pfft | dense")
		tol       = flag.Float64("tol", 1e-4, "baseline iterative solver relative tolerance")
		edge      = flag.Float64("edge", 0.5e-6, "baseline max panel edge (m)")
	)
	flag.Parse()

	if *batchMode {
		if *spice != "" {
			log.Fatal("-spice is not supported in batch mode")
		}
		runBatch(flag.Args(), *backend, *workers, *tables, *accel, *check, *units, *maxPrint)
		return
	}

	var st *parbem.Structure
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			log.Fatal(ferr)
		}
		st, err = parbem.ReadStructure(f)
		f.Close()
	} else {
		st, err = buildStructure(*structure, *m, *n)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *baseline != "" {
		runPipeline(st, *baseline, *precond, *edge, *tol, *workers, *units, *maxPrint, *check)
		return
	}
	if isPipelineBackend(*backend) {
		runPipeline(st, *backend, *precond, *edge, *tol, *workers, *units, *maxPrint, *check)
		return
	}

	opt := parbem.Options{Workers: *workers, Tables: *tables}
	be, err := parseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	opt.Backend = be
	if *accel {
		opt.Kernel = parbem.FastKernelConfig()
	}

	res, err := parbem.Extract(st, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("structure : %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("backend   : %v, D = %d, accel = %v\n", opt.Backend, *workers, *accel)
	fmt.Printf("basis     : N = %d functions, M = %d templates (M/N = %.2f)\n",
		res.N, res.M, float64(res.M)/float64(res.N))
	fmt.Printf("memory    : %.1f KB system matrix\n", float64(res.MatrixBytes)/1024)
	if res.Timing.TableGen > 0 {
		fmt.Printf("timing    : basis %v | tables %v | setup %v | solve %v | total %v\n",
			res.Timing.BasisGen, res.Timing.TableGen, res.Timing.Setup, res.Timing.Solve, res.Timing.Total)
	} else {
		fmt.Printf("timing    : basis %v | setup %v | solve %v | total %v\n",
			res.Timing.BasisGen, res.Timing.Setup, res.Timing.Solve, res.Timing.Total)
	}
	fmt.Printf("setup %%   : %.1f%%\n\n",
		100*float64(res.Timing.Setup)/float64(res.Timing.Total))

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}

	if *check {
		if violations := parbem.CheckMaxwell(res.C, 0); len(violations) > 0 {
			fmt.Println("Maxwell-matrix warnings:")
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Println()
		}
	}

	if *spice != "" {
		f, err := os.Create(*spice)
		if err != nil {
			log.Fatal(err)
		}
		if err := parbem.WriteSpice(f, res.C, names, 1e-20); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("netlist   : %s\n\n", *spice)
	}

	fmt.Println("capacitance matrix (scaled):")
	printMatrix(res.C, *units, names, *maxPrint)
}

// printMatrix prints the full matrix up to maxPrint conductors, else the
// diagonal with each row's strongest coupling.
func printMatrix(c *parbem.Matrix, units float64, names []string, maxPrint int) {
	nc := c.Rows
	if nc <= maxPrint {
		fmt.Print(parbem.FormatMatrix(c, units, names))
		return
	}
	fmt.Printf("matrix is %dx%d; printing diagonal and strongest coupling per row\n", nc, nc)
	for i := 0; i < nc; i++ {
		best, bj := 0.0, -1
		for j := 0; j < nc; j++ {
			if j != i && -c.At(i, j) > best {
				best, bj = -c.At(i, j), j
			}
		}
		fmt.Printf("C[%3d][%3d] = %10.4f   strongest coupling -> %3d: %10.4f\n",
			i, i, c.At(i, i)*units, bj, best*units)
	}
}

// isPipelineBackend reports whether the -backend value selects the
// unified piecewise-constant pipeline rather than an instantiable-basis
// fill backend.
func isPipelineBackend(name string) bool {
	switch name {
	case "auto", "dense", "fastcap", "pfft":
		return true
	}
	return false
}

// runPipeline solves the structure through the unified operator pipeline
// and reports the resolved backend, panel counts, Krylov iterations and
// timing next to the capacitance matrix.
func runPipeline(st *parbem.Structure, kind, precond string, edge, tol float64, workers int, units float64, maxPrint int, check bool) {
	opt := parbem.PipelineOptions{Tol: tol}
	switch kind {
	case "auto":
		opt.Backend = parbem.BackendAuto
		// Whichever accelerated operator the cost model picks must see
		// the worker count.
		opt.FMM = &parbem.FastCapOptions{Workers: workers}
		opt.PFFT = &parbem.PFFTOptions{Workers: workers}
	case "fastcap", "fmm":
		opt.Backend = parbem.BackendFMM
		opt.FMM = &parbem.FastCapOptions{Workers: workers}
	case "pfft":
		opt.Backend = parbem.BackendPFFT
		opt.PFFT = &parbem.PFFTOptions{Workers: workers}
	case "dense":
		opt.Backend = parbem.BackendDense
		// An explicit -precond request means the user wants the
		// preconditioned iterative path; the default is the direct
		// factorization (the historical -baseline dense behavior).
		opt.Direct = precond == "" || precond == "auto"
	default:
		log.Fatalf("unknown pipeline backend %q (want auto, dense, fastcap or pfft)", kind)
	}
	switch precond {
	case "", "auto":
		opt.Precond = parbem.PrecondAuto
	case "none":
		opt.Precond = parbem.PrecondNone
	case "jacobi":
		opt.Precond = parbem.PrecondJacobi
	case "block":
		opt.Precond = parbem.PrecondBlockJacobi
	default:
		log.Fatalf("unknown preconditioner %q (want auto, none, jacobi or block)", precond)
	}

	t0 := time.Now()
	res, err := parbem.ExtractPipeline(st, edge, opt)
	if err != nil {
		log.Fatal(err)
	}
	total := time.Since(t0)

	fmt.Printf("structure : %s (%d conductors)\n", st.Name, st.NumConductors())
	fmt.Printf("backend   : %v (requested %s), N = %d panels, edge = %g m\n",
		res.Backend, kind, res.NumPanels, edge)
	if res.Iterations > 0 {
		fmt.Printf("krylov    : %d GMRES iterations total (tol %g, precond %s, all conductors concurrent)\n",
			res.Iterations, tol, precond)
	}
	fmt.Printf("timing    : setup %v | solve %v | total %v\n\n", res.SetupTime, res.SolveTime, total)

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}
	if check {
		if violations := parbem.CheckMaxwell(res.C, 0); len(violations) > 0 {
			fmt.Println("Maxwell-matrix warnings:")
			for _, v := range violations {
				fmt.Printf("  %s\n", v)
			}
			fmt.Println()
		}
	}
	fmt.Println("capacitance matrix (scaled):")
	printMatrix(res.C, units, names, maxPrint)
}

func parseBackend(name string) (parbem.Backend, error) {
	switch name {
	case "serial":
		return parbem.Serial, nil
	case "shared":
		return parbem.SharedMem, nil
	case "mpi":
		return parbem.Distributed, nil
	}
	return 0, fmt.Errorf("unknown backend %q", name)
}

// runBatch extracts every geometry file through one shared engine and
// prints a per-structure summary plus aggregate cache statistics.
func runBatch(files []string, backend string, workers int, tables, accel, check bool, units float64, maxPrint int) {
	if len(files) == 0 {
		log.Fatal("batch mode needs geometry files as arguments")
	}
	be, err := parseBackend(backend)
	if err != nil {
		log.Fatal(err)
	}
	structures := make([]*parbem.Structure, len(files))
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		st, err := parbem.ReadStructure(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		structures[i] = st
	}

	engOpt := parbem.EngineOptions{
		Backend: be,
		Workers: workers,
		Tables:  tables,
	}
	if accel {
		engOpt.Kernel = parbem.FastKernelConfig()
	}
	eng := parbem.NewEngine(engOpt)
	defer eng.Close()

	t0 := time.Now()
	results, err := eng.ExtractAll(structures)
	elapsed := time.Since(t0)
	if err != nil {
		log.Fatal(err)
	}

	for i, res := range results {
		fmt.Printf("%-24s %3d conductors  N=%4d  M=%4d  setup %v\n",
			files[i], structures[i].NumConductors(), res.N, res.M, res.Timing.Setup)
		if check {
			for _, v := range parbem.CheckMaxwell(res.C, 0) {
				fmt.Printf("  warning: %s\n", v)
			}
		}
		names := make([]string, structures[i].NumConductors())
		for j, c := range structures[i].Conductors {
			names[j] = c.Name
		}
		printMatrix(res.C, units, names, maxPrint)
		fmt.Println()
	}
	s := eng.Stats()
	fmt.Printf("batch     : %d structures in %v (%.1f/s)\n",
		len(files), elapsed, float64(len(files))/elapsed.Seconds())
	fmt.Printf("caches    : state %d hits / %d misses, pair integrals %d hits / %d misses (%d entries)\n",
		s.StateHits, s.StateMisses, s.PairHits, s.PairMisses, s.PairEntries)
}

func buildStructure(kind string, m, n int) (*parbem.Structure, error) {
	switch kind {
	case "crossing":
		return parbem.NewCrossingPair().Build(), nil
	case "bus":
		return parbem.NewBus(m, n).Build(), nil
	case "interconnect":
		return parbem.NewInterconnect().Build(), nil
	case "plates":
		side, gap, thick := 20e-6, 0.5e-6, 0.2e-6
		return &parbem.Structure{
			Name: "plates",
			Conductors: []*parbem.Conductor{
				{Name: "bot", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: 0},
					parbem.Vec3{X: side, Y: side, Z: thick})}},
				{Name: "top", Boxes: []parbem.Box{parbem.NewBox(
					parbem.Vec3{X: 0, Y: 0, Z: thick + gap},
					parbem.Vec3{X: side, Y: side, Z: 2*thick + gap})}},
			},
		}, nil
	}
	fmt.Fprintf(os.Stderr, "unknown structure %q\n", kind)
	return nil, fmt.Errorf("unknown structure %q", kind)
}
