// Package quad provides Gauss–Legendre quadrature rules used for the outer
// numerical integration of template Galerkin integrals (paper Eq. 7). Rules
// are computed once per order by Newton iteration on the Legendre polynomial
// and cached.
package quad

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Rule holds the nodes and weights of an n-point Gauss–Legendre rule on
// [-1, 1]. It integrates polynomials up to degree 2n-1 exactly.
type Rule struct {
	Nodes   []float64
	Weights []float64
}

// cache holds computed rules indexed by order; reads are a single atomic
// load (the rule fetch sits on the innermost integration path of the
// parallel matrix fill, where even an RWMutex read lock causes cache-line
// contention).
var cache [MaxOrder + 1]atomic.Pointer[Rule]

// MaxOrder is the largest supported rule order.
const MaxOrder = 64

// Gauss returns the cached n-point Gauss–Legendre rule. It panics if
// n < 1 or n > MaxOrder, which indicates a programming error.
func Gauss(n int) *Rule {
	if n < 1 || n > MaxOrder {
		panic(fmt.Sprintf("quad: unsupported order %d", n))
	}
	if r := cache[n].Load(); r != nil {
		return r
	}
	r := computeGauss(n)
	cache[n].Store(r) // idempotent: duplicate computation is harmless
	return r
}

// computeGauss builds the rule by Newton iteration from Chebyshev initial
// guesses. Nodes are symmetric about zero; we solve the positive half.
func computeGauss(n int) *Rule {
	r := &Rule{
		Nodes:   make([]float64, n),
		Weights: make([]float64, n),
	}
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess: Chebyshev points.
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; iter < 100; iter++ {
			p0, p1 := 1.0, 0.0
			// Legendre recurrence: (k+1) P_{k+1} = (2k+1) x P_k - k P_{k-1}.
			for k := 0; k < n; k++ {
				p0, p1 = ((2*float64(k)+1)*x*p0-float64(k)*p1)/float64(k+1), p0
			}
			// Derivative: P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1).
			pp = float64(n) * (x*p0 - p1) / (x*x - 1)
			dx := p0 / pp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * pp * pp)
		r.Nodes[i] = -x
		r.Nodes[n-1-i] = x
		r.Weights[i] = w
		r.Weights[n-1-i] = w
	}
	return r
}

// Integrate1D integrates f over [a, b] with an n-point rule.
func Integrate1D(f func(float64) float64, a, b float64, n int) float64 {
	r := Gauss(n)
	half := 0.5 * (b - a)
	mid := 0.5 * (a + b)
	var sum float64
	for i, x := range r.Nodes {
		sum += r.Weights[i] * f(mid+half*x)
	}
	return half * sum
}

// Integrate2D integrates f over [ax,bx] x [ay,by] with a tensor-product rule
// of nx x ny points.
func Integrate2D(f func(x, y float64) float64, ax, bx, ay, by float64, nx, ny int) float64 {
	rx := Gauss(nx)
	ry := Gauss(ny)
	hx, mx := 0.5*(bx-ax), 0.5*(ax+bx)
	hy, my := 0.5*(by-ay), 0.5*(ay+by)
	var sum float64
	for i, xi := range rx.Nodes {
		x := mx + hx*xi
		var inner float64
		for j, yj := range ry.Nodes {
			inner += ry.Weights[j] * f(x, my+hy*yj)
		}
		sum += rx.Weights[i] * inner
	}
	return hx * hy * sum
}

// Integrate4D integrates f over the product of two rectangles with a
// tensor-product rule of n points per dimension. It is used only as a
// brute-force reference in tests (the production path uses closed forms for
// the inner 2-D integral).
func Integrate4D(f func(x, y, xp, yp float64) float64,
	ax, bx, ay, by, axp, bxp, ayp, byp float64, n int) float64 {
	return Integrate2D(func(x, y float64) float64 {
		return Integrate2D(func(xp, yp float64) float64 {
			return f(x, y, xp, yp)
		}, axp, bxp, ayp, byp, n, n)
	}, ax, bx, ay, by, n, n)
}

// Mapped returns the rule's nodes mapped to [a, b] along with the matching
// weights (scaled by the interval half-length), appended to the dst slices.
func Mapped(n int, a, b float64, dstX, dstW []float64) ([]float64, []float64) {
	r := Gauss(n)
	half := 0.5 * (b - a)
	mid := 0.5 * (a + b)
	for i, x := range r.Nodes {
		dstX = append(dstX, mid+half*x)
		dstW = append(dstW, half*r.Weights[i])
	}
	return dstX, dstW
}

// FillMapped writes the n mapped nodes and weights for [a, b] into
// xs[:n] and ws[:n] without allocating. xs and ws must have length >= n.
func FillMapped(n int, a, b float64, xs, ws []float64) {
	r := Gauss(n)
	half := 0.5 * (b - a)
	mid := 0.5 * (a + b)
	for i, x := range r.Nodes {
		xs[i] = mid + half*x
		ws[i] = half * r.Weights[i]
	}
}
