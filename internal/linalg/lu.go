package linalg

import (
	"errors"
	"math"
	"runtime"
)

// ErrSingular is returned when LU factorization meets an (effectively) zero
// pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds a partial-pivoting LU factorization P*A = L*U packed in a single
// matrix (unit lower triangle implicit).
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// luBlock is the panel width of the blocked factorization: the trailing
// update then runs as a cache-friendly rank-luBlock GEMM instead of n
// bandwidth-bound rank-1 sweeps.
const luBlock = 48

// NewLU factorizes a copy of the square matrix A with partial pivoting,
// using a blocked right-looking algorithm with a parallel trailing update.
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU of non-square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	workers := runtime.GOMAXPROCS(0)

	for k := 0; k < n; k += luBlock {
		kb := luBlock
		if k+kb > n {
			kb = n - k
		}
		// Panel factorization (columns k..k+kb) with partial pivoting;
		// row swaps are applied across the full matrix.
		for j := k; j < k+kb; j++ {
			// Pivot search in column j, rows j..n.
			p := j
			pm := math.Abs(lu.At(j, j))
			for i := j + 1; i < n; i++ {
				if v := math.Abs(lu.At(i, j)); v > pm {
					p, pm = i, v
				}
			}
			if pm == 0 || math.IsNaN(pm) {
				return nil, ErrSingular
			}
			if p != j {
				rj, rp := lu.Row(j), lu.Row(p)
				for c := range rj {
					rj[c], rp[c] = rp[c], rj[c]
				}
				f.piv[j], f.piv[p] = f.piv[p], f.piv[j]
				f.sign = -f.sign
			}
			// Eliminate within the panel only.
			rj := lu.Row(j)
			inv := 1 / rj[j]
			for i := j + 1; i < n; i++ {
				ri := lu.Row(i)
				m := ri[j] * inv
				ri[j] = m
				if m == 0 {
					continue
				}
				for c := j + 1; c < k+kb; c++ {
					ri[c] -= m * rj[c]
				}
			}
		}
		if k+kb == n {
			break
		}
		// U12 = L11^{-1} A12: forward substitution on the panel rows.
		for j := k + 1; j < k+kb; j++ {
			rj := lu.Row(j)
			for p := k; p < j; p++ {
				m := rj[p]
				if m == 0 {
					continue
				}
				rp := lu.Row(p)
				for c := k + kb; c < n; c++ {
					rj[c] -= m * rp[c]
				}
			}
		}
		// Trailing update A22 -= L21 * U12 (parallel rank-kb GEMM).
		parallelRows(k+kb, n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ri := lu.Row(i)
				for p := k; p < k+kb; p++ {
					m := ri[p]
					if m == 0 {
						continue
					}
					rp := lu.Row(p)
					for c := k + kb; c < n; c++ {
						ri[c] -= m * rp[c]
					}
				}
			}
		})
	}
	return f, nil
}

// Solve solves A x = b into dst (dst and b may alias).
func (f *LU) Solve(dst, b []float64) {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply permutation: y = P b.
	y := make([]float64, n)
	for i, p := range f.piv {
		y[i] = b[p]
	}
	// Forward substitution (unit lower).
	for i := 0; i < n; i++ {
		ri := f.lu.Row(i)
		s := y[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	copy(dst, y)
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
