package serve

// Durability and restarts.
//
// When Options.DataDir is set, the server keeps an append-only journal
// (journal package) of every async extract job's state edges: accepted
// (with the wire payload and idempotency key), running, and a terminal
// or interrupted outcome. Appends are fsync'd, so once POST /extract
// returns 202 the job survives a SIGKILL or power loss. Open replays
// the journal: finished jobs come back queryable via GET /jobs/{id}
// with their persisted result or error, unfinished ones (accepted,
// running, or interrupted by an overrun drain) are re-enqueued and run
// again — at-least-once for the work, exactly-once for the terminal
// outcome, with client-supplied idempotency keys deduplicating retried
// submissions on both the live path and replay. Synchronous requests
// never touch the journal: their results die with the connection.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"parbem/internal/serve/journal"
)

// drainingRetryAfterSec is the Retry-After advice attached to draining
// rejections: long enough for a restart supervisor to swap the process,
// short enough that a waiting client notices the replacement quickly.
const drainingRetryAfterSec = 5

// drainGrace bounds how long Drain waits, after cancelling the base
// context, for runners to observe the cancellation and journal their
// interrupted records.
const drainGrace = 5 * time.Second

// openJournal opens and replays the durable job log under dir, then
// compacts it so the transition history of past lifetimes does not
// accumulate across restarts.
func (s *Server) openJournal(dir string) error {
	jr, entries, stats, err := journal.Open(dir)
	if err != nil {
		return err
	}
	jr.Logf = s.logf
	s.jrnl = jr
	if stats.Corrupt > 0 || stats.TornBytes > 0 {
		s.logf("serve: journal replay: %d records, %d corrupt skipped, %d torn tail bytes truncated",
			stats.Records, stats.Corrupt, stats.TornBytes)
	}
	if err := jr.Compact(entries); err != nil {
		s.logf("serve: compacting journal after replay: %v", err)
	}
	for _, e := range entries {
		s.replayEntry(e)
	}
	return nil
}

// replayEntry restores one journaled job: terminal entries become
// queryable history, non-terminal ones re-enqueue under their original
// job id.
func (s *Server) replayEntry(e journal.Entry) {
	if e.Kind != "extract" || e.JobID == "" {
		return
	}
	if n := numericID(e.JobID); n > s.seq {
		s.seq = n
	}
	if e.IdemKey != "" {
		s.idem[e.IdemKey] = e.JobID
	}
	if journal.Terminal(e.State) {
		s.restoreFinished(e)
		return
	}
	s.reenqueue(e)
}

// restoreFinished registers a replayed terminal job so GET /jobs/{id}
// keeps answering for it across restarts. Restored jobs touch no
// counters: they were accounted by the lifetime that ran them.
func (s *Server) restoreFinished(e journal.Entry) {
	j := &job{
		id: e.JobID, kind: e.Kind, class: classInteractive,
		journaled: true, idemKey: e.IdemKey,
		done: make(chan struct{}),
	}
	switch e.State {
	case journal.StateCompleted:
		var res ExtractResponse
		if err := json.Unmarshal(e.Result, &res); err != nil {
			j.state.Store(int32(jobFailed))
			j.err = &RequestError{Code: CodeInternal,
				Message: fmt.Sprintf("journaled result no longer decodes: %v", err)}
		} else {
			j.state.Store(int32(jobDone))
			j.result = &res
		}
	case journal.StateCancelled:
		j.state.Store(int32(jobCancelled))
		j.err = replayedError(e.Error, CodeCancelled, "job cancelled (replayed)")
	default: // failed
		j.state.Store(int32(jobFailed))
		j.err = replayedError(e.Error, CodeExtractionFailed, "job failed (replayed)")
	}
	close(j.done)
	s.jobs[j.id] = j
	s.hist = append(s.hist, j.id)
}

// replayedError decodes a journaled error payload, falling back to a
// generic error of the given code.
func replayedError(raw json.RawMessage, code, msg string) error {
	var re RequestError
	if len(raw) > 0 && json.Unmarshal(raw, &re) == nil && re.Code != "" {
		return &re
	}
	return &RequestError{Code: code, Message: msg}
}

// reenqueue puts a replayed non-terminal job back on the interactive
// queue under its original id. Runs only from Open, before the runner
// goroutines start, so direct channel sends cannot race dispatch.
func (s *Server) reenqueue(e journal.Entry) {
	j := &job{
		id: e.JobID, kind: "extract", class: classInteractive,
		journaled: true, idemKey: e.IdemKey, reqJSON: e.Request,
		done: make(chan struct{}),
	}
	fail := func(err *RequestError) {
		j.state.Store(int32(jobFailed))
		j.err = err
		close(j.done)
		s.jobs[j.id] = j
		s.hist = append(s.hist, j.id)
		s.c.accepted.Add(1)
		s.c.failed.Add(1)
		raw, _ := json.Marshal(err)
		s.journal(journal.Record{JobID: j.id, State: journal.StateFailed, Error: raw})
	}
	req, st, err := s.limits.DecodeExtract(bytes.NewReader(e.Request))
	if err != nil {
		// The persisted payload no longer admits (tightened limits, or a
		// record damaged beyond its CRC): terminal failure, not a panic
		// and not a silent drop.
		s.logf("serve: replayed job %s no longer decodes: %v", e.JobID, err)
		fail(&RequestError{Code: CodeExtractionFailed,
			Message: fmt.Sprintf("journaled request no longer decodes: %v", err)})
		return
	}
	q := s.queues[classInteractive]
	if s.c.queuedClass[classInteractive].Load() >= int64(cap(q)) {
		s.logf("serve: replayed job %s overflows the queue (cap %d)", e.JobID, cap(q))
		fail(&RequestError{Code: CodeQueueFull,
			Message: "replayed backlog exceeds the admission queue"})
		return
	}
	j.ctx, j.cancel = s.jobContext(s.baseCtx, req.TimeoutMs)
	j.run = func() (any, error) {
		s.c.extracts.Add(1)
		return s.runExtract(j, req, st)
	}
	j.enqueued = time.Now()
	s.jobs[j.id] = j
	s.c.accepted.Add(1)
	s.c.replayed.Add(1)
	s.c.queued.Add(1)
	s.c.queuedClass[classInteractive].Add(1)
	q <- j
}

// numericID parses the numeric suffix of a "j%06d" job id (0 when the
// id has another shape) so replay can advance the sequence past every
// restored job.
func numericID(id string) uint64 {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// journal appends one record, logging rather than failing on error: by
// the time a state edge is journaled mid-run, the transition already
// happened in memory and the log is best-effort behind it. (Admission
// is the exception — admit rejects the job when its accepted record
// cannot be made durable.)
func (s *Server) journal(rec journal.Record) {
	if s.jrnl == nil {
		return
	}
	if err := s.jrnl.Append(rec); err != nil {
		s.logf("serve: journal append (job %s -> %s): %v", rec.JobID, rec.State, err)
	}
}

// journalOutcome writes a finished job's terminal record. A job
// cancelled by an overrun drain (the base context fired) is journaled
// as interrupted — a non-terminal state — so the next lifetime re-runs
// it; async jobs have no client to go away, so any other cancellation
// cannot reach here.
func (s *Server) journalOutcome(j *job) {
	rec := journal.Record{JobID: j.id}
	switch jobState(j.state.Load()) {
	case jobDone:
		rec.State = journal.StateCompleted
		if res, ok := j.result.(*ExtractResponse); ok {
			rec.Result, _ = json.Marshal(res)
		}
	case jobCancelled:
		if s.baseCtx.Err() != nil {
			s.c.interrupted.Add(1)
			rec.State = journal.StateInterrupted
		} else {
			rec.State = journal.StateCancelled
			rec.Error, _ = json.Marshal(asRequestError(j.err))
		}
	default:
		rec.State = journal.StateFailed
		rec.Error, _ = json.Marshal(asRequestError(j.err))
	}
	s.journal(rec)
}

// compactJournal rewrites the journal as one folded record per
// journaled job still in memory. Called from Close with the runners
// stopped; a job cancelled by the drain is folded as interrupted so the
// next lifetime picks it up.
func (s *Server) compactJournal() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id, j := range s.jobs {
		if j.journaled {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	entries := make([]journal.Entry, 0, len(ids))
	for _, id := range ids {
		j := s.jobs[id]
		e := journal.Entry{JobID: j.id, Kind: j.kind, IdemKey: j.idemKey, Request: j.reqJSON}
		switch jobState(j.state.Load()) {
		case jobDone:
			e.State = journal.StateCompleted
			if res, ok := j.result.(*ExtractResponse); ok {
				e.Result, _ = json.Marshal(res)
			}
		case jobCancelled:
			if s.baseCtx.Err() != nil {
				e.State = journal.StateInterrupted
			} else {
				e.State = journal.StateCancelled
				e.Error, _ = json.Marshal(asRequestError(j.err))
			}
		case jobFailed:
			e.State = journal.StateFailed
			e.Error, _ = json.Marshal(asRequestError(j.err))
		default:
			// Queued or running jobs cannot exist here (runners have
			// exited), but fold defensively as accepted.
			e.State = journal.StateAccepted
		}
		entries = append(entries, e)
	}
	s.mu.Unlock()
	if err := s.jrnl.Compact(entries); err != nil {
		s.logf("serve: compacting journal on close: %v", err)
	}
}

// Draining reports whether Drain has started (exposed to /healthz).
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain puts the server into draining mode — admission rejects with a
// structured 503 draining error and /healthz flips to 503 — and waits
// up to timeout for the queued and running backlog to finish. Past the
// timeout it cancels every job context: running jobs stop at their next
// plan-stage or GMRES checkpoint and are journaled as interrupted, so a
// durable server re-runs them on the next start. Drain returns nil on a
// clean drain and an error when it had to interrupt; either way the
// server is quiescent afterwards and Close completes promptly.
func (s *Server) Drain(timeout time.Duration) error {
	s.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s.c.queued.Load() == 0 && s.c.running.Load() == 0 {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	n := s.c.queued.Load() + s.c.running.Load()
	if n == 0 {
		return nil
	}
	s.baseCancel()
	grace := time.Now().Add(drainGrace)
	for time.Now().Before(grace) {
		if s.c.queued.Load() == 0 && s.c.running.Load() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("serve: drain overran its %v timeout; interrupted %d jobs", timeout, n)
}

// queueRetryAfter advises a queue_full rejection's Retry-After from the
// queue depth, runner parallelism and smoothed job run time, clamped to
// [1s, 60s]. With no history yet, one second per queue slot per runner.
func (s *Server) queueRetryAfter(class int) float64 {
	per := float64(s.ewmaRunNs.Load()) / 1e9
	if per <= 0 {
		per = 1
	}
	depth := float64(s.c.queuedClass[class].Load())
	return math.Min(60, math.Max(1, depth/float64(s.runners)*per))
}
