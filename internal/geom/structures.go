package geom

import "fmt"

// Wire returns a box for a straight wire routed along axis dir, centered at
// center in the two perpendicular axes, with the given length, width
// (horizontal cross-section) and thickness (vertical cross-section).
// For dir == X or Y, width spans the other horizontal axis and thickness
// spans Z. For dir == Z (a via), width spans X and thickness spans Y.
func Wire(dir Axis, center Vec3, length, width, thickness float64) Box {
	var half Vec3
	switch dir {
	case X:
		half = Vec3{length / 2, width / 2, thickness / 2}
	case Y:
		half = Vec3{width / 2, length / 2, thickness / 2}
	default:
		half = Vec3{width / 2, thickness / 2, length / 2}
	}
	return Box{Min: center.Sub(half), Max: center.Add(half)}
}

// CrossingPairSpec parameterizes the elementary two-wire crossing problem of
// paper Figure 1: a source wire routed along Y above a target wire routed
// along X, separated vertically by H (surface to surface).
type CrossingPairSpec struct {
	Width     float64 // wire width (both wires)
	Thickness float64 // wire thickness (both wires)
	Length    float64 // wire length (both wires)
	H         float64 // vertical separation between facing surfaces
}

// DefaultCrossingPair mirrors the scale of paper Figure 1: micron-scale
// wires with sub-micron separation.
func DefaultCrossingPair() CrossingPairSpec {
	return CrossingPairSpec{
		Width:     1e-6,
		Thickness: 0.5e-6,
		Length:    10e-6,
		H:         0.5e-6,
	}
}

// Build constructs the two-conductor crossing structure. Conductor 0 is the
// bottom (target) wire along X; conductor 1 is the top (source) wire along Y.
func (sp CrossingPairSpec) Build() *Structure {
	bottom := Wire(X, Vec3{0, 0, 0}, sp.Length, sp.Width, sp.Thickness)
	topZ := sp.Thickness/2 + sp.H + sp.Thickness/2
	top := Wire(Y, Vec3{0, 0, topZ}, sp.Length, sp.Width, sp.Thickness)
	return &Structure{
		Name: "crossing-pair",
		Conductors: []*Conductor{
			{Name: "target", Boxes: []Box{bottom}},
			{Name: "source", Boxes: []Box{top}},
		},
	}
}

// BusSpec parameterizes the m x n bus crossbar of paper Figure 7: m parallel
// wires routed along X on a lower layer crossing n parallel wires routed
// along Y on an upper layer.
type BusSpec struct {
	M, N      int     // wire counts on the lower (X-routed) and upper (Y-routed) layers
	Width     float64 // wire width
	Thickness float64 // wire thickness
	Pitch     float64 // center-to-center spacing within a layer
	H         float64 // vertical separation between the layers' facing surfaces
	Margin    float64 // extra wire length beyond the crossed region on each side
}

// DefaultBus returns the 24 x 24 bus used for the scalability experiments
// (Table 3, Figure 8), at a typical interconnect scale.
func DefaultBus(m, n int) BusSpec {
	return BusSpec{
		M: m, N: n,
		Width:     1e-6,
		Thickness: 0.5e-6,
		Pitch:     2e-6,
		H:         1e-6,
		Margin:    2e-6,
	}
}

// Build constructs the bus structure. Conductors 0..M-1 are the lower
// X-routed wires (south to north); conductors M..M+N-1 are the upper
// Y-routed wires (west to east).
func (sp BusSpec) Build() *Structure {
	if sp.M < 1 || sp.N < 1 {
		panic(fmt.Sprintf("geom: invalid bus %dx%d", sp.M, sp.N))
	}
	spanX := float64(sp.N-1)*sp.Pitch + sp.Width + 2*sp.Margin
	spanY := float64(sp.M-1)*sp.Pitch + sp.Width + 2*sp.Margin
	lowerZ := 0.0
	upperZ := sp.Thickness + sp.H
	st := &Structure{Name: fmt.Sprintf("bus-%dx%d", sp.M, sp.N)}
	for i := 0; i < sp.M; i++ {
		y := (float64(i) - float64(sp.M-1)/2) * sp.Pitch
		c := &Conductor{
			Name:  fmt.Sprintf("mx%d", i),
			Boxes: []Box{Wire(X, Vec3{0, y, lowerZ}, spanX, sp.Width, sp.Thickness)},
		}
		st.Conductors = append(st.Conductors, c)
	}
	for j := 0; j < sp.N; j++ {
		x := (float64(j) - float64(sp.N-1)/2) * sp.Pitch
		c := &Conductor{
			Name:  fmt.Sprintf("my%d", j),
			Boxes: []Box{Wire(Y, Vec3{x, 0, upperZ}, spanY, sp.Width, sp.Thickness)},
		}
		st.Conductors = append(st.Conductors, c)
	}
	return st
}

// InterconnectSpec parameterizes the synthetic transistor-interconnect
// structure standing in for the paper's proprietary industry example
// (Figure 7, left): a row of transistor contact stubs on a bottom layer,
// local metal-1 routing above them, and two metal-2 straps crossing the
// whole cell, connected by vias.
type InterconnectSpec struct {
	Contacts  int     // number of transistor contact stubs
	Width     float64 // metal-1 wire width
	Thickness float64 // metal thickness (all layers)
	Pitch     float64 // contact pitch
	H1        float64 // contact-to-metal1 vertical gap
	H2        float64 // metal1-to-metal2 vertical gap
}

// DefaultInterconnect returns the configuration used for Table 2.
func DefaultInterconnect() InterconnectSpec {
	return InterconnectSpec{
		Contacts:  6,
		Width:     0.8e-6,
		Thickness: 0.4e-6,
		Pitch:     2.4e-6,
		H1:        0.4e-6,
		H2:        0.6e-6,
	}
}

// Build constructs the interconnect structure. Conductor 0 aggregates the
// even contacts plus a metal-2 strap with its via (a "signal net"); conductor
// 1 aggregates the odd contacts and the second strap ("ground net"); the
// remaining conductors are individual metal-1 fingers.
func (sp InterconnectSpec) Build() *Structure {
	t := sp.Thickness
	z0 := 0.0            // contact layer center
	z1 := t + sp.H1      // metal-1 layer center offset from contact center
	z2 := z1 + t + sp.H2 // metal-2 layer center offset

	span := float64(sp.Contacts-1) * sp.Pitch
	sig := &Conductor{Name: "signal"}
	gnd := &Conductor{Name: "ground"}
	st := &Structure{Name: "transistor-interconnect"}

	// Contact stubs along X at the contact layer, alternating nets.
	for i := 0; i < sp.Contacts; i++ {
		x := (float64(i) - float64(sp.Contacts-1)/2) * sp.Pitch
		stub := Wire(Y, Vec3{x, 0, z0}, 3*sp.Width, sp.Width, t)
		if i%2 == 0 {
			sig.Boxes = append(sig.Boxes, stub)
		} else {
			gnd.Boxes = append(gnd.Boxes, stub)
		}
	}

	// Metal-1 fingers routed along Y above every contact: independent nets.
	for i := 0; i < sp.Contacts; i++ {
		x := (float64(i) - float64(sp.Contacts-1)/2) * sp.Pitch
		f := &Conductor{
			Name:  fmt.Sprintf("m1f%d", i),
			Boxes: []Box{Wire(Y, Vec3{x, 0, z1}, span*0.8, sp.Width, t)},
		}
		st.Conductors = append(st.Conductors, f)
	}

	// Two metal-2 straps routed along X crossing all fingers, each with a
	// via pillar dropping toward a finger. The pillar is kept a small gap
	// clear of both metal layers: boxes of one conductor must not overlap
	// or abut (buried faces would make the surface formulation
	// mesh-sensitive), and electrically the pillar is already at the net
	// potential.
	strapLen := span + 4*sp.Width
	ys := sp.Pitch * 0.75
	viaGap := 0.1 * t
	viaLo := z1 + t/2 + viaGap
	viaHi := z2 - t/2 - viaGap
	sig.Boxes = append(sig.Boxes,
		Wire(X, Vec3{0, ys, z2}, strapLen, sp.Width, t),
		Wire(Z, Vec3{-span / 2, ys, (viaLo + viaHi) / 2}, viaHi-viaLo, 0.8*sp.Width, 0.8*sp.Width))
	gnd.Boxes = append(gnd.Boxes,
		Wire(X, Vec3{0, -ys, z2}, strapLen, sp.Width, t),
		Wire(Z, Vec3{span / 2, -ys, (viaLo + viaHi) / 2}, viaHi-viaLo, 0.8*sp.Width, 0.8*sp.Width))

	st.Conductors = append(st.Conductors, sig, gnd)
	return st
}
