// Package costmodel reproduces the reference parallel-efficiency curves of
// paper Figure 8. The paper quotes the rivals' efficiencies from their
// original publications ("the best available values... from their original
// papers") rather than re-running them; this package does the same with a
// transparent one-parameter overhead model, calibrated so that the curves
// pass through the published anchor points:
//
//	parallel pre-corrected FFT [1]:  42% at 8 nodes
//	parallel fast multipole   [7]:   65% at 8 nodes
//	this work (OpenMP):             ~91% at 4 nodes
//	this work (MPI):                ~89% at 10 nodes
//
// The model lumps serial fraction, communication and load imbalance into a
// single per-node overhead gamma:
//
//	T(D) = T(1) * ((1-gamma)/D + gamma)   =>   E(D) = 1 / (1 + gamma*(D-1))
//
// The measured curves for this repository's own backends come from the
// benchmark harness (cmd/benchfig8), not from this model; the model
// variants for "this work" exist only for plotting alongside the rivals.
package costmodel

// Model is a one-parameter parallel overhead model.
type Model struct {
	Name  string
	Gamma float64 // per-node relative overhead
}

// Efficiency returns the modeled parallel efficiency at d nodes (1.0 = d=1).
func (m Model) Efficiency(d int) float64 {
	if d < 1 {
		return 0
	}
	return 1 / (1 + m.Gamma*float64(d-1))
}

// Speedup returns d * Efficiency(d).
func (m Model) Speedup(d int) float64 {
	return float64(d) * m.Efficiency(d)
}

// Curve evaluates efficiency at 1..dmax.
func (m Model) Curve(dmax int) []float64 {
	out := make([]float64, dmax)
	for d := 1; d <= dmax; d++ {
		out[d-1] = m.Efficiency(d)
	}
	return out
}

// CalibrateGamma solves for gamma from one anchor (efficiency e at d nodes).
func CalibrateGamma(d int, e float64) float64 {
	if d <= 1 || e <= 0 || e >= 1 {
		return 0
	}
	return (1/e - 1) / float64(d-1)
}

// Published anchor calibrations for Figure 8.
var (
	// ParallelPFFT models reference [1] (42% at 8 nodes).
	ParallelPFFT = Model{Name: "parallel pre-corrected FFT [1]", Gamma: CalibrateGamma(8, 0.42)}
	// ParallelFMM models reference [7] (65% at 8 nodes).
	ParallelFMM = Model{Name: "parallel fast multipole [7]", Gamma: CalibrateGamma(8, 0.65)}
	// ThisWorkOpenMP models the paper's shared-memory result (91% at 4).
	ThisWorkOpenMP = Model{Name: "this work, OpenMP (paper)", Gamma: CalibrateGamma(4, 0.91)}
	// ThisWorkMPI models the paper's distributed result (89% at 10).
	ThisWorkMPI = Model{Name: "this work, MPI (paper)", Gamma: CalibrateGamma(10, 0.89)}
)
