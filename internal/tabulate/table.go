// Package tabulate implements the table-based integration accelerations of
// paper Sections 4.2.1 and 4.2.2: direct tabulation of the definite
// integral on a regular multi-parameter grid with multilinear
// interpolation, and tabulation of the indefinite integral (fewer
// parameters, evaluated by corner differencing).
//
// Tables are generic over dimension; the capacitance kernel instantiates
// them for the simplified 2-D expression of paper Eq. (13), which is also
// what Table 1 of the paper measures.
package tabulate

import (
	"fmt"
	"math"
)

// Dim describes one tabulated parameter: a closed range [Min, Max] sampled
// at N grid points (N >= 2).
type Dim struct {
	Min, Max float64
	N        int
}

// step returns the grid spacing.
func (d Dim) step() float64 { return (d.Max - d.Min) / float64(d.N-1) }

// Table is a regular-grid tabulation of a scalar function of k parameters
// with multilinear interpolation.
type Table struct {
	dims    []Dim
	strides []int
	data    []float64
}

// Build samples f on the full tensor grid defined by dims. The cost is
// prod(N_i) evaluations of f.
func Build(dims []Dim, f func(x []float64) float64) *Table {
	if len(dims) == 0 {
		panic("tabulate: no dimensions")
	}
	total := 1
	strides := make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		if dims[i].N < 2 {
			panic(fmt.Sprintf("tabulate: dim %d needs N >= 2", i))
		}
		if !(dims[i].Max > dims[i].Min) {
			panic(fmt.Sprintf("tabulate: dim %d has empty range", i))
		}
		strides[i] = total
		total *= dims[i].N
	}
	t := &Table{dims: dims, strides: strides, data: make([]float64, total)}
	x := make([]float64, len(dims))
	idx := make([]int, len(dims))
	for flat := 0; flat < total; flat++ {
		rem := flat
		for i := range dims {
			idx[i] = rem / strides[i]
			rem %= strides[i]
			x[i] = dims[i].Min + float64(idx[i])*dims[i].step()
		}
		t.data[flat] = f(x)
	}
	return t
}

// Bytes returns the memory footprint of the table payload.
func (t *Table) Bytes() int { return 8 * len(t.data) }

// NumDims returns the table's parameter count.
func (t *Table) NumDims() int { return len(t.dims) }

// Eval interpolates the table multilinearly at x. Coordinates are clamped
// to the tabulated ranges (callers are responsible for staying within the
// approximation-distance-limited domain, as the paper prescribes).
func (t *Table) Eval(x ...float64) float64 {
	if len(x) != len(t.dims) {
		panic("tabulate: Eval arity mismatch")
	}
	// Locate the cell and fractional offsets.
	var base int
	// frac and stride per dimension for the 2^k corner walk.
	fracs := make([]float64, len(t.dims))
	strides := make([]int, len(t.dims))
	for i, d := range t.dims {
		u := (x[i] - d.Min) / d.step()
		if u < 0 {
			u = 0
		}
		if u > float64(d.N-1) {
			u = float64(d.N - 1)
		}
		i0 := int(u)
		if i0 > d.N-2 {
			i0 = d.N - 2
		}
		fracs[i] = u - float64(i0)
		base += i0 * t.strides[i]
		strides[i] = t.strides[i]
	}
	return t.interp(base, fracs, strides)
}

// Eval2 is an allocation-free fast path for 2-parameter tables.
func (t *Table) Eval2(x0, x1 float64) float64 {
	d0, d1 := t.dims[0], t.dims[1]
	u0 := clampU((x0-d0.Min)/d0.step(), d0.N)
	u1 := clampU((x1-d1.Min)/d1.step(), d1.N)
	i0, f0 := splitU(u0, d0.N)
	i1, f1 := splitU(u1, d1.N)
	s0, s1 := t.strides[0], t.strides[1]
	base := i0*s0 + i1*s1
	v00 := t.data[base]
	v01 := t.data[base+s1]
	v10 := t.data[base+s0]
	v11 := t.data[base+s0+s1]
	return v00*(1-f0)*(1-f1) + v01*(1-f0)*f1 + v10*f0*(1-f1) + v11*f0*f1
}

// Eval4 is an allocation-free fast path for 4-parameter tables, using
// nested linear interpolation (15 lerps instead of a 16-corner weighted
// sum).
func (t *Table) Eval4(x0, x1, x2, x3 float64) float64 {
	d0, d1, d2, d3 := t.dims[0], t.dims[1], t.dims[2], t.dims[3]
	i0, f0 := splitU(clampU((x0-d0.Min)/d0.step(), d0.N), d0.N)
	i1, f1 := splitU(clampU((x1-d1.Min)/d1.step(), d1.N), d1.N)
	i2, f2 := splitU(clampU((x2-d2.Min)/d2.step(), d2.N), d2.N)
	i3, f3 := splitU(clampU((x3-d3.Min)/d3.step(), d3.N), d3.N)
	s0, s1, s2 := t.strides[0], t.strides[1], t.strides[2]
	// Innermost dimension is contiguous (stride 1).
	base := i0*s0 + i1*s1 + i2*s2 + i3
	lerp3 := func(off int) float64 {
		lo := t.data[off]
		return lo + f3*(t.data[off+1]-lo)
	}
	lerp23 := func(off int) float64 {
		lo := lerp3(off)
		return lo + f2*(lerp3(off+s2)-lo)
	}
	lerp123 := func(off int) float64 {
		lo := lerp23(off)
		return lo + f1*(lerp23(off+s1)-lo)
	}
	lo := lerp123(base)
	return lo + f0*(lerp123(base+s0)-lo)
}

func clampU(u float64, n int) float64 {
	if u < 0 {
		return 0
	}
	if u > float64(n-1) {
		return float64(n - 1)
	}
	return u
}

func splitU(u float64, n int) (int, float64) {
	i := int(u)
	if i > n-2 {
		i = n - 2
	}
	return i, u - float64(i)
}

// interp walks the 2^k corners of the containing cell.
func (t *Table) interp(base int, fracs []float64, strides []int) float64 {
	k := len(fracs)
	corners := 1 << k
	var sum float64
	for c := 0; c < corners; c++ {
		off := 0
		w := 1.0
		for i := 0; i < k; i++ {
			if c&(1<<i) != 0 {
				off += strides[i]
				w *= fracs[i]
			} else {
				w *= 1 - fracs[i]
			}
		}
		if w != 0 {
			sum += w * t.data[base+off]
		}
	}
	return sum
}

// MaxInterpError estimates the interpolation error by comparing the table
// against f at the centers of nProbe random-ish cells (low-discrepancy
// lattice), returning the max relative error observed. It is used by tests
// and by the error-control documentation in EXPERIMENTS.md.
func (t *Table) MaxInterpError(f func(x []float64) float64, nProbe int) float64 {
	k := len(t.dims)
	x := make([]float64, k)
	// Weyl sequence with rationally independent generators (square roots
	// of square-free integers) for genuine k-dimensional coverage.
	alphas := [...]float64{math.Sqrt2, 1.7320508075688772, 2.23606797749979,
		2.6457513110645907, 3.3166247903554, 3.605551275463989}
	var maxRel float64
	for p := 0; p < nProbe; p++ {
		for i, d := range t.dims {
			frac := math.Mod(alphas[i%len(alphas)]*float64(p+1), 1)
			x[i] = d.Min + frac*(d.Max-d.Min)
		}
		want := f(x)
		got := t.Eval(x...)
		den := math.Abs(want)
		if den < 1e-12 {
			den = 1e-12
		}
		if rel := math.Abs(got-want) / den; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
