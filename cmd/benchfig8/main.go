// Benchfig8 regenerates the data of paper Figure 8: parallel efficiency
// versus processor count for (a) this work's shared-memory backend, (b)
// this work's distributed-memory (simulated MPI) backend — both measured
// on the local machine on the bus structure — and (c, d) the parallel
// fast-multipole and parallel precorrected-FFT rivals, both re-measured
// with the from-scratch baselines on the 2x2 bus (the example their
// original papers report) and reproduced from the published anchor points
// via the calibrated cost model.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"parbem"
	"parbem/internal/costmodel"
	"parbem/internal/fmm"
	"parbem/internal/pcbem"
	"parbem/internal/pfft"
	"parbem/internal/solver"
)

func main() {
	busM := flag.Int("bus", 24, "bus size for this work's curves (m = n)")
	rivalEdge := flag.Float64("rivaledge", 0.35e-6, "panel edge for the rival baselines (m)")
	maxD := flag.Int("maxd", 10, "largest node count")
	reps := flag.Int("reps", 3, "repetitions (minimum time)")
	flag.Parse()

	ds := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if *maxD < 10 {
		ds = ds[:*maxD]
	}

	fmt.Printf("Figure 8: parallel efficiency (%%) vs number of processors\n")
	fmt.Printf("this work measured on the %dx%d bus; rivals measured on the 2x2 bus (as in their papers)\n\n", *busM, *busM)

	st := parbem.NewBus(*busM, *busM).Build()
	omp := measureThisWork(st, parbem.SharedMem, ds, *reps)
	mpi := measureThisWork(st, parbem.Distributed, ds, *reps)
	fmmEff := measureRivalFMM(ds, *rivalEdge, *reps)
	pfftEff := measureRivalPFFT(ds, *rivalEdge, *reps)

	fmt.Printf("%3s %14s %14s %14s %14s %12s %12s\n",
		"D", "OpenMP(meas)", "MPI(meas)", "FMM[7](meas)", "pFFT[1](meas)", "FMM[7]pub", "pFFT[1]pub")
	for i, d := range ds {
		fmt.Printf("%3d %13.0f%% %13.0f%% %13.0f%% %13.0f%% %11.0f%% %11.0f%%\n",
			d, 100*omp[i], 100*mpi[i], 100*fmmEff[i], 100*pfftEff[i],
			100*costmodel.ParallelFMM.Efficiency(d),
			100*costmodel.ParallelPFFT.Efficiency(d))
	}
	fmt.Println("\npaper anchors: this work ~91% (OpenMP, 4) and ~89% (MPI, 10); FMM 65% @ 8; pFFT 42% @ 8")
}

// measureThisWork times full extractions at each D and returns efficiency
// relative to D=1.
func measureThisWork(st *parbem.Structure, backend solver.Backend, ds []int, reps int) []float64 {
	times := make([]time.Duration, len(ds))
	for i, d := range ds {
		b := backend
		if d == 1 {
			b = parbem.Serial
		}
		times[i] = bestOf(reps, func() time.Duration {
			res, err := parbem.Extract(st, parbem.Options{Backend: b, Workers: d})
			if err != nil {
				log.Fatal(err)
			}
			return res.Timing.Total
		})
	}
	return efficiencies(times, ds)
}

// measureRivalFMM times the GMRES solve of the multipole baseline with D
// matvec workers on the 2x2 bus.
func measureRivalFMM(ds []int, edge float64, reps int) []float64 {
	st := parbem.NewBus(2, 2).Build()
	prob, err := pcbem.NewProblem(st, edge)
	if err != nil {
		log.Fatal(err)
	}
	times := make([]time.Duration, len(ds))
	for i, d := range ds {
		op := fmm.NewOperator(prob.Panels, fmm.Options{Workers: d})
		times[i] = bestOf(reps, func() time.Duration {
			t0 := time.Now()
			if _, err := prob.SolveIterative(op, 1e-4); err != nil {
				log.Fatal(err)
			}
			return time.Since(t0)
		})
	}
	return efficiencies(times, ds)
}

// measureRivalPFFT does the same for the precorrected-FFT baseline.
func measureRivalPFFT(ds []int, edge float64, reps int) []float64 {
	st := parbem.NewBus(2, 2).Build()
	prob, err := pcbem.NewProblem(st, edge)
	if err != nil {
		log.Fatal(err)
	}
	times := make([]time.Duration, len(ds))
	for i, d := range ds {
		op := pfft.NewOperator(prob.Panels, pfft.Options{Workers: d})
		times[i] = bestOf(reps, func() time.Duration {
			t0 := time.Now()
			if _, err := prob.SolveIterative(op, 1e-4); err != nil {
				log.Fatal(err)
			}
			return time.Since(t0)
		})
	}
	return efficiencies(times, ds)
}

func bestOf(reps int, f func() time.Duration) time.Duration {
	min := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		if t := f(); t < min {
			min = t
		}
	}
	return min
}

func efficiencies(times []time.Duration, ds []int) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(times[0]) / (float64(times[i]) * float64(d))
	}
	return out
}
