// Capxd is the long-running extraction service daemon: an HTTP/JSON
// front end over one shared batch engine, so the plan, basis and
// pair-integral caches amortize across requests instead of dying with
// each capx invocation (see internal/serve for the API).
//
//	capxd -addr :8437 -workers 8 -budget 2 -queue 128
//
// Endpoints: POST /extract, POST /sweep (NDJSON stream), GET /jobs/{id},
// GET /healthz, GET /stats (JSON), GET /metrics (Prometheus text
// exposition: every /stats counter plus queue-wait and per-stage
// latency histograms). The capx CLI rides the same API:
//
//	capx -remote http://localhost:8437 -structure bus -backend fastcap
//	capx -remote http://localhost:8437 -structure crossing -sweep 8
//
// Admission control: extracts and sweeps queue separately (-queue and
// -sweep-queue) and runners always take a waiting extract before the
// next sweep, so bulk traffic cannot starve interactive requests.
// Requests beyond the class queue depth are rejected immediately with
// HTTP 429 and a structured queue_full error; -budget caps how many
// pool workers any single job occupies, so -runners concurrent jobs
// share the persistent pool instead of oversubscribing. With
// -tenant-rate set, each tenant (X-Tenant request header) is admitted
// through its own token bucket and rejected with a structured 429 when
// over its rate. Requests may carry timeout_ms; expiry returns a
// structured deadline_exceeded error (HTTP 504) with the stage,
// elapsed time and iterations completed when the deadline fired.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parbem/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8437", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		budget      = flag.Int("budget", 0, "max pool workers per job (0 = whole pool)")
		runners     = flag.Int("runners", 0, "concurrent jobs (0 = workers/budget, min 1)")
		queue       = flag.Int("queue", 64, "interactive (extract) admission queue depth")
		sweepQueue  = flag.Int("sweep-queue", 0, "bulk (sweep) admission queue depth (0 = same as -queue)")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admitted requests/sec via X-Tenant header (0 = unlimited)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant burst capacity (0 = ceil(rate))")
		cache       = flag.Int("cache", 0, "state/plan LRU entries (0 = default 64)")
		pairCache   = flag.Int("paircache", 0, "pair-integral cache entries (0 = default)")
		maxBody     = flag.Int64("maxbody", 0, "request body cap in bytes (0 = default 8 MiB)")
		maxPanels   = flag.Int("maxpanels", 0, "per-request estimated panel cap (0 = default 200000)")
		history     = flag.Int("jobhistory", 0, "finished jobs kept for GET /jobs/{id} (0 = default 256)")
	)
	flag.Parse()

	s := serve.New(serve.Options{
		Workers:          *workers,
		WorkerBudget:     *budget,
		Runners:          *runners,
		QueueDepth:       *queue,
		SweepQueueDepth:  *sweepQueue,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		CacheEntries:     *cache,
		PairCacheEntries: *pairCache,
		JobHistory:       *history,
		Limits: serve.Limits{
			MaxBodyBytes: *maxBody,
			MaxPanels:    *maxPanels,
		},
	})

	// Header/idle timeouts close the slow-client hole that would bypass
	// the bounded-queue admission control (no WriteTimeout: sweep
	// responses are long-lived NDJSON streams).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("capxd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("capxd: shutdown: %v", err)
		}
	}()

	log.Printf("capxd: listening on %s (pool %d workers, budget %d/job, queue %d)",
		*addr, s.Engine().Workers(), *budget, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	s.Close()
}
