package main

import (
	"runtime"
	"testing"
)

// TestScalingSmoke drives the full rig on a tiny geometry at 1 and 2
// workers: every path must produce a monotone worker list with positive
// times and a sane speedup column. On single-CPU runners a 2-worker
// point would measure goroutine timesharing, not scaling, so the test
// skips there (CI logs the skip line).
func TestScalingSmoke(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("scaling smoke needs >= 2 CPUs; single-CPU runner measures timesharing, not scaling")
	}
	rep, err := runScaling(2, 1e-6, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fmm_near_fill", "fmm_apply", "pfft_apply", "fft_convolve", "pipeline_solve"}
	if len(rep.Paths) != len(want) {
		t.Fatalf("got %d paths, want %d", len(rep.Paths), len(want))
	}
	for i, p := range rep.Paths {
		if p.Name != want[i] {
			t.Errorf("path %d = %q, want %q", i, p.Name, want[i])
		}
		if len(p.Points) != 2 {
			t.Fatalf("%s: %d points, want 2", p.Name, len(p.Points))
		}
		for _, pt := range p.Points {
			if pt.NS <= 0 {
				t.Errorf("%s@%d: non-positive time %d", p.Name, pt.Workers, pt.NS)
			}
			if pt.Speedup <= 0 {
				t.Errorf("%s@%d: non-positive speedup %g", p.Name, pt.Workers, pt.Speedup)
			}
		}
		if p.Points[0].Workers != 1 || p.Points[1].Workers != 2 {
			t.Errorf("%s: worker counts %d/%d, want 1/2", p.Name, p.Points[0].Workers, p.Points[1].Workers)
		}
	}
}

// TestWorkerCounts pins the 1/2/4/.../max ladder.
func TestWorkerCounts(t *testing.T) {
	for _, tc := range []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
	} {
		got := workerCounts(tc.max)
		if len(got) != len(tc.want) {
			t.Errorf("workerCounts(%d) = %v, want %v", tc.max, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("workerCounts(%d) = %v, want %v", tc.max, got, tc.want)
				break
			}
		}
	}
}
