package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// lcg is a tiny deterministic generator for reproducible test data.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

// TestTransform32MatchesFloat64 checks the complex64 1-D transform
// against the complex128 one on random data: relative error must stay at
// fp32 rounding level (the fp64-twiddle table keeps it there even at the
// largest length pfft uses).
func TestTransform32MatchesFloat64(t *testing.T) {
	rng := lcg(1)
	for _, n := range []int{1, 2, 8, 64, 256} {
		x64 := make([]complex128, n)
		x32 := make([]complex64, n)
		orig := make([]complex64, n)
		for i := range x64 {
			re, im := rng.next()-0.5, rng.next()-0.5
			x64[i] = complex(re, im)
			x32[i] = complex(float32(re), float32(im))
			orig[i] = x32[i]
		}
		Forward(x64)
		Forward32(x32)
		var num, den float64
		for i := range x64 {
			num += cmplx.Abs(complex128(x32[i]) - x64[i])
			den += cmplx.Abs(x64[i])
		}
		if rel := num / den; rel > 2e-6 {
			t.Errorf("n=%d: forward fp32 relative error %.3g", n, rel)
		}
		// Round trip through the inverse must return the input.
		Inverse32(x32)
		for i := range x32 {
			if d := cmplx.Abs(complex128(x32[i] - orig[i])); d > 1e-5 {
				t.Fatalf("n=%d: round-trip error %.3g at %d", n, d, i)
			}
		}
	}
}

// TestGrid3F32RoundTrip checks Forward3 followed by Inverse3 restores the
// grid to fp32 accuracy, on the asymmetric dimensions pfft produces.
func TestGrid3F32RoundTrip(t *testing.T) {
	g := NewGrid3F32(8, 4, 16)
	ref := make([]complex64, len(g.Data))
	rng := lcg(7)
	for i := range g.Data {
		g.Data[i] = complex(float32(rng.next()-0.5), float32(rng.next()-0.5))
		ref[i] = g.Data[i]
	}
	g.Forward3()
	g.Inverse3()
	var worst float64
	for i := range g.Data {
		if d := cmplx.Abs(complex128(g.Data[i] - ref[i])); d > worst {
			worst = d
		}
	}
	if worst > 1e-5 {
		t.Errorf("round-trip max abs error %.3g", worst)
	}
}

// TestGrid3F32MatchesGrid3 runs the same 3-D convolution (forward, point-
// wise multiply, inverse) through both precisions and compares.
func TestGrid3F32MatchesGrid3(t *testing.T) {
	const nx, ny, nz = 8, 8, 8
	g64, h64 := NewGrid3(nx, ny, nz), NewGrid3(nx, ny, nz)
	g32, h32 := NewGrid3F32(nx, ny, nz), NewGrid3F32(nx, ny, nz)
	rng := lcg(42)
	for i := range g64.Data {
		a := complex(rng.next()-0.5, rng.next()-0.5)
		b := complex(rng.next()-0.5, rng.next()-0.5)
		g64.Data[i], h64.Data[i] = a, b
		g32.Data[i], h32.Data[i] = complex64(a), complex64(b)
	}
	g64.Forward3()
	h64.Forward3()
	g64.MulPointwise(h64)
	g64.Inverse3()
	g32.Forward3()
	h32.Forward3()
	g32.MulPointwise(h32)
	g32.Inverse3()
	var num, den float64
	for i := range g64.Data {
		num += cmplx.Abs(complex128(g32.Data[i]) - g64.Data[i])
		den += cmplx.Abs(g64.Data[i])
	}
	if rel := num / den; rel > 5e-6 || math.IsNaN(rel) {
		t.Errorf("3-D convolution fp32 relative error %.3g", rel)
	}
}
