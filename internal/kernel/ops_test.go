package kernel

import (
	"math"
	"math/rand"
	"testing"

	"parbem/internal/geom"
	"parbem/internal/quad"
)

// refRectPotential integrates 1/|r-r'| over the source rectangle by brute
// 2-D quadrature (valid when p is well off the plane).
func refRectPotential(u1, u2, v1, v2, pu, pv, pz float64, n int) float64 {
	return quad.Integrate2D(func(u, v float64) float64 {
		du, dv := pu-u, pv-v
		return 1 / math.Sqrt(du*du+dv*dv+pz*pz)
	}, u1, u2, v1, v2, n, n)
}

func TestRectPotentialAgainstQuadrature(t *testing.T) {
	cases := []struct {
		u1, u2, v1, v2, pu, pv, pz float64
	}{
		{0, 1, 0, 1, 0.5, 0.5, 1.0},
		{0, 1, 0, 2, 3.0, -1.0, 0.5},
		{-1, 1, -1, 1, 0.0, 0.0, 2.0},
		{0, 0.1, 0, 0.1, 0.5, 0.5, 0.05},
		{-2, -1, 3, 4, 0, 0, 1.5},
	}
	for _, c := range cases {
		got := RectPotential(StdOps, c.u1, c.u2, c.v1, c.v2, c.pu, c.pv, c.pz)
		want := refRectPotential(c.u1, c.u2, c.v1, c.v2, c.pu, c.pv, c.pz, 32)
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-9 {
			t.Errorf("RectPotential(%+v) = %g, quadrature = %g (rel %g)", c, got, want, rel)
		}
	}
}

func TestRectPotentialInPlane(t *testing.T) {
	// Evaluation point in the plane of the rectangle but outside it:
	// integrable singularity-free case, closed form must stay finite.
	got := RectPotential(StdOps, 0, 1, 0, 1, 2.0, 0.5, 0)
	want := refRectPotential(0, 1, 0, 1, 2.0, 0.5, 0, 48)
	if rel := math.Abs(got-want) / want; rel > 1e-7 {
		t.Errorf("in-plane RectPotential = %g, want %g (rel %g)", got, want, rel)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("in-plane RectPotential not finite: %g", got)
	}
}

func TestRectPotentialCenterOnPanel(t *testing.T) {
	// Point exactly at the center of the rectangle (z=0): the integral is
	// improper but convergent; for a unit square its value is
	// 4*ln(1+sqrt(2)) (classic result).
	got := RectPotential(StdOps, -0.5, 0.5, -0.5, 0.5, 0, 0, 0)
	want := 4 * math.Log(1+math.Sqrt2)
	if rel := math.Abs(got-want) / want; rel > 1e-12 {
		t.Errorf("self collocation = %.15g, want %.15g", got, want)
	}
}

func TestGalerkinParallelAgainstQuadrature(t *testing.T) {
	cases := []struct {
		tx1, tx2, ty1, ty2, sx1, sx2, sy1, sy2, Z float64
	}{
		{0, 1, 0, 1, 0, 1, 0, 1, 2.0},    // stacked squares
		{0, 1, 0, 1, 2, 3, 0, 1, 1.0},    // offset
		{0, 2, 0, 1, -1, 0.5, 2, 4, 0.7}, // general overlap in x
		{0, 1, 0, 1, 5, 6, 5, 6, 0.3},    // far coplanar-ish
	}
	for _, c := range cases {
		got := GalerkinParallel(StdOps, c.tx1, c.tx2, c.ty1, c.ty2, c.sx1, c.sx2, c.sy1, c.sy2, c.Z)
		want := quad.Integrate4D(func(x, y, xp, yp float64) float64 {
			dx, dy := x-xp, y-yp
			return 1 / math.Sqrt(dx*dx+dy*dy+c.Z*c.Z)
		}, c.tx1, c.tx2, c.ty1, c.ty2, c.sx1, c.sx2, c.sy1, c.sy2, 16)
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-8 {
			t.Errorf("GalerkinParallel(%+v) = %g, quadrature = %g (rel %g)", c, got, want, rel)
		}
	}
}

func TestGalerkinParallelSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		tx1, ty1 := rng.Float64()*4-2, rng.Float64()*4-2
		sx1, sy1 := rng.Float64()*4-2, rng.Float64()*4-2
		tw, th := rng.Float64()+0.1, rng.Float64()+0.1
		sw, sh := rng.Float64()+0.1, rng.Float64()+0.1
		Z := rng.Float64()*2 + 0.2
		a := GalerkinParallel(StdOps, tx1, tx1+tw, ty1, ty1+th, sx1, sx1+sw, sy1, sy1+sh, Z)
		b := GalerkinParallel(StdOps, sx1, sx1+sw, sy1, sy1+sh, tx1, tx1+tw, ty1, ty1+th, -Z)
		if rel := math.Abs(a-b) / math.Max(math.Abs(a), 1e-300); rel > 1e-9 {
			t.Fatalf("Galerkin not symmetric: %g vs %g (rel %g)", a, b, rel)
		}
		if a <= 0 {
			t.Fatalf("Galerkin integral of positive kernel non-positive: %g", a)
		}
	}
}

// duffySelf computes the Galerkin self-integral of the unit square by the
// standard separation-of-differences reduction: for the translation-
// invariant kernel, the 4-D self integral over [0,a]x[0,b] reduces to
//
//	int_{-a}^{a} int_{-b}^{b} (a-|X|)(b-|Y|)/sqrt(X^2+Y^2) dX dY
//
// which has an integrable singularity handled in polar coordinates.
func duffySelf(a, b float64, n int) float64 {
	// Exploit symmetry: 4 * int_0^a int_0^b (a-X)(b-Y)/r dX dY.
	// Substitute X = t*cos, Y = t*sin in two triangles.
	f := func(X, Y float64) float64 {
		return (a - X) * (b - Y) / math.Sqrt(X*X+Y*Y)
	}
	// Triangle 1: 0<=X<=a, 0<=Y<=X*b/a ; use X=u, Y=u*v*b/a, Jacobian u*b/a.
	t1 := quad.Integrate2D(func(u, v float64) float64 {
		return f(u, u*v*b/a) * u * b / a
	}, 0, a, 0, 1, n, n)
	// Triangle 2: 0<=Y<=b, 0<=X<=Y*a/b.
	t2 := quad.Integrate2D(func(v, u float64) float64 {
		return f(v*u*a/b, v) * v * a / b
	}, 0, b, 0, 1, n, n)
	return 4 * (t1 + t2)
}

func TestGalerkinSelfTerm(t *testing.T) {
	for _, dims := range [][2]float64{{1, 1}, {2, 1}, {0.5, 3}} {
		a, b := dims[0], dims[1]
		r := geom.Rect{Normal: geom.Z, U: geom.Interval{Lo: 0, Hi: a}, V: geom.Interval{Lo: 0, Hi: b}}
		got := SelfGalerkin(StdOps, r)
		want := duffySelf(a, b, 48)
		if rel := math.Abs(got-want) / want; rel > 1e-8 {
			t.Errorf("self term %gx%g = %.12g, want %.12g (rel %g)", a, b, got, want, rel)
		}
	}
}

func TestGalerkinSelfTermUnitSquareKnownValue(t *testing.T) {
	// Exact value for the unit-square self integral:
	// 4*(ln(1+sqrt2) + (1-sqrt2)/3) = 2.9732095023...
	r := geom.Rect{Normal: geom.Z, U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 1}}
	got := SelfGalerkin(StdOps, r)
	want := 4 * (math.Log(1+math.Sqrt2) + (1-math.Sqrt2)/3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("unit square self = %.15f want %.15f", got, want)
	}
}

func TestGalerkinMixedAgainstQuadrature(t *testing.T) {
	// Target [0,1]x[0,1] at Z-plane 0, source line x' in [0.2,1.4] at
	// y'=0.3 in plane Z=0.8.
	Z := 0.8
	got := GalerkinMixed(StdOps, 0, 1, 0, 1, 0.2, 1.4, 0.3, Z)
	want := quad.Integrate2D(func(x, y float64) float64 {
		return quad.Integrate1D(func(xp float64) float64 {
			dx, dy := x-xp, y-0.3
			return 1 / math.Sqrt(dx*dx+dy*dy+Z*Z)
		}, 0.2, 1.4, 24)
	}, 0, 1, 0, 1, 24, 24)
	if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-8 {
		t.Errorf("GalerkinMixed = %g, quadrature = %g (rel %g)", got, want, rel)
	}
}

func TestRectGalerkinPerpendicular(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableApprox = true
	// Target in z=0 plane, source in x=2 plane (perpendicular).
	tgt := geom.Rect{Normal: geom.Z, Offset: 0,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0, Hi: 1}}
	src := geom.Rect{Normal: geom.X, Offset: 2,
		U: geom.Interval{Lo: 0, Hi: 1}, V: geom.Interval{Lo: 0.5, Hi: 1.5}}
	got := RectGalerkin(cfg, tgt, src)
	// Brute force: integrate over target (x,y) and source (y', z').
	want := quad.Integrate4D(func(x, y, yp, zp float64) float64 {
		dx := x - 2.0
		dy := y - yp
		dz := 0.0 - zp
		return 1 / math.Sqrt(dx*dx+dy*dy+dz*dz)
	}, 0, 1, 0, 1, 0, 1, 0.5, 1.5, 16)
	if rel := math.Abs(got-want) / want; rel > 1e-4 {
		t.Errorf("perpendicular Galerkin = %g, want %g (rel %g)", got, want, rel)
	}
}

func TestApproximationDistanceAccuracy(t *testing.T) {
	// Far pairs must agree with the exact expression to well under 1%
	// (the paper's stated tolerance for dimension reduction).
	cfg := DefaultConfig()
	exact := *cfg
	exact.DisableApprox = true
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		t1 := geom.Rect{Normal: geom.Z, Offset: 0,
			U: geom.Interval{Lo: 0, Hi: 0.5 + rng.Float64()},
			V: geom.Interval{Lo: 0, Hi: 0.5 + rng.Float64()}}
		shift := 10 + rng.Float64()*40
		t2 := geom.Rect{Normal: geom.Z, Offset: rng.Float64() * 3,
			U: geom.Interval{Lo: shift, Hi: shift + 0.5 + rng.Float64()},
			V: geom.Interval{Lo: shift, Hi: shift + 0.5 + rng.Float64()}}
		a := RectGalerkin(cfg, t1, t2)
		b := RectGalerkin(&exact, t1, t2)
		if rel := math.Abs(a-b) / b; rel > 1e-2 {
			t.Fatalf("approximation error %g too large for separation %g", rel, t1.Dist(t2))
		}
	}
}

func TestScaleAndPointKernel(t *testing.T) {
	if got := Scale(FourPi, 1); math.Abs(got-1) > 1e-15 {
		t.Errorf("Scale(4pi,1) = %g, want 1", got)
	}
	a := geom.Vec3{X: 1}
	b := geom.Vec3{X: 4}
	if got := PointKernel(a, b); math.Abs(got-1.0/3) > 1e-15 {
		t.Errorf("PointKernel = %g, want 1/3", got)
	}
}
