// Capxd is the long-running extraction service daemon: an HTTP/JSON
// front end over one shared batch engine, so the plan, basis and
// pair-integral caches amortize across requests instead of dying with
// each capx invocation (see internal/serve for the API).
//
//	capxd -addr :8437 -workers 8 -budget 2 -queue 128 -data-dir /var/lib/capxd
//
// Endpoints: POST /extract, POST /sweep (NDJSON stream), GET /jobs/{id},
// GET /healthz, GET /stats (JSON), GET /metrics (Prometheus text
// exposition: every /stats counter plus queue-wait and per-stage
// latency histograms). The capx CLI rides the same API:
//
//	capx -remote http://localhost:8437 -structure bus -backend fastcap
//	capx -remote http://localhost:8437 -structure crossing -sweep 8
//
// Admission control: extracts and sweeps queue separately (-queue and
// -sweep-queue) and runners always take a waiting extract before the
// next sweep, so bulk traffic cannot starve interactive requests.
// Requests beyond the class queue depth are rejected immediately with
// HTTP 429 and a structured queue_full error carrying Retry-After
// advice; -budget caps how many pool workers any single job occupies,
// so -runners concurrent jobs share the persistent pool instead of
// oversubscribing. With -tenant-rate set, each tenant (X-Tenant request
// header) is admitted through its own token bucket and rejected with a
// structured 429 (plus Retry-After computed from the refill rate) when
// over its rate. Requests may carry timeout_ms; expiry returns a
// structured deadline_exceeded error (HTTP 504) with the stage, elapsed
// time, iterations completed — and, when the solve got far enough, the
// last GMRES iterates' residual and best-effort capacitance estimate.
//
// # Durability and restarts
//
// With -data-dir set, async extract jobs are journaled to
// <dir>/jobs.journal, fsync'd at every state edge: a 202 acknowledgment
// means the job survives SIGKILL or power loss. On startup capxd
// replays the journal — finished jobs stay queryable via GET /jobs/{id}
// with their persisted results, unfinished ones (including jobs an
// overrun drain interrupted) are re-enqueued and run again, with
// client-supplied idempotency keys deduplicating retried submissions.
//
// SIGTERM/SIGINT triggers a graceful drain: admission rejects new work
// with a structured 503 draining error (Retry-After attached), /healthz
// flips to 503 so load balancers rotate the replica out, and running
// jobs get -drain-timeout to finish. Past the timeout they are
// context-cancelled at their next solver checkpoint and journaled as
// interrupted — the next lifetime owes them a run. The journal is
// compacted and the process exits 0.
//
// # Running a replica set
//
// Several capxd replicas can share work without shared storage. Each
// replica persists the expensive solver by-products — near-field
// matrix values and preconditioner factors, keyed by a content hash of
// geometry and solve options — in a disk artifact store under
// <data-dir>/artifacts (size-bounded by -artifact-max-bytes, LRU).
// With -peers set to the sibling replicas' base URLs, a replica that
// misses locally fetches the artifact from the first peer that holds
// it (GET /artifacts/{key}) before falling back to computing it, so a
// cold replica joining a warm set skips most integration work:
//
//	capxd -addr :8437 -data-dir /var/lib/capxd-a -peers http://b:8437,http://c:8437
//	capxd -addr :8437 -data-dir /var/lib/capxd-b -peers http://a:8437,http://c:8437
//
// A thin coordinator in front of the set maximizes those cache hits:
// capxd -route runs no engine at all — it consistent-hashes each
// request's geometry-family key over -peers and forwards to the owning
// replica, so every variant of a family lands where its plans and
// artifacts are already warm. The coordinator fails over to ring
// successors (with backoff) when the owner is down or shedding, and
// fans GET /jobs/{id} out to all replicas:
//
//	capxd -route -addr :8400 -peers http://a:8437,http://b:8437,http://c:8437
//
// Clients talk to the coordinator exactly as they would to a replica;
// its /stats and /metrics expose forwarding and failover counters
// instead of engine state.
//
// # Precision
//
// Requests may carry a "precision" selector (auto | fp64 | mixed); the
// mixed setting runs the accelerated matvec through a float32 operator
// inside float64 iterative refinement (capx -precision). -precision
// sets the daemon-wide default applied to requests that leave theirs
// empty or on auto; the response reports the arithmetic that actually
// ran.
//
// # Profiling
//
// -pprof addr serves the net/http/pprof handlers (goroutine, heap, CPU
// profiles) on a separate side listener, e.g. -pprof localhost:6060,
// then `go tool pprof http://localhost:6060/debug/pprof/profile`. It is
// deliberately a second listener so profiling never shares the public
// service address; bind it to localhost.
//
// -faults arms the fault-injection hooks (internal/faultpoint; also via
// the CAPXD_FAULTS environment variable) for crash-safety testing, e.g.
// "journal.sync@3:crash" kills the process on the third journal fsync.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers for the -pprof side listener
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"parbem"
	"parbem/internal/faultpoint"
	"parbem/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the daemon body, factored from main so the kill-and-recover
// test can re-exec the test binary as a real capxd process.
func run(args []string) int {
	fs := flag.NewFlagSet("capxd", flag.ExitOnError)
	var (
		addr         = fs.String("addr", ":8437", "listen address")
		addrFile     = fs.String("addr-file", "", "write the bound listen address to this file (for :0 callers)")
		workers      = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		budget       = fs.Int("budget", 0, "max pool workers per job (0 = whole pool)")
		runners      = fs.Int("runners", 0, "concurrent jobs (0 = workers/budget, min 1)")
		queue        = fs.Int("queue", 64, "interactive (extract) admission queue depth")
		sweepQueue   = fs.Int("sweep-queue", 0, "bulk (sweep) admission queue depth (0 = same as -queue)")
		tenantRate   = fs.Float64("tenant-rate", 0, "per-tenant admitted requests/sec via X-Tenant header (0 = unlimited)")
		tenantBurst  = fs.Int("tenant-burst", 0, "per-tenant burst capacity (0 = ceil(rate))")
		cache        = fs.Int("cache", 0, "state/plan LRU entries (0 = default 64)")
		pairCache    = fs.Int("paircache", 0, "pair-integral cache entries (0 = default)")
		maxBody      = fs.Int64("maxbody", 0, "request body cap in bytes (0 = default 8 MiB)")
		maxPanels    = fs.Int("maxpanels", 0, "per-request estimated panel cap (0 = default 200000)")
		history      = fs.Int("jobhistory", 0, "finished jobs kept for GET /jobs/{id} (0 = default 256)")
		dataDir      = fs.String("data-dir", "", "durable job journal directory (empty = no persistence)")
		peers        = fs.String("peers", "", "comma-separated sibling replica base URLs (artifact fetch; with -route, the replica set)")
		route        = fs.Bool("route", false, "coordinator mode: run no engine, consistent-hash /extract and /sweep over -peers")
		artifactMax  = fs.Int64("artifact-max-bytes", 0, "artifact store size budget under <data-dir>/artifacts (0 = 1 GiB)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before running jobs are interrupted")
		precision    = fs.String("precision", "auto", "default matvec arithmetic for requests that leave theirs on auto: auto | fp64 | mixed")
		pprofAddr    = fs.String("pprof", "", "serve net/http/pprof on this side listener (empty = disabled; keep it off the public address)")
		faults       = fs.String("faults", os.Getenv("CAPXD_FAULTS"), "fault-injection spec, e.g. journal.sync@3:crash (testing only)")
	)
	fs.Parse(args)

	defPrec, err := parbem.ParsePrecision(*precision)
	if err != nil {
		log.Printf("capxd: -precision: %v", err)
		return 2
	}

	if *pprofAddr != "" {
		// The profiling handlers live on the default mux of a separate
		// listener, so they never share a port (or an exposure surface)
		// with the service API.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Printf("capxd: -pprof: %v", err)
			return 2
		}
		go func() {
			if err := http.Serve(pln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("capxd: pprof: %v", err)
			}
		}()
		log.Printf("capxd: pprof listening on %s", pln.Addr())
	}

	if *faults != "" {
		if err := faultpoint.Configure(*faults); err != nil {
			log.Printf("capxd: -faults: %v", err)
			return 2
		}
		log.Printf("capxd: fault injection armed: %s", *faults)
	}

	if *route {
		return runRouter(*addr, *addrFile, splitPeers(*peers), serve.Limits{
			MaxBodyBytes: *maxBody,
			MaxPanels:    *maxPanels,
		})
	}

	artifactDir := ""
	if *dataDir != "" {
		artifactDir = filepath.Join(*dataDir, "artifacts")
	}

	s, err := serve.Open(serve.Options{
		Workers:          *workers,
		WorkerBudget:     *budget,
		Runners:          *runners,
		QueueDepth:       *queue,
		SweepQueueDepth:  *sweepQueue,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		CacheEntries:     *cache,
		PairCacheEntries: *pairCache,
		JobHistory:       *history,
		DataDir:          *dataDir,
		ArtifactDir:      artifactDir,
		ArtifactMaxBytes: *artifactMax,
		Peers:            splitPeers(*peers),
		DefaultPrecision: defPrec,
		Logf:             log.Printf,
		Limits: serve.Limits{
			MaxBodyBytes: *maxBody,
			MaxPanels:    *maxPanels,
		},
	})
	if err != nil {
		log.Printf("capxd: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("capxd: %v", err)
		s.Close()
		return 1
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			log.Printf("capxd: %v", err)
			s.Close()
			return 1
		}
	}

	// Header/idle timeouts close the slow-client hole that would bypass
	// the bounded-queue admission control (no WriteTimeout: sweep
	// responses are long-lived NDJSON streams).
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Drain while still serving: in-flight and retrying clients see
		// structured 503 draining responses (and /healthz flips) instead
		// of connection resets, and running jobs get -drain-timeout to
		// finish before being interrupted.
		log.Printf("capxd: draining (timeout %v)", *drainTimeout)
		if err := s.Drain(*drainTimeout); err != nil {
			log.Printf("capxd: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("capxd: shutdown: %v", err)
		}
	}()

	log.Printf("capxd: listening on %s (pool %d workers, budget %d/job, queue %d, data-dir %q)",
		ln.Addr(), s.Engine().Workers(), *budget, *queue, *dataDir)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		s.Close()
		return 1
	}
	<-done
	// Close compacts the journal; an interrupted backlog stays
	// re-runnable for the next lifetime.
	s.Close()
	log.Print("capxd: drained, exiting")
	return 0
}

// runRouter is the -route body: serve the consistent-hash coordinator
// over the replica set instead of a local engine.
func runRouter(addr, addrFile string, replicas []string, limits serve.Limits) int {
	rt, err := serve.NewRouter(serve.RouterOptions{
		Replicas: replicas,
		Limits:   limits,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Printf("capxd: -route: %v", err)
		return 2
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Printf("capxd: %v", err)
		return 1
	}
	if addrFile != "" {
		if err := writeAddrFile(addrFile, ln.Addr().String()); err != nil {
			log.Printf("capxd: %v", err)
			return 1
		}
	}
	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// The router holds no job state, so shutdown only needs to let
		// in-flight forwards finish.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("capxd: shutdown: %v", err)
		}
	}()
	log.Printf("capxd: routing on %s over %d replicas", ln.Addr(), len(replicas))
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		return 1
	}
	<-done
	log.Print("capxd: router exiting")
	return 0
}

// splitPeers parses the -peers comma list, dropping empty elements and
// trailing slashes.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// writeAddrFile publishes the bound address atomically (temp + rename)
// so a parent polling the file never reads a partial write.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
