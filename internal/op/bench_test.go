package op

import (
	"testing"

	"parbem/internal/fmm"
)

// BenchmarkPipelineSolve compares the unified pipeline's multi-RHS solve
// over the fmm operator with and without the near-field block-Jacobi
// preconditioner (equal tolerance). The iters/op metric is the total
// Krylov count across all conductor columns.
func BenchmarkPipelineSolve(b *testing.B) {
	spec := busSpec(b, 4, 4, 1e-6).withDefaults()
	a := fmm.NewOperator(spec.Panels, fmm.Options{Eps: spec.Eps, Cfg: spec.Cfg})
	phi := spec.RHS()
	for _, bc := range []struct {
		name string
		kind PrecondKind
	}{
		{"plain", PrecondNone},
		{"jacobi", PrecondJacobi},
		{"block-jacobi", PrecondBlockJacobi},
	} {
		b.Run(bc.name, func(b *testing.B) {
			pl, err := NewWithOperator(spec, a, Options{Precond: bc.kind, Tol: 1e-4})
			if err != nil {
				b.Fatal(err)
			}
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, it, err := pl.SolveRHS(phi)
				if err != nil {
					b.Fatal(err)
				}
				iters = it
			}
			b.ReportMetric(float64(iters), "iters/op")
		})
	}
}

// BenchmarkPipelineDirect measures the direct dense path (assembly
// excluded; factorization + solves + reduction).
func BenchmarkPipelineDirect(b *testing.B) {
	spec := busSpec(b, 3, 3, 1.5e-6).withDefaults()
	pl, err := New(spec, Options{Backend: BackendDense, Direct: true})
	if err != nil {
		b.Fatal(err)
	}
	phi := spec.RHS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.ExtractRHS(phi); err != nil {
			b.Fatal(err)
		}
	}
}
