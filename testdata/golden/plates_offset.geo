structure plates
unit 1e-06
conductor bot
box 0 0 0 6 6 0.2
conductor top
box 2 2 0.7 8 8 0.9
