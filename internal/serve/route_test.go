package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeReplica is a canned backend for router tests: it records which
// paths arrive and answers every POST with its own name so tests can
// tell which replica served a forwarded request.
type fakeReplica struct {
	name   string
	status int // response status for POST endpoints
	srv    *httptest.Server
	hits   chan string // request paths, buffered
}

func newFakeReplica(name string, status int) *fakeReplica {
	f := &fakeReplica{name: name, status: status, hits: make(chan string, 256)}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case f.hits <- r.URL.Path:
		default:
		}
		if strings.HasPrefix(r.URL.Path, "/jobs/") {
			if f.name == "jobowner" {
				writeJSON(w, http.StatusOK, map[string]any{"state": "done", "replica": f.name})
				return
			}
			writeError(w, &RequestError{Code: CodeNotFound, Message: "unknown job id"})
			return
		}
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(map[string]string{"replica": f.name})
	}))
	return f
}

func (f *fakeReplica) drain() int {
	n := 0
	for {
		select {
		case <-f.hits:
			n++
		default:
			return n
		}
	}
}

func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func routerFor(t *testing.T, replicas ...*fakeReplica) *Router {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, f := range replicas {
		urls[i] = f.srv.URL
	}
	rt, err := NewRouter(RouterOptions{Replicas: urls, Retry: fastRetry()})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt
}

func extractBody(t *testing.T, h float64) string {
	t.Helper()
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(h)), EdgeM: 0.5e-6, Backend: "dense"}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postExtract(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/extract", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /extract: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, string(data)
}

// TestRingCandidates pins the ring contract: the candidate list covers
// every replica exactly once, starts at the owner, and is stable for a
// given key and replica set regardless of registration order.
func TestRingCandidates(t *testing.T) {
	replicas := []string{"http://a", "http://b", "http://c"}
	r := buildRing(replicas)
	for _, key := range []string{"fam-1", "fam-2", "fam-3", ""} {
		cand := r.candidates(key)
		if len(cand) != len(replicas) {
			t.Fatalf("key %q: %d candidates, want %d", key, len(cand), len(replicas))
		}
		seen := map[string]bool{}
		for _, c := range cand {
			if seen[c] {
				t.Fatalf("key %q: duplicate candidate %q", key, c)
			}
			seen[c] = true
		}
		if got := r.owner(key); got != cand[0] {
			t.Errorf("key %q: owner %q != first candidate %q", key, got, cand[0])
		}
	}
	// Registration order must not change placement.
	shuffled := buildRing([]string{"http://c", "http://a", "http://b"})
	for _, key := range []string{"fam-1", "fam-2", "fam-3"} {
		if a, b := r.owner(key), shuffled.owner(key); a != b {
			t.Errorf("key %q: owner depends on registration order (%q vs %q)", key, a, b)
		}
	}
}

// TestRingBalance checks the vnode count spreads ownership usefully: no
// replica of three owns less than 15% or more than 55% of 3000 keys.
func TestRingBalance(t *testing.T) {
	r := buildRing([]string{"http://a", "http://b", "http://c"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("family-%d", i))]++
	}
	for rep, c := range counts {
		if c < n*15/100 || c > n*55/100 {
			t.Errorf("replica %s owns %d/%d keys — ring badly imbalanced", rep, c, n)
		}
	}
}

// TestRouterRoutesConsistently sends several distinct geometries twice
// each and asserts every family lands on the same replica both times —
// the whole point of routing by family key.
func TestRouterRoutesConsistently(t *testing.T) {
	a := newFakeReplica("a", http.StatusOK)
	b := newFakeReplica("b", http.StatusOK)
	defer a.srv.Close()
	defer b.srv.Close()
	rt := routerFor(t, a, b)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 4; i++ {
		body := extractBody(t, 0.4e-6+float64(i)*0.03e-6)
		_, first := postExtract(t, front.URL, body)
		_, second := postExtract(t, front.URL, body)
		if first != second {
			t.Errorf("geometry %d routed to different replicas: %s vs %s", i, first, second)
		}
	}
	if got := rt.Stats().Forwarded; got != 8 {
		t.Errorf("forwarded = %d, want 8", got)
	}
	if got := rt.Stats().Failovers; got != 0 {
		t.Errorf("failovers = %d, want 0 with healthy replicas", got)
	}
}

// TestRouterFailover kills one replica (connection-refused) and checks
// every request still succeeds on the survivor, with the failover
// counter recording the detour.
func TestRouterFailover(t *testing.T) {
	dead := newFakeReplica("dead", http.StatusOK)
	alive := newFakeReplica("alive", http.StatusOK)
	defer alive.srv.Close()
	dead.srv.Close() // connection refused from now on
	rt := routerFor(t, dead, alive)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for i := 0; i < 4; i++ {
		resp, body := postExtract(t, front.URL, extractBody(t, 0.4e-6+float64(i)*0.03e-6))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
		if !strings.Contains(body, "alive") {
			t.Fatalf("request %d served by %q, want the survivor", i, body)
		}
	}
	if rt.Stats().Unavailable != 0 {
		t.Errorf("unavailable = %d, want 0 (survivor handled everything)", rt.Stats().Unavailable)
	}
}

// TestRouterRetryableStatusFailsOver checks a 5xx from the owner moves
// the request to a successor instead of surfacing the error, while a
// non-retryable status passes through verbatim without a retry.
func TestRouterRetryableStatusFailsOver(t *testing.T) {
	broken := newFakeReplica("broken", http.StatusInternalServerError)
	healthy := newFakeReplica("healthy", http.StatusOK)
	defer broken.srv.Close()
	defer healthy.srv.Close()
	rt := routerFor(t, broken, healthy)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, body := postExtract(t, front.URL, extractBody(t, 0.5e-6))
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "healthy") {
		t.Fatalf("got %d %q, want 200 from the healthy replica", resp.StatusCode, body)
	}

	// Non-retryable: both replicas answer 422; the router must relay it,
	// not spin through retry rounds (each replica sees exactly one try).
	u := newFakeReplica("u1", http.StatusUnprocessableEntity)
	v := newFakeReplica("u2", http.StatusUnprocessableEntity)
	defer u.srv.Close()
	defer v.srv.Close()
	rt2 := routerFor(t, u, v)
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()
	resp2, _ := postExtract(t, front2.URL, extractBody(t, 0.5e-6))
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("non-retryable status: got %d, want 422", resp2.StatusCode)
	}
	if hits := u.drain() + v.drain(); hits != 1 {
		t.Errorf("non-retryable response hit %d replicas, want exactly 1", hits)
	}
}

// TestRouterAllDown checks the router reports unavailability (rather
// than hanging or panicking) when no replica answers.
func TestRouterAllDown(t *testing.T) {
	a := newFakeReplica("a", http.StatusOK)
	b := newFakeReplica("b", http.StatusOK)
	a.srv.Close()
	b.srv.Close()
	rt := routerFor(t, a, b)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, _ := postExtract(t, front.URL, extractBody(t, 0.5e-6))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("all-down status = %d, want 500", resp.StatusCode)
	}
	if rt.Stats().Unavailable == 0 {
		t.Error("unavailable counter did not record the total failure")
	}
}

// TestRouterRejectsBadRequests checks malformed bodies are rejected at
// the router without touching any replica.
func TestRouterRejectsBadRequests(t *testing.T) {
	a := newFakeReplica("a", http.StatusOK)
	defer a.srv.Close()
	rt := routerFor(t, a)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for _, body := range []string{"{not json", `{"geometry":"box 1","edge_m":0}`} {
		resp, err := http.Post(front.URL+"/extract", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("body %q: status %d, want 400/422", body, resp.StatusCode)
		}
	}
	if hits := a.drain(); hits != 0 {
		t.Errorf("bad requests reached the replica %d times", hits)
	}
	if rt.Stats().BadRequests == 0 {
		t.Error("bad_requests counter not incremented")
	}
}

// TestRouterJobFanout checks GET /jobs/{id} finds a job that lives on
// one replica only, and 404s cleanly when nobody has it.
func TestRouterJobFanout(t *testing.T) {
	a := newFakeReplica("a", http.StatusOK)
	owner := newFakeReplica("jobowner", http.StatusOK)
	defer a.srv.Close()
	defer owner.srv.Close()
	rt := routerFor(t, a, owner)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/jobs/j-123")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "jobowner") {
		t.Errorf("job lookup: %d %q, want 200 from jobowner", resp.StatusCode, data)
	}
}

// TestRouterStatsAndMetrics smoke-tests the observability endpoints.
func TestRouterStatsAndMetrics(t *testing.T) {
	a := newFakeReplica("a", http.StatusOK)
	defer a.srv.Close()
	rt := routerFor(t, a)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	postExtract(t, front.URL, extractBody(t, 0.5e-6))
	var st RouterStats
	resp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	resp.Body.Close()
	if st.Forwarded != 1 || len(st.Replicas) != 1 {
		t.Errorf("stats = %+v, want forwarded=1 replicas=1", st)
	}

	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"parbem_router_forwarded_total 1", "parbem_router_replicas 1"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
