package parbem

// End-to-end integration tests across module boundaries: geometry file ->
// basis generation -> parallel fill -> solve -> netlist, plus physical
// consistency checks between the instantiable solver and the three
// baseline solvers.

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const integrationGeo = `
structure itest
unit 1e-6
conductor a
wire x 0 0 0   12 1 0.5
conductor b
wire y 0 0 1.2 12 1 0.5
conductor c
wire x 0 3 0   12 1 0.5
`

func TestFileToNetlistFlow(t *testing.T) {
	st, err := ReadStructure(strings.NewReader(integrationGeo))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(st, Options{Backend: SharedMem})
	if err != nil {
		t.Fatal(err)
	}
	if res.C.Rows != 3 {
		t.Fatalf("C is %dx%d", res.C.Rows, res.C.Cols)
	}
	if v := CheckMaxwell(res.C, 0); len(v) > 0 {
		t.Errorf("Maxwell violations: %v", v)
	}
	var buf bytes.Buffer
	if err := WriteSpice(&buf, res.C, []string{"a", "b", "c"}, 1e-20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ".subckt extracted a b c") {
		t.Errorf("netlist header missing:\n%s", out)
	}
	// All three pairwise couplings exist in this geometry.
	for _, pair := range []string{"a b", "a c", "b c"} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "C") && strings.Contains(line, pair) {
				found = true
			}
		}
		if !found {
			t.Errorf("coupling %q missing from netlist:\n%s", pair, out)
		}
	}

	// Round-trip the structure through the writer.
	var geo bytes.Buffer
	if err := WriteStructure(&geo, st, 1e-6); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadStructure(&geo)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Extract(st2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := CapError(res2.C, res.C); e > 1e-9 {
		t.Errorf("round-tripped structure changed the answer by %g", e)
	}
}

func TestAllSolversAgreeOnCrossing(t *testing.T) {
	// The instantiable solver and all three piecewise-constant solvers
	// (dense direct, multipole+GMRES, pFFT+GMRES) must agree on the
	// crossing pair within their combined tolerance budgets.
	st := NewCrossingPair().Build()
	ref, err := ExtractReference(st, 0.4e-6)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := ExtractFastCapLike(st, 0.4e-6, FastCapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := ExtractPFFT(st, 0.4e-6, PFFTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		e    float64
		tol  float64
	}{
		{"instantiable", CapError(inst.C, ref.C), 0.08},
		{"fastcap-analog", CapError(fc.C, ref.C), 0.03},
		{"pfft", CapError(pf.C, ref.C), 0.06},
	} {
		t.Logf("%s vs reference: %.2f%%", c.name, 100*c.e)
		if c.e > c.tol {
			t.Errorf("%s error %.2f%% exceeds %.0f%%", c.name, 100*c.e, 100*c.tol)
		}
	}
}

func TestScaleInvarianceOfCapacitance(t *testing.T) {
	// Capacitance scales linearly with geometry size (C ~ eps * length):
	// doubling every dimension must double C.
	base := NewCrossingPair()
	scaled := base
	scaled.Width *= 2
	scaled.Thickness *= 2
	scaled.Length *= 2
	scaled.H *= 2
	r1, err := Extract(base.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Extract(scaled.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.C.At(0, 1) / r1.C.At(0, 1)
	if math.Abs(ratio-2) > 0.02 {
		t.Errorf("coupling scale ratio = %.4f, want 2 (linear in size)", ratio)
	}
}

func TestDielectricScaling(t *testing.T) {
	// C is proportional to the permittivity.
	st := NewCrossingPair().Build()
	vac, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ox, err := Extract(st, Options{Eps: 3.9 * Eps0}) // SiO2
	if err != nil {
		t.Fatal(err)
	}
	ratio := ox.C.At(0, 1) / vac.C.At(0, 1)
	if math.Abs(ratio-3.9) > 1e-9 {
		t.Errorf("permittivity ratio = %.6f, want 3.9", ratio)
	}
}

func TestMergedVsSeparateBasisAccuracy(t *testing.T) {
	// The ablation behind BuilderOptions.SeparateInduced: both modes must
	// deliver engineering accuracy on the crossing pair; separate mode
	// uses more unknowns.
	st := NewCrossingPair().Build()
	ref, err := ExtractReference(st, 0.35e-6)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Extract(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sopt := Options{}
	sopt.Basis = DefaultBuilderOptionsPub()
	sopt.Basis.SeparateInduced = true
	sep, err := Extract(st, sopt)
	if err != nil {
		t.Fatal(err)
	}
	me := CapError(merged.C, ref.C)
	se := CapError(sep.C, ref.C)
	t.Logf("merged: %.2f%% (N=%d), separate: %.2f%% (N=%d)", 100*me, merged.N, 100*se, sep.N)
	if me > 0.08 || se > 0.08 {
		t.Errorf("accuracy regression: merged %.2f%%, separate %.2f%%", 100*me, 100*se)
	}
}
