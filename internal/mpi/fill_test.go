package mpi

import (
	"testing"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/linalg"
)

func TestFillDistributedMatchesSerial(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	want := assembly.FillSerial(set, in)

	for _, size := range []int{1, 2, 3, 5, 10} {
		got := FillDistributed(set, in, NewNetwork(size))
		if got == nil {
			t.Fatalf("size=%d: nil result", size)
		}
		if d := linalg.MaxAbsDiff(got, want); d > tol(want) {
			t.Errorf("size=%d: distributed result differs from serial by %g", size, d)
		}
	}
}

func TestFillDistributedMoreRanksThanWork(t *testing.T) {
	// A tiny set with fewer k-pairs than ranks: some ranks get empty
	// partitions and must still participate in the protocol.
	st := &geom.Structure{
		Name: "plate",
		Conductors: []*geom.Conductor{
			{Name: "a", Boxes: []geom.Box{geom.NewBox(
				geom.Vec3{X: 0, Y: 0, Z: 0}, geom.Vec3{X: 1e-6, Y: 1e-6, Z: 1e-7})}},
		},
	}
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	want := assembly.FillSerial(set, in)
	got := FillDistributed(set, in, NewNetwork(10))
	if d := linalg.MaxAbsDiff(got, want); d > tol(want) {
		t.Errorf("differs from serial by %g", d)
	}
}

// tol returns the rounding tolerance for comparing fills (accumulation
// order differs across partition boundaries).
func tol(m *linalg.Dense) float64 {
	var scale float64
	for _, v := range m.Data {
		if v > scale {
			scale = v
		} else if -v > scale {
			scale = -v
		}
	}
	return 1e-12 * scale
}
