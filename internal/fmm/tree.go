// Package fmm is a from-scratch multipole-accelerated piecewise-constant
// BEM solver in the mold of FASTCAP [4], the first acceleration baseline
// the paper benchmarks against (references [1] and [7], Figure 8).
//
// # Architecture
//
// The operator is list-driven: all tree walking happens once, at
// construction time, and Apply is nothing but flat loops over
// precomputed int32 index slices.
//
//   - An octree over panel centroids (buildTree) gives every node a
//     contiguous [lo, hi) range of the permuted panel index array.
//   - A dual-tree traversal (buildInteractions) classifies every
//     target/source node pair exactly once: well-separated pairs become
//     M2L list entries attached to the target node; leaf pairs that fail
//     the acceptance criterion become near-field pairs, either "exact"
//     (adjacent within Options.NearFactor — closed-form Galerkin
//     integrals) or "point" (center monopole entries, the same
//     approximation the far field uses for marginal leaves).
//   - The near field is stored as one CSR matrix over panels. Each
//     unordered leaf-pair block is integrated once and scattered to both
//     sides (the Galerkin kernel is symmetric), in parallel on a
//     sched.Executor, with per-(row, segment) offsets precomputed so no
//     locking is needed.
//   - Apply runs an upward pass accumulating Cartesian moments (monopole,
//     dipole, quadrupole), converts source moments to local expansions on
//     each target node via the M2L lists, translates locals down the tree
//     (L2L), and evaluates local expansion plus near CSR row per panel
//     (L2P). All scratch state lives in a per-Apply buffer bundle, so
//     Apply allocates nothing after warmup and concurrent Applies (e.g.
//     one GMRES per conductor) are safe.
//
// Combined with GMRES (internal/pcbem.SolveIterative) this gives the
// O(N)-style matvec whose limited parallel scalability the paper
// contrasts with the instantiable-basis solver.
package fmm

import (
	"math"
	"sort"

	"parbem/internal/geom"
)

// node is one octree box.
type node struct {
	center   geom.Vec3
	halfSize float64 // half edge length of the cube
	children [8]int32
	parent   int32
	// Panels covered: [lo, hi) into the permuted index array. For
	// internal nodes this is the whole subtree's range.
	lo, hi int32
	leaf   bool
}

// tree is an octree over panel centroids.
type tree struct {
	nodes  []node
	perm   []int32 // permuted panel indices; nodes own contiguous ranges
	leafOf []int32 // panel -> containing leaf node id
}

// buildTree constructs the octree with at most leafSize panels per leaf.
func buildTree(panels []geom.Panel, leafSize int) *tree {
	n := len(panels)
	centers := make([]geom.Vec3, n)
	lo := geom.Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := geom.Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for i, p := range panels {
		c := p.Center()
		centers[i] = c
		lo = geom.Vec3{X: math.Min(lo.X, c.X), Y: math.Min(lo.Y, c.Y), Z: math.Min(lo.Z, c.Z)}
		hi = geom.Vec3{X: math.Max(hi.X, c.X), Y: math.Max(hi.Y, c.Y), Z: math.Max(hi.Z, c.Z)}
	}
	center := lo.Add(hi).Scale(0.5)
	size := hi.Sub(lo)
	half := 0.5 * math.Max(size.X, math.Max(size.Y, size.Z))
	if half == 0 {
		half = 1e-12
	}
	half *= 1.0000001 // keep boundary centroids strictly inside

	t := &tree{
		perm:   make([]int32, n),
		leafOf: make([]int32, n),
	}
	for i := range t.perm {
		t.perm[i] = int32(i)
	}
	t.split(centers, center, half, 0, int32(n), leafSize, -1)
	return t
}

// split recursively partitions perm[lo:hi]; returns the node id.
func (t *tree) split(centers []geom.Vec3, center geom.Vec3, half float64, lo, hi int32, leafSize int, parent int32) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{center: center, halfSize: half, lo: lo, hi: hi, parent: parent})
	for i := range t.nodes[id].children {
		t.nodes[id].children[i] = -1
	}
	if int(hi-lo) <= leafSize || half < 1e-15 {
		t.nodes[id].leaf = true
		for _, pi := range t.perm[lo:hi] {
			t.leafOf[pi] = id
		}
		return id
	}
	// Bucket by octant.
	oct := func(pi int32) int {
		c := centers[pi]
		o := 0
		if c.X >= center.X {
			o |= 1
		}
		if c.Y >= center.Y {
			o |= 2
		}
		if c.Z >= center.Z {
			o |= 4
		}
		return o
	}
	seg := t.perm[lo:hi]
	sort.Slice(seg, func(a, b int) bool { return oct(seg[a]) < oct(seg[b]) })
	// Find octant boundaries.
	var bounds [9]int32
	bounds[0] = lo
	idx := lo
	for o := 0; o < 8; o++ {
		for idx < hi && oct(t.perm[idx]) == o {
			idx++
		}
		bounds[o+1] = idx
	}
	qh := half / 2
	for o := 0; o < 8; o++ {
		cl, ch := bounds[o], bounds[o+1]
		if ch == cl {
			continue
		}
		cc := center
		if o&1 != 0 {
			cc.X += qh
		} else {
			cc.X -= qh
		}
		if o&2 != 0 {
			cc.Y += qh
		} else {
			cc.Y -= qh
		}
		if o&4 != 0 {
			cc.Z += qh
		} else {
			cc.Z -= qh
		}
		child := t.split(centers, cc, qh, cl, ch, leafSize, id)
		t.nodes[id].children[o] = child
	}
	return id
}

// leaves returns the ids of all leaf nodes.
func (t *tree) leaves() []int32 {
	var out []int32
	for id := range t.nodes {
		if t.nodes[id].leaf {
			out = append(out, int32(id))
		}
	}
	return out
}

// boxDist returns the distance between the cubes of nodes a and b
// (0 when they touch or overlap). The gap is computed symmetrically —
// |ca-cb| - (ha+hb), not (|ca-cb| - ha) - hb — so boxDist(a, b) is
// bitwise equal to boxDist(b, a) and the near/galerkin classification
// of a leaf pair cannot depend on the traversal's visit order.
func (t *tree) boxDist(a, b int32) float64 {
	na, nb := &t.nodes[a], &t.nodes[b]
	var d2 float64
	for ax := geom.X; ax <= geom.Z; ax++ {
		ca := na.center.Component(ax)
		cb := nb.center.Component(ax)
		g := math.Abs(ca-cb) - (na.halfSize + nb.halfSize)
		if g > 0 {
			d2 += g * g
		}
	}
	return math.Sqrt(d2)
}
