package fft

import (
	"math/rand"
	"testing"
)

// benchDims is a pfft-representative padded grid (the 4x4 bus at
// N=1088 pads to 64x64x32).
const benchNx, benchNy, benchNz = 64, 64, 32

// BenchmarkConvolve measures the fused grid convolution: the r2c
// half-spectrum path (fp64 and fp32) against the c2c complex path it
// replaced. The r2c/c2c fp64 delta is the headline transform win of
// the real-input engine.
func BenchmarkConvolve(b *testing.B) {
	rng := rand.New(rand.NewSource(21))

	b.Run("r2c-fp64", func(b *testing.B) {
		g := NewRGrid3(benchNx, benchNy, benchNz)
		kh := NewRGrid3(benchNx, benchNy, benchNz)
		fillRandReal(rng, g, nil)
		fillRandReal(rng, kh, nil)
		kh.ForwardReal()
		g.ConvolveInto(kh)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ConvolveInto(kh)
		}
	})
	b.Run("r2c-fp32", func(b *testing.B) {
		g := NewRGrid3F32(benchNx, benchNy, benchNz)
		kh := NewRGrid3F32(benchNx, benchNy, benchNz)
		for i := range g.Data {
			g.Data[i] = rng.Float32()
		}
		for i := range kh.Data {
			kh.Data[i] = rng.Float32()
		}
		kh.ForwardReal()
		g.ConvolveInto(kh)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.ConvolveInto(kh)
		}
	})
	b.Run("c2c-fp64", func(b *testing.B) {
		g := NewGrid3(benchNx, benchNy, benchNz)
		kh := NewGrid3(benchNx, benchNy, benchNz)
		for i := range g.Data {
			g.Data[i] = complex(rng.NormFloat64(), 0)
			kh.Data[i] = complex(rng.NormFloat64(), 0)
		}
		kh.Forward3()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Forward3()
			g.MulPointwise(kh)
			g.Inverse3()
		}
	})
}

// BenchmarkForward1D measures the table-driven 1-D kernel on a typical
// grid-edge length.
func BenchmarkForward1D(b *testing.B) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i%7), float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
