package op

import (
	"math"
	"sync"
	"testing"

	"parbem/internal/fmm"
	"parbem/internal/linalg"
	"parbem/internal/tabulate"
)

var (
	collocOnce sync.Once
	colloc     *tabulate.Collocation
)

// testCollocation builds (once) the default collocation table.
func testCollocation(tb testing.TB) *tabulate.Collocation {
	tb.Helper()
	collocOnce.Do(func() {
		colloc = tabulate.NewCollocation(tabulate.CollocationSpec{})
	})
	return colloc
}

// TestBlockJacobiSolvesBlockDiagonalExactly pins the preconditioner's
// algebra: on a block-diagonal SPD matrix, Apply must be the exact
// inverse.
func TestBlockJacobiSolvesBlockDiagonalExactly(t *testing.T) {
	// Two blocks: a 3x3 SPD block over {0, 2, 4} and a 2x2 over {1, 3};
	// unknown 5 is uncovered with diagonal 4.
	n := 6
	a := linalg.NewDenseFrom(3, 3, []float64{4, 1, 0.5, 1, 3, 0.25, 0.5, 0.25, 2})
	b := linalg.NewDenseFrom(2, 2, []float64{2, 0.5, 0.5, 1})
	idx := [][]int32{{0, 2, 4}, {1, 3}}
	diag := []float64{4, 2, 3, 1, 2, 4}
	bj, err := NewBlockJacobi(n, idx, []*linalg.Dense{a, b}, diag)
	if err != nil {
		t.Fatal(err)
	}
	if bj.Blocks() != 2 {
		t.Fatalf("got %d blocks, want 2", bj.Blocks())
	}
	r := []float64{1, -2, 3, 0.5, -1, 8}
	dst := make([]float64, n)
	bj.Apply(dst, r)

	// Verify each block: A * dst[idx] == r[idx].
	checkBlock := func(m *linalg.Dense, ix []int32) {
		k := len(ix)
		for row := 0; row < k; row++ {
			var s float64
			for col := 0; col < k; col++ {
				s += m.At(row, col) * dst[ix[col]]
			}
			if math.Abs(s-r[ix[row]]) > 1e-12 {
				t.Errorf("block solve residual %g at unknown %d", s-r[ix[row]], ix[row])
			}
		}
	}
	checkBlock(a, idx[0])
	checkBlock(b, idx[1])
	if math.Abs(dst[5]-8.0/4.0) > 1e-15 {
		t.Errorf("uncovered unknown got %g, want point-Jacobi 2", dst[5])
	}
}

// TestBlockJacobiRejectsOverlap guards the disjointness contract.
func TestBlockJacobiRejectsOverlap(t *testing.T) {
	a := linalg.NewDenseFrom(1, 1, []float64{1})
	b := linalg.NewDenseFrom(1, 1, []float64{1})
	if _, err := NewBlockJacobi(2, [][]int32{{0}, {0}}, []*linalg.Dense{a, b}, nil); err == nil {
		t.Fatal("overlapping blocks must be rejected")
	}
}

// TestBlockJacobiApplyAllocFree proves the warm serial Apply path
// allocates nothing (the contract GMRESWith relies on).
func TestBlockJacobiApplyAllocFree(t *testing.T) {
	spec := busSpec(t, 3, 3, 1.5e-6).withDefaults()
	a := fmm.NewOperator(spec.Panels, fmm.Options{Workers: 1, Eps: spec.Eps, Cfg: spec.Cfg})
	idx, blocks := a.NearBlocks()
	bj, err := NewBlockJacobi(a.Dim(), idx, blocks, spec.diagonal())
	if err != nil {
		t.Fatal(err)
	}
	n := a.Dim()
	r := make([]float64, n)
	dst := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) + 1
	}
	bj.Apply(dst, r) // warm
	if allocs := testing.AllocsPerRun(10, func() {
		bj.Apply(dst, r)
	}); allocs != 0 {
		t.Fatalf("warm BlockJacobi.Apply allocates %.0f objects per call", allocs)
	}
}

// TestFMMNearBlocksMatchEntries verifies the fmm operator's exposed
// blocks against the exact scaled Galerkin entries: leaf self blocks are
// integrated exactly, so every stored block entry must equal
// Spec.Entry for its panel pair, and the blocks must partition all
// unknowns.
func TestFMMNearBlocksMatchEntries(t *testing.T) {
	spec := busSpec(t, 2, 2, 1.5e-6).withDefaults()
	a := fmm.NewOperator(spec.Panels, fmm.Options{Workers: 1, Eps: spec.Eps, Cfg: spec.Cfg})
	idx, blocks := a.NearBlocks()
	seen := make([]bool, spec.N())
	for k, ix := range idx {
		blk := blocks[k]
		for r, pi := range ix {
			if seen[pi] {
				t.Fatalf("unknown %d in two blocks", pi)
			}
			seen[pi] = true
			for c, pj := range ix {
				// The quadrature is not bit-symmetric in argument
				// order and each unordered pair is integrated once,
				// so allow the ~1e-8 argument-order asymmetry.
				want := spec.Entry(int(pi), int(pj))
				if got := blk.At(r, c); math.Abs(got-want) > 1e-6*math.Abs(want) {
					t.Fatalf("block %d entry (%d,%d): %g want %g", k, r, c, got, want)
				}
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("unknown %d uncovered", i)
		}
	}
}

// TestBlockJacobiReducesIterations is the preconditioner's reason to
// exist: on a >= 2k-panel bus, block-Jacobi must strictly reduce the
// total GMRES iteration count against the unpreconditioned fmm path at
// equal tolerance, while producing the same capacitance matrix within
// the solve tolerance.
func TestBlockJacobiReducesIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fmm construction and solves")
	}
	spec := busSpec(t, 8, 8, 0.75e-6).withDefaults()
	if spec.N() < 2000 {
		t.Fatalf("test geometry too small: N=%d, want >= 2000", spec.N())
	}
	a := fmm.NewOperator(spec.Panels, fmm.Options{Eps: spec.Eps, Cfg: spec.Cfg})

	plain, err := NewWithOperator(spec, a, Options{Precond: PrecondNone, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plain.Extract()
	if err != nil {
		t.Fatal(err)
	}
	block, err := NewWithOperator(spec, a, Options{Precond: PrecondBlockJacobi, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := block.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if bres.Iterations >= pres.Iterations {
		t.Errorf("block-Jacobi did not reduce iterations: %d vs plain %d",
			bres.Iterations, pres.Iterations)
	}
	t.Logf("N=%d: plain %d iterations, block-Jacobi %d (%.1fx)",
		spec.N(), pres.Iterations, bres.Iterations,
		float64(pres.Iterations)/float64(bres.Iterations))
	if d := capDiff(bres, pres); d > 1e-2 {
		t.Errorf("preconditioned result deviates by %g", d)
	}
}
