structure bus-2x2
unit 1e-06
conductor mx0
box -3.5 -1.5 -0.25 3.5 -0.5 0.25
conductor mx1
box -3.5 0.5 -0.25 3.5 1.5 0.25
conductor my0
box -1.5 -3.5 1.75 -0.5 3.5 2.25
conductor my1
box 0.5 -3.5 1.75 1.5 3.5 2.25
