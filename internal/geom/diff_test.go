package geom

import "testing"

func TestDiffClassifiesBoxes(t *testing.T) {
	a := DefaultCrossingPair().Build()
	spB := DefaultCrossingPair()
	spB.H *= 1.5
	b := spB.Build()

	d := Diff(a, b)
	if !d.Comparable || d.Identical {
		t.Fatalf("h variant: comparable=%v identical=%v", d.Comparable, d.Identical)
	}
	// Bottom wire is fixed; top wire translates in z only.
	if got := d.Boxes[0][0].Change; got != BoxSame {
		t.Errorf("bottom wire classified %v, want same", got)
	}
	top := d.Boxes[1][0]
	if top.Change != BoxTranslated {
		t.Fatalf("top wire classified %v, want translated", top.Change)
	}
	if top.Delta.X != 0 || top.Delta.Y != 0 || top.Delta.Z == 0 {
		t.Errorf("top wire delta = %v, want pure z translation", top.Delta)
	}

	if d := Diff(a, a.Clone()); !d.Identical {
		t.Error("clone not identical to original")
	}

	spC := DefaultCrossingPair()
	spC.Width *= 2
	if d := Diff(a, spC.Build()); d.Boxes[0][0].Change != BoxChanged {
		t.Errorf("resized wire classified %v, want changed", d.Boxes[0][0].Change)
	}

	bus := DefaultBus(2, 2).Build()
	if d := Diff(a, bus); d.Comparable {
		t.Error("crossing vs bus reported comparable")
	}
}

func TestPanelizeProvMatchesPanelize(t *testing.T) {
	st := DefaultBus(2, 3).Build()
	const edge = 0.7e-6
	plain := st.Panelize(edge)
	panels, prov := st.PanelizeProv(edge)
	if len(panels) != len(plain) || len(prov) != len(panels) {
		t.Fatalf("lengths: plain %d, prov panels %d, prov %d",
			len(plain), len(panels), len(prov))
	}
	for i := range panels {
		if panels[i] != plain[i] {
			t.Fatalf("panel %d differs between Panelize and PanelizeProv", i)
		}
		if int(prov[i].Conductor) != panels[i].Conductor {
			t.Fatalf("panel %d: provenance conductor %d != panel conductor %d",
				i, prov[i].Conductor, panels[i].Conductor)
		}
		nb := len(st.Conductors[panels[i].Conductor].Boxes)
		if prov[i].Box < 0 || int(prov[i].Box) >= nb {
			t.Fatalf("panel %d: box index %d out of range [0,%d)", i, prov[i].Box, nb)
		}
	}
}
