// Busmatrix extracts an m x n two-layer bus crossbar (paper Figure 7,
// right) and demonstrates the parallel scalability of the system setup on
// both backends (paper Table 3): near-ideal speedup because >95% of the
// work is embarrassingly parallel matrix fill.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parbem"
)

func main() {
	m := flag.Int("m", 8, "wires on the lower layer")
	n := flag.Int("n", 8, "wires on the upper layer")
	maxD := flag.Int("maxd", 4, "largest node count to demonstrate")
	flag.Parse()

	st := parbem.NewBus(*m, *n).Build()
	fmt.Printf("structure: %s (%d conductors)\n\n", st.Name, st.NumConductors())

	run := func(backend parbem.Backend, d int) (*parbem.Result, time.Duration) {
		t0 := time.Now()
		res, err := parbem.Extract(st, parbem.Options{Backend: backend, Workers: d})
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(t0)
	}

	base, t1 := run(parbem.Serial, 1)
	fmt.Printf("N = %d basis functions, M = %d templates\n", base.N, base.M)
	fmt.Printf("serial: %v (setup %.1f%% of total)\n\n", t1,
		100*float64(base.Timing.Setup)/float64(base.Timing.Total))

	fmt.Println("backend             D      time   speedup   efficiency")
	fmt.Printf("%-18s %2d  %9v  %7.2fx   %8.0f%%\n", "serial", 1, t1.Round(time.Millisecond), 1.0, 100.0)
	for _, d := range []int{2, *maxD} {
		_, td := run(parbem.SharedMem, d)
		s := float64(t1) / float64(td)
		fmt.Printf("%-18s %2d  %9v  %7.2fx   %8.0f%%\n",
			"shared-memory", d, td.Round(time.Millisecond), s, 100*s/float64(d))
	}
	for _, d := range []int{2, *maxD} {
		_, td := run(parbem.Distributed, d)
		s := float64(t1) / float64(td)
		fmt.Printf("%-18s %2d  %9v  %7.2fx   %8.0f%%\n",
			"distributed (MPI)", d, td.Round(time.Millisecond), s, 100*s/float64(d))
	}

	// A few representative couplings.
	c := base.C
	fmt.Printf("\nsample couplings (fF): cross C[0][%d] = %.4f, neighbor C[0][1] = %.4f\n",
		*m, -c.At(0, *m)*1e15, -c.At(0, 1)*1e15)
}
