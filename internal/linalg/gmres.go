package linalg

import (
	"context"
	"errors"
	"math"

	"parbem/internal/sched"
)

// Matvec abstracts y = A*x for iterative solvers; implementations include
// dense matrices, the multipole-accelerated operator, and the
// precorrected-FFT operator.
type Matvec interface {
	// Apply computes dst = A * x; dst and x never alias.
	Apply(dst, x []float64)
	// Dim returns the operator's (square) dimension.
	Dim() int
}

// DenseOpParCutoff is the element count above which DenseOp uses the
// parallel row-blocked matvec when an executor is configured.
const DenseOpParCutoff = 1 << 15

// DenseOp adapts a Dense matrix to the Matvec interface. When Exec is
// non-nil and the matrix is at least DenseOpParCutoff elements, Apply
// runs the row-blocked parallel kernel on it.
type DenseOp struct {
	M    *Dense
	Exec sched.Executor
}

// Apply implements Matvec.
func (d DenseOp) Apply(dst, x []float64) {
	if d.Exec != nil && d.M.Rows*d.M.Cols >= DenseOpParCutoff {
		ParMulVec(d.Exec, d.M, dst, x)
		return
	}
	d.M.MulVec(dst, x)
}

// Dim implements Matvec.
func (d DenseOp) Dim() int { return d.M.Rows }

// GMRESOptions configures the restarted GMRES solver.
type GMRESOptions struct {
	Tol     float64                // relative residual tolerance (default 1e-6)
	Restart int                    // Krylov subspace size before restart (default 50)
	MaxIter int                    // total iteration cap (default 10 * Dim)
	Precond func(dst, r []float64) // optional right preconditioner M^{-1}
	// Ctx optionally bounds the solve: it is checked once per Arnoldi
	// iteration (each iteration is dominated by a matvec, so the check
	// is noise) and once per restart cycle. A done context stops the
	// solve at the next checkpoint and GMRESWith returns ctx.Err() with
	// the iterations completed so far — a deadline-aware early exit,
	// not a converged solution.
	Ctx context.Context
}

// GMRESResult reports convergence statistics.
type GMRESResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// ErrGMRESBreakdown indicates an unexpected zero in the Arnoldi process.
var ErrGMRESBreakdown = errors.New("linalg: GMRES breakdown")

// GMRESWorkspace holds every buffer a restarted GMRES solve needs —
// Arnoldi basis, Hessenberg factors, rotation state and residual
// scratch — so repeated solves (multi-RHS extractions, parameter
// sweeps) allocate nothing after the first. A workspace serves one
// solve at a time; concurrent solves each need their own.
type GMRESWorkspace struct {
	n, m int
	v    [][]float64 // m+1 Arnoldi vectors of length n
	h    *Dense      // (m+1) x m Hessenberg
	cs   []float64
	sn   []float64
	g    []float64
	yk   []float64
	r    []float64
	w    []float64
	z    []float64
}

// NewGMRESWorkspace preallocates buffers for dimension-n solves with the
// given restart length (0 = the default 50).
func NewGMRESWorkspace(n, restart int) *GMRESWorkspace {
	ws := &GMRESWorkspace{}
	ws.ensure(n, normalizeRestart(n, restart))
	return ws
}

func normalizeRestart(n, restart int) int {
	if restart == 0 {
		restart = 50
	}
	if restart > n {
		restart = n
	}
	return restart
}

// ensure grows the workspace to cover an n-dimensional solve with
// restart m; existing capacity is reused.
func (ws *GMRESWorkspace) ensure(n, m int) {
	if ws.n >= n && ws.m >= m {
		return
	}
	if n > ws.n {
		ws.n = n
	}
	if m > ws.m {
		ws.m = m
	}
	ws.v = make([][]float64, ws.m+1)
	for i := range ws.v {
		ws.v[i] = make([]float64, ws.n)
	}
	ws.h = NewDense(ws.m+1, ws.m)
	ws.cs = make([]float64, ws.m)
	ws.sn = make([]float64, ws.m)
	ws.g = make([]float64, ws.m+1)
	ws.yk = make([]float64, ws.m)
	ws.r = make([]float64, ws.n)
	ws.w = make([]float64, ws.n)
	ws.z = make([]float64, ws.n)
}

// GMRES solves A x = b with restarted GMRES(m), writing the solution into
// x (which also provides the initial guess). It allocates a fresh
// workspace; use GMRESWith to reuse one across solves.
func GMRES(a Matvec, x, b []float64, opt GMRESOptions) (GMRESResult, error) {
	return GMRESWith(nil, a, x, b, opt)
}

// GMRESWith is GMRES with caller-provided scratch: ws is grown as needed
// and reused, so steady-state solves are allocation-free. ws may be nil.
func GMRESWith(ws *GMRESWorkspace, a Matvec, x, b []float64, opt GMRESOptions) (GMRESResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return GMRESResult{}, errors.New("linalg: GMRES dimension mismatch")
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	opt.Restart = normalizeRestart(n, opt.Restart)
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return GMRESResult{Converged: true}, nil
	}

	m := opt.Restart
	if ws == nil {
		ws = NewGMRESWorkspace(n, m)
	} else {
		ws.ensure(n, m)
	}
	// Views at the solve's dimensions (the workspace may be larger).
	v := ws.v[:m+1]
	for i := range v {
		v[i] = ws.v[i][:n]
	}
	h := ws.h
	cs, sn := ws.cs, ws.sn
	g := ws.g[:m+1]
	r, w, z := ws.r[:n], ws.w[:n], ws.z[:n]

	total := 0
	// lastRel is the most recent relative residual estimate, reported
	// on a context interruption so an early exit still tells the caller
	// how far the last iterate got (1 = no progress beyond the guess).
	lastRel := 1.0
	for {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return GMRESResult{Iterations: total, Residual: lastRel}, err
			}
		}
		// r = b - A x.
		a.Apply(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := Norm2(r)
		rel := beta / bnorm
		lastRel = rel
		if rel <= opt.Tol {
			return GMRESResult{Iterations: total, Residual: rel, Converged: true}, nil
		}
		if total >= opt.MaxIter {
			return GMRESResult{Iterations: total, Residual: rel, Converged: false}, nil
		}
		copy(v[0], r)
		Scal(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && total < opt.MaxIter; k++ {
			if opt.Ctx != nil {
				if err := opt.Ctx.Err(); err != nil {
					// Mid-cycle stop: x still holds the last restart's
					// iterate; lastRel is its Givens residual estimate.
					return GMRESResult{Iterations: total, Residual: lastRel}, err
				}
			}
			total++
			// w = A M^{-1} v_k.
			src := v[k]
			if opt.Precond != nil {
				opt.Precond(z, v[k])
				src = z
			}
			a.Apply(w, src)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				hik := Dot(w, v[i])
				h.Set(i, k, hik)
				Axpy(-hik, v[i], w)
			}
			wn := Norm2(w)
			h.Set(k+1, k, wn)
			if wn > 0 {
				copy(v[k+1], w)
				Scal(1/wn, v[k+1])
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h.At(i, k) + sn[i]*h.At(i+1, k)
				h.Set(i+1, k, -sn[i]*h.At(i, k)+cs[i]*h.At(i+1, k))
				h.Set(i, k, t)
			}
			// New rotation to annihilate h(k+1, k).
			hk, hk1 := h.At(k, k), h.At(k+1, k)
			d := math.Hypot(hk, hk1)
			if d == 0 {
				return GMRESResult{Iterations: total}, ErrGMRESBreakdown
			}
			cs[k], sn[k] = hk/d, hk1/d
			h.Set(k, k, d)
			h.Set(k+1, k, 0)
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]
			rel = math.Abs(g[k+1]) / bnorm
			lastRel = rel
			if rel <= opt.Tol {
				k++
				break
			}
		}
		// Solve the k x k triangular system and update x.
		yk := ws.yk[:k]
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h.At(i, j) * yk[j]
			}
			yk[i] = s / h.At(i, i)
		}
		// x += M^{-1} V y.
		for i := range w {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			Axpy(yk[j], v[j], w)
		}
		if opt.Precond != nil {
			opt.Precond(z, w)
			copy(w, z)
		}
		for i := range x {
			x[i] += w[i]
		}
		if rel <= opt.Tol {
			// Recompute the true residual for the report.
			a.Apply(r, x)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			rel = Norm2(r) / bnorm
			return GMRESResult{Iterations: total, Residual: rel, Converged: rel <= opt.Tol*10}, nil
		}
	}
}
