// Package pcbem is the classical piecewise-constant boundary element method
// that the paper positions as the baseline representation: conductor
// surfaces are discretized into rectangular panels, each carrying an
// unknown constant charge density, with Galerkin interactions assembled
// from the closed-form integrals of internal/kernel.
//
// It is now a thin geometric front end over the unified operator/solve
// pipeline (internal/op): Problem owns the panelization and physics
// constants, while RHS construction, dense assembly, the preconditioned
// multi-RHS Krylov solves and the charge-to-capacitance reduction all
// live in op.Pipeline, shared with the multipole (internal/fmm) and
// precorrected-FFT (internal/pfft) acceleration baselines, the
// template-extraction fast path and the instantiable-basis solver.
package pcbem

import (
	"errors"
	"fmt"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/sched"
)

// Problem is a panelized extraction problem.
type Problem struct {
	Panels        []geom.Panel
	NumConductors int
	Eps           float64
	Cfg           *kernel.Config
	// Par optionally supplies the executor for parallel assembly and
	// dense matvecs (e.g. a shared sched.Pool); nil means a throwaway
	// sched.Local executor sized by GOMAXPROCS.
	Par sched.Executor
}

// NewProblem panelizes a structure with the given maximum panel edge.
func NewProblem(st *geom.Structure, maxEdge float64) (*Problem, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	panels := st.Panelize(maxEdge)
	if len(panels) == 0 {
		return nil, errors.New("pcbem: no panels generated")
	}
	return &Problem{
		Panels:        panels,
		NumConductors: st.NumConductors(),
		Eps:           kernel.Eps0,
		Cfg:           kernel.DefaultConfig(),
	}, nil
}

// Spec returns the pipeline description of this problem.
func (p *Problem) Spec() op.Spec {
	return op.Spec{
		Panels:        p.Panels,
		NumConductors: p.NumConductors,
		Eps:           p.Eps,
		Cfg:           p.Cfg,
		Exec:          p.Par,
	}
}

// N returns the number of unknowns (panels).
func (p *Problem) N() int { return len(p.Panels) }

// Entry computes one scaled Galerkin matrix entry P_ij.
func (p *Problem) Entry(i, j int) float64 {
	v := kernel.RectGalerkin(p.Cfg, p.Panels[i].Rect, p.Panels[j].Rect)
	return kernel.Scale(v, p.Eps)
}

// AssembleDense builds the full N x N Galerkin matrix: the upper
// triangle is integrated in parallel over cost-balanced row ranges, then
// mirrored (each entry is computed exactly once).
func (p *Problem) AssembleDense() *linalg.Dense {
	spec := p.Spec()
	return spec.AssembleDense()
}

// RHS builds the N x n right-hand-side matrix Phi: row i has the panel
// area in the column of its conductor (Galerkin testing of the unit
// potential).
func (p *Problem) RHS() *linalg.Dense {
	spec := p.Spec()
	return spec.RHS()
}

// Result is a completed piecewise-constant extraction (the pipeline's
// result type; SetupTime covers operator construction, Iterations is the
// total Krylov count across all conductor excitations, 0 for direct).
type Result = op.Result

// SolveDense assembles the dense system and solves it directly
// (equilibrated Cholesky with LU fallback, through the pipeline's direct
// path). It is O(N^2) memory and O(N^3) time: the "system solving
// bottleneck" the paper's introduction describes.
func (p *Problem) SolveDense() (*Result, error) {
	return p.SolvePipeline(op.Options{Backend: op.BackendDense, Direct: true})
}

// SolveIterative solves the system with preconditioned GMRES through an
// arbitrary matvec operator (dense, multipole-accelerated, or
// precorrected-FFT) via the unified pipeline: all conductor right-hand
// sides are solved concurrently on pooled workspaces, preconditioned
// with the operator's near-field blocks when it exposes them
// (block-Jacobi) and with the exact point-Jacobi diagonal otherwise. The
// operator's Apply must be safe for concurrent use (the fmm and pfft
// operators and DenseOp all are).
func (p *Problem) SolveIterative(a linalg.Matvec, tol float64) (*Result, error) {
	pl, err := op.NewWithOperator(p.Spec(), a, op.Options{Tol: tol})
	if err != nil {
		return nil, fmt.Errorf("pcbem: %w", err)
	}
	res, err := pl.Extract()
	if err != nil {
		return nil, fmt.Errorf("pcbem: %w", err)
	}
	return res, nil
}

// SolvePipeline solves the problem through the unified pipeline with
// explicit backend/preconditioner control (op.Options zero value:
// cost-model backend selection, automatic preconditioner, 1e-4
// tolerance).
func (p *Problem) SolvePipeline(opt op.Options) (*Result, error) {
	pl, err := op.New(p.Spec(), opt)
	if err != nil {
		return nil, fmt.Errorf("pcbem: %w", err)
	}
	res, err := pl.Extract()
	if err != nil {
		return nil, fmt.Errorf("pcbem: %w", err)
	}
	return res, nil
}

// DenseOp exposes the dense assembled matrix as a Matvec for testing the
// iterative path independently of the accelerated operators; above the
// linalg.DenseOpParCutoff size its matvec runs row-blocked on the
// problem's executor.
func (p *Problem) DenseOp() linalg.Matvec {
	return linalg.DenseOp{M: p.AssembleDense(), Exec: p.Par}
}
