package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"parbem/internal/batch"
	"parbem/internal/geom"
)

// Router is the thin coordinator mode of capxd (-route): it owns no
// engine and runs no solves. It decodes each /extract и /sweep request
// just far enough to compute the geometry family key the replicas'
// engines cache plans under (batch.FamilyKey), consistent-hashes that
// key over the replica set, and forwards the request to the owning
// replica — so every variant of a family lands on the replica whose
// warm plan, near-field and artifact caches already hold it, instead of
// each replica re-warming every family.
//
// Failover: when the owning replica is unreachable (transport error) or
// answers with a retryable status (429/5xx), the router walks the
// ring's successors with the client backoff between full rounds, so
// killing one replica mid-soak costs affinity, not availability.
// Non-retryable statuses (400/404/422) pass through unchanged — they
// would fail identically everywhere.
type Router struct {
	opt    RouterOptions
	limits Limits
	ring   ring
	client *http.Client
	logf   func(format string, args ...any)
	start  time.Time

	forwarded   atomic.Uint64
	failovers   atomic.Uint64
	unavailable atomic.Uint64
	badRequests atomic.Uint64
}

// RouterOptions configures a coordinator.
type RouterOptions struct {
	// Replicas are the replica base URLs (required, e.g.
	// "http://10.0.0.2:8437"). Order is irrelevant: placement comes
	// from the hash ring, so all coordinators with the same set agree.
	Replicas []string
	// Limits bound and validate incoming requests before forwarding
	// (zero value = defaults, matching the replicas').
	Limits Limits
	// Retry paces failover rounds over the ring (nil = DefaultRetry).
	Retry *RetryPolicy
	// Client optionally overrides the forwarding transport. The default
	// has no overall timeout: extracts legitimately run for minutes,
	// and the requester's context bounds each forward.
	Client *http.Client
	// Logf receives forwarding diagnostics (nil = discard).
	Logf func(format string, args ...any)
}

// vnodesPerReplica spreads each replica over the ring so family load
// balances within ~10% without a rebalancing pass.
const vnodesPerReplica = 64

// NewRouter creates a coordinator over the given replica set.
func NewRouter(opt RouterOptions) (*Router, error) {
	if len(opt.Replicas) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one replica")
	}
	replicas := make([]string, len(opt.Replicas))
	for i, r := range opt.Replicas {
		r = strings.TrimRight(r, "/")
		if r == "" {
			return nil, fmt.Errorf("serve: empty replica URL")
		}
		replicas[i] = r
	}
	rt := &Router{
		opt:    opt,
		limits: opt.Limits.withDefaults(),
		ring:   buildRing(replicas),
		client: opt.Client,
		logf:   opt.Logf,
		start:  time.Now(),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.logf == nil {
		rt.logf = func(string, ...any) {}
	}
	return rt, nil
}

// Handler returns the coordinator's HTTP routes (mirroring a replica's,
// so clients need not know which they are talking to).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /extract", rt.handleExtract)
	mux.HandleFunc("POST /sweep", rt.handleSweep)
	mux.HandleFunc("GET /jobs/{id}", rt.handleJob)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// handleExtract decodes enough to compute the family key, then forwards
// the buffered body to the ring owner.
func (rt *Router) handleExtract(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(r)
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	req, st, err := rt.limits.DecodeExtract(bytes.NewReader(body))
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	opt, err := PipelineOptions(req.Backend, req.Precond, req.Precision, req.Tol)
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	rt.forward(w, r, batch.FamilyKey(st, req.EdgeM, opt), "/extract", body, false)
}

// handleSweep routes a whole sweep by its first variant's family (a
// sweep IS a family — that is what makes affinity worth having);
// template sweeps carry no geometry and hash on the solve options.
func (rt *Router) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := rt.readBody(r)
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	req, sts, err := rt.limits.DecodeSweep(bytes.NewReader(body))
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	opt, err := PipelineOptions(req.Backend, req.Precond, req.Precision, req.Tol)
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, err)
		return
	}
	var key string
	if len(sts) > 0 {
		key = batch.FamilyKey(sts[0], req.EdgeM, opt)
	} else {
		key = batch.FamilyKey(&geom.Structure{}, req.EdgeM, opt) + "-template"
	}
	rt.forward(w, r, key, "/sweep", body, true)
}

// handleJob fans the lookup out over the replica set: job ids are
// replica-local and the router deliberately keeps no per-job state (a
// restarted router must not orphan live jobs).
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, replica := range rt.ring.replicas {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, replica+"/jobs/"+id, nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.logf("serve: router: jobs/%s on %s: %v", id, replica, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		relay(w, resp)
		return
	}
	writeError(w, &RequestError{Code: CodeNotFound, Message: fmt.Sprintf("job %q not found on any replica", id)})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "replicas": len(rt.ring.replicas)})
}

// RouterStats is the coordinator's GET /stats payload.
type RouterStats struct {
	UptimeSec   float64  `json:"uptime_sec"`
	Replicas    []string `json:"replicas"`
	Forwarded   uint64   `json:"forwarded"`
	Failovers   uint64   `json:"failovers"`
	Unavailable uint64   `json:"unavailable"`
	BadRequests uint64   `json:"bad_requests"`
}

// Stats snapshots the coordinator counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		UptimeSec:   time.Since(rt.start).Seconds(),
		Replicas:    rt.ring.replicas,
		Forwarded:   rt.forwarded.Load(),
		Failovers:   rt.failovers.Load(),
		Unavailable: rt.unavailable.Load(),
		BadRequests: rt.badRequests.Load(),
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	var b strings.Builder
	writeGauge(&b, "parbem_router_uptime_seconds", "Seconds since the router started.", st.UptimeSec)
	writeGauge(&b, "parbem_router_replicas", "Configured replica count.", float64(len(st.Replicas)))
	writeCounter(&b, "parbem_router_forwarded_total", "Requests forwarded to a replica.", st.Forwarded)
	writeCounter(&b, "parbem_router_failovers_total", "Forwards that left the owning replica for a ring successor.", st.Failovers)
	writeCounter(&b, "parbem_router_unavailable_total", "Requests that failed on every replica.", st.Unavailable)
	writeCounter(&b, "parbem_router_bad_requests_total", "Requests rejected at decode time.", st.BadRequests)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}

// readBody buffers the request body under the admission cap (the body
// must replay across failover attempts).
func (rt *Router) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.limits.MaxBodyBytes+1))
	if err != nil {
		return nil, badRequest("reading body: %v", err)
	}
	if int64(len(body)) > rt.limits.MaxBodyBytes {
		return nil, badRequest("body exceeds the %d-byte limit", rt.limits.MaxBodyBytes)
	}
	return body, nil
}

// forward posts body to the family's owning replica, walking the ring's
// successors (then further rounds, with backoff) on transport errors
// and retryable statuses. The first acceptable response relays to the
// client verbatim — for streaming endpoints the decision is made on the
// status line, before any payload byte is committed.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key, path string, body []byte, stream bool) {
	candidates := rt.ring.candidates(key)
	pol := rt.opt.Retry
	if pol == nil {
		pol = DefaultRetry
	}
	rounds := pol.MaxAttempts
	if rounds <= 0 {
		rounds = DefaultRetry.MaxAttempts
	}
	base, maxWait := pol.BaseDelay, pol.MaxDelay
	if base <= 0 {
		base = DefaultRetry.BaseDelay
	}
	if maxWait <= 0 {
		maxWait = DefaultRetry.MaxDelay
	}
	var lastResp *http.Response
	for round := 1; round <= rounds; round++ {
		for i, replica := range candidates {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, replica+path, bytes.NewReader(body))
			if err != nil {
				writeError(w, &RequestError{Code: CodeInternal, Message: err.Error()})
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if tenant := r.Header.Get("X-Tenant"); tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				rt.logf("serve: router: %s on %s: %v", path, replica, err)
				if i == 0 && round == 1 {
					rt.failovers.Add(1)
				}
				continue
			}
			if !retryableStatus(resp.StatusCode) {
				rt.forwarded.Add(1)
				if stream {
					relayStream(w, resp)
				} else {
					relay(w, resp)
				}
				return
			}
			// Retryable rejection: remember the most recent one so the
			// client sees a real replica answer if every round fails.
			if lastResp != nil {
				io.Copy(io.Discard, io.LimitReader(lastResp.Body, 4096))
				lastResp.Body.Close()
			}
			lastResp = resp
			if i == 0 && round == 1 {
				rt.failovers.Add(1)
			}
		}
		if round < rounds {
			wait, _ := backoffWait(base, maxWait, round, 0)
			select {
			case <-time.After(wait):
			case <-r.Context().Done():
				rt.unavailable.Add(1)
				writeError(w, &RequestError{Code: CodeInternal, Message: "request cancelled during failover"})
				return
			}
		}
	}
	rt.unavailable.Add(1)
	if lastResp != nil {
		relay(w, lastResp)
		return
	}
	writeError(w, &RequestError{Code: CodeInternal,
		Message: fmt.Sprintf("all %d replicas unreachable", len(candidates))})
}

// retryableStatus mirrors the client's retryable(): backpressure and
// server-side failures are worth another replica; everything else would
// fail identically anywhere.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// relay copies a replica response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyRelayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// relayStream is relay with per-chunk flushing so NDJSON sweep points
// reach the client as the replica emits them.
func relayStream(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyRelayHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func copyRelayHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// ring is a consistent-hash ring over the replica set: vnodesPerReplica
// points per replica, placement by fnv-1a of the family key.
type ring struct {
	replicas []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int32
}

func buildRing(replicas []string) ring {
	r := ring{replicas: replicas}
	r.points = make([]ringPoint, 0, len(replicas)*vnodesPerReplica)
	for i, rep := range replicas {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash:    fmix64(fnv64a(fmt.Sprintf("%s#%d", rep, v))),
				replica: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// candidates returns every replica ordered by ring walk from the key's
// position: the owner first, then each distinct successor — the
// failover order.
func (r *ring) candidates(key string) []string {
	h := fmix64(fnv64a(key))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.replicas))
	seen := make(map[int32]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

// owner returns the key's owning replica (diagnostics and tests).
func (r *ring) owner(key string) string { return r.candidates(key)[0] }

func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fmix64 is the murmur3 finalizer. Raw FNV-1a of vnode labels that
// differ only in a short suffix leaves the suffix bytes under-mixed —
// each replica's vnodes then cluster into a few tight arcs and the
// ring balances terribly. The finalizer's full avalanche restores a
// uniform spread.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
