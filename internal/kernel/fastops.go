package kernel

import "parbem/internal/fastmath"

// FastOps evaluates the closed-form integrals with the tabulated
// elementary functions of paper Section 4.2.3 (IEEE-754 mantissa-indexed
// log, tabulated atan). This is the acceleration technique the paper's
// implementation selects.
var FastOps = &MathOps{
	Log:   fastmath.Log,
	Atan:  fastmath.Atan,
	Atan2: fastmath.Atan2,
}

// FastConfig returns the default configuration with tabulated elementary
// functions.
func FastConfig() *Config {
	c := DefaultConfig()
	c.Ops = FastOps
	return c
}
