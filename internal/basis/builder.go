package basis

import (
	"math"
	"sort"

	"parbem/internal/geom"
)

// BuilderOptions tunes instantiable-basis generation.
type BuilderOptions struct {
	// MaxCoupleGap limits which facing face pairs receive induced basis
	// functions. Zero means automatic: 3x the median facing gap found in
	// the structure (nearer pairs dominate the induced charge; farther
	// pairs are represented well enough by face basis functions).
	MaxCoupleGap float64

	// ExtFactor and InFactor size the arch templates relative to the
	// facing gap h: the extension length is ExtFactor*h beyond the shadow
	// edge and the ingrowing length is InFactor*h inside it (clipped to
	// the available face). Defaults (2.0, 1.5) were calibrated against
	// the fine piecewise-constant solution of the elementary crossing
	// problem (see internal/extract and EXPERIMENTS.md).
	ExtFactor float64
	InFactor  float64

	// DecayFactor sets the arch profile decay length to DecayFactor*h.
	// Default 0.6.
	DecayFactor float64

	// MinShadowFrac skips induced bases whose shadow would cover less
	// than this fraction of the face's shorter edge (negligible overlap).
	MinShadowFrac float64

	// SeparateInduced splits each induced basis into independent shadow
	// and arch-pair functions (more degrees of freedom, larger N and a
	// correspondingly larger direct solve). The default (false) follows
	// the paper: one induced basis function per facing surface,
	// assembling the flat shadow template and its arch templates with
	// relative amplitudes fixed by the template library.
	SeparateInduced bool

	// ArchAmpFactor calibrates the library's arch-to-flat amplitude
	// ratio: R(h) = ArchAmpFactor * min(shadow edge)/h - 1. The default
	// 3.5 comes from the b(h)/a(h) fits of the extraction pipeline
	// (internal/extract; see EXPERIMENTS.md). Pairs whose ratio falls
	// outside the calibration's validity range ([0.5, 4]) automatically
	// use independent shadow/arch functions instead.
	ArchAmpFactor float64
}

// DefaultBuilderOptions returns the calibrated defaults.
func DefaultBuilderOptions() BuilderOptions {
	return BuilderOptions{
		ExtFactor:     2.0,
		InFactor:      1.5,
		DecayFactor:   0.6,
		MinShadowFrac: 0.02,
		ArchAmpFactor: 3.5,
	}
}

// facing is a detected facing-face pair: two parallel planes of different
// conductors looking at each other across gap H with a positive-area
// plan-view overlap.
type facing struct {
	loFace, hiFace geom.Rect // loFace.Offset < hiFace.Offset along Normal
	loCond, hiCond int
	overU, overV   geom.Interval // overlap in the faces' U/V axes
	h              float64
}

// Build generates the instantiable basis set for a Manhattan structure.
func Build(st *geom.Structure, opt BuilderOptions) *Set {
	if opt.ExtFactor == 0 {
		opt.ExtFactor = 2.0
	}
	if opt.InFactor == 0 {
		opt.InFactor = 1.5
	}
	if opt.DecayFactor == 0 {
		opt.DecayFactor = 0.6
	}
	if opt.MinShadowFrac == 0 {
		opt.MinShadowFrac = 0.02
	}
	if opt.ArchAmpFactor == 0 {
		opt.ArchAmpFactor = 3.5
	}

	s := &Set{NumConductors: st.NumConductors()}
	b := &builder{set: s, opt: opt}

	// Face basis functions, one per conductor face.
	for ci, c := range st.Conductors {
		for _, f := range c.Faces() {
			b.collect(ci, KindFace, Template{
				Support: f, Dir: VaryNone, Shape: FlatShape{}, Amplitude: 1,
			})
		}
	}

	// Facing-pair detection across conductor pairs.
	pairs := detectFacing(st)
	gap := opt.MaxCoupleGap
	if gap == 0 && len(pairs) > 0 {
		// Automatic coupling radius: 3x the median facing gap. The
		// median is robust to a few very tight gaps (e.g. via landing
		// clearances) that would otherwise shrink the radius and drop
		// the real crossings.
		var hs []float64
		for _, p := range pairs {
			if p.h > 0 {
				hs = append(hs, p.h)
			}
		}
		if len(hs) > 0 {
			sort.Float64s(hs)
			gap = 3 * hs[len(hs)/2]
		}
	}
	// Collect the shadows that land on each physical face, so that arch
	// extents can be clipped at the midpoint toward neighboring shadows:
	// adjacent crossings on a dense bus otherwise grow overlapping
	// arches whose sum is nearly dependent with the face basis function
	// (ill-conditioning the Gram matrix).
	type placement struct {
		face geom.Rect
		cond int
		p    facing
	}
	var placements []placement
	shadowsByFace := map[faceKey][]geom.Rect{}
	for _, p := range pairs {
		// h == 0 means touching (shorted) conductors: no gap to induce
		// charge across, and degenerate arch geometry; skip.
		if p.h <= 0 || p.h > gap {
			continue
		}
		for _, side := range [2]placement{
			{face: p.loFace, cond: p.loCond, p: p},
			{face: p.hiFace, cond: p.hiCond, p: p},
		} {
			placements = append(placements, side)
			sh := side.face
			sh.U = p.overU
			sh.V = p.overV
			shadowsByFace[keyOf(side.face, side.cond)] = append(
				shadowsByFace[keyOf(side.face, side.cond)], sh)
		}
	}
	for _, pl := range placements {
		b.addInduced(pl.face, pl.cond, pl.p, shadowsByFace[keyOf(pl.face, pl.cond)])
	}
	b.emitInterleaved()
	return s
}

// faceKey identifies a physical conductor face.
type faceKey struct {
	cond   int
	normal geom.Axis
	offset float64
	u0, u1 float64
	v0, v1 float64
}

func keyOf(f geom.Rect, cond int) faceKey {
	return faceKey{cond: cond, normal: f.Normal, offset: f.Offset,
		u0: f.U.Lo, u1: f.U.Hi, v0: f.V.Lo, v1: f.V.Hi}
}

// clipWindow returns the allowed arch window around shadow interval sh
// along one direction, limited by the face interval and by the midpoint of
// the gap toward the nearest neighboring shadow on the same face (in that
// direction, considering only neighbors whose cross-direction interval
// overlaps).
func clipWindow(sh, face geom.Interval, neighbors []geom.Interval) geom.Interval {
	lo := face.Lo
	hi := face.Hi
	for _, nb := range neighbors {
		if nb.Lo >= sh.Hi { // neighbor to the right
			mid := 0.5 * (sh.Hi + nb.Lo)
			if mid < hi {
				hi = mid
			}
		}
		if nb.Hi <= sh.Lo { // neighbor to the left
			mid := 0.5 * (nb.Hi + sh.Lo)
			if mid > lo {
				lo = mid
			}
		}
	}
	return geom.Interval{Lo: lo, Hi: hi}
}

type pendingFunc struct {
	cond int
	kind Kind
	tpls []Template
}

type builder struct {
	set     *Set
	opt     BuilderOptions
	pending [3][]pendingFunc // indexed by Kind
}

// collect queues a basis function for emission.
func (b *builder) collect(cond int, kind Kind, tpls ...Template) {
	b.pending[kind] = append(b.pending[kind], pendingFunc{cond: cond, kind: kind, tpls: tpls})
}

// emitInterleaved appends the pending functions to the set, riffling the
// three kinds proportionally. Basis-function order is free (only the
// template grouping per function matters for the owner array), and
// interleaving cheap flat-template functions with expensive shaped ones
// flattens the per-column cost profile of P~, which is what makes the
// paper's equal-count k-partition "sufficiently balanced" (Section 3).
func (b *builder) emitInterleaved() {
	var total, emitted [3]int
	remaining := 0
	for k := range b.pending {
		total[k] = len(b.pending[k])
		remaining += total[k]
	}
	for ; remaining > 0; remaining-- {
		// Pick the kind that is most behind its proportional pace.
		best, bestLag := -1, -1.0
		for k := range b.pending {
			if emitted[k] >= total[k] {
				continue
			}
			lag := float64(total[k]-emitted[k]) / float64(total[k])
			if lag > bestLag {
				best, bestLag = k, lag
			}
		}
		pf := b.pending[best][emitted[best]]
		emitted[best]++
		b.appendFunction(pf)
	}
}

// appendFunction appends one basis function and its templates to the set.
func (b *builder) appendFunction(pf pendingFunc) {
	lo := len(b.set.Templates)
	fi := len(b.set.Functions)
	b.set.Templates = append(b.set.Templates, pf.tpls...)
	for range pf.tpls {
		b.set.Owner = append(b.set.Owner, fi)
	}
	b.set.Functions = append(b.set.Functions, Function{
		Conductor: pf.cond, TplLo: lo, TplHi: len(b.set.Templates), Kind: pf.kind,
	})
}

// detectFacing finds all facing face pairs between boxes of different
// conductors: along each axis, the upper face of the lower box and the
// lower face of the upper box, if their plan extents overlap with positive
// area.
func detectFacing(st *geom.Structure) []facing {
	var out []facing
	for ci := 0; ci < len(st.Conductors); ci++ {
		for cj := ci + 1; cj < len(st.Conductors); cj++ {
			for _, bi := range st.Conductors[ci].Boxes {
				for _, bj := range st.Conductors[cj].Boxes {
					for ax := geom.X; ax <= geom.Z; ax++ {
						if f, ok := facingAlong(bi, bj, ci, cj, ax); ok {
							out = append(out, f)
						} else if f, ok := facingAlong(bj, bi, cj, ci, ax); ok {
							out = append(out, f)
						}
					}
				}
			}
		}
	}
	// Deterministic order regardless of detection order.
	sort.Slice(out, func(a, b int) bool {
		fa, fb := out[a], out[b]
		if fa.h != fb.h {
			return fa.h < fb.h
		}
		if fa.loCond != fb.loCond {
			return fa.loCond < fb.loCond
		}
		return fa.hiCond < fb.hiCond
	})
	return out
}

// facingAlong tests whether lower box lo sits below upper box hi along ax
// with overlapping plan extents, returning the facing pair.
func facingAlong(lo, hi geom.Box, loCond, hiCond int, ax geom.Axis) (facing, bool) {
	top := lo.Extent(ax).Hi
	bot := hi.Extent(ax).Lo
	if top > bot {
		return facing{}, false
	}
	// Build the two face rectangles.
	var loFace, hiFace geom.Rect
	for _, f := range lo.Faces() {
		if f.Normal == ax && f.Offset == top {
			loFace = f
		}
	}
	for _, f := range hi.Faces() {
		if f.Normal == ax && f.Offset == bot {
			hiFace = f
		}
	}
	ou, okU := loFace.U.Intersect(hiFace.U)
	ov, okV := loFace.V.Intersect(hiFace.V)
	if !okU || !okV || ou.Len() <= 0 || ov.Len() <= 0 {
		return facing{}, false
	}
	return facing{
		loFace: loFace, hiFace: hiFace,
		loCond: loCond, hiCond: hiCond,
		overU: ou, overV: ov,
		h: bot - top,
	}, true
}

// addInduced instantiates the induced basis function(s) on one face of a
// facing pair: a flat template over the shadow (unless the shadow covers
// the whole face, which would duplicate the face basis function) plus
// reflected arch templates along each direction in which the face extends
// beyond the shadow (paper Figure 2).
//
// In the default merged mode, the flat and arch templates are assembled
// into a single basis function with the arch-to-flat amplitude ratio fixed
// by the template library's calibration (paper Section 2.2: templates are
// assembled "with proper parameter vectors p"); in SeparateInduced mode,
// the shadow and each direction's arch pair become independent functions.
func (b *builder) addInduced(face geom.Rect, cond int, p facing, faceShadows []geom.Rect) {
	shadow := face
	shadow.U = p.overU
	shadow.V = p.overV

	minEdge := math.Min(face.U.Len(), face.V.Len())
	if math.Min(shadow.U.Len(), shadow.V.Len()) < b.opt.MinShadowFrac*minEdge {
		return
	}

	covers := shadow.U.Len() >= face.U.Len()-1e-15*minEdge &&
		shadow.V.Len() >= face.V.Len()-1e-15*minEdge

	// Arch windows: clipped at midpoints toward neighboring shadows.
	var nbU, nbV []geom.Interval
	for _, other := range faceShadows {
		if other == shadow {
			continue
		}
		if other.V.Overlaps(shadow.V) {
			nbU = append(nbU, other.U)
		}
		if other.U.Overlaps(shadow.U) {
			nbV = append(nbV, other.V)
		}
	}
	winU := clipWindow(shadow.U, face.U, nbU)
	winV := clipWindow(shadow.V, face.V, nbV)

	archU := b.archTemplates(winU, shadow, p.h, true)
	archV := b.archTemplates(winV, shadow, p.h, false)

	if b.opt.SeparateInduced {
		if !covers {
			b.collect(cond, KindShadow, Template{
				Support: shadow, Dir: VaryNone, Shape: FlatShape{}, Amplitude: 1,
			})
		}
		if len(archU) > 0 {
			b.collect(cond, KindArchPair, archU...)
		}
		if len(archV) > 0 {
			b.collect(cond, KindArchPair, archV...)
		}
		return
	}

	arches := append(archU, archV...)
	if covers {
		// No shadow template: the arch amplitudes are relative to each
		// other only (equal, as instantiated).
		if len(arches) > 0 {
			b.collect(cond, KindArchPair, arches...)
		}
		return
	}
	// Merged: shadow flat at amplitude 1, arches at the library ratio
	// R(h) = ArchAmpFactor * min(shadow edge)/h - 1 (from the b(h)/a(h)
	// fits of the extraction pipeline). The calibration only covers
	// ordinary crossing geometries (R in roughly [0.5, 4]); outside that
	// range — extreme aspect ratios such as via landing gaps — the pair
	// falls back to independent shadow/arch functions so the solver
	// determines the amplitudes itself.
	ratio := b.opt.ArchAmpFactor*math.Min(shadow.U.Len(), shadow.V.Len())/p.h - 1
	if len(arches) == 0 || ratio < 0.5 || ratio > 4 {
		b.collect(cond, KindShadow, Template{
			Support: shadow, Dir: VaryNone, Shape: FlatShape{}, Amplitude: 1,
		})
		if len(archU) > 0 {
			b.collect(cond, KindArchPair, archU...)
		}
		if len(archV) > 0 {
			b.collect(cond, KindArchPair, archV...)
		}
		return
	}
	tpls := make([]Template, 0, 1+len(arches))
	tpls = append(tpls, Template{
		Support: shadow, Dir: VaryNone, Shape: FlatShape{}, Amplitude: 1,
	})
	for _, a := range arches {
		a.Amplitude = ratio
		tpls = append(tpls, a)
	}
	b.collect(cond, KindShadow, tpls...)
}

// archTemplates creates the reflected arch templates flanking the shadow
// along the chosen direction (alongU selects the U axis), within the
// allowed window win (the face clipped at midpoints toward neighboring
// shadows). Each side with available extension contributes one arch
// template (the reflected pair of Figure 2), at unit amplitude.
func (b *builder) archTemplates(win geom.Interval, shadow geom.Rect, h float64, alongU bool) []Template {
	shadowIv := shadow.V
	if alongU {
		shadowIv = shadow.U
	}
	le := b.opt.ExtFactor * h
	li := math.Min(b.opt.InFactor*h, shadowIv.Len()/2)
	decay := b.opt.DecayFactor * h

	minExt := 0.05 * h
	var tpls []Template
	// Left arch: extension toward decreasing coordinate.
	if ext := shadowIv.Lo - win.Lo; ext > minExt {
		lo := math.Max(win.Lo, shadowIv.Lo-le)
		hi := shadowIv.Lo + li
		tpls = append(tpls, archTemplate(shadow, alongU, lo, hi, shadowIv.Lo, decay))
	}
	// Right arch: extension toward increasing coordinate.
	if ext := win.Hi - shadowIv.Hi; ext > minExt {
		lo := shadowIv.Hi - li
		hi := math.Min(win.Hi, shadowIv.Hi+le)
		tpls = append(tpls, archTemplate(shadow, alongU, lo, hi, shadowIv.Hi, decay))
	}
	return tpls
}

// archTemplate builds one arch template spanning [lo, hi] along the varying
// direction (peak at edge, decay length decay in physical units), covering
// the shadow extent in the perpendicular direction.
func archTemplate(shadow geom.Rect, alongU bool, lo, hi, edge, decay float64) Template {
	sup := shadow
	if alongU {
		sup.U = geom.Interval{Lo: lo, Hi: hi}
		sup.V = shadow.V
	} else {
		sup.V = geom.Interval{Lo: lo, Hi: hi}
		sup.U = shadow.U
	}
	ln := hi - lo
	lambda := decay / ln
	if lambda < 1e-3 {
		lambda = 1e-3
	}
	shape := ArchShape{
		EdgePos:   (edge - lo) / ln,
		LambdaIn:  lambda,
		LambdaOut: lambda,
	}
	dir := VaryV
	if alongU {
		dir = VaryU
	}
	return Template{Support: sup, Dir: dir, Shape: shape, Amplitude: 1}
}
