package pfft

import (
	"testing"

	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
)

// busPanels panelizes the default bus structure. (The tests used to
// borrow pcbem.Problem for this, but pcbem now sits above this package
// in the import graph, on the unified pipeline.)
func busPanels(tb testing.TB, m, n int, edge float64) []geom.Panel {
	tb.Helper()
	st := geom.DefaultBus(m, n).Build()
	panels := st.Panelize(edge)
	if len(panels) == 0 {
		tb.Fatal("no panels generated")
	}
	return panels
}

// denseRef assembles the scaled dense Galerkin reference matrix for the
// panels (the exact operator the pFFT matvec approximates).
func denseRef(panels []geom.Panel) *linalg.Dense {
	cfg := kernel.DefaultConfig()
	n := len(panels)
	m := linalg.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel.Scale(kernel.RectGalerkin(cfg, panels[i].Rect, panels[j].Rect), kernel.Eps0)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}
