// Benchtables regenerates the paper's Tables 1-3 on the local machine.
//
//	benchtables -table 1    integration-acceleration comparison (Table 1)
//	benchtables -table 2    instantiable vs FASTCAP-analog (Table 2)
//	benchtables -table 3    parallel scalability of the bus (Table 3)
//	benchtables -table 0    all tables
//
// Absolute numbers differ from the paper (different host, Go vs C++, and
// simulated substrates); the comparisons that must hold are the relative
// ones: the ranking of acceleration techniques, the instantiable-basis
// speedup and memory advantage, and the near-linear parallel scaling.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"parbem"
	"parbem/internal/fastmath"
	"parbem/internal/kernel"
	"parbem/internal/ratfit"
	"parbem/internal/solver"
	"parbem/internal/tabulate"
)

func main() {
	table := flag.Int("table", 0, "which table to regenerate (1, 2, 3; 0 = all)")
	busM := flag.Int("bus", 24, "bus size for table 3 (m = n)")
	reps := flag.Int("reps", 3, "repetitions (minimum time reported)")
	flag.Parse()

	switch *table {
	case 1:
		table1()
	case 2:
		table2()
	case 3:
		table3(*busM, *reps)
	case 0:
		table1()
		fmt.Println()
		table2()
		fmt.Println()
		table3(*busM, *reps)
	default:
		log.Fatalf("unknown table %d", *table)
	}
}

// table1 compares the four integration acceleration techniques of paper
// Section 4.2 on the simplified 2-D expression (Eq. 13), like paper
// Table 1.
func table1() {
	fmt.Println("=== Table 1: integration acceleration techniques (2-D expression, Eq. 13) ===")
	// As in paper Section 4.3, the comparison fixes one template geometry
	// (a unit source rectangle) and treats the 2-D expression as a
	// function of the in-plane evaluation point (x, y). Probes stay
	// outside the rectangle and within the approximation distance.
	const w, h = 1.0, 1.0
	const lo, hi = -2.0, 3.0
	type probe struct{ x, y float64 }
	var probes []probe
	for i := 0; len(probes) < 512; i++ {
		x := lo + math.Mod(math.Sqrt2*float64(i+1), 1)*(hi-lo)
		y := lo + math.Mod(1.7320508075688772*float64(i+1), 1)*(hi-lo)
		// Keep clear of the rectangle edges where the integrand kinks.
		if x > -0.2 && x < w+0.2 && y > -0.2 && y < h+0.2 {
			continue
		}
		probes = append(probes, probe{x, y})
	}

	analytic := func(p probe) float64 {
		return kernel.RectPotential(kernel.StdOps, 0, w, 0, h, p.x, p.y, 0)
	}

	// Build the accelerated evaluators (setup time excluded, as in the
	// paper: tables are built once per template class).
	direct := tabulate.Build([]tabulate.Dim{{Min: lo, Max: hi, N: 320}, {Min: lo, Max: hi, N: 320}},
		func(q []float64) float64 {
			return kernel.RectPotential(kernel.StdOps, 0, w, 0, h, q[0], q[1], 0)
		})
	indef := tabulate.Build([]tabulate.Dim{{Min: lo - w, Max: hi, N: 340}, {Min: lo - h, Max: hi, N: 340}},
		func(q []float64) float64 {
			return kernel.F2(kernel.StdOps, q[0], q[1], 0)
		})
	indefEval := func(p probe) float64 {
		return indef.Eval2(p.x, p.y) - indef.Eval2(p.x-w, p.y) -
			indef.Eval2(p.x, p.y-h) + indef.Eval2(p.x-w, p.y-h)
	}
	// Piecewise rational fit: per-cell training keeps the denominator
	// sign-definite (the paper's "choice of training samples").
	rat, err := ratfit.FitGrid(func(q []float64) float64 {
		return kernel.RectPotential(kernel.StdOps, 0, w, 0, h, q[0], q[1], 0)
	}, []float64{lo, lo}, []float64{hi, hi}, []int{5, 5}, 200, 3, 3)
	if err != nil {
		log.Fatal(err)
	}

	techniques := []struct {
		name string
		eval func(probe) float64
		mem  int
	}{
		{"0. original analytical expr.", analytic, 0},
		{"1. direct tabulation", func(p probe) float64 {
			return direct.Eval2(p.x, p.y)
		}, direct.Bytes()},
		{"2. tabulation of indef. int.", indefEval, indef.Bytes()},
		{"3. tabulation of exp. routines", func(p probe) float64 {
			return kernel.RectPotential(kernel.FastOps, 0, w, 0, h, p.x, p.y, 0)
		}, fastmath.TableBytes()},
		{"4. rational fitting", func(p probe) float64 {
			return rat.Eval(p.x, p.y)
		}, rat.Bytes()},
	}

	// Time each technique and measure its max relative error.
	var baseNs float64
	fmt.Printf("%-33s %10s %9s %10s %8s\n", "technique", "time", "speedup", "memory", "max err")
	for ti, tech := range techniques {
		// Warm up + error measurement.
		var maxErr float64
		for _, p := range probes {
			got := tech.eval(p)
			want := analytic(p)
			if rel := math.Abs(got-want) / math.Abs(want); rel > maxErr {
				maxErr = rel
			}
		}
		const loops = 200
		t0 := time.Now()
		var sink float64
		for l := 0; l < loops; l++ {
			for _, p := range probes {
				sink += tech.eval(p)
			}
		}
		ns := float64(time.Since(t0).Nanoseconds()) / float64(loops*len(probes))
		_ = sink
		if ti == 0 {
			baseNs = ns
		}
		fmt.Printf("%-33s %8.0fns %8.2fx %9.1fKB %7.2f%%\n",
			tech.name, ns, baseNs/ns, float64(tech.mem)/1024, 100*maxErr)
	}
	fmt.Println("\npaper: 280/136/240/128/224 ns -> 1.00/2.06/1.16/2.20/1.24x; 0/1.5/2.3/2.0/~0 MB")
}

// table2 reruns the Table 2 experiment: instantiable basis (with and
// without acceleration) versus the FASTCAP-analog, with accuracy against a
// refined reference.
func table2() {
	fmt.Println("=== Table 2: transistor interconnect (instantiable vs FASTCAP-analog) ===")
	st := parbem.NewInterconnect().Build()

	ref, err := parbem.ExtractReference(st, 0.3e-6)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	fc, err := parbem.ExtractFastCapLike(st, 0.4e-6, parbem.FastCapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fcTime := time.Since(t0)

	std, err := parbem.Extract(st, parbem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := parbem.Extract(st, parbem.Options{Kernel: parbem.FastKernelConfig()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s %10s %8s\n", "method", "setup", "total", "memory", "error")
	row := func(name string, setup, total time.Duration, mem int, e float64) {
		fmt.Printf("%-28s %12v %12v %8.0fKB %7.2f%%\n",
			name, setup.Round(time.Millisecond), total.Round(time.Millisecond),
			float64(mem)/1024, 100*e)
	}
	row("FASTCAP-analog", fcTime, fcTime, ref.NumPanels*8*40, parbem.CapError(fc.C, ref.C))
	row("instantiable w/o accel", std.Timing.Setup, std.Timing.Total,
		std.MatrixBytes, parbem.CapError(std.C, ref.C))
	row("instantiable w/ accel", fast.Timing.Setup, fast.Timing.Total,
		fast.MatrixBytes, parbem.CapError(fast.C, ref.C))
	fmt.Printf("\nsetup improvement: %.0f%%   speedup vs FASTCAP-analog: %.1fx   memory ratio: %.1fx\n",
		100*(1-float64(fast.Timing.Setup)/float64(std.Timing.Setup)),
		float64(fcTime)/float64(fast.Timing.Total),
		float64(ref.NumPanels*8*40)/float64(fast.MatrixBytes))
	fmt.Println("paper: setup 94.1 -> 50.7 ms (86% improvement in their breakdown), total 340 -> 54.4 ms (6.2x), memory 24 MB -> 2.5 MB")
}

// table3 measures the parallel scalability of the bus structure on both
// backends (paper Table 3).
func table3(busM, reps int) {
	fmt.Printf("=== Table 3: %dx%d bus parallel performance ===\n", busM, busM)
	st := parbem.NewBus(busM, busM).Build()

	best := func(backend solver.Backend, d int) time.Duration {
		min := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			res, err := parbem.Extract(st, parbem.Options{Backend: backend, Workers: d})
			if err != nil {
				log.Fatal(err)
			}
			if res.Timing.Total < min {
				min = res.Timing.Total
			}
		}
		return min
	}

	serial := best(parbem.Serial, 1)
	fmt.Printf("\nshared-memory system (paper: 40.5s/21.7s/11.1s -> 93%%/91%% eff.)\n")
	fmt.Printf("%4s %12s %9s %6s\n", "D", "time", "speedup", "eff.")
	fmt.Printf("%4d %12v %8.2fx %5.0f%%\n", 1, serial.Round(time.Millisecond), 1.0, 100.0)
	for _, d := range []int{2, 4} {
		td := best(parbem.SharedMem, d)
		s := float64(serial) / float64(td)
		fmt.Printf("%4d %12v %8.2fx %5.0f%%\n", d, td.Round(time.Millisecond), s, 100*s/float64(d))
	}

	fmt.Printf("\ndistributed-memory system (paper: 44.1s ... 4.95s at 10 -> 89%% eff.)\n")
	fmt.Printf("%4s %12s %9s %6s\n", "D", "time", "speedup", "eff.")
	fmt.Printf("%4d %12v %8.2fx %5.0f%%\n", 1, serial.Round(time.Millisecond), 1.0, 100.0)
	for _, d := range []int{2, 4, 8, 10} {
		td := best(parbem.Distributed, d)
		s := float64(serial) / float64(td)
		fmt.Printf("%4d %12v %8.2fx %5.0f%%\n", d, td.Round(time.Millisecond), s, 100*s/float64(d))
	}
}
