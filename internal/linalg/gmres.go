package linalg

import (
	"errors"
	"math"
)

// Matvec abstracts y = A*x for iterative solvers; implementations include
// dense matrices, the multipole-accelerated operator, and the
// precorrected-FFT operator.
type Matvec interface {
	// Apply computes dst = A * x; dst and x never alias.
	Apply(dst, x []float64)
	// Dim returns the operator's (square) dimension.
	Dim() int
}

// DenseOp adapts a Dense matrix to the Matvec interface.
type DenseOp struct{ M *Dense }

// Apply implements Matvec.
func (d DenseOp) Apply(dst, x []float64) { d.M.MulVec(dst, x) }

// Dim implements Matvec.
func (d DenseOp) Dim() int { return d.M.Rows }

// GMRESOptions configures the restarted GMRES solver.
type GMRESOptions struct {
	Tol     float64                // relative residual tolerance (default 1e-6)
	Restart int                    // Krylov subspace size before restart (default 50)
	MaxIter int                    // total iteration cap (default 10 * Dim)
	Precond func(dst, r []float64) // optional right preconditioner M^{-1}
}

// GMRESResult reports convergence statistics.
type GMRESResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// ErrGMRESBreakdown indicates an unexpected zero in the Arnoldi process.
var ErrGMRESBreakdown = errors.New("linalg: GMRES breakdown")

// GMRES solves A x = b with restarted GMRES(m), writing the solution into
// x (which also provides the initial guess).
func GMRES(a Matvec, x, b []float64, opt GMRESOptions) (GMRESResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return GMRESResult{}, errors.New("linalg: GMRES dimension mismatch")
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.Restart == 0 {
		opt.Restart = 50
	}
	if opt.Restart > n {
		opt.Restart = n
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return GMRESResult{Converged: true}, nil
	}

	m := opt.Restart
	// Arnoldi basis (m+1 vectors) and Hessenberg in Givens-reduced form.
	v := make([][]float64, m+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := NewDense(m+1, m)
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	r := make([]float64, n)
	w := make([]float64, n)
	z := make([]float64, n)

	total := 0
	for {
		// r = b - A x.
		a.Apply(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := Norm2(r)
		rel := beta / bnorm
		if rel <= opt.Tol {
			return GMRESResult{Iterations: total, Residual: rel, Converged: true}, nil
		}
		if total >= opt.MaxIter {
			return GMRESResult{Iterations: total, Residual: rel, Converged: false}, nil
		}
		copy(v[0], r)
		Scal(1/beta, v[0])
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && total < opt.MaxIter; k++ {
			total++
			// w = A M^{-1} v_k.
			src := v[k]
			if opt.Precond != nil {
				opt.Precond(z, v[k])
				src = z
			}
			a.Apply(w, src)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				hik := Dot(w, v[i])
				h.Set(i, k, hik)
				Axpy(-hik, v[i], w)
			}
			wn := Norm2(w)
			h.Set(k+1, k, wn)
			if wn > 0 {
				copy(v[k+1], w)
				Scal(1/wn, v[k+1])
			}
			// Apply previous Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h.At(i, k) + sn[i]*h.At(i+1, k)
				h.Set(i+1, k, -sn[i]*h.At(i, k)+cs[i]*h.At(i+1, k))
				h.Set(i, k, t)
			}
			// New rotation to annihilate h(k+1, k).
			hk, hk1 := h.At(k, k), h.At(k+1, k)
			d := math.Hypot(hk, hk1)
			if d == 0 {
				return GMRESResult{Iterations: total}, ErrGMRESBreakdown
			}
			cs[k], sn[k] = hk/d, hk1/d
			h.Set(k, k, d)
			h.Set(k+1, k, 0)
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]
			rel = math.Abs(g[k+1]) / bnorm
			if rel <= opt.Tol {
				k++
				break
			}
		}
		// Solve the k x k triangular system and update x.
		yk := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h.At(i, j) * yk[j]
			}
			yk[i] = s / h.At(i, i)
		}
		// x += M^{-1} V y.
		for i := range w {
			w[i] = 0
		}
		for j := 0; j < k; j++ {
			Axpy(yk[j], v[j], w)
		}
		if opt.Precond != nil {
			opt.Precond(z, w)
			copy(w, z)
		}
		for i := range x {
			x[i] += w[i]
		}
		if rel <= opt.Tol {
			// Recompute the true residual for the report.
			a.Apply(r, x)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			rel = Norm2(r) / bnorm
			return GMRESResult{Iterations: total, Residual: rel, Converged: rel <= opt.Tol*10}, nil
		}
	}
}
