package par

// Allocation-regression guard: the fillbench benchmarks document that the
// integration hot path (assembly.Integrator inside Fill) is
// allocation-free; this test enforces the invariant with
// testing.AllocsPerRun so a regression fails CI instead of only showing
// up in benchmark numbers.

import (
	"testing"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/quad"
)

func TestTemplatePairAllocationFree(t *testing.T) {
	st := geom.DefaultBus(4, 4).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()

	// Warm the global Gauss-rule cache: rule construction is a one-time
	// setup cost, not part of the steady-state hot path.
	for n := 1; n <= quad.MaxOrder; n++ {
		quad.Gauss(n)
	}

	// Sweep a deterministic sample of template pairs covering every
	// dispatch class (far, mid, flat-flat, strip, same-axis, cross-axis,
	// generic) and require zero allocations for each.
	m := set.M()
	pairs := 0
	for i := 0; i < m; i += 7 {
		for j := i; j < m; j += 11 {
			ti, tj := &set.Templates[i], &set.Templates[j]
			if allocs := testing.AllocsPerRun(10, func() {
				in.TemplatePair(ti, tj)
			}); allocs != 0 {
				t.Fatalf("TemplatePair(%d, %d) allocates %.0f objects per call", i, j, allocs)
			}
			pairs++
		}
	}
	if pairs < 50 {
		t.Fatalf("only %d pairs sampled; widen the sweep", pairs)
	}
}

// TestFillSteadyStateAllocs bounds the allocations of a whole Fill call:
// everything allocated is per-chunk bookkeeping (partial slabs, scheduler
// deques), independent of the k-range size. The bound is deliberately
// generous; the point is that the integration inner loop contributes
// nothing.
func TestFillSteadyStateAllocs(t *testing.T) {
	st := geom.DefaultBus(3, 3).Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	opt := Options{Workers: 2}
	Fill(set, in, opt) // warm rule caches and partition code paths

	allocs := testing.AllocsPerRun(3, func() {
		Fill(set, in, opt)
	})
	// 2 workers x 16 chunks/worker: slabs + deques + scheduler state is
	// a few hundred objects; the ~58k pair integrals must add zero.
	if allocs > 2000 {
		t.Fatalf("Fill allocates %.0f objects per call; integration hot path is no longer allocation-free", allocs)
	}
}
