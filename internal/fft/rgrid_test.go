package fft

import (
	"math"
	"math/rand"
	"testing"

	"parbem/internal/sched"
)

// fillRandReal fills an RGrid3's real samples (the padded spectral
// slots stay zero) and mirrors them into a c2c reference grid.
func fillRandReal(rng *rand.Rand, g *RGrid3, ref *Grid3) {
	for ix := 0; ix < g.Nx; ix++ {
		for iy := 0; iy < g.Ny; iy++ {
			for iz := 0; iz < g.Nz; iz++ {
				v := rng.NormFloat64()
				g.Data[g.RIdx(ix, iy, iz)] = v
				if ref != nil {
					ref.Data[ref.Idx(ix, iy, iz)] = complex(v, 0)
				}
			}
		}
	}
}

var rgridDims = [][3]int{
	{1, 1, 2}, {1, 1, 8}, {2, 2, 2}, {4, 4, 4}, {8, 4, 16}, {2, 8, 4}, {16, 2, 2},
}

// TestRGrid3SpectrumMatchesC2C pins the half spectrum to the full c2c
// transform of the same real data: bin (ix, iy, k), k <= Nz/2, must
// match the full spectrum exactly up to rounding.
func TestRGrid3SpectrumMatchesC2C(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range rgridDims {
		g := NewRGrid3(dim[0], dim[1], dim[2])
		ref := NewGrid3(dim[0], dim[1], dim[2])
		fillRandReal(rng, g, ref)
		g.ForwardReal()
		ref.Forward3()
		for ix := 0; ix < g.Nx; ix++ {
			for iy := 0; iy < g.Ny; iy++ {
				for k := 0; k < g.Hz; k++ {
					re := g.Data[g.RIdx(ix, iy, 2*k)]
					im := g.Data[g.RIdx(ix, iy, 2*k+1)]
					want := ref.Data[ref.Idx(ix, iy, k)]
					if math.Abs(re-real(want)) > 1e-11 || math.Abs(im-imag(want)) > 1e-11 {
						t.Fatalf("dims %v bin (%d,%d,%d): (%g,%g) want %v",
							dim, ix, iy, k, re, im, want)
					}
				}
			}
		}
	}
}

// TestRGrid3ConjugateSymmetry verifies the invariant the half spectrum
// relies on: for real input the full-spectrum bin (-ix, -iy, -k) is
// the conjugate of bin (ix, iy, k), so the dropped z half is exactly
// the conjugate mirror of the stored half (and the self-conjugate bins
// like (0,0,0) are forced real).
func TestRGrid3ConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := NewRGrid3(4, 8, 16)
	ref := NewGrid3(4, 8, 16)
	fillRandReal(rng, g, ref)
	g.ForwardReal()
	ref.Forward3()
	mod := func(i, n int) int { return ((i % n) + n) % n }
	for ix := 0; ix < g.Nx; ix++ {
		for iy := 0; iy < g.Ny; iy++ {
			for k := 0; k < g.Hz; k++ {
				re := g.Data[g.RIdx(ix, iy, 2*k)]
				im := g.Data[g.RIdx(ix, iy, 2*k+1)]
				mirror := ref.Data[ref.Idx(mod(-ix, g.Nx), mod(-iy, g.Ny), mod(-k, g.Nz))]
				if math.Abs(re-real(mirror)) > 1e-11 || math.Abs(im+imag(mirror)) > 1e-11 {
					t.Fatalf("conjugate symmetry broken at (%d,%d,%d): (%g,%g) vs mirror %v",
						ix, iy, k, re, im, mirror)
				}
			}
		}
	}
}

// TestRGrid3Roundtrip pins ForwardReal+InverseReal to the identity.
func TestRGrid3Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dim := range rgridDims {
		g := NewRGrid3(dim[0], dim[1], dim[2])
		fillRandReal(rng, g, nil)
		orig := append([]float64(nil), g.Data...)
		g.ForwardReal()
		g.InverseReal()
		for ix := 0; ix < g.Nx; ix++ {
			for iy := 0; iy < g.Ny; iy++ {
				for iz := 0; iz < g.Nz; iz++ {
					i := g.RIdx(ix, iy, iz)
					if math.Abs(g.Data[i]-orig[i]) > 1e-12 {
						t.Fatalf("dims %v roundtrip[%d,%d,%d] = %g want %g",
							dim, ix, iy, iz, g.Data[i], orig[i])
					}
				}
			}
		}
	}
}

// TestRGrid3ConvolveMatchesC2C is the headline property test: the
// fused r2c convolution must match the existing c2c Grid3 path to
// 1e-12 on random real grids and kernels.
func TestRGrid3ConvolveMatchesC2C(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dim := range rgridDims {
		g := NewRGrid3(dim[0], dim[1], dim[2])
		kh := NewRGrid3(dim[0], dim[1], dim[2])
		cg := NewGrid3(dim[0], dim[1], dim[2])
		ckh := NewGrid3(dim[0], dim[1], dim[2])
		fillRandReal(rng, g, cg)
		fillRandReal(rng, kh, ckh)
		kh.ForwardReal()
		ckh.Forward3()

		g.ConvolveInto(kh)
		cg.Forward3()
		cg.MulPointwise(ckh)
		cg.Inverse3()

		var ref float64
		for _, v := range cg.Data {
			if a := math.Abs(real(v)); a > ref {
				ref = a
			}
		}
		for ix := 0; ix < g.Nx; ix++ {
			for iy := 0; iy < g.Ny; iy++ {
				for iz := 0; iz < g.Nz; iz++ {
					got := g.Data[g.RIdx(ix, iy, iz)]
					want := cg.Data[cg.Idx(ix, iy, iz)]
					if math.Abs(got-real(want)) > 1e-12*math.Max(1, ref) {
						t.Fatalf("dims %v conv[%d,%d,%d] = %g want %g",
							dim, ix, iy, iz, got, real(want))
					}
				}
			}
		}
	}
}

// TestRGrid3ParallelMatchesSerial pins the executor-parallel transforms
// to the serial path bit for bit: every line runs the same table-driven
// kernel, so chunking must not change a single ulp.
func TestRGrid3ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, dim := range [][3]int{{4, 4, 4}, {8, 16, 32}, {16, 8, 8}} {
		ser := NewRGrid3(dim[0], dim[1], dim[2])
		par := NewRGrid3(dim[0], dim[1], dim[2])
		par.Exec = pool
		kh := NewRGrid3(dim[0], dim[1], dim[2])
		fillRandReal(rng, ser, nil)
		copy(par.Data, ser.Data)
		fillRandReal(rng, kh, nil)
		kh.ForwardReal()

		ser.ConvolveInto(kh)
		par.ConvolveInto(kh)
		for i := range ser.Data {
			if ser.Data[i] != par.Data[i] {
				t.Fatalf("dims %v parallel convolution differs at %d: %g vs %g",
					dim, i, par.Data[i], ser.Data[i])
			}
		}
	}
}

// TestGrid3ParallelMatchesSerial is the c2c analogue.
func TestGrid3ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pool := sched.NewPool(4)
	defer pool.Close()
	ser := NewGrid3(8, 16, 8)
	par := NewGrid3(8, 16, 8)
	par.Exec = pool
	for i := range ser.Data {
		ser.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		par.Data[i] = ser.Data[i]
	}
	ser.Forward3()
	par.Forward3()
	ser.Inverse3()
	par.Inverse3()
	for i := range ser.Data {
		if ser.Data[i] != par.Data[i] {
			t.Fatalf("parallel c2c differs at %d: %v vs %v", i, par.Data[i], ser.Data[i])
		}
	}
}

// TestRGrid3F32MatchesFP64 pins the float32 mirror to the fp64 path at
// fp32 tolerance.
func TestRGrid3F32MatchesFP64(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g64 := NewRGrid3(8, 4, 16)
	kh64 := NewRGrid3(8, 4, 16)
	g32 := NewRGrid3F32(8, 4, 16)
	kh32 := NewRGrid3F32(8, 4, 16)
	fillRandReal(rng, g64, nil)
	fillRandReal(rng, kh64, nil)
	for i, v := range g64.Data {
		g32.Data[i] = float32(v)
	}
	for i, v := range kh64.Data {
		kh32.Data[i] = float32(v)
	}
	kh64.ForwardReal()
	kh32.ForwardReal()
	g64.ConvolveInto(kh64)
	g32.ConvolveInto(kh32)
	var ref float64
	for _, v := range g64.Data {
		if a := math.Abs(v); a > ref {
			ref = a
		}
	}
	for ix := 0; ix < g64.Nx; ix++ {
		for iy := 0; iy < g64.Ny; iy++ {
			for iz := 0; iz < g64.Nz; iz++ {
				a := g64.Data[g64.RIdx(ix, iy, iz)]
				b := float64(g32.Data[g32.RIdx(ix, iy, iz)])
				if math.Abs(a-b) > 1e-4*math.Max(1, ref) {
					t.Fatalf("fp32 convolution deviates at (%d,%d,%d): %g vs %g",
						ix, iy, iz, b, a)
				}
			}
		}
	}
}

// TestConvolveDimMismatchPanics pins the dimension check of the fused
// convolve path.
func TestConvolveDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched kernel dims")
		}
	}()
	g := NewRGrid3(4, 4, 4)
	kh := NewRGrid3(4, 4, 8)
	g.ConvolveInto(kh)
}

// TestConvolveAllocFree proves the warm fused convolution allocates
// nothing in serial mode, and only constant scheduler bookkeeping when
// parallel (the precedent bound of the pfft Apply loops).
func TestConvolveAllocFree(t *testing.T) {
	kh := NewRGrid3(8, 8, 16)
	kh.Data[kh.RIdx(0, 0, 0)] = 1
	kh.ForwardReal()

	ser := NewRGrid3(8, 8, 16)
	ser.ConvolveInto(kh) // warm
	if allocs := testing.AllocsPerRun(10, func() {
		ser.ConvolveInto(kh)
	}); allocs != 0 {
		t.Fatalf("serial ConvolveInto allocates %.0f objects per call", allocs)
	}

	pool := sched.NewPool(4)
	defer pool.Close()
	par := NewRGrid3(8, 8, 16)
	par.Exec = pool
	par.ConvolveInto(kh)
	if allocs := testing.AllocsPerRun(10, func() {
		par.ConvolveInto(kh)
	}); allocs > 200 {
		t.Fatalf("pooled ConvolveInto allocates %.0f objects per call; line loops are no longer allocation-free", allocs)
	}

	ser32 := NewRGrid3F32(8, 8, 16)
	kh32 := NewRGrid3F32(8, 8, 16)
	kh32.Data[kh32.RIdx(0, 0, 0)] = 1
	kh32.ForwardReal()
	ser32.ConvolveInto(kh32)
	if allocs := testing.AllocsPerRun(10, func() {
		ser32.ConvolveInto(kh32)
	}); allocs != 0 {
		t.Fatalf("serial fp32 ConvolveInto allocates %.0f objects per call", allocs)
	}
}
