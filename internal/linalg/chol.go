package linalg

import (
	"errors"
	"math"
	"runtime"
	"sync"
)

// ErrNotSPD is returned when Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not (numerically) symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L * L^T.
type Cholesky struct {
	L *Dense
}

// cholBlock is the panel width of the blocked factorization. 48 keeps the
// working set of the trailing update within L1/L2 on typical hardware.
const cholBlock = 48

// NewCholesky factorizes the symmetric positive definite matrix A (only the
// lower triangle is read). The input is not modified.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	// Copy lower triangle.
	for i := 0; i < n; i++ {
		copy(l.Row(i)[:i+1], a.Row(i)[:i+1])
	}
	if err := cholFactor(l, cholBlock); err != nil {
		return nil, err
	}
	// Zero strict upper triangle for cleanliness.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		for j := i + 1; j < n; j++ {
			row[j] = 0
		}
	}
	return &Cholesky{L: l}, nil
}

// cholFactor performs a blocked right-looking Cholesky on the lower
// triangle of l in place. The O(N^3) triangular-solve and trailing-update
// phases are parallelized across row chunks — the paper's solve step
// "resorts to the standard direct method implemented in multithreaded
// linear algebra libraries" (Section 3), and this is that library.
func cholFactor(l *Dense, nb int) error {
	n := l.Rows
	workers := runtime.GOMAXPROCS(0)
	for k := 0; k < n; k += nb {
		kb := nb
		if k+kb > n {
			kb = n - k
		}
		// Factor the diagonal block (unblocked, serial).
		if err := cholUnblocked(l, k, kb); err != nil {
			return err
		}
		if k+kb == n {
			break
		}
		parallelRows(k+kb, n, workers, func(lo, hi int) {
			// Triangular solve: L21 = A21 * L11^{-T}.
			for i := lo; i < hi; i++ {
				ri := l.Row(i)
				for j := k; j < k+kb; j++ {
					rj := l.Row(j)
					s := ri[j]
					for p := k; p < j; p++ {
						s -= ri[p] * rj[p]
					}
					ri[j] = s / rj[j]
				}
			}
		})
		parallelRows(k+kb, n, workers, func(lo, hi int) {
			// Trailing update: A22 -= L21 * L21^T (lower triangle).
			for i := lo; i < hi; i++ {
				ri := l.Row(i)
				for j := k + kb; j <= i; j++ {
					rj := l.Row(j)
					var s float64
					for p := k; p < k+kb; p++ {
						s += ri[p] * rj[p]
					}
					ri[j] -= s
				}
			}
		})
	}
	return nil
}

// parallelRows runs fn over [lo, hi) in block-cyclic row chunks: per-row
// work in the trailing update grows with the row index (triangular), so
// round-robin blocks keep the workers balanced. Serial when the range is
// small and goroutine overhead would dominate.
func parallelRows(lo, hi, workers int, fn func(lo, hi int)) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 128 {
		fn(lo, hi)
		return
	}
	const block = 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := w * block; ; b += workers * block {
				a := lo + b
				if a >= hi {
					return
				}
				e := a + block
				if e > hi {
					e = hi
				}
				fn(a, e)
			}
		}(w)
	}
	wg.Wait()
}

// cholUnblocked factors the kb x kb diagonal block starting at (k, k).
func cholUnblocked(l *Dense, k, kb int) error {
	for j := k; j < k+kb; j++ {
		rj := l.Row(j)
		d := rj[j]
		for p := k; p < j; p++ {
			d -= rj[p] * rj[p]
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		rj[j] = d
		for i := j + 1; i < k+kb; i++ {
			ri := l.Row(i)
			s := ri[j]
			for p := k; p < j; p++ {
				s -= ri[p] * rj[p]
			}
			ri[j] = s / d
		}
	}
	return nil
}

// Solve solves A x = b for a single right-hand side, writing into dst
// (dst and b may alias).
func (c *Cholesky) Solve(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		ri := c.L.Row(i)
		s := dst[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * dst[j]
		}
		dst[i] = s / ri[i]
	}
	// Backward: L^T x = y.
	for i := n - 1; i >= 0; i-- {
		s := dst[i]
		for j := i + 1; j < n; j++ {
			s -= c.L.At(j, i) * dst[j]
		}
		dst[i] = s / c.L.At(i, i)
	}
}

// SolveMatrix solves A X = B, returning X with B's shape. Right-hand-side
// columns are independent and solved in parallel.
func (c *Cholesky) SolveMatrix(b *Dense) *Dense {
	n := c.L.Rows
	if b.Rows != n {
		panic("linalg: SolveMatrix dimension mismatch")
	}
	x := NewDense(b.Rows, b.Cols)
	workers := runtime.GOMAXPROCS(0)
	if workers > b.Cols {
		workers = b.Cols
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			col := make([]float64, n)
			for j := range next {
				for i := 0; i < n; i++ {
					col[i] = b.At(i, j)
				}
				c.Solve(col, col)
				for i := 0; i < n; i++ {
					x.Set(i, j, col[i])
				}
			}
		}()
	}
	for j := 0; j < b.Cols; j++ {
		next <- j
	}
	close(next)
	wg.Wait()
	return x
}
