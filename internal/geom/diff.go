package geom

// BoxChange classifies how one conductor box differs between two
// structure variants.
type BoxChange int

// Box change kinds.
const (
	// BoxSame: the box is bitwise identical in both variants.
	BoxSame BoxChange = iota
	// BoxTranslated: the box kept its exact (bitwise) dimensions but
	// moved rigidly. Its panelization has the same panel count and
	// layout, translated by Delta.
	BoxTranslated
	// BoxChanged: the box was resized or otherwise reshaped; nothing
	// about its panels carries over.
	BoxChanged
)

// String implements fmt.Stringer.
func (c BoxChange) String() string {
	switch c {
	case BoxSame:
		return "same"
	case BoxTranslated:
		return "translated"
	}
	return "changed"
}

// BoxDelta is the per-box entry of a structural diff.
type BoxDelta struct {
	Change BoxChange
	// Delta is the rigid translation for BoxTranslated (zero for
	// BoxSame, meaningless for BoxChanged).
	Delta Vec3
}

// StructDiff describes how structure b differs from structure a at the
// box level. It is the invalidation input of the staged extraction
// plans (internal/plan): two panels generated from boxes carrying the
// same exact translation have bit-identical relative geometry, so every
// interaction integral between them is unchanged.
type StructDiff struct {
	// Comparable reports whether the two structures have the same
	// conductor and per-conductor box counts, i.e. whether boxes (and
	// hence panels of unchanged boxes) correspond 1:1.
	Comparable bool
	// Identical reports whether every box is BoxSame (implies
	// Comparable).
	Identical bool
	// Boxes[c][k] classifies box k of conductor c (nil when not
	// Comparable).
	Boxes [][]BoxDelta
}

// Diff computes the structural diff from a to b. Box dimensions are
// compared bitwise: a translated box must keep the exact floating-point
// size on every axis, which guarantees its faces panelize into the same
// grid counts at any maxEdge.
func Diff(a, b *Structure) *StructDiff {
	d := &StructDiff{}
	if len(a.Conductors) != len(b.Conductors) {
		return d
	}
	for ci := range a.Conductors {
		if len(a.Conductors[ci].Boxes) != len(b.Conductors[ci].Boxes) {
			return d
		}
	}
	d.Comparable = true
	d.Identical = true
	d.Boxes = make([][]BoxDelta, len(a.Conductors))
	for ci := range a.Conductors {
		ab, bb := a.Conductors[ci].Boxes, b.Conductors[ci].Boxes
		ds := make([]BoxDelta, len(ab))
		for k := range ab {
			ds[k] = boxDelta(ab[k], bb[k])
			if ds[k].Change != BoxSame {
				d.Identical = false
			}
		}
		d.Boxes[ci] = ds
	}
	return d
}

// boxDelta classifies one box pair.
func boxDelta(a, b Box) BoxDelta {
	if a == b {
		return BoxDelta{Change: BoxSame}
	}
	if a.Max.Sub(a.Min) != b.Max.Sub(b.Min) {
		return BoxDelta{Change: BoxChanged}
	}
	return BoxDelta{Change: BoxTranslated, Delta: b.Min.Sub(a.Min)}
}

// Clone returns a deep copy of the structure (boxes copied, names
// shared). Plans snapshot geometry with it so later caller mutations
// cannot corrupt the diff baseline.
func (s *Structure) Clone() *Structure {
	c := &Structure{Name: s.Name, Conductors: make([]*Conductor, len(s.Conductors))}
	for i, cd := range s.Conductors {
		c.Conductors[i] = &Conductor{
			Name:  cd.Name,
			Boxes: append([]Box(nil), cd.Boxes...),
		}
	}
	return c
}
