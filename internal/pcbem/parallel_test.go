package pcbem

import (
	"testing"

	"parbem/internal/geom"
	"parbem/internal/op"
	"parbem/internal/sched"
)

// TestAssembleDenseMatchesEntries pins the parallel symmetric fill to
// the entry definition: every (i, j) must equal Entry(i, j) computed
// directly, independent of the executor.
func TestAssembleDenseMatchesEntries(t *testing.T) {
	p, err := NewProblem(geom.DefaultCrossingPair().Build(), 2e-6)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, ex := range []sched.Executor{nil, sched.Local(1), sched.Local(7), pool} {
		p.Par = ex
		m := p.AssembleDense()
		n := p.N()
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if got, want := m.At(i, j), p.Entry(i, j); got != want {
					t.Fatalf("executor %T: P[%d][%d] = %g, want %g", ex, i, j, got, want)
				}
				// Lower triangle is mirrored from the upper (the
				// quadrature is not bit-symmetric in argument order).
				if got := m.At(j, i); got != m.At(i, j) {
					t.Fatalf("executor %T: P[%d][%d] not mirrored", ex, j, i)
				}
			}
		}
	}
}

func TestTriangularRowBounds(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 100, 1000} {
		bounds := op.TriangularRowBounds(n, 64)
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("n=%d: bounds %v do not cover [0,%d)", n, bounds, n)
		}
		for k := 1; k < len(bounds); k++ {
			if bounds[k] <= bounds[k-1] {
				t.Fatalf("n=%d: bounds %v not strictly increasing", n, bounds)
			}
		}
	}
}

// TestSolveIterativeConcurrentColumnsDeterministic verifies the
// concurrent multi-RHS path returns the same capacitance matrix and
// iteration total on every run (each column's GMRES is independent).
func TestSolveIterativeConcurrentColumnsDeterministic(t *testing.T) {
	p, err := NewProblem(geom.DefaultBus(3, 3).Build(), 1.5e-6)
	if err != nil {
		t.Fatal(err)
	}
	op := p.DenseOp()
	first, err := p.SolveIterative(op, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		res, err := p.SolveIterative(op, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations != first.Iterations {
			t.Fatalf("iteration count not deterministic: %d vs %d", res.Iterations, first.Iterations)
		}
		for i := 0; i < res.C.Rows; i++ {
			for j := 0; j < res.C.Cols; j++ {
				if res.C.At(i, j) != first.C.At(i, j) {
					t.Fatalf("C[%d][%d] not deterministic", i, j)
				}
			}
		}
	}
}

func BenchmarkAssembleDense(b *testing.B) {
	p, err := NewProblem(geom.DefaultBus(4, 4).Build(), 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AssembleDense()
	}
}

func BenchmarkAssembleDenseSerial(b *testing.B) {
	p, err := NewProblem(geom.DefaultBus(4, 4).Build(), 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	p.Par = sched.Local(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AssembleDense()
	}
}

// BenchmarkSolveIterativeMultiRHS measures the concurrent per-conductor
// Krylov solves over the dense operator.
func BenchmarkSolveIterativeMultiRHS(b *testing.B) {
	p, err := NewProblem(geom.DefaultBus(4, 4).Build(), 1.5e-6)
	if err != nil {
		b.Fatal(err)
	}
	op := p.DenseOp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveIterative(op, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}
