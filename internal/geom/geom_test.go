package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	for _, ax := range []Axis{X, Y, Z} {
		if got := v.WithComponent(ax, 9).Component(ax); got != 9 {
			t.Errorf("WithComponent(%v) roundtrip = %v", ax, got)
		}
	}
}

func TestAxisOther(t *testing.T) {
	if Other(X, Y) != Z || Other(Y, Z) != X || Other(X, Z) != Y {
		t.Error("Other axis wrong")
	}
	if X.String() != "X" || Y.String() != "Y" || Z.String() != "Z" {
		t.Error("Axis.String wrong")
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{0, 2}
	b := Interval{1, 3}
	c := Interval{5, 6}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("Overlaps wrong")
	}
	iv, ok := a.Intersect(b)
	if !ok || iv != (Interval{1, 2}) {
		t.Errorf("Intersect = %v %v", iv, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Error("Intersect should be empty")
	}
	if g := a.Gap(c); g != 3 {
		t.Errorf("Gap = %v", g)
	}
	if g := c.Gap(a); g != 3 {
		t.Errorf("Gap reversed = %v", g)
	}
	if a.Gap(b) != 0 {
		t.Error("overlapping gap should be 0")
	}
	if a.DistTo(-1) != 1 || a.DistTo(3) != 1 || a.DistTo(1) != 0 {
		t.Error("DistTo wrong")
	}
	if a.Mid() != 1 || a.Len() != 2 {
		t.Error("Mid/Len wrong")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Normal: Z, Offset: 2, U: Interval{0, 3}, V: Interval{0, 4}}
	if r.UAxis() != X || r.VAxis() != Y {
		t.Error("rect axes wrong for Z normal")
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if got := r.Center(); got != (Vec3{1.5, 2, 2}) {
		t.Errorf("Center = %v", got)
	}
	if got := r.Diameter(); got != 5 {
		t.Errorf("Diameter = %v", got)
	}
	if p := r.Point(1, 2); p != (Vec3{1, 2, 2}) {
		t.Errorf("Point = %v", p)
	}

	rx := Rect{Normal: X, Offset: 1, U: Interval{0, 1}, V: Interval{0, 1}}
	if rx.UAxis() != Y || rx.VAxis() != Z {
		t.Error("rect axes wrong for X normal")
	}
	ry := Rect{Normal: Y, Offset: 1, U: Interval{0, 1}, V: Interval{0, 1}}
	if ry.UAxis() != X || ry.VAxis() != Z {
		t.Error("rect axes wrong for Y normal")
	}
}

func TestRectDist(t *testing.T) {
	a := Rect{Normal: Z, Offset: 0, U: Interval{0, 1}, V: Interval{0, 1}}
	b := Rect{Normal: Z, Offset: 3, U: Interval{0, 1}, V: Interval{0, 1}}
	if d := a.Dist(b); d != 3 {
		t.Errorf("stacked dist = %v", d)
	}
	c := Rect{Normal: Z, Offset: 0, U: Interval{4, 5}, V: Interval{0, 1}}
	if d := a.Dist(c); d != 3 {
		t.Errorf("coplanar dist = %v", d)
	}
	diag := Rect{Normal: Z, Offset: 4, U: Interval{4, 5}, V: Interval{1, 2}}
	if d := a.Dist(diag); math.Abs(d-5) > 1e-12 {
		t.Errorf("diag dist = %v, want 5", d)
	}
	// Perpendicular pair.
	p := Rect{Normal: X, Offset: 2, U: Interval{0, 1}, V: Interval{0, 1}}
	if d := a.Dist(p); d != 1 {
		t.Errorf("perp dist = %v", d)
	}
	if d := a.DistToPoint(Vec3{0.5, 0.5, 7}); d != 7 {
		t.Errorf("DistToPoint = %v", d)
	}
}

func TestRectSplitGrid(t *testing.T) {
	r := Rect{Normal: Z, U: Interval{0, 1}, V: Interval{0, 2}}
	parts := r.SplitGrid(2, 4, nil)
	if len(parts) != 8 {
		t.Fatalf("SplitGrid count = %d", len(parts))
	}
	var area float64
	for _, p := range parts {
		area += p.Area()
		if p.Normal != Z {
			t.Error("child normal changed")
		}
	}
	if math.Abs(area-r.Area()) > 1e-12 {
		t.Errorf("child areas sum to %v, want %v", area, r.Area())
	}
}

func TestSplitGridAreaProperty(t *testing.T) {
	f := func(w, h float64, nu, nv uint8) bool {
		// Map arbitrary floats into a sane size range (0.1, 100.1).
		w = math.Mod(math.Abs(w), 100) + 0.1
		h = math.Mod(math.Abs(h), 100) + 0.1
		if math.IsNaN(w) || math.IsNaN(h) {
			return true
		}
		u := int(nu%8) + 1
		v := int(nv%8) + 1
		r := Rect{Normal: Y, U: Interval{0, w}, V: Interval{0, h}}
		parts := r.SplitGrid(u, v, nil)
		if len(parts) != u*v {
			return false
		}
		var area float64
		for _, p := range parts {
			area += p.Area()
		}
		return math.Abs(area-r.Area()) < 1e-9*r.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoxFaces(t *testing.T) {
	b := NewBox(Vec3{1, 0, 0}, Vec3{0, 2, 3})
	if b.Min != (Vec3{0, 0, 0}) || b.Max != (Vec3{1, 2, 3}) {
		t.Fatalf("NewBox normalization wrong: %+v", b)
	}
	fs := b.Faces()
	var area float64
	for _, f := range fs {
		area += f.Area()
	}
	want := 2 * (1*2 + 2*3 + 1*3)
	if math.Abs(area-float64(want)) > 1e-12 {
		t.Errorf("total face area = %v, want %v", area, want)
	}
	if b.Center() != (Vec3{0.5, 1, 1.5}) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Size() != (Vec3{1, 2, 3}) {
		t.Errorf("Size = %v", b.Size())
	}
}

func TestWire(t *testing.T) {
	w := Wire(X, Vec3{0, 0, 0}, 10, 2, 1)
	if w.Size() != (Vec3{10, 2, 1}) {
		t.Errorf("X wire size = %v", w.Size())
	}
	w = Wire(Y, Vec3{0, 0, 0}, 10, 2, 1)
	if w.Size() != (Vec3{2, 10, 1}) {
		t.Errorf("Y wire size = %v", w.Size())
	}
	w = Wire(Z, Vec3{0, 0, 0}, 10, 2, 1)
	if w.Size() != (Vec3{2, 1, 10}) {
		t.Errorf("Z wire size = %v", w.Size())
	}
}

func TestCrossingPair(t *testing.T) {
	sp := DefaultCrossingPair()
	st := sp.Build()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NumConductors() != 2 {
		t.Fatalf("conductors = %d", st.NumConductors())
	}
	bot := st.Conductors[0].Boxes[0]
	top := st.Conductors[1].Boxes[0]
	gap := top.Extent(Z).Lo - bot.Extent(Z).Hi
	if math.Abs(gap-sp.H) > 1e-18 {
		t.Errorf("vertical gap = %g, want %g", gap, sp.H)
	}
	// Wires must cross in plan view.
	if !bot.Extent(X).Overlaps(top.Extent(X)) || !bot.Extent(Y).Overlaps(top.Extent(Y)) {
		t.Error("wires do not cross in plan view")
	}
}

func TestBusStructure(t *testing.T) {
	sp := DefaultBus(24, 24)
	st := sp.Build()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NumConductors() != 48 {
		t.Fatalf("conductors = %d", st.NumConductors())
	}
	// Every lower wire must cross every upper wire.
	for i := 0; i < sp.M; i++ {
		lo := st.Conductors[i].Boxes[0]
		for j := 0; j < sp.N; j++ {
			hi := st.Conductors[sp.M+j].Boxes[0]
			if !lo.Extent(X).Overlaps(hi.Extent(X)) || !lo.Extent(Y).Overlaps(hi.Extent(Y)) {
				t.Fatalf("wire %d and %d do not cross", i, sp.M+j)
			}
			if lo.Extent(Z).Overlaps(hi.Extent(Z)) {
				t.Fatalf("wire %d and %d overlap vertically", i, sp.M+j)
			}
		}
	}
}

func TestInterconnectStructure(t *testing.T) {
	st := DefaultInterconnect().Build()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.NumConductors() < 4 {
		t.Fatalf("too few conductors: %d", st.NumConductors())
	}
	if st.TotalFaces() < 40 {
		t.Fatalf("too few faces: %d", st.TotalFaces())
	}
}

func TestPanelize(t *testing.T) {
	sp := DefaultCrossingPair()
	st := sp.Build()
	coarse := st.Panelize(sp.Length) // one panel per face in length dir
	fine := st.Panelize(sp.Width / 2)
	if len(fine) <= len(coarse) {
		t.Fatalf("refinement did not increase panels: %d vs %d", len(fine), len(coarse))
	}
	// Panel areas must sum to total face area for any refinement.
	tot := func(ps []Panel) float64 {
		var a float64
		for _, p := range ps {
			a += p.Area()
		}
		return a
	}
	var faceArea float64
	for _, c := range st.Conductors {
		for _, f := range c.Faces() {
			faceArea += f.Area()
		}
	}
	for _, ps := range [][]Panel{coarse, fine} {
		if math.Abs(tot(ps)-faceArea) > 1e-9*faceArea {
			t.Errorf("panel area %g != face area %g", tot(ps), faceArea)
		}
	}
	// Conductor tags must be in range.
	for _, p := range fine {
		if p.Conductor < 0 || p.Conductor >= st.NumConductors() {
			t.Fatalf("bad conductor tag %d", p.Conductor)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (&Structure{Name: "empty"}).Validate(); err == nil {
		t.Error("empty structure should fail validation")
	}
	st := &Structure{Name: "bad", Conductors: []*Conductor{{Name: "c"}}}
	if err := st.Validate(); err == nil {
		t.Error("conductor without boxes should fail validation")
	}
	st = &Structure{Name: "bad2", Conductors: []*Conductor{
		{Name: "c", Boxes: []Box{{Min: Vec3{0, 0, 0}, Max: Vec3{1, 0, 1}}}},
	}}
	if err := st.Validate(); err == nil {
		t.Error("zero-thickness box should fail validation")
	}
}
