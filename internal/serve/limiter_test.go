package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestTenantLimiterHardCap sprays far more than maxTenantBuckets
// distinct active tenants — none idle long enough for evictFull to free
// anything — and asserts the map never exceeds the cap: the
// evict-oldest fallback must hold the line when every bucket is still
// refilling.
func TestTenantLimiterHardCap(t *testing.T) {
	l := newTenantLimiter(1, 8) // burst/rate = 8s: nothing refills below
	now := time.Now()
	for i := 0; i < 3*maxTenantBuckets; i++ {
		// Advance a hair per request so last-seen times are distinct but
		// every bucket stays far inside its refill window.
		now = now.Add(time.Microsecond)
		l.allow(fmt.Sprintf("tenant-%d", i), now)
		if n := len(l.buckets); n > maxTenantBuckets {
			t.Fatalf("bucket map grew to %d (> cap %d) after %d tenants", n, maxTenantBuckets, i+1)
		}
	}
	if n := len(l.buckets); n != maxTenantBuckets {
		t.Errorf("bucket map ended at %d, want exactly the cap %d", n, maxTenantBuckets)
	}
}

// TestTenantLimiterEvictsOldestFirst pins which bucket the fallback
// sacrifices: the least-recently-seen tenant goes, the fresh ones stay.
func TestTenantLimiterEvictsOldestFirst(t *testing.T) {
	l := newTenantLimiter(1, 100)
	now := time.Now()
	for i := 0; i < maxTenantBuckets; i++ {
		now = now.Add(time.Millisecond)
		l.allow(fmt.Sprintf("tenant-%d", i), now)
	}
	// tenant-0 is oldest; refresh it so tenant-1 becomes the victim.
	now = now.Add(time.Millisecond)
	l.allow("tenant-0", now)
	now = now.Add(time.Millisecond)
	l.allow("newcomer", now)
	if _, ok := l.buckets["tenant-0"]; !ok {
		t.Error("recently-seen tenant-0 evicted")
	}
	if _, ok := l.buckets["tenant-1"]; ok {
		t.Error("oldest tenant-1 survived the eviction")
	}
	if _, ok := l.buckets["newcomer"]; !ok {
		t.Error("newcomer not inserted")
	}
}

// TestTenantLimiterStillPrefersRefilled checks the cheap path is tried
// first: with idle refilled buckets available, the fallback must not
// fire (the refilled ones are evicted in bulk instead).
func TestTenantLimiterStillPrefersRefilled(t *testing.T) {
	l := newTenantLimiter(1000, 1) // refill window: 1ms
	now := time.Now()
	for i := 0; i < maxTenantBuckets; i++ {
		l.allow(fmt.Sprintf("tenant-%d", i), now)
	}
	// All buckets are now idle past burst/rate: a new tenant triggers
	// the bulk eviction, leaving plenty of room.
	l.allow("fresh", now.Add(time.Second))
	if n := len(l.buckets); n != 1 {
		t.Errorf("bulk eviction left %d buckets, want 1", n)
	}
}
