// Netlist demonstrates the full tool flow: read a structure from a
// geometry file (written inline here), extract the capacitance matrix in
// parallel, sanity-check the Maxwell structure, and emit a SPICE
// subcircuit for circuit back-annotation.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"parbem"
)

const geometry = `
# Three-net clock spine: two parallel signal wires under a crossing strap.
structure clock-spine
unit 1e-6
conductor clk
wire x  0  0.0 0   30 1.2 0.6
conductor data
wire x  0  2.8 0   30 1.0 0.6
conductor strap
wire y  0  1.4 1.8 12 1.5 0.6
`

func main() {
	st, err := parbem.ReadStructure(strings.NewReader(geometry))
	if err != nil {
		log.Fatal(err)
	}

	res, err := parbem.Extract(st, parbem.Options{
		Backend: parbem.SharedMem,
		Kernel:  parbem.FastKernelConfig(),
	})
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, st.NumConductors())
	for i, c := range st.Conductors {
		names[i] = c.Name
	}

	fmt.Printf("%s: N = %d basis functions, extracted in %v\n\n",
		st.Name, res.N, res.Timing.Total.Round(1000))
	fmt.Println(parbem.FormatMatrix(res.C, 1e15, names))

	if v := parbem.CheckMaxwell(res.C, 0); len(v) > 0 {
		fmt.Println("warnings:")
		for _, w := range v {
			fmt.Println(" ", w)
		}
	} else {
		fmt.Println("Maxwell-matrix structure: clean")
	}

	fmt.Println("\nSPICE netlist:")
	if err := parbem.WriteSpice(os.Stdout, res.C, names, 1e-18); err != nil {
		log.Fatal(err)
	}

	caps := parbem.CapToInfinity(res.C)
	fmt.Println("\ntotal capacitance per net (fF):")
	for i, c := range caps {
		fmt.Printf("  %-8s %8.4f\n", names[i], c*1e15)
	}
}
