// Package solver drives end-to-end capacitance extraction with
// instantiable basis functions: basis generation, (optionally parallel)
// system setup, direct solve, and capacitance recovery C = Phi^T rho
// (paper Section 2.1).
package solver

import (
	"errors"
	"fmt"
	"time"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/kernel"
	"parbem/internal/linalg"
	"parbem/internal/mpi"
	"parbem/internal/op"
	"parbem/internal/par"
	"parbem/internal/sched"
	"parbem/internal/tabulate"
)

// Backend selects how the system setup step is executed.
type Backend int

// Available execution backends.
const (
	Serial      Backend = iota // single node (Algorithm 1 on the full k-range)
	SharedMem                  // goroutine worker pool (OpenMP analog, Fig. 4)
	Distributed                // simulated message passing (MPI analog, Fig. 6)
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case Serial:
		return "serial"
	case SharedMem:
		return "shared-memory"
	case Distributed:
		return "distributed-memory"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Options configures extraction.
type Options struct {
	Backend Backend
	Workers int // parallel nodes D (0 = GOMAXPROCS for SharedMem, 1 for others)

	// Basis tunes instantiable-basis generation; zero value = defaults.
	Basis basis.BuilderOptions

	// Kernel overrides the integration configuration (nil = defaults).
	Kernel *kernel.Config

	// Eps is the dielectric permittivity (0 = vacuum).
	Eps float64

	// Network supplies the simulated interconnect for the Distributed
	// backend (nil = ideal network of Workers ranks).
	Network *mpi.Network

	// ThreadsPerRank runs each Distributed rank's local fill on this
	// many goroutine threads (hybrid layout; 0 = 1).
	ThreadsPerRank int

	// Tables enables the tabulated collocation kernel (paper Section
	// 4.2.1): the table is built as part of this call (the TableGen
	// phase) and used wherever the normalized query is in domain. The
	// batch engine instead injects an already-built table via Tab, which
	// is the whole point of its table cache.
	Tables bool
	// TableSpec overrides the table resolution/domain (nil = defaults).
	TableSpec *tabulate.CollocationSpec
	// Tab is a prebuilt collocation table (takes precedence over
	// Tables; no TableGen cost is incurred).
	Tab *tabulate.Collocation

	// Pairs, when non-nil, memoizes template-pair integrals across
	// extractions (shared by the batch engine; values are bitwise
	// identical to uncached evaluation).
	Pairs *assembly.PairCache

	// Pool, when non-nil, runs the SharedMem fill chunks on a shared
	// persistent work-stealing pool instead of spawning per-call
	// workers.
	Pool *sched.Pool
}

// Timing is the phase breakdown of one extraction.
type Timing struct {
	BasisGen time.Duration
	TableGen time.Duration // tabulated-kernel build (zero when cached or off)
	Setup    time.Duration // system matrix fill (the dominant phase)
	Solve    time.Duration // factorization + triangular solves + C recovery
	Total    time.Duration
}

// Result is a completed extraction.
type Result struct {
	// C is the n x n Maxwell capacitance matrix in farads.
	C *linalg.Dense
	// N and M are the basis-function and template counts.
	N, M int
	// MatrixBytes is the memory held by the dense system matrix.
	MatrixBytes int
	Timing      Timing
	// Set is the generated basis (exposed for diagnostics and examples).
	Set *basis.Set
	// P is the scaled system matrix (retained for diagnostics; may be
	// nil if ReleaseP was requested).
	P *linalg.Dense
}

// Extract runs the full pipeline on a structure.
func Extract(st *geom.Structure, opt Options) (*Result, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	set, err := BuildBasis(st, opt.Basis)
	if err != nil {
		return nil, err
	}
	tBasis := time.Since(t0)

	res, err := ExtractSet(set, opt)
	if err != nil {
		return nil, err
	}
	res.Timing.BasisGen = tBasis
	res.Timing.Total += tBasis
	return res, nil
}

// BuildBasis generates and validates the instantiable basis for a
// structure (zero options = calibrated defaults). It is the basis-stage
// entry point the batch engine caches behind its geometry-signature key.
func BuildBasis(st *geom.Structure, bopt basis.BuilderOptions) (*basis.Set, error) {
	if bopt == (basis.BuilderOptions{}) {
		bopt = basis.DefaultBuilderOptions()
	}
	set := basis.Build(st, bopt)
	if err := set.Validate(); err != nil {
		return nil, fmt.Errorf("solver: generated basis invalid: %w", err)
	}
	return set, nil
}

// ExtractSet runs system setup and solve on an already-built basis set
// (which is read shared, never mutated, so one cached set may serve many
// concurrent calls). Timing.BasisGen is zero.
func ExtractSet(set *basis.Set, opt Options) (*Result, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = kernel.Eps0
	}
	cfg := opt.Kernel
	if cfg == nil {
		cfg = kernel.DefaultConfig()
	}

	var tTable time.Duration
	tab := opt.Tab
	if tab == nil && opt.Tables {
		spec := tabulate.CollocationSpec{}
		if opt.TableSpec != nil {
			spec = *opt.TableSpec
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("solver: bad table spec: %w", err)
		}
		tt := time.Now()
		tab = tabulate.NewCollocation(spec)
		tTable = time.Since(tt)
	}
	in := &assembly.Integrator{Cfg: cfg, Tab: tab, Pairs: opt.Pairs}

	t1 := time.Now()
	P, err := fill(set, in, opt)
	if err != nil {
		return nil, err
	}
	// Physical scaling 1/(4*pi*eps).
	linalg.Scal(1/(kernel.FourPi*eps), P.Data)
	tSetup := time.Since(t1)

	t2 := time.Now()
	C, err := solveSystem(set, P)
	if err != nil {
		return nil, err
	}
	tSolve := time.Since(t2)

	return &Result{
		C:           C,
		N:           set.N(),
		M:           set.M(),
		MatrixBytes: 8 * len(P.Data),
		Set:         set,
		P:           P,
		Timing: Timing{
			TableGen: tTable,
			Setup:    tSetup,
			Solve:    tSolve,
			Total:    tTable + tSetup + tSolve,
		},
	}, nil
}

// fill dispatches the system setup to the selected backend.
func fill(set *basis.Set, in *assembly.Integrator, opt Options) (*linalg.Dense, error) {
	switch opt.Backend {
	case Serial:
		return assembly.FillSerial(set, in), nil
	case SharedMem:
		return par.Fill(set, in, par.Options{Workers: opt.Workers, Pool: opt.Pool}), nil
	case Distributed:
		net := opt.Network
		if net == nil {
			d := opt.Workers
			if d <= 0 {
				d = 1
			}
			net = mpi.NewNetwork(d)
		}
		return mpi.FillDistributedOpts(set, in, net,
			mpi.FillOptions{ThreadsPerRank: opt.ThreadsPerRank}), nil
	}
	return nil, errors.New("solver: unknown backend")
}

// solveSystem recovers C = Phi^T rho with Phi the conductor-indicator
// right-hand sides weighted by basis moments, through the unified
// pipeline's direct path (equilibrated Cholesky with escalating-shift
// recovery and LU fallback — see op.SolveSPD) and its shared
// capacitance reduction.
func solveSystem(set *basis.Set, P *linalg.Dense) (*linalg.Dense, error) {
	n := set.NumConductors
	N := set.N()
	moments := set.Moments()
	phi := linalg.NewDense(N, n)
	for i, f := range set.Functions {
		phi.Set(i, f.Conductor, moments[i])
	}

	pl, err := op.NewFromDense(P, op.Options{Direct: true})
	if err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}
	res, err := pl.ExtractRHS(phi)
	if err != nil {
		return nil, fmt.Errorf("solver: %w", err)
	}
	return res.C, nil
}
