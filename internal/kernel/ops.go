// Package kernel implements the closed-form integrals of the free-space
// Green's function 1/(4*pi*eps*|r-r'|) over axis-aligned rectangles, plus the
// dimension-reduction ("approximation distance") dispatch of paper Section 4.
//
// Naming follows the paper: the definite integrals are obtained by applying
// finite-difference operators to indefinite antiderivatives:
//
//	F1(X,Y,Z) = d/dX-antiderivative of 1/r              (collocation, 1 dim)
//	F2(X,Y,Z) = dX dY antiderivative of 1/r             (collocation over a rect)
//	F3(X,Y,Z) = dX dX dY antiderivative of 1/r          (mixed Galerkin/collocation)
//	F4(X,Y,Z) = dX dX dY dY antiderivative of 1/r       (Galerkin over parallel rects)
//
// where X = x - x', Y = y - y', Z = z - z' and r = sqrt(X^2+Y^2+Z^2).
// All functions here omit the 1/(4*pi*eps) prefactor; callers scale.
package kernel

import "math"

// Eps0 is the vacuum permittivity in F/m.
const Eps0 = 8.8541878128e-12

// FourPi is 4*pi.
const FourPi = 4 * math.Pi

// MathOps supplies the elementary functions used by the closed-form
// integral evaluators. The default uses the Go standard library; the
// fastmath-backed variant (paper Section 4.2.3) tabulates log and atan.
type MathOps struct {
	Log  func(float64) float64
	Atan func(float64) float64
	// Atan2 must be branch-continuous like math.Atan2; it is required in
	// F3/F4 where the plain atan argument's denominator can cross zero
	// along the integration path.
	Atan2 func(y, x float64) float64
}

// StdOps evaluates elementary functions with the standard library.
var StdOps = &MathOps{Log: math.Log, Atan: math.Atan, Atan2: math.Atan2}

// eps guards terms whose coefficient vanishes at a singular point of the
// antiderivative (e.g. coefficient * log(0)); any coefficient smaller than
// this times the local scale is treated as exactly zero.
const coefEps = 1e-300

// plusR returns X + r computed without catastrophic cancellation: for X < 0
// it uses the identity X + r = (r^2 - X^2)/(r - X) = other2/(r - X), where
// other2 is the sum of the squares of the remaining coordinates.
func plusR(X, r, other2 float64) float64 {
	if X >= 0 {
		return X + r
	}
	return other2 / (r - X)
}

// F2 is the double antiderivative of 1/r in X and Y:
//
//	F2 = X*ln(Y+r) + Y*ln(X+r) - Z*atan(X*Y/(Z*r))
//
// Singularity guards: each term is dropped when its coefficient vanishes
// (the corresponding limit is zero).
func F2(ops *MathOps, X, Y, Z float64) float64 {
	x2, y2, z2 := X*X, Y*Y, Z*Z
	r := math.Sqrt(x2 + y2 + z2)
	var s float64
	if math.Abs(X) > coefEps {
		yr := plusR(Y, r, x2+z2)
		if yr > 0 {
			s += X * ops.Log(yr)
		}
	}
	if math.Abs(Y) > coefEps {
		xr := plusR(X, r, y2+z2)
		if xr > 0 {
			s += Y * ops.Log(xr)
		}
	}
	if math.Abs(Z) > coefEps {
		d := Z * r
		if math.Abs(d) > coefEps {
			s -= Z * ops.Atan(X*Y/d)
		}
	}
	return s
}

// F3 is the antiderivative of 1/r taken twice in X and once in Y:
//
//	F3 = X*Y*ln(X+r) + (X^2-Z^2)/2*ln(Y+r)
//	   + X*Z*atan2(Y*Z, X^2+Z^2+X*r) - X*Y - Y*r/2
func F3(ops *MathOps, X, Y, Z float64) float64 {
	x2, y2, z2 := X*X, Y*Y, Z*Z
	r := math.Sqrt(x2 + y2 + z2)
	var s float64
	if c := X * Y; math.Abs(c) > coefEps {
		xr := plusR(X, r, y2+z2)
		if xr > 0 {
			s += c * ops.Log(xr)
		}
	}
	if c := 0.5 * (x2 - z2); math.Abs(c) > coefEps {
		yr := plusR(Y, r, x2+z2)
		if yr > 0 {
			s += c * ops.Log(yr)
		}
	}
	if c := X * Z; math.Abs(c) > coefEps {
		s += c * ops.Atan2(Y*Z, x2+z2+X*r)
	}
	s += -X*Y - 0.5*Y*r
	return s
}

// F4 is the double antiderivative of 1/r in both X and Y:
//
//	F4 = X*(Y^2-Z^2)/2*ln(X+r) + Y*(X^2-Z^2)/2*ln(Y+r)
//	   + X*Y*Z*atan2(Y*Z, X^2+Z^2+X*r)
//	   + r*(2*Z^2-X^2-Y^2)/6
//
// The branch-continuous atan2 form is essential: the plain atan argument's
// denominator X^2+Z^2+X*r crosses zero for X < 0, and the resulting pi-jump
// would corrupt the 16-corner finite difference. (A term -3*X*Y^2/4 in the
// raw antiderivative is linear in X and is annihilated by the
// second-difference operator, so it is omitted; this also reduces
// floating-point cancellation.)
func F4(ops *MathOps, X, Y, Z float64) float64 {
	x2, y2, z2 := X*X, Y*Y, Z*Z
	r := math.Sqrt(x2 + y2 + z2)
	var s float64
	if c := 0.5 * X * (y2 - z2); math.Abs(c) > coefEps {
		xr := plusR(X, r, y2+z2)
		if xr > 0 {
			s += c * ops.Log(xr)
		}
	}
	if c := 0.5 * Y * (x2 - z2); math.Abs(c) > coefEps {
		yr := plusR(Y, r, x2+z2)
		if yr > 0 {
			s += c * ops.Log(yr)
		}
	}
	if c := X * Y * Z; math.Abs(c) > coefEps {
		s += c * ops.Atan2(Y*Z, x2+z2+X*r)
	}
	s += r * (2*z2 - x2 - y2) / 6
	return s
}

// RectPotential computes the collocation integral
//
//	int_{u1}^{u2} int_{v1}^{v2} 1/|r - r'| du' dv'
//
// for a rectangle in the plane Z=0 spanning [u1,u2] x [v1,v2], evaluated at
// the point (pu, pv, pz). This is the inner closed form of paper Eq. (7):
// 8 evaluated terms (4 corners x 2 log terms, plus atan terms).
func RectPotential(ops *MathOps, u1, u2, v1, v2, pu, pv, pz float64) float64 {
	// int f(pu-u') du' = g(pu-u1) - g(pu-u2), likewise in v.
	return F2(ops, pu-u1, pv-v1, pz) - F2(ops, pu-u2, pv-v1, pz) -
		F2(ops, pu-u1, pv-v2, pz) + F2(ops, pu-u2, pv-v2, pz)
}

// GalerkinParallel computes the 4-D Galerkin integral
//
//	int_t int_s 1/|r - r'| ds' ds
//
// between two axis-aligned rectangles lying in parallel planes separated by
// Z: target [tx1,tx2] x [ty1,ty2], source [sx1,sx2] x [sy1,sy2]. This is the
// "more than 100 terms" 4-D analytical expression of the paper (16 corner
// combinations x up to 4 terms each, plus guards). It remains finite for
// touching, overlapping and coincident rectangles (including the Z=0
// self-term), thanks to the singularity guards in F4.
func GalerkinParallel(ops *MathOps, tx1, tx2, ty1, ty2, sx1, sx2, sy1, sy2, Z float64) float64 {
	xs := [2]float64{tx1, tx2}
	xps := [2]float64{sx1, sx2}
	ys := [2]float64{ty1, ty2}
	yps := [2]float64{sy1, sy2}
	var sum float64
	for i := 0; i < 2; i++ {
		for ip := 0; ip < 2; ip++ {
			sx := signPair(i, ip)
			X := xs[i] - xps[ip]
			for j := 0; j < 2; j++ {
				for jp := 0; jp < 2; jp++ {
					s := sx * signPair(j, jp)
					Y := ys[j] - yps[jp]
					sum += s * F4(ops, X, Y, Z)
				}
			}
		}
	}
	return sum
}

// signPair returns the second-difference sign for endpoint indices
// (i over the target interval, ip over the source interval):
// +1 when i != ip, -1 when i == ip.
func signPair(i, ip int) float64 {
	if i == ip {
		return -1
	}
	return 1
}

// GalerkinMixed computes the 3-D integral with Galerkin pairing in x and a
// fixed source line in y': target [tx1,tx2] x [ty1,ty2] integrated against
// source x' in [sx1,sx2] at y' = sy, plane separation Z:
//
//	int_{tx} int_{ty} int_{sx'} 1/|r-r'| dx' dy dx
//
// It backs the intermediate approximation level between the 4-D and 2-D
// expressions (paper Section 4.1: quadrature points in one source dimension).
func GalerkinMixed(ops *MathOps, tx1, tx2, ty1, ty2, sx1, sx2, sy, Z float64) float64 {
	xs := [2]float64{tx1, tx2}
	xps := [2]float64{sx1, sx2}
	var sum float64
	for i := 0; i < 2; i++ {
		for ip := 0; ip < 2; ip++ {
			s := signPair(i, ip)
			X := xs[i] - xps[ip]
			// Single difference in y (target side only).
			sum += s * (F3(ops, X, ty2-sy, Z) - F3(ops, X, ty1-sy, Z))
		}
	}
	return sum
}
