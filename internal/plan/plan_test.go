package plan

import (
	"math"
	"testing"

	"parbem/internal/fmm"
	"parbem/internal/geom"
	"parbem/internal/linalg"
	"parbem/internal/op"
	"parbem/internal/pcbem"
)

// capError is the conventional accuracy metric: max relative entry
// difference, normalized per-row by the diagonal.
func capError(got, ref *linalg.Dense) float64 {
	var maxRel float64
	for i := 0; i < ref.Rows; i++ {
		den := math.Abs(ref.At(i, i))
		for j := 0; j < ref.Cols; j++ {
			if rel := math.Abs(got.At(i, j)-ref.At(i, j)) / den; rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

func crossingAt(h float64) *geom.Structure {
	sp := geom.DefaultCrossingPair()
	sp.H = h
	return sp.Build()
}

// TestPlanIncrementalConsistency sweeps the crossing separation through
// one plan per backend and pins every point to an independent
// from-scratch pipeline extraction of the same variant: stage reuse
// must be invisible in the results to 1e-10. Iterative backends run at
// a 1e-12 tolerance so solver-path differences (warm starts, copied
// entries' coordinate noise) sit far below the bound.
func TestPlanIncrementalConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("several full solves per backend")
	}
	backends := []struct {
		name string
		edge float64
		hs   []float64
		opt  op.Options
	}{
		{"dense-direct", 0.4e-6, []float64{0.4e-6, 0.55e-6, 0.7e-6, 0.85e-6},
			op.Options{Backend: op.BackendDense, Direct: true}},
		{"fmm", 0.4e-6, []float64{0.4e-6, 0.55e-6, 0.7e-6, 0.85e-6},
			op.Options{Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi,
				Tol: 1e-12, FMM: &fmm.Options{Workers: 1}}},
		// The pfft leg runs a coarser discretization: at a 1e-12
		// tolerance its grid-convolution matvec converges slowly, and
		// the point of this leg is reuse consistency, not operator
		// accuracy.
		{"pfft", 0.6e-6, []float64{0.4e-6, 0.6e-6, 0.8e-6},
			op.Options{Backend: op.BackendPFFT, Tol: 1e-12}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			edge, hs := be.edge, be.hs
			p, err := New(Options{MaxEdge: edge, Pipeline: be.opt})
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range hs {
				st := crossingAt(h)
				res, err := p.Extract(st)
				if err != nil {
					t.Fatalf("h=%g: plan: %v", h, err)
				}
				prob, err := pcbem.NewProblem(st, edge)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := prob.SolvePipeline(be.opt)
				if err != nil {
					t.Fatalf("h=%g: independent: %v", h, err)
				}
				if e := capError(res.C, ref.C); e > 1e-10 {
					t.Errorf("h=%g: plan deviates from independent by %.3g (tol 1e-10)", h, e)
				}
			}
			s := p.Stats()
			if s.NearReused == 0 && s.DenseReused == 0 {
				t.Error("sweep reused no near-field entries")
			}
			t.Logf("stats: %+v", s)
		})
	}
}

// TestPlanCacheHitAllocs pins the identical-geometry fast path: after
// the first build, re-extracting the same structure must return the
// cached result without building any topology or near-field artifact —
// and without allocating at all.
func TestPlanCacheHitAllocs(t *testing.T) {
	p, err := New(Options{MaxEdge: 0.5e-6,
		Pipeline: op.Options{Backend: op.BackendDense, Direct: true}})
	if err != nil {
		t.Fatal(err)
	}
	st := crossingAt(0.5e-6)
	first, err := p.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	again, err := p.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Fatal("cache hit did not return the cached result")
	}
	before := p.Stats()
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := p.Extract(st); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("cache-hit Extract allocates %v objects, want 0", allocs)
	}
	after := p.Stats()
	if after.DiscBuilds != before.DiscBuilds || after.TopoBuilds != before.TopoBuilds ||
		after.NearBuilds != before.NearBuilds || after.FactBuilds != before.FactBuilds {
		t.Errorf("cache hits rebuilt stages: before %+v after %+v", before, after)
	}
	if after.CacheHits <= before.CacheHits {
		t.Error("cache hits not counted")
	}
}

// TestPlanStageReuse checks the reuse flags and counters across an
// h-variant chain on the fmm backend, including block-factor adoption.
func TestPlanStageReuse(t *testing.T) {
	const edge = 0.4e-6
	p, err := New(Options{MaxEdge: edge, Pipeline: op.Options{
		Backend: op.BackendFMM, Precond: op.PrecondBlockJacobi,
		Tol: 1e-6, FMM: &fmm.Options{Workers: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Extract(crossingAt(0.5e-6))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Reused.NearField || cold.Reused.Factorization {
		t.Errorf("cold extract reports reuse: %+v", cold.Reused)
	}
	warm, err := p.Extract(crossingAt(0.6e-6))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Reused.NearField {
		t.Error("h variant did not reuse near-field entries")
	}
	if !warm.Reused.Factorization {
		t.Error("h variant did not adopt any block factors")
	}
	s := p.Stats()
	if s.NearReused == 0 || s.FactReused == 0 || s.WarmStarts == 0 {
		t.Errorf("reuse counters not advanced: %+v", s)
	}
	if s.NearReused < s.NearComputed {
		t.Errorf("copied %d < computed %d near entries: within-layer pairs should dominate",
			s.NearReused, s.NearComputed)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start did not cut iterations: cold %d, warm %d",
			cold.Iterations, warm.Iterations)
	}
	// A resized wire is not a rigid motion: the chain must degrade to a
	// fresh fill, not corrupt results.
	sp := geom.DefaultCrossingPair()
	sp.Width *= 1.3
	reshaped, err := p.Extract(sp.Build())
	if err != nil {
		t.Fatal(err)
	}
	if reshaped.Reused.NearField {
		t.Error("reshaped variant claims near-field reuse")
	}
}

// TestPlanEpsAndTol covers the solve-only invalidations: a dielectric
// change rescales, a tolerance change re-solves, and both match
// independent extractions.
func TestPlanEpsAndTol(t *testing.T) {
	const edge = 0.5e-6
	st := crossingAt(0.5e-6)
	p, err := New(Options{MaxEdge: edge, Pipeline: op.Options{
		Backend: op.BackendFMM, Tol: 1e-10, FMM: &fmm.Options{Workers: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Extract(st); err != nil {
		t.Fatal(err)
	}

	// Dielectric change: all stages reused, result exactly linear.
	const eps2 = 3.9 * 8.8541878128e-12
	p.SetEps(eps2)
	scaled, err := p.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := pcbem.NewProblem(st, edge)
	if err != nil {
		t.Fatal(err)
	}
	prob.Eps = eps2
	ref, err := prob.SolvePipeline(op.Options{
		Backend: op.BackendFMM, Tol: 1e-10, FMM: &fmm.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if e := capError(scaled.C, ref.C); e > 1e-8 {
		t.Errorf("eps rescale deviates from independent by %.3g", e)
	}
	s := p.Stats()
	if s.Rescales == 0 {
		t.Error("eps change did not take the rescale path")
	}
	if s.NearBuilds != 1 {
		t.Errorf("eps change rebuilt the near field (%d builds)", s.NearBuilds)
	}

	// Tolerance change: same artifacts, new solve.
	p.SetEps(0)
	p.SetTol(1e-6)
	if _, err := p.Extract(st); err != nil {
		t.Fatal(err)
	}
	s = p.Stats()
	if s.Resolves == 0 {
		t.Error("tolerance change did not take the re-solve path")
	}
	if s.NearBuilds != 1 {
		t.Errorf("tolerance change rebuilt the near field (%d builds)", s.NearBuilds)
	}

	// Combined tolerance + dielectric change: the rescale must derive
	// from a solve at the new tolerance, not the cached old one.
	p.SetTol(1e-10)
	p.SetEps(eps2)
	both, err := p.Extract(st)
	if err != nil {
		t.Fatal(err)
	}
	if e := capError(both.C, ref.C); e > 1e-8 {
		t.Errorf("tol+eps change deviates from independent by %.3g", e)
	}
	s2 := p.Stats()
	if s2.Resolves <= s.Resolves {
		t.Error("tol+eps change skipped the re-solve")
	}
	if s2.NearBuilds != 1 {
		t.Errorf("tol+eps change rebuilt the near field (%d builds)", s2.NearBuilds)
	}
}
