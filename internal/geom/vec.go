// Package geom provides the Manhattan-geometry substrate for the boundary
// element capacitance extractor: 3-D vectors, axis-aligned rectangles
// (panels), conductors built from axis-aligned boxes, and generators for the
// benchmark structures used in the paper (crossing wire pairs, m x n bus
// crossbars, and a synthetic transistor-interconnect structure).
//
// All coordinates are in meters. The geometry is restricted to Manhattan
// (axis-aligned) shapes, matching the assumption under which instantiable
// basis functions are constructed (paper Section 2.2).
package geom

import (
	"fmt"
	"math"
)

// Axis identifies one of the three coordinate axes.
type Axis int

// The three coordinate axes.
const (
	X Axis = iota
	Y
	Z
)

// String returns the axis name ("X", "Y" or "Z").
func (a Axis) String() string {
	switch a {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Other returns the axis that is neither a nor b. a and b must differ.
func Other(a, b Axis) Axis {
	return Axis(3 - int(a) - int(b))
}

// Vec3 is a point or displacement in 3-D space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Component returns the coordinate of v along axis a.
func (v Vec3) Component(a Axis) float64 {
	switch a {
	case X:
		return v.X
	case Y:
		return v.Y
	default:
		return v.Z
	}
}

// WithComponent returns a copy of v with the coordinate along axis a set to c.
func (v Vec3) WithComponent(a Axis, c float64) Vec3 {
	switch a {
	case X:
		v.X = c
	case Y:
		v.Y = c
	default:
		v.Z = c
	}
	return v
}

// Interval is a closed 1-D interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Len returns Hi - Lo.
func (iv Interval) Len() float64 { return iv.Hi - iv.Lo }

// Mid returns the midpoint of the interval.
func (iv Interval) Mid() float64 { return 0.5 * (iv.Lo + iv.Hi) }

// Contains reports whether x lies in [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Overlaps reports whether the two intervals intersect (including touching).
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Intersect returns the intersection of two intervals and whether it is
// non-empty (touching intervals yield a zero-length, valid intersection).
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo := math.Max(iv.Lo, o.Lo)
	hi := math.Min(iv.Hi, o.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// DistTo returns the distance from x to the interval (0 if inside).
func (iv Interval) DistTo(x float64) float64 {
	if x < iv.Lo {
		return iv.Lo - x
	}
	if x > iv.Hi {
		return x - iv.Hi
	}
	return 0
}

// Gap returns the separation between two intervals (0 if they overlap).
func (iv Interval) Gap(o Interval) float64 {
	if iv.Overlaps(o) {
		return 0
	}
	if iv.Hi < o.Lo {
		return o.Lo - iv.Hi
	}
	return iv.Lo - o.Hi
}
