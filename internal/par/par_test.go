package par

import (
	"testing"

	"parbem/internal/assembly"
	"parbem/internal/basis"
	"parbem/internal/geom"
	"parbem/internal/linalg"
)

func TestFillMatchesSerial(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	want := assembly.FillSerial(set, in)

	for _, d := range []int{1, 2, 4, 8, 13} {
		got := Fill(set, in, Options{Workers: d})
		if diff := linalg.MaxAbsDiff(got, want); diff > tol(want) {
			t.Errorf("workers=%d: parallel fill differs from serial by %g", d, diff)
		}
	}
}

func TestFillDefaultWorkers(t *testing.T) {
	st := geom.DefaultCrossingPair().Build()
	set := basis.Build(st, basis.DefaultBuilderOptions())
	in := assembly.NewIntegrator()
	got := Fill(set, in, Options{})
	want := assembly.FillSerial(set, in)
	if diff := linalg.MaxAbsDiff(got, want); diff > tol(want) {
		t.Errorf("default workers differ from serial by %g", diff)
	}
}

// tol returns the rounding tolerance for comparing fills: partition
// boundaries can reorder the accumulation of a multi-template basis
// function's contributions.
func tol(m *linalg.Dense) float64 {
	var scale float64
	for _, v := range m.Data {
		if v > scale {
			scale = v
		} else if -v > scale {
			scale = -v
		}
	}
	return 1e-12 * scale
}
