package op

import (
	"errors"

	"parbem/internal/linalg"
	"parbem/internal/sched"
)

// Preconditioner approximates dst = M^{-1} r for the pipeline's right-
// preconditioned GMRES. Apply must be safe for concurrent use (one call
// per right-hand-side column is in flight at a time) and allocation-free
// after warmup.
type Preconditioner interface {
	Apply(dst, r []float64)
}

// Jacobi is the point-Jacobi (diagonal) preconditioner.
type Jacobi struct {
	inv []float64
}

// NewJacobi builds a point-Jacobi preconditioner from the exact matrix
// diagonal. Non-positive diagonal entries (impossible for the Galerkin
// matrix, but cheap to guard) pass through unscaled.
func NewJacobi(diag []float64) *Jacobi {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d > 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &Jacobi{inv: inv}
}

// Apply implements Preconditioner.
func (j *Jacobi) Apply(dst, r []float64) {
	inv := j.inv
	for i := range dst {
		dst[i] = r[i] * inv[i]
	}
}

// bjBlock is one factorized near block.
type bjBlock struct {
	idx  []int32
	chol *linalg.Cholesky // nil when factorization failed
	inv  []float64        // diagonal fallback for failed blocks
}

// BlockJacobi is the near-field block-Jacobi preconditioner: the
// operator's disjoint near blocks are Cholesky-factorized once at
// construction, and Apply solves every block system in place. Unknowns
// outside all blocks (and blocks whose factorization fails, e.g. a
// cluster block assembled from an incomplete pair list) fall back to
// point-Jacobi on their diagonal.
type BlockJacobi struct {
	n      int
	blocks []bjBlock
	// invDiag covers unknowns outside every block (nil entries = 0
	// means identity pass-through; populated from the blocks'
	// diagonals for covered unknowns that fall back).
	invDiag []float64
	covered []bool

	// scratch manages the gather/solve buffer: warm dedicated value for
	// the one-Apply-at-a-time case, pooled overflow for concurrent
	// Applies (one per RHS column).
	scratch *sched.Scratch[*[]float64]
	maxBlk  int

	reusedFactors int
}

// NewBlockJacobi factorizes the given disjoint near blocks for dimension
// n. idx[k] lists block k's unknowns; blocks[k] is the dense sub-matrix
// over them. diag supplies the exact matrix diagonal used for unknowns
// no block covers (nil = identity there).
func NewBlockJacobi(n int, idx [][]int32, blocks []*linalg.Dense, diag []float64) (*BlockJacobi, error) {
	return NewBlockJacobiWith(n, idx, blocks, diag, nil)
}

// NewBlockJacobiWith is NewBlockJacobi with an optional lookup of
// previously computed factors: when factors returns a non-nil Cholesky
// of the block's shape, it is adopted instead of re-factorizing (the
// staged extraction plans carry unchanged blocks' factors across
// geometry variants this way).
func NewBlockJacobiWith(n int, idx [][]int32, blocks []*linalg.Dense, diag []float64,
	factors func(idx []int32) *linalg.Cholesky) (*BlockJacobi, error) {
	if len(idx) != len(blocks) {
		return nil, errors.New("op: block index/matrix count mismatch")
	}
	bj := &BlockJacobi{
		n:       n,
		covered: make([]bool, n),
		invDiag: make([]float64, n),
	}
	for i := range bj.invDiag {
		bj.invDiag[i] = 1
	}
	if diag != nil {
		for i, d := range diag {
			if d > 0 {
				bj.invDiag[i] = 1 / d
			}
		}
	}
	for k, ix := range idx {
		b := blocks[k]
		if b.Rows != len(ix) || b.Cols != len(ix) {
			return nil, errors.New("op: near block shape mismatch")
		}
		if len(ix) == 0 {
			continue
		}
		for _, i := range ix {
			if bj.covered[i] {
				return nil, errors.New("op: near blocks overlap")
			}
			bj.covered[i] = true
		}
		blk := bjBlock{idx: ix}
		if factors != nil {
			if ch := factors(ix); ch != nil && ch.L.Rows == len(ix) {
				blk.chol = ch
				bj.reusedFactors++
			}
		}
		if blk.chol != nil {
			// Adopted from a previous variant.
		} else if ch, err := linalg.NewCholesky(b); err == nil {
			blk.chol = ch
		} else {
			// Not numerically SPD (possible for cluster blocks with
			// zero-filled missing pairs): fall back to this block's
			// diagonal.
			blk.inv = make([]float64, len(ix))
			for t := range ix {
				if d := b.At(t, t); d > 0 {
					blk.inv[t] = 1 / d
				} else {
					blk.inv[t] = 1
				}
			}
		}
		bj.blocks = append(bj.blocks, blk)
		if len(ix) > bj.maxBlk {
			bj.maxBlk = len(ix)
		}
	}
	bj.scratch = sched.NewScratch(func() *[]float64 {
		buf := make([]float64, bj.maxBlk)
		return &buf
	})
	return bj, nil
}

// Blocks returns the number of factorized blocks (diagnostics).
func (bj *BlockJacobi) Blocks() int { return len(bj.blocks) }

// ReusedFactors reports how many block factors were adopted through the
// NewBlockJacobiWith lookup instead of factorized fresh.
func (bj *BlockJacobi) ReusedFactors() int { return bj.reusedFactors }

// Factors exposes the factorized blocks (idx[k] lists block k's
// unknowns, chol[k] its Cholesky factor, nil for diagonal-fallback
// blocks). Both slices and their contents are shared and must be
// treated as read-only; the staged extraction plans key them by idx to
// seed the next variant's NewBlockJacobiWith lookup.
func (bj *BlockJacobi) Factors() (idx [][]int32, chol []*linalg.Cholesky) {
	idx = make([][]int32, len(bj.blocks))
	chol = make([]*linalg.Cholesky, len(bj.blocks))
	for k := range bj.blocks {
		idx[k] = bj.blocks[k].idx
		chol[k] = bj.blocks[k].chol
	}
	return idx, chol
}

// Apply implements Preconditioner: gather each block's residual, solve
// the factorized block system, scatter the result; uncovered unknowns
// get the point-Jacobi fallback. Allocation-free after warmup and safe
// for concurrent use.
func (bj *BlockJacobi) Apply(dst, r []float64) {
	sp := bj.scratch.Acquire()
	scratch := *sp
	for i := range dst {
		if !bj.covered[i] {
			dst[i] = r[i] * bj.invDiag[i]
		}
	}
	for k := range bj.blocks {
		blk := &bj.blocks[k]
		if blk.chol == nil {
			for t, i := range blk.idx {
				dst[i] = r[i] * blk.inv[t]
			}
			continue
		}
		buf := scratch[:len(blk.idx)]
		for t, i := range blk.idx {
			buf[t] = r[i]
		}
		blk.chol.Solve(buf, buf)
		for t, i := range blk.idx {
			dst[i] = buf[t]
		}
	}
	bj.scratch.Release(sp)
}
