package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"parbem/internal/geom"
)

// TestServeConcurrentSoak fires concurrent mixed-backend /extract and
// /sweep traffic at one server (run under -race in CI) and asserts
//
//   - every request succeeds and each goroutine's repeated identical
//     request returns bitwise-identical results (the plan cache serves
//     the same artifacts; dense-direct sweep reuse is exact), and
//   - the /stats counters balance: nothing lost, nothing double-counted.
//
// Family-plan interleaving hazards are part of the design: two
// goroutines share the dense sweep family on purpose, and the fmm
// extract goroutines use distinct tolerances so each owns its family
// plan (same-family alternation would legitimately warm-start to
// different-in-the-ulps results).
func TestServeConcurrentSoak(t *testing.T) {
	repeats := 3
	if testing.Short() {
		repeats = 2
	}
	s, c := startServer(t, Options{Workers: 2, WorkerBudget: 1, Runners: 2, QueueDepth: 128})
	ctx := context.Background()

	bus := geom.DefaultBus(2, 2).Build()

	// Bodies run on spawned goroutines, so they report failures as
	// errors instead of calling t.Fatal.
	extractBody := func(req *ExtractRequest) func() (string, error) {
		return func() (string, error) {
			res, err := c.Extract(ctx, req)
			if err != nil {
				return "", fmt.Errorf("extract: %w", err)
			}
			buf, _ := json.Marshal(res.CFarads)
			return string(buf), nil
		}
	}
	asyncBody := func(req *ExtractRequest) func() (string, error) {
		return func() (string, error) {
			id, err := c.ExtractAsync(ctx, req)
			if err != nil {
				return "", fmt.Errorf("async: %w", err)
			}
			for deadline := time.Now().Add(time.Minute); ; {
				jr, err := c.Job(ctx, id)
				if err != nil {
					return "", fmt.Errorf("poll: %w", err)
				}
				if jr.Status == "failed" {
					return "", fmt.Errorf("job failed: %v", jr.Error)
				}
				if jr.Status == "done" {
					buf, _ := json.Marshal(jr.Result.CFarads)
					return string(buf), nil
				}
				if time.Now().After(deadline) {
					return "", fmt.Errorf("job stuck")
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	sweepBody := func(req *SweepRequest) func() (string, error) {
		return func() (string, error) {
			var pts []*SweepPoint
			tr, err := c.Sweep(ctx, req, func(p *SweepPoint) { pts = append(pts, p) })
			if err != nil {
				return "", fmt.Errorf("sweep: %w", err)
			}
			if tr.Failed != 0 {
				return "", fmt.Errorf("sweep failed points: %+v", tr)
			}
			comparable := make([]any, 0, len(pts))
			for _, p := range pts {
				comparable = append(comparable, []any{p.Index, p.CFarads, p.Fit})
			}
			buf, _ := json.Marshal(comparable)
			return string(buf), nil
		}
	}

	const edge = 0.5e-6
	clients := []struct {
		name string
		body func() (string, error)
	}{
		{"dense-direct", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge, Backend: "dense"})},
		{"dense-direct-twin", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge, Backend: "dense"})},
		{"fmm-block", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge,
			Backend: "fastcap", Precond: "block", Tol: 1e-6})},
		{"fmm-block-h7", extractBody(&ExtractRequest{
			Geometry: geoText(t, crossingAt(0.7e-6)), EdgeM: edge,
			Backend: "fastcap", Precond: "block", Tol: 2e-6})},
		{"auto-bus-async", asyncBody(&ExtractRequest{
			Geometry: geoText(t, bus), EdgeM: 1e-6, Backend: "auto"})},
		{"dense-sweep", sweepBody(&SweepRequest{
			EdgeM: edge, Backend: "dense",
			Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))}})},
		{"dense-sweep-twin", sweepBody(&SweepRequest{
			EdgeM: edge, Backend: "dense",
			Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))}})},
		{"template-sweep", sweepBody(&SweepRequest{
			EdgeM: edge, TemplateHs: []float64{0.4e-6, 0.6e-6}})},
	}

	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(name string, body func() (string, error)) {
			defer wg.Done()
			var first string
			for rep := 0; rep < repeats; rep++ {
				payload, err := body()
				if err != nil {
					t.Errorf("%s repeat %d: %v", name, rep, err)
					return
				}
				if rep == 0 {
					first = payload
					continue
				}
				if payload != first {
					t.Errorf("%s: repeat %d not bitwise-stable:\nfirst %s\n now  %s",
						name, rep, first, payload)
				}
			}
		}(cl.name, cl.body)
	}
	wg.Wait()

	stats := s.Stats()
	wantJobs := uint64(len(clients) * repeats)
	if stats.Accepted != wantJobs {
		t.Errorf("accepted %d jobs, want %d (lost or double-counted admissions)", stats.Accepted, wantJobs)
	}
	if stats.Completed != wantJobs || stats.Failed != 0 {
		t.Errorf("completed %d / failed %d, want %d / 0", stats.Completed, stats.Failed, wantJobs)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("gauges not drained: queued %d running %d", stats.Queued, stats.Running)
	}
	if stats.Extracts+stats.Sweeps != wantJobs {
		t.Errorf("extracts %d + sweeps %d != %d", stats.Extracts, stats.Sweeps, wantJobs)
	}
	wantPoints := uint64(3 * repeats * 2) // three sweep clients x two points
	if stats.SweepPoints != wantPoints {
		t.Errorf("sweep points %d, want %d (dropped or duplicated points)", stats.SweepPoints, wantPoints)
	}
	if stats.SweepPointErrors != 0 {
		t.Errorf("%d sweep point errors on healthy traffic", stats.SweepPointErrors)
	}
	if stats.Engine.StateHits == 0 {
		t.Error("engine state cache never hit: requests are not sharing the plan cache")
	}
	if stats.RejectedQueueFull != 0 {
		t.Errorf("%d rejections with an empty 128-deep queue", stats.RejectedQueueFull)
	}
}
