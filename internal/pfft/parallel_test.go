package pfft

import (
	"testing"

	"parbem/internal/sched"
)

// TestApplyAllocFree proves the steady-state matvec allocates nothing in
// serial mode, and only constant scheduler bookkeeping when parallel —
// the same guarantees as the fmm operator.
func TestApplyAllocFree(t *testing.T) {
	panels := busPanels(t, 3, 3, 1e-6)
	n := len(panels)
	x := make([]float64, n)
	dst := make([]float64, n)
	for i := range x {
		x[i] = 1
	}

	serial := NewOperator(panels, Options{Workers: 1})
	serial.Apply(dst, x) // warm the scratch
	if allocs := testing.AllocsPerRun(10, func() {
		serial.Apply(dst, x)
	}); allocs != 0 {
		t.Fatalf("serial Apply allocates %.0f objects per call", allocs)
	}

	// Parallel mode: per-Map scheduler bookkeeping only, independent of
	// the panel count (the precedent bound of internal/fmm).
	pool := sched.NewPool(4)
	defer pool.Close()
	par := NewOperator(panels, Options{Pool: pool})
	par.Apply(dst, x)
	if allocs := testing.AllocsPerRun(10, func() {
		par.Apply(dst, x)
	}); allocs > 200 {
		t.Fatalf("pooled Apply allocates %.0f objects per call; grid loops are no longer allocation-free", allocs)
	}
}

// TestConcurrentAppliesMatchSerial exercises the scratch overflow path:
// many goroutines applying the same operator concurrently must all get
// the bit-exact serial answer (the pipeline runs one GMRES per conductor
// over one shared operator).
func TestConcurrentAppliesMatchSerial(t *testing.T) {
	panels := busPanels(t, 2, 2, 1.5e-6)
	n := len(panels)
	op := NewOperator(panels, Options{Workers: 1})
	const g = 8
	xs := make([][]float64, g)
	want := make([][]float64, g)
	for k := 0; k < g; k++ {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = float64((i*7+k)%13) - 6
		}
		want[k] = make([]float64, n)
		op.Apply(want[k], xs[k])
	}
	got := make([][]float64, g)
	done := make(chan int, g)
	for k := 0; k < g; k++ {
		got[k] = make([]float64, n)
		go func(k int) {
			op.Apply(got[k], xs[k])
			done <- k
		}(k)
	}
	for k := 0; k < g; k++ {
		<-done
	}
	for k := 0; k < g; k++ {
		for i := range got[k] {
			if got[k][i] != want[k][i] {
				t.Fatalf("concurrent Apply %d differs at %d: %g vs %g",
					k, i, got[k][i], want[k][i])
			}
		}
	}
}

// TestNearBlocksPartition verifies the precorrection clusters exposed to
// the preconditioner: disjoint, covering every panel, with symmetric
// positive-diagonal blocks.
func TestNearBlocksPartition(t *testing.T) {
	panels := busPanels(t, 3, 3, 1e-6)
	op := NewOperator(panels, Options{Workers: 1})
	idx, blocks := op.NearBlocks()
	if len(idx) != len(blocks) {
		t.Fatalf("%d index sets vs %d blocks", len(idx), len(blocks))
	}
	seen := make([]bool, len(panels))
	for k, ix := range idx {
		blk := blocks[k]
		if blk.Rows != len(ix) || blk.Cols != len(ix) {
			t.Fatalf("block %d shape %dx%d for %d unknowns", k, blk.Rows, blk.Cols, len(ix))
		}
		for r, pi := range ix {
			if seen[pi] {
				t.Fatalf("panel %d in two clusters", pi)
			}
			seen[pi] = true
			if blk.At(r, r) <= 0 {
				t.Fatalf("block %d diagonal %d not positive", k, r)
			}
			for c := range ix {
				// Rows are integrated independently and the quadrature
				// is not bit-symmetric in argument order; bound the
				// asymmetry at the quadrature level.
				a, bb := blk.At(r, c), blk.At(c, r)
				if d := a - bb; d > 1e-6*blk.At(r, r) || d < -1e-6*blk.At(r, r) {
					t.Fatalf("block %d asymmetric at (%d,%d): %g vs %g", k, r, c, a, bb)
				}
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("panel %d uncovered", i)
		}
	}
}

// BenchmarkPFFTApply measures the steady-state matvec (serial) in both
// precisions on the same operator (the fp64/mixed delta is the headline
// bandwidth win of the float32 mirror).
func BenchmarkPFFTApply(b *testing.B) {
	panels := busPanels(b, 4, 4, 1e-6)
	op := NewOperator(panels, Options{Workers: 1})
	op.EnableMixed()
	x := make([]float64, len(panels))
	dst := make([]float64, len(panels))
	for i := range x {
		x[i] = 1
	}
	b.Run("fp64", func(b *testing.B) {
		op.Apply(dst, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.Apply(dst, x)
		}
	})
	b.Run("mixed", func(b *testing.B) {
		op.ApplyMixed(dst, x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			op.ApplyMixed(dst, x)
		}
	})
}
