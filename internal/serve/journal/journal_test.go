package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// openT opens a journal in dir, failing the test on error.
func openT(t *testing.T, dir string) (*Journal, []Entry, ReplayStats) {
	t.Helper()
	j, entries, stats, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, entries, stats
}

// appendT appends a record, failing the test on error.
func appendT(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func TestRoundTripAndFold(t *testing.T) {
	dir := t.TempDir()
	j, entries, _ := openT(t, dir)
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	appendT(t, j, Record{JobID: "j1", State: StateAccepted, Kind: "extract",
		IdemKey: "k1", Request: json.RawMessage(`{"edge_m":1}`)})
	appendT(t, j, Record{JobID: "j1", State: StateRunning})
	appendT(t, j, Record{JobID: "j1", State: StateCompleted, Result: json.RawMessage(`{"job_id":"j1"}`)})
	appendT(t, j, Record{JobID: "j2", State: StateAccepted, Kind: "extract",
		Request: json.RawMessage(`{"edge_m":2}`)})
	j.Close()

	_, entries, stats := openT(t, dir)
	if stats.Corrupt != 0 || stats.TornBytes != 0 {
		t.Errorf("clean file reported corruption: %+v", stats)
	}
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
	e1, e2 := entries[0], entries[1]
	if e1.JobID != "j1" || e1.State != StateCompleted || e1.IdemKey != "k1" {
		t.Errorf("j1 folded to %+v", e1)
	}
	if string(e1.Request) != `{"edge_m":1}` || string(e1.Result) != `{"job_id":"j1"}` {
		t.Errorf("j1 lost payloads: req %s result %s", e1.Request, e1.Result)
	}
	if e2.JobID != "j2" || e2.State != StateAccepted || Terminal(e2.State) {
		t.Errorf("j2 folded to %+v", e2)
	}
}

// corruptAt flips payload bytes of the n-th record (0-based, counting
// the header) without touching its frame, so the length stays valid
// and only the CRC fails.
func corruptAt(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < n; i++ {
		off += 8 + int(binary.LittleEndian.Uint32(data[off:off+4]))
	}
	plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
	data[off+8+plen/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, Record{JobID: "j1", State: StateAccepted, Kind: "extract"})
	appendT(t, j, Record{JobID: "j1", State: StateRunning})
	j.Close()

	// Chop the final record mid-payload: the crash landed mid-write.
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, entries, stats := openT(t, dir)
	if stats.TornBytes == 0 {
		t.Error("torn tail not reported")
	}
	if len(entries) != 1 || entries[0].State != StateAccepted {
		t.Fatalf("after torn tail: %+v, want j1 back in accepted", entries)
	}
	// The tail was truncated: appends land on a clean frame and survive
	// another replay.
	appendT(t, j2, Record{JobID: "j1", State: StateCompleted})
	j2.Close()
	_, entries, stats = openT(t, dir)
	if stats.Corrupt != 0 || stats.TornBytes != 0 {
		t.Errorf("post-truncate file still dirty: %+v", stats)
	}
	if len(entries) != 1 || entries[0].State != StateCompleted {
		t.Errorf("append after truncation lost: %+v", entries)
	}
}

func TestCorruptMiddleRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	appendT(t, j, Record{JobID: "j1", State: StateAccepted, Kind: "extract"})
	appendT(t, j, Record{JobID: "j2", State: StateAccepted, Kind: "extract"})
	appendT(t, j, Record{JobID: "j2", State: StateCompleted})
	j.Close()

	// Damage j1's accepted record (record 1; record 0 is the header):
	// mid-file disk corruption, not a torn write.
	corruptAt(t, filepath.Join(dir, FileName), 1)

	jj, entries, stats, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after mid-file corruption: %v", err)
	}
	defer jj.Close()
	if stats.Corrupt != 1 {
		t.Errorf("corrupt records = %d, want 1", stats.Corrupt)
	}
	// j1's only record was destroyed; j2 must survive intact.
	if len(entries) != 1 || entries[0].JobID != "j2" || entries[0].State != StateCompleted {
		t.Fatalf("entries after skip = %+v, want j2 completed", entries)
	}
}

func TestNewerSchemaRejectedStructured(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a header claiming schema 99.
	payload, _ := json.Marshal(Record{Schema: 99})
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(buf[8:], payload)
	if err := os.WriteFile(filepath.Join(dir, FileName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err := Open(dir)
	se := new(SchemaError)
	if !errors.As(err, &se) {
		t.Fatalf("newer-schema open returned %v, want *SchemaError", err)
	}
	if se.Found != 99 {
		t.Errorf("SchemaError.Found = %d, want 99", se.Found)
	}
}

func TestIdempotencyKeyDedupOnDoubleReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	// The same logical submit journaled twice under two job ids — the
	// shape a client retry racing a crash (or a doubled log segment)
	// leaves behind.
	appendT(t, j, Record{JobID: "j1", State: StateAccepted, Kind: "extract",
		IdemKey: "idem-A", Request: json.RawMessage(`{"edge_m":1}`)})
	appendT(t, j, Record{JobID: "j2", State: StateAccepted, Kind: "extract",
		IdemKey: "idem-A", Request: json.RawMessage(`{"edge_m":1}`)})
	appendT(t, j, Record{JobID: "j3", State: StateAccepted, Kind: "extract",
		IdemKey: "idem-B"})
	j.Close()

	_, entries, _ := openT(t, dir)
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2 (j2 folded into j1 by idem key)", len(entries))
	}
	if entries[0].JobID != "j1" || entries[0].IdemKey != "idem-A" {
		t.Errorf("first entry %+v, want j1 with idem-A", entries[0])
	}
	if entries[1].JobID != "j3" {
		t.Errorf("second entry %+v, want j3", entries[1])
	}
}

func TestCompactBoundsAndPreserves(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openT(t, dir)
	for i := 0; i < 50; i++ {
		appendT(t, j, Record{JobID: "j1", State: StateRunning})
	}
	appendT(t, j, Record{JobID: "j1", State: StateCompleted, Kind: "extract",
		IdemKey: "k", Result: json.RawMessage(`{"ok":true}`)})
	appendT(t, j, Record{JobID: "j2", State: StateAccepted, Kind: "extract",
		Request: json.RawMessage(`{"edge_m":3}`)})
	big, err := os.Stat(j.Path())
	if err != nil {
		t.Fatal(err)
	}

	if err := j.Compact([]Entry{
		{JobID: "j1", State: StateCompleted, Kind: "extract", IdemKey: "k", Result: json.RawMessage(`{"ok":true}`)},
		{JobID: "j2", State: StateAccepted, Kind: "extract", Request: json.RawMessage(`{"edge_m":3}`)},
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	small, err := os.Stat(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() >= big.Size() {
		t.Errorf("compaction did not shrink the file: %d -> %d bytes", big.Size(), small.Size())
	}
	// Appends after compaction land on the new file.
	appendT(t, j, Record{JobID: "j2", State: StateCompleted})
	j.Close()

	_, entries, stats := openT(t, dir)
	if stats.Corrupt != 0 || stats.TornBytes != 0 {
		t.Errorf("compacted file dirty: %+v", stats)
	}
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
	if entries[0].State != StateCompleted || string(entries[0].Result) != `{"ok":true}` {
		t.Errorf("j1 after compact: %+v", entries[0])
	}
	if entries[1].State != StateCompleted || string(entries[1].Request) != `{"edge_m":3}` {
		t.Errorf("j2 after compact+append: %+v", entries[1])
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _, _ := openT(t, t.TempDir())
	j.Close()
	if err := j.Append(Record{JobID: "j1", State: StateAccepted}); err == nil {
		t.Error("append after close succeeded")
	}
}
