package ratfit

import (
	"errors"
	"fmt"
	"math"
)

// Grid is a piecewise-rational approximation: the domain box is divided
// into cells along each dimension and each cell is fitted independently.
// This is the practical form of the paper's error control ("the error
// control of this approach relies on the choice of training samples",
// Section 4.2.4): confining each fit to a small cell keeps the fitted
// denominator sign-definite and the error bounded.
type Grid struct {
	dim   int
	lo    []float64
	hi    []float64
	cells []int
	fits  []*Rational

	// MaxTrainRel is the worst per-cell training error.
	MaxTrainRel float64
}

// FitGrid fits f over the box [lo, hi] with cells[i] subdivisions per
// dimension, degree (degN, degM) rationals and the given number of
// training samples per cell.
func FitGrid(f func(w []float64) float64, lo, hi []float64, cells []int,
	samplesPerCell, degN, degM int) (*Grid, error) {
	dim := len(lo)
	if len(hi) != dim || len(cells) != dim {
		return nil, errors.New("ratfit: FitGrid bounds/cells mismatch")
	}
	total := 1
	for _, c := range cells {
		if c < 1 {
			return nil, errors.New("ratfit: FitGrid needs >= 1 cell per dim")
		}
		total *= c
	}
	g := &Grid{dim: dim, lo: lo, hi: hi, cells: cells, fits: make([]*Rational, total)}
	cl := make([]float64, dim)
	ch := make([]float64, dim)
	idx := make([]int, dim)
	for flat := 0; flat < total; flat++ {
		rem := flat
		for i := dim - 1; i >= 0; i-- {
			idx[i] = rem % cells[i]
			rem /= cells[i]
			step := (hi[i] - lo[i]) / float64(cells[i])
			cl[i] = lo[i] + float64(idx[i])*step
			ch[i] = cl[i] + step
		}
		fit, err := FitFunc(f, cl, ch, samplesPerCell, degN, degM)
		if err != nil {
			return nil, fmt.Errorf("ratfit: cell %v: %w", idx, err)
		}
		g.fits[flat] = fit
		if fit.TrainMaxRel > g.MaxTrainRel {
			g.MaxTrainRel = fit.TrainMaxRel
		}
	}
	return g, nil
}

// Eval evaluates the piecewise rational at w (clamped into the domain).
func (g *Grid) Eval(w ...float64) float64 {
	if len(w) != g.dim {
		panic("ratfit: Grid.Eval arity mismatch")
	}
	flat := 0
	for i := 0; i < g.dim; i++ {
		c := g.cells[i]
		u := (w[i] - g.lo[i]) / (g.hi[i] - g.lo[i]) * float64(c)
		ci := int(u)
		if ci < 0 {
			ci = 0
		}
		if ci >= c {
			ci = c - 1
		}
		flat = flat*c + ci
	}
	return g.fits[flat].Eval(w...)
}

// Bytes returns the coefficient storage of all cells.
func (g *Grid) Bytes() int {
	n := 0
	for _, f := range g.fits {
		n += 8 * (len(f.NumCoef) + len(f.DenCoef))
	}
	return n
}

// CheckDomain reports the max relative error of the grid against f on a
// lattice of nProbe points (diagnostics).
func (g *Grid) CheckDomain(f func(w []float64) float64, nProbe int) float64 {
	w := make([]float64, g.dim)
	u := make([]float64, g.dim)
	var maxRel float64
	for p := 0; p < nProbe; p++ {
		WeylPoint(u, p)
		for i := 0; i < g.dim; i++ {
			w[i] = g.lo[i] + u[i]*(g.hi[i]-g.lo[i])
		}
		want := f(w)
		got := g.Eval(w...)
		den := math.Abs(want)
		if den < 1e-12 {
			den = 1e-12
		}
		if rel := math.Abs(got-want) / den; rel > maxRel {
			maxRel = rel
		}
	}
	return maxRel
}
