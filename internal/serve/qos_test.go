package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"parbem/internal/extract"
	"parbem/internal/geom"
)

// TestServeDeadline504 pins the end-to-end deadline path: a synchronous
// /extract whose timeout_ms is far below the solve time returns a
// structured deadline_exceeded error (HTTP 504 → *RequestError at the
// client) carrying partial telemetry, and it returns well before the
// undeadlined solve would have — the deadline is observed inside the
// pipeline (stage checkpoints and the GMRES iteration loop), not after
// the solve completed.
func TestServeDeadline504(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline timing test")
	}
	_, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	const edge = 0.35e-6
	base := &ExtractRequest{
		Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: edge,
		Backend: "fastcap", Precond: "block", Tol: 1e-7,
	}
	t0 := time.Now()
	if _, err := c.Extract(ctx, base); err != nil {
		t.Fatalf("baseline extract: %v", err)
	}
	full := time.Since(t0)

	// A family variant (plan reuse leaves mostly solve work) with a
	// deadline a fraction of the full time.
	vreq := &ExtractRequest{
		Geometry: geoText(t, crossingAt(0.52e-6)), EdgeM: edge,
		Backend: "fastcap", Precond: "block", Tol: 1e-7,
		TimeoutMs: 10,
	}
	t0 = time.Now()
	_, err := c.Extract(ctx, vreq)
	elapsed := time.Since(t0)
	re := new(RequestError)
	if !errors.As(err, &re) || re.Code != CodeDeadlineExceeded {
		t.Fatalf("deadlined extract returned %v, want code deadline_exceeded", err)
	}
	if re.Stage == "" {
		t.Error("deadline_exceeded error carries no stage telemetry")
	}
	if re.ElapsedMs <= 0 {
		t.Errorf("deadline_exceeded error elapsed_ms = %v, want > 0", re.ElapsedMs)
	}
	// The early exit must beat the undeadlined time by a clear margin.
	// Stage builds are interruptible only at stage boundaries, so the
	// deadlined request may still finish the stage in flight (the
	// per-iteration GMRES checkpoint is pinned deterministically in
	// internal/linalg); only assert when the baseline is slow enough for
	// the margin to be meaningful on a noisy machine.
	if full >= 100*time.Millisecond && elapsed > full*3/4 {
		t.Errorf("deadlined extract took %v, want well under the undeadlined %v", elapsed, full)
	}
}

// TestServePriorityOrdering pins the two-tier admission queue: with one
// runner and a backlog of both classes, every queued interactive job
// runs before the first bulk job, regardless of arrival order.
func TestServePriorityOrdering(t *testing.T) {
	s, _ := startServer(t, Options{Workers: 1, Runners: 1, QueueDepth: 8})

	started := make(chan struct{})
	release := make(chan struct{})
	blocker := &job{kind: "extract", class: classInteractive, done: make(chan struct{})}
	blocker.run = func() (any, error) { close(started); <-release; return nil, nil }
	if _, err := s.admit(blocker); err != nil {
		t.Fatal(err)
	}
	<-started

	order := make(chan string, 8)
	mk := func(name string, class int) *job {
		j := &job{kind: "test", class: class, done: make(chan struct{})}
		j.run = func() (any, error) { order <- name; return nil, nil }
		return j
	}
	// Bulk jobs are enqueued FIRST; interactive must still win.
	jobs := []*job{mk("bulk1", classBulk), mk("bulk2", classBulk),
		mk("hi1", classInteractive), mk("hi2", classInteractive)}
	for _, j := range jobs {
		if _, err := s.admit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	for _, j := range jobs {
		<-j.done
	}
	var got []string
	for range jobs {
		got = append(got, <-order)
	}
	want := []string{"hi1", "hi2", "bulk1", "bulk2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("run order %v, want %v (interactive-first)", got, want)
	}
}

// TestServeTenantRateLimit pins the per-tenant token bucket at the
// HTTP edge: a tenant over its burst is rejected with a structured
// rate_limited 429 while another tenant's bucket is untouched.
func TestServeTenantRateLimit(t *testing.T) {
	s, c := startServer(t, Options{Workers: 1, TenantRate: 0.001, TenantBurst: 2})
	ctx := context.Background()
	req := &ExtractRequest{Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}

	c.Tenant = "alice"
	for i := 0; i < 2; i++ {
		if _, err := c.Extract(ctx, req); err != nil {
			t.Fatalf("request %d within burst rejected: %v", i, err)
		}
	}
	_, err := c.Extract(ctx, req)
	re := new(RequestError)
	if !errors.As(err, &re) || re.Code != CodeRateLimited {
		t.Fatalf("over-burst request returned %v, want code rate_limited", err)
	}
	if got := s.Stats().RejectedRateLimited; got != 1 {
		t.Errorf("jobs_rejected_rate_limited = %d, want 1", got)
	}

	// Another tenant has its own bucket.
	c2 := *c
	c2.Tenant = "bob"
	if _, err := c2.Extract(ctx, req); err != nil {
		t.Fatalf("fresh tenant rejected: %v", err)
	}
}

// TestTenantLimiter pins the token-bucket math — and the Retry-After
// advice computed from the refill rate — with synthetic clocks.
func TestTenantLimiter(t *testing.T) {
	l := newTenantLimiter(2, 2) // 2 req/s, burst 2
	t0 := time.Unix(1000, 0)
	ok1, _ := l.allow("a", t0)
	ok2, _ := l.allow("a", t0)
	if !ok1 || !ok2 {
		t.Fatal("burst of 2 rejected")
	}
	if ok, wait := l.allow("a", t0); ok {
		t.Fatal("third immediate request admitted over burst")
	} else if wait != 500*time.Millisecond {
		// Empty bucket at 2 tokens/s: one token refills in 500ms.
		t.Fatalf("retry-after = %v, want 500ms", wait)
	}
	if ok, _ := l.allow("b", t0); !ok {
		t.Fatal("separate tenant shares a bucket")
	}
	// After 500ms one token (rate 2/s) has refilled.
	if ok, _ := l.allow("a", t0.Add(500*time.Millisecond)); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, wait := l.allow("a", t0.Add(500*time.Millisecond)); ok {
		t.Fatal("second token admitted before it refilled")
	} else if wait != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 500ms", wait)
	}
}

// TestServeSweepPointsCountDelivered pins the delivered-points
// accounting: a sweep abandoned mid-stream (client gone) counts
// exactly the points that reached the stream — never points it failed
// to deliver — and the job books as cancelled, keeping
// accepted == completed + failed + cancelled.
func TestServeSweepPointsCountDelivered(t *testing.T) {
	s, _ := startServer(t, Options{Workers: 1})

	// 24 template points against a 16-slot stream nobody drains: the
	// sweep must stop at the full buffer once the context fires, and
	// the counter must match what actually entered the stream.
	hs := make([]float64, 24)
	for i := range hs {
		hs[i] = 0.4e-6 + float64(i)*1e-9
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.sweepH = func(_ geom.CrossingPairSpec, hs []float64, _ float64, _ int) ([]*extract.ArchFit, error) {
		// The client vanishes while the solver is running; every point
		// emitted afterwards races delivery against the dead context.
		cancel()
		fits := make([]*extract.ArchFit, len(hs))
		for i := range fits {
			fits[i] = &extract.ArchFit{Flat: 1, Peak: 1, PeakPos: 1, Decay: 1}
		}
		return fits, nil
	}
	j := s.newSweepJob(ctx, &SweepRequest{EdgeM: 0.5e-6, TemplateHs: hs}, nil)
	if _, err := s.admit(j); err != nil {
		t.Fatal(err)
	}
	<-j.done

	delivered := 0
	for range j.stream {
		delivered++
	}
	st := s.Stats()
	if st.SweepPoints != uint64(delivered) {
		t.Errorf("sweep_points = %d but %d points were delivered to the stream", st.SweepPoints, delivered)
	}
	if jobState(j.state.Load()) != jobCancelled {
		t.Errorf("abandoned sweep state %v, want cancelled", jobState(j.state.Load()))
	}
	if st.Cancelled != 1 || st.Completed != 0 || st.Failed != 0 {
		t.Errorf("counters completed/failed/cancelled = %d/%d/%d, want 0/0/1",
			st.Completed, st.Failed, st.Cancelled)
	}
	if st.Accepted != st.Completed+st.Failed+st.Cancelled {
		t.Errorf("accepted %d != completed %d + failed %d + cancelled %d",
			st.Accepted, st.Completed, st.Failed, st.Cancelled)
	}
}

// promLine matches one exposition sample: name{labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)

// parseProm parses Prometheus text exposition into series → value.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// TestServeMetricsAgreesWithStats pins GET /metrics: it parses as
// Prometheus text exposition, its counters agree with /stats, and its
// histograms are internally consistent (monotone cumulative buckets,
// +Inf bucket == _count, queue-wait observations == dispatched jobs).
func TestServeMetricsAgreesWithStats(t *testing.T) {
	s, c := startServer(t, Options{Workers: 2})
	ctx := context.Background()

	if _, err := c.Extract(ctx, &ExtractRequest{
		Geometry: geoText(t, crossingAt(0.5e-6)), EdgeM: 0.5e-6, Backend: "dense"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sweep(ctx, &SweepRequest{
		EdgeM: 0.5e-6, Backend: "dense",
		Variants: []string{geoText(t, crossingAt(0.45e-6)), geoText(t, crossingAt(0.55e-6))},
	}, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := parseProm(t, string(body))
	st := s.Stats()

	for name, want := range map[string]uint64{
		"parbem_jobs_accepted_total":              st.Accepted,
		"parbem_jobs_completed_total":             st.Completed,
		"parbem_jobs_failed_total":                st.Failed,
		"parbem_jobs_cancelled_total":             st.Cancelled,
		"parbem_deadline_exceeded_total":          st.DeadlineExceeded,
		"parbem_extracts_total":                   st.Extracts,
		"parbem_sweeps_total":                     st.Sweeps,
		"parbem_sweep_points_total":               st.SweepPoints,
		"parbem_sweep_point_errors_total":         st.SweepPointErrors,
		"parbem_engine_state_hits_total":          st.Engine.StateHits,
		"parbem_engine_state_misses_total":        st.Engine.StateMisses,
		"parbem_bad_requests_total":               st.BadRequests,
		"parbem_jobs_rejected_queue_full_total":   st.RejectedQueueFull,
		"parbem_jobs_rejected_rate_limited_total": st.RejectedRateLimited,
	} {
		got, ok := series[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, /stats says %d", name, got, want)
		}
	}

	// Queue-wait histogram: one observation per dispatched job, split
	// across the class labels; +Inf bucket equals the count.
	var qwCount float64
	for _, class := range []string{"interactive", "bulk"} {
		cnt := series[fmt.Sprintf(`parbem_queue_wait_seconds_count{class=%q}`, class)]
		inf := series[fmt.Sprintf(`parbem_queue_wait_seconds_bucket{class=%q,le="+Inf"}`, class)]
		if cnt != inf {
			t.Errorf("class %s: +Inf bucket %v != count %v", class, inf, cnt)
		}
		qwCount += cnt
	}
	if dispatched := float64(st.Completed + st.Failed + st.Cancelled); qwCount != dispatched {
		t.Errorf("queue-wait observations %v, want %v (one per dispatched job)", qwCount, dispatched)
	}

	// The dense extract and the two fresh sweep variants all solved:
	// the solve-stage histogram for the dense backend must exist and
	// hold their observations.
	solveCount := series[`parbem_stage_seconds_count{stage="solve",backend="dense"}`]
	if solveCount < 1 {
		t.Errorf("solve-stage histogram empty after %d dense solves", st.Extracts+st.SweepPoints)
	}

	// Cumulative buckets must be monotone for every histogram series.
	for key := range series {
		if !strings.Contains(key, "_bucket{") {
			continue
		}
		// Spot-checked via +Inf equality above; monotonicity follows
		// from the cumulative writer, so just require non-negative.
		if series[key] < 0 {
			t.Errorf("negative bucket %s", key)
		}
	}
}
