package serve

import (
	"math"
	"sync"
	"time"
)

// maxTenantBuckets bounds the limiter's per-tenant state so an
// adversary spraying unique X-Tenant headers cannot grow the map
// without bound; when full, buckets idle long enough to have refilled
// completely are evicted (an evicted tenant restarts with a full
// burst, which only ever errs in the tenant's favor).
const maxTenantBuckets = 4096

// tenantLimiter admits requests through one token bucket per tenant:
// rate tokens/sec sustained, burst capacity. Tenants are keyed on the
// X-Tenant header; requests without one share the "" bucket.
type tenantLimiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket is one tenant's token state; refill is computed lazily from
// the elapsed time since the last admission attempt.
type bucket struct {
	tokens float64
	last   time.Time
}

// newTenantLimiter creates a limiter sustaining rate requests/sec per
// tenant with bursts of burst (0 = ceil(rate), min 1).
func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Ceil(rate)
	}
	if b < 1 {
		b = 1
	}
	return &tenantLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow reports whether tenant may admit one request at time now,
// consuming a token when it may. On denial it also returns how long
// until the bucket refills the missing fraction of a token — the
// Retry-After advice for the rejection.
func (l *tenantLimiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= maxTenantBuckets {
			l.evictFull(now)
			if len(l.buckets) >= maxTenantBuckets {
				// Every bucket is still refilling (an adversary
				// spraying fresh tenant names keeps them all active):
				// evict the least-recently-seen one so the cap is hard.
				// The evicted tenant restarts with a full burst, which
				// only ever errs in its favor.
				l.evictOldest()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictFull drops tenants whose buckets have refilled completely —
// idle at least burst/rate seconds — to cap the map. Called with mu
// held.
func (l *tenantLimiter) evictFull(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}

// evictOldest drops the single bucket with the oldest last-seen time —
// the fallback that makes maxTenantBuckets a hard cap when evictFull
// finds nothing refilled. O(n) over the map, but it only runs on the
// new-tenant-while-full path, which an honest workload hits rarely and
// an adversary pays for on every request. Called with mu held.
func (l *tenantLimiter) evictOldest() {
	var oldest string
	var found bool
	var oldestAt time.Time
	for k, b := range l.buckets {
		if !found || b.last.Before(oldestAt) {
			oldest, oldestAt, found = k, b.last, true
		}
	}
	if found {
		delete(l.buckets, oldest)
	}
}
